GO ?= go

.PHONY: check fmt vet lint lint-fixtures build test bench-smoke bench bench-json chaos-smoke chaos

## check: the tier-1 gate — format, vet, build, race-enabled tests, and a
## one-iteration benchmark smoke pass. CI and pre-commit both run this.
check:
	./scripts/check.sh

fmt:
	@out=$$(gofmt -s -l .); if [ -n "$$out" ]; then \
		echo "gofmt -s needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

## lint: euconlint (cmd/euconlint), the repo's own static-analysis suite —
## determinism, interprocedural noalloc proofs, floatsafety, pooldiscipline,
## aliasing, enum exhaustiveness, and concurrency-discipline invariants.
## Exits nonzero on any finding.
lint:
	$(GO) run ./cmd/euconlint ./... ./cmd/...

## lint-fixtures: the analyzer suite's own golden-diagnostic tests (each
## fixture package must produce exactly its want-commented findings, every
## analyzer must carry positive and annotated-negative fixtures, and the
## diagnostic order must be deterministic).
lint-fixtures:
	$(GO) test ./internal/analysis -run 'TestFixtures|TestExitsNonzeroSemantics|TestDirectiveName|TestAnalyzersHaveDocs|TestAnalyzerFixtureCoverage|TestDiagnosticOrderDeterministic' -count=1

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

## bench-smoke: every benchmark for a single iteration under -short, so a
## broken benchmark fails fast without paying full measurement time.
bench-smoke:
	$(GO) test -short -run '^$$' -bench . -benchtime 1x ./...

## bench: the full measured benchmark suite (minutes).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

## bench-json: append today's key-benchmark numbers and sweep-output digests
## to BENCH_<date>.json (the committed perf-trend record).
bench-json:
	./scripts/bench_trend.sh

## chaos-smoke: the CI chaos gate — 25 seeded fault-storm scenarios against
## the canonical SIMPLE campaign, plus 6 crash/feedback-drop scenarios
## against localized DEUCON on LARGE-128 (each run at 1 and 8 workers and
## required bit-identical). Fails on any violation.
chaos-smoke:
	$(GO) run ./cmd/euconfuzz -seed 1 -n 25
	$(GO) run ./cmd/euconfuzz -campaign large128 -seed 1 -n 6 -periods 100

## chaos: a deeper campaign for local soak testing (hundreds of scenarios,
## wider clause compositions).
chaos:
	$(GO) run ./cmd/euconfuzz -seed 1 -n 500 -max-clauses 6
