// Package eucon is a Go implementation of EUCON — End-to-end Utilization
// CONtrol (Lu, Wang, Koutsoukos; ICDCS 2004) — together with everything
// needed to use and evaluate it: the end-to-end periodic task model, a
// MIMO model-predictive rate controller with a native constrained
// least-squares solver, closed-loop stability analysis, an event-driven
// distributed real-time system simulator (preemptive RMS + release guard),
// the OPEN open-loop baseline, and a TCP control plane for running the
// feedback loop across real processes.
//
// # Quick start
//
//	trace, err := eucon.RunExperiment(context.Background(), eucon.ExperimentSpec{
//		Workload: eucon.WorkloadSimple,
//		ETF:      0.5, // actual execution times are half the estimates
//	})
//
// The trace holds per-sampling-period utilizations and task rates; with the
// defaults above every processor's utilization converges to its
// Liu–Layland set point even though execution times are mis-estimated by
// 2×. For custom workloads or controller tuning, build a controller with
// NewControllerOpts and run it through an ExperimentSpec with System and
// Custom set.
//
// The package is a facade: implementations live in internal/ packages and
// are re-exported here as type aliases, so the types below are the same
// types used throughout the library.
package eucon

import (
	"context"
	"math/rand"

	"github.com/rtsyslab/eucon/internal/baseline"
	"github.com/rtsyslab/eucon/internal/core"
	"github.com/rtsyslab/eucon/internal/metrics"
	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/task"
	"github.com/rtsyslab/eucon/internal/workload"
)

// Task model (see internal/task).
type (
	// System is a workload: a set of end-to-end tasks over n processors.
	System = task.System
	// Task is a periodic end-to-end task: a chain of subtasks with an
	// adjustable invocation rate.
	Task = task.Task
	// Subtask is one stage of a task, pinned to a processor with an
	// estimated execution time.
	Subtask = task.Subtask
)

// Controller types (see internal/core and internal/sim).
type (
	// Controller is the unified rate-controller interface of the feedback
	// loop: Name, Step, Reset, and SetPoints. Every controller in the
	// library implements it — MPCController (iterative or explicit MPC),
	// DecentralizedController, OpenBaseline, and PIDBaseline — and
	// SimulationConfig.Controller accepts any implementation.
	Controller = sim.Controller
	// MPCController is the EUCON model-predictive rate controller, the
	// paper's primary contribution. (Before the unified Controller
	// interface this concrete type was named eucon.Controller.)
	MPCController = core.Controller
	// ControllerConfig tunes the MPC controller; the zero value selects
	// the paper's SIMPLE parameters (P=2, M=1, Tref/Ts=4).
	ControllerConfig = core.Config
)

// Simulation types (see internal/sim).
type (
	// SimulationConfig describes one simulation run.
	SimulationConfig = sim.Config
	// Trace is the per-period record of a run.
	Trace = sim.Trace
	// RunStats aggregates counters over a run.
	RunStats = sim.Stats
	// RateController is the pre-interface name of Controller.
	//
	// Deprecated: use Controller.
	RateController = sim.RateController
	// ETFSchedule is a piecewise-constant execution-time factor over time.
	ETFSchedule = sim.ETFSchedule
	// ETFStep is one segment of an ETFSchedule.
	ETFStep = sim.ETFStep
	// OpenBaseline is the paper's OPEN open-loop comparator.
	OpenBaseline = baseline.Open
)

// Summary bundles mean/std/min/max of a utilization series (see
// internal/metrics).
type Summary = metrics.Summary

// NewController builds an EUCON MPC controller for a system. setPoints
// gives the desired utilization per processor; nil selects each
// processor's Liu–Layland schedulable bound, which makes utilization
// control enforce all subtask deadlines (paper eq. 13). It is a thin
// wrapper over NewControllerOpts for callers who prefer a config struct.
func NewController(sys *System, setPoints []float64, cfg ControllerConfig) (*MPCController, error) {
	return core.New(sys, setPoints, cfg)
}

// NewOpenBaseline builds the OPEN comparator: fixed rates assigned offline
// from the estimated execution times so that B = F·r′.
func NewOpenBaseline(sys *System, setPoints []float64) (*OpenBaseline, error) {
	return baseline.NewOpen(sys, setPoints)
}

// Simulate runs the event-driven simulator for cfg.Periods sampling
// periods and returns the trace.
//
// Deprecated: use RunExperiment for the declarative experiment API (which
// also validates fault specs and applies the paper defaults), or
// SimulateContext when a raw SimulationConfig with cancellation is needed.
// Simulate remains for source compatibility.
func Simulate(cfg SimulationConfig) (*Trace, error) {
	return SimulateContext(context.Background(), cfg)
}

// SimulateContext is Simulate with cancellation: the context is checked at
// every sampling boundary and the run aborts with ctx.Err() once it is
// done.
func SimulateContext(ctx context.Context, cfg SimulationConfig) (*Trace, error) {
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	return s.RunContext(ctx)
}

// ConstantETF returns a schedule where actual execution times are factor
// times the design-time estimates for the whole run.
func ConstantETF(factor float64) ETFSchedule { return sim.ConstantETF(factor) }

// StepETF builds a piecewise-constant execution-time factor schedule.
func StepETF(steps ...ETFStep) (ETFSchedule, error) { return sim.StepETF(steps...) }

// SimpleWorkload returns the paper's SIMPLE configuration (Table 1):
// 3 tasks, 4 subtasks, 2 processors.
func SimpleWorkload() *System { return workload.Simple() }

// MediumWorkload returns the paper's MEDIUM configuration: 12 tasks
// (25 subtasks) on 4 processors, 8 end-to-end + 4 local tasks.
func MediumWorkload() *System { return workload.Medium() }

// LargeWorkload returns a deterministic scaling workload (DESIGN.md §11):
// procs processors in a line with 4 task chains starting per processor,
// chain fan-out bounded so the allocation matrix is block-banded. procs
// must be at least 6; LARGE-128 and LARGE-1024 are the registered
// instances (WorkloadLarge128/WorkloadLarge1024).
func LargeWorkload(procs int) (*System, error) { return workload.Large(procs) }

// SimpleControllerConfig returns the paper's Table 2 controller parameters
// for SIMPLE (P=2, M=1, Tref/Ts=4).
func SimpleControllerConfig() ControllerConfig { return workload.SimpleController() }

// MediumControllerConfig returns the paper's Table 2 controller parameters
// for MEDIUM (P=4, M=2, Tref/Ts=4).
func MediumControllerConfig() ControllerConfig { return workload.MediumController() }

// RandomWorkloadConfig parameterizes RandomWorkload.
type RandomWorkloadConfig = workload.RandomConfig

// RandomWorkload generates a pseudo-random valid workload, deterministic
// in rng.
func RandomWorkload(cfg RandomWorkloadConfig, rng *rand.Rand) (*System, error) {
	return workload.Random(cfg, rng)
}

// LiuLaylandBound returns the RMS schedulable utilization bound
// m·(2^{1/m} − 1) for m tasks on one processor.
func LiuLaylandBound(m int) float64 { return task.LiuLaylandBound(m) }

// Summarize computes mean/std/min/max of a series, e.g. one processor's
// utilization column.
func Summarize(series []float64) Summary { return metrics.Summarize(series) }

// UtilizationSeries extracts processor p's utilization series from a
// trace.
func UtilizationSeries(tr *Trace, p int) []float64 {
	return metrics.Column(tr.Utilization, p)
}

// RateSeries extracts task i's rate series from a trace.
func RateSeries(tr *Trace, i int) []float64 {
	return metrics.Column(tr.Rates, i)
}
