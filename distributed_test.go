package eucon_test

import (
	"context"
	"math"
	"net"
	"sync"
	"testing"

	eucon "github.com/rtsyslab/eucon"
)

// TestServeControllerFacade drives the paper's SIMPLE workload through the
// root distributed facade: one controller daemon, two node agents (one per
// processor, deliberately on different wire codecs), lockstep loop.
func TestServeControllerFacade(t *testing.T) {
	sys := eucon.SimpleWorkload()
	ctrl, err := eucon.NewController(sys, nil, eucon.SimpleControllerConfig())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	codecs := []eucon.WireCodec{eucon.BinaryCodec, eucon.JSONCodec}
	for p := 0; p < sys.Processors; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := eucon.RunNodeAgent(ctx, sys, p, addr,
				eucon.DistributedETF(eucon.ConstantETF(1)),
				eucon.DistributedCodec(codecs[p%len(codecs)]))
			if err != nil {
				t.Errorf("agent P%d: %v", p+1, err)
			}
		}()
	}

	res, err := eucon.ServeController(ctx, sys, ctrl, ln,
		eucon.DistributedPeriods(60), eucon.DistributedTrace(true))
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Periods != 60 || res.Joins != sys.Processors || res.Crashes != 0 {
		t.Fatalf("run record: periods=%d joins=%d crashes=%d", res.Periods, res.Joins, res.Crashes)
	}
	sp := ctrl.SetPoints()
	final := res.Utilization[len(res.Utilization)-1]
	for p, v := range final {
		if math.Abs(v-sp[p]) > 0.05 {
			t.Errorf("u(P%d) = %.4f, want %.4f ± 0.05", p+1, v, sp[p])
		}
	}
}
