// Quickstart: run EUCON on the paper's SIMPLE workload with execution
// times that are only half of the design-time estimates (etf = 0.5 —
// Figure 3(a) of the paper), and watch both processors converge to the
// Liu–Layland set point 0.828 anyway.
package main

import (
	"context"
	"fmt"
	"os"

	eucon "github.com/rtsyslab/eucon"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	sys := eucon.SimpleWorkload()

	// The declarative experiment API selects the paper's SIMPLE workload
	// and EUCON controller (with Liu–Layland set points, so holding the
	// set point guarantees all subtask deadlines) from the spec alone.
	trace, err := eucon.RunExperiment(context.Background(), eucon.ExperimentSpec{
		Workload: eucon.WorkloadSimple,
		Periods:  120,
		ETF:      eucon.ConstantETF(0.5), // actual times are half the estimates
	})
	if err != nil {
		return err
	}

	fmt.Println("period  u(P1)   u(P2)   set point 0.828")
	for k := 0; k < len(trace.Utilization); k += 10 {
		u := trace.Utilization[k]
		fmt.Printf("%6d  %.4f  %.4f\n", k+1, u[0], u[1])
	}
	for p := 0; p < sys.Processors; p++ {
		s := eucon.Summarize(eucon.UtilizationSeries(trace, p)[60:])
		fmt.Printf("P%d steady state: %v\n", p+1, s)
	}
	fmt.Printf("deadline misses: %d subtask, %d end-to-end (of %d completions)\n",
		trace.Stats.SubtaskDeadlineMisses, trace.Stats.EndToEndDeadlineMisses, trace.Stats.EndToEndCompletions)
	return nil
}
