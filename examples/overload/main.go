// Overload protection with online set-point changes (paper §3.3): an
// operator lowers a processor's utilization set point mid-run — e.g. in
// anticipation of a high-priority batch job arriving on that node — and
// EUCON redistributes task rates to enforce the new bound, then restores
// it later.
//
// The example also shows how to extend the feedback loop: a small adapter
// implements the Controller interface around the EUCON controller and
// injects the set-point changes at specific sampling periods.
package main

import (
	"context"
	"fmt"
	"os"

	eucon "github.com/rtsyslab/eucon"
)

// operatorController wraps the EUCON controller and applies scheduled
// set-point changes, as an operator console would.
type operatorController struct {
	inner    *eucon.MPCController
	defaults []float64
	changes  map[int][]float64 // period → new set points
}

var _ eucon.Controller = (*operatorController)(nil)

func (o *operatorController) Name() string { return "EUCON+operator" }

func (o *operatorController) Reset() {
	o.inner.Reset()
	// Replications restart from the operator's default reservation plan.
	if err := o.inner.UpdateSetPoints(o.defaults); err != nil {
		panic(err)
	}
}

func (o *operatorController) SetPoints() []float64 { return o.inner.SetPoints() }

func (o *operatorController) Step(k int, u, rates []float64) ([]float64, error) {
	if b, ok := o.changes[k]; ok {
		if err := o.inner.UpdateSetPoints(b); err != nil {
			return nil, err
		}
	}
	return o.inner.Step(k, u, rates)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "overload: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	sys := eucon.MediumWorkload()
	defaults := make([]float64, sys.Processors)
	for p := range defaults {
		defaults[p] = eucon.LiuLaylandBound(sys.SubtaskCount(p))
	}
	ctrl, err := eucon.NewController(sys, defaults, eucon.MediumControllerConfig())
	if err != nil {
		return err
	}

	// At period 120 the operator reserves half of P1 for an incoming batch
	// job; at period 240 the reservation is released.
	lowered := append([]float64(nil), defaults...)
	lowered[0] = 0.35
	op := &operatorController{
		inner:    ctrl,
		defaults: defaults,
		changes: map[int][]float64{
			120: lowered,
			240: defaults,
		},
	}

	// Custom hands the wrapped controller to the experiment runner; the
	// MEDIUM workload supplies the plant, sampling period, and jitter.
	trace, err := eucon.RunExperiment(context.Background(), eucon.ExperimentSpec{
		Workload: eucon.WorkloadMedium,
		Custom:   op,
		Periods:  360,
		ETF:      eucon.ConstantETF(1),
		Seed:     3,
	})
	if err != nil {
		return err
	}

	fmt.Printf("default set points: %.4f %.4f %.4f %.4f\n", defaults[0], defaults[1], defaults[2], defaults[3])
	fmt.Println("at k=120 the operator lowers P1's set point to 0.35; at k=240 restores it")
	fmt.Println()
	fmt.Println("phase                u(P1)   u(P2)   u(P3)   u(P4)")
	for _, seg := range []struct {
		name     string
		from, to int
	}{
		{"before (defaults) ", 60, 120},
		{"reserved (P1=0.35)", 180, 240},
		{"restored          ", 300, 360},
	} {
		fmt.Printf("%-20s", seg.name)
		for p := 0; p < sys.Processors; p++ {
			s := eucon.Summarize(eucon.UtilizationSeries(trace, p)[seg.from:seg.to])
			fmt.Printf(" %.4f", s.Mean)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("P1 honors the lowered bound while the other processors stay at their")
	fmt.Println("set points — tasks sharing P1 slow down, local tasks elsewhere do not.")
	return nil
}
