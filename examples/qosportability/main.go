// QoS portability: the same application binary deployed on a fast and a
// slow platform with NO retuning — paper §3.3's middleware scenario.
//
// On the faster platform every execution time shrinks (etf < 1): EUCON
// automatically raises task rates to exploit the headroom. On the slower
// platform (etf > 1) it lowers them to preserve the utilization guarantee.
// Either way the measured utilization lands on the same set point, which
// is exactly what "QoS portability" means: deploy anywhere, keep the
// guarantee, no manual performance tuning.
package main

import (
	"context"
	"fmt"
	"os"

	eucon "github.com/rtsyslab/eucon"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "qosportability: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	platforms := []struct {
		name string
		etf  float64
	}{
		{"reference platform (etf 1.0)", 1.0},
		{"2x faster platform   (etf 0.5)", 0.5},
		{"2x slower platform  (etf 2.0)", 2.0},
	}

	fmt.Println("deploying the SIMPLE application on three platforms, set point 0.828:")
	fmt.Println()
	fmt.Printf("%-32s %-9s %-9s %-22s\n", "platform", "u(P1)", "u(P2)", "task periods (T1,T2,T3)")
	for _, pf := range platforms {
		trace, err := eucon.RunExperiment(context.Background(), eucon.ExperimentSpec{
			Workload: eucon.WorkloadSimple,
			Periods:  150,
			ETF:      eucon.ConstantETF(pf.etf),
		})
		if err != nil {
			return err
		}
		u1 := eucon.Summarize(eucon.UtilizationSeries(trace, 0)[75:]).Mean
		u2 := eucon.Summarize(eucon.UtilizationSeries(trace, 1)[75:]).Mean
		finalRates := trace.Rates[len(trace.Rates)-1]
		fmt.Printf("%-32s %-9.4f %-9.4f %.0f, %.0f, %.0f\n",
			pf.name, u1, u2, 1/finalRates[0], 1/finalRates[1], 1/finalRates[2])
	}
	fmt.Println()
	fmt.Println("same utilization guarantee on every platform; only the task rates")
	fmt.Println("(application quality) differ — no manual retuning was needed.")
	return nil
}
