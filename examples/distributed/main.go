// Distributed: the paper's §4 architecture running over real TCP — a
// centralized model-predictive controller connected by feedback lanes to
// one node agent per processor, each hosting a utilization monitor and a
// rate modulator. This example launches everything in one process over
// loopback; cmd/euconctl and cmd/nodeagent are the same pieces as separate
// binaries for real deployments.
package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	eucon "github.com/rtsyslab/eucon"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "distributed: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	sys := eucon.SimpleWorkload()
	ctrl, err := eucon.NewController(sys, nil, eucon.SimpleControllerConfig())
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	coord, err := eucon.NewCoordinator(eucon.CoordinatorConfig{
		System:     sys,
		Controller: ctrl,
		Listener:   ln,
		Periods:    80,
		Timeout:    5 * time.Second,
	})
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// One node agent per processor, each on its own goroutine with its own
	// TCP connection — exactly how the separate nodeagent binaries run.
	var wg sync.WaitGroup
	for p := 0; p < sys.Processors; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := eucon.RunNode(ctx, eucon.NodeConfig{
				Processor:      p,
				System:         sys,
				Addr:           ln.Addr().String(),
				Name:           fmt.Sprintf("node-P%d", p+1),
				ETF:            eucon.ConstantETF(0.5), // estimates are 2x pessimistic
				SamplingPeriod: 1000,
				Jitter:         0.05,
				Seed:           int64(p + 1),
				Timeout:        5 * time.Second,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "node P%d: %v\n", p+1, err)
			}
		}()
	}

	fmt.Printf("coordinator on %s, %d node agents, 80 feedback periods over TCP\n", ln.Addr(), sys.Processors)
	res, err := coord.Run(ctx)
	wg.Wait()
	if err != nil {
		return err
	}

	fmt.Println("\nperiod  u(P1)   u(P2)")
	for k := 0; k < len(res.Utilization); k += 10 {
		fmt.Printf("%6d  %.4f  %.4f\n", k+1, res.Utilization[k][0], res.Utilization[k][1])
	}
	last := res.Utilization[len(res.Utilization)-1]
	fmt.Printf("\nfinal utilizations %.4f / %.4f — set point 0.828 reached across real sockets\n", last[0], last[1])
	return nil
}
