// Avionics: EUCON on a DRE mission-computing workload — the paper's
// flagship domain. A surveillance pipeline's execution times depend on the
// number of tracked targets, which the ground cannot predict; EUCON keeps
// every processor at its schedulable bound so end-to-end deadlines hold,
// trading frame rates instead of dropping the mission.
//
// This mirrors Experiment II (Figures 6–8): execution times step up when
// the target count spikes and back down when it clears, and the controller
// re-converges within tens of sampling periods.
package main

import (
	"context"
	"fmt"
	"os"

	eucon "github.com/rtsyslab/eucon"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "avionics: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		sensor  = iota // sensor I/O processor
		fusion         // track fusion processor
		mission        // mission management processor
	)
	sys := &eucon.System{
		Name:       "avionics",
		Processors: 3,
		Tasks: []eucon.Task{
			{
				// Radar track processing: sensor → fusion.
				Name: "radar",
				Subtasks: []eucon.Subtask{
					{Processor: sensor, EstimatedCost: 20},
					{Processor: fusion, EstimatedCost: 30},
				},
				RateMin: 1.0 / 2000, RateMax: 1.0 / 50, InitialRate: 1.0 / 300,
			},
			{
				// Infrared search & track: sensor → fusion → mission.
				Name: "irst",
				Subtasks: []eucon.Subtask{
					{Processor: sensor, EstimatedCost: 25},
					{Processor: fusion, EstimatedCost: 20},
					{Processor: mission, EstimatedCost: 15},
				},
				RateMin: 1.0 / 2000, RateMax: 1.0 / 60, InitialRate: 1.0 / 350,
			},
			{
				// Navigation updates: mission processor only.
				Name:     "nav",
				Subtasks: []eucon.Subtask{{Processor: mission, EstimatedCost: 18}},
				RateMin:  1.0 / 1500, RateMax: 1.0 / 40, InitialRate: 1.0 / 250,
			},
			{
				// Threat evaluation: fusion → mission.
				Name: "threat",
				Subtasks: []eucon.Subtask{
					{Processor: fusion, EstimatedCost: 22},
					{Processor: mission, EstimatedCost: 28},
				},
				RateMin: 1.0 / 2500, RateMax: 1.0 / 70, InitialRate: 1.0 / 400,
			},
			{
				// Cockpit display refresh: sensor processor only.
				Name:     "display",
				Subtasks: []eucon.Subtask{{Processor: sensor, EstimatedCost: 15}},
				RateMin:  1.0 / 1200, RateMax: 1.0 / 35, InitialRate: 1.0 / 200,
			},
		},
	}

	// nil set points → Liu–Layland bounds per processor: holding them
	// guarantees every subtask deadline under RMS. WithExplicit compiles
	// the control law offline so each in-flight decision is a table lookup
	// (rates are bit-identical to the iterative solver either way).
	ctrl, err := eucon.NewControllerOpts(sys, nil,
		eucon.WithHorizons(4, 2),
		eucon.WithTrefOverTs(4),
		eucon.WithExplicit(64),
	)
	if err != nil {
		return err
	}

	// Target-count dynamics: quiet cruise, a 12-target engagement at
	// t = 120Ts (execution times +150%), clearing at t = 260Ts.
	etf, err := eucon.StepETF(
		eucon.ETFStep{At: 0, Factor: 0.6},
		eucon.ETFStep{At: 120_000, Factor: 1.5},
		eucon.ETFStep{At: 260_000, Factor: 0.8},
	)
	if err != nil {
		return err
	}

	trace, err := eucon.RunExperiment(context.Background(), eucon.ExperimentSpec{
		System:         sys,
		Custom:         ctrl,
		SamplingPeriod: 1000,
		Periods:        400,
		ETF:            etf,
		Jitter:         0.2,
		Seed:           42,
	})
	if err != nil {
		return err
	}

	names := []string{"sensor ", "fusion ", "mission"}
	fmt.Println("phase                      u(sensor) u(fusion) u(mission)")
	fmt.Printf("%-26s", "set points")
	for p := range names {
		fmt.Printf(" %.4f   ", eucon.LiuLaylandBound(sys.SubtaskCount(p)))
	}
	fmt.Println()
	for _, seg := range []struct {
		name     string
		from, to int
	}{
		{"cruise (etf 0.6)", 60, 120},
		{"engagement (etf 1.5)", 180, 260},
		{"post-engagement (0.8)", 330, 400},
	} {
		fmt.Printf("%-26s", seg.name)
		for p := range names {
			s := eucon.Summarize(eucon.UtilizationSeries(trace, p)[seg.from:seg.to])
			fmt.Printf(" %.4f   ", s.Mean)
		}
		fmt.Println()
	}
	fmt.Println("\nframe rates adapt to load (invocations per 1000 time units):")
	fmt.Println("task     cruise  engagement  post")
	for i := range sys.Tasks {
		r := eucon.RateSeries(trace, i)
		fmt.Printf("%-8s %.2f    %.2f        %.2f\n", sys.Tasks[i].Name,
			1000*eucon.Summarize(r[60:120]).Mean,
			1000*eucon.Summarize(r[180:260]).Mean,
			1000*eucon.Summarize(r[330:400]).Mean)
	}
	fmt.Printf("\nend-to-end deadline misses: %d of %d completions\n",
		trace.Stats.EndToEndDeadlineMisses, trace.Stats.EndToEndCompletions)
	fmt.Printf("explicit-law lookups: %d hits, %d solver fallbacks\n",
		trace.Stats.ExplicitHits, trace.Stats.ExplicitMisses)
	return nil
}
