// Webfarm: EUCON as overload protection for a multi-tier e-business
// cluster — one of the motivating applications in the paper's
// introduction.
//
// The model: a 3-tier cluster (web frontend, application server, database)
// serving four request classes. Each class is an end-to-end task whose
// subtasks visit the tiers it touches; the "rate" is the admitted request
// rate for that class. Service times fluctuate with content dynamics
// (cache hits, result sizes), modeled as execution-time factor swings. The
// goal is to keep every tier below a utilization bound — avoiding the
// saturation-induced collapse the paper warns about — while admitting as
// much traffic as possible.
package main

import (
	"context"
	"fmt"
	"os"

	eucon "github.com/rtsyslab/eucon"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "webfarm: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		web = iota
		app
		db
	)
	// Estimated service demand (ms of CPU) per tier per request class.
	sys := &eucon.System{
		Name:       "webfarm",
		Processors: 3,
		Tasks: []eucon.Task{
			{
				// Static page: web tier only.
				Name:     "static",
				Subtasks: []eucon.Subtask{{Processor: web, EstimatedCost: 2}},
				RateMin:  0.005, RateMax: 2, InitialRate: 0.05,
			},
			{
				// Catalog browsing: web → app → db.
				Name: "browse",
				Subtasks: []eucon.Subtask{
					{Processor: web, EstimatedCost: 3},
					{Processor: app, EstimatedCost: 8},
					{Processor: db, EstimatedCost: 10},
				},
				RateMin: 0.002, RateMax: 0.08, InitialRate: 0.01,
			},
			{
				// Checkout: heavier app + db work.
				Name: "checkout",
				Subtasks: []eucon.Subtask{
					{Processor: web, EstimatedCost: 4},
					{Processor: app, EstimatedCost: 15},
					{Processor: db, EstimatedCost: 20},
				},
				RateMin: 0.001, RateMax: 0.03, InitialRate: 0.005,
			},
			{
				// Search: app-tier dominated.
				Name: "search",
				Subtasks: []eucon.Subtask{
					{Processor: web, EstimatedCost: 3},
					{Processor: app, EstimatedCost: 25},
				},
				RateMin: 0.001, RateMax: 0.05, InitialRate: 0.005,
			},
		},
	}

	// Keep every tier at or below 70% to preserve latency headroom.
	ctrl, err := eucon.NewControllerOpts(sys, []float64{0.7, 0.7, 0.7},
		eucon.WithHorizons(4, 2),
		eucon.WithTrefOverTs(4),
	)
	if err != nil {
		return err
	}

	// A flash crowd doubles effective service times at t = 150Ts (cold
	// caches), then subsides at t = 300Ts.
	etf, err := eucon.StepETF(
		eucon.ETFStep{At: 0, Factor: 1},
		eucon.ETFStep{At: 150_000, Factor: 2},
		eucon.ETFStep{At: 300_000, Factor: 1.2},
	)
	if err != nil {
		return err
	}

	trace, err := eucon.RunExperiment(context.Background(), eucon.ExperimentSpec{
		System:         sys,
		Custom:         ctrl,
		SamplingPeriod: 1000,
		Periods:        450,
		ETF:            etf,
		Jitter:         0.3, // bursty per-request service times
		Seed:           7,
		MaxBacklog:     4, // shed requests instead of queueing unboundedly
	})
	if err != nil {
		return err
	}

	tiers := []string{"web", "app", "db "}
	fmt.Println("phase                    u(web)  u(app)  u(db)")
	for _, seg := range []struct {
		name     string
		from, to int
	}{
		{"steady (etf 1.0)", 80, 150},
		{"flash crowd (etf 2.0)", 230, 300},
		{"recovered (etf 1.2)", 380, 450},
	} {
		fmt.Printf("%-24s", seg.name)
		for p := range tiers {
			s := eucon.Summarize(eucon.UtilizationSeries(trace, p)[seg.from:seg.to])
			fmt.Printf(" %.4f", s.Mean)
		}
		fmt.Println()
	}
	fmt.Println("\nadmitted request rates (per time unit):")
	fmt.Println("class     before-crowd  during-crowd  after")
	for i := range sys.Tasks {
		r := eucon.RateSeries(trace, i)
		fmt.Printf("%-9s %.5f       %.5f       %.5f\n", sys.Tasks[i].Name,
			eucon.Summarize(r[80:150]).Mean, eucon.Summarize(r[230:300]).Mean, eucon.Summarize(r[380:450]).Mean)
	}
	fmt.Printf("\nrequests shed during overload: %d\n", trace.Stats.SkippedJobs)
	fmt.Println("every tier held at/below 0.70 despite 2x service-time swings.")
	return nil
}
