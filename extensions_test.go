package eucon_test

import (
	"math"
	"strings"
	"testing"

	eucon "github.com/rtsyslab/eucon"
)

func TestDecentralizedControllerPublicAPI(t *testing.T) {
	sys := eucon.SimpleWorkload()
	ctrl, err := eucon.NewDecentralizedController(sys, nil, eucon.DecentralizedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := eucon.Simulate(eucon.SimulationConfig{
		System:         sys,
		Controller:     ctrl,
		SamplingPeriod: 1000,
		Periods:        150,
		ETF:            eucon.ConstantETF(0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 2; p++ {
		s := eucon.Summarize(eucon.UtilizationSeries(tr, p)[90:])
		if math.Abs(s.Mean-0.828) > 0.03 {
			t.Errorf("P%d mean = %v under DEUCON, want ≈ 0.828", p+1, s.Mean)
		}
	}
	if ctrl.Messages() == 0 {
		t.Error("no messages counted")
	}
}

func TestPIDBaselinePublicAPI(t *testing.T) {
	sys := eucon.SimpleWorkload()
	ctrl, err := eucon.NewPIDBaseline(sys, nil, eucon.PIDConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Name() != "PID" {
		t.Fatalf("Name = %q", ctrl.Name())
	}
}

func TestSchedulabilityPublicAPI(t *testing.T) {
	jobs := []eucon.SchedJob{
		{Cost: 1, Period: 4},
		{Cost: 2, Period: 6},
	}
	resp, err := eucon.ResponseTimes(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if resp[0] != 1 || resp[1] != 3 {
		t.Fatalf("response times = %v, want [1 3]", resp)
	}
	sys := eucon.SimpleWorkload()
	ok, _, err := eucon.SystemSchedulable(sys, []float64{0.005, 0.005, 0.005})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("light load rejected")
	}
	admitted, err := eucon.Admit(sys, []float64{0.005, 0.005, 0.005}, eucon.Task{
		Name:     "extra",
		Subtasks: []eucon.Subtask{{Processor: 0, EstimatedCost: 5}},
		RateMin:  0.001, RateMax: 0.01, InitialRate: 0.002,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !admitted {
		t.Error("small task not admitted")
	}
}

func TestTraceExportPublicAPI(t *testing.T) {
	sys := eucon.SimpleWorkload()
	tr, err := eucon.Simulate(eucon.SimulationConfig{
		System:         sys,
		SamplingPeriod: 1000,
		Periods:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := eucon.WriteUtilizationCSV(&sb, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "u_p1") {
		t.Error("utilization CSV missing header")
	}
	sb.Reset()
	if err := eucon.WriteRatesCSV(&sb, tr); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := eucon.WriteMissRatioCSV(&sb, tr); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := eucon.WriteTraceJSON(&sb, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "sampling_period") {
		t.Error("JSON missing sampling_period")
	}
	if len(tr.Periods) != 3 {
		t.Errorf("PeriodStats rows = %d, want 3", len(tr.Periods))
	}
}
