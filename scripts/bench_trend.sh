#!/bin/sh
# bench_trend.sh appends a dated JSON snapshot of the key benchmarks (clean
# and faulted steady state, plus the LARGE-scale structured-solver and
# localized-DEUCON steps) and the sweep/fault/LARGE-workload digests to
# BENCH_<date>.json, tracking the performance trajectory of the simulator
# core across PRs.
#
# Each benchmark line records ns/op, B/op, and allocs/op from -benchmem; each
# digest line records an FNV-64a hash of a full-precision sweep series at a
# given worker count (equal digests across worker counts and across PRs prove
# the outputs are bit-identical, so a perf change did not move the science).
#
# Usage: scripts/bench_trend.sh [outfile]    (or: make bench-json)
#   BENCHTIME=20x scripts/bench_trend.sh     # override the benchtime
set -eu
cd "$(dirname "$0")/.."

date="$(date +%Y-%m-%d)"
out="${1:-BENCH_${date}.json}"
benchtime="${BENCHTIME:-10x}"

benches='BenchmarkSimulatorMedium$|BenchmarkSimulatorSteadyState$|BenchmarkSimulatorFaultedSteadyState$|BenchmarkFig4SimpleSweep$|BenchmarkFig4SimpleSweepSerial$|BenchmarkControllerStepMedium$|BenchmarkControllerStepExplicitMedium$|BenchmarkDeuconLocalStep$|BenchmarkControllerStepLarge128$|BenchmarkControllerStepLarge128Dense$|BenchmarkDeuconLocalStepLarge128$|BenchmarkDeuconLocalStepLarge1024$'

# The LARGE Figure-4 sweeps run full 120-period closed loops per iteration
# (~2 s at 128 processors, ~25 s at 1024), so they get one iteration each:
# the number tracked is the near-linear 128→1024 scaling ratio, not ns/op
# noise.
large_benches='BenchmarkFig4Large128$|BenchmarkFig4Large1024$'

{
	go test -run '^$' -bench "$benches" -benchmem -benchtime "$benchtime" .
	go test -run '^$' -bench "$large_benches" -benchmem -benchtime 1x .
} |
awk -v date="$date" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
	ns = ""; bytes = ""; allocs = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op")     ns     = $(i-1)
		if ($i == "B/op")      bytes  = $(i-1)
		if ($i == "allocs/op") allocs = $(i-1)
	}
	printf "{\"date\":\"%s\",\"bench\":\"%s\",\"iters\":%s,\"ns_per_op\":%s", date, name, $2, ns
	if (bytes != "")  printf ",\"b_per_op\":%s,\"allocs_per_op\":%s", bytes, allocs
	print "}"
}' >>"$out"

go run ./cmd/euconsim -sweep-digest |
	sed "s/^{/{\"date\":\"${date}\",/" >>"$out"

go run ./cmd/euconsim -faults proc2-crash-recover -fault-digest |
	sed "s/^{/{\"date\":\"${date}\",/" >>"$out"

# LARGE workload digests: the centralized step response on the structured
# solver plus the localized DEUCON closed loop at every worker count. Equal
# digests across workers and PRs prove the scaling work is bit-exact.
go run ./cmd/euconsim -workload large128 |
	sed "s/^{/{\"date\":\"${date}\",/" >>"$out"
go run ./cmd/euconsim -workload large1024 |
	sed "s/^{/{\"date\":\"${date}\",/" >>"$out"

# Explicit-MPC offline compile: region counts, build digest, and wall time
# per workload, so a compiler regression (slower build, different table)
# shows up in the trend record.
go run ./cmd/euconsim -explicit-report |
	sed "s/^{/{\"date\":\"${date}\",/" >>"$out"

# Chaos smoke wall time: how long the 25-scenario CI campaign takes, so a
# regression in fault-storm throughput shows up in the trend record. The
# binary is prebuilt so the stamp measures the campaign, not the compiler.
go build -o /tmp/euconfuzz.bench ./cmd/euconfuzz
chaos_start=$(date +%s%N)
/tmp/euconfuzz.bench -seed 1 -n 25 >/dev/null
chaos_end=$(date +%s%N)
rm -f /tmp/euconfuzz.bench
chaos_ms=$(( (chaos_end - chaos_start) / 1000000 ))
printf '{"date":"%s","bench":"ChaosSmoke25","wall_ms":%s}\n' "$date" "$chaos_ms" >>"$out"

# Distributed-runtime farm: 1000 in-process node agents over loopback TCP
# against one controller daemon for 200 sampling periods with injected
# crashes/rejoins. The JSON line carries wall time, p50/p99 end-to-end
# sampling-period latency, and frames/sec — the latency trajectory of the
# binary lane protocol and the membership layer across PRs. The binary is
# prebuilt so the stamp measures the control plane, not the compiler.
go build -o /tmp/euconfarm.bench ./cmd/euconfarm
/tmp/euconfarm.bench -json |
	sed "s/^{/{\"date\":\"${date}\",/" >>"$out"

# The same 1000-agent fleet degraded (Farm1000Lossy): free-running with
# per-agent clock drift, 5% seeded frame drops with delays/dups/reorders in
# both directions, and 4 partition/heal cycles. The line adds injected-drop
# and re-convergence fields — the robustness trajectory next to the clean
# latency trajectory. The 120ms pace keeps the sampling period above the
# fleet's p99 feedback latency (~103ms clean): a faster pace under-samples
# the loop and the re-convergence gate trips by design (EXPERIMENTS.md,
# "Lossy-network robustness").
/tmp/euconfarm.bench -json -codec binary2 -interval 120ms -skew 0.005 \
	-transport-faults drop=0.05,delayprob=0.5,delay=20ms,dup=0.01,reorder=0.01,seed=7 -partitions 4 |
	sed "s/^{/{\"date\":\"${date}\",/" >>"$out"
rm -f /tmp/euconfarm.bench

# euconlint full-tree wall time: the interprocedural analyzers (transitive
# noalloc proofs, CHA, exhaustiveness, concurrency flow) load and type-check
# the whole module, so analyzer-cost regressions show up in the trend record.
# The binary is prebuilt so the stamp measures analysis, not the compiler.
go build -o /tmp/euconlint.bench ./cmd/euconlint
lint_start=$(date +%s%N)
/tmp/euconlint.bench ./... ./cmd/... >/dev/null
lint_end=$(date +%s%N)
rm -f /tmp/euconlint.bench
lint_ms=$(( (lint_end - lint_start) / 1000000 ))
printf '{"date":"%s","bench":"EuconlintFullTree","wall_ms":%s}\n' "$date" "$lint_ms" >>"$out"

echo "appended benchmark snapshot to $out"
