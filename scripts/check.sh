#!/bin/sh
# Tier-1 check: gofmt, vet, build, race-enabled tests, benchmark smoke.
# Usage: ./scripts/check.sh   (or: make check)
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> benchmark smoke (1 iteration, -short)"
go test -short -run '^$' -bench . -benchtime 1x ./...

echo "==> OK"
