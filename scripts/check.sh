#!/bin/sh
# Tier-1 check: gofmt -s, vet, euconlint, build, race-enabled tests,
# benchmark smoke, the steady-state zero-allocation gates (simulator,
# explicit MPC, and the localized DEUCON step at 128 processors), the
# sweep/fault/LARGE-workload digest diffs against scripts/golden/, and the
# chaos smoke campaigns (25 seeded fault storms on SIMPLE, 6 localized
# fault storms at 128 processors, and 2 partition scenarios against a real
# 8-agent TCP fleet, every robustness invariant enforced), and the
# distributed-runtime smokes (euconfarm: 64 node agents over loopback TCP
# riding through injected crashes without a controller restart, clean and
# again under transport loss, clock drift, and a partition/heal cycle).
# Usage: ./scripts/check.sh   (or: make check)
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt -s"
unformatted=$(gofmt -s -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt -s needed on:"
	echo "$unformatted"
	exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> euconlint ./... ./cmd/... (make lint)"
go run ./cmd/euconlint ./... ./cmd/...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> benchmark smoke (1 iteration, -short)"
go test -short -run '^$' -bench . -benchtime 1x ./...

echo "==> steady-state allocation gate (BenchmarkSimulatorSteadyState)"
bench_out=$(go test -run '^$' -bench 'BenchmarkSimulatorSteadyState$' -benchmem -benchtime 5x .)
echo "$bench_out"
allocs=$(echo "$bench_out" | awk '/BenchmarkSimulatorSteadyState/ {print $(NF-1)}')
if [ -z "$allocs" ]; then
	echo "FAIL: BenchmarkSimulatorSteadyState did not run; the allocation gate has no teeth"
	exit 1
fi
if [ "$allocs" != "0" ]; then
	echo "FAIL: BenchmarkSimulatorSteadyState reports $allocs allocs/op; the steady state must not allocate"
	exit 1
fi

echo "==> explicit-MPC allocation gate (BenchmarkControllerStepExplicitMedium)"
exp_out=$(go test -run '^$' -bench 'BenchmarkControllerStepExplicitMedium$' -benchmem -benchtime 5x .)
echo "$exp_out"
exp_allocs=$(echo "$exp_out" | awk '/BenchmarkControllerStepExplicitMedium/ {print $(NF-1)}')
if [ -z "$exp_allocs" ]; then
	echo "FAIL: BenchmarkControllerStepExplicitMedium did not run; the explicit-step allocation gate has no teeth"
	exit 1
fi
if [ "$exp_allocs" != "0" ]; then
	echo "FAIL: BenchmarkControllerStepExplicitMedium reports $exp_allocs allocs/op; the explicit fast path must not allocate"
	exit 1
fi

echo "==> localized-DEUCON allocation gate (BenchmarkDeuconLocalStepLarge128)"
loc_out=$(go test -run '^$' -bench 'BenchmarkDeuconLocalStepLarge128$' -benchmem -benchtime 5x .)
echo "$loc_out"
loc_allocs=$(echo "$loc_out" | awk '/BenchmarkDeuconLocalStepLarge128/ {print $(NF-1)}')
if [ -z "$loc_allocs" ]; then
	echo "FAIL: BenchmarkDeuconLocalStepLarge128 did not run; the localized-step allocation gate has no teeth"
	exit 1
fi
if [ "$loc_allocs" != "0" ]; then
	echo "FAIL: BenchmarkDeuconLocalStepLarge128 reports $loc_allocs allocs/op; the localized per-processor step must not allocate in steady state"
	exit 1
fi

echo "==> explicit-MPC compile determinism (two compiles, identical digests)"
exp_rep_a=$(go run ./cmd/euconsim -explicit-report)
exp_rep_b=$(go run ./cmd/euconsim -explicit-report)
digests_a=$(echo "$exp_rep_a" | sed 's/.*"digest":"\([^"]*\)".*/\1/')
digests_b=$(echo "$exp_rep_b" | sed 's/.*"digest":"\([^"]*\)".*/\1/')
if [ -z "$digests_a" ] || [ "$digests_a" != "$digests_b" ]; then
	echo "FAIL: explicit region-table build digests differ across compiles:"
	echo "$exp_rep_a"
	echo "$exp_rep_b"
	exit 1
fi
echo "$exp_rep_a"

echo "==> fault scenario digest vs scripts/golden/ (proc2-crash-recover)"
scratch=$(mktemp)
trap 'rm -f "$scratch"' EXIT
go run ./cmd/euconsim -faults proc2-crash-recover -fault-digest > "$scratch"
if ! diff -u scripts/golden/fault-proc2-crash-recover.digest "$scratch"; then
	echo "FAIL: faulted sweep digest moved; fault injection or degradation behaviour changed."
	echo "If intentional, regenerate with:"
	echo "  go run ./cmd/euconsim -faults proc2-crash-recover -fault-digest > scripts/golden/fault-proc2-crash-recover.digest"
	exit 1
fi

echo "==> fig4/fig5 sweep digests vs scripts/golden/ (structured solver must not move the science)"
go run ./cmd/euconsim -sweep-digest > "$scratch"
if ! diff -u scripts/golden/sweep-fig4-fig5.digest "$scratch"; then
	echo "FAIL: fig4/fig5 sweep digests moved; the dense and structured solver paths diverged"
	echo "or a controller change altered the reproduced results."
	echo "If intentional, regenerate with:"
	echo "  go run ./cmd/euconsim -sweep-digest > scripts/golden/sweep-fig4-fig5.digest"
	exit 1
fi

echo "==> LARGE-128 workload digests vs scripts/golden/ (localized DEUCON, workers 1/2/8)"
go run ./cmd/euconsim -workload large128 > "$scratch"
if ! diff -u scripts/golden/workload-large128.digest "$scratch"; then
	echo "FAIL: LARGE-128 digests moved; the structured solver, the localized controller,"
	echo "or the parallel merge changed behaviour (digests must match at every worker count)."
	echo "If intentional, regenerate with:"
	echo "  go run ./cmd/euconsim -workload large128 > scripts/golden/workload-large128.digest"
	echo "  go run ./cmd/euconsim -workload large1024 > scripts/golden/workload-large1024.digest"
	exit 1
fi

echo "==> chaos smoke (make chaos-smoke: 25 seeded fault storms + 6 localized storms at 128 procs)"
go run ./cmd/euconfuzz -seed 1 -n 25
go run ./cmd/euconfuzz -campaign large128 -seed 1 -n 6 -periods 100

echo "==> partition campaign smoke (real 8-agent TCP fleet under partitions and transport loss)"
go run ./cmd/euconfuzz -campaign partition -seed 1 -n 2 -periods 100

echo "==> distributed-runtime smoke (euconfarm: 64 agents over loopback TCP, crashes injected)"
go run ./cmd/euconfarm -smoke

echo "==> lossy-network smoke (FarmLossy: 64 agents, 5% drop + 20ms delays + dup/reorder, drifting clocks, one partition/heal cycle)"
go run ./cmd/euconfarm -smoke -codec binary2 -interval 10ms -skew 0.01 \
	-transport-faults drop=0.05,delayprob=0.3,delay=20ms,dup=0.01,reorder=0.01,seed=7 -partitions 1

echo "==> OK"
