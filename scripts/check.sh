#!/bin/sh
# Tier-1 check: gofmt -s, vet, euconlint, build, race-enabled tests,
# benchmark smoke, the steady-state zero-allocation gate, the faulted
# sweep digest diff against scripts/golden/, and the chaos smoke campaign
# (25 seeded fault storms, every robustness invariant enforced).
# Usage: ./scripts/check.sh   (or: make check)
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt -s"
unformatted=$(gofmt -s -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt -s needed on:"
	echo "$unformatted"
	exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> euconlint ./... (make lint)"
go run ./cmd/euconlint ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> benchmark smoke (1 iteration, -short)"
go test -short -run '^$' -bench . -benchtime 1x ./...

echo "==> steady-state allocation gate (BenchmarkSimulatorSteadyState)"
bench_out=$(go test -run '^$' -bench 'BenchmarkSimulatorSteadyState$' -benchmem -benchtime 5x .)
echo "$bench_out"
allocs=$(echo "$bench_out" | awk '/BenchmarkSimulatorSteadyState/ {print $(NF-1)}')
if [ -z "$allocs" ]; then
	echo "FAIL: BenchmarkSimulatorSteadyState did not run; the allocation gate has no teeth"
	exit 1
fi
if [ "$allocs" != "0" ]; then
	echo "FAIL: BenchmarkSimulatorSteadyState reports $allocs allocs/op; the steady state must not allocate"
	exit 1
fi

echo "==> explicit-MPC allocation gate (BenchmarkControllerStepExplicitMedium)"
exp_out=$(go test -run '^$' -bench 'BenchmarkControllerStepExplicitMedium$' -benchmem -benchtime 5x .)
echo "$exp_out"
exp_allocs=$(echo "$exp_out" | awk '/BenchmarkControllerStepExplicitMedium/ {print $(NF-1)}')
if [ -z "$exp_allocs" ]; then
	echo "FAIL: BenchmarkControllerStepExplicitMedium did not run; the explicit-step allocation gate has no teeth"
	exit 1
fi
if [ "$exp_allocs" != "0" ]; then
	echo "FAIL: BenchmarkControllerStepExplicitMedium reports $exp_allocs allocs/op; the explicit fast path must not allocate"
	exit 1
fi

echo "==> explicit-MPC compile determinism (two compiles, identical digests)"
exp_rep_a=$(go run ./cmd/euconsim -explicit-report)
exp_rep_b=$(go run ./cmd/euconsim -explicit-report)
digests_a=$(echo "$exp_rep_a" | sed 's/.*"digest":"\([^"]*\)".*/\1/')
digests_b=$(echo "$exp_rep_b" | sed 's/.*"digest":"\([^"]*\)".*/\1/')
if [ -z "$digests_a" ] || [ "$digests_a" != "$digests_b" ]; then
	echo "FAIL: explicit region-table build digests differ across compiles:"
	echo "$exp_rep_a"
	echo "$exp_rep_b"
	exit 1
fi
echo "$exp_rep_a"

echo "==> fault scenario digest vs scripts/golden/ (proc2-crash-recover)"
fault_out=$(mktemp)
trap 'rm -f "$fault_out"' EXIT
go run ./cmd/euconsim -faults proc2-crash-recover -fault-digest > "$fault_out"
if ! diff -u scripts/golden/fault-proc2-crash-recover.digest "$fault_out"; then
	echo "FAIL: faulted sweep digest moved; fault injection or degradation behaviour changed."
	echo "If intentional, regenerate with:"
	echo "  go run ./cmd/euconsim -faults proc2-crash-recover -fault-digest > scripts/golden/fault-proc2-crash-recover.digest"
	exit 1
fi

echo "==> chaos smoke (make chaos-smoke: 25 seeded fault storms)"
go run ./cmd/euconfuzz -seed 1 -n 25

echo "==> OK"
