package eucon

import (
	"github.com/rtsyslab/eucon/internal/core"
	"github.com/rtsyslab/eucon/internal/empc"
)

// ControllerOption is a functional option for NewControllerOpts. Options
// compose left to right over the zero ControllerConfig (the paper's SIMPLE
// parameters), so an empty option list is equivalent to
// NewController(sys, setPoints, ControllerConfig{}).
type ControllerOption func(*ControllerConfig)

// WithHorizons sets the MPC prediction horizon P and control horizon M
// (paper Table 2: SIMPLE uses P=2, M=1; MEDIUM uses P=4, M=2). Zero keeps
// the default for that horizon.
func WithHorizons(prediction, control int) ControllerOption {
	return func(c *ControllerConfig) {
		c.PredictionHorizon = prediction
		c.ControlHorizon = control
	}
}

// WithTrefOverTs sets the reference trajectory time constant in sampling
// periods (paper Table 2 uses 4).
func WithTrefOverTs(ratio float64) ControllerOption {
	return func(c *ControllerConfig) { c.TrefOverTs = ratio }
}

// WithWeights sets the per-processor tracking weights w_i of the MPC cost
// function; nil means all 1.
func WithWeights(w []float64) ControllerOption {
	return func(c *ControllerConfig) { c.Weights = w }
}

// WithRateMoveWeights sets the per-task control-penalty weights; nil means
// all 1.
func WithRateMoveWeights(w []float64) ControllerOption {
	return func(c *ControllerConfig) { c.RateMoveWeights = w }
}

// WithMeasurementFilter enables the EWMA measurement pre-filter with the
// given alpha in (0, 1]; see ControllerConfig.MeasurementFilter.
func WithMeasurementFilter(alpha float64) ControllerOption {
	return func(c *ControllerConfig) { c.MeasurementFilter = alpha }
}

// WithStalenessBound sets the hold-last-sample staleness bound in sampling
// periods; see ControllerConfig.StalenessBound.
func WithStalenessBound(periods int) ControllerOption {
	return func(c *ControllerConfig) { c.StalenessBound = periods }
}

// WithoutOutputConstraints removes the hard u ≤ B constraints (ablation
// studies only).
func WithoutOutputConstraints() ControllerOption {
	return func(c *ControllerConfig) { c.DisableOutputConstraints = true }
}

// WithExplicit compiles the controller's parametric QP into an offline
// piecewise-affine law at construction: control steps whose query lands on
// the precomputed map skip the iterative QP solve while producing
// bit-identical rates; steps off the map fall back to the iterative solver
// (see MPCController.ExplicitCounts and ExplicitReport). maxRegions caps
// the offline region enumeration; 0 selects the default.
func WithExplicit(maxRegions int) ControllerOption {
	return func(c *ControllerConfig) {
		c.Explicit = true
		c.ExplicitMaxRegions = maxRegions
	}
}

// WithRateBox overrides the per-task actuator rate bounds the system
// declares. Either slice may be nil to keep the system's bound on that
// side; a non-nil slice needs one entry per task.
func WithRateBox(rmin, rmax []float64) ControllerOption {
	return func(c *ControllerConfig) {
		c.RateMin = rmin
		c.RateMax = rmax
	}
}

// NewControllerOpts builds an EUCON MPC controller with functional
// options:
//
//	ctrl, err := eucon.NewControllerOpts(sys, nil,
//		eucon.WithHorizons(4, 2),
//		eucon.WithExplicit(0),
//	)
//
// Nil setPoints select each processor's Liu–Layland schedulable bound. An
// empty option list builds the paper's SIMPLE controller.
func NewControllerOpts(sys *System, setPoints []float64, opts ...ControllerOption) (*MPCController, error) {
	var cfg ControllerConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	return core.New(sys, setPoints, cfg)
}

// ExplicitCompileReport is the offline-compile report of an explicit MPC
// law: region and exploration counts plus the deterministic build digest.
type ExplicitCompileReport = empc.Report
