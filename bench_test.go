// Benchmark harness: one benchmark per table and figure of the EUCON
// paper's evaluation, plus ablation benchmarks for the design choices
// DESIGN.md calls out. Each benchmark regenerates its artifact's data and
// reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// doubles as a compact reproduction report. cmd/euconsim prints the full
// data series for every artifact; EXPERIMENTS.md records paper-vs-measured.
//
// Benchmarks use DefaultSeed and (for the heavier sweeps) a representative
// subset of the paper's x-axis so a full -bench=. pass stays in the
// minutes range; the euconsim binary runs the complete grids.
package eucon_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/rtsyslab/eucon/internal/baseline"
	"github.com/rtsyslab/eucon/internal/core"
	"github.com/rtsyslab/eucon/internal/deucon"
	"github.com/rtsyslab/eucon/internal/experiments"
	"github.com/rtsyslab/eucon/internal/fault"
	"github.com/rtsyslab/eucon/internal/mat"
	"github.com/rtsyslab/eucon/internal/metrics"
	"github.com/rtsyslab/eucon/internal/mpc"
	"github.com/rtsyslab/eucon/internal/qp"
	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/task"
	"github.com/rtsyslab/eucon/internal/workload"
)

// --- Tables ---

// BenchmarkTable1Simple regenerates Table 1 (the SIMPLE workload
// definition) and its derived allocation matrix.
func BenchmarkTable1Simple(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := workload.Simple()
		if err := sys.Validate(); err != nil {
			b.Fatal(err)
		}
		f := sys.AllocationMatrix()
		if f.At(0, 0) != 35 {
			b.Fatal("Table 1 mismatch")
		}
	}
}

// BenchmarkTable2Controllers regenerates Table 2: construction of both
// controllers with the published parameters.
func BenchmarkTable2Controllers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.New(workload.Simple(), nil, workload.SimpleController()); err != nil {
			b.Fatal(err)
		}
		if _, err := core.New(workload.Medium(), nil, workload.MediumController()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Stability analysis (paper §6.2) ---

// BenchmarkStabilityRegionSimple computes the critical uniform gain of the
// SIMPLE closed loop (paper: 5.95 analytic, 6.5–7 empirical).
func BenchmarkStabilityRegionSimple(b *testing.B) {
	var g float64
	for i := 0; i < b.N; i++ {
		var err error
		g, err = experiments.SimpleCriticalGain()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(g, "critical-gain")
}

// --- Figures ---

// BenchmarkFig3aSimpleEtf05 regenerates Figure 3(a): SIMPLE at etf = 0.5
// converging to the 0.828 set point.
func BenchmarkFig3aSimpleEtf05(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		tr, err := experiments.RunSimple(0.5, experiments.DefaultPeriods, experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		mean = metrics.Mean(metrics.Window(metrics.Column(tr.Utilization, 0), 100, 300))
	}
	b.ReportMetric(mean, "mean-u1")
}

// BenchmarkFig3bSimpleEtf7 regenerates Figure 3(b): SIMPLE at etf = 7
// (beyond the stability bound — oscillation).
func BenchmarkFig3bSimpleEtf7(b *testing.B) {
	var std float64
	for i := 0; i < b.N; i++ {
		tr, err := experiments.RunSimple(7, experiments.DefaultPeriods, experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		std = metrics.StdDev(metrics.Window(metrics.Column(tr.Utilization, 0), 100, 300))
	}
	b.ReportMetric(std, "std-u1")
}

// fig4BenchETFs is the representative Figure 4 subset swept by the
// benchmarks.
var fig4BenchETFs = []float64{0.5, 1, 2, 3, 7}

// fig5BenchETFs is the representative Figure 5 subset swept by the
// benchmarks.
var fig5BenchETFs = []float64{0.1, 0.5, 1, 2}

func benchFig4Sweep(b *testing.B, parallelism int) {
	var acceptable int
	for i := 0; i < b.N; i++ {
		pts, err := experiments.SweepParallel(context.Background(), experiments.Spec{
			Workload:    experiments.WorkloadSimple,
			Seed:        experiments.DefaultSeed,
			Parallelism: parallelism,
		}, fig4BenchETFs)
		if err != nil {
			b.Fatal(err)
		}
		acceptable = 0
		for _, p := range pts {
			if p.Acceptable {
				acceptable++
			}
		}
	}
	b.ReportMetric(float64(acceptable), "acceptable-points")
}

// BenchmarkFig4SimpleSweep regenerates the Figure 4 sweep through the
// worker-pool engine (GOMAXPROCS workers).
func BenchmarkFig4SimpleSweep(b *testing.B) { benchFig4Sweep(b, 0) }

// BenchmarkFig4SimpleSweepSerial is the single-worker baseline for the
// sweep-engine speedup comparison.
func BenchmarkFig4SimpleSweepSerial(b *testing.B) { benchFig4Sweep(b, 1) }

func benchFig5Sweep(b *testing.B, parallelism int) {
	if testing.Short() {
		b.Skip("MEDIUM sweep skipped in -short mode")
	}
	var worstErr float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.SweepParallel(context.Background(), experiments.Spec{
			Workload:    experiments.WorkloadMedium,
			Seed:        experiments.DefaultSeed,
			Parallelism: parallelism,
		}, fig5BenchETFs)
		if err != nil {
			b.Fatal(err)
		}
		worstErr = 0
		for _, p := range pts {
			if e := p.P1.Mean - p.SetPoint; e > worstErr || -e > worstErr {
				if e < 0 {
					e = -e
				}
				worstErr = e
			}
		}
	}
	b.ReportMetric(worstErr, "worst-mean-error")
}

// BenchmarkFig5MediumSweep regenerates the Figure 5 sweep through the
// worker-pool engine (GOMAXPROCS workers); the OPEN comparison line is
// computed alongside.
func BenchmarkFig5MediumSweep(b *testing.B) { benchFig5Sweep(b, 0) }

// BenchmarkFig5MediumSweepSerial is the single-worker baseline for the
// sweep-engine speedup comparison.
func BenchmarkFig5MediumSweepSerial(b *testing.B) { benchFig5Sweep(b, 1) }

// BenchmarkFig6OpenDynamic regenerates Figure 6: MEDIUM under OPEN with
// execution-time steps — utilization tracks the load instead of the set
// point.
func BenchmarkFig6OpenDynamic(b *testing.B) {
	if testing.Short() {
		b.Skip("MEDIUM dynamic run skipped in -short mode")
	}
	var swing float64
	for i := 0; i < b.N; i++ {
		tr, err := experiments.RunMediumDynamic(experiments.KindOPEN, experiments.DefaultPeriods, experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		u1 := metrics.Column(tr.Utilization, 0)
		hi := metrics.Mean(metrics.Window(u1, 150, 200))
		lo := metrics.Mean(metrics.Window(u1, 250, 300))
		swing = hi - lo
	}
	b.ReportMetric(swing, "utilization-swing")
}

// BenchmarkFig7EuconDynamic regenerates Figure 7: MEDIUM under EUCON with
// execution-time steps — re-convergence to the set points.
func BenchmarkFig7EuconDynamic(b *testing.B) {
	if testing.Short() {
		b.Skip("MEDIUM dynamic run skipped in -short mode")
	}
	var settle float64
	for i := 0; i < b.N; i++ {
		tr, err := experiments.RunMediumDynamic(experiments.KindEUCON, experiments.DefaultPeriods, experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		bp := workload.Medium().DefaultSetPoints()[0]
		seg := metrics.MovingAverage(metrics.Window(metrics.Column(tr.Utilization, 0), 100, 200), 5)
		settle = float64(metrics.SettlingTime(seg, bp, 0.05))
	}
	b.ReportMetric(settle, "settling-Ts")
}

// BenchmarkFig8EuconRates regenerates Figure 8: the task-rate trajectories
// of the Figure 7 run (rates drop on the +80% step, rise on the −67%
// step).
func BenchmarkFig8EuconRates(b *testing.B) {
	if testing.Short() {
		b.Skip("MEDIUM dynamic run skipped in -short mode")
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		tr, err := experiments.RunMediumDynamic(experiments.KindEUCON, experiments.DefaultPeriods, experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		r1 := metrics.Mean(metrics.Column(tr.Rates, 0)[60:100])
		r2 := metrics.Mean(metrics.Column(tr.Rates, 0)[160:200])
		ratio = r2 / r1
	}
	b.ReportMetric(ratio, "rate-ratio-after-step")
}

// --- Ablations (DESIGN.md §5) ---

func simpleClosedLoopStd(b *testing.B, cfg core.Config, etf float64) float64 {
	b.Helper()
	sys := workload.Simple()
	ctrl, err := core.New(sys, nil, cfg)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sim.New(sim.Config{
		System:         sys,
		SamplingPeriod: workload.SamplingPeriod,
		Periods:        200,
		Controller:     ctrl,
		ETF:            sim.ConstantETF(etf),
		Seed:           experiments.DefaultSeed,
	})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := s.Run()
	if err != nil {
		b.Fatal(err)
	}
	return metrics.StdDev(metrics.Window(metrics.Column(tr.Utilization, 0), 100, 200))
}

// BenchmarkAblationHorizons compares oscillation at etf = 2 under the
// short (P=2, M=1) and long (P=4, M=2) horizons.
func BenchmarkAblationHorizons(b *testing.B) {
	var short, long float64
	for i := 0; i < b.N; i++ {
		short = simpleClosedLoopStd(b, core.Config{PredictionHorizon: 2, ControlHorizon: 1, TrefOverTs: 4}, 2)
		long = simpleClosedLoopStd(b, core.Config{PredictionHorizon: 4, ControlHorizon: 2, TrefOverTs: 4}, 2)
	}
	b.ReportMetric(short, "std-P2M1")
	b.ReportMetric(long, "std-P4M2")
}

// BenchmarkAblationTref compares convergence speed and oscillation for
// Tref/Ts ∈ {2, 4, 8} (paper §6.3: faster reference → faster convergence,
// more oscillation).
func BenchmarkAblationTref(b *testing.B) {
	stds := make([]float64, 3)
	trefs := []float64{2, 4, 8}
	for i := 0; i < b.N; i++ {
		for j, tref := range trefs {
			stds[j] = simpleClosedLoopStd(b, core.Config{PredictionHorizon: 2, ControlHorizon: 1, TrefOverTs: tref}, 2)
		}
	}
	b.ReportMetric(stds[0], "std-Tref2")
	b.ReportMetric(stds[1], "std-Tref4")
	b.ReportMetric(stds[2], "std-Tref8")
}

// BenchmarkAblationOutputConstraints compares steady-state overshoot with
// and without the hard u ≤ B constraints at etf = 1.
func BenchmarkAblationOutputConstraints(b *testing.B) {
	overshoot := func(disable bool) float64 {
		sys := workload.Simple()
		ctrl, err := core.New(sys, nil, core.Config{
			PredictionHorizon: 2, ControlHorizon: 1, TrefOverTs: 4,
			DisableOutputConstraints: disable,
		})
		if err != nil {
			b.Fatal(err)
		}
		s, err := sim.New(sim.Config{
			System:         sys,
			SamplingPeriod: workload.SamplingPeriod,
			Periods:        200,
			Controller:     ctrl,
			ETF:            sim.ConstantETF(1),
			Seed:           experiments.DefaultSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		tr, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, u := range tr.Utilization[100:] {
			if d := u[0] - 0.829; d > worst {
				worst = d
			}
		}
		return worst
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = overshoot(false)
		without = overshoot(true)
	}
	b.ReportMetric(with, "overshoot-constrained")
	b.ReportMetric(without, "overshoot-unconstrained")
}

// BenchmarkAblationPessimisticEstimates verifies the paper's §6.3 tuning
// guidance: overestimated execution times (gain < 1) oscillate less than
// underestimated ones (gain > 1).
func BenchmarkAblationPessimisticEstimates(b *testing.B) {
	var pessimistic, optimistic float64
	for i := 0; i < b.N; i++ {
		pessimistic = simpleClosedLoopStd(b, core.Config{}, 0.5) // etf < 1: estimates pessimistic
		optimistic = simpleClosedLoopStd(b, core.Config{}, 3)    // etf > 1: estimates optimistic
	}
	b.ReportMetric(pessimistic, "std-etf0.5")
	b.ReportMetric(optimistic, "std-etf3")
}

// --- Component micro-benchmarks (the §6.1 complexity claim) ---

// BenchmarkControllerStepSimple measures one MPC invocation on SIMPLE
// (3 tasks, 2 processors, P=2, M=1).
func BenchmarkControllerStepSimple(b *testing.B) {
	sys := workload.Simple()
	ctrl, err := core.New(sys, nil, workload.SimpleController())
	if err != nil {
		b.Fatal(err)
	}
	u := []float64{0.5, 0.6}
	rates := sys.InitialRates()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctrl.Step(i, u, rates); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkControllerStepMedium measures one MPC invocation on MEDIUM
// (12 tasks, 4 processors, P=4, M=2) — the paper's "polynomial in tasks ×
// processors × horizons" scaling claim.
func BenchmarkControllerStepMedium(b *testing.B) {
	sys := workload.Medium()
	ctrl, err := core.New(sys, nil, workload.MediumController())
	if err != nil {
		b.Fatal(err)
	}
	u := []float64{0.5, 0.6, 0.55, 0.65}
	rates := sys.InitialRates()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctrl.Step(i, u, rates); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkControllerStepExplicitMedium measures the explicit-MPC fast
// path on MEDIUM: with measured utilization near the set point the step is
// a region lookup plus one exact interior evaluation, with zero heap
// allocations. The benchmark fails if any step misses the compiled law,
// so it can never silently degrade into benchmarking the iterative
// fallback. scripts/check.sh gates on 0 allocs/op here.
func BenchmarkControllerStepExplicitMedium(b *testing.B) {
	sys := workload.Medium()
	cfg := workload.MediumController()
	cfg.Explicit = true
	ctrl, err := core.New(sys, nil, cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Utilization just under the set point with mid-box rates is the
	// steady-state neighborhood the interior region covers: the output
	// constraints have slack and no rate bound is tight. (u exactly at the
	// set point sits on the region boundary and truthfully misses.)
	u := append([]float64(nil), ctrl.SetPoints()...)
	for i := range u {
		u[i] *= 0.98
	}
	rates := make([]float64, len(sys.Tasks))
	for i, tk := range sys.Tasks {
		rates[i] = (tk.RateMin + tk.RateMax) / 2
	}
	if _, err := ctrl.Step(0, u, rates); err != nil { // warm lazily built buffers
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctrl.Step(i, u, rates); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if _, misses := ctrl.ExplicitCounts(); misses > 0 {
		b.Fatalf("explicit law missed %d of %d steps; the numbers above measure the iterative fallback, not the lookup path", misses, b.N+1)
	}
}

// BenchmarkExplicitCompileMedium measures the offline compile: the
// one-time cost of enumerating the MEDIUM law's critical regions that the
// per-step lookup above amortizes.
func BenchmarkExplicitCompileMedium(b *testing.B) {
	sys := workload.Medium()
	cfg := workload.MediumController()
	cfg.Explicit = true
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.New(sys, nil, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkControllerStepLarge measures a 32-task / 8-processor random
// workload, probing the scaling limit the paper flags for future work.
func BenchmarkControllerStepLarge(b *testing.B) {
	rng := newRand(11)
	sys, err := workload.Random(workload.RandomConfig{
		Processors:     8,
		EndToEndTasks:  24,
		LocalTasks:     8,
		MaxChainLength: 4,
		MinCost:        10,
		MaxCost:        50,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	ctrl, err := core.New(sys, nil, core.Config{PredictionHorizon: 4, ControlHorizon: 2, TrefOverTs: 4})
	if err != nil {
		b.Fatal(err)
	}
	u := make([]float64, 8)
	for i := range u {
		u[i] = 0.5
	}
	rates := sys.InitialRates()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctrl.Step(i, u, rates); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQPSolver measures the active-set solver on an MPC-shaped
// problem (24 variables, 64 constraints).
func BenchmarkQPSolver(b *testing.B) {
	rng := newRand(5)
	const n, m = 24, 64
	cm := mat.New(n+n, n)
	d := make([]float64, 2*n)
	for i := 0; i < 2*n; i++ {
		d[i] = rng.NormFloat64()
		for j := 0; j < n; j++ {
			cm.Set(i, j, rng.NormFloat64())
		}
	}
	a := mat.New(m, n)
	bb := make([]float64, m)
	for i := 0; i < m; i++ {
		bb[i] = 1 + rng.Float64()
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	x0 := make([]float64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qp.SolveLSI(cm, d, a, bb, x0, qp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQPSolverReused measures the same problem through a prepared LSI:
// the Hessian factorization is cached and scratch buffers are reused across
// solves, the MPC controller's steady-state path.
func BenchmarkQPSolverReused(b *testing.B) {
	rng := newRand(5)
	const n, m = 24, 64
	cm := mat.New(n+n, n)
	d := make([]float64, 2*n)
	for i := 0; i < 2*n; i++ {
		d[i] = rng.NormFloat64()
		for j := 0; j < n; j++ {
			cm.Set(i, j, rng.NormFloat64())
		}
	}
	a := mat.New(m, n)
	bb := make([]float64, m)
	for i := 0; i < m; i++ {
		bb[i] = 1 + rng.Float64()
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	x0 := make([]float64, n)
	solver, err := qp.NewLSI(cm, qp.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Solve(d, a, bb, x0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorMedium measures raw simulator throughput (MEDIUM, no
// controller) with a fresh simulator per run — the cost a one-shot caller
// pays. The remaining allocations are construction-time only (pools,
// trace backing, workload build); the event loop itself is allocation-free
// (see BenchmarkSimulatorSteadyState).
func BenchmarkSimulatorMedium(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := sim.New(sim.Config{
			System:         workload.Medium(),
			SamplingPeriod: workload.SamplingPeriod,
			Periods:        50,
			Jitter:         workload.MediumJitter,
			Seed:           1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorSteadyState measures the simulator's steady-state cost:
// one warm Reset+Run cycle on a reused simulator, the per-replication cost
// sweep workers pay. With warm pools and pre-sized trace buffers this is
// allocation-free — 0 allocs/op is the pinned budget
// (TestSteadyStateEventLoopAllocFree enforces it).
func BenchmarkSimulatorSteadyState(b *testing.B) {
	cfg := sim.Config{
		System:         workload.Medium(),
		SamplingPeriod: workload.SamplingPeriod,
		Periods:        50,
		Jitter:         workload.MediumJitter,
		Seed:           1,
	}
	s, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Run(); err != nil { // warm the pools and buffers
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Reset(cfg); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorFaultedSteadyState is BenchmarkSimulatorSteadyState
// with the kitchen-sink fault scenario compiled in: the same warm
// Reset+Run cycle, but every period now reads the pre-resolved fault
// tables. Measured against the gated clean benchmark it isolates the fault
// layer's steady-state overhead (scripts/bench_trend.sh tracks both). The
// only steady-state allocations are the per-Reset reseeding of the
// probabilistic injectors' private rand sources; the event loop itself
// stays allocation-free.
func BenchmarkSimulatorFaultedSteadyState(b *testing.B) {
	sc, ok := fault.Lookup("kitchen-sink")
	if !ok {
		b.Fatal("kitchen-sink fault scenario not registered")
	}
	cfg := sim.Config{
		System:         workload.Medium(),
		SamplingPeriod: workload.SamplingPeriod,
		Periods:        50,
		Jitter:         workload.MediumJitter,
		Seed:           1,
		Faults:         sc.Specs,
	}
	s, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Run(); err != nil { // warm the pools and fault tables
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Reset(cfg); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGainsComputation measures the stability-analysis gain
// extraction used by cmd/stability.
func BenchmarkGainsComputation(b *testing.B) {
	ctrl, err := core.New(workload.Medium(), nil, workload.MediumController())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ctrl.Gains(); err != nil {
			b.Fatal(err)
		}
	}
}

// newRand returns a deterministic source for benchmark inputs.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// --- Extension benchmarks: decentralized control and PID comparator ---

// BenchmarkDeuconVsEuconMedium compares centralized EUCON and
// decentralized DEUCON steady-state tracking error on MEDIUM at etf = 1.
func BenchmarkDeuconVsEuconMedium(b *testing.B) {
	if testing.Short() {
		b.Skip("MEDIUM comparison runs skipped in -short mode")
	}
	runWith := func(ctrl sim.RateController) float64 {
		sys := workload.Medium()
		s, err := sim.New(sim.Config{
			System:         sys,
			SamplingPeriod: workload.SamplingPeriod,
			Periods:        200,
			Controller:     ctrl,
			ETF:            sim.ConstantETF(1),
			Jitter:         workload.MediumJitter,
			Seed:           experiments.DefaultSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		tr, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		bset := sys.DefaultSetPoints()
		var worst float64
		for p := 0; p < sys.Processors; p++ {
			m := metrics.Mean(metrics.Window(metrics.Column(tr.Utilization, p), 120, 200))
			if d := m - bset[p]; d > worst {
				worst = d
			} else if -d > worst {
				worst = -d
			}
		}
		return worst
	}
	var central, decentral float64
	for i := 0; i < b.N; i++ {
		e, err := core.New(workload.Medium(), nil, workload.MediumController())
		if err != nil {
			b.Fatal(err)
		}
		central = runWith(e)
		d, err := deucon.New(workload.Medium(), nil, deucon.Config{})
		if err != nil {
			b.Fatal(err)
		}
		decentral = runWith(d)
	}
	b.ReportMetric(central, "worst-err-eucon")
	b.ReportMetric(decentral, "worst-err-deucon")
}

// BenchmarkDeuconLocalStep measures one decentralized control period on a
// 16-processor ring: the per-period cost stays bounded by the neighborhood
// size, the decentralization payoff the paper's future work aims at.
func BenchmarkDeuconLocalStep(b *testing.B) {
	const procs = 16
	sys := &task.System{Name: "ring", Processors: procs}
	for p := 0; p < procs; p++ {
		sys.Tasks = append(sys.Tasks, task.Task{
			Name: fmt.Sprintf("R%d", p),
			Subtasks: []task.Subtask{
				{Processor: p, EstimatedCost: 30},
				{Processor: (p + 1) % procs, EstimatedCost: 30},
			},
			RateMin: 1.0 / 4000, RateMax: 1.0 / 50, InitialRate: 1.0 / 400,
		})
	}
	// Serial: the steady-state claim is per-period work, not fan-out
	// scaffolding, and with Parallelism 1 the whole period must run
	// allocation-free once warm.
	ctrl, err := deucon.New(sys, nil, deucon.Config{Parallelism: 1})
	if err != nil {
		b.Fatal(err)
	}
	u := make([]float64, procs)
	for i := range u {
		u[i] = 0.5
	}
	rates := sys.InitialRates()
	if _, err := ctrl.Step(0, u, rates); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctrl.Step(i, u, rates); err != nil {
			b.Fatal(err)
		}
	}
}

// --- LARGE scaling benchmarks ---

// largeBenchETFs is the execution-time-factor grid the LARGE Figure 4
// analogues sweep: underload, nominal, overload.
var largeBenchETFs = []float64{0.5, 1, 2}

// benchLargeCentralizedStep measures one interior step of the centralized
// MPC on LARGE-128 (640 tasks), with the Hessian factorization either
// structure-exploiting (banded after fill-reducing ordering) or forced
// dense. The pair quantifies what the banded backend buys per period at a
// scale where the dense path still runs at all; at LARGE-1024 the dense
// problem matrices alone exceed half a gigabyte, so only the localized
// controller is benchmarked there.
func benchLargeCentralizedStep(b *testing.B, forceDense bool) {
	sys := workload.Large128()
	cfg := workload.LargeController()
	rmin, rmax := sys.RateBounds()
	ctrl, err := mpc.New(sys.AllocationMatrix(), sys.DefaultSetPoints(), rmin, rmax, mpc.Config{
		PredictionHorizon: cfg.PredictionHorizon,
		ControlHorizon:    cfg.ControlHorizon,
		TrefOverTs:        cfg.TrefOverTs,
		Solver:            qp.Options{ForceDense: forceDense},
	})
	if err != nil {
		b.Fatal(err)
	}
	banded, bw := ctrl.Structured()
	if banded == forceDense {
		b.Fatalf("structured = %v with forceDense = %v", banded, forceDense)
	}
	setPoints := sys.DefaultSetPoints()
	u := make([]float64, sys.Processors)
	for i := range u {
		u[i] = setPoints[i] * 0.98
	}
	rates := make([]float64, len(rmin))
	for i := range rates {
		rates[i] = (rmin[i] + rmax[i]) / 2
	}
	out := ctrl.NewStepResult()
	if err := ctrl.StepTo(out, u, rates); err != nil {
		b.Fatal(err)
	}
	if out.Outcome != mpc.SolveOK {
		b.Fatalf("warm step outcome = %v, want SolveOK", out.Outcome)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ctrl.StepTo(out, u, rates); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(bw), "bandwidth")
}

// BenchmarkControllerStepLarge128 is the structured-solver step at 128
// processors (the check.sh trend record includes it).
func BenchmarkControllerStepLarge128(b *testing.B) { benchLargeCentralizedStep(b, false) }

// BenchmarkControllerStepLarge128Dense is the same step with the banded
// backend disabled — the dense O(n²)-per-solve baseline the structured
// path replaces.
func BenchmarkControllerStepLarge128Dense(b *testing.B) { benchLargeCentralizedStep(b, true) }

// benchDeuconLargeStep measures one full localized-DEUCON period — all
// per-processor solves plus the order-stable merge — on a LARGE workload,
// serial so the steady state must be allocation-free (check.sh gates the
// 128-processor variant at 0 allocs/op). strict asserts that the timed
// window resolves nothing but SolveOK; at 1024 processors the announcement
// dynamics under pinned utilization settle into a small limit cycle where
// a few locals periodically resolve SolveRelaxed, so only the 128-processor
// gate variant runs strict.
func benchDeuconLargeStep(b *testing.B, procs int, strict bool) {
	sys, err := workload.Large(procs)
	if err != nil {
		b.Fatal(err)
	}
	ctrl, err := deucon.New(sys, nil, deucon.Config{Parallelism: 1})
	if err != nil {
		b.Fatal(err)
	}
	// Lightly-loaded steady state: utilization pinned just below the set
	// points. Exactly AT the set points the constraint RHS B-u is zero, so
	// the interior fast path's strict-feasibility guard rejects every local
	// and all of them take the allocating active-set fallback; at 0.98·B the
	// slack is ~1e-3, far above the guard tolerance. The first announcement
	// wave (period 1) is a transient — a handful of locals see neighbor
	// compensation overshoot and resolve SolveRelaxed — so three warm-up
	// periods carry the controller to its announcement fixed point before
	// the timer starts.
	u := make([]float64, sys.Processors)
	for i, bp := range sys.DefaultSetPoints() {
		u[i] = 0.98 * bp
	}
	rates := sys.InitialRates()
	for k := 0; k < 3; k++ {
		if _, err := ctrl.Step(k, u, rates); err != nil {
			b.Fatal(err)
		}
	}
	warm := ctrl.OutcomeCounts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctrl.Step(3+i, u, rates); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for o, n := range ctrl.OutcomeCounts() {
		if strict && o != int(mpc.SolveOK) && n != warm[o] {
			b.Fatalf("degradation rung %d resolved %d local solves during the timed steady-state window", o, n-warm[o])
		}
		if mpc.SolveOutcome(o) > mpc.SolveRelaxed && n != warm[o] {
			b.Fatalf("degradation rung %d resolved %d local solves during the timed window", o, n-warm[o])
		}
	}
}

// BenchmarkDeuconLocalStepLarge128 is the localized per-period step at 128
// processors.
func BenchmarkDeuconLocalStepLarge128(b *testing.B) { benchDeuconLargeStep(b, 128, true) }

// BenchmarkDeuconLocalStepLarge1024 is the same step at 1024 processors;
// near-linear scaling means its ns/op stays within roughly the processor
// ratio (8×) of the 128-processor step, not the ~500× a dense global
// O(n³) solve implies.
func BenchmarkDeuconLocalStepLarge1024(b *testing.B) { benchDeuconLargeStep(b, 1024, false) }

// benchFig4Large is the Figure 4 analogue at scale: a closed-loop
// execution-time-factor sweep of the localized DEUCON controller over a
// LARGE workload.
func benchFig4Large(b *testing.B, wl experiments.WorkloadKind) {
	if testing.Short() {
		b.Skip("LARGE sweep skipped in -short mode")
	}
	var acceptable int
	for i := 0; i < b.N; i++ {
		pts, err := experiments.SweepParallel(context.Background(), experiments.Spec{
			Workload:   wl,
			Controller: experiments.KindDEUCON,
			Periods:    120,
			Seed:       experiments.DefaultSeed,
		}, largeBenchETFs)
		if err != nil {
			b.Fatal(err)
		}
		acceptable = 0
		for _, p := range pts {
			if p.Acceptable {
				acceptable++
			}
		}
	}
	b.ReportMetric(float64(acceptable), "acceptable-points")
}

// BenchmarkFig4Large128 sweeps LARGE-128 under localized DEUCON.
func BenchmarkFig4Large128(b *testing.B) { benchFig4Large(b, experiments.WorkloadLarge128) }

// BenchmarkFig4Large1024 sweeps LARGE-1024 under localized DEUCON — 8× the
// processors of LARGE-128; near-linear scaling keeps its wall time within
// roughly that factor of the 128-processor sweep.
func BenchmarkFig4Large1024(b *testing.B) { benchFig4Large(b, experiments.WorkloadLarge1024) }

// BenchmarkAblationPIDCoupling contrasts decoupled PID control with the
// MIMO MPC on the coupling-trap workload: the steady-state error PID
// leaves on P1 is the paper's motivation for model predictive control.
func BenchmarkAblationPIDCoupling(b *testing.B) {
	trap := func() *task.System {
		return &task.System{
			Name:       "trap",
			Processors: 2,
			Tasks: []task.Task{
				{
					Name: "T1",
					Subtasks: []task.Subtask{
						{Processor: 0, EstimatedCost: 35},
						{Processor: 1, EstimatedCost: 35},
					},
					RateMin: 1.0 / 700, RateMax: 1.0 / 35, InitialRate: 1.0 / 200,
				},
				{
					Name:     "T2",
					Subtasks: []task.Subtask{{Processor: 1, EstimatedCost: 45}},
					RateMin:  1.0 / 9000, RateMax: 1.0 / 45, InitialRate: 1.0 / 100,
				},
			},
		}
	}
	errP1 := func(ctrl sim.RateController) float64 {
		s, err := sim.New(sim.Config{
			System:         trap(),
			SamplingPeriod: workload.SamplingPeriod,
			Periods:        200,
			Controller:     ctrl,
			ETF:            sim.ConstantETF(1),
			Seed:           experiments.DefaultSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		tr, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		m := metrics.Mean(metrics.Window(metrics.Column(tr.Utilization, 0), 100, 200))
		if m > 0.828 {
			return m - 0.828
		}
		return 0.828 - m
	}
	var pidErr, mpcErr float64
	for i := 0; i < b.N; i++ {
		p, err := baseline.NewPID(trap(), []float64{0.828, 0.828}, baseline.PIDConfig{})
		if err != nil {
			b.Fatal(err)
		}
		pidErr = errP1(p)
		e, err := core.New(trap(), []float64{0.828, 0.828}, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		mpcErr = errP1(e)
	}
	b.ReportMetric(pidErr, "P1-err-pid")
	b.ReportMetric(mpcErr, "P1-err-mpc")
}
