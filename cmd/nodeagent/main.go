// Command nodeagent is the per-processor agent of the EUCON architecture:
// it hosts a utilization monitor and a rate modulator for one processor,
// connected to the central controller (cmd/euconctl) through a TCP feedback
// lane. The agent carries a synthetic plant whose utilization follows the
// processor's hosted subtasks, current rates, and an execution-time factor.
//
// See cmd/euconctl for a complete invocation example.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/rtsyslab/eucon/internal/agent"
	"github.com/rtsyslab/eucon/internal/fault"
	"github.com/rtsyslab/eucon/internal/lane"
	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/task"
	"github.com/rtsyslab/eucon/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:7070", "controller address")
	name := flag.String("workload", "simple", "workload: simple or medium")
	proc := flag.Int("proc", 0, "0-based processor index this agent hosts")
	etf := flag.Float64("etf", 1, "execution-time factor (actual/estimated execution times)")
	jitter := flag.Float64("jitter", 0, "uniform relative noise on measured utilization, in [0, 1)")
	interval := flag.Duration("interval", 50*time.Millisecond, "real-time duration of one sampling period (0 = lockstep)")
	seed := flag.Int64("seed", 1, "noise seed")
	codec := flag.String("codec", "binary", "wire codec for outgoing frames: binary, binary2 (delta-compacted rates), or json")
	queue := flag.Int("queue", lane.DefaultQueueDepth, "outbound send-queue depth (frames)")
	faultSpec := flag.String("transport-faults", "", "inject transport faults on outbound reports, e.g. drop=0.05,delay=10ms,delayprob=0.5,seed=7")
	drift := flag.Float64("drift", 0, "clock rate error for free-running pacing: +0.01 samples 1% fast, -0.01 1% slow")
	skew := flag.Duration("skew", 0, "constant clock offset for free-running pacing")
	flag.Parse()

	var sys *task.System
	switch *name {
	case "simple":
		sys = workload.Simple()
	case "medium":
		sys = workload.Medium()
	default:
		fmt.Fprintf(os.Stderr, "nodeagent: unknown workload %q\n", *name)
		return 2
	}
	wire, err := parseCodec(*codec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nodeagent: %v\n", err)
		return 2
	}
	plan, err := fault.ParseTransportPlan(*faultSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nodeagent: %v\n", err)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := []agent.Option{
		agent.WithNodeName(fmt.Sprintf("%s-P%d", sys.Name, *proc+1)),
		agent.WithETF(sim.ConstantETF(*etf)),
		agent.WithSamplingPeriod(workload.SamplingPeriod),
		agent.WithJitter(*jitter),
		agent.WithSeed(*seed),
		agent.WithInterval(*interval),
		agent.WithCodec(wire),
		agent.WithSendQueue(*queue),
	}
	if !plan.Zero() {
		opts = append(opts, agent.WithSendFaults(plan))
	}
	if *drift != 0 || *skew != 0 { //eucon:float-exact flag sentinel: exactly zero means no skew injection
		opts = append(opts, agent.WithClock(agent.NewSkewedClock(*skew, *drift)))
	}
	fmt.Printf("nodeagent: P%d of %s → %s (etf=%g, codec=%s)\n", *proc+1, sys.Name, *addr, *etf, wire.Name())
	err = agent.RunAgent(ctx, sys, *proc, *addr, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nodeagent: %v\n", err)
		return 1
	}
	fmt.Println("nodeagent: shut down cleanly")
	return 0
}

// parseCodec maps the -codec flag to a lane codec.
func parseCodec(name string) (lane.Codec, error) {
	switch name {
	case "binary":
		return lane.Binary, nil
	case "binary2":
		return lane.BinaryV2, nil
	case "json":
		return lane.JSONv0, nil
	default:
		return nil, fmt.Errorf("unknown codec %q (want binary, binary2, or json)", name)
	}
}
