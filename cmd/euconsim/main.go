// Command euconsim regenerates the tables and figures of the EUCON paper's
// evaluation from the Go reproduction.
//
// Usage:
//
//	euconsim -list
//	euconsim -exp fig4
//	euconsim -exp all
//
// Output is tab-separated data matching the corresponding paper artifact
// (see DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-vs-measured results).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"

	"github.com/rtsyslab/eucon/internal/experiments"
	"github.com/rtsyslab/eucon/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list available experiments")
	exp := flag.String("exp", "", "experiment ID to run, or \"all\"")
	csvDir := flag.String("csv", "", "for trace experiments: also write <id>-utilization.csv, <id>-rates.csv, <id>-missratio.csv into this directory")
	workers := flag.Int("workers", 0, "worker count for sweep experiments (0 = GOMAXPROCS)")
	flag.Parse()

	// ^C or SIGTERM cancels in-flight simulations at the next sampling
	// boundary instead of killing mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *workers > 0 {
		// Sweeps size their pools from GOMAXPROCS; -workers narrows it.
		runtime.GOMAXPROCS(*workers)
	}

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return 0
	case *exp == "all":
		for _, e := range experiments.All() {
			fmt.Printf("=== %s: %s\n", e.ID, e.Title)
			if err := e.Run(ctx, os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "euconsim: %s: %v\n", e.ID, err)
				return 1
			}
			fmt.Println()
		}
		return 0
	case *exp != "":
		e, ok := experiments.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "euconsim: unknown experiment %q; available: %v\n", *exp, experiments.IDs())
			return 2
		}
		if err := e.Run(ctx, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "euconsim: %s: %v\n", e.ID, err)
			return 1
		}
		if *csvDir != "" {
			if err := exportCSV(*csvDir, e.ID); err != nil {
				fmt.Fprintf(os.Stderr, "euconsim: %v\n", err)
				return 1
			}
		}
		return 0
	default:
		flag.Usage()
		return 2
	}
}

// exportCSV rebuilds the experiment's trace and writes the three CSV views
// next to each other in dir.
func exportCSV(dir, id string) error {
	tr, err := experiments.TraceForExperiment(id)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create CSV directory: %w", err)
	}
	writers := []struct {
		suffix string
		write  func(f *os.File) error
	}{
		{"utilization", func(f *os.File) error { return trace.WriteUtilizationCSV(f, tr) }},
		{"rates", func(f *os.File) error { return trace.WriteRatesCSV(f, tr) }},
		{"missratio", func(f *os.File) error { return trace.WriteMissRatioCSV(f, tr) }},
	}
	for _, w := range writers {
		path := filepath.Join(dir, fmt.Sprintf("%s-%s.csv", id, w.suffix))
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("create %s: %w", path, err)
		}
		if err := w.write(f); err != nil {
			_ = f.Close()
			return fmt.Errorf("write %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("close %s: %w", path, err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}
