// Command euconsim regenerates the tables and figures of the EUCON paper's
// evaluation from the Go reproduction.
//
// Usage:
//
//	euconsim -list
//	euconsim -exp fig4
//	euconsim -exp all
//
// Output is tab-separated data matching the corresponding paper artifact
// (see DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-vs-measured results).
package main

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"github.com/rtsyslab/eucon/internal/core"
	"github.com/rtsyslab/eucon/internal/experiments"
	"github.com/rtsyslab/eucon/internal/fault"
	"github.com/rtsyslab/eucon/internal/task"
	"github.com/rtsyslab/eucon/internal/trace"
	"github.com/rtsyslab/eucon/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list available experiments")
	exp := flag.String("exp", "", "experiment ID to run, or \"all\"")
	csvDir := flag.String("csv", "", "for trace experiments: also write <id>-utilization.csv, <id>-rates.csv, <id>-missratio.csv into this directory")
	workers := flag.Int("workers", 0, "worker count for sweep experiments (0 = GOMAXPROCS)")
	digest := flag.Bool("sweep-digest", false, "print JSON digests of the Figure 4/5 sweep series at 1, 2, and 8 workers, then exit (scripts/bench_trend.sh snapshots these to prove sweep outputs stay bit-identical across worker counts and PRs)")
	faults := flag.String("faults", "", "fault scenario to inject: comma-separated scenario names (see -list-faults), an inline JSON clause array (chaos reproducer format, starts with '['), or @file containing either; runs the canonical 300-period SIMPLE experiment under the scenario and reports robustness and degradation counters")
	listFaults := flag.Bool("list-faults", false, "list the named fault scenarios")
	faultDigest := flag.Bool("fault-digest", false, "with -faults: print JSON digests of a faulted SIMPLE sweep at 1, 2, and 8 workers, including robustness metrics, then exit (scripts/check.sh diffs these against scripts/golden/)")
	explicit := flag.Bool("explicit", false, "run EUCON with the offline-compiled explicit MPC law (internal/empc); rates are bit-identical to the iterative solver, so every digest and table is unchanged — the flag exists to prove exactly that")
	explicitReport := flag.Bool("explicit-report", false, "compile the explicit MPC laws for the SIMPLE and MEDIUM controllers and print one JSON line each with region counts, build digest, and compile wall time, then exit (scripts/bench_trend.sh snapshots these)")
	workloadName := flag.String("workload", "", "run a named LARGE scaling workload (see -list-workloads) and print JSON trajectory digests: centralized EUCON on the structured solver path plus localized DEUCON at 1, 2, and 8 workers (scripts/check.sh diffs these against scripts/golden/)")
	listWL := flag.Bool("list-workloads", false, "list the named scaling workloads accepted by -workload")
	flag.Parse()

	// ^C or SIGTERM cancels in-flight simulations at the next sampling
	// boundary instead of killing mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *workers > 0 {
		// Sweeps size their pools from GOMAXPROCS; -workers narrows it.
		runtime.GOMAXPROCS(*workers)
	}

	switch {
	case *explicitReport:
		if err := printExplicitReport(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "euconsim: explicit report: %v\n", err)
			return 1
		}
		return 0
	case *digest:
		if err := sweepDigests(ctx, os.Stdout, *explicit); err != nil {
			fmt.Fprintf(os.Stderr, "euconsim: sweep digest: %v\n", err)
			return 1
		}
		return 0
	case *listWL:
		listWorkloads(os.Stdout)
		return 0
	case *workloadName != "":
		if err := largeDigests(ctx, os.Stdout, *workloadName); err != nil {
			fmt.Fprintf(os.Stderr, "euconsim: workload: %v\n", err)
			return 1
		}
		return 0
	case *listFaults:
		for _, sc := range fault.Scenarios() {
			fmt.Printf("%-22s %s\n", sc.Name, sc.Title)
		}
		return 0
	case *faultDigest:
		if *faults == "" {
			fmt.Fprintf(os.Stderr, "euconsim: -fault-digest requires -faults (known scenarios: %v)\n", fault.Names())
			return 2
		}
		if err := faultDigests(ctx, os.Stdout, *faults, *explicit); err != nil {
			fmt.Fprintf(os.Stderr, "euconsim: fault digest: %v\n", err)
			return 1
		}
		return 0
	case *faults != "":
		if err := faultReport(ctx, os.Stdout, *faults, *explicit); err != nil {
			fmt.Fprintf(os.Stderr, "euconsim: faults: %v\n", err)
			return 1
		}
		return 0
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return 0
	case *exp == "all":
		for _, e := range experiments.All() {
			fmt.Printf("=== %s: %s\n", e.ID, e.Title)
			if err := e.Run(ctx, os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "euconsim: %s: %v\n", e.ID, err)
				return 1
			}
			fmt.Println()
		}
		return 0
	case *exp != "":
		e, ok := experiments.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "euconsim: unknown experiment %q; available: %v\n", *exp, experiments.IDs())
			return 2
		}
		if err := e.Run(ctx, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "euconsim: %s: %v\n", e.ID, err)
			return 1
		}
		if *csvDir != "" {
			if err := exportCSV(*csvDir, e.ID); err != nil {
				fmt.Fprintf(os.Stderr, "euconsim: %v\n", err)
				return 1
			}
		}
		return 0
	default:
		flag.Usage()
		return 2
	}
}

// sweepDigests runs the paper's two sweep grids at 1, 2, and 8 workers and
// prints one JSON line per (grid, worker count) with an FNV-64a digest of
// the full-precision point series. Equal digests across worker counts prove
// the parallel engine's outputs are bit-identical to the serial ones;
// equal digests across PRs prove a perf change did not move the science.
func sweepDigests(ctx context.Context, w io.Writer, explicit bool) error {
	grids := []struct {
		name     string
		workload experiments.WorkloadKind
		etfs     []float64
	}{
		{"fig4", experiments.WorkloadSimple, experiments.Fig4ETFs()},
		{"fig5", experiments.WorkloadMedium, experiments.Fig5ETFs()},
	}
	for _, g := range grids {
		for _, workers := range []int{1, 2, 8} {
			pts, err := experiments.SweepParallel(ctx, experiments.Spec{
				Workload:    g.workload,
				Seed:        experiments.DefaultSeed,
				Parallelism: workers,
				Explicit:    explicit,
			}, g.etfs)
			if err != nil {
				return fmt.Errorf("%s workers=%d: %w", g.name, workers, err)
			}
			h := fnv.New64a()
			for _, p := range pts {
				fmt.Fprintf(h, "%.17g %.17g %.17g %.17g %v %.17g\n",
					p.ETF, p.P1.Mean, p.P1.StdDev, p.SetPoint, p.Acceptable, p.OpenExpected)
			}
			fmt.Fprintf(w, "{\"sweep\":%q,\"workers\":%d,\"points\":%d,\"digest\":\"%016x\"}\n",
				g.name, workers, len(pts), h.Sum64())
		}
	}
	return nil
}

// parseFaultsArg resolves the -faults argument into a clause list. Three
// forms are accepted: a comma-separated list of named scenarios from the
// registry, an inline JSON clause array (the chaos shrinker's reproducer
// format — recognizable by its leading '['), and @path pointing at a file
// holding either form. The JSON path is what makes euconfuzz reproducers
// runnable verbatim.
func parseFaultsArg(arg string) ([]fault.Spec, error) {
	arg = strings.TrimSpace(arg)
	if strings.HasPrefix(arg, "@") {
		data, err := os.ReadFile(arg[1:])
		if err != nil {
			return nil, fmt.Errorf("read fault spec file: %w", err)
		}
		return parseFaultsArg(string(data))
	}
	if strings.HasPrefix(arg, "[") {
		return fault.UnmarshalSpecs([]byte(arg))
	}
	return fault.Parse(arg)
}

// faultDigests runs a faulted SIMPLE sweep over a small execution-time-factor
// grid at 1, 2, and 8 workers and prints one JSON line per worker count. The
// hash extends the -sweep-digest format with the per-point robustness metrics
// (settling time, max overshoot, per-processor time-in-spec), so it pins both
// the controlled trajectories and the degradation behaviour. The standard
// -sweep-digest format is untouched. scripts/check.sh diffs the
// proc2-crash-recover output against scripts/golden/.
func faultDigests(ctx context.Context, w io.Writer, list string, explicit bool) error {
	specs, err := parseFaultsArg(list)
	if err != nil {
		return err
	}
	etfs := []float64{0.5, 1, 2}
	for _, workers := range []int{1, 2, 8} {
		pts, err := experiments.SweepParallel(ctx, experiments.Spec{
			Workload:    experiments.WorkloadSimple,
			Seed:        experiments.DefaultSeed,
			Faults:      specs,
			Parallelism: workers,
			Explicit:    explicit,
		}, etfs)
		if err != nil {
			return fmt.Errorf("workers=%d: %w", workers, err)
		}
		h := fnv.New64a()
		for _, p := range pts {
			fmt.Fprintf(h, "%.17g %.17g %.17g %.17g %v %.17g %d %.17g",
				p.ETF, p.P1.Mean, p.P1.StdDev, p.SetPoint, p.Acceptable, p.OpenExpected,
				p.Robust.SettlingTime, p.Robust.MaxOvershoot)
			for _, f := range p.Robust.TimeInSpec {
				fmt.Fprintf(h, " %.17g", f)
			}
			fmt.Fprintln(h)
		}
		fmt.Fprintf(w, "{\"faults\":%q,\"workers\":%d,\"points\":%d,\"digest\":\"%016x\"}\n",
			list, workers, len(pts), h.Sum64())
	}
	return nil
}

// faultReport runs the canonical 300-period SIMPLE experiment under the named
// fault scenarios and prints the robustness metrics over the measurement
// window plus the summed degradation counters, so a scenario's end-to-end
// effect can be inspected without writing a test.
func faultReport(ctx context.Context, w io.Writer, list string, explicit bool) error {
	specs, err := parseFaultsArg(list)
	if err != nil {
		return err
	}
	tr, err := experiments.Run(ctx, experiments.Spec{
		Workload: experiments.WorkloadSimple,
		Seed:     experiments.DefaultSeed,
		Faults:   specs,
		Explicit: explicit,
	})
	if err != nil {
		return err
	}
	setPoints := workload.Simple().DefaultSetPoints()
	rb := experiments.TraceRobustness(tr, setPoints, experiments.WindowStart, experiments.WindowEnd)
	fmt.Fprintf(w, "faults\t%s\n", fault.Format(specs))
	fmt.Fprintf(w, "workload\tSIMPLE\tperiods\t%d\tseed\t%d\n", len(tr.Utilization), experiments.DefaultSeed)
	fmt.Fprintf(w, "settling-time\t%d\nmax-overshoot\t%.4f\n", rb.SettlingTime, rb.MaxOvershoot)
	for p, f := range rb.TimeInSpec {
		fmt.Fprintf(w, "time-in-spec-P%d\t%.4f\n", p+1, f)
	}
	var missing, stale, held, skipped, cmd, down int
	for _, ps := range tr.Periods {
		missing += ps.FeedbackMissing
		stale += ps.FeedbackStale
		held += ps.HeldSamples
		skipped += ps.ControlSkipped
		cmd += ps.RateCmdFaults
		down += ps.ProcsDown
	}
	fmt.Fprintf(w, "feedback-missing\t%d\nfeedback-stale\t%d\nheld-samples\t%d\ncontrol-skipped\t%d\nrate-cmd-faults\t%d\nprocs-down-periods\t%d\ncrash-shed-jobs\t%d\n",
		missing, stale, held, skipped, cmd, down, tr.Stats.CrashShedJobs)
	fmt.Fprintf(w, "solver-best-iterate\t%d\nsolver-regularized\t%d\nsolver-held\t%d\n",
		tr.Stats.ContainmentBestIterate, tr.Stats.ContainmentRegularized, tr.Stats.ContainmentHeld)
	fmt.Fprintf(w, "guard-firings\t%d\n",
		tr.Stats.GuardRateFirings+tr.Stats.GuardUtilFirings+tr.Stats.GuardPoolFirings)
	if explicit {
		fmt.Fprintf(w, "explicit-hits\t%d\nexplicit-misses\t%d\n",
			tr.Stats.ExplicitHits, tr.Stats.ExplicitMisses)
	}
	return nil
}

// printExplicitReport compiles the explicit laws for the paper's two
// controllers and prints one JSON line each: region counts, the
// deterministic build digest, and the offline-compile wall time.
// scripts/bench_trend.sh snapshots these lines so compile-time regressions
// and digest drift both show up in the trend record.
func printExplicitReport(w io.Writer) error {
	for _, wl := range []struct {
		name string
		sys  *task.System
		cfg  core.Config
	}{
		{"SIMPLE", workload.Simple(), workload.SimpleController()},
		{"MEDIUM", workload.Medium(), workload.MediumController()},
	} {
		wl.cfg.Explicit = true
		start := time.Now()
		ctrl, err := core.New(wl.sys, nil, wl.cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", wl.name, err)
		}
		wall := time.Since(start)
		rep := ctrl.ExplicitReport()
		fmt.Fprintf(w, "{\"explicit_compile\":%q,\"regions\":%d,\"explored\":%d,\"truncated\":%v,\"digest\":%q,\"wall_ms\":%.1f}\n",
			wl.name, rep.Regions, rep.Explored, rep.Truncated, rep.Digest, float64(wall.Microseconds())/1000)
	}
	return nil
}

// exportCSV rebuilds the experiment's trace and writes the three CSV views
// next to each other in dir.
func exportCSV(dir, id string) error {
	tr, err := experiments.TraceForExperiment(id)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create CSV directory: %w", err)
	}
	writers := []struct {
		suffix string
		write  func(f *os.File) error
	}{
		{"utilization", func(f *os.File) error { return trace.WriteUtilizationCSV(f, tr) }},
		{"rates", func(f *os.File) error { return trace.WriteRatesCSV(f, tr) }},
		{"missratio", func(f *os.File) error { return trace.WriteMissRatioCSV(f, tr) }},
	}
	for _, w := range writers {
		path := filepath.Join(dir, fmt.Sprintf("%s-%s.csv", id, w.suffix))
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("create %s: %w", path, err)
		}
		if err := w.write(f); err != nil {
			_ = f.Close()
			return fmt.Errorf("write %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("close %s: %w", path, err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}
