package main

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"

	"github.com/rtsyslab/eucon/internal/core"
	"github.com/rtsyslab/eucon/internal/deucon"
	"github.com/rtsyslab/eucon/internal/experiments"
	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/task"
	"github.com/rtsyslab/eucon/internal/workload"
)

// largePeriods is the closed-loop run length for the LARGE workload
// digests: long enough to cover the transient and a steady-state tail,
// short enough that the 1024-processor runs stay a smoke test rather than
// a benchmark.
const largePeriods = 120

// largeETFs is the execution-time-factor grid for the LARGE digests —
// underload, nominal, and overload, like the fault-digest grid.
var largeETFs = []float64{0.5, 1, 2}

// largeStepPeriods is the open-loop step-response length for the
// centralized structured-solver digest.
const largeStepPeriods = 40

// listWorkloads prints the named workloads the -workload flag accepts.
func listWorkloads(w io.Writer) {
	fmt.Fprintf(w, "%-10s %s\n", "large128", "LARGE-128: 128 processors, 640 tasks, block-banded coupling")
	fmt.Fprintf(w, "%-10s %s\n", "large1024", "LARGE-1024: 1024 processors, 5120 tasks, localized DEUCON only")
}

// largeDigests runs the named LARGE workload and prints one JSON digest
// line per configuration. Two properties are pinned:
//
//   - on LARGE-128 the centralized EUCON controller must detect and use the
//     banded Hessian backend (the "structured" and "bandwidth" fields), and
//     its open-loop step-response trajectory — pure structured linear
//     algebra, period after period — must not drift across PRs;
//   - localized DEUCON must produce bit-identical closed-loop trajectories
//     at 1, 2, and 8 internal workers. The digest line repeats per worker
//     count and scripts/check.sh diffs the whole output against
//     scripts/golden/, so any divergence fails the gate.
//
// The centralized digest is open-loop (a scripted utilization sequence in
// the lightly-loaded regime) rather than a full closed-loop simulation:
// under saturation the dense active-set machinery re-factors the active
// constraint set from scratch each iteration, which is super-linear in the
// task count no matter how the Hessian is factored — at 640 tasks a single
// saturated solve takes minutes. That regime is exactly what the localized
// controller exists for, so the closed-loop LARGE digests are DEUCON's,
// and LARGE-1024 skips the centralized controller entirely (its dense
// Hessian alone would be ~210 MB).
func largeDigests(ctx context.Context, w io.Writer, name string) error {
	var sys *task.System
	var centralized bool
	etfs := largeETFs
	switch name {
	case "large128":
		sys, centralized = workload.Large128(), true
	case "large1024":
		sys, centralized = workload.Large1024(), false
		// At 1024 processors one closed-loop run is ~8 s; the nominal factor
		// alone keeps the gate a smoke test while the 128-processor grid
		// covers underload and overload.
		etfs = []float64{1}
	default:
		return fmt.Errorf("unknown workload %q (see -list-workloads)", name)
	}

	if centralized {
		banded, bw, digest, err := centralizedStepDigest(sys)
		if err != nil {
			return fmt.Errorf("%s EUCON: %w", sys.Name, err)
		}
		fmt.Fprintf(w, "{\"workload\":%q,\"controller\":\"EUCON\",\"mode\":\"step-response\",\"structured\":%v,\"bandwidth\":%d,\"periods\":%d,\"digest\":%q}\n",
			sys.Name, banded, bw, largeStepPeriods, digest)
	}

	for _, workers := range []int{1, 2, 8} {
		for _, etf := range etfs {
			ctrl, err := deucon.New(sys, nil, deucon.Config{Parallelism: workers})
			if err != nil {
				return fmt.Errorf("%s DEUCON: %w", sys.Name, err)
			}
			digest, err := runLarge(ctx, sys, ctrl, etf)
			if err != nil {
				return fmt.Errorf("%s DEUCON workers=%d etf=%g: %w", sys.Name, workers, etf, err)
			}
			fmt.Fprintf(w, "{\"workload\":%q,\"controller\":\"DEUCON\",\"workers\":%d,\"etf\":%g,\"periods\":%d,\"digest\":%q}\n",
				sys.Name, workers, etf, largePeriods, digest)
		}
	}
	return nil
}

// centralizedStepDigest builds the centralized controller on the
// structured solver path and digests its open-loop response to a scripted
// utilization sequence: every processor starts well below its set point,
// rises toward it, and dips again, so successive solves stay in the
// interior regime where the banded factorization carries the whole step.
func centralizedStepDigest(sys *task.System) (banded bool, bw int, digest string, err error) {
	ctrl, err := core.New(sys, nil, workload.LargeController())
	if err != nil {
		return false, 0, "", err
	}
	banded, bw = ctrl.Structured()
	b := sys.DefaultSetPoints()
	u := make([]float64, sys.Processors)
	rates := sys.InitialRates()
	h := fnv.New64a()
	for k := 0; k < largeStepPeriods; k++ {
		// Scripted measurement: a deterministic sweep through the
		// lightly-loaded band [0.80·B, 0.95·B], phase-shifted per processor.
		for i := range u {
			u[i] = b[i] * (0.875 + 0.075*ramp(k+i))
		}
		next, err := ctrl.Step(k, u, rates)
		if err != nil {
			return banded, bw, "", fmt.Errorf("step %d: %w", k, err)
		}
		for _, r := range next {
			fmt.Fprintf(h, "%.17g ", r)
		}
		fmt.Fprintln(h)
		copy(rates, next)
	}
	return banded, bw, fmt.Sprintf("%016x", h.Sum64()), nil
}

// ramp is a deterministic triangle wave on [-1, 1] with period 16.
func ramp(k int) float64 {
	k %= 16
	if k < 8 {
		return float64(k)/4 - 1
	}
	return 1 - float64(k-8)/4
}

// runLarge simulates one (controller, etf) point and digests the full
// utilization and rate trajectories at full precision.
func runLarge(ctx context.Context, sys *task.System, ctrl sim.Controller, etf float64) (string, error) {
	tr, err := experiments.Run(ctx, experiments.Spec{
		System:  sys,
		Custom:  ctrl,
		ETF:     sim.ConstantETF(etf),
		Periods: largePeriods,
		Seed:    experiments.DefaultSeed,
	})
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	for k := range tr.Utilization {
		for _, u := range tr.Utilization[k] {
			fmt.Fprintf(h, "%.17g ", u)
		}
		for _, r := range tr.Rates[k] {
			fmt.Fprintf(h, "%.17g ", r)
		}
		fmt.Fprintln(h)
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}
