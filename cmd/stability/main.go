// Command stability reproduces the closed-loop stability analysis of the
// EUCON paper (§6.2): the critical uniform utilization gain of a workload's
// closed loop and, for two-processor systems, a (g1, g2) stability-region
// map.
//
// Usage:
//
//	stability -workload simple
//	stability -workload medium
//	stability -workload simple -region -max 10 -steps 21
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/rtsyslab/eucon/internal/core"
	"github.com/rtsyslab/eucon/internal/stability"
	"github.com/rtsyslab/eucon/internal/task"
	"github.com/rtsyslab/eucon/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	name := flag.String("workload", "simple", "workload: simple or medium")
	region := flag.Bool("region", false, "print a (g1, g2) stability-region grid (2-processor workloads)")
	maxGain := flag.Float64("max", 12, "upper end of the gain search")
	steps := flag.Int("steps", 13, "grid resolution for -region")
	flag.Parse()

	var sys *task.System
	var cfg core.Config
	switch *name {
	case "simple":
		sys, cfg = workload.Simple(), workload.SimpleController()
	case "medium":
		sys, cfg = workload.Medium(), workload.MediumController()
	default:
		fmt.Fprintf(os.Stderr, "stability: unknown workload %q\n", *name)
		return 2
	}
	ctrl, err := core.New(sys, nil, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stability: %v\n", err)
		return 1
	}
	g, err := ctrl.CriticalGain(0.5, *maxGain)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stability: %v\n", err)
		return 1
	}
	fmt.Printf("workload=%s P=%d M=%d Tref/Ts=%g\n", sys.Name, cfg.PredictionHorizon, cfg.ControlHorizon, cfg.TrefOverTs)
	fmt.Printf("critical uniform gain g* = %.4f\n", g)
	fmt.Println("(paper, SIMPLE: 5.95 analytic; empirical boundary 6.5-7 in Figure 4)")

	if !*region {
		return 0
	}
	ke, kd, err := ctrl.Gains()
	if err != nil {
		fmt.Fprintf(os.Stderr, "stability: %v\n", err)
		return 1
	}
	gs := make([]float64, *steps)
	for i := range gs {
		gs[i] = *maxGain * float64(i+1) / float64(*steps)
	}
	points, err := stability.Region2D(sys.AllocationMatrix(), ke, kd, gs, gs, 1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stability: %v\n", err)
		return 1
	}
	fmt.Println("\ng1\tg2\trho\tstable")
	for _, p := range points {
		fmt.Printf("%.3f\t%.3f\t%.4f\t%v\n", p.G1, p.G2, p.Rho, p.Stable)
	}
	return 0
}
