// Command euconlint runs the repository's static-analysis suite
// (internal/analysis) over the module and reports invariant violations as
// file:line:col diagnostics.
//
// Usage:
//
//	euconlint [-json] [patterns...]
//
// Patterns are package directories relative to the current directory;
// "./..." (the default) analyzes the whole module, "dir/..." analyzes a
// subtree, and a plain directory analyzes that one package. Exit status is
// 0 when the tree is clean, 1 when diagnostics were reported, and 2 when
// loading or type-checking failed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/rtsyslab/eucon/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	writeManifest := flag.Bool("write-noalloc-manifest", false,
		"regenerate internal/analysis/noalloc_manifest.golden from the module's //eucon:noalloc annotations and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: euconlint [-json] [-list] [-write-noalloc-manifest] [patterns...]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Analyzers:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-16s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	if *writeManifest {
		if err := regenManifest(); err != nil {
			fmt.Fprintf(os.Stderr, "euconlint: %v\n", err)
			os.Exit(2)
		}
		return
	}

	code, err := run(flag.Args(), *jsonOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "euconlint: %v\n", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run loads the requested packages, executes the suite, and prints the
// diagnostics, returning the process exit code.
func run(patterns []string, jsonOut bool) (int, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return 2, err
	}
	root, err := findModuleRoot(cwd)
	if err != nil {
		return 2, err
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		return 2, err
	}

	seen := make(map[string]bool)
	var pkgs []*analysis.Package
	addAll := func(loaded []*analysis.Package) {
		for _, p := range loaded {
			if !seen[p.Path] {
				seen[p.Path] = true
				pkgs = append(pkgs, p)
			}
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			loaded, err := loader.LoadAll()
			if err != nil {
				return 2, err
			}
			addAll(loaded)
		case strings.HasSuffix(pat, "/..."):
			dir := filepath.Join(cwd, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))
			loaded, err := loader.LoadTree(dir)
			if err != nil {
				return 2, err
			}
			addAll(loaded)
		default:
			dir := filepath.Join(cwd, filepath.FromSlash(pat))
			rel, err := filepath.Rel(root, dir)
			if err != nil || strings.HasPrefix(rel, "..") {
				return 2, fmt.Errorf("pattern %q is outside the module rooted at %s", pat, root)
			}
			importPath := loader.ModulePath
			if rel != "." {
				importPath += "/" + filepath.ToSlash(rel)
			}
			p, err := loader.LoadDir(dir, importPath)
			if err != nil {
				return 2, err
			}
			addAll([]*analysis.Package{p})
		}
	}

	diags := analysis.Run(pkgs)
	if jsonOut {
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return 2, err
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		return 1, nil
	}
	return 0, nil
}

// regenManifest rewrites internal/analysis/noalloc_manifest.golden from
// the module's current //eucon:noalloc annotations.
func regenManifest() error {
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	root, err := findModuleRoot(cwd)
	if err != nil {
		return err
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		return err
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		return err
	}
	out := filepath.Join(root, "internal", "analysis", "noalloc_manifest.golden")
	if err := os.WriteFile(out, []byte(analysis.WriteManifest(pkgs)), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
