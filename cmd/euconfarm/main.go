// Command euconfarm is the scale harness for the distributed runtime: it
// launches one controller Server and a fleet of in-process node agents
// (1000+ by default) over loopback TCP, drives the feedback loop for a
// fixed number of sampling periods while injecting agent crashes and
// rejoins, and reports end-to-end sampling-period latency (p50/p99) and
// frame throughput.
//
// The workload is the deterministic LARGE family (one processor per
// agent, banded coupling), the controller is localized DEUCON — the
// decentralized scheme whose per-period cost is O(1) in the system size,
// which is what makes a 1000-agent control plane step in milliseconds
// (the centralized MPC's cold active-set solve on an overloaded LARGE
// system takes minutes; select it with -controller eucon to see why the
// farm defaults away from it) — and the membership layer is what keeps
// the run alive through the injected churn: the acceptance gate is zero
// controller restarts.
//
// Beyond crash churn, the harness degrades the network itself:
// -transport-faults injects seeded per-lane frame drops, delays,
// duplicates, and reorders in both directions; -skew gives each agent a
// drifting clock (free-running mode); -partitions isolates whole subsets
// of the fleet and heals them. After a degraded run the harness asserts
// the membership ledger balances, the fleet healed, and — when tracing —
// the loop re-converged to its set points.
//
// Usage:
//
//	euconfarm                      # 1000 agents, 200 periods, 8 crash cycles
//	euconfarm -smoke               # 64 agents, 50 periods, 2 crash cycles
//	euconfarm -json                # machine-readable result line for bench_trend.sh
//	euconfarm -transport-faults drop=0.05,delayprob=0.5,delay=20ms \
//	          -interval 20ms -skew 0.005 -partitions 4   # lossy campaign
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/rtsyslab/eucon/internal/agent"
	"github.com/rtsyslab/eucon/internal/core"
	"github.com/rtsyslab/eucon/internal/deucon"
	"github.com/rtsyslab/eucon/internal/fault"
	"github.com/rtsyslab/eucon/internal/lane"
	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	agents := flag.Int("agents", 1000, "number of node agents (one processor each)")
	periods := flag.Int("periods", 200, "sampling periods to run")
	crashes := flag.Int("crashes", 8, "agent crash/rejoin cycles to inject across the run")
	queue := flag.Int("queue", lane.DefaultQueueDepth, "per-peer send-queue depth (frames)")
	codecName := flag.String("codec", "binary", "wire codec: binary, binary2 (delta-compacted rates), or json")
	ctrlName := flag.String("controller", "deucon", "controller: deucon (localized, scales) or eucon (centralized MPC)")
	periodTimeout := flag.Duration("period-timeout", 10*time.Second, "server step deadline per period")
	interval := flag.Duration("interval", 0, "free-running sampling period pace (0 = lockstep, as fast as the lanes allow)")
	faultSpec := flag.String("transport-faults", "", "per-lane transport fault plan, e.g. drop=0.05,delayprob=0.5,delay=20ms,dup=0.01,reorder=0.01,seed=7 (reseeded per agent and direction)")
	skew := flag.Float64("skew", 0, "per-agent clock drift amplitude (free-running only): agent p drifts by a deterministic rate in ±skew")
	partitions := flag.Int("partitions", 0, "partition/heal cycles: each isolates a 1/16 slice of the fleet for ~5 periods, then heals it")
	smoke := flag.Bool("smoke", false, "CI smoke: 64 agents, 50 periods, 2 crash cycles")
	jsonOut := flag.Bool("json", false, "emit one JSON result line (for scripts/bench_trend.sh)")
	flag.Parse()

	if *smoke {
		*agents, *periods, *crashes = 64, 50, 2
	}
	var codec lane.Codec
	switch *codecName {
	case "binary":
		codec = lane.Binary
	case "binary2":
		codec = lane.BinaryV2
	case "json":
		codec = lane.JSONv0
	default:
		fmt.Fprintf(os.Stderr, "euconfarm: unknown codec %q\n", *codecName)
		return 2
	}
	plan, err := fault.ParseTransportPlan(*faultSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "euconfarm: %v\n", err)
		return 2
	}
	lossy := !plan.Zero() || *skew != 0 || *partitions > 0 //eucon:float-exact flag sentinel: exactly zero means no skew injection

	sys, err := workload.Large(*agents)
	if err != nil {
		fmt.Fprintf(os.Stderr, "euconfarm: %v\n", err)
		return 2
	}
	var ctrl sim.Controller
	switch *ctrlName {
	case "deucon":
		ctrl, err = deucon.New(sys, nil, deucon.Config{})
	case "eucon":
		ctrl, err = core.New(sys, nil, workload.LargeController())
	default:
		fmt.Fprintf(os.Stderr, "euconfarm: unknown controller %q\n", *ctrlName)
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "euconfarm: %v\n", err)
		return 1
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "euconfarm: %v\n", err)
		return 1
	}
	srvOpts := []agent.Option{
		agent.WithPeriods(*periods),
		agent.WithCodec(codec),
		agent.WithSendQueue(*queue),
		agent.WithPeriodTimeout(*periodTimeout),
		agent.WithInterval(*interval),
		// Tracing is what the re-convergence assertion reads; only pay for
		// it on degraded runs.
		agent.WithTrace(lossy),
	}
	if !plan.Zero() {
		// Each direction of each agent's lane draws a decorrelated loss
		// pattern from the one template (odd salts outbound, even inbound).
		srvOpts = append(srvOpts, agent.WithTransportFaults(func(p int) lane.Plan {
			return plan.Reseed(int64(2*p + 1))
		}))
	}
	srv, err := agent.NewServer(sys, ctrl, ln, srvOpts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "euconfarm: %v\n", err)
		return 1
	}
	addr := ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type outcome struct {
		res *agent.ServerResult
		err error
	}
	done := make(chan outcome, 1)
	start := time.Now() //eucon:wallclock-ok harness wall-time measurement, never feeds control output
	go func() {         //eucon:goroutine-ok joined by the main goroutine's blocking receive on done
		res, err := srv.Run(ctx)
		done <- outcome{res, err}
	}()

	// Latency collector shared by every agent's sink. One mutex is fine:
	// the farm is I/O-bound and single-boxed.
	var latMu sync.Mutex
	lats := make([]time.Duration, 0, (*agents)*(*periods))
	sink := func(_ int, rtt time.Duration) {
		latMu.Lock()
		lats = append(lats, rtt)
		latMu.Unlock()
	}

	// launch starts one agent under its own cancel, so the crash injector
	// can kill exactly the incumbent (context cancel — the lane just dies,
	// no goodbye frame, which the server books as a crash).
	var wg sync.WaitGroup
	var killMu sync.Mutex
	kills := make([]context.CancelFunc, *agents)
	launch := func(p int) {
		actx, acancel := context.WithCancel(ctx)
		killMu.Lock()
		kills[p] = acancel
		killMu.Unlock()
		aopts := []agent.Option{
			agent.WithETF(sim.ConstantETF(1)),
			agent.WithSamplingPeriod(workload.SamplingPeriod),
			agent.WithSeed(int64(p) + 1),
			agent.WithCodec(codec),
			agent.WithSendQueue(*queue),
			agent.WithLatencySink(sink),
			agent.WithInterval(*interval),
			agent.WithNodeName(fmt.Sprintf("farm-P%d", p+1)),
		}
		if !plan.Zero() {
			aopts = append(aopts, agent.WithSendFaults(plan.Reseed(int64(2*p))))
		}
		if *skew != 0 { //eucon:float-exact flag sentinel: exactly zero means no skew injection
			aopts = append(aopts, agent.WithClock(agent.NewSkewedClock(0, driftOf(p, *skew))))
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := agent.RunAgent(actx, sys, p, addr, aopts...)
			if err != nil && actx.Err() == nil {
				fmt.Fprintf(os.Stderr, "euconfarm: agent P%d: %v\n", p+1, err)
			}
		}()
	}
	for p := 0; p < *agents; p++ {
		launch(p)
	}

	// Crash injector: spread the cycles across the run. Each cycle kills
	// one agent, waits for the server to step onward without it, and
	// relaunches the same processor — which must rejoin the live loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= *crashes; i++ {
			target := i * *periods / (*crashes + 1)
			if !waitPeriod(ctx, srv, target, *periodTimeout) {
				return
			}
			p := i % *agents
			killMu.Lock()
			kills[p]()
			killMu.Unlock()
			if !waitPeriod(ctx, srv, target+2, *periodTimeout) {
				return
			}
			launch(p) // rejoin
		}
	}()

	// Partition injector: each cycle isolates a contiguous 1/16 slice of
	// the fleet at once — the whole slice goes dark, the controller rides
	// it out on hold-last substitution, and the slice rejoins together (a
	// rejoin storm, which the seeded retry jitter is there to spread out).
	if *partitions > 0 {
		slice := *agents / 16
		if slice < 1 {
			slice = 1
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= *partitions; i++ {
				target := i * *periods / (*partitions + 1)
				if !waitPeriod(ctx, srv, target, *periodTimeout) {
					return
				}
				lo := (i * slice) % *agents
				killMu.Lock()
				for j := 0; j < slice; j++ {
					kills[(lo+j)%*agents]()
				}
				killMu.Unlock()
				if !waitPeriod(ctx, srv, target+5, *periodTimeout) {
					return
				}
				for j := 0; j < slice; j++ {
					launch((lo + j) % *agents) // heal
				}
			}
		}()
	}

	out := <-done
	elapsed := time.Since(start) //eucon:wallclock-ok harness wall-time measurement, never feeds control output
	cancel()
	wg.Wait()
	if out.err != nil {
		fmt.Fprintf(os.Stderr, "euconfarm: %v\n", out.err)
		return 1
	}
	res := out.res

	latMu.Lock()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p50, p99 := percentile(lats, 0.50), percentile(lats, 0.99)
	samples := len(lats)
	latMu.Unlock()
	frames := res.FramesIn + res.FramesOut
	fps := float64(frames) / elapsed.Seconds()

	if res.Periods != *periods {
		fmt.Fprintf(os.Stderr, "euconfarm: FAIL — server stepped %d of %d periods\n", res.Periods, *periods)
		return 1
	}
	if *crashes > 0 && res.Crashes == 0 {
		fmt.Fprintf(os.Stderr, "euconfarm: FAIL — injected %d crash cycles but the server saw none\n", *crashes)
		return 1
	}
	// The membership ledger must balance under any amount of churn, and
	// every partitioned or crashed agent must have healed by the end.
	if got, want := res.Joins+res.Rejoins, res.Leaves+res.Crashes+res.LiveAtEnd; got != want {
		fmt.Fprintf(os.Stderr, "euconfarm: FAIL — membership ledger unbalanced: %d joins + %d rejoins != %d leaves + %d crashes + %d live\n",
			res.Joins, res.Rejoins, res.Leaves, res.Crashes, res.LiveAtEnd)
		return 1
	}
	if res.LiveAtEnd != *agents {
		fmt.Fprintf(os.Stderr, "euconfarm: FAIL — fleet did not heal: %d of %d agents live at end\n", res.LiveAtEnd, *agents)
		return 1
	}
	// Re-convergence under loss: over the final tail the fleet must sit
	// back at its set points (bound documented in EXPERIMENTS.md,
	// "Lossy-network robustness").
	reconvK := -1
	tailErr := 0.0
	if lossy && len(res.Utilization) > 0 {
		reconvK, tailErr = reconvergence(res.Utilization, sys.DefaultSetPoints())
		if tailErr > farmReconvergeTol {
			fmt.Fprintf(os.Stderr, "euconfarm: FAIL — no re-convergence: max tail set-point error %.3f > %.2f\n", tailErr, farmReconvergeTol)
			for _, w := range worstTailProcs(res.Utilization, sys.DefaultSetPoints(), 8) {
				fmt.Fprintf(os.Stderr, "euconfarm:   P%d tail mean %.3f vs set point %.3f (last %.3f)\n",
					w.p+1, w.mean, w.setpoint, w.last)
			}
			return 1
		}
	}

	var qs lane.QueueStats
	for _, st := range res.PeerQueues {
		qs.Sent += st.Sent
		qs.DroppedSamples += st.DroppedSamples
		qs.Coalesced += st.Coalesced
		qs.SupersededRates += st.SupersededRates
	}

	if *jsonOut {
		name := fmt.Sprintf("Farm%d", *agents)
		if lossy {
			name += "Lossy"
		}
		fmt.Printf(`{"bench":%q,"agents":%d,"periods":%d,"wall_ms":%d,"p50_us":%d,"p99_us":%d,"latency_samples":%d,"frames_per_sec":%.0f,"frames_in":%d,"frames_out":%d,"joins":%d,"rejoins":%d,"crashes":%d,"missed":%d,"stale":%d,"dropped_samples":%d,"injected_drops":%d,"superseded_rates":%d,"live_at_end":%d,"reconverged_at":%d,"tail_err":%.3f}`+"\n",
			name, *agents, *periods, elapsed.Milliseconds(), p50.Microseconds(), p99.Microseconds(), samples,
			fps, res.FramesIn, res.FramesOut, res.Joins, res.Rejoins, res.Crashes,
			res.MissedReports, res.StaleSamples, res.DroppedSamples, res.InjectedDrops, qs.SupersededRates,
			res.LiveAtEnd, reconvK, tailErr)
		return 0
	}
	fmt.Printf("euconfarm: %d agents × %d periods on %s in %v (zero controller restarts)\n",
		*agents, *periods, sys.Name, elapsed.Round(time.Millisecond))
	fmt.Printf("  period latency: p50 %v, p99 %v (%d samples)\n", p50.Round(time.Microsecond), p99.Round(time.Microsecond), samples)
	fmt.Printf("  frames: %d in, %d out, %.0f frames/s\n", res.FramesIn, res.FramesOut, fps)
	fmt.Printf("  membership: %d joins, %d rejoins, %d crashes, %d leaves, %d live at end (ledger balanced)\n",
		res.Joins, res.Rejoins, res.Crashes, res.Leaves, res.LiveAtEnd)
	fmt.Printf("  degradation: %d missed reports, %d stale samples, %d dropped samples, %d injected drops\n",
		res.MissedReports, res.StaleSamples, res.DroppedSamples, res.InjectedDrops)
	fmt.Printf("  peer queues: %d sent, %d coalesced, %d superseded rates\n", qs.Sent, qs.Coalesced, qs.SupersededRates)
	if lossy {
		if reconvK >= 0 {
			fmt.Printf("  re-convergence: within set-point tolerance %.2f from period %d on (max tail error %.3f)\n",
				farmReconvergeTol, reconvK, tailErr)
		} else {
			fmt.Printf("  re-convergence: max tail error %.3f within %.2f\n", tailErr, farmReconvergeTol)
		}
	}
	return 0
}

// farmReconvergeTol is the lossy-run re-convergence gate: over the final
// farmReconvergeTail periods every processor's mean utilization must be
// within this distance of its set point. The bound is looser than the
// simulator campaigns' because the free-running fleet adds real network
// timing and per-agent clock drift on top of the injected loss.
const (
	farmReconvergeTol  = 0.25
	farmReconvergeTail = 20
)

// reconvergence reports the first period from which every later period's
// max set-point error stays within farmReconvergeTol (-1 if the run ends
// outside it), plus the max per-processor |mean - setpoint| over the final
// farmReconvergeTail periods.
func reconvergence(u [][]float64, setpoints []float64) (from int, tailErr float64) {
	from = -1
	for k := len(u) - 1; k >= 0; k-- {
		worst := 0.0
		for p, v := range u[k] {
			if d := math.Abs(v - setpoints[p]); d > worst {
				worst = d
			}
		}
		if worst > farmReconvergeTol {
			break
		}
		from = k
	}
	tail := farmReconvergeTail
	if tail > len(u) {
		tail = len(u)
	}
	for p := range setpoints {
		sum := 0.0
		for k := len(u) - tail; k < len(u); k++ {
			sum += u[k][p]
		}
		if d := math.Abs(sum/float64(tail) - setpoints[p]); d > tailErr {
			tailErr = d
		}
	}
	return from, tailErr
}

// worstTailProcs ranks processors by tail-mean set-point error — the
// diagnostic printed when the re-convergence gate trips, so a failed run
// says which part of the fleet never came back (a contiguous block points
// at a partition slice, scattered processors at the transport layer).
type tailDiag struct {
	p              int
	mean, setpoint float64
	last           float64
}

func worstTailProcs(u [][]float64, setpoints []float64, top int) []tailDiag {
	tail := farmReconvergeTail
	if tail > len(u) {
		tail = len(u)
	}
	if tail == 0 {
		return nil
	}
	diags := make([]tailDiag, len(setpoints))
	for p := range setpoints {
		sum := 0.0
		for k := len(u) - tail; k < len(u); k++ {
			sum += u[k][p]
		}
		diags[p] = tailDiag{p: p, mean: sum / float64(tail), setpoint: setpoints[p], last: u[len(u)-1][p]}
	}
	sort.Slice(diags, func(i, j int) bool {
		return math.Abs(diags[i].mean-diags[i].setpoint) > math.Abs(diags[j].mean-diags[j].setpoint)
	})
	if top > len(diags) {
		top = len(diags)
	}
	return diags[:top]
}

// driftOf derives agent p's deterministic clock drift rate in ±amp.
func driftOf(p int, amp float64) float64 {
	z := uint64(p+1) * 0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	unit := float64(z>>11) / (1 << 53) // [0, 1)
	return amp * (2*unit - 1)
}

// waitPeriod polls until the server reaches period k; false on cancel or
// if progress stalls past patience.
func waitPeriod(ctx context.Context, srv *agent.Server, k int, patience time.Duration) bool {
	deadline := time.Now().Add(patience + time.Minute) //eucon:wallclock-ok harness stall guard
	for srv.Period() < k {
		if ctx.Err() != nil || time.Now().After(deadline) { //eucon:wallclock-ok harness stall guard
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
	return true
}

// percentile reads the q-quantile from an ascending-sorted slice.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
