// Command euconfarm is the scale harness for the distributed runtime: it
// launches one controller Server and a fleet of in-process node agents
// (1000+ by default) over loopback TCP, drives the feedback loop for a
// fixed number of sampling periods while injecting agent crashes and
// rejoins, and reports end-to-end sampling-period latency (p50/p99) and
// frame throughput.
//
// The workload is the deterministic LARGE family (one processor per
// agent, banded coupling), the controller is localized DEUCON — the
// decentralized scheme whose per-period cost is O(1) in the system size,
// which is what makes a 1000-agent control plane step in milliseconds
// (the centralized MPC's cold active-set solve on an overloaded LARGE
// system takes minutes; select it with -controller eucon to see why the
// farm defaults away from it) — and the membership layer is what keeps
// the run alive through the injected churn: the acceptance gate is zero
// controller restarts.
//
// Usage:
//
//	euconfarm                      # 1000 agents, 200 periods, 8 crash cycles
//	euconfarm -smoke               # 64 agents, 50 periods, 2 crash cycles
//	euconfarm -json                # machine-readable result line for bench_trend.sh
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/rtsyslab/eucon/internal/agent"
	"github.com/rtsyslab/eucon/internal/core"
	"github.com/rtsyslab/eucon/internal/deucon"
	"github.com/rtsyslab/eucon/internal/lane"
	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	agents := flag.Int("agents", 1000, "number of node agents (one processor each)")
	periods := flag.Int("periods", 200, "sampling periods to run")
	crashes := flag.Int("crashes", 8, "agent crash/rejoin cycles to inject across the run")
	queue := flag.Int("queue", lane.DefaultQueueDepth, "per-peer send-queue depth (frames)")
	codecName := flag.String("codec", "binary", "wire codec: binary or json")
	ctrlName := flag.String("controller", "deucon", "controller: deucon (localized, scales) or eucon (centralized MPC)")
	periodTimeout := flag.Duration("period-timeout", 10*time.Second, "server step deadline per period")
	smoke := flag.Bool("smoke", false, "CI smoke: 64 agents, 50 periods, 2 crash cycles")
	jsonOut := flag.Bool("json", false, "emit one JSON result line (for scripts/bench_trend.sh)")
	flag.Parse()

	if *smoke {
		*agents, *periods, *crashes = 64, 50, 2
	}
	var codec lane.Codec
	switch *codecName {
	case "binary":
		codec = lane.Binary
	case "json":
		codec = lane.JSONv0
	default:
		fmt.Fprintf(os.Stderr, "euconfarm: unknown codec %q\n", *codecName)
		return 2
	}

	sys, err := workload.Large(*agents)
	if err != nil {
		fmt.Fprintf(os.Stderr, "euconfarm: %v\n", err)
		return 2
	}
	var ctrl sim.Controller
	switch *ctrlName {
	case "deucon":
		ctrl, err = deucon.New(sys, nil, deucon.Config{})
	case "eucon":
		ctrl, err = core.New(sys, nil, workload.LargeController())
	default:
		fmt.Fprintf(os.Stderr, "euconfarm: unknown controller %q\n", *ctrlName)
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "euconfarm: %v\n", err)
		return 1
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "euconfarm: %v\n", err)
		return 1
	}
	srv, err := agent.NewServer(sys, ctrl, ln,
		agent.WithPeriods(*periods),
		agent.WithCodec(codec),
		agent.WithSendQueue(*queue),
		agent.WithPeriodTimeout(*periodTimeout),
	)
	if err != nil {
		fmt.Fprintf(os.Stderr, "euconfarm: %v\n", err)
		return 1
	}
	addr := ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type outcome struct {
		res *agent.ServerResult
		err error
	}
	done := make(chan outcome, 1)
	start := time.Now() //eucon:wallclock-ok harness wall-time measurement, never feeds control output
	go func() {         //eucon:goroutine-ok joined by the main goroutine's blocking receive on done
		res, err := srv.Run(ctx)
		done <- outcome{res, err}
	}()

	// Latency collector shared by every agent's sink. One mutex is fine:
	// the farm is I/O-bound and single-boxed.
	var latMu sync.Mutex
	lats := make([]time.Duration, 0, (*agents)*(*periods))
	sink := func(_ int, rtt time.Duration) {
		latMu.Lock()
		lats = append(lats, rtt)
		latMu.Unlock()
	}

	// launch starts one agent under its own cancel, so the crash injector
	// can kill exactly the incumbent (context cancel — the lane just dies,
	// no goodbye frame, which the server books as a crash).
	var wg sync.WaitGroup
	kills := make([]context.CancelFunc, *agents)
	launch := func(p int) {
		actx, acancel := context.WithCancel(ctx)
		kills[p] = acancel
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := agent.RunAgent(actx, sys, p, addr,
				agent.WithETF(sim.ConstantETF(1)),
				agent.WithSamplingPeriod(workload.SamplingPeriod),
				agent.WithSeed(int64(p)+1),
				agent.WithCodec(codec),
				agent.WithSendQueue(*queue),
				agent.WithLatencySink(sink),
				agent.WithNodeName(fmt.Sprintf("farm-P%d", p+1)),
			)
			if err != nil && actx.Err() == nil {
				fmt.Fprintf(os.Stderr, "euconfarm: agent P%d: %v\n", p+1, err)
			}
		}()
	}
	for p := 0; p < *agents; p++ {
		launch(p)
	}

	// Crash injector: spread the cycles across the run. Each cycle kills
	// one agent, waits for the server to step onward without it, and
	// relaunches the same processor — which must rejoin the live loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= *crashes; i++ {
			target := i * *periods / (*crashes + 1)
			if !waitPeriod(ctx, srv, target, *periodTimeout) {
				return
			}
			p := i % *agents
			kills[p]()
			if !waitPeriod(ctx, srv, target+2, *periodTimeout) {
				return
			}
			launch(p) // rejoin
		}
	}()

	out := <-done
	elapsed := time.Since(start) //eucon:wallclock-ok harness wall-time measurement, never feeds control output
	cancel()
	wg.Wait()
	if out.err != nil {
		fmt.Fprintf(os.Stderr, "euconfarm: %v\n", out.err)
		return 1
	}
	res := out.res

	latMu.Lock()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p50, p99 := percentile(lats, 0.50), percentile(lats, 0.99)
	samples := len(lats)
	latMu.Unlock()
	frames := res.FramesIn + res.FramesOut
	fps := float64(frames) / elapsed.Seconds()

	if res.Periods != *periods {
		fmt.Fprintf(os.Stderr, "euconfarm: FAIL — server stepped %d of %d periods\n", res.Periods, *periods)
		return 1
	}
	if *crashes > 0 && res.Crashes == 0 {
		fmt.Fprintf(os.Stderr, "euconfarm: FAIL — injected %d crash cycles but the server saw none\n", *crashes)
		return 1
	}

	if *jsonOut {
		name := fmt.Sprintf("Farm%d", *agents)
		fmt.Printf(`{"bench":%q,"agents":%d,"periods":%d,"wall_ms":%d,"p50_us":%d,"p99_us":%d,"latency_samples":%d,"frames_per_sec":%.0f,"frames_in":%d,"frames_out":%d,"joins":%d,"rejoins":%d,"crashes":%d,"missed":%d,"stale":%d,"dropped_samples":%d}`+"\n",
			name, *agents, *periods, elapsed.Milliseconds(), p50.Microseconds(), p99.Microseconds(), samples,
			fps, res.FramesIn, res.FramesOut, res.Joins, res.Rejoins, res.Crashes,
			res.MissedReports, res.StaleSamples, res.DroppedSamples)
		return 0
	}
	fmt.Printf("euconfarm: %d agents × %d periods on %s in %v (zero controller restarts)\n",
		*agents, *periods, sys.Name, elapsed.Round(time.Millisecond))
	fmt.Printf("  period latency: p50 %v, p99 %v (%d samples)\n", p50.Round(time.Microsecond), p99.Round(time.Microsecond), samples)
	fmt.Printf("  frames: %d in, %d out, %.0f frames/s\n", res.FramesIn, res.FramesOut, fps)
	fmt.Printf("  membership: %d joins, %d rejoins, %d crashes, %d leaves\n", res.Joins, res.Rejoins, res.Crashes, res.Leaves)
	fmt.Printf("  degradation: %d missed reports, %d stale samples, %d dropped samples\n",
		res.MissedReports, res.StaleSamples, res.DroppedSamples)
	return 0
}

// waitPeriod polls until the server reaches period k; false on cancel or
// if progress stalls past patience.
func waitPeriod(ctx context.Context, srv *agent.Server, k int, patience time.Duration) bool {
	deadline := time.Now().Add(patience + time.Minute) //eucon:wallclock-ok harness stall guard
	for srv.Period() < k {
		if ctx.Err() != nil || time.Now().After(deadline) { //eucon:wallclock-ok harness stall guard
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
	return true
}

// percentile reads the q-quantile from an ascending-sorted slice.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
