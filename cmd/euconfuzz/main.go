// Command euconfuzz runs seeded chaos campaigns against the EUCON
// controller: randomized compositions of fault scenarios and workload
// perturbations, each driven through a full simulation of the canonical
// SIMPLE experiment and checked against the robustness invariant set (no
// panic, finite in-bounds outputs, zero runtime-guard firings, balanced
// object pools, re-convergence after the faults clear).
//
// Usage:
//
//	euconfuzz                       # 25 scenarios, seed 1 (the CI smoke)
//	euconfuzz -n 250 -seed 7        # a bigger storm
//	euconfuzz -v                    # per-scenario degradation counters
//
// On a violation, the offending scenario is shrunk to a 1-minimal clause
// list and printed as a JSON spec runnable verbatim:
//
//	euconsim -faults '<reproducer JSON>'
//
// Exit status: 0 all invariants held, 1 violations found, 2 usage error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"github.com/rtsyslab/eucon/internal/chaos"
	"github.com/rtsyslab/eucon/internal/fault"
)

func main() {
	os.Exit(run())
}

func run() int {
	seed := flag.Int64("seed", 1, "campaign seed; a campaign is a pure function of it")
	n := flag.Int("n", chaos.DefaultScenarios, "number of scenarios to generate and check")
	maxClauses := flag.Int("max-clauses", chaos.DefaultMaxClauses, "maximum fault clauses per scenario")
	periods := flag.Int("periods", chaos.DefaultPeriods, "sampling periods per run (canonical: 300)")
	campaignName := flag.String("campaign", "simple", "campaign to run: simple (SIMPLE + centralized EUCON, full clause alphabet), large128 (LARGE-128 + localized DEUCON, crash/feedback-drop clauses, every scenario checked bit-identical at 1 and 8 workers), or partition (real 8-agent TCP fleet under injected partitions and transport loss)")
	verbose := flag.Bool("v", false, "print each scenario's clause list")
	flag.Parse()

	var campaign chaos.Campaign
	switch *campaignName {
	case "simple":
		campaign = chaos.CampaignSimple
	case "large128":
		campaign = chaos.CampaignLarge128
	case "partition":
		campaign = chaos.CampaignPartition
	default:
		fmt.Fprintf(os.Stderr, "euconfuzz: unknown campaign %q (want simple, large128, or partition)\n", *campaignName)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := chaos.Options{Seed: *seed, Scenarios: *n, MaxClauses: *maxClauses, Periods: *periods, Campaign: campaign}
	if *verbose {
		for i := 0; i < *n; i++ {
			scn := chaos.GenerateFor(campaign, *seed, i, *maxClauses, *periods)
			fmt.Printf("scenario %3d: %s\n", i, fault.Format(scn.Specs))
		}
	}
	rep, err := chaos.Run(ctx, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "euconfuzz: %v\n", err)
		return 1
	}
	fmt.Printf("chaos campaign: %s seed=%d scenarios=%d periods=%d\n", campaign, rep.Seed, rep.Scenarios, rep.Periods)
	fmt.Printf("containment:    best-iterate=%d regularized=%d held=%d\n", rep.BestIterate, rep.Regularized, rep.Held)
	fmt.Printf("degradation:    held-samples=%d skipped-periods=%d\n", rep.HeldSamples, rep.SkippedPeriods)
	fmt.Printf("guard firings:  %d\n", rep.GuardFirings)
	if rep.Ok() {
		fmt.Printf("violations:     0 — all invariants held\n")
		return 0
	}
	fmt.Printf("violations:     %d\n", len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Printf("\nscenario %d violated:\n", v.Scenario.Index)
		for _, p := range v.Problems {
			fmt.Printf("  - %s\n", p)
		}
		fmt.Printf("  original (%d clauses): %s\n", len(v.Scenario.Specs), fault.Format(v.Scenario.Specs))
		if v.Minimal != nil {
			fmt.Printf("  minimal (%d clauses):  %s\n", len(v.Minimal), fault.Format(v.Minimal))
			fmt.Printf("  reproduce: euconsim -faults '%s'\n", v.ReproJSON)
		}
	}
	return 1
}
