// Command euconctl is the centralized EUCON controller daemon. It listens
// for node-agent feedback lanes (see cmd/nodeagent), admits agents into the
// membership as they join — surviving leaves, crashes, and rejoins without
// a restart — runs the MIMO model-predictive feedback loop, and prints the
// run record.
//
// Example (SIMPLE workload: 1 controller + 2 node agents):
//
//	euconctl  -listen 127.0.0.1:7070 -workload simple -periods 100 &
//	nodeagent -addr   127.0.0.1:7070 -workload simple -proc 0 -etf 0.5 &
//	nodeagent -addr   127.0.0.1:7070 -workload simple -proc 1 -etf 0.5
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/rtsyslab/eucon/internal/agent"
	"github.com/rtsyslab/eucon/internal/baseline"
	"github.com/rtsyslab/eucon/internal/core"
	"github.com/rtsyslab/eucon/internal/fault"
	"github.com/rtsyslab/eucon/internal/lane"
	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/task"
	"github.com/rtsyslab/eucon/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	listen := flag.String("listen", "127.0.0.1:7070", "address to accept node-agent lanes on")
	name := flag.String("workload", "simple", "workload: simple or medium")
	ctrlName := flag.String("controller", "eucon", "controller: eucon or open")
	periods := flag.Int("periods", 100, "number of sampling periods to run (0 = until interrupted)")
	codec := flag.String("codec", "binary", "wire codec for outgoing frames: binary, binary2 (delta-compacted rates), or json")
	queue := flag.Int("queue", lane.DefaultQueueDepth, "per-member send-queue depth (frames)")
	membership := flag.Duration("membership-timeout", agent.DefaultMembershipTimeout, "evict members silent this long")
	periodTimeout := flag.Duration("period-timeout", agent.DefaultPeriodTimeout, "step with hold-last substitutes after waiting this long for reports")
	faultSpec := flag.String("transport-faults", "", "inject transport faults on outbound rate lanes, e.g. drop=0.05,delay=10ms,delayprob=0.5,dup=0.01,reorder=0.01,seed=7 (reseeded per member)")
	trace := flag.Bool("trace", false, "print the per-period utilization table after the run")
	flag.Parse()

	var sys *task.System
	var cfg core.Config
	switch *name {
	case "simple":
		sys, cfg = workload.Simple(), workload.SimpleController()
	case "medium":
		sys, cfg = workload.Medium(), workload.MediumController()
	default:
		fmt.Fprintf(os.Stderr, "euconctl: unknown workload %q\n", *name)
		return 2
	}

	var ctrl sim.Controller
	var err error
	switch *ctrlName {
	case "eucon":
		ctrl, err = core.New(sys, nil, cfg)
	case "open":
		ctrl, err = baseline.NewOpen(sys, nil)
	default:
		fmt.Fprintf(os.Stderr, "euconctl: unknown controller %q\n", *ctrlName)
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "euconctl: %v\n", err)
		return 1
	}
	wire, err := parseCodec(*codec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "euconctl: %v\n", err)
		return 2
	}

	plan, err := fault.ParseTransportPlan(*faultSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "euconctl: %v\n", err)
		return 2
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "euconctl: %v\n", err)
		return 1
	}
	opts := []agent.Option{
		agent.WithPeriods(*periods),
		agent.WithCodec(wire),
		agent.WithSendQueue(*queue),
		agent.WithMembershipTimeout(*membership),
		agent.WithPeriodTimeout(*periodTimeout),
		agent.WithTrace(*trace),
	}
	if !plan.Zero() {
		opts = append(opts, agent.WithTransportFaults(func(p int) lane.Plan {
			return plan.Reseed(int64(p) + 1)
		}))
	}
	srv, err := agent.NewServer(sys, ctrl, ln, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "euconctl: %v\n", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("euconctl: %s/%s on %s (codec=%s), admitting up to %d node agents\n",
		sys.Name, ctrl.Name(), ln.Addr(), wire.Name(), sys.Processors)
	start := time.Now() //eucon:wallclock-ok operational run timing for the printed summary
	res, err := srv.Run(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "euconctl: %v\n", err)
		return 1
	}
	elapsed := time.Since(start) //eucon:wallclock-ok operational run timing for the printed summary
	fmt.Printf("euconctl: %d periods in %v — joins=%d rejoins=%d leaves=%d crashes=%d live=%d missed=%d stale=%d frames in/out=%d/%d dropped=%d injected=%d\n",
		res.Periods, elapsed.Round(time.Millisecond), res.Joins, res.Rejoins, res.Leaves, res.Crashes, res.LiveAtEnd,
		res.MissedReports, res.StaleSamples, res.FramesIn, res.FramesOut, res.DroppedSamples, res.InjectedDrops)
	if *trace {
		fmt.Print("period")
		for p := 0; p < sys.Processors; p++ {
			fmt.Printf("\tu(P%d)", p+1)
		}
		fmt.Println()
		for k, u := range res.Utilization {
			fmt.Printf("%d", k+1)
			for _, v := range u {
				fmt.Printf("\t%.4f", v)
			}
			fmt.Println()
		}
	}
	return 0
}

// parseCodec maps the -codec flag to a lane codec.
func parseCodec(name string) (lane.Codec, error) {
	switch name {
	case "binary":
		return lane.Binary, nil
	case "binary2":
		return lane.BinaryV2, nil
	case "json":
		return lane.JSONv0, nil
	default:
		return nil, fmt.Errorf("unknown codec %q (want binary, binary2, or json)", name)
	}
}
