// Command euconctl is the centralized EUCON controller daemon. It listens
// for node-agent feedback lanes (one per processor, see cmd/nodeagent),
// runs the MIMO model-predictive feedback loop for the requested number of
// sampling periods, and prints the per-period utilization record.
//
// Example (SIMPLE workload: 1 controller + 2 node agents):
//
//	euconctl  -listen 127.0.0.1:7070 -workload simple -periods 100 &
//	nodeagent -addr   127.0.0.1:7070 -workload simple -proc 0 -etf 0.5 &
//	nodeagent -addr   127.0.0.1:7070 -workload simple -proc 1 -etf 0.5
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"github.com/rtsyslab/eucon/internal/agent"
	"github.com/rtsyslab/eucon/internal/baseline"
	"github.com/rtsyslab/eucon/internal/core"
	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/task"
	"github.com/rtsyslab/eucon/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	listen := flag.String("listen", "127.0.0.1:7070", "address to accept node-agent lanes on")
	name := flag.String("workload", "simple", "workload: simple or medium")
	ctrlName := flag.String("controller", "eucon", "controller: eucon or open")
	periods := flag.Int("periods", 100, "number of sampling periods to run")
	flag.Parse()

	var sys *task.System
	var cfg core.Config
	switch *name {
	case "simple":
		sys, cfg = workload.Simple(), workload.SimpleController()
	case "medium":
		sys, cfg = workload.Medium(), workload.MediumController()
	default:
		fmt.Fprintf(os.Stderr, "euconctl: unknown workload %q\n", *name)
		return 2
	}

	var ctrl sim.RateController
	var err error
	switch *ctrlName {
	case "eucon":
		ctrl, err = core.New(sys, nil, cfg)
	case "open":
		ctrl, err = baseline.NewOpen(sys, nil)
	default:
		fmt.Fprintf(os.Stderr, "euconctl: unknown controller %q\n", *ctrlName)
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "euconctl: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "euconctl: %v\n", err)
		return 1
	}
	coord, err := agent.NewCoordinator(agent.CoordinatorConfig{
		System:     sys,
		Controller: ctrl,
		Listener:   ln,
		Periods:    *periods,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "euconctl: %v\n", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("euconctl: %s/%s on %s, waiting for %d node agents\n", sys.Name, ctrl.Name(), ln.Addr(), sys.Processors)
	res, err := coord.Run(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "euconctl: %v\n", err)
		return 1
	}
	fmt.Print("period")
	for p := 0; p < sys.Processors; p++ {
		fmt.Printf("\tu(P%d)", p+1)
	}
	fmt.Println()
	for k, u := range res.Utilization {
		fmt.Printf("%d", k+1)
		for _, v := range u {
			fmt.Printf("\t%.4f", v)
		}
		fmt.Println()
	}
	return 0
}
