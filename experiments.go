package eucon

import (
	"context"

	"github.com/rtsyslab/eucon/internal/experiments"
)

// Unified experiment API (see internal/experiments): a declarative
// ExperimentSpec drives single runs (RunExperiment), serial sweeps
// (SweepExperiment), and worker-pool sweeps (SweepExperimentParallel) over
// the paper's workloads.

type (
	// ExperimentSpec describes one experiment run or sweep; zero values of
	// optional fields select the paper defaults.
	ExperimentSpec = experiments.Spec
	// ExperimentWorkload selects a paper workload (SIMPLE or MEDIUM).
	ExperimentWorkload = experiments.WorkloadKind
	// ExperimentController selects the rate controller of a spec.
	ExperimentController = experiments.ControllerKind
	// SweepPoint is one x-value of a Figure 4/5-style sweep series.
	SweepPoint = experiments.SweepPoint
)

// Workload and controller kinds for ExperimentSpec.
const (
	WorkloadSimple = experiments.WorkloadSimple
	WorkloadMedium = experiments.WorkloadMedium

	ControllerEUCON  = experiments.KindEUCON
	ControllerOPEN   = experiments.KindOPEN
	ControllerNone   = experiments.KindNone
	ControllerDEUCON = experiments.KindDEUCON
)

// RunExperiment executes one simulation described by spec and returns its
// trace. The context is checked at every sampling boundary.
func RunExperiment(ctx context.Context, spec ExperimentSpec) (*Trace, error) {
	return experiments.Run(ctx, spec)
}

// SweepExperiment runs spec once per execution-time factor, serially, and
// summarizes P1's steady-state utilization per point.
func SweepExperiment(ctx context.Context, spec ExperimentSpec, etfs []float64) ([]SweepPoint, error) {
	return experiments.Sweep(ctx, spec, etfs)
}

// SweepExperimentParallel is SweepExperiment fanned across a worker pool
// of spec.Parallelism goroutines. The returned series is bit-identical to
// SweepExperiment's regardless of worker count.
func SweepExperimentParallel(ctx context.Context, spec ExperimentSpec, etfs []float64) ([]SweepPoint, error) {
	return experiments.SweepParallel(ctx, spec, etfs)
}
