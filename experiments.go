package eucon

import (
	"context"

	"github.com/rtsyslab/eucon/internal/experiments"
	"github.com/rtsyslab/eucon/internal/fault"
)

// Unified experiment API (see internal/experiments): a declarative
// ExperimentSpec drives single runs (RunExperiment), serial sweeps
// (SweepExperiment), and worker-pool sweeps (SweepExperimentParallel) over
// the paper's workloads.

type (
	// ExperimentSpec describes one experiment run or sweep; zero values of
	// optional fields select the paper defaults.
	ExperimentSpec = experiments.Spec
	// ExperimentWorkload selects a paper workload (SIMPLE or MEDIUM).
	ExperimentWorkload = experiments.WorkloadKind
	// ExperimentController selects the rate controller of a spec.
	ExperimentController = experiments.ControllerKind
	// SweepPoint is one x-value of a Figure 4/5-style sweep series.
	SweepPoint = experiments.SweepPoint

	// FaultSpec describes one deterministic fault injector; set
	// ExperimentSpec.Faults to inject a scenario into a run or sweep.
	FaultSpec = fault.Spec
	// FaultKind selects a fault injector (exec, feedback, actuator, crash).
	FaultKind = fault.Kind
	// FaultScenario is a named, reusable fault scenario from the registry.
	FaultScenario = fault.Scenario
	// Robustness summarizes a run's disturbance response: settling time,
	// max overshoot, and per-processor time-in-spec (SweepPoint.Robust).
	Robustness = experiments.Robustness
)

// Workload and controller kinds for ExperimentSpec.
const (
	WorkloadSimple = experiments.WorkloadSimple
	WorkloadMedium = experiments.WorkloadMedium
	// The LARGE scaling workloads (DESIGN.md §11): 128 and 1024 processors
	// with block-banded coupling. Closed loops at these sizes should use
	// ControllerDEUCON — the localized controller whose cost is
	// near-linear in processor count.
	WorkloadLarge128  = experiments.WorkloadLarge128
	WorkloadLarge1024 = experiments.WorkloadLarge1024

	ControllerEUCON  = experiments.KindEUCON
	ControllerOPEN   = experiments.KindOPEN
	ControllerNone   = experiments.KindNone
	ControllerDEUCON = experiments.KindDEUCON
	ControllerPID    = experiments.KindPID
)

// Fault injector kinds for FaultSpec (see internal/fault for semantics).
const (
	FaultExecStep         = fault.ExecStep
	FaultExecRamp         = fault.ExecRamp
	FaultFeedbackDrop     = fault.FeedbackDrop
	FaultFeedbackDelay    = fault.FeedbackDelay
	FaultFeedbackQuantize = fault.FeedbackQuantize
	FaultActuatorDrop     = fault.ActuatorDrop
	FaultActuatorDelay    = fault.ActuatorDelay
	FaultActuatorClamp    = fault.ActuatorClamp
	FaultProcCrash        = fault.ProcCrash

	// FaultAll targets every processor, task, or subtask in a FaultSpec.
	FaultAll = fault.All
)

// FaultScenarios returns the named fault-scenario catalog in presentation
// order (the same catalog euconsim -list-faults prints).
func FaultScenarios() []FaultScenario {
	return fault.Scenarios()
}

// LookupFaultScenario finds a named fault scenario.
func LookupFaultScenario(name string) (FaultScenario, bool) {
	return fault.Lookup(name)
}

// ParseFaultScenarios resolves a comma-separated list of scenario names
// (the euconsim -faults syntax) into one combined FaultSpec list.
func ParseFaultScenarios(list string) ([]FaultSpec, error) {
	return fault.Parse(list)
}

// RunExperiment executes one simulation described by spec and returns its
// trace. The context is checked at every sampling boundary.
func RunExperiment(ctx context.Context, spec ExperimentSpec) (*Trace, error) {
	return experiments.Run(ctx, spec)
}

// SweepExperiment runs spec once per execution-time factor, serially, and
// summarizes P1's steady-state utilization per point.
func SweepExperiment(ctx context.Context, spec ExperimentSpec, etfs []float64) ([]SweepPoint, error) {
	return experiments.Sweep(ctx, spec, etfs)
}

// SweepExperimentParallel is SweepExperiment fanned across a worker pool
// of spec.Parallelism goroutines. The returned series is bit-identical to
// SweepExperiment's regardless of worker count.
func SweepExperimentParallel(ctx context.Context, spec ExperimentSpec, etfs []float64) ([]SweepPoint, error) {
	return experiments.SweepParallel(ctx, spec, etfs)
}
