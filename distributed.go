package eucon

import (
	"context"
	"net"
	"time"

	"github.com/rtsyslab/eucon/internal/agent"
	"github.com/rtsyslab/eucon/internal/fault"
	"github.com/rtsyslab/eucon/internal/lane"
)

// Distributed runtime facade: the paper's §4 architecture over real TCP
// feedback lanes — per-processor node agents reporting utilization to a
// central controller daemon, which broadcasts rate commands back — behind
// the membership layer of internal/agent. Agents join, leave, crash, and
// rejoin without a controller restart; outbound frames flow through
// bounded per-peer send queues that shed stale utilization reports under
// backpressure but never drop rate commands.
//
// ServeController and RunNodeAgent are the production entry points; the
// cmd/euconctl, cmd/nodeagent, and cmd/euconfarm binaries are thin
// wrappers over them. The older Coordinator/RunNode surface in
// extensions.go remains as deprecated shims.

type (
	// ControllerServer is the controller daemon: the centralized feedback
	// loop behind a membership layer. Build one with NewControllerServer
	// when the run needs its Period method (e.g. for harness choreography);
	// ServeController covers the common case.
	ControllerServer = agent.Server
	// ControllerServerResult is the daemon's aggregate run record:
	// periods stepped, membership transitions, degradation and frame
	// counters, and (with DistributedTrace) the full utilization history.
	ControllerServerResult = agent.ServerResult
	// DistributedOption configures ServeController and RunNodeAgent; the
	// constructors below mirror internal/agent's functional options.
	DistributedOption = agent.Option
	// WireCodec encodes and decodes lane frames; see BinaryCodec,
	// BinaryV2Codec, and JSONCodec.
	WireCodec = lane.Codec
	// WirePlan decides the fate of each message crossing a faulty
	// transport (see TransportPlan and DistributedTransportFaults).
	WirePlan = lane.Plan
	// TransportPlan is the canonical WirePlan: seeded, stateless
	// drop/delay/duplicate/reorder probabilities applied per frame. A plan
	// is a pure function of its Seed; Reseed decorrelates copies of the
	// same plan across peers and directions.
	TransportPlan = fault.TransportPlan
	// AgentClock is a node agent's injectable time source; see
	// DistributedClock, WallClock, and NewSkewedClock.
	AgentClock = agent.Clock
)

// Wire codecs for DistributedCodec: the compact binary format (the
// default — versioned, zero-alloc in steady state), the delta-friendly v2
// binary format (varint rates payload; a controller lane whose peer joins
// in v2 sends delta-compacted rate frames), and the v0 JSON format kept
// for interoperability. Incoming frames are always auto-detected, so a
// fleet may mix codecs freely.
var (
	BinaryCodec   WireCodec = lane.Binary
	BinaryV2Codec WireCodec = lane.BinaryV2
	JSONCodec     WireCodec = lane.JSONv0
)

// WallClock is the production agent clock (the real time.Now/time.After).
func WallClock() AgentClock { return agent.WallClock{} }

// ParseTransportPlan parses the flag syntax the cmd binaries accept for
// -transport-faults, e.g. "drop=0.05,delayprob=0.5,delay=20ms,dup=0.01,
// reorder=0.01,seed=7". The empty string parses to the zero plan.
func ParseTransportPlan(spec string) (TransportPlan, error) {
	return fault.ParseTransportPlan(spec)
}

// NewSkewedClock builds an agent clock offset from the wall clock by
// offset and running at a rate of (1 + drift) wall seconds per second, for
// harnesses that prove the controller tolerates nodes that disagree about
// time.
func NewSkewedClock(offset time.Duration, drift float64) AgentClock {
	return agent.NewSkewedClock(offset, drift)
}

// ServeController runs the controller daemon on ln until the context is
// canceled or the configured period bound is reached: it admits node
// agents as they dial in, steps ctrl once per sampling period on the
// fleet's utilization reports, and broadcasts each member the rates of
// the tasks it hosts. Ownership of ln passes to the daemon.
func ServeController(ctx context.Context, sys *System, ctrl Controller, ln net.Listener, opts ...DistributedOption) (*ControllerServerResult, error) {
	srv, err := agent.NewServer(sys, ctrl, ln, opts...)
	if err != nil {
		return nil, err
	}
	return srv.Run(ctx)
}

// NewControllerServer builds the controller daemon without starting it;
// call Run. Use this over ServeController when the caller needs the
// Server handle (its Period method reports loop progress).
func NewControllerServer(sys *System, ctrl Controller, ln net.Listener, opts ...DistributedOption) (*ControllerServer, error) {
	return agent.NewServer(sys, ctrl, ln, opts...)
}

// RunNodeAgent connects one node agent — the utilization monitor and rate
// modulator for processor p of sys — to the controller daemon at addr and
// participates in the feedback loop until the daemon says shutdown, the
// lane fails, or ctx is canceled (which returns nil: cancellation is the
// normal way to stop an agent).
func RunNodeAgent(ctx context.Context, sys *System, p int, addr string, opts ...DistributedOption) error {
	return agent.RunAgent(ctx, sys, p, addr, opts...)
}

// DistributedCodec selects the wire codec for outgoing frames (incoming
// frames are auto-detected). Default: BinaryCodec.
func DistributedCodec(c WireCodec) DistributedOption { return agent.WithCodec(c) }

// DistributedSendQueue bounds each peer's outbound send queue at depth
// frames; under backpressure the oldest utilization reports are shed and
// rate commands are never dropped. Zero selects the default depth.
func DistributedSendQueue(depth int) DistributedOption { return agent.WithSendQueue(depth) }

// DistributedMembershipTimeout evicts members silent for longer than the
// given duration; zero selects the default.
func DistributedMembershipTimeout(d time.Duration) DistributedOption {
	return agent.WithMembershipTimeout(d)
}

// DistributedPeriods bounds a controller daemon run at n sampling
// periods; zero runs until the context is canceled.
func DistributedPeriods(n int) DistributedOption { return agent.WithPeriods(n) }

// DistributedInterval sets the real-time duration of one sampling period.
// Zero (the default) runs in lockstep — the daemon steps as soon as every
// member has reported, as fast as the lanes allow.
func DistributedInterval(d time.Duration) DistributedOption { return agent.WithInterval(d) }

// DistributedTrace records the full per-period utilization and rate
// history in the run result (off by default).
func DistributedTrace(enabled bool) DistributedOption { return agent.WithTrace(enabled) }

// DistributedETF sets a node agent's execution-time-factor schedule for
// its synthetic plant.
func DistributedETF(s ETFSchedule) DistributedOption { return agent.WithETF(s) }

// DistributedClock injects the clock pacing a free-running node agent's
// sampling periods (default: the wall clock). Skewed or drifting clocks
// let a deployment harness prove the controller's liveness sweep and
// hold-last substitution survive nodes that disagree about time.
func DistributedClock(c AgentClock) DistributedOption { return agent.WithClock(c) }

// DistributedTransportFaults injects per-peer transport faults
// (drop/delay/duplicate/reorder — e.g. a reseeded TransportPlan) into the
// controller daemon's outbound rate lanes, keyed by processor index; on a
// node agent the plan keyed by its own processor faults its reports. Loss
// the plan injects is degraded around — hold-last substitution upstream,
// stale-frame tolerance downstream — never fatal.
func DistributedTransportFaults(plan func(processor int) WirePlan) DistributedOption {
	return agent.WithTransportFaults(plan)
}

// DistributedSendFaults is the node-agent side of
// DistributedTransportFaults: it faults the agent's outbound utilization
// reports under plan (a retried report consumes a fresh message index, so
// an injected drop can be recovered on the next attempt). Use distinct
// seeds per agent and direction — Reseed on one TransportPlan template —
// or every lane loses the same frames at once.
func DistributedSendFaults(plan WirePlan) DistributedOption {
	return agent.WithSendFaults(plan)
}
