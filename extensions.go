package eucon

import (
	"context"
	"io"

	"github.com/rtsyslab/eucon/internal/agent"
	"github.com/rtsyslab/eucon/internal/baseline"
	"github.com/rtsyslab/eucon/internal/deucon"
	"github.com/rtsyslab/eucon/internal/sched"
	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/task"
	"github.com/rtsyslab/eucon/internal/trace"
)

// Extensions beyond the paper's centralized controller: the decentralized
// DEUCON-style controller (the paper's stated future work), the
// per-processor PID comparator from the earlier feedback-control
// scheduling literature, RMS schedulability analysis with admission
// control, and trace export.

type (
	// DecentralizedController is a DEUCON-style controller: one local MPC
	// per processor, neighbor-scope information only.
	DecentralizedController = deucon.Controller
	// DecentralizedConfig tunes the local controllers.
	DecentralizedConfig = deucon.Config
	// PIDBaseline is the decoupled per-processor PID comparator (FCS
	// style); it degrades on strongly coupled workloads, motivating the
	// MIMO MPC design.
	PIDBaseline = baseline.PID
	// PIDConfig tunes the PID comparator.
	PIDConfig = baseline.PIDConfig
	// SchedJob is one periodic job stream for schedulability analysis.
	SchedJob = sched.Job
	// PeriodStats are per-sampling-period job counters from a trace.
	PeriodStats = sim.PeriodStats
)

// NewDecentralizedController builds the DEUCON-style controller. Passing
// nil set points selects the Liu–Layland defaults.
func NewDecentralizedController(sys *System, setPoints []float64, cfg DecentralizedConfig) (*DecentralizedController, error) {
	return deucon.New(sys, setPoints, cfg)
}

// NewPIDBaseline builds the decoupled PID comparator.
func NewPIDBaseline(sys *System, setPoints []float64, cfg PIDConfig) (*PIDBaseline, error) {
	return baseline.NewPID(sys, setPoints, cfg)
}

// ResponseTimes computes exact worst-case response times under preemptive
// RMS (deadline = period).
func ResponseTimes(jobs []SchedJob) ([]float64, error) { return sched.ResponseTimes(jobs) }

// SystemSchedulable reports whether every processor passes exact
// response-time analysis at the given task rates; when false, the second
// result is the first failing processor.
func SystemSchedulable(sys *System, rates []float64) (ok bool, failingProcessor int, err error) {
	return sched.SystemSchedulable(sys, rates)
}

// Admit is the admission-control adaptation mechanism (paper §3.2): it
// reports whether adding candidate at its initial rate keeps every
// processor it touches schedulable.
func Admit(sys *System, rates []float64, candidate Task) (bool, error) {
	return sched.Admit(sys, rates, candidate)
}

// WriteUtilizationCSV exports a trace's utilization series as CSV.
func WriteUtilizationCSV(w io.Writer, tr *Trace) error { return trace.WriteUtilizationCSV(w, tr) }

// WriteRatesCSV exports a trace's task-rate series as CSV.
func WriteRatesCSV(w io.Writer, tr *Trace) error { return trace.WriteRatesCSV(w, tr) }

// WriteMissRatioCSV exports a trace's per-period deadline-miss ratios as
// CSV.
func WriteMissRatioCSV(w io.Writer, tr *Trace) error { return trace.WriteMissRatioCSV(w, tr) }

// WriteTraceJSON exports a whole trace as indented JSON.
func WriteTraceJSON(w io.Writer, tr *Trace) error { return trace.WriteJSON(w, tr) }

// Pre-membership distributed runtime, kept as shims for existing callers.
// The production surface is distributed.go (ServeController/RunNodeAgent):
// membership, bounded send queues, and the binary wire codec.
type (
	// Coordinator is the fixed-fleet controller daemon end of the feedback
	// lanes.
	//
	// Deprecated: use ServeController or NewControllerServer, which admit
	// agents dynamically and survive crashes and rejoins.
	Coordinator = agent.Coordinator
	// CoordinatorConfig configures a Coordinator.
	//
	// Deprecated: use DistributedOption values with ServeController.
	CoordinatorConfig = agent.CoordinatorConfig
	// CoordinatorResult is the coordinator's per-period run record.
	//
	// Deprecated: use ControllerServerResult.
	CoordinatorResult = agent.Result
	// NodeConfig configures one per-processor node agent.
	//
	// Deprecated: use DistributedOption values with RunNodeAgent.
	NodeConfig = agent.NodeConfig
)

// NewCoordinator builds the fixed-fleet controller daemon.
//
// Deprecated: use ServeController or NewControllerServer.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	return agent.NewCoordinator(cfg)
}

// RunNode connects a node agent (utilization monitor + rate modulator for
// one processor) to a coordinator and participates in the feedback loop
// until shutdown.
//
// Deprecated: use RunNodeAgent.
func RunNode(ctx context.Context, cfg NodeConfig) error {
	return agent.RunNode(ctx, cfg)
}

// compile-time interface checks: every controller in the public set
// implements the unified Controller interface.
var (
	_ Controller = (*MPCController)(nil)
	_ Controller = (*DecentralizedController)(nil)
	_ Controller = (*OpenBaseline)(nil)
	_ Controller = (*PIDBaseline)(nil)
	_ Controller = sim.FixedRates{}
	_            = task.LiuLaylandBound
)
