package eucon

import (
	"context"

	"github.com/rtsyslab/eucon/internal/chaos"
	"github.com/rtsyslab/eucon/internal/fault"
	"github.com/rtsyslab/eucon/internal/mpc"
)

// Chaos-testing API (see internal/chaos and DESIGN.md §9): seeded
// property-based fault storms against the canonical SIMPLE experiment,
// with invariant checking and 1-minimal shrinking of violations. The
// cmd/euconfuzz binary is a thin wrapper over this surface.

type (
	// ChaosOptions tunes a chaos campaign; the zero value selects the CI
	// smoke configuration (25 scenarios, 4 max clauses, 300 periods).
	ChaosOptions = chaos.Options
	// ChaosReport summarizes a campaign: violations plus the summed
	// containment and degradation counters.
	ChaosReport = chaos.Report
	// ChaosViolation is one scenario that broke the invariant set,
	// including its shrunken minimal reproducer when within budget.
	ChaosViolation = chaos.Violation
	// ChaosScenario is one generated fault-storm scenario.
	ChaosScenario = chaos.Scenario

	// SolveOutcome classifies each MPC control step by which rung of the
	// solver degradation ladder produced it (StepResult.Outcome; see
	// DESIGN.md §9).
	SolveOutcome = mpc.SolveOutcome
)

// Solver degradation-ladder outcomes, ordered by increasing degradation.
const (
	SolveOK          = mpc.SolveOK
	SolveRelaxed     = mpc.SolveRelaxed
	SolveBestIterate = mpc.SolveBestIterate
	SolveRegularized = mpc.SolveRegularized
	SolveHeld        = mpc.SolveHeld
)

// RunChaosCampaign executes a seeded chaos campaign: Options.Scenarios
// generated fault storms, each a full simulation checked against the
// robustness invariant set, with violating scenarios shrunk to minimal
// reproducers. The campaign is a pure function of opts.Seed.
func RunChaosCampaign(ctx context.Context, opts ChaosOptions) (*ChaosReport, error) {
	return chaos.Run(ctx, opts)
}

// GenerateChaosScenario returns scenario index of the campaign seeded by
// seed — the same generator RunChaosCampaign uses, exposed for
// inspecting or replaying individual scenarios.
func GenerateChaosScenario(seed int64, index, maxClauses, periods int) ChaosScenario {
	return chaos.Generate(seed, index, maxClauses, periods)
}

// ShrinkFaultScenario reduces a failing fault clause list to a 1-minimal
// reproducer under the caller's deterministic failing predicate.
func ShrinkFaultScenario(specs []FaultSpec, failing func([]FaultSpec) bool) []FaultSpec {
	return chaos.Shrink(specs, failing)
}

// MarshalFaultSpecs renders a fault scenario as the JSON clause array
// euconsim -faults accepts (and euconfuzz emits as reproducers).
func MarshalFaultSpecs(specs []FaultSpec) ([]byte, error) {
	return fault.MarshalSpecs(specs)
}

// UnmarshalFaultSpecs parses a JSON fault clause array.
func UnmarshalFaultSpecs(data []byte) ([]FaultSpec, error) {
	return fault.UnmarshalSpecs(data)
}
