package eucon_test

import (
	"context"
	"testing"

	eucon "github.com/rtsyslab/eucon"
)

// TestChaosFacade pins the public chaos surface: a tiny campaign runs
// clean through the facade, the generator is deterministic, shrinking
// works on caller predicates, and reproducer JSON round-trips.
func TestChaosFacade(t *testing.T) {
	rep, err := eucon.RunChaosCampaign(context.Background(), eucon.ChaosOptions{Seed: 1, Scenarios: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("campaign reported violations: %+v", rep.Violations)
	}

	a := eucon.GenerateChaosScenario(9, 0, 4, 300)
	b := eucon.GenerateChaosScenario(9, 0, 4, 300)
	if len(a.Specs) == 0 || len(a.Specs) != len(b.Specs) {
		t.Fatalf("generator not deterministic: %v vs %v", a.Specs, b.Specs)
	}

	specs := []eucon.FaultSpec{
		{Kind: eucon.FaultProcCrash, Proc: 0, Start: 50, Stop: 80},
		{Kind: eucon.FaultFeedbackDelay, Proc: eucon.FaultAll, Start: 10, Stop: 40, Delay: 1},
	}
	min := eucon.ShrinkFaultScenario(specs, func(cand []eucon.FaultSpec) bool {
		for _, sp := range cand {
			if sp.Kind == eucon.FaultProcCrash {
				return true
			}
		}
		return false
	})
	if len(min) != 1 || min[0].Kind != eucon.FaultProcCrash {
		t.Fatalf("shrink = %v, want the single crash clause", min)
	}

	js, err := eucon.MarshalFaultSpecs(min)
	if err != nil {
		t.Fatal(err)
	}
	back, err := eucon.UnmarshalFaultSpecs(js)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0] != min[0] {
		t.Fatalf("JSON round trip diverged: %s -> %v", js, back)
	}

	// The ladder outcomes are ordered by increasing degradation, and
	// degradation starts at best-iterate.
	if !(eucon.SolveOK < eucon.SolveRelaxed && eucon.SolveRelaxed < eucon.SolveBestIterate &&
		eucon.SolveBestIterate < eucon.SolveRegularized && eucon.SolveRegularized < eucon.SolveHeld) {
		t.Fatal("SolveOutcome ordering broken")
	}
	if eucon.SolveRelaxed.Degraded() || !eucon.SolveBestIterate.Degraded() {
		t.Fatal("Degraded() boundary moved")
	}
}
