package eucon_test

import (
	"context"
	"fmt"

	eucon "github.com/rtsyslab/eucon"
)

// ExampleLiuLaylandBound shows the schedulable utilization bound the
// paper's set points come from (eq. 13).
func ExampleLiuLaylandBound() {
	fmt.Printf("%.4f\n", eucon.LiuLaylandBound(1))
	fmt.Printf("%.4f\n", eucon.LiuLaylandBound(2))
	fmt.Printf("%.4f\n", eucon.LiuLaylandBound(7))
	// Output:
	// 1.0000
	// 0.8284
	// 0.7286
}

// ExampleRunExperiment runs the SIMPLE workload open loop (no controller):
// with deterministic execution times the measured utilization sits at the
// estimated F·r (0.9722 / 0.8389) up to window boundary effects, and is
// exactly reproducible.
func ExampleRunExperiment() {
	tr, err := eucon.RunExperiment(context.Background(), eucon.ExperimentSpec{
		Workload:   eucon.WorkloadSimple,
		Controller: eucon.ControllerNone,
		Periods:    3,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	last := tr.Utilization[len(tr.Utilization)-1]
	fmt.Printf("u(P1)=%.4f u(P2)=%.4f\n", last[0], last[1])
	// Output:
	// u(P1)=0.9750 u(P2)=0.8450
}

// ExampleNewController drives one feedback step by hand: the processors
// are under their set points, so the controller raises rates.
func ExampleNewController() {
	sys := eucon.SimpleWorkload()
	ctrl, err := eucon.NewController(sys, nil, eucon.SimpleControllerConfig())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rates, err := ctrl.Step(0, []float64{0.5, 0.5}, sys.InitialRates())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	raised := 0
	for i, r := range rates {
		if r > sys.InitialRates()[i] {
			raised++
		}
	}
	fmt.Printf("raised %d of %d task rates\n", raised, len(rates))
	// Output:
	// raised 3 of 3 task rates
}

// ExampleSystemSchedulable applies exact response-time analysis to a
// lightly loaded SIMPLE system.
func ExampleSystemSchedulable() {
	ok, _, err := eucon.SystemSchedulable(eucon.SimpleWorkload(), []float64{0.005, 0.005, 0.005})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(ok)
	// Output:
	// true
}
