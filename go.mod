module github.com/rtsyslab/eucon

go 1.23
