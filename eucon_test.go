package eucon_test

import (
	"math"
	"math/rand"
	"testing"

	eucon "github.com/rtsyslab/eucon"
)

func TestQuickstartConvergence(t *testing.T) {
	sys := eucon.SimpleWorkload()
	ctrl, err := eucon.NewController(sys, nil, eucon.ControllerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := eucon.Simulate(eucon.SimulationConfig{
		System:         sys,
		Controller:     ctrl,
		SamplingPeriod: 1000,
		Periods:        120,
		ETF:            eucon.ConstantETF(0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 2; p++ {
		s := eucon.Summarize(eucon.UtilizationSeries(tr, p)[60:])
		if math.Abs(s.Mean-0.828) > 0.02 {
			t.Errorf("P%d mean = %v, want ≈ 0.828", p+1, s.Mean)
		}
	}
}

func TestPublicBaseline(t *testing.T) {
	sys := eucon.SimpleWorkload()
	open, err := eucon.NewOpenBaseline(sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	u := open.ExpectedUtilization(sys, 0.5)
	if math.Abs(u[0]-0.414) > 0.01 {
		t.Fatalf("OPEN expected u1 at etf 0.5 = %v, want ≈ 0.414", u[0])
	}
}

func TestPublicWorkloads(t *testing.T) {
	if sys := eucon.SimpleWorkload(); sys.Processors != 2 || len(sys.Tasks) != 3 {
		t.Error("SimpleWorkload shape wrong")
	}
	if sys := eucon.MediumWorkload(); sys.Processors != 4 || len(sys.Tasks) != 12 {
		t.Error("MediumWorkload shape wrong")
	}
	cfg := eucon.RandomWorkloadConfig{
		Processors: 3, EndToEndTasks: 4, LocalTasks: 1, MaxChainLength: 3,
		MinCost: 10, MaxCost: 40,
	}
	sys, err := eucon.RandomWorkload(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicConfigsAndBounds(t *testing.T) {
	if c := eucon.SimpleControllerConfig(); c.PredictionHorizon != 2 {
		t.Error("SimpleControllerConfig wrong")
	}
	if c := eucon.MediumControllerConfig(); c.PredictionHorizon != 4 {
		t.Error("MediumControllerConfig wrong")
	}
	if b := eucon.LiuLaylandBound(2); math.Abs(b-0.8284) > 1e-3 {
		t.Errorf("LiuLaylandBound(2) = %v", b)
	}
}

func TestPublicStepETF(t *testing.T) {
	sched, err := eucon.StepETF(eucon.ETFStep{At: 0, Factor: 0.5}, eucon.ETFStep{At: 100, Factor: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sched.At(50) != 0.5 || sched.At(150) != 2 {
		t.Error("StepETF schedule wrong")
	}
}

func TestRateSeriesExtraction(t *testing.T) {
	sys := eucon.SimpleWorkload()
	tr, err := eucon.Simulate(eucon.SimulationConfig{
		System:         sys,
		SamplingPeriod: 1000,
		Periods:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := eucon.RateSeries(tr, 0)
	if len(r) != 5 {
		t.Fatalf("RateSeries length = %d, want 5", len(r))
	}
	for _, v := range r {
		if math.Abs(v-1.0/60) > 1e-12 {
			t.Fatalf("rate = %v, want initial 1/60 with no controller", v)
		}
	}
}

func TestControllerStabilityAPI(t *testing.T) {
	ctrl, err := eucon.NewController(eucon.SimpleWorkload(), nil, eucon.SimpleControllerConfig())
	if err != nil {
		t.Fatal(err)
	}
	g, err := ctrl.CriticalGain(1, 12)
	if err != nil {
		t.Fatal(err)
	}
	if g < 5 || g > 8 {
		t.Fatalf("critical gain = %v out of expected band", g)
	}
}
