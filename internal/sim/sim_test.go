package sim

import (
	"math"
	"reflect"
	"testing"

	"github.com/rtsyslab/eucon/internal/task"
)

// oneTaskSystem is a single task with one subtask of cost c on one
// processor.
func oneTaskSystem(c, rate float64) *task.System {
	return &task.System{
		Name:       "one",
		Processors: 1,
		Tasks: []task.Task{
			{
				Name:        "T1",
				Subtasks:    []task.Subtask{{Processor: 0, EstimatedCost: c}},
				RateMin:     rate / 10,
				RateMax:     rate * 10,
				InitialRate: rate,
			},
		},
	}
}

// chainSystem is one task with two subtasks on two processors.
func chainSystem(c1, c2, rate float64) *task.System {
	return &task.System{
		Name:       "chain",
		Processors: 2,
		Tasks: []task.Task{
			{
				Name: "T1",
				Subtasks: []task.Subtask{
					{Processor: 0, EstimatedCost: c1},
					{Processor: 1, EstimatedCost: c2},
				},
				RateMin:     rate / 10,
				RateMax:     rate * 10,
				InitialRate: rate,
			},
		},
	}
}

func mustRun(t *testing.T, cfg Config) *Trace {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestConfigValidation(t *testing.T) {
	sys := oneTaskSystem(10, 0.01)
	tests := []struct {
		name string
		cfg  Config
	}{
		{"nil system", Config{SamplingPeriod: 1000, Periods: 10}},
		{"zero sampling period", Config{System: sys, Periods: 10}},
		{"zero periods", Config{System: sys, SamplingPeriod: 1000}},
		{"bad jitter", Config{System: sys, SamplingPeriod: 1000, Periods: 10, Jitter: 1.5}},
		{
			"invalid system",
			Config{System: &task.System{Name: "bad", Processors: 1}, SamplingPeriod: 1000, Periods: 10},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.cfg); err == nil {
				t.Fatal("New accepted invalid config")
			}
		})
	}
}

func TestUtilizationMatchesAnalytic(t *testing.T) {
	// cost 10 at rate 0.02 → utilization 0.2 exactly (deterministic times,
	// period 50 divides Ts = 1000).
	tr := mustRun(t, Config{System: oneTaskSystem(10, 0.02), SamplingPeriod: 1000, Periods: 10})
	for k, u := range tr.Utilization {
		if math.Abs(u[0]-0.2) > 1e-9 {
			t.Fatalf("period %d: u = %v, want 0.2", k, u[0])
		}
	}
}

func TestUtilizationScalesWithETF(t *testing.T) {
	cfg := Config{
		System:         oneTaskSystem(10, 0.02),
		SamplingPeriod: 1000,
		Periods:        10,
		ETF:            ConstantETF(2.5),
	}
	tr := mustRun(t, cfg)
	last := tr.Utilization[len(tr.Utilization)-1]
	if math.Abs(last[0]-0.5) > 1e-9 {
		t.Fatalf("u = %v with etf 2.5, want 0.5", last[0])
	}
}

func TestETFStepChangesMidRun(t *testing.T) {
	sched, err := StepETF(ETFStep{At: 0, Factor: 0.5}, ETFStep{At: 5000, Factor: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		System:         oneTaskSystem(10, 0.02),
		SamplingPeriod: 1000,
		Periods:        10,
		ETF:            sched,
	}
	tr := mustRun(t, cfg)
	if u := tr.Utilization[2][0]; math.Abs(u-0.1) > 1e-9 {
		t.Fatalf("period 2: u = %v, want 0.1 (etf 0.5)", u)
	}
	if u := tr.Utilization[8][0]; math.Abs(u-0.2) > 1e-9 {
		t.Fatalf("period 8: u = %v, want 0.2 (etf 1.0)", u)
	}
}

func TestStepETFRejectsNonPositive(t *testing.T) {
	if _, err := StepETF(ETFStep{At: 0, Factor: 0}); err == nil {
		t.Fatal("StepETF accepted factor 0")
	}
}

func TestETFScheduleDefaults(t *testing.T) {
	var s ETFSchedule
	if got := s.At(123); got != 1 {
		t.Fatalf("zero-value schedule At = %v, want 1", got)
	}
	s2, err := StepETF(ETFStep{At: 100, Factor: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.At(50); got != 1 {
		t.Fatalf("before first step At = %v, want 1", got)
	}
	if got := s2.At(100); got != 3 {
		t.Fatalf("at step At = %v, want 3", got)
	}
}

func TestOverloadSaturatesAtOne(t *testing.T) {
	// cost 10, rate 0.2 → demand 2.0: the processor must be busy the whole
	// window but the monitor reports at most 1.
	tr := mustRun(t, Config{System: oneTaskSystem(10, 0.2), SamplingPeriod: 1000, Periods: 5})
	for k, u := range tr.Utilization {
		if math.Abs(u[0]-1.0) > 1e-9 {
			t.Fatalf("period %d: u = %v, want 1.0 under overload", k, u[0])
		}
	}
	if tr.Stats.SubtaskDeadlineMisses == 0 {
		t.Error("no subtask deadline misses under 200% overload")
	}
}

func TestNoMissesWhenUnderloaded(t *testing.T) {
	tr := mustRun(t, Config{System: oneTaskSystem(10, 0.02), SamplingPeriod: 1000, Periods: 20})
	if tr.Stats.SubtaskDeadlineMisses != 0 {
		t.Fatalf("%d subtask misses at 20%% load, want 0", tr.Stats.SubtaskDeadlineMisses)
	}
	if tr.Stats.EndToEndDeadlineMisses != 0 {
		t.Fatalf("%d end-to-end misses at 20%% load, want 0", tr.Stats.EndToEndDeadlineMisses)
	}
}

func TestChainBothProcessorsLoaded(t *testing.T) {
	// Chain of two subtasks: both processors should see c·r utilization.
	tr := mustRun(t, Config{System: chainSystem(10, 20, 0.01), SamplingPeriod: 1000, Periods: 20})
	last := tr.Utilization[len(tr.Utilization)-1]
	if math.Abs(last[0]-0.1) > 0.02 {
		t.Errorf("P1 u = %v, want ≈ 0.1", last[0])
	}
	if math.Abs(last[1]-0.2) > 0.02 {
		t.Errorf("P2 u = %v, want ≈ 0.2", last[1])
	}
	if tr.Stats.EndToEndCompletions == 0 {
		t.Error("no end-to-end completions")
	}
}

func TestPrecedenceNeverOverlaps(t *testing.T) {
	// With a chain T11 → T12, the number of T12 releases can never exceed
	// T11 completions. Indirect check: end-to-end completions ≈ rate ×
	// duration when underloaded.
	tr := mustRun(t, Config{System: chainSystem(10, 10, 0.01), SamplingPeriod: 1000, Periods: 30})
	want := int(0.01 * 1000 * 30) // 300 instances
	if tr.Stats.EndToEndCompletions < want-3 || tr.Stats.EndToEndCompletions > want {
		t.Fatalf("end-to-end completions = %d, want ≈ %d", tr.Stats.EndToEndCompletions, want)
	}
}

func TestRMSPreemption(t *testing.T) {
	// A short-period task must meet its deadlines even when a long-period
	// task with a huge execution time shares the processor (preemption).
	sys := &task.System{
		Name:       "preempt",
		Processors: 1,
		Tasks: []task.Task{
			{
				Name:     "fast",
				Subtasks: []task.Subtask{{Processor: 0, EstimatedCost: 5}},
				RateMin:  0.001, RateMax: 0.1, InitialRate: 0.02, // period 50
			},
			{
				Name:     "slow",
				Subtasks: []task.Subtask{{Processor: 0, EstimatedCost: 300}},
				RateMin:  0.0001, RateMax: 0.01, InitialRate: 0.002, // period 500
			},
		},
	}
	tr := mustRun(t, Config{System: sys, SamplingPeriod: 1000, Periods: 10})
	// Total demand: 5·0.02 + 300·0.002 = 0.7; RMS with harmonic-ish periods
	// should schedule the fast task without misses.
	if tr.Stats.SubtaskDeadlineMisses != 0 {
		t.Fatalf("%d misses, want 0 (fast task must preempt slow)", tr.Stats.SubtaskDeadlineMisses)
	}
	last := tr.Utilization[len(tr.Utilization)-1]
	if math.Abs(last[0]-0.7) > 0.02 {
		t.Fatalf("u = %v, want ≈ 0.7", last[0])
	}
}

// doublingController doubles all rates at period 5.
type doublingController struct{}

func (doublingController) Name() string { return "DOUBLE" }

func (doublingController) Reset() {}

func (doublingController) SetPoints() []float64 { return nil }

func (doublingController) Step(k int, _, rates []float64) ([]float64, error) {
	out := make([]float64, len(rates))
	copy(out, rates)
	if k == 4 {
		for i := range out {
			out[i] *= 2
		}
	}
	return out, nil
}

func TestRateModulatorAppliesControllerOutput(t *testing.T) {
	cfg := Config{
		System:         oneTaskSystem(10, 0.01),
		SamplingPeriod: 1000,
		Periods:        12,
		Controller:     doublingController{},
	}
	tr := mustRun(t, cfg)
	if u := tr.Utilization[2][0]; math.Abs(u-0.1) > 1e-6 {
		t.Errorf("before doubling: u = %v, want 0.1", u)
	}
	if u := tr.Utilization[10][0]; math.Abs(u-0.2) > 0.01 {
		t.Errorf("after doubling: u = %v, want ≈ 0.2", u)
	}
	if got := tr.Rates[10][0]; math.Abs(got-0.02) > 1e-9 {
		t.Errorf("recorded rate = %v, want 0.02", got)
	}
	if tr.Controller != "DOUBLE" {
		t.Errorf("trace controller = %q", tr.Controller)
	}
}

// clampController asks for rates outside the bounds.
type clampController struct{}

func (clampController) Name() string { return "CLAMP" }

func (clampController) Reset() {}

func (clampController) SetPoints() []float64 { return nil }

func (clampController) Step(int, []float64, []float64) ([]float64, error) {
	return []float64{99999}, nil
}

func TestRateModulatorClampsToBounds(t *testing.T) {
	sys := oneTaskSystem(10, 0.01) // RateMax = 0.1
	cfg := Config{System: sys, SamplingPeriod: 1000, Periods: 6, Controller: clampController{}}
	tr := mustRun(t, cfg)
	for k := 2; k < len(tr.Rates); k++ {
		if tr.Rates[k][0] > sys.Tasks[0].RateMax+1e-12 {
			t.Fatalf("period %d: rate %v above RateMax", k, tr.Rates[k][0])
		}
	}
}

// failingController always errors.
type failingController struct{}

func (failingController) Name() string { return "FAIL" }

func (failingController) Reset() {}

func (failingController) SetPoints() []float64 { return nil }

func (failingController) Step(int, []float64, []float64) ([]float64, error) {
	return nil, errTest
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }

func TestControllerErrorKeepsRates(t *testing.T) {
	cfg := Config{
		System:         oneTaskSystem(10, 0.01),
		SamplingPeriod: 1000,
		Periods:        5,
		Controller:     failingController{},
	}
	tr := mustRun(t, cfg)
	if tr.Stats.ControllerErrors != 5 {
		t.Fatalf("ControllerErrors = %d, want 5", tr.Stats.ControllerErrors)
	}
	for k, r := range tr.Rates {
		if r[0] != 0.01 {
			t.Fatalf("period %d: rate %v changed despite controller errors", k, r[0])
		}
	}
}

func TestFixedRatesController(t *testing.T) {
	cfg := Config{
		System:         oneTaskSystem(10, 0.01),
		SamplingPeriod: 1000,
		Periods:        5,
		Controller:     FixedRates{},
	}
	tr := mustRun(t, cfg)
	for _, r := range tr.Rates {
		if r[0] != 0.01 {
			t.Fatalf("FixedRates changed rates: %v", r)
		}
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	cfg := Config{
		System:         oneTaskSystem(10, 0.02),
		SamplingPeriod: 1000,
		Periods:        10,
		Jitter:         0.5,
		Seed:           42,
	}
	tr1 := mustRun(t, cfg)
	tr2 := mustRun(t, cfg)
	if !reflect.DeepEqual(tr1.Utilization, tr2.Utilization) {
		t.Fatal("same seed produced different traces")
	}
	cfg.Seed = 43
	tr3 := mustRun(t, cfg)
	if reflect.DeepEqual(tr1.Utilization, tr3.Utilization) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestJitterPreservesMeanUtilization(t *testing.T) {
	cfg := Config{
		System:         oneTaskSystem(10, 0.02),
		SamplingPeriod: 1000,
		Periods:        200,
		Jitter:         0.5,
		Seed:           7,
	}
	tr := mustRun(t, cfg)
	var sum float64
	for _, u := range tr.Utilization {
		sum += u[0]
	}
	mean := sum / float64(len(tr.Utilization))
	if math.Abs(mean-0.2) > 0.01 {
		t.Fatalf("mean u = %v with ±50%% jitter, want ≈ 0.2", mean)
	}
}

func TestTraceShape(t *testing.T) {
	tr := mustRun(t, Config{System: chainSystem(10, 20, 0.01), SamplingPeriod: 500, Periods: 7})
	if len(tr.Utilization) != 7 {
		t.Fatalf("got %d utilization samples, want 7", len(tr.Utilization))
	}
	if len(tr.Rates) != 7 {
		t.Fatalf("got %d rate samples, want 7", len(tr.Rates))
	}
	for _, u := range tr.Utilization {
		if len(u) != 2 {
			t.Fatalf("utilization row has %d processors, want 2", len(u))
		}
	}
	if tr.SamplingPeriod != 500 {
		t.Fatalf("SamplingPeriod = %v, want 500", tr.SamplingPeriod)
	}
}

func TestReleasedAtLeastCompleted(t *testing.T) {
	tr := mustRun(t, Config{System: oneTaskSystem(10, 0.2), SamplingPeriod: 1000, Periods: 10})
	if tr.Stats.CompletedJobs > tr.Stats.ReleasedJobs {
		t.Fatalf("completed %d > released %d", tr.Stats.CompletedJobs, tr.Stats.ReleasedJobs)
	}
	if tr.Stats.ReleasedJobs == 0 {
		t.Fatal("no jobs released")
	}
}

func TestMaxBacklogShedsLoad(t *testing.T) {
	// 200% overload: without shedding the backlog grows; with MaxBacklog=1
	// releases are skipped and the in-flight count stays bounded.
	cfg := Config{System: oneTaskSystem(10, 0.2), SamplingPeriod: 1000, Periods: 10}
	trUnbounded := mustRun(t, cfg)
	if trUnbounded.Stats.SkippedJobs != 0 {
		t.Fatalf("shedding disabled but %d jobs skipped", trUnbounded.Stats.SkippedJobs)
	}
	cfg.MaxBacklog = 1
	tr := mustRun(t, cfg)
	if tr.Stats.SkippedJobs == 0 {
		t.Fatal("no jobs shed at 200% overload with MaxBacklog = 1")
	}
	inFlight := tr.Stats.ReleasedJobs - tr.Stats.CompletedJobs
	if inFlight > 1 {
		t.Fatalf("%d jobs in flight, want ≤ MaxBacklog", inFlight)
	}
	// The processor stays saturated regardless of shedding.
	for k, u := range tr.Utilization {
		if u[0] < 0.99 {
			t.Fatalf("period %d: u = %v, want saturated", k, u[0])
		}
	}
}

func TestMaxBacklogNoEffectUnderload(t *testing.T) {
	cfg := Config{System: oneTaskSystem(10, 0.02), SamplingPeriod: 1000, Periods: 10, MaxBacklog: 1}
	tr := mustRun(t, cfg)
	if tr.Stats.SkippedJobs != 0 {
		t.Fatalf("%d jobs shed at 20%% load, want 0", tr.Stats.SkippedJobs)
	}
}

func TestPeriodStatsRecorded(t *testing.T) {
	tr := mustRun(t, Config{System: oneTaskSystem(10, 0.02), SamplingPeriod: 1000, Periods: 10})
	if len(tr.Periods) != 10 {
		t.Fatalf("got %d period records, want 10", len(tr.Periods))
	}
	var released, completed int
	for k, ps := range tr.Periods {
		released += ps.Released
		completed += ps.Completed
		if ps.SubtaskMisses != 0 {
			t.Errorf("period %d: %d misses at 20%% load", k, ps.SubtaskMisses)
		}
		if ps.MissRatio() != 0 {
			t.Errorf("period %d: miss ratio %v", k, ps.MissRatio())
		}
	}
	if released != tr.Stats.ReleasedJobs {
		t.Errorf("per-period released sum %d != aggregate %d", released, tr.Stats.ReleasedJobs)
	}
	if completed != tr.Stats.CompletedJobs {
		t.Errorf("per-period completed sum %d != aggregate %d", completed, tr.Stats.CompletedJobs)
	}
}

func TestPeriodStatsMissRatioUnderOverload(t *testing.T) {
	tr := mustRun(t, Config{System: oneTaskSystem(10, 0.2), SamplingPeriod: 1000, Periods: 10})
	last := tr.Periods[len(tr.Periods)-1]
	if last.MissRatio() == 0 {
		t.Fatal("no per-period misses under 200% overload")
	}
	var e2ec, e2em int
	for _, ps := range tr.Periods {
		e2ec += ps.EndToEndCompletions
		e2em += ps.EndToEndMisses
	}
	if e2ec != tr.Stats.EndToEndCompletions || e2em != tr.Stats.EndToEndDeadlineMisses {
		t.Errorf("per-period end-to-end sums (%d, %d) != aggregates (%d, %d)",
			e2ec, e2em, tr.Stats.EndToEndCompletions, tr.Stats.EndToEndDeadlineMisses)
	}
}
