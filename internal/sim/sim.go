// Package sim is an event-driven simulator for distributed real-time
// systems executing end-to-end periodic tasks — the Go equivalent of the
// C++ simulation environment in the EUCON paper's evaluation (§7.1).
//
// Each processor schedules its subtasks with preemptive Rate Monotonic
// Scheduling (RMS); precedence constraints between subsequent subtasks are
// enforced by the release guard protocol (Sun & Liu), which keeps every
// subtask periodic at its task's rate. A utilization monitor measures the
// busy fraction of each processor per sampling period, and a rate modulator
// applies the controller's new rates at sampling boundaries. Network delay
// is ignored, as in the paper.
//
// The simulator is deterministic for a fixed Config.Seed.
package sim

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math/rand"

	"github.com/rtsyslab/eucon/internal/task"
)

// timeEps absorbs floating-point drift when comparing virtual times.
const timeEps = 1e-9

// Config describes one simulation run.
type Config struct {
	// System is the workload to simulate. Required.
	System *task.System
	// SamplingPeriod is Ts in time units. Required, positive.
	SamplingPeriod float64
	// Periods is the number of sampling periods to simulate. Required,
	// positive.
	Periods int
	// Controller adjusts task rates at each sampling boundary; nil keeps
	// the initial rates for the whole run.
	Controller RateController
	// ETF is the execution-time factor schedule (zero value: etf = 1).
	ETF ETFSchedule
	// Jitter, in [0, 1), draws each job's execution time uniformly from
	// [mean·(1−Jitter), mean·(1+Jitter)]. Zero means deterministic
	// execution times (the paper's SIMPLE runs); MEDIUM uses uniform random
	// execution times.
	Jitter float64
	// Seed drives all randomness; runs with equal seeds are identical.
	Seed int64
	// MaxBacklog, when positive, sheds load under overload: a subtask
	// release is skipped while that subtask already has MaxBacklog
	// incomplete jobs in the system. This models DRE applications that
	// drop work rather than queue it unboundedly (e.g. sensor frames);
	// zero disables shedding.
	MaxBacklog int
}

func (c *Config) validate() error {
	if c.System == nil {
		return errors.New("sim: Config.System is nil")
	}
	if err := c.System.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if c.SamplingPeriod <= 0 {
		return fmt.Errorf("sim: sampling period %g must be positive", c.SamplingPeriod)
	}
	if c.Periods <= 0 {
		return fmt.Errorf("sim: period count %d must be positive", c.Periods)
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		return fmt.Errorf("sim: jitter %g must be in [0, 1)", c.Jitter)
	}
	return nil
}

// job is one invocation of one subtask.
type job struct {
	taskIdx    int
	subIdx     int
	proc       int
	release    float64 // actual release time
	remaining  float64 // execution time still needed
	deadline   float64 // subtask deadline (release + period at release)
	chainStart float64 // release time of the chain's first subtask
	chainDL    float64 // absolute end-to-end deadline of the chain
}

// processor is the run state of one CPU.
type processor struct {
	ready    jobHeap // pending jobs ordered by RMS priority, excluding running
	running  *job
	runStart float64 // when the running job last got the CPU
	busy     float64 // busy time accumulated in the current window
	seq      uint64  // valid completion-event sequence for running
}

// jobHeap is a priority queue of ready jobs under RMS: shortest current
// period first. Periods are live values owned by the simulator, so the heap
// must be re-initialized (heap.Init) whenever task rates change.
type jobHeap struct {
	jobs []*job
	sim  *Simulator
}

func (h *jobHeap) Len() int { return len(h.jobs) }

func (h *jobHeap) Less(i, j int) bool {
	return h.sim.higherPriority(h.jobs[i], h.jobs[j])
}

func (h *jobHeap) Swap(i, j int) { h.jobs[i], h.jobs[j] = h.jobs[j], h.jobs[i] }

func (h *jobHeap) Push(x any) { h.jobs = append(h.jobs, x.(*job)) }

func (h *jobHeap) Pop() any {
	old := h.jobs
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	h.jobs = old[:n-1]
	return j
}

// Stats aggregates counters over a run.
type Stats struct {
	// ReleasedJobs counts subtask invocations released.
	ReleasedJobs int
	// CompletedJobs counts subtask invocations completed.
	CompletedJobs int
	// SubtaskDeadlineMisses counts subtask completions after their
	// subdeadline.
	SubtaskDeadlineMisses int
	// EndToEndCompletions counts completed end-to-end instances.
	EndToEndCompletions int
	// EndToEndDeadlineMisses counts end-to-end instances finishing after
	// their end-to-end deadline.
	EndToEndDeadlineMisses int
	// ControllerErrors counts sampling periods where the controller
	// returned an error (rates kept unchanged).
	ControllerErrors int
	// SkippedJobs counts releases shed because the subtask's backlog
	// reached Config.MaxBacklog.
	SkippedJobs int
}

// PeriodStats are the per-sampling-period counters behind the aggregate
// Stats, enabling deadline-miss-ratio time series.
type PeriodStats struct {
	// Released and Completed count subtask jobs in this period.
	Released, Completed int
	// SubtaskMisses counts subtask completions past their subdeadline.
	SubtaskMisses int
	// EndToEndCompletions and EndToEndMisses count whole task instances.
	EndToEndCompletions, EndToEndMisses int
}

// MissRatio returns the subtask deadline miss ratio of the period (0 when
// nothing completed).
func (p PeriodStats) MissRatio() float64 {
	if p.Completed == 0 {
		return 0
	}
	return float64(p.SubtaskMisses) / float64(p.Completed)
}

// Trace is the full per-period record of a run.
type Trace struct {
	// Controller is the name of the rate controller used.
	Controller string
	// SamplingPeriod is Ts.
	SamplingPeriod float64
	// Utilization[k][p] is processor p's measured utilization in sampling
	// period k (k = 0 is the first period).
	Utilization [][]float64
	// Rates[k][i] is task i's rate during sampling period k.
	Rates [][]float64
	// Periods[k] holds the per-period job counters.
	Periods []PeriodStats
	// Stats holds aggregate counters.
	Stats Stats
}

// Simulator runs one configuration. Create with New, drive with Run.
type Simulator struct {
	cfg    Config
	sys    *task.System
	rng    *rand.Rand
	events eventQueue
	seq    uint64
	now    float64

	procs []processor
	rates []float64

	// releaseSeq[i] invalidates stale first-subtask release events for task
	// i after a rate change reschedules them.
	releaseSeq  []uint64
	lastRelease [][]float64 // per task, per subtask: last release time
	backlog     [][]int     // per task, per subtask: incomplete jobs in flight

	trace Trace
	cur   PeriodStats // counters for the in-progress sampling period
}

// New validates cfg and builds a Simulator.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sys := cfg.System
	s := &Simulator{
		cfg:         cfg,
		sys:         sys,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		procs:       make([]processor, sys.Processors),
		rates:       sys.InitialRates(),
		releaseSeq:  make([]uint64, len(sys.Tasks)),
		lastRelease: make([][]float64, len(sys.Tasks)),
	}
	s.backlog = make([][]int, len(sys.Tasks))
	for i := range sys.Tasks {
		s.lastRelease[i] = make([]float64, len(sys.Tasks[i].Subtasks))
		for j := range s.lastRelease[i] {
			s.lastRelease[i][j] = -1 // never released
		}
		s.backlog[i] = make([]int, len(sys.Tasks[i].Subtasks))
	}
	for p := range s.procs {
		s.procs[p].ready.sim = s
	}
	name := "NONE"
	if cfg.Controller != nil {
		name = cfg.Controller.Name()
	}
	s.trace = Trace{
		Controller:     name,
		SamplingPeriod: cfg.SamplingPeriod,
		Utilization:    make([][]float64, 0, cfg.Periods),
		Rates:          make([][]float64, 0, cfg.Periods),
	}
	return s, nil
}

// Run executes the configured number of sampling periods and returns the
// trace. Run may only be called once per Simulator.
func (s *Simulator) Run() (*Trace, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cancellation: the context is checked at every
// sampling boundary (the natural control-loop granularity), and the run
// stops with ctx.Err() once it is done. Partial trace data is discarded.
func (s *Simulator) RunContext(ctx context.Context) (*Trace, error) {
	// Initial releases of every task's first subtask at t = 0.
	for i := range s.sys.Tasks {
		s.scheduleFirstRelease(i, 0)
	}
	// Sampling boundaries at k·Ts.
	for k := 1; k <= s.cfg.Periods; k++ {
		s.push(&event{at: float64(k) * s.cfg.SamplingPeriod, kind: evSampling})
	}

	end := float64(s.cfg.Periods) * s.cfg.SamplingPeriod
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*event)
		if e.at > end+timeEps {
			break
		}
		s.now = e.at
		switch e.kind {
		case evRelease:
			s.handleRelease(e)
		case evCompletion:
			s.handleCompletion(e)
		case evSampling:
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("sim: run canceled: %w", err)
			}
			if err := s.handleSampling(); err != nil {
				return nil, err
			}
		}
	}
	return &s.trace, nil
}

func (s *Simulator) push(e *event) *event {
	s.seq++
	e.seq = s.seq
	heap.Push(&s.events, e)
	return e
}

// period returns task i's current period 1/r_i.
func (s *Simulator) period(i int) float64 { return 1 / s.rates[i] }

// drawExecTime draws the actual execution time for a subtask released now.
func (s *Simulator) drawExecTime(taskIdx, subIdx int) float64 {
	mean := s.sys.Tasks[taskIdx].Subtasks[subIdx].EstimatedCost * s.cfg.ETF.At(s.now)
	if s.cfg.Jitter == 0 {
		return mean
	}
	lo := mean * (1 - s.cfg.Jitter)
	hi := mean * (1 + s.cfg.Jitter)
	return lo + s.rng.Float64()*(hi-lo)
}

// scheduleFirstRelease schedules the periodic release of task i's first
// subtask at time at.
func (s *Simulator) scheduleFirstRelease(i int, at float64) {
	s.releaseSeq[i]++
	s.push(&event{
		at:     at,
		kind:   evRelease,
		job:    &job{taskIdx: i, subIdx: 0, release: at},
		relSeq: s.releaseSeq[i],
	})
}

// handleRelease admits a job to its processor's ready queue.
func (s *Simulator) handleRelease(e *event) {
	j := e.job
	t := &s.sys.Tasks[j.taskIdx]
	if j.subIdx == 0 {
		// Stale periodic release (rescheduled after a rate change)?
		if e.relSeq != s.releaseSeq[j.taskIdx] {
			return
		}
		period := s.period(j.taskIdx)
		j.chainStart = s.now
		j.chainDL = s.now + float64(len(t.Subtasks))*period
		// Schedule the next periodic release.
		s.scheduleFirstRelease(j.taskIdx, s.now+period)
	}
	// Load shedding: skip the release when this subtask's backlog is full.
	if s.cfg.MaxBacklog > 0 && s.backlog[j.taskIdx][j.subIdx] >= s.cfg.MaxBacklog {
		s.trace.Stats.SkippedJobs++
		return
	}
	period := s.period(j.taskIdx)
	j.proc = t.Subtasks[j.subIdx].Processor
	j.release = s.now
	j.deadline = s.now + period
	j.remaining = s.drawExecTime(j.taskIdx, j.subIdx)
	s.lastRelease[j.taskIdx][j.subIdx] = s.now
	s.backlog[j.taskIdx][j.subIdx]++
	s.trace.Stats.ReleasedJobs++
	s.cur.Released++

	p := &s.procs[j.proc]
	heap.Push(&p.ready, j)
	s.dispatch(j.proc)
}

// handleCompletion finishes the running job on a processor if the event is
// still valid.
func (s *Simulator) handleCompletion(e *event) {
	p := &s.procs[e.proc]
	if e.seq != p.seq || p.running == nil {
		return // superseded by a preemption or rate change
	}
	s.accrue(e.proc)
	j := p.running
	if j.remaining > timeEps {
		// Numerical drift: reschedule the residue.
		s.scheduleCompletion(e.proc)
		return
	}
	p.running = nil
	s.completeJob(j)
	s.dispatch(e.proc)
}

// completeJob records statistics and releases the successor subtask under
// the release guard protocol.
func (s *Simulator) completeJob(j *job) {
	s.trace.Stats.CompletedJobs++
	s.cur.Completed++
	s.backlog[j.taskIdx][j.subIdx]--
	if s.now > j.deadline+timeEps {
		s.trace.Stats.SubtaskDeadlineMisses++
		s.cur.SubtaskMisses++
	}
	t := &s.sys.Tasks[j.taskIdx]
	if j.subIdx == len(t.Subtasks)-1 {
		s.trace.Stats.EndToEndCompletions++
		s.cur.EndToEndCompletions++
		if s.now > j.chainDL+timeEps {
			s.trace.Stats.EndToEndDeadlineMisses++
			s.cur.EndToEndMisses++
		}
		return
	}
	// Release guard: the successor is released at
	// max(predecessor completion, previous release + period), keeping it
	// periodic with minimum separation of one period.
	next := j.subIdx + 1
	guard := s.now
	if last := s.lastRelease[j.taskIdx][next]; last >= 0 {
		if g := last + s.period(j.taskIdx); g > guard {
			guard = g
		}
	}
	s.push(&event{
		at:   guard,
		kind: evRelease,
		job: &job{
			taskIdx:    j.taskIdx,
			subIdx:     next,
			chainStart: j.chainStart,
			chainDL:    j.chainDL,
		},
	})
}

// accrue charges CPU time to the running job up to the current instant.
func (s *Simulator) accrue(procIdx int) {
	p := &s.procs[procIdx]
	if p.running == nil {
		return
	}
	elapsed := s.now - p.runStart
	if elapsed <= 0 {
		return
	}
	p.running.remaining -= elapsed
	if p.running.remaining < 0 {
		p.running.remaining = 0
	}
	p.busy += elapsed
	p.runStart = s.now
}

// dispatch re-evaluates which job should hold processor procIdx under RMS
// (shortest current period first) and schedules its completion.
func (s *Simulator) dispatch(procIdx int) {
	s.accrue(procIdx)
	p := &s.procs[procIdx]
	if p.running != nil {
		// Fast path: the incumbent keeps the CPU unless a higher-priority
		// job is waiting.
		if p.ready.Len() == 0 || !s.higherPriority(p.ready.jobs[0], p.running) {
			return
		}
		heap.Push(&p.ready, p.running)
		p.running = nil
	}
	if p.ready.Len() == 0 {
		return
	}
	p.running = heap.Pop(&p.ready).(*job)
	p.runStart = s.now
	s.scheduleCompletion(procIdx)
}

// higherPriority implements RMS with deterministic tie-breaking: shorter
// current period wins; ties break by task index, then subtask index, then
// earlier release.
func (s *Simulator) higherPriority(a, b *job) bool {
	pa, pb := s.period(a.taskIdx), s.period(b.taskIdx)
	if pa != pb {
		return pa < pb
	}
	if a.taskIdx != b.taskIdx {
		return a.taskIdx < b.taskIdx
	}
	if a.subIdx != b.subIdx {
		return a.subIdx < b.subIdx
	}
	return a.release < b.release
}

func (s *Simulator) scheduleCompletion(procIdx int) {
	p := &s.procs[procIdx]
	e := s.push(&event{at: s.now + p.running.remaining, kind: evCompletion, proc: procIdx})
	p.seq = e.seq
}

// handleSampling closes the current sampling window: it records
// utilizations and rates, consults the controller, and applies new rates.
func (s *Simulator) handleSampling() error {
	k := len(s.trace.Utilization)
	u := make([]float64, len(s.procs))
	for i := range s.procs {
		s.accrue(i)
		u[i] = s.procs[i].busy / s.cfg.SamplingPeriod
		if u[i] > 1 {
			u[i] = 1
		}
		s.procs[i].busy = 0
	}
	s.trace.Utilization = append(s.trace.Utilization, u)
	s.trace.Periods = append(s.trace.Periods, s.cur)
	s.cur = PeriodStats{}
	applied := make([]float64, len(s.rates))
	copy(applied, s.rates)
	s.trace.Rates = append(s.trace.Rates, applied)

	if s.cfg.Controller == nil {
		return nil
	}
	newRates, err := s.cfg.Controller.Rates(k, u, applied)
	if err != nil {
		// A controller failure must not crash the plant: keep current rates.
		s.trace.Stats.ControllerErrors++
		return nil
	}
	if len(newRates) != len(s.rates) {
		return fmt.Errorf("sim: controller %s returned %d rates, want %d", s.cfg.Controller.Name(), len(newRates), len(s.rates))
	}
	s.applyRates(newRates)
	return nil
}

// applyRates installs new task rates, clamped to each task's bounds, and
// reschedules pending periodic releases to honor the new periods.
func (s *Simulator) applyRates(newRates []float64) {
	changed := false
	for i, r := range newRates {
		t := &s.sys.Tasks[i]
		if r < t.RateMin {
			r = t.RateMin
		}
		if r > t.RateMax {
			r = t.RateMax
		}
		if r != s.rates[i] {
			s.rates[i] = r
			changed = true
			// Re-time the next periodic release of the first subtask.
			next := s.now
			if last := s.lastRelease[i][0]; last >= 0 {
				if g := last + s.period(i); g > next {
					next = g
				}
			}
			s.scheduleFirstRelease(i, next)
		}
	}
	if !changed {
		return
	}
	// Periods changed, so RMS priorities changed: restore each ready heap's
	// invariant under the new order and re-dispatch so preemption reflects
	// it.
	for p := range s.procs {
		heap.Init(&s.procs[p].ready)
		s.dispatch(p)
	}
}
