// Package sim is an event-driven simulator for distributed real-time
// systems executing end-to-end periodic tasks — the Go equivalent of the
// C++ simulation environment in the EUCON paper's evaluation (§7.1).
//
// Each processor schedules its subtasks with preemptive Rate Monotonic
// Scheduling (RMS); precedence constraints between subsequent subtasks are
// enforced by the release guard protocol (Sun & Liu), which keeps every
// subtask periodic at its task's rate. A utilization monitor measures the
// busy fraction of each processor per sampling period, and a rate modulator
// applies the controller's new rates at sampling boundaries. Network delay
// is ignored, as in the paper.
//
// The simulator is deterministic for a fixed Config.Seed, and its
// steady-state event loop is allocation-free: events and jobs are recycled
// through per-simulator free lists, the event queue and per-processor ready
// queues are flat concrete-typed heaps, and trace rows are carved out of
// buffers pre-sized for the whole run. A Simulator can be reused across
// runs with Reset, which keeps those pools and buffers warm — the intended
// pattern for sweep workers (see internal/experiments).
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/rtsyslab/eucon/internal/fault"
	"github.com/rtsyslab/eucon/internal/task"
)

// timeEps absorbs floating-point drift when comparing virtual times.
const timeEps = 1e-9

// Config describes one simulation run.
type Config struct {
	// System is the workload to simulate. Required.
	System *task.System
	// SamplingPeriod is Ts in time units. Required, positive.
	SamplingPeriod float64
	// Periods is the number of sampling periods to simulate. Required,
	// positive.
	Periods int
	// Controller adjusts task rates at each sampling boundary; nil keeps
	// the initial rates for the whole run.
	Controller RateController
	// ETF is the execution-time factor schedule (zero value: etf = 1).
	ETF ETFSchedule
	// Jitter, in [0, 1), draws each job's execution time uniformly from
	// [mean·(1−Jitter), mean·(1+Jitter)]. Zero means deterministic
	// execution times (the paper's SIMPLE runs); MEDIUM uses uniform random
	// execution times.
	Jitter float64
	// Seed drives all randomness; runs with equal seeds are identical.
	Seed int64
	// MaxBacklog, when positive, sheds load under overload: a subtask
	// release is skipped while that subtask already has MaxBacklog
	// incomplete jobs in the system. This models DRE applications that
	// drop work rather than queue it unboundedly (e.g. sensor frames);
	// zero disables shedding.
	MaxBacklog int
	// Faults is the fault scenario injected into the run: execution-time
	// perturbations, feedback and actuator faults, and processor crash
	// windows (see internal/fault). All probabilistic fault outcomes are
	// pre-resolved from Seed at Reset, so faulted runs stay bit-identical
	// for equal configs. Empty means a fault-free run with zero overhead
	// beyond one branch per hook.
	Faults []fault.Spec
	// DisableGuards turns off the runtime invariant guards: controller
	// rate commands are no longer screened for non-finite or out-of-bounds
	// values, utilization samples are not sanity-checked, and the pooled-
	// object audit is skipped. Test-only: the chaos shrinker disables the
	// guards so a deliberately seeded violation can escape containment and
	// exercise the shrinking machinery. Production runs must leave this
	// false — the guards are allocation-free and bit-transparent on
	// healthy runs.
	DisableGuards bool
}

// validate checks the configuration. validatedSys, when non-nil and equal
// to c.System, marks a system this simulator already validated on a
// previous New/Reset; the structural walk (which allocates) is then
// skipped, keeping Reset with an unchanged system allocation-free.
func (c *Config) validate(validatedSys *task.System) error {
	if c.System == nil {
		return errors.New("sim: Config.System is nil")
	}
	if c.System != validatedSys {
		if err := c.System.Validate(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	if c.SamplingPeriod <= 0 {
		return fmt.Errorf("sim: sampling period %g must be positive", c.SamplingPeriod)
	}
	if c.Periods <= 0 {
		return fmt.Errorf("sim: period count %d must be positive", c.Periods)
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		return fmt.Errorf("sim: jitter %g must be in [0, 1)", c.Jitter)
	}
	if err := c.ETF.validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	return nil
}

// job is one invocation of one subtask. Jobs are pooled: the Simulator
// recycles them through its free list on completion, shedding, or
// staleness, so no job pointer may be retained past those points.
type job struct {
	taskIdx    int
	subIdx     int
	proc       int
	release    float64 // actual release time
	remaining  float64 // execution time still needed
	deadline   float64 // subtask deadline (release + period at release)
	chainStart float64 // release time of the chain's first subtask
	chainDL    float64 // absolute end-to-end deadline of the chain
}

// processor is the run state of one CPU.
type processor struct {
	ready    jobHeap // pending jobs ordered by RMS priority, excluding running
	running  *job
	runStart float64 // when the running job last got the CPU
	busy     float64 // busy time accumulated in the current window
	seq      uint64  // valid completion-event sequence for running
}

// Stats aggregates counters over a run.
type Stats struct {
	// ReleasedJobs counts subtask invocations released.
	ReleasedJobs int
	// CompletedJobs counts subtask invocations completed.
	CompletedJobs int
	// SubtaskDeadlineMisses counts subtask completions after their
	// subdeadline.
	SubtaskDeadlineMisses int
	// EndToEndCompletions counts completed end-to-end instances.
	EndToEndCompletions int
	// EndToEndDeadlineMisses counts end-to-end instances finishing after
	// their end-to-end deadline.
	EndToEndDeadlineMisses int
	// ControllerErrors counts sampling periods where the controller
	// returned an error (rates kept unchanged).
	ControllerErrors int
	// SkippedJobs counts releases shed because the subtask's backlog
	// reached Config.MaxBacklog.
	SkippedJobs int
	// CrashShedJobs counts releases refused because the target processor
	// was inside a fault.ProcCrash window.
	CrashShedJobs int
	// GuardRateFirings counts controller rate commands the runtime
	// invariant guard rejected (non-finite, or outside the task's rate
	// bounds) and replaced with a safe substitute. Zero on every healthy
	// run: containment in the controller layers should make the guard
	// unreachable, so any firing marks a contained controller bug.
	GuardRateFirings int
	// GuardUtilFirings counts utilization samples the guard found insane
	// (non-finite or negative) and clamped before they entered the trace.
	GuardUtilFirings int
	// GuardPoolFirings counts sampling boundaries where the pooled-object
	// audit found the event/job accounting out of balance (a leak or a
	// double-recycle in the event loop).
	GuardPoolFirings int
	// ContainmentBestIterate, ContainmentRegularized, and ContainmentHeld
	// mirror the controller's solver degradation-ladder counters (accepted
	// best iterates, Tikhonov re-solves, held steps) as of the end of the
	// run. Populated only when the controller implements
	// ContainmentReporter; the counts are cumulative since the controller's
	// construction or last Reset.
	ContainmentBestIterate, ContainmentRegularized, ContainmentHeld int
	// ExplicitHits and ExplicitMisses mirror the controller's explicit-MPC
	// fast-path counters as of the end of the run: control steps resolved
	// by the offline-compiled piecewise-affine law versus fallen back to
	// the iterative solver. Populated only when the controller implements
	// ExplicitReporter; both stay zero without an explicit law.
	ExplicitHits, ExplicitMisses int
}

// PeriodStats are the per-sampling-period counters behind the aggregate
// Stats, enabling deadline-miss-ratio time series.
type PeriodStats struct {
	// Released and Completed count subtask jobs in this period.
	Released, Completed int
	// SubtaskMisses counts subtask completions past their subdeadline.
	SubtaskMisses int
	// EndToEndCompletions and EndToEndMisses count whole task instances.
	EndToEndCompletions, EndToEndMisses int
	// FeedbackMissing and FeedbackStale count utilization samples that a
	// feedback fault dropped or delivered from an earlier period.
	FeedbackMissing, FeedbackStale int
	// HeldSamples counts samples the controller substituted through its
	// hold-last-sample degradation policy this period; ControlSkipped is 1
	// when it skipped actuation entirely (staleness bound exceeded). Both
	// come from the controller's DegradationReporter, when implemented.
	HeldSamples, ControlSkipped int
	// RateCmdFaults counts task rate commands perturbed by an actuator
	// fault (drop, delay, or clamp) this period.
	RateCmdFaults int
	// ProcsDown counts processors whose monitor was pegged at u = 1 by a
	// crash window overlapping this period.
	ProcsDown int
	// GuardRateFirings and GuardUtilFirings are the per-period runtime
	// invariant-guard counters behind the aggregate Stats fields of the
	// same names: rate commands rejected and utilization samples clamped
	// in this period.
	GuardRateFirings, GuardUtilFirings int
	// GuardPoolImbalance is the pooled-object accounting discrepancy (in
	// objects) found by the audit at this period's sampling boundary; 0
	// when the pools balance.
	GuardPoolImbalance int
}

// MissRatio returns the subtask deadline miss ratio of the period (0 when
// nothing completed).
func (p PeriodStats) MissRatio() float64 {
	if p.Completed == 0 {
		return 0
	}
	return float64(p.SubtaskMisses) / float64(p.Completed)
}

// Trace is the full per-period record of a run. Its slices are owned by
// the Simulator that produced it and are overwritten by the next Reset;
// callers that outlive the Simulator (or Reset it) must copy what they
// need first.
type Trace struct {
	// Controller is the name of the rate controller used.
	Controller string
	// SamplingPeriod is Ts.
	SamplingPeriod float64
	// Utilization[k][p] is processor p's measured utilization in sampling
	// period k (k = 0 is the first period).
	Utilization [][]float64
	// Rates[k][i] is task i's rate during sampling period k.
	Rates [][]float64
	// Periods[k] holds the per-period job counters.
	Periods []PeriodStats
	// Stats holds aggregate counters.
	Stats Stats
}

// Simulator runs one configuration. Create with New, drive with Run, and
// reuse across runs with Reset.
type Simulator struct {
	cfg    Config
	sys    *task.System
	rng    *rand.Rand
	events eventQueue
	seq    uint64
	now    float64

	procs []processor
	rates []float64

	// releaseSeq[i] invalidates stale first-subtask release events for task
	// i after a rate change reschedules them.
	releaseSeq []uint64

	// subOff[i] is task i's base index into the flat per-subtask arrays
	// below: subtask (i, j) lives at subOff[i]+j.
	subOff      []int
	lastRelease []float64 // per subtask: last release time (-1: never)
	backlog     []int     // per subtask: incomplete jobs in flight

	// Free lists (see pool.go). eventsMade and jobsMade count every object
	// the pools ever allocated (never reset: pooled objects outlive Reset),
	// giving the invariant-guard audit a conservation law to check.
	freeEvents []*event
	freeJobs   []*job
	eventsMade int
	jobsMade   int

	// utilBacking and ratesBacking hold every trace row of the run
	// contiguously; handleSampling carves rows out of them so the sampling
	// path does not allocate.
	utilBacking  []float64
	ratesBacking []float64

	// faults holds the compiled fault scenario (idle when Config.Faults is
	// empty); degrade is Config.Controller's optional DegradationReporter
	// side, cached at Reset so sampling avoids per-period assertions.
	faults  fault.Engine
	degrade DegradationReporter

	// Fault-path scratch, sized at Reset only when faults are enabled:
	// uDeliver is the corrupted utilization vector handed to the
	// controller, cmdBacking records every period's commanded rates (the
	// source for delayed actuation), and effRates is the post-fault rate
	// vector actually applied.
	subsBuf    []int
	uDeliver   []float64
	cmdBacking []float64
	effRates   []float64

	// guardBuf holds the sanitized rate vector when the invariant guard
	// fires (the controller's slice may alias a trace row, so it is never
	// mutated in place). Sized at Reset; untouched on healthy periods.
	guardBuf []float64

	trace Trace
	cur   PeriodStats // counters for the in-progress sampling period
}

// New validates cfg and builds a Simulator.
func New(cfg Config) (*Simulator, error) {
	s := &Simulator{}
	if err := s.Reset(cfg); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset validates cfg and rebinds the Simulator to it, recycling every
// buffer, pool object, and trace row of the previous run. After Reset the
// Simulator behaves exactly like one freshly built with New(cfg): runs are
// bit-identical to a fresh simulator's for the same config, which the
// determinism tests pin. Any Trace returned by a previous Run is
// invalidated. Reset does not allocate when the new config's shape (number
// of processors, tasks, subtasks, and periods) fits the previous one.
func (s *Simulator) Reset(cfg Config) error {
	if err := cfg.validate(s.sys); err != nil {
		return err
	}
	// Compile the fault scenario before any state is touched, so a bad
	// scenario leaves the simulator bound to its previous config. An empty
	// scenario disables the engine without allocating.
	var shape fault.Shape
	if len(cfg.Faults) > 0 {
		nTasks := len(cfg.System.Tasks)
		s.subsBuf = growInts(s.subsBuf, nTasks)
		for i := range cfg.System.Tasks {
			s.subsBuf[i] = len(cfg.System.Tasks[i].Subtasks)
		}
		shape = fault.Shape{
			Procs:          cfg.System.Processors,
			Tasks:          nTasks,
			SubsPerTask:    s.subsBuf,
			Periods:        cfg.Periods,
			SamplingPeriod: cfg.SamplingPeriod,
		}
	}
	if err := s.faults.Compile(cfg.Faults, shape, cfg.Seed); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	// Reclaim the previous run's working set before any slice is resized.
	s.recycleInFlight()

	sys := cfg.System
	s.cfg = cfg
	s.sys = sys
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(cfg.Seed))
	} else {
		s.rng.Seed(cfg.Seed)
	}
	s.seq = 0
	s.now = 0
	s.cur = PeriodStats{}

	s.procs = growProcs(s.procs, sys.Processors)
	for p := range s.procs {
		pr := &s.procs[p]
		pr.ready.sim = s
		pr.running = nil
		pr.runStart = 0
		pr.busy = 0
		pr.seq = 0
	}

	nTasks := len(sys.Tasks)
	s.rates = growFloats(s.rates, nTasks)
	s.releaseSeq = growUints(s.releaseSeq, nTasks)
	s.subOff = growInts(s.subOff, nTasks)
	nSubs := 0
	for i := range sys.Tasks {
		s.rates[i] = sys.Tasks[i].InitialRate
		s.releaseSeq[i] = 0
		s.subOff[i] = nSubs
		nSubs += len(sys.Tasks[i].Subtasks)
	}
	s.lastRelease = growFloats(s.lastRelease, nSubs)
	s.backlog = growInts(s.backlog, nSubs)
	for i := 0; i < nSubs; i++ {
		s.lastRelease[i] = -1 // never released
		s.backlog[i] = 0
	}

	name := "NONE"
	if cfg.Controller != nil {
		name = cfg.Controller.Name()
	}
	s.degrade, _ = cfg.Controller.(DegradationReporter)
	if s.faults.Enabled() {
		s.uDeliver = growFloats(s.uDeliver, sys.Processors)
		s.effRates = growFloats(s.effRates, nTasks)
		s.cmdBacking = growFloats(s.cmdBacking, cfg.Periods*nTasks)
	}
	s.guardBuf = growFloats(s.guardBuf, nTasks)
	s.utilBacking = growFloats(s.utilBacking, cfg.Periods*sys.Processors)
	s.ratesBacking = growFloats(s.ratesBacking, cfg.Periods*nTasks)
	s.trace.Controller = name
	s.trace.SamplingPeriod = cfg.SamplingPeriod
	s.trace.Utilization = growRows(s.trace.Utilization, cfg.Periods)
	s.trace.Rates = growRows(s.trace.Rates, cfg.Periods)
	s.trace.Periods = growPeriodStats(s.trace.Periods, cfg.Periods)
	s.trace.Stats = Stats{}
	return nil
}

// growFloats, growInts, growUints, growRows, and growPeriodStats return a
// slice of the requested length, reusing the backing array when it is
// large enough. Contents are unspecified; callers overwrite them.
func growFloats(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

func growInts(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

func growUints(s []uint64, n int) []uint64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]uint64, n)
}

func growRows(s [][]float64, n int) [][]float64 {
	if cap(s) >= n {
		return s[:0]
	}
	return make([][]float64, 0, n)
}

func growPeriodStats(s []PeriodStats, n int) []PeriodStats {
	if cap(s) >= n {
		return s[:0]
	}
	return make([]PeriodStats, 0, n)
}

// growProcs resizes the processor table, preserving each slot's ready-queue
// backing array so reuse stays allocation-free.
func growProcs(s []processor, n int) []processor {
	if cap(s) >= n {
		return s[:n]
	}
	out := make([]processor, n)
	copy(out, s)
	return out
}

// Run executes the configured number of sampling periods and returns the
// trace. Run may only be called once per New or Reset.
func (s *Simulator) Run() (*Trace, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cancellation: the context is checked at every
// sampling boundary (the natural control-loop granularity), and the run
// stops with ctx.Err() once it is done. Partial trace data is discarded.
func (s *Simulator) RunContext(ctx context.Context) (*Trace, error) {
	// Initial releases of every task's first subtask at t = 0.
	for i := range s.sys.Tasks {
		s.scheduleFirstRelease(i, 0)
	}
	// Sampling boundaries at k·Ts.
	for k := 1; k <= s.cfg.Periods; k++ {
		e := s.newEvent()
		e.at = float64(k) * s.cfg.SamplingPeriod
		e.kind = evSampling
		s.push(e)
	}

	end := float64(s.cfg.Periods) * s.cfg.SamplingPeriod
	for s.events.len() > 0 {
		e := s.events.pop()
		// Termination safety net: the negated comparison also trips on a
		// NaN event time (identical to e.at > end+timeEps for any finite
		// time). Without it, a NaN-poisoned clock — reachable only when
		// the invariant guards are disabled — would regenerate NaN-timed
		// release chains forever and the loop would never exit; with it,
		// poisoning truncates the run, which the chaos harness detects.
		if !(e.at <= end+timeEps) {
			// Past the horizon: this event and anything still queued are
			// reclaimed by the next Reset.
			if e.job != nil {
				s.putJob(e.job)
			}
			s.putEvent(e)
			break
		}
		s.now = e.at
		switch e.kind {
		case evRelease:
			s.handleRelease(e)
		case evCompletion:
			s.handleCompletion(e)
		case evSampling:
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("sim: run canceled: %w", err)
			}
			if err := s.handleSampling(); err != nil {
				return nil, err
			}
		}
		// Handlers take ownership of e.job; the event itself is done.
		s.putEvent(e)
	}
	if cr, ok := s.cfg.Controller.(ContainmentReporter); ok {
		s.trace.Stats.ContainmentBestIterate, s.trace.Stats.ContainmentRegularized, s.trace.Stats.ContainmentHeld = cr.ContainmentCounts()
	}
	if er, ok := s.cfg.Controller.(ExplicitReporter); ok {
		s.trace.Stats.ExplicitHits, s.trace.Stats.ExplicitMisses = er.ExplicitCounts()
	}
	return &s.trace, nil
}

// push assigns the event its global sequence number and enqueues it.
//
//eucon:noalloc
func (s *Simulator) push(e *event) *event {
	s.seq++
	e.seq = s.seq
	s.events.push(e)
	return e
}

// period returns task i's current period 1/r_i.
//
//eucon:noalloc
func (s *Simulator) period(i int) float64 { return 1 / s.rates[i] }

// drawExecTime draws the actual execution time for subtask (taskIdx,
// subIdx) released now on processor proc.
//
//eucon:noalloc
func (s *Simulator) drawExecTime(estimatedCost float64, proc, taskIdx, subIdx int) float64 {
	mean := estimatedCost * s.cfg.ETF.At(s.now)
	if s.faults.Enabled() {
		mean *= s.faults.ExecFactor(proc, taskIdx, subIdx, s.now)
	}
	if s.cfg.Jitter == 0 { //eucon:float-exact Jitter is copied from the config, never computed
		return mean
	}
	lo := mean * (1 - s.cfg.Jitter)
	hi := mean * (1 + s.cfg.Jitter)
	return lo + s.rng.Float64()*(hi-lo)
}

// scheduleFirstRelease schedules the periodic release of task i's first
// subtask at time at.
//
//eucon:noalloc
func (s *Simulator) scheduleFirstRelease(i int, at float64) {
	s.releaseSeq[i]++
	j := s.newJob()
	j.taskIdx = i
	j.release = at
	e := s.newEvent()
	e.at = at
	e.kind = evRelease
	e.job = j
	e.relSeq = s.releaseSeq[i]
	s.push(e)
}

// handleRelease admits a job to its processor's ready queue.
//
//eucon:noalloc
func (s *Simulator) handleRelease(e *event) {
	j := e.job
	ti := j.taskIdx
	t := &s.sys.Tasks[ti]
	period := s.period(ti)
	if j.subIdx == 0 {
		// Stale periodic release (rescheduled after a rate change)?
		if e.relSeq != s.releaseSeq[ti] {
			s.putJob(j)
			return
		}
		j.chainStart = s.now
		j.chainDL = s.now + float64(len(t.Subtasks))*period
		// Schedule the next periodic release.
		s.scheduleFirstRelease(ti, s.now+period)
	}
	sub := s.subOff[ti] + j.subIdx
	// Load shedding: skip the release when this subtask's backlog is full.
	if s.cfg.MaxBacklog > 0 && s.backlog[sub] >= s.cfg.MaxBacklog {
		s.trace.Stats.SkippedJobs++
		s.putJob(j)
		return
	}
	st := &t.Subtasks[j.subIdx]
	// Crash windows: a down processor refuses admission; the release is
	// lost, not queued (the periodic chain above keeps running, so the
	// task resumes when the processor recovers).
	if s.faults.Enabled() && s.faults.Down(st.Processor, s.now) {
		s.trace.Stats.CrashShedJobs++
		s.putJob(j)
		return
	}
	j.proc = st.Processor
	j.release = s.now
	j.deadline = s.now + period
	j.remaining = s.drawExecTime(st.EstimatedCost, j.proc, ti, j.subIdx)
	s.lastRelease[sub] = s.now
	s.backlog[sub]++
	s.trace.Stats.ReleasedJobs++
	s.cur.Released++

	s.procs[j.proc].ready.push(j)
	s.dispatch(j.proc)
}

// handleCompletion finishes the running job on a processor if the event is
// still valid.
//
//eucon:noalloc
func (s *Simulator) handleCompletion(e *event) {
	p := &s.procs[e.proc]
	if e.seq != p.seq || p.running == nil {
		return // superseded by a preemption or rate change
	}
	s.accrue(e.proc)
	j := p.running
	if j.remaining > timeEps {
		// Numerical drift: reschedule the residue.
		s.scheduleCompletion(e.proc)
		return
	}
	p.running = nil
	s.completeJob(j)
	s.putJob(j)
	s.dispatch(e.proc)
}

// completeJob records statistics and releases the successor subtask under
// the release guard protocol. The caller still owns j and recycles it.
//
//eucon:noalloc
func (s *Simulator) completeJob(j *job) {
	s.trace.Stats.CompletedJobs++
	s.cur.Completed++
	s.backlog[s.subOff[j.taskIdx]+j.subIdx]--
	if s.now > j.deadline+timeEps {
		s.trace.Stats.SubtaskDeadlineMisses++
		s.cur.SubtaskMisses++
	}
	t := &s.sys.Tasks[j.taskIdx]
	if j.subIdx == len(t.Subtasks)-1 {
		s.trace.Stats.EndToEndCompletions++
		s.cur.EndToEndCompletions++
		if s.now > j.chainDL+timeEps {
			s.trace.Stats.EndToEndDeadlineMisses++
			s.cur.EndToEndMisses++
		}
		return
	}
	// Release guard: the successor is released at
	// max(predecessor completion, previous release + period), keeping it
	// periodic with minimum separation of one period.
	next := j.subIdx + 1
	guard := s.now
	if last := s.lastRelease[s.subOff[j.taskIdx]+next]; last >= 0 {
		if g := last + s.period(j.taskIdx); g > guard {
			guard = g
		}
	}
	succ := s.newJob()
	succ.taskIdx = j.taskIdx
	succ.subIdx = next
	succ.chainStart = j.chainStart
	succ.chainDL = j.chainDL
	e := s.newEvent()
	e.at = guard
	e.kind = evRelease
	e.job = succ
	s.push(e)
}

// accrue charges CPU time to the running job up to the current instant.
//
//eucon:noalloc
func (s *Simulator) accrue(procIdx int) {
	p := &s.procs[procIdx]
	if p.running == nil {
		return
	}
	elapsed := s.now - p.runStart
	if elapsed <= 0 {
		return
	}
	p.running.remaining -= elapsed
	if p.running.remaining < 0 {
		p.running.remaining = 0
	}
	p.busy += elapsed
	p.runStart = s.now
}

// dispatch re-evaluates which job should hold processor procIdx under RMS
// (shortest current period first) and schedules its completion.
//
//eucon:noalloc
func (s *Simulator) dispatch(procIdx int) {
	s.accrue(procIdx)
	p := &s.procs[procIdx]
	if p.running != nil {
		// Fast path: the incumbent keeps the CPU unless a higher-priority
		// job is waiting.
		if p.ready.len() == 0 || !s.higherPriority(p.ready.peek(), p.running) {
			return
		}
		p.ready.push(p.running)
		p.running = nil
	}
	if p.ready.len() == 0 {
		return
	}
	p.running = p.ready.pop()
	p.runStart = s.now
	s.scheduleCompletion(procIdx)
}

// higherPriority implements RMS with deterministic tie-breaking: shorter
// current period wins; ties break by task index, then subtask index, then
// earlier release.
//
//eucon:noalloc
//eucon:float-exact tie-break of a total order; equal periods must compare equal
func (s *Simulator) higherPriority(a, b *job) bool {
	pa, pb := s.period(a.taskIdx), s.period(b.taskIdx)
	if pa != pb {
		return pa < pb
	}
	if a.taskIdx != b.taskIdx {
		return a.taskIdx < b.taskIdx
	}
	if a.subIdx != b.subIdx {
		return a.subIdx < b.subIdx
	}
	return a.release < b.release
}

// scheduleCompletion schedules the tentative finish of the running job.
//
//eucon:noalloc
func (s *Simulator) scheduleCompletion(procIdx int) {
	p := &s.procs[procIdx]
	e := s.newEvent()
	e.at = s.now + p.running.remaining
	e.kind = evCompletion
	e.proc = procIdx
	s.push(e)
	p.seq = e.seq
}

// handleSampling closes the current sampling window: it records
// utilizations and rates, consults the controller, and applies new rates.
// Trace rows are slices of the run-length backing buffers, so the steady
// state allocates nothing here.
//
//eucon:noalloc
func (s *Simulator) handleSampling() error {
	k := len(s.trace.Utilization)
	np := len(s.procs)
	faulted := s.faults.Enabled()
	guarded := !s.cfg.DisableGuards
	u := s.utilBacking[k*np : (k+1)*np : (k+1)*np]
	for i := range s.procs {
		s.accrue(i)
		u[i] = s.procs[i].busy / s.cfg.SamplingPeriod
		if guarded && !(u[i] >= 0) {
			// Invariant guard: a NaN or negative busy fraction means clock
			// arithmetic was poisoned upstream; record 0 rather than let a
			// non-finite sample enter the trace and the feedback loop.
			u[i] = 0
			s.cur.GuardUtilFirings++
			s.trace.Stats.GuardUtilFirings++
		}
		if u[i] > 1 {
			u[i] = 1
		}
		if faulted && s.faults.DownPeriod(k, i) {
			// A crashed processor's monitor reports saturation; the trace
			// records what the monitor reported, not the idle truth.
			u[i] = 1
			s.cur.ProcsDown++
		}
		s.procs[i].busy = 0
	}
	if guarded {
		if imbalance := s.auditPools(); imbalance != 0 {
			s.cur.GuardPoolImbalance = imbalance
			s.trace.Stats.GuardPoolFirings++
		}
	}
	s.trace.Utilization = append(s.trace.Utilization, u) //eucon:alloc-ok appends a row header into a run-length pre-capped slice
	s.trace.Periods = append(s.trace.Periods, s.cur)     //eucon:alloc-ok appends into a run-length pre-capped slice
	s.cur = PeriodStats{}
	nt := len(s.rates)
	applied := s.ratesBacking[k*nt : (k+1)*nt : (k+1)*nt]
	copy(applied, s.rates)
	s.trace.Rates = append(s.trace.Rates, applied) //eucon:alloc-ok appends a row header into a run-length pre-capped slice

	if s.cfg.Controller == nil {
		return nil
	}
	uIn := u
	if faulted {
		uIn = s.deliverFeedback(k, u)
	}
	newRates, err := s.cfg.Controller.Step(k, uIn, applied) //eucon:alloc-ok controller boundary: plugged controllers may allocate; the plant does not
	if err != nil {
		// A controller failure must not crash the plant: keep current rates.
		s.trace.Stats.ControllerErrors++
		if faulted {
			// Keeping the rates is this period's effective command; record
			// it so delayed actuation has a source to replay.
			copy(s.cmdBacking[k*nt:(k+1)*nt], s.rates)
		}
		return nil
	}
	if len(newRates) != len(s.rates) {
		//eucon:alloc-ok fatal error path, not steady state
		return fmt.Errorf("sim: controller %s returned %d rates, want %d", s.cfg.Controller.Name(), len(newRates), len(s.rates))
	}
	if s.degrade != nil {
		held, skipped := s.degrade.LastDegradation()
		ps := &s.trace.Periods[k]
		ps.HeldSamples = held
		if skipped {
			ps.ControlSkipped = 1
		}
	}
	if guarded {
		newRates = s.guardRates(k, newRates)
	}
	if faulted {
		newRates = s.applyCommandFaults(k, newRates)
	}
	s.applyRates(newRates)
	return nil
}

// guardRates is the runtime invariant guard on controller output: every
// commanded rate must be finite and inside its task's [RateMin, RateMax]
// box. Healthy vectors pass through untouched (same slice, zero cost);
// violations are counted in the trace and replaced — non-finite commands
// hold the task's current rate, out-of-bounds commands clamp — in a
// scratch copy, because the controller's slice may alias a trace row.
//
//eucon:noalloc
func (s *Simulator) guardRates(k int, newRates []float64) []float64 {
	bad := 0
	for i, r := range newRates {
		t := &s.sys.Tasks[i]
		if !(r >= t.RateMin) || !(r <= t.RateMax) {
			bad++
		}
	}
	if bad == 0 {
		return newRates
	}
	out := s.guardBuf
	copy(out, newRates)
	for i, r := range out {
		t := &s.sys.Tasks[i]
		switch {
		case math.IsNaN(r) || math.IsInf(r, 0):
			out[i] = s.rates[i] // no trustworthy command: hold
		case r < t.RateMin:
			out[i] = t.RateMin
		case r > t.RateMax:
			out[i] = t.RateMax
		}
	}
	ps := &s.trace.Periods[k]
	ps.GuardRateFirings += bad
	s.trace.Stats.GuardRateFirings += bad
	return out
}

// auditPools checks the pooled-object conservation law at a sampling
// boundary: every event and job ever allocated is either in its free list
// or accounted for in exactly one live location (the event queue, a ready
// queue, a running slot, or — for the sampling event being handled — the
// run loop's hands). A nonzero return is the total accounting discrepancy
// in objects, marking a leak or double-recycle.
//
//eucon:noalloc
func (s *Simulator) auditPools() int {
	carriedJobs := 0
	for _, e := range s.events.ev {
		if e.job != nil {
			carriedJobs++
		}
	}
	liveJobs := carriedJobs
	for p := range s.procs {
		liveJobs += s.procs[p].ready.len()
		if s.procs[p].running != nil {
			liveJobs++
		}
	}
	// +1: the sampling event driving this call is popped but not yet
	// recycled by the run loop.
	liveEvents := s.events.len() + 1
	imbalance := 0
	if d := s.eventsMade - len(s.freeEvents) - liveEvents; d != 0 {
		if d < 0 {
			d = -d
		}
		imbalance += d
	}
	if d := s.jobsMade - len(s.freeJobs) - liveJobs; d != 0 {
		if d < 0 {
			d = -d
		}
		imbalance += d
	}
	return imbalance
}

// deliverFeedback builds the utilization vector the controller actually
// receives under the compiled feedback faults: dropped samples become NaN
// (the controller's hold-last policy takes over), delayed samples replay
// the recorded measurement of an earlier period, and quantized samples are
// rounded to the fault's step. The pristine vector u stays in the trace.
//
//eucon:noalloc
func (s *Simulator) deliverFeedback(k int, u []float64) []float64 {
	ps := &s.trace.Periods[k]
	for p := range u {
		cell := s.faults.Feedback(k, p)
		v := u[p]
		switch {
		case cell.Src < 0:
			v = math.NaN()
			ps.FeedbackMissing++
		case cell.Src < k:
			v = s.trace.Utilization[cell.Src][p]
			ps.FeedbackStale++
		}
		if cell.Quant > 0 && cell.Src >= 0 {
			v = math.Round(v/cell.Quant) * cell.Quant
		}
		s.uDeliver[p] = v
	}
	return s.uDeliver
}

// applyCommandFaults records the controller's commanded rates for period k
// and returns the rate vector the modulator actually applies under the
// compiled actuator faults: delayed commands replay the command issued
// Delay periods earlier, dropped commands hold the current rate, and
// clamped commands bound the per-period rate move around it.
//
//eucon:noalloc
func (s *Simulator) applyCommandFaults(k int, newRates []float64) []float64 {
	nt := len(newRates)
	cmd := s.cmdBacking[k*nt : (k+1)*nt : (k+1)*nt]
	copy(cmd, newRates)
	ps := &s.trace.Periods[k]
	for i := 0; i < nt; i++ {
		cell := s.faults.Command(k, i)
		want := cmd[i]
		hit := false
		if cell.Delay > 0 {
			hit = true
			if src := k - cell.Delay; src >= 0 {
				want = s.cmdBacking[src*nt+i]
			} else {
				want = s.rates[i] // nothing was commanded that early: hold
			}
		}
		if cell.Drop {
			hit = true
			want = s.rates[i] // dropped command: the modulator holds its rate
		}
		if cell.Clamp >= 0 {
			hit = true
			if lo := s.rates[i] - cell.Clamp; want < lo {
				want = lo
			}
			if hi := s.rates[i] + cell.Clamp; want > hi {
				want = hi
			}
		}
		if hit {
			ps.RateCmdFaults++
		}
		s.effRates[i] = want
	}
	return s.effRates
}

// applyRates installs new task rates, clamped to each task's bounds, and
// reschedules pending periodic releases to honor the new periods.
//
//eucon:noalloc
func (s *Simulator) applyRates(newRates []float64) {
	changed := false
	for i, r := range newRates {
		t := &s.sys.Tasks[i]
		if r < t.RateMin {
			r = t.RateMin
		}
		if r > t.RateMax {
			r = t.RateMax
		}
		if r != s.rates[i] { //eucon:float-exact change detection on values that are only ever copied
			s.rates[i] = r
			changed = true
			// Re-time the next periodic release of the first subtask.
			next := s.now
			if last := s.lastRelease[s.subOff[i]]; last >= 0 {
				if g := last + s.period(i); g > next {
					next = g
				}
			}
			s.scheduleFirstRelease(i, next)
		}
	}
	if !changed {
		return
	}
	// Periods changed, so RMS priorities changed: restore each ready heap's
	// invariant under the new order and re-dispatch so preemption reflects
	// it.
	for p := range s.procs {
		s.procs[p].ready.reinit()
		s.dispatch(p)
	}
}
