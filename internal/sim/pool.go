package sim

// Free lists for the two object kinds churned by the event loop. Both are
// simple LIFO stacks owned by one Simulator: recycled objects never cross
// simulators (and therefore never cross goroutines — each sweep worker owns
// its simulator), so no synchronization is needed and the race detector can
// prove the property on parallel sweeps.
//
// Ownership discipline: an event or job pointer lives in exactly one place
// at a time — the event queue, a processor's ready queue, a processor's
// running slot, or a free list. Handlers must recycle an object in the same
// step that drops the last reference to it; after putEvent/putJob the
// pointer must not be touched again.

// newEvent returns a zeroed event, recycling from the free list when
// possible. Steady state never allocates: the pool high-water mark is the
// maximum number of simultaneously pending events, reached during the first
// few sampling periods.
//
//eucon:noalloc
func (s *Simulator) newEvent() *event {
	if n := len(s.freeEvents); n > 0 {
		e := s.freeEvents[n-1]
		s.freeEvents[n-1] = nil
		s.freeEvents = s.freeEvents[:n-1]
		*e = event{}
		return e
	}
	s.eventsMade++
	return &event{} //eucon:alloc-ok cold-path pool miss; amortized to zero in steady state
}

// putEvent recycles a handled (or stale) event. The caller must have taken
// ownership of e.job first — putEvent does not free the job, because on the
// release path the job outlives its carrying event.
//
//eucon:noalloc
func (s *Simulator) putEvent(e *event) {
	s.freeEvents = append(s.freeEvents, e) //eucon:alloc-ok amortized free-list growth; capacity plateaus at the working set
}

// newJob returns a zeroed job, recycling from the free list when possible.
//
//eucon:noalloc
func (s *Simulator) newJob() *job {
	if n := len(s.freeJobs); n > 0 {
		j := s.freeJobs[n-1]
		s.freeJobs[n-1] = nil
		s.freeJobs = s.freeJobs[:n-1]
		*j = job{}
		return j
	}
	s.jobsMade++
	return &job{} //eucon:alloc-ok cold-path pool miss; amortized to zero in steady state
}

// putJob recycles a completed, shed, or stale job.
//
//eucon:noalloc
func (s *Simulator) putJob(j *job) {
	s.freeJobs = append(s.freeJobs, j) //eucon:alloc-ok amortized free-list growth; capacity plateaus at the working set
}

// recycleInFlight drains every live event and job — pending events (and the
// jobs they carry), ready queues, and running slots — back into the free
// lists. Reset uses it so a reused Simulator re-enters its first sampling
// period with warm pools instead of reallocating the working set.
//
//eucon:noalloc
func (s *Simulator) recycleInFlight() {
	for _, e := range s.events.ev {
		if e.job != nil {
			s.putJob(e.job)
		}
		s.putEvent(e)
	}
	clear(s.events.ev)
	s.events.ev = s.events.ev[:0]
	for p := range s.procs {
		pr := &s.procs[p]
		for _, j := range pr.ready.jobs {
			s.putJob(j)
		}
		clear(pr.ready.jobs)
		pr.ready.jobs = pr.ready.jobs[:0]
		if pr.running != nil {
			s.putJob(pr.running)
			pr.running = nil
		}
	}
}
