package sim

import "container/heap"

// eventKind orders simultaneous events: completions free processors before
// new releases contend for them, and sampling observes a settled state.
type eventKind int

const (
	evCompletion eventKind = iota + 1
	evRelease
	evSampling
)

// event is a scheduled simulator occurrence.
type event struct {
	at   float64
	kind eventKind
	seq  uint64 // global tie-break and stale-event detection

	// evCompletion: the processor whose running job tentatively finishes.
	proc int
	// evRelease: the job to enqueue.
	job *job
	// evRelease of a first subtask: the periodic-release sequence that must
	// still be current for the event to be valid.
	relSeq uint64
}

type eventQueue []*event

var _ heap.Interface = (*eventQueue)(nil)

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	if q[i].kind != q[j].kind {
		return q[i].kind < q[j].kind
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}
