package sim

// eventKind orders simultaneous events: completions free processors before
// new releases contend for them, and sampling observes a settled state.
//
//eucon:exhaustive
type eventKind int

const (
	evCompletion eventKind = iota + 1
	evRelease
	evSampling
)

// event is a scheduled simulator occurrence. Events are pooled: the
// Simulator recycles them through its free list once handled, so no event
// pointer may be retained after its handler returns.
type event struct {
	at   float64
	kind eventKind
	seq  uint64 // global tie-break and stale-event detection

	// evCompletion: the processor whose running job tentatively finishes.
	proc int
	// evRelease: the job to enqueue.
	job *job
	// evRelease of a first subtask: the periodic-release sequence that must
	// still be current for the event to be valid.
	relSeq uint64
}

// eventQueue is a flat 4-ary min-heap of pending events ordered by
// (at, kind, seq). The order is total — seq is unique per event — so the
// pop sequence is independent of heap arity and insertion order, keeping
// runs bit-identical to any other correct priority queue.
//
// The queue is concrete-typed on purpose: container/heap routes every Push
// and Pop through interface method calls and `any` conversions on the hot
// path; a 4-ary layout additionally halves the tree depth and keeps sibling
// comparisons within one cache line of pointers.
type eventQueue struct {
	ev []*event
}

// eventBefore is the strict total order of the queue.
//
//eucon:noalloc
//eucon:float-exact tie-break of a total order; equal timestamps must compare equal
func eventBefore(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.seq < b.seq
}

//eucon:noalloc
func (q *eventQueue) len() int { return len(q.ev) }

//eucon:noalloc
func (q *eventQueue) push(e *event) {
	q.ev = append(q.ev, e) //eucon:alloc-ok amortized heap growth; capacity plateaus at the pending-event high-water mark
	// Sift up.
	i := len(q.ev) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !eventBefore(q.ev[i], q.ev[parent]) {
			break
		}
		q.ev[i], q.ev[parent] = q.ev[parent], q.ev[i]
		i = parent
	}
}

//eucon:noalloc
func (q *eventQueue) pop() *event {
	top := q.ev[0]
	n := len(q.ev) - 1
	q.ev[0] = q.ev[n]
	q.ev[n] = nil
	q.ev = q.ev[:n]
	if n > 1 {
		q.siftDown(0)
	}
	return top
}

//eucon:noalloc
func (q *eventQueue) siftDown(i int) {
	n := len(q.ev)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventBefore(q.ev[c], q.ev[best]) {
				best = c
			}
		}
		if !eventBefore(q.ev[best], q.ev[i]) {
			return
		}
		q.ev[i], q.ev[best] = q.ev[best], q.ev[i]
		i = best
	}
}
