package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestEventQueuePopsInTotalOrder drives the flat 4-ary event heap with
// random events and checks the pop sequence equals the sorted order of the
// (at, kind, seq) total order — the property that keeps runs bit-identical
// regardless of heap layout.
func TestEventQueuePopsInTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		var q eventQueue
		n := 1 + rng.Intn(200)
		want := make([]*event, 0, n)
		for i := 0; i < n; i++ {
			e := &event{
				at:   float64(rng.Intn(20)), // force at/kind/seq ties
				kind: eventKind(1 + rng.Intn(3)),
				seq:  uint64(i),
			}
			want = append(want, e)
			q.push(e)
		}
		sort.Slice(want, func(i, j int) bool { return eventBefore(want[i], want[j]) })
		for i, w := range want {
			got := q.pop()
			if got != w {
				t.Fatalf("trial %d: pop %d = %+v, want %+v", trial, i, got, w)
			}
		}
		if q.len() != 0 {
			t.Fatalf("trial %d: queue not drained", trial)
		}
	}
}

// TestJobHeapPopsByRMSPriority checks the ready queue pops jobs in strict
// higherPriority order, and that reinit restores the invariant after the
// rates under the queued jobs change.
func TestJobHeapPopsByRMSPriority(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		s := &Simulator{rates: []float64{0.02, 0.01, 0.05, 0.02}}
		h := jobHeap{sim: s}
		n := 1 + rng.Intn(100)
		jobs := make([]*job, 0, n)
		for i := 0; i < n; i++ {
			j := &job{
				taskIdx: rng.Intn(len(s.rates)),
				subIdx:  rng.Intn(3),
				release: float64(i), // strictly increasing, as in real runs
			}
			jobs = append(jobs, j)
			h.push(j)
		}
		// A rate change mid-flight: re-heapify and verify the new order.
		s.rates[0], s.rates[2] = 0.001, 0.2
		h.reinit()
		want := append([]*job(nil), jobs...)
		sort.SliceStable(want, func(i, j int) bool { return s.higherPriority(want[i], want[j]) })
		for i, w := range want {
			got := h.pop()
			if got != w {
				t.Fatalf("trial %d: pop %d = %+v, want %+v", trial, i, got, w)
			}
		}
	}
}

// TestPoolsRecycle pins the free-list mechanics: recycled objects are
// zeroed on reuse and the pools drain before allocating anew.
func TestPoolsRecycle(t *testing.T) {
	s := &Simulator{}
	e := s.newEvent()
	e.at, e.kind, e.job = 5, evRelease, &job{taskIdx: 3}
	s.putEvent(e)
	if got := s.newEvent(); got != e {
		t.Error("event pool did not recycle the freed event")
	} else if got.at != 0 || got.kind != 0 || got.job != nil {
		t.Errorf("recycled event not zeroed: %+v", got)
	}
	j := s.newJob()
	j.taskIdx, j.remaining = 7, 3.5
	s.putJob(j)
	if got := s.newJob(); got != j {
		t.Error("job pool did not recycle the freed job")
	} else if got.taskIdx != 0 || got.remaining != 0 {
		t.Errorf("recycled job not zeroed: %+v", got)
	}
}
