package sim

// jobHeap is a processor's ready queue: a flat 4-ary min-heap of pending
// jobs ordered by RMS priority (shortest current period first, see
// Simulator.higherPriority). Like eventQueue it is concrete-typed — no
// container/heap interface calls or `any` conversions on the dispatch path.
//
// Priorities are live values owned by the simulator (they change when task
// rates change), so the heap must be re-heapified via reinit whenever rates
// change. The priority order is total — ties break by task index, subtask
// index, then release time, and release times are strictly increasing per
// subtask — so the pop sequence is independent of heap arity and layout.
type jobHeap struct {
	jobs []*job
	sim  *Simulator
}

//eucon:noalloc
func (h *jobHeap) len() int { return len(h.jobs) }

// peek returns the highest-priority ready job; the heap must be non-empty.
//
//eucon:noalloc
func (h *jobHeap) peek() *job { return h.jobs[0] }

//eucon:noalloc
func (h *jobHeap) push(j *job) {
	h.jobs = append(h.jobs, j) //eucon:alloc-ok amortized heap growth; capacity plateaus at the per-processor backlog bound
	i := len(h.jobs) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !h.sim.higherPriority(h.jobs[i], h.jobs[parent]) {
			break
		}
		h.jobs[i], h.jobs[parent] = h.jobs[parent], h.jobs[i]
		i = parent
	}
}

//eucon:noalloc
func (h *jobHeap) pop() *job {
	top := h.jobs[0]
	n := len(h.jobs) - 1
	h.jobs[0] = h.jobs[n]
	h.jobs[n] = nil
	h.jobs = h.jobs[:n]
	if n > 1 {
		h.siftDown(0)
	}
	return top
}

//eucon:noalloc
func (h *jobHeap) siftDown(i int) {
	n := len(h.jobs)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h.sim.higherPriority(h.jobs[c], h.jobs[best]) {
				best = c
			}
		}
		if !h.sim.higherPriority(h.jobs[best], h.jobs[i]) {
			return
		}
		h.jobs[i], h.jobs[best] = h.jobs[best], h.jobs[i]
		i = best
	}
}

// reinit restores the heap invariant after RMS priorities changed under the
// queued jobs (a rate change altered task periods).
//
//eucon:noalloc
func (h *jobHeap) reinit() {
	n := len(h.jobs)
	for i := (n - 2) / 4; i >= 0; i-- {
		h.siftDown(i)
	}
}
