package sim

import (
	"math"
	"testing"

	"github.com/rtsyslab/eucon/internal/task"
)

// threeTaskSystem is one processor with three tasks of distinct rate
// boxes, so one guardRates call can exercise every repair case at once.
func threeTaskSystem() *task.System {
	mk := func(name string, lo, hi, r0 float64) task.Task {
		return task.Task{
			Name:        name,
			Subtasks:    []task.Subtask{{Processor: 0, EstimatedCost: 5}},
			RateMin:     lo,
			RateMax:     hi,
			InitialRate: r0,
		}
	}
	return &task.System{
		Name:       "three",
		Processors: 1,
		Tasks: []task.Task{
			mk("T1", 0.001, 0.01, 0.005),
			mk("T2", 0.002, 0.02, 0.01),
			mk("T3", 0.003, 0.03, 0.015),
		},
	}
}

// TestGuardRatesWhiteBox drives the rate guard directly: a clean command
// passes through untouched (same backing array — the zero-allocation
// steady state), and a poisoned command is repaired per element: NaN/Inf
// hold the last applied rate, finite excursions clamp to the box, and both
// counters record every bad element.
func TestGuardRatesWhiteBox(t *testing.T) {
	s, err := New(Config{System: threeTaskSystem(), SamplingPeriod: 1000, Periods: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.trace.Periods = append(s.trace.Periods, PeriodStats{})

	clean := []float64{0.005, 0.01, 0.015}
	if got := s.guardRates(0, clean); &got[0] != &clean[0] {
		t.Fatal("clean command was copied; the hot path must return the caller's slice")
	}
	if s.trace.Stats.GuardRateFirings != 0 {
		t.Fatalf("clean command counted %d firings", s.trace.Stats.GuardRateFirings)
	}

	bad := []float64{math.NaN(), 1e-9, 99}
	out := s.guardRates(0, bad)
	if out[0] != s.rates[0] {
		t.Errorf("NaN command repaired to %g, want held rate %g", out[0], s.rates[0])
	}
	if out[1] != 0.002 {
		t.Errorf("below-min command repaired to %g, want RateMin 0.002", out[1])
	}
	if out[2] != 0.03 {
		t.Errorf("above-max command repaired to %g, want RateMax 0.03", out[2])
	}
	if s.trace.Periods[0].GuardRateFirings != 3 || s.trace.Stats.GuardRateFirings != 3 {
		t.Errorf("firings = (period %d, total %d), want 3 bad elements counted in both",
			s.trace.Periods[0].GuardRateFirings, s.trace.Stats.GuardRateFirings)
	}
	if &out[0] == &bad[0] {
		t.Error("repaired command aliases the caller's slice; must use the guard buffer")
	}

	// Inf is held like NaN.
	if out := s.guardRates(0, []float64{math.Inf(1), 0.01, 0.015}); out[0] != s.rates[0] {
		t.Errorf("Inf command repaired to %g, want held rate %g", out[0], s.rates[0])
	}
}

// nanController emits a NaN rate for task 0 from period `from` onward —
// the planted controller bug of the chaos harness, at the sim layer.
type nanController struct{ from int }

func (nanController) Name() string { return "NANBUG" }

func (nanController) Reset() {}

func (nanController) SetPoints() []float64 { return nil }

func (c nanController) Step(k int, u, rates []float64) ([]float64, error) {
	out := append([]float64(nil), rates...)
	if k >= c.from {
		out[0] = math.NaN()
	}
	return out, nil
}

// TestGuardContainsNaNController pins end-to-end containment: a controller
// emitting NaN never reaches the plant — the run completes, every recorded
// rate stays finite at the held value, and the firings are counted.
func TestGuardContainsNaNController(t *testing.T) {
	sys := oneTaskSystem(10, 0.01)
	tr := mustRun(t, Config{
		System:         sys,
		SamplingPeriod: 1000,
		Periods:        20,
		Controller:     nanController{from: 3},
	})
	if len(tr.Utilization) != 20 {
		t.Fatalf("run truncated to %d periods with guards enabled", len(tr.Utilization))
	}
	if tr.Stats.GuardRateFirings == 0 {
		t.Fatal("no rate-guard firings recorded for a NaN-emitting controller")
	}
	for k, row := range tr.Rates {
		if row[0] != 0.01 {
			t.Fatalf("period %d: rate %g, want the held initial 0.01", k, row[0])
		}
	}
	if tr.Periods[3].GuardRateFirings != 1 {
		t.Errorf("period 3 firings = %d, want 1", tr.Periods[3].GuardRateFirings)
	}
}

// TestDisableGuardsLetsNaNPoisonTheRun pins the test-only escape hatch the
// chaos shrinker depends on: with guards off, the NaN reaches the rate
// modulator, poisons the event clock, and the run-loop safety net
// truncates the run instead of spinning forever. The truncation — not a
// hang, not a panic — is the observable violation.
func TestDisableGuardsLetsNaNPoisonTheRun(t *testing.T) {
	s, err := New(Config{
		System:         oneTaskSystem(10, 0.01),
		SamplingPeriod: 1000,
		Periods:        20,
		Controller:     nanController{from: 3},
		DisableGuards:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stats.GuardRateFirings != 0 {
		t.Fatalf("guards fired %d times while disabled", tr.Stats.GuardRateFirings)
	}
	if len(tr.Utilization) >= 20 {
		t.Fatalf("run recorded %d periods; expected NaN poisoning to truncate it", len(tr.Utilization))
	}
}

// hookController runs a sabotage callback against the simulator each
// period before returning the rates unchanged — white-box fault planting
// for the audit and utilization guards.
type hookController struct {
	s    *Simulator
	hook func(k int, s *Simulator)
}

func (*hookController) Name() string { return "HOOK" }

func (*hookController) Reset() {}

func (*hookController) SetPoints() []float64 { return nil }

func (h *hookController) Step(k int, u, rates []float64) ([]float64, error) {
	h.hook(k, h.s)
	return rates, nil
}

// TestAuditPoolsDetectsLeak plants a phantom allocation mid-run and
// expects the conservation audit to flag every subsequent boundary.
func TestAuditPoolsDetectsLeak(t *testing.T) {
	hc := &hookController{hook: func(k int, s *Simulator) {
		if k == 5 {
			s.jobsMade++ // a job the free lists will never see again
		}
	}}
	s, err := New(Config{System: oneTaskSystem(10, 0.01), SamplingPeriod: 1000, Periods: 12, Controller: hc})
	if err != nil {
		t.Fatal(err)
	}
	hc.s = s
	tr, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stats.GuardPoolFirings == 0 {
		t.Fatal("pool audit never fired after a planted leak")
	}
	if tr.Periods[5].GuardPoolImbalance != 0 {
		t.Error("audit fired before the leak existed")
	}
	if got := tr.Periods[6].GuardPoolImbalance; got != 1 {
		t.Errorf("period 6 imbalance = %d, want 1 leaked object", got)
	}
}

// TestUtilGuardClampsPoisonedMonitor plants a NaN busy-time accumulator
// and expects the utilization guard to zero the sample, keep the trace
// finite, and count the firing.
func TestUtilGuardClampsPoisonedMonitor(t *testing.T) {
	hc := &hookController{hook: func(k int, s *Simulator) {
		if k == 5 {
			s.procs[0].busy = math.NaN()
		}
	}}
	s, err := New(Config{System: oneTaskSystem(10, 0.01), SamplingPeriod: 1000, Periods: 12, Controller: hc})
	if err != nil {
		t.Fatal(err)
	}
	hc.s = s
	tr, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stats.GuardUtilFirings == 0 {
		t.Fatal("utilization guard never fired on a NaN busy accumulator")
	}
	for k, row := range tr.Utilization {
		if math.IsNaN(row[0]) || math.IsInf(row[0], 0) {
			t.Fatalf("period %d: non-finite utilization entered the trace", k)
		}
	}
	if tr.Utilization[6][0] != 0 {
		t.Errorf("poisoned sample recorded as %g, want guarded 0", tr.Utilization[6][0])
	}
}
