package sim

import (
	"fmt"
	"sort"
)

// ETFStep is one segment of an execution-time factor schedule: from time At
// (in time units) onward, actual mean execution times are Factor times the
// design-time estimates.
type ETFStep struct {
	At     float64
	Factor float64
}

// ETFSchedule is a piecewise-constant execution-time factor over simulated
// time (paper §7.1: etf_ij(k) = a_ij(k)/c_ij, shared by all subtasks). The
// zero value means etf = 1 everywhere (actual times match estimates).
type ETFSchedule struct {
	steps []ETFStep
}

// ConstantETF returns a schedule with a single factor for the whole run.
func ConstantETF(factor float64) ETFSchedule {
	return ETFSchedule{steps: []ETFStep{{At: 0, Factor: factor}}}
}

// StepETF builds a schedule from explicit steps; steps are sorted by time.
// The sort is stable so callers passing equal step times get a
// deterministic schedule, but such schedules are ambiguous and rejected by
// validation: step times must be strictly increasing. It returns an error
// when any factor is non-positive or any step time is duplicated.
func StepETF(steps ...ETFStep) (ETFSchedule, error) {
	out := make([]ETFStep, len(steps))
	copy(out, steps)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	for _, s := range out {
		if s.Factor <= 0 {
			return ETFSchedule{}, fmt.Errorf("sim: execution-time factor %g at t=%g must be positive", s.Factor, s.At)
		}
	}
	sched := ETFSchedule{steps: out}
	if err := sched.validate(); err != nil {
		return ETFSchedule{}, fmt.Errorf("sim: %w", err)
	}
	return sched, nil
}

// validate rejects ambiguous schedules: after sorting, step times must be
// strictly increasing (duplicates would make the factor at the shared
// instant depend on argument order). Config.validate calls this so every
// simulation run checks its schedule explicitly.
func (s ETFSchedule) validate() error {
	for i := 1; i < len(s.steps); i++ {
		if s.steps[i].At <= s.steps[i-1].At {
			return fmt.Errorf("etf schedule: step times must be strictly increasing, got t=%g after t=%g",
				s.steps[i].At, s.steps[i-1].At)
		}
	}
	return nil
}

// At returns the factor in effect at time t. Before the first step (or with
// no steps at all) the factor is 1.
func (s ETFSchedule) At(t float64) float64 {
	f := 1.0
	for _, st := range s.steps {
		if st.At > t {
			break
		}
		f = st.Factor
	}
	return f
}
