package sim

import (
	"fmt"
	"sort"
)

// ETFStep is one segment of an execution-time factor schedule: from time At
// (in time units) onward, actual mean execution times are Factor times the
// design-time estimates.
type ETFStep struct {
	At     float64
	Factor float64
}

// ETFSchedule is a piecewise-constant execution-time factor over simulated
// time (paper §7.1: etf_ij(k) = a_ij(k)/c_ij, shared by all subtasks). The
// zero value means etf = 1 everywhere (actual times match estimates).
type ETFSchedule struct {
	steps []ETFStep
}

// ConstantETF returns a schedule with a single factor for the whole run.
func ConstantETF(factor float64) ETFSchedule {
	return ETFSchedule{steps: []ETFStep{{At: 0, Factor: factor}}}
}

// StepETF builds a schedule from explicit steps; steps are sorted by time.
// It returns an error when any factor is non-positive.
func StepETF(steps ...ETFStep) (ETFSchedule, error) {
	out := make([]ETFStep, len(steps))
	copy(out, steps)
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	for _, s := range out {
		if s.Factor <= 0 {
			return ETFSchedule{}, fmt.Errorf("sim: execution-time factor %g at t=%g must be positive", s.Factor, s.At)
		}
	}
	return ETFSchedule{steps: out}, nil
}

// At returns the factor in effect at time t. Before the first step (or with
// no steps at all) the factor is 1.
func (s ETFSchedule) At(t float64) float64 {
	f := 1.0
	for _, st := range s.steps {
		if st.At > t {
			break
		}
		f = st.Factor
	}
	return f
}
