package sim_test

import (
	"reflect"
	"testing"

	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/workload"
)

// mediumCfg is a jittered closed-plant configuration exercising every
// pooled path: preemption, chains, rate-independent randomness.
func mediumCfg(seed int64) sim.Config {
	return sim.Config{
		System:         workload.Medium(),
		SamplingPeriod: workload.SamplingPeriod,
		Periods:        30,
		Jitter:         workload.MediumJitter,
		Seed:           seed,
	}
}

// TestResetReproducesFreshTrace is the Reset contract: a reused simulator
// must reproduce a fresh simulator's trace exactly — including after an
// intermediate run with a different seed, a different workload shape, and
// shedding, which leaves the pools and buffers maximally perturbed.
func TestResetReproducesFreshTrace(t *testing.T) {
	cfg := mediumCfg(42)
	fresh, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Run()
	if err != nil {
		t.Fatal(err)
	}

	reused, err := sim.New(mediumCfg(7)) // different seed first
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reused.Run(); err != nil {
		t.Fatal(err)
	}
	// Perturb with a different shape (SIMPLE: fewer processors and tasks)
	// plus overload shedding.
	simpleCfg := sim.Config{
		System:         workload.Simple(),
		SamplingPeriod: workload.SamplingPeriod,
		Periods:        40,
		ETF:            sim.ConstantETF(9),
		MaxBacklog:     1,
		Seed:           3,
	}
	if err := reused.Reset(simpleCfg); err != nil {
		t.Fatal(err)
	}
	if _, err := reused.Run(); err != nil {
		t.Fatal(err)
	}

	if err := reused.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	got, err := reused.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Utilization, got.Utilization) {
		t.Error("reused simulator's utilization trace differs from fresh simulator's")
	}
	if !reflect.DeepEqual(want.Rates, got.Rates) {
		t.Error("reused simulator's rate trace differs from fresh simulator's")
	}
	if !reflect.DeepEqual(want.Periods, got.Periods) {
		t.Error("reused simulator's period stats differ from fresh simulator's")
	}
	if want.Stats != got.Stats {
		t.Errorf("reused stats %+v != fresh stats %+v", got.Stats, want.Stats)
	}
}

// TestResetRejectsInvalidConfig ensures Reset validates like New and the
// simulator keeps working after a rejected Reset.
func TestResetRejectsInvalidConfig(t *testing.T) {
	s, err := sim.New(mediumCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Reset(sim.Config{}); err == nil {
		t.Fatal("Reset accepted an invalid config")
	}
	if err := s.Reset(mediumCfg(1)); err != nil {
		t.Fatalf("Reset after rejected config: %v", err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestSteadyStateEventLoopAllocFree is the pinned allocation budget of the
// tentpole: once the pools are warm, a full Reset+Run cycle — releases,
// preemptions, completions, sampling — must not allocate at all. This
// mirrors the MPC steady-state budget test from the controller hot path.
func TestSteadyStateEventLoopAllocFree(t *testing.T) {
	cfg := mediumCfg(5)
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil { // warm the pools and buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if err := s.Reset(cfg); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Reset+Run allocates %.1f objects/op, want 0", allocs)
	}
}

// TestETFDuplicateStepsRejected covers the Config.validate guard: schedules
// with duplicated step times are ambiguous and must be rejected both at
// construction and at run configuration.
func TestETFDuplicateStepsRejected(t *testing.T) {
	if _, err := sim.StepETF(sim.ETFStep{At: 100, Factor: 2}, sim.ETFStep{At: 100, Factor: 3}); err == nil {
		t.Error("StepETF accepted duplicate step times")
	}
	if _, err := sim.StepETF(sim.ETFStep{At: 0, Factor: 1}, sim.ETFStep{At: 50, Factor: 2}); err != nil {
		t.Errorf("StepETF rejected strictly increasing steps: %v", err)
	}
}
