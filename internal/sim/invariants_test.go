package sim_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/task"
	"github.com/rtsyslab/eucon/internal/workload"
)

func oneTaskSystemX(c, rate float64) *task.System {
	return &task.System{
		Name:       "one",
		Processors: 1,
		Tasks: []task.Task{
			{
				Name:        "T1",
				Subtasks:    []task.Subtask{{Processor: 0, EstimatedCost: c}},
				RateMin:     rate / 10,
				RateMax:     rate * 10,
				InitialRate: rate,
			},
		},
	}
}

func chainSystemX(c1, c2, rate float64) *task.System {
	return &task.System{
		Name:       "chain",
		Processors: 2,
		Tasks: []task.Task{
			{
				Name: "T1",
				Subtasks: []task.Subtask{
					{Processor: 0, EstimatedCost: c1},
					{Processor: 1, EstimatedCost: c2},
				},
				RateMin:     rate / 10,
				RateMax:     rate * 10,
				InitialRate: rate,
			},
		},
	}
}

func mustRunX(t *testing.T, cfg sim.Config) *sim.Trace {
	t.Helper()
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestSimulatorInvariantsOnRandomWorkloads checks conservation laws on
// randomly generated workloads:
//
//   - every utilization sample lies in [0, 1],
//   - completed never exceeds released,
//   - misses never exceed completions,
//   - per-period counters sum to the aggregates,
//   - recorded rates respect every task's bounds.
func TestSimulatorInvariantsOnRandomWorkloads(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		procs := 2 + rng.Intn(4)
		sys, err := workload.Random(workload.RandomConfig{
			Processors:     procs,
			EndToEndTasks:  procs + rng.Intn(5),
			LocalTasks:     rng.Intn(3),
			MaxChainLength: 2 + rng.Intn(2),
			MinCost:        10,
			MaxCost:        60,
		}, rng)
		if err != nil {
			return false
		}
		cfg := sim.Config{
			System:         sys,
			SamplingPeriod: 1000,
			Periods:        20,
			ETF:            sim.ConstantETF(0.25 + 2*rng.Float64()),
			Jitter:         0.3 * rng.Float64(),
			Seed:           seed,
		}
		s, err := sim.New(cfg)
		if err != nil {
			return false
		}
		tr, err := s.Run()
		if err != nil {
			return false
		}
		for _, u := range tr.Utilization {
			for _, v := range u {
				if v < 0 || v > 1 {
					return false
				}
			}
		}
		if tr.Stats.CompletedJobs > tr.Stats.ReleasedJobs {
			return false
		}
		if tr.Stats.SubtaskDeadlineMisses > tr.Stats.CompletedJobs {
			return false
		}
		if tr.Stats.EndToEndDeadlineMisses > tr.Stats.EndToEndCompletions {
			return false
		}
		var rel, comp int
		for _, ps := range tr.Periods {
			rel += ps.Released
			comp += ps.Completed
		}
		if rel != tr.Stats.ReleasedJobs || comp != tr.Stats.CompletedJobs {
			return false
		}
		rmin, rmax := sys.RateBounds()
		for _, r := range tr.Rates {
			for i := range r {
				if r[i] < rmin[i]-1e-12 || r[i] > rmax[i]+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestBusyTimeMatchesCompletedWork cross-checks the utilization monitor
// against job accounting: with deterministic execution times and no
// overload, total busy time ≈ cost × completions (small boundary effects
// from jobs spanning the final window).
func TestBusyTimeMatchesCompletedWork(t *testing.T) {
	const (
		cost    = 10.0
		rate    = 0.02
		periods = 50
		ts      = 1000.0
	)
	tr := mustRunX(t, sim.Config{System: oneTaskSystemX(cost, rate), SamplingPeriod: ts, Periods: periods})
	var busy float64
	for _, u := range tr.Utilization {
		busy += u[0] * ts
	}
	workDone := cost * float64(tr.Stats.CompletedJobs)
	if diff := busy - workDone; diff < -cost || diff > cost {
		t.Fatalf("busy time %v vs completed work %v: differ by more than one job", busy, workDone)
	}
}

// TestReleaseGuardMinimumSeparation verifies the release-guard property
// directly: with the second stage much faster than its period would allow
// (predecessor finishes instantly), successor completions are still spaced
// at least one period apart — i.e., the successor count per window never
// exceeds the task's rate.
func TestReleaseGuardMinimumSeparation(t *testing.T) {
	sys := chainSystemX(1, 1, 0.01) // period 100, tiny costs
	tr := mustRunX(t, sim.Config{System: sys, SamplingPeriod: 1000, Periods: 20})
	// Each window can complete at most ⌈Ts·r⌉ + 1 end-to-end instances.
	for k, ps := range tr.Periods {
		if ps.EndToEndCompletions > 11 {
			t.Fatalf("period %d: %d end-to-end completions exceed rate-limited maximum", k, ps.EndToEndCompletions)
		}
	}
}

// TestDeterministicTraceAcrossControllers ensures FixedRates and nil
// controller produce identical plants (the controller hook itself must not
// perturb simulation state).
func TestDeterministicTraceAcrossControllers(t *testing.T) {
	base := sim.Config{System: workload.Simple(), SamplingPeriod: 1000, Periods: 15, Seed: 3}
	trNil := mustRunX(t, base)
	withFixed := base
	withFixed.Controller = sim.FixedRates{}
	trFixed := mustRunX(t, withFixed)
	for k := range trNil.Utilization {
		for p := range trNil.Utilization[k] {
			if trNil.Utilization[k][p] != trFixed.Utilization[k][p] {
				t.Fatalf("period %d P%d: nil controller %v != FixedRates %v",
					k, p+1, trNil.Utilization[k][p], trFixed.Utilization[k][p])
			}
		}
	}
}
