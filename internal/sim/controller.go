package sim

// Controller is the unified rate-controller interface: everything the
// simulator and the experiment harnesses need from a controller, with no
// per-type wiring. Implementations include the EUCON MPC controller
// (package core, iterative or explicit), the DEUCON decentralized
// extension, and the OPEN, PID, and FixedRates baselines.
//
// Optional capabilities are separate interfaces the harnesses probe for:
// DegradationReporter, ContainmentReporter, and ExplicitReporter.
type Controller interface {
	// Name identifies the controller in traces.
	Name() string
	// Step returns the rates for sampling period k+1 given the utilization
	// vector u(k) measured over period k and the currently applied rates.
	// Implementations must return a slice of the same length as rates and
	// must respect each task's rate bounds.
	Step(k int, u, rates []float64) ([]float64, error)
	// Reset restores post-construction state so one controller can be
	// reused across replications; a Reset controller must drive a run
	// bit-identically to a freshly built one.
	Reset()
	// SetPoints returns the utilization set points the controller steers
	// toward (a copy, one per processor), or nil for controllers with no
	// set-point notion (open-loop baselines).
	SetPoints() []float64
}

// RateController is the pre-interface name of Controller.
//
// Deprecated: use Controller.
type RateController = Controller

// DegradationReporter is an optional interface a Controller can
// implement to expose which graceful-degradation policy fired during its
// most recent Step call. The simulator records the report in the trace's
// PeriodStats (HeldSamples, ControlSkipped), so experiments can see when
// and how the controller degraded under feedback faults.
type DegradationReporter interface {
	// LastDegradation reports on the most recent Step call: how many
	// processor samples were substituted through hold-last-sample, and
	// whether the controller skipped actuation entirely because every
	// usable sample was staler than its bound.
	LastDegradation() (heldSamples int, controlSkipped bool)
}

// ContainmentReporter is an optional interface a Controller can
// implement to expose its numerical-failure containment counters (the MPC
// degradation ladder of internal/mpc). cmd/euconsim and the chaos harness
// read it after a run to report how often — and how deeply — the
// controller had to degrade to keep the loop alive.
type ContainmentReporter interface {
	// ContainmentCounts reports how many control steps since construction
	// or Reset were resolved below the nominal solve paths: best-iterate
	// acceptances, Tikhonov-regularized re-solves, and held periods.
	ContainmentCounts() (bestIterate, regularized, held int)
}

// ExplicitReporter is an optional interface a Controller can implement to
// expose explicit-MPC fast-path accounting: how many control steps were
// resolved by the offline-compiled piecewise-affine law versus fell back
// to the iterative solver.
type ExplicitReporter interface {
	// ExplicitCounts reports fast-path hits and fallback misses since
	// construction or Reset. Both are zero when no explicit law is in use.
	ExplicitCounts() (hits, misses int)
}

// FixedRates is a Controller that never changes rates (pure open loop
// with whatever rates the tasks started with).
type FixedRates struct{}

var _ Controller = FixedRates{}

// Name implements Controller.
func (FixedRates) Name() string { return "FIXED" }

// Step implements Controller by echoing the current rates.
func (FixedRates) Step(_ int, _, rates []float64) ([]float64, error) {
	out := make([]float64, len(rates))
	copy(out, rates)
	return out, nil
}

// Reset implements Controller; FixedRates carries no state.
func (FixedRates) Reset() {}

// SetPoints implements Controller; FixedRates steers toward nothing.
func (FixedRates) SetPoints() []float64 { return nil }
