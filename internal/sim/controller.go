package sim

// RateController decides the task rates applied in the next sampling
// period. Implementations include the EUCON MPC controller (package core)
// and the OPEN open-loop baseline (package baseline).
type RateController interface {
	// Name identifies the controller in traces.
	Name() string
	// Rates returns the rates for sampling period k+1 given the utilization
	// vector u(k) measured over period k and the currently applied rates.
	// Implementations must return a slice of the same length as rates and
	// must respect each task's rate bounds.
	Rates(k int, u, rates []float64) ([]float64, error)
}

// DegradationReporter is an optional interface a RateController can
// implement to expose which graceful-degradation policy fired during its
// most recent Rates call. The simulator records the report in the trace's
// PeriodStats (HeldSamples, ControlSkipped), so experiments can see when
// and how the controller degraded under feedback faults.
type DegradationReporter interface {
	// LastDegradation reports on the most recent Rates call: how many
	// processor samples were substituted through hold-last-sample, and
	// whether the controller skipped actuation entirely because every
	// usable sample was staler than its bound.
	LastDegradation() (heldSamples int, controlSkipped bool)
}

// ContainmentReporter is an optional interface a RateController can
// implement to expose its numerical-failure containment counters (the MPC
// degradation ladder of internal/mpc). cmd/euconsim and the chaos harness
// read it after a run to report how often — and how deeply — the
// controller had to degrade to keep the loop alive.
type ContainmentReporter interface {
	// ContainmentCounts reports how many control steps since construction
	// or Reset were resolved below the nominal solve paths: best-iterate
	// acceptances, Tikhonov-regularized re-solves, and held periods.
	ContainmentCounts() (bestIterate, regularized, held int)
}

// FixedRates is a RateController that never changes rates (pure open loop
// with whatever rates the tasks started with).
type FixedRates struct{}

var _ RateController = FixedRates{}

// Name implements RateController.
func (FixedRates) Name() string { return "FIXED" }

// Rates implements RateController by echoing the current rates.
func (FixedRates) Rates(_ int, _, rates []float64) ([]float64, error) {
	out := make([]float64, len(rates))
	copy(out, rates)
	return out, nil
}
