package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/rtsyslab/eucon/internal/mat"
	"github.com/rtsyslab/eucon/internal/qp"
	"github.com/rtsyslab/eucon/internal/task"
)

func TestSimpleMatchesTable1(t *testing.T) {
	sys := Simple()
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	if sys.Processors != 2 || len(sys.Tasks) != 3 || sys.TotalSubtasks() != 4 {
		t.Fatalf("SIMPLE shape: %d procs, %d tasks, %d subtasks", sys.Processors, len(sys.Tasks), sys.TotalSubtasks())
	}
	f := sys.AllocationMatrix()
	want := mat.MustFromRows([][]float64{{35, 35, 0}, {0, 35, 45}})
	if !f.Equal(want, 0) {
		t.Fatalf("F = %v, want %v (Table 1)", f, want)
	}
	// Initial periods 60, 90, 100.
	r := sys.InitialRates()
	for i, p := range []float64{60, 90, 100} {
		if math.Abs(1/r[i]-p) > 1e-9 {
			t.Errorf("initial period of T%d = %v, want %v", i+1, 1/r[i], p)
		}
	}
	// Set points: 2 subtasks per processor → 0.828 (paper §7.2).
	for p, b := range sys.DefaultSetPoints() {
		if math.Abs(b-0.8284) > 5e-4 {
			t.Errorf("set point P%d = %v, want 0.828", p+1, b)
		}
	}
}

func TestMediumShape(t *testing.T) {
	sys := Medium()
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	if sys.Processors != 4 {
		t.Fatalf("MEDIUM has %d processors, want 4", sys.Processors)
	}
	if len(sys.Tasks) != 12 {
		t.Fatalf("MEDIUM has %d tasks, want 12", len(sys.Tasks))
	}
	if sys.TotalSubtasks() != 25 {
		t.Fatalf("MEDIUM has %d subtasks, want 25", sys.TotalSubtasks())
	}
	// 8 end-to-end + 4 local tasks.
	endToEnd, local := 0, 0
	for i := range sys.Tasks {
		if len(sys.Tasks[i].Subtasks) > 1 {
			endToEnd++
		} else {
			local++
		}
	}
	if endToEnd != 8 || local != 4 {
		t.Fatalf("MEDIUM has %d end-to-end and %d local tasks, want 8 and 4", endToEnd, local)
	}
	// P1 hosts 7 subtasks → B₁ = 0.729 as the paper reports.
	if got := sys.SubtaskCount(0); got != 7 {
		t.Fatalf("P1 hosts %d subtasks, want 7", got)
	}
	if b := sys.DefaultSetPoints()[0]; math.Abs(b-0.729) > 1e-3 {
		t.Fatalf("B₁ = %v, want 0.729", b)
	}
}

func TestMediumSetPointsReachable(t *testing.T) {
	// The paper's feasibility assumption: rates within bounds exist with
	// F·r = B exactly. Verify by constrained least squares.
	sys := Medium()
	f := sys.AllocationMatrix()
	b := sys.DefaultSetPoints()
	rmin, rmax := sys.RateBounds()
	m := len(sys.Tasks)
	a := mat.New(2*m, m)
	rhs := make([]float64, 2*m)
	for i := 0; i < m; i++ {
		a.Set(i, i, 1)
		rhs[i] = rmax[i]
		a.Set(m+i, i, -1)
		rhs[m+i] = -rmin[i]
	}
	res, err := qp.SolveLSI(f, b, a, rhs, sys.InitialRates(), qp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective > 1e-6 {
		t.Fatalf("residual ‖F·r − B‖² = %g: set points unreachable within rate bounds", res.Objective)
	}
	// Reachable even at etf = 6 (rates at R_min must leave utilization
	// below B so the sweep in Figure 5 has a feasible equilibrium).
	uMin := f.MulVec(rmin)
	for p, v := range uMin {
		if 6*v >= b[p] {
			t.Errorf("P%d: 6×u(Rmin) = %v ≥ B = %v: etf sweep infeasible", p+1, 6*v, b[p])
		}
	}
	// And at etf = 0.1 the set point must still be reachable below R_max
	// (the paper reports EUCON holding 0.729 at etf = 0.1).
	uMax := f.MulVec(rmax)
	for p, v := range uMax {
		if 0.1*v <= b[p] {
			t.Errorf("P%d: 0.1×u(Rmax) = %v ≤ B = %v: set point unreachable at etf 0.1", p+1, 0.1*v, b[p])
		}
	}
}

func TestMediumConsecutiveStagesOnDistinctProcessors(t *testing.T) {
	sys := Medium()
	for i := range sys.Tasks {
		subs := sys.Tasks[i].Subtasks
		for j := 1; j < len(subs); j++ {
			if subs[j].Processor == subs[j-1].Processor {
				t.Errorf("task %s stages %d-%d share processor %d", sys.Tasks[i].Name, j-1, j, subs[j].Processor)
			}
		}
	}
}

func TestControllerConfigs(t *testing.T) {
	s := SimpleController()
	if s.PredictionHorizon != 2 || s.ControlHorizon != 1 || s.TrefOverTs != 4 {
		t.Fatalf("SimpleController = %+v, want Table 2 values P=2 M=1 Tref/Ts=4", s)
	}
	m := MediumController()
	if m.PredictionHorizon != 4 || m.ControlHorizon != 2 || m.TrefOverTs != 4 {
		t.Fatalf("MediumController = %+v, want Table 2 values P=4 M=2 Tref/Ts=4", m)
	}
	if SamplingPeriod != 1000 {
		t.Fatalf("SamplingPeriod = %v, want 1000 (Table 2)", SamplingPeriod)
	}
}

func TestRandomGeneratesValidSystems(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		procs := 2 + rng.Intn(6)
		cfg := RandomConfig{
			Processors:     procs,
			EndToEndTasks:  procs + rng.Intn(10), // ensures 2·E + L ≥ Processors
			LocalTasks:     rng.Intn(5),
			MaxChainLength: 2 + rng.Intn(4),
			MinCost:        10,
			MaxCost:        50,
		}
		sys, err := Random(cfg, rng)
		if err != nil {
			return false
		}
		if sys.Validate() != nil {
			return false
		}
		// Chains never place consecutive stages on one processor.
		for i := range sys.Tasks {
			subs := sys.Tasks[i].Subtasks
			for j := 1; j < len(subs); j++ {
				if subs[j].Processor == subs[j-1].Processor {
					return false
				}
			}
		}
		return len(sys.Tasks) == cfg.EndToEndTasks+cfg.LocalTasks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []RandomConfig{
		{Processors: 0, EndToEndTasks: 1, MaxChainLength: 2, MinCost: 1, MaxCost: 2},
		{Processors: 2, MaxChainLength: 2, MinCost: 1, MaxCost: 2},
		{Processors: 1, EndToEndTasks: 1, MaxChainLength: 2, MinCost: 1, MaxCost: 2},
		{Processors: 2, EndToEndTasks: 1, MaxChainLength: 1, MinCost: 1, MaxCost: 2},
		{Processors: 2, EndToEndTasks: 1, MaxChainLength: 2, MinCost: 0, MaxCost: 2},
		{Processors: 2, EndToEndTasks: 1, MaxChainLength: 2, MinCost: 3, MaxCost: 2},
		{Processors: 8, EndToEndTasks: 2, LocalTasks: 1, MaxChainLength: 2, MinCost: 1, MaxCost: 2}, // cannot cover
	}
	for i, cfg := range bad {
		if _, err := Random(cfg, rng); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	cfg := RandomConfig{Processors: 3, EndToEndTasks: 4, LocalTasks: 2, MaxChainLength: 3, MinCost: 10, MaxCost: 40}
	s1, err := Random(cfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Random(cfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if !s1.AllocationMatrix().Equal(s2.AllocationMatrix(), 0) {
		t.Fatal("same seed produced different systems")
	}
}

var _ = []task.Task{} // keep the task import for helper literals above
