package workload

import (
	"testing"

	"github.com/rtsyslab/eucon/internal/core"
)

func TestLargeDeterministic(t *testing.T) {
	a, err := Large(128)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Large(128)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tasks) != len(b.Tasks) {
		t.Fatalf("task counts differ: %d vs %d", len(a.Tasks), len(b.Tasks))
	}
	for i := range a.Tasks {
		ta, tb := a.Tasks[i], b.Tasks[i]
		if ta.Name != tb.Name || ta.RateMin != tb.RateMin || ta.RateMax != tb.RateMax || ta.InitialRate != tb.InitialRate {
			t.Fatalf("task %d differs between builds: %+v vs %+v", i, ta, tb)
		}
		if len(ta.Subtasks) != len(tb.Subtasks) {
			t.Fatalf("task %d subtask counts differ", i)
		}
		for j := range ta.Subtasks {
			if ta.Subtasks[j] != tb.Subtasks[j] {
				t.Fatalf("task %d subtask %d differs: %+v vs %+v", i, j, ta.Subtasks[j], tb.Subtasks[j])
			}
		}
	}
}

func TestLargeShape(t *testing.T) {
	for _, tc := range []struct {
		procs, wantTasks int
	}{
		{128, 640},
		{1024, 5120},
	} {
		sys, err := Large(tc.procs)
		if err != nil {
			t.Fatal(err)
		}
		if sys.Processors != tc.procs {
			t.Errorf("LARGE-%d: processors = %d", tc.procs, sys.Processors)
		}
		if len(sys.Tasks) != tc.wantTasks {
			t.Errorf("LARGE-%d: tasks = %d, want %d", tc.procs, len(sys.Tasks), tc.wantTasks)
		}
	}
}

// TestLargeBoundedFanOut verifies the structural promise of the LARGE
// workloads: every chain spans at most largeWindow adjacent processors, so
// each processor couples only to a bounded neighborhood regardless of the
// system size.
func TestLargeBoundedFanOut(t *testing.T) {
	sys := Large128()
	for i, tk := range sys.Tasks {
		lo, hi := sys.Processors, -1
		for _, st := range tk.Subtasks {
			if st.Processor < lo {
				lo = st.Processor
			}
			if st.Processor > hi {
				hi = st.Processor
			}
		}
		if hi-lo > largeWindow {
			t.Errorf("task %d (%s) spans processors [%d,%d], want span ≤ %d", i, tk.Name, lo, hi, largeWindow)
		}
	}
}

func TestLargeRejectsTinySystems(t *testing.T) {
	if _, err := Large(2*largeWindow - 1); err == nil {
		t.Error("undersized LARGE accepted")
	}
}

// TestLargeHessianIsBanded checks the tentpole property end to end: the
// centralized controller built on LARGE-128 must detect the block-banded
// structure of its Hessian and route solves through the banded backend.
func TestLargeHessianIsBanded(t *testing.T) {
	sys := Large128()
	ctrl, err := core.New(sys, nil, LargeController())
	if err != nil {
		t.Fatal(err)
	}
	banded, bw := ctrl.Structured()
	if !banded {
		t.Fatal("LARGE-128 centralized Hessian factored dense, want banded")
	}
	// The control-horizon-1 Hessian is m×m with m = tasks; the permuted
	// bandwidth must stay far below the dense threshold bw·3 < n.
	if bw <= 0 || bw*3 >= len(sys.Tasks) {
		t.Errorf("banded factorization bandwidth = %d of n = %d, expected structure-exploiting bandwidth", bw, len(sys.Tasks))
	}
}
