// LARGE workloads: the scaling configurations this reproduction adds
// beyond the paper's SIMPLE and MEDIUM. Hundreds to a thousand processors
// arranged in a line, with every end-to-end chain confined to a window of
// largeWindow adjacent processors — bounded chain fan-out, so each
// processor couples only to its ≤ 2·largeWindow nearest neighbors and the
// subtask-allocation matrix F (and with it the MPC Hessian) is
// block-banded. That structure is what internal/mat's fill-reducing
// ordering and banded Cholesky exploit, and what keeps DEUCON's local
// problems O(1) in the system size.
package workload

import (
	"fmt"
	"math/rand"

	"github.com/rtsyslab/eucon/internal/core"
	"github.com/rtsyslab/eucon/internal/task"
)

const (
	// largeWindow is the processor span of a LARGE end-to-end chain: every
	// chain's subtasks stay within a window of this many adjacent
	// processors, bounding fan-out and bandwidth however large the system
	// grows.
	largeWindow = 3
	// largeChainsPerProc is how many end-to-end chains start at each
	// processor; with one local task per processor, LARGE-n carries
	// (largeChainsPerProc+1)·n tasks.
	largeChainsPerProc = 4
	// largeSeed makes the generated parameters a pure function of the
	// processor count: LARGE-128 and LARGE-1024 are named, reproducible
	// workloads, not random draws.
	largeSeed = 20040324 // ICDCS 2004, the paper's venue
)

// Large128 returns the LARGE-128 workload: 128 processors, 640 tasks (512
// end-to-end chains + 128 local tasks), deterministic.
func Large128() *task.System { return mustLarge(128) }

// Large1024 returns the LARGE-1024 workload: 1024 processors, 5120 tasks
// (4096 end-to-end chains + 1024 local tasks), deterministic.
func Large1024() *task.System { return mustLarge(1024) }

// LargeController returns the controller tuning for the LARGE workloads:
// the SIMPLE horizons (P = 2, M = 1, Tref/Ts = 4). Short horizons keep the
// per-period problem linear in the task count, and the light EWMA filter
// counters window-quantization noise as on MEDIUM.
func LargeController() core.Config {
	return core.Config{PredictionHorizon: 2, ControlHorizon: 1, TrefOverTs: 4, MeasurementFilter: 0.3}
}

func mustLarge(procs int) *task.System {
	sys, err := Large(procs)
	if err != nil {
		panic(err) // unreachable for the named processor counts
	}
	return sys
}

// Large generates the deterministic LARGE workload for a processor count:
// a line of processors where each processor leads largeChainsPerProc
// end-to-end chains confined to the largeWindow processors ahead of it
// (chains near the end of the line run backwards instead of wrapping, so
// the coupling graph is a path, not a cycle, and F stays banded in the
// natural order) plus one local task. Costs and rate ranges follow the
// random-workload conventions; everything is a pure function of procs.
func Large(procs int) (*task.System, error) {
	if procs < 2*largeWindow {
		return nil, fmt.Errorf("workload: LARGE needs at least %d processors, got %d", 2*largeWindow, procs)
	}
	rng := rand.New(rand.NewSource(largeSeed + int64(procs)))
	cost := func() float64 { return 20 + rng.Float64()*30 }
	sys := &task.System{Name: fmt.Sprintf("LARGE-%d", procs), Processors: procs}
	for p := 0; p < procs; p++ {
		// Chains from p walk toward higher processor indices; near the end
		// of the line they walk backwards. Either way every hop moves to an
		// adjacent distinct processor inside the window.
		dir := 1
		if p+largeWindow >= procs {
			dir = -1
		}
		for c := 0; c < largeChainsPerProc; c++ {
			length := 2 + rng.Intn(largeWindow) // 2..largeWindow+1 subtasks ⇒ span ≤ largeWindow hops
			subs := make([]task.Subtask, 0, length)
			for j := 0; j < length; j++ {
				subs = append(subs, task.Subtask{Processor: p + dir*j, EstimatedCost: cost()})
			}
			sys.Tasks = append(sys.Tasks, newRandomTask(fmt.Sprintf("E%d.%d", p, c+1), subs, rng))
		}
		subs := []task.Subtask{{Processor: p, EstimatedCost: cost()}}
		sys.Tasks = append(sys.Tasks, newRandomTask(fmt.Sprintf("L%d", p), subs, rng))
	}
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated LARGE-%d invalid: %w", procs, err)
	}
	return sys, nil
}
