// Package workload provides the two evaluation configurations of the EUCON
// paper — SIMPLE (Table 1) and MEDIUM (§7.1) — plus a random workload
// generator for stress and property testing.
//
// SIMPLE is fully specified by the paper. MEDIUM is described only by its
// shape (12 tasks with 25 subtasks on 4 processors; 8 end-to-end tasks and
// 4 local tasks; uniform-random execution times; B₁ = 0.729, implying 7
// subtasks on P1); the concrete parameters here were synthesized to match
// every published property, with rate ranges wide enough that the
// utilization set points are reachable for all evaluated execution-time
// factors. See DESIGN.md ("Substitutions").
package workload

import (
	"fmt"
	"math/rand"

	"github.com/rtsyslab/eucon/internal/core"
	"github.com/rtsyslab/eucon/internal/task"
)

// SamplingPeriod is Ts from Table 2: 1000 time units for both
// configurations.
const SamplingPeriod = 1000.0

// MediumJitter is the execution-time jitter used for MEDIUM runs: each
// job's execution time is drawn uniformly from ±15% around its mean,
// realizing the paper's "uniform random distribution" of execution times.
const MediumJitter = 0.15

// Simple returns the SIMPLE configuration (paper Table 1): 3 tasks, 4
// subtasks, 2 processors. Rate parameters are given as periods in the
// paper; here they are converted to rates.
func Simple() *task.System {
	return &task.System{
		Name:       "SIMPLE",
		Processors: 2,
		Tasks: []task.Task{
			{
				Name:        "T1",
				Subtasks:    []task.Subtask{{Processor: 0, EstimatedCost: 35}},
				RateMin:     1.0 / 700,
				RateMax:     1.0 / 35,
				InitialRate: 1.0 / 60,
			},
			{
				Name: "T2",
				Subtasks: []task.Subtask{
					{Processor: 0, EstimatedCost: 35},
					{Processor: 1, EstimatedCost: 35},
				},
				RateMin:     1.0 / 700,
				RateMax:     1.0 / 35,
				InitialRate: 1.0 / 90,
			},
			{
				Name:        "T3",
				Subtasks:    []task.Subtask{{Processor: 1, EstimatedCost: 45}},
				RateMin:     1.0 / 900,
				RateMax:     1.0 / 45,
				InitialRate: 1.0 / 100,
			},
		},
	}
}

// Medium returns the MEDIUM configuration: 12 tasks (25 subtasks) on 4
// processors — 8 end-to-end tasks spanning multiple processors and 4 local
// tasks (T9–T12), one per processor. P1 hosts 7 subtasks so its
// Liu–Layland set point is 0.729 as the paper reports.
func Medium() *task.System {
	// Rate ranges bracket the set points for every evaluated execution-time
	// factor: at etf = 0.1 the set points are reachable below R_max
	// (period 25), and at etf = 6 the R_min rates (period 4000) keep every
	// processor below its set point.
	chain := func(name string, stages []task.Subtask, initPeriod float64) task.Task {
		return task.Task{
			Name:        name,
			Subtasks:    stages,
			RateMin:     1.0 / 4000,
			RateMax:     1.0 / 25,
			InitialRate: 1.0 / initPeriod,
		}
	}
	st := func(proc int, cost float64) task.Subtask {
		return task.Subtask{Processor: proc, EstimatedCost: cost}
	}
	return &task.System{
		Name:       "MEDIUM",
		Processors: 4,
		Tasks: []task.Task{
			chain("T1", []task.Subtask{st(0, 30), st(1, 25), st(2, 20)}, 500),
			chain("T2", []task.Subtask{st(1, 40), st(3, 30)}, 520),
			chain("T3", []task.Subtask{st(2, 25), st(3, 35), st(0, 20)}, 540),
			chain("T4", []task.Subtask{st(3, 30), st(1, 25), st(0, 35)}, 560),
			chain("T5", []task.Subtask{st(0, 45), st(2, 30)}, 480),
			chain("T6", []task.Subtask{st(1, 25), st(2, 35), st(3, 30)}, 460),
			chain("T7", []task.Subtask{st(3, 50), st(0, 25)}, 440),
			chain("T8", []task.Subtask{st(2, 30), st(0, 20), st(1, 35)}, 580),
			chain("T9", []task.Subtask{st(0, 40)}, 420),
			chain("T10", []task.Subtask{st(1, 45)}, 430),
			chain("T11", []task.Subtask{st(2, 50)}, 450),
			chain("T12", []task.Subtask{st(3, 35)}, 470),
		},
	}
}

// SimpleController returns the SIMPLE controller parameters from Table 2:
// P = 2, M = 1, Tref/Ts = 4.
func SimpleController() core.Config {
	return core.Config{PredictionHorizon: 2, ControlHorizon: 1, TrefOverTs: 4}
}

// MediumController returns the MEDIUM controller parameters from Table 2:
// P = 4, M = 2, Tref/Ts = 4 (larger horizons to guarantee stability in the
// larger system). A light EWMA measurement filter (α = 0.3) counters the
// window-quantization noise of MEDIUM's many short-period subtasks; see
// core.Config.MeasurementFilter.
func MediumController() core.Config {
	return core.Config{PredictionHorizon: 4, ControlHorizon: 2, TrefOverTs: 4, MeasurementFilter: 0.3}
}

// RandomConfig parameterizes the random workload generator.
type RandomConfig struct {
	// Processors is the processor count (>= 1).
	Processors int
	// EndToEndTasks is the number of multi-subtask tasks.
	EndToEndTasks int
	// LocalTasks is the number of single-subtask tasks.
	LocalTasks int
	// MaxChainLength caps the subtasks per end-to-end task (>= 2).
	MaxChainLength int
	// MinCost and MaxCost bound the estimated execution times.
	MinCost, MaxCost float64
}

func (c RandomConfig) validate() error {
	if c.Processors < 1 {
		return fmt.Errorf("workload: %d processors", c.Processors)
	}
	if c.EndToEndTasks+c.LocalTasks < 1 {
		return fmt.Errorf("workload: no tasks requested")
	}
	if c.EndToEndTasks > 0 && (c.MaxChainLength < 2 || c.Processors < 2) {
		return fmt.Errorf("workload: end-to-end tasks need MaxChainLength >= 2 and >= 2 processors")
	}
	if c.MinCost <= 0 || c.MaxCost < c.MinCost {
		return fmt.Errorf("workload: bad cost range [%g, %g]", c.MinCost, c.MaxCost)
	}
	// Each end-to-end task contributes at least 2 subtasks; coverage of every
	// processor requires at least Processors subtasks in total.
	if 2*c.EndToEndTasks+c.LocalTasks < c.Processors {
		return fmt.Errorf("workload: %d end-to-end + %d local tasks cannot cover %d processors", c.EndToEndTasks, c.LocalTasks, c.Processors)
	}
	return nil
}

// Random generates a pseudo-random, always-valid workload: every processor
// hosts at least one subtask, chains never place consecutive subtasks on
// the same processor, and rate ranges are wide enough for meaningful
// control. Generation is deterministic in rng.
func Random(cfg RandomConfig, rng *rand.Rand) (*task.System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cost := func() float64 { return cfg.MinCost + rng.Float64()*(cfg.MaxCost-cfg.MinCost) }
	sys := &task.System{Name: "RANDOM", Processors: cfg.Processors}
	// Greedy coverage: prefer processors that host nothing yet, so every
	// processor ends up with at least one subtask (guaranteed by the
	// 2·E + L ≥ Processors precondition).
	uncovered := make(map[int]bool, cfg.Processors)
	for p := 0; p < cfg.Processors; p++ {
		uncovered[p] = true
	}
	pick := func(exclude int) int {
		for p := 0; p < cfg.Processors; p++ {
			if uncovered[p] && p != exclude {
				delete(uncovered, p)
				return p
			}
		}
		p := rng.Intn(cfg.Processors)
		for p == exclude {
			p = rng.Intn(cfg.Processors)
		}
		delete(uncovered, p)
		return p
	}
	for i := 0; i < cfg.EndToEndTasks; i++ {
		length := 2
		if cfg.MaxChainLength > 2 {
			length += rng.Intn(cfg.MaxChainLength - 1)
		}
		subs := make([]task.Subtask, 0, length)
		proc := pick(-1)
		for j := 0; j < length; j++ {
			subs = append(subs, task.Subtask{Processor: proc, EstimatedCost: cost()})
			if j < length-1 {
				proc = pick(proc) // next stage on a different processor
			}
		}
		sys.Tasks = append(sys.Tasks, newRandomTask(fmt.Sprintf("E%d", i+1), subs, rng))
	}
	for i := 0; i < cfg.LocalTasks; i++ {
		subs := []task.Subtask{{Processor: pick(-1), EstimatedCost: cost()}}
		sys.Tasks = append(sys.Tasks, newRandomTask(fmt.Sprintf("L%d", i+1), subs, rng))
	}
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated system invalid: %w", err)
	}
	return sys, nil
}

func newRandomTask(name string, subs []task.Subtask, rng *rand.Rand) task.Task {
	// Scale periods off the chain's total cost so initial utilization is
	// moderate and the rate range brackets the set points comfortably.
	var total float64
	for _, s := range subs {
		total += s.EstimatedCost
	}
	base := total * (4 + 4*rng.Float64()) // initial period: 4–8× total cost
	return task.Task{
		Name:        name,
		Subtasks:    subs,
		RateMin:     1 / (base * 8),
		RateMax:     1 / (total * 1.5),
		InitialRate: 1 / base,
	}
}
