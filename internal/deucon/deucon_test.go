package deucon

import (
	"math"
	"math/rand"
	"testing"

	"github.com/rtsyslab/eucon/internal/metrics"
	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/task"
	"github.com/rtsyslab/eucon/internal/workload"
)

func runDeucon(t *testing.T, sys *task.System, etf float64, periods int, jitter float64) (*sim.Trace, *Controller) {
	t.Helper()
	ctrl, err := New(sys, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(sim.Config{
		System:         sys,
		SamplingPeriod: workload.SamplingPeriod,
		Periods:        periods,
		Controller:     ctrl,
		ETF:            sim.ConstantETF(etf),
		Jitter:         jitter,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return tr, ctrl
}

func TestNewValidation(t *testing.T) {
	if _, err := New(&task.System{Name: "bad", Processors: 1}, nil, Config{}); err == nil {
		t.Error("invalid system accepted")
	}
	if _, err := New(workload.Simple(), []float64{0.5}, Config{}); err == nil {
		t.Error("wrong set-point count accepted")
	}
}

func TestLeaderPartition(t *testing.T) {
	sys := workload.Medium()
	leaders := leadersOf(sys)
	total := 0
	for _, led := range leaders {
		total += len(led)
	}
	if total != len(sys.Tasks) {
		t.Fatalf("leaders cover %d tasks, want %d", total, len(sys.Tasks))
	}
	// Every led task's first subtask is on its leader.
	for p, led := range leaders {
		for _, j := range led {
			if sys.Tasks[j].Subtasks[0].Processor != p {
				t.Errorf("task %d led by P%d but starts on P%d", j, p+1, sys.Tasks[j].Subtasks[0].Processor+1)
			}
		}
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	sys := workload.Medium()
	ns := neighborsOf(sys)
	for p, neigh := range ns {
		for _, q := range neigh {
			found := false
			for _, back := range ns[q] {
				if back == p {
					found = true
				}
			}
			if !found {
				t.Errorf("neighbor relation not symmetric: %d → %d", p, q)
			}
		}
	}
}

func TestDeuconConvergesOnSimple(t *testing.T) {
	tr, ctrl := runDeucon(t, workload.Simple(), 0.5, 200, 0)
	for p := 0; p < 2; p++ {
		m := metrics.Mean(metrics.Window(metrics.Column(tr.Utilization, p), 120, 200))
		if math.Abs(m-0.828) > 0.03 {
			t.Errorf("P%d mean = %v, want ≈ 0.828 under decentralized control", p+1, m)
		}
	}
	if ctrl.Messages() == 0 {
		t.Error("no control-plane messages counted")
	}
	if ctrl.Periods() != 200 {
		t.Errorf("Periods = %d, want 200", ctrl.Periods())
	}
}

func TestDeuconConvergesOnMedium(t *testing.T) {
	sys := workload.Medium()
	tr, _ := runDeucon(t, sys, 1, 200, workload.MediumJitter)
	b := sys.DefaultSetPoints()
	for p := 0; p < 4; p++ {
		m := metrics.Mean(metrics.Window(metrics.Column(tr.Utilization, p), 120, 200))
		if math.Abs(m-b[p]) > 0.05 {
			t.Errorf("P%d mean = %v, want ≈ %v under decentralized control", p+1, m, b[p])
		}
	}
}

func TestDeuconTracksDynamicWorkload(t *testing.T) {
	sys := workload.Medium()
	ctrl, err := New(sys, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := sim.StepETF(
		sim.ETFStep{At: 0, Factor: 0.5},
		sim.ETFStep{At: 100 * workload.SamplingPeriod, Factor: 0.9},
	)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(sim.Config{
		System:         sys,
		SamplingPeriod: workload.SamplingPeriod,
		Periods:        200,
		Controller:     ctrl,
		ETF:            sched,
		Jitter:         workload.MediumJitter,
		Seed:           2,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	b := sys.DefaultSetPoints()
	for p := 0; p < 4; p++ {
		m := metrics.Mean(metrics.Window(metrics.Column(tr.Utilization, p), 160, 200))
		if math.Abs(m-b[p]) > 0.06 {
			t.Errorf("P%d post-step mean = %v, want ≈ %v", p+1, m, b[p])
		}
	}
}

func TestLocalProblemSizeBounded(t *testing.T) {
	// On a large ring-structured workload, the local problem must stay
	// bounded by the neighborhood even as the system grows — the point of
	// decentralization.
	rng := rand.New(rand.NewSource(3))
	const procs = 16
	sys := &task.System{Name: "ring", Processors: procs}
	for p := 0; p < procs; p++ {
		cost := 20 + rng.Float64()*20
		sys.Tasks = append(sys.Tasks, task.Task{
			Name: "R" + string(rune('A'+p)),
			Subtasks: []task.Subtask{
				{Processor: p, EstimatedCost: cost},
				{Processor: (p + 1) % procs, EstimatedCost: cost},
			},
			RateMin: 1.0 / 4000, RateMax: 1.0 / 50, InitialRate: 1.0 / 400,
		})
	}
	ctrl, err := New(sys, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	scopeProcs, ledTasks := ctrl.MaxLocalProblemSize()
	if scopeProcs > 3 {
		t.Errorf("max local scope = %d processors on a ring, want ≤ 3", scopeProcs)
	}
	if ledTasks != 1 {
		t.Errorf("max led tasks = %d on a ring, want 1", ledTasks)
	}
	if ctrl.LocalControllers() != procs {
		t.Errorf("local controllers = %d, want %d", ctrl.LocalControllers(), procs)
	}
}

func TestDeuconRingConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const procs = 8
	sys := &task.System{Name: "ring8", Processors: procs}
	for p := 0; p < procs; p++ {
		cost := 25 + rng.Float64()*10
		sys.Tasks = append(sys.Tasks, task.Task{
			Name: "R" + string(rune('A'+p)),
			Subtasks: []task.Subtask{
				{Processor: p, EstimatedCost: cost},
				{Processor: (p + 1) % procs, EstimatedCost: cost},
			},
			RateMin: 1.0 / 4000, RateMax: 1.0 / 50, InitialRate: 1.0 / 500,
		})
	}
	tr, _ := runDeucon(t, sys, 1, 250, 0)
	b := sys.DefaultSetPoints()
	for p := 0; p < procs; p++ {
		m := metrics.Mean(metrics.Window(metrics.Column(tr.Utilization, p), 180, 250))
		if math.Abs(m-b[p]) > 0.05 {
			t.Errorf("ring P%d mean = %v, want ≈ %v", p+1, m, b[p])
		}
	}
}

func TestRatesDimensionErrors(t *testing.T) {
	ctrl, err := New(workload.Simple(), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Step(0, []float64{0.5}, []float64{0.01, 0.01, 0.01}); err == nil {
		t.Error("short utilization accepted")
	}
	if _, err := ctrl.Step(0, []float64{0.5, 0.5}, []float64{0.01}); err == nil {
		t.Error("short rates accepted")
	}
	if ctrl.Name() != "DEUCON" {
		t.Errorf("Name = %q", ctrl.Name())
	}
}

// TestRatesParallelismDeterministic drives identical closed-loop input
// sequences through controllers at several Parallelism settings: the rate
// trajectories and message counters must be bit-identical, since the
// parallel solves merge in processor order.
func TestRatesParallelismDeterministic(t *testing.T) {
	sys := workload.Medium()
	drive := func(par int) ([][]float64, int) {
		ctrl, err := New(sys, nil, Config{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		rates := sys.InitialRates()
		var outs [][]float64
		for k := 0; k < 40; k++ {
			u := make([]float64, sys.Processors)
			for i := range u {
				u[i] = 0.3 + 0.6*rng.Float64()
			}
			next, err := ctrl.Step(k, u, rates)
			if err != nil {
				t.Fatalf("parallelism %d period %d: %v", par, k, err)
			}
			// Step's return value is controller-owned scratch; copy what we
			// keep, as the simulator does.
			outs = append(outs, append([]float64(nil), next...))
			rates = append(rates[:0:0], next...)
		}
		return outs, ctrl.Messages()
	}
	refOuts, refMsgs := drive(1)
	for _, par := range []int{2, 4, 8} {
		outs, msgs := drive(par)
		if msgs != refMsgs {
			t.Errorf("parallelism %d: messages = %d, want %d", par, msgs, refMsgs)
		}
		for k := range refOuts {
			for i := range refOuts[k] {
				if outs[k][i] != refOuts[k][i] {
					t.Fatalf("parallelism %d: rate[%d][%d] = %v, want %v (bit-exact)", par, k, i, outs[k][i], refOuts[k][i])
				}
			}
		}
	}
}
