// Package deucon implements DEUCON-style decentralized end-to-end
// utilization control — the future work the EUCON paper closes with
// ("we will develop decentralized control architecture to handle
// large-scale distributed systems"), realized by the authors in the
// follow-on DEUCON work.
//
// Instead of one centralized MIMO controller, every processor runs a local
// model-predictive controller that:
//
//   - controls only the tasks it leads (the tasks whose first subtask it
//     hosts),
//   - observes only its own utilization and its neighbors' (processors
//     that share at least one task with it), and
//   - compensates for neighbor-led tasks using the rate-change plans those
//     neighbors announced in the previous sampling period (a one-period
//     information delay — the honest price of decentralization).
//
// Each local problem is a small constrained least-squares program solved
// with the same machinery as the centralized controller, so per-processor
// work stays bounded as the system grows: the local problem size depends
// on the neighborhood, not on the whole system.
package deucon

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/rtsyslab/eucon/internal/mat"
	"github.com/rtsyslab/eucon/internal/mpc"
	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/task"
)

// Config tunes the local controllers. The zero value selects P=2, M=1,
// Tref/Ts=4 (the paper's SIMPLE tuning) for every local loop.
type Config struct {
	// PredictionHorizon is the local P; 0 selects 2.
	PredictionHorizon int
	// ControlHorizon is the local M; 0 selects 1.
	ControlHorizon int
	// TrefOverTs is the local reference time constant; 0 selects 4.
	TrefOverTs float64
	// Parallelism caps how many local MPC solves run concurrently within
	// one control period — the decentralized solves are independent, as
	// they would be on physically separate processors. 0 selects
	// GOMAXPROCS; 1 solves serially. Results are identical for every
	// setting.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.PredictionHorizon == 0 {
		c.PredictionHorizon = 2
	}
	if c.ControlHorizon == 0 {
		c.ControlHorizon = 1
	}
	if mat.IsZero(c.TrefOverTs) {
		c.TrefOverTs = 4
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// local is one processor's controller state.
type local struct {
	proc  int
	led   []int // task indices this processor leads
	scope []int // processors visible to this controller: {proc} ∪ neighbors
	ctrl  *mpc.Controller
}

// Controller is the decentralized utilization controller. It implements
// sim.Controller; internally it runs one local MPC per processor with
// the restricted information structure described in the package comment.
// It is not safe for concurrent use.
type Controller struct {
	sys       *task.System
	cfg       Config
	setPoints []float64
	locals    []*local
	f         *mat.Dense

	// announced[j] is task j's leader-announced rate change from the
	// previous period, used by other controllers to compensate.
	announced []float64
	// messages counts utilization reports + plan announcements exchanged.
	messages int
	periods  int
}

var _ sim.Controller = (*Controller)(nil)

// New builds the decentralized controller. Passing nil set points selects
// the system's default (Liu–Layland) set points.
func New(sys *task.System, setPoints []float64, cfg Config) (*Controller, error) {
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("deucon: %w", err)
	}
	if setPoints == nil {
		setPoints = sys.DefaultSetPoints()
	}
	if len(setPoints) != sys.Processors {
		return nil, fmt.Errorf("deucon: %d set points for %d processors", len(setPoints), sys.Processors)
	}
	cfg = cfg.withDefaults()

	c := &Controller{
		sys:       sys,
		cfg:       cfg,
		setPoints: mat.VecClone(setPoints),
		f:         sys.AllocationMatrix(),
		announced: make([]float64, len(sys.Tasks)),
	}
	leaders := leadersOf(sys)
	neighborSets := neighborsOf(sys)
	for p := 0; p < sys.Processors; p++ {
		led := leaders[p]
		if len(led) == 0 {
			continue // nothing to control from this processor
		}
		scope := append([]int{p}, neighborSets[p]...)
		l, err := newLocal(sys, c.f, setPoints, p, led, scope, cfg)
		if err != nil {
			return nil, err
		}
		c.locals = append(c.locals, l)
	}
	if len(c.locals) == 0 {
		return nil, fmt.Errorf("deucon: no processor leads any task")
	}
	return c, nil
}

// leadersOf maps each processor to the tasks whose first subtask it hosts.
func leadersOf(sys *task.System) [][]int {
	out := make([][]int, sys.Processors)
	for j := range sys.Tasks {
		p := sys.Tasks[j].Subtasks[0].Processor
		out[p] = append(out[p], j)
	}
	return out
}

// neighborsOf maps each processor to the processors sharing a task with
// it.
func neighborsOf(sys *task.System) [][]int {
	seen := make([]map[int]bool, sys.Processors)
	for p := range seen {
		seen[p] = make(map[int]bool)
	}
	for j := range sys.Tasks {
		procs := make(map[int]bool)
		for _, st := range sys.Tasks[j].Subtasks {
			procs[st.Processor] = true
		}
		//eucon:order-independent symmetric marking; seen[a][b] is set regardless of visit order
		for a := range procs {
			//eucon:order-independent inner half of the same symmetric marking
			for b := range procs {
				if a != b {
					seen[a][b] = true
				}
			}
		}
	}
	out := make([][]int, sys.Processors)
	for p := range out {
		for q := 0; q < sys.Processors; q++ {
			if seen[p][q] {
				out[p] = append(out[p], q)
			}
		}
	}
	return out
}

// newLocal builds processor p's local MPC over its led tasks and visible
// scope.
func newLocal(sys *task.System, f *mat.Dense, setPoints []float64, p int, led, scope []int, cfg Config) (*local, error) {
	sub := mat.New(len(scope), len(led))
	for ri, proc := range scope {
		for ci, t := range led {
			sub.Set(ri, ci, f.At(proc, t))
		}
	}
	b := make([]float64, len(scope))
	for ri, proc := range scope {
		b[ri] = setPoints[proc]
	}
	rmin := make([]float64, len(led))
	rmax := make([]float64, len(led))
	for ci, t := range led {
		rmin[ci] = sys.Tasks[t].RateMin
		rmax[ci] = sys.Tasks[t].RateMax
	}
	// Track ONLY the own processor's set point: each utilization has
	// exactly one responsible controller, so local objectives never fight.
	// Neighbors still enter through the hard output constraints
	// u_neighbor ≤ B_neighbor, which keep this controller from overloading
	// them.
	weights := make([]float64, len(scope))
	weights[0] = 1
	ctrl, err := mpc.New(sub, b, rmin, rmax, mpc.Config{
		PredictionHorizon: cfg.PredictionHorizon,
		ControlHorizon:    cfg.ControlHorizon,
		TrefOverTs:        cfg.TrefOverTs,
		QWeights:          weights,
	})
	if err != nil {
		return nil, fmt.Errorf("deucon: local controller for P%d: %w", p+1, err)
	}
	return &local{proc: p, led: led, scope: scope, ctrl: ctrl}, nil
}

// Name implements sim.Controller.
func (c *Controller) Name() string { return "DEUCON" }

// SetPoints implements sim.Controller: a copy of the per-processor set
// points the local controllers steer toward.
func (c *Controller) SetPoints() []float64 { return mat.VecClone(c.setPoints) }

// Step implements sim.Controller: one decentralized control period.
// The local solves are independent — each local MPC reads only this
// period's shared measurements and last period's announcements, and
// controls a disjoint set of tasks — so they run on up to
// Config.Parallelism goroutines, mirroring the physically parallel
// processors of a real deployment. Results are merged in processor order,
// making the outcome identical for every parallelism setting.
func (c *Controller) Step(_ int, u, rates []float64) ([]float64, error) {
	if len(u) != c.sys.Processors {
		return nil, fmt.Errorf("deucon: utilization vector has length %d, want %d", len(u), c.sys.Processors)
	}
	if len(rates) != len(c.sys.Tasks) {
		return nil, fmt.Errorf("deucon: rate vector has length %d, want %d", len(rates), len(c.sys.Tasks))
	}
	c.periods++

	results := make([]*mpc.StepResult, len(c.locals))
	errs := make([]error, len(c.locals))
	if workers := min(c.cfg.Parallelism, len(c.locals)); workers <= 1 {
		for i, l := range c.locals {
			results[i], errs[i] = c.stepLocal(l, u, rates)
		}
	} else {
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					results[i], errs[i] = c.stepLocal(c.locals[i], u, rates)
				}
			}()
		}
		for i := range c.locals {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}

	// Deterministic merge in local (processor) order: led task sets are
	// disjoint, counters accumulate in a fixed order, and the first failing
	// processor wins error reporting.
	out := make([]float64, len(rates))
	copy(out, rates)
	next := make([]float64, len(c.announced))
	for i, l := range c.locals {
		if errs[i] != nil {
			return nil, fmt.Errorf("deucon: local step on P%d: %w", l.proc+1, errs[i])
		}
		c.messages += len(l.scope) // utilization reports (own report counted uniformly)
		res := results[i]
		for ci, t := range l.led {
			out[t] = res.NewRates[ci]
			next[t] = res.DeltaR[ci]
			c.messages++ // plan announcement to the processors hosting t
		}
	}
	copy(c.announced, next)
	return out, nil
}

// stepLocal runs one processor's local MPC for the current period. It
// reads only shared immutable period state (u, rates, the previous
// period's announcements) and the local's own controller, so distinct
// locals may step concurrently.
func (c *Controller) stepLocal(l *local, u, rates []float64) (*mpc.StepResult, error) {
	// Local view: own + neighbor utilizations, adjusted by the effect of
	// OTHER leaders' previously announced plans so the local model does not
	// double-react to their corrections.
	uLocal := make([]float64, len(l.scope))
	for ri, proc := range l.scope {
		adj := u[proc]
		for j := range c.sys.Tasks {
			if c.leaderOf(j) != l.proc && !mat.IsZero(c.announced[j]) {
				adj += c.f.At(proc, j) * c.announced[j]
			}
		}
		if adj < 0 {
			adj = 0
		}
		if adj > 1 {
			adj = 1
		}
		uLocal[ri] = adj
	}
	rLed := make([]float64, len(l.led))
	for ci, t := range l.led {
		rLed[ci] = rates[t]
	}
	return l.ctrl.Step(uLocal, rLed)
}

// Reset restores the controller to its post-New state: every local MPC's
// move memory and warm-start cache is cleared, the announced-plan exchange
// is emptied, and the message and period counters restart. A Reset
// controller drives a run bit-identically to a freshly built one, which
// lets sweep workers reuse one controller across replications.
func (c *Controller) Reset() {
	for _, l := range c.locals {
		l.ctrl.Reset()
	}
	for i := range c.announced {
		c.announced[i] = 0
	}
	c.messages = 0
	c.periods = 0
}

// Messages reports the total number of control-plane messages exchanged so
// far (utilization reports plus plan announcements).
func (c *Controller) Messages() int { return c.messages }

// Periods reports how many control periods have run.
func (c *Controller) Periods() int { return c.periods }

// LocalControllers reports how many processors run a local controller.
func (c *Controller) LocalControllers() int { return len(c.locals) }

// MaxLocalProblemSize returns the largest local problem as (scope
// processors, led tasks) — the decentralization payoff: this stays small
// as the system grows.
func (c *Controller) MaxLocalProblemSize() (procs, tasks int) {
	for _, l := range c.locals {
		if len(l.scope) > procs {
			procs = len(l.scope)
		}
		if len(l.led) > tasks {
			tasks = len(l.led)
		}
	}
	return procs, tasks
}

func (c *Controller) leaderOf(j int) int {
	return c.sys.Tasks[j].Subtasks[0].Processor
}
