// Package deucon implements DEUCON-style decentralized end-to-end
// utilization control — the future work the EUCON paper closes with
// ("we will develop decentralized control architecture to handle
// large-scale distributed systems"), realized by the authors in the
// follow-on DEUCON work.
//
// Instead of one centralized MIMO controller, every processor runs a local
// model-predictive controller that:
//
//   - controls only the tasks it leads (the tasks whose first subtask it
//     hosts),
//   - observes only its own utilization and its neighbors' (processors
//     that share at least one task with it), and
//   - compensates for neighbor-led tasks using the rate-change plans those
//     neighbors announced in the previous sampling period (a one-period
//     information delay — the honest price of decentralization).
//
// Each local problem is a small constrained least-squares program solved
// with the same machinery as the centralized controller, so per-processor
// work stays bounded as the system grows: the local problem size depends
// on the neighborhood, not on the whole system.
package deucon

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/rtsyslab/eucon/internal/mat"
	"github.com/rtsyslab/eucon/internal/mpc"
	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/task"
)

// Config tunes the local controllers. The zero value selects P=2, M=1,
// Tref/Ts=4 (the paper's SIMPLE tuning) for every local loop.
type Config struct {
	// PredictionHorizon is the local P; 0 selects 2.
	PredictionHorizon int
	// ControlHorizon is the local M; 0 selects 1.
	ControlHorizon int
	// TrefOverTs is the local reference time constant; 0 selects 4.
	TrefOverTs float64
	// Parallelism caps how many local MPC solves run concurrently within
	// one control period — the decentralized solves are independent, as
	// they would be on physically separate processors. 0 selects
	// GOMAXPROCS; 1 solves serially. Results are identical for every
	// setting.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.PredictionHorizon == 0 {
		c.PredictionHorizon = 2
	}
	if c.ControlHorizon == 0 {
		c.ControlHorizon = 1
	}
	if mat.IsZero(c.TrefOverTs) {
		c.TrefOverTs = 4
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// adjTerm is one precomputed coupling coefficient: a nonzero allocation
// entry F[proc][task] for a task led by another processor, whose announced
// plan therefore perturbs proc's utilization.
type adjTerm struct {
	task int
	coef float64
}

// local is one processor's controller state.
type local struct {
	proc  int
	led   []int // task indices this processor leads
	scope []int // processors visible to this controller: {proc} ∪ neighbors
	// adj[ri] lists, for scope row ri, the nonzero F[scope[ri]][j] over
	// tasks j led elsewhere — the only announcements that can move this
	// row's utilization. Precomputed once so the per-period compensation
	// walks the neighborhood instead of the global task set: per-step work
	// scales with chain fan-out, not with system size.
	adj  [][]adjTerm
	ctrl *mpc.Controller

	// Per-period scratch, reused across periods so the steady-state local
	// step performs zero heap allocations.
	uLocal []float64
	rLed   []float64
	res    *mpc.StepResult
}

// Controller is the decentralized utilization controller. It implements
// sim.Controller; internally it runs one local MPC per processor with
// the restricted information structure described in the package comment.
// It is not safe for concurrent use.
type Controller struct {
	sys       *task.System
	cfg       Config
	setPoints []float64
	locals    []*local
	f         *mat.Dense

	// announced[j] is task j's leader-announced rate change from the
	// previous period, used by other controllers to compensate.
	announced []float64
	// messages counts utilization reports + plan announcements exchanged.
	messages int
	periods  int
	// outcomes[o] counts local solves resolved by degradation-ladder rung
	// o across all periods — on a healthy steady state every count but
	// SolveOK stays zero.
	outcomes [mpc.SolveExplicitMiss + 1]int

	// Per-period merge scratch, reused across periods (see Step).
	errs []error
	out  []float64
	next []float64
}

var _ sim.Controller = (*Controller)(nil)

// New builds the decentralized controller. Passing nil set points selects
// the system's default (Liu–Layland) set points.
func New(sys *task.System, setPoints []float64, cfg Config) (*Controller, error) {
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("deucon: %w", err)
	}
	if setPoints == nil {
		setPoints = sys.DefaultSetPoints()
	}
	if len(setPoints) != sys.Processors {
		return nil, fmt.Errorf("deucon: %d set points for %d processors", len(setPoints), sys.Processors)
	}
	cfg = cfg.withDefaults()

	c := &Controller{
		sys:       sys,
		cfg:       cfg,
		setPoints: mat.VecClone(setPoints),
		f:         sys.AllocationMatrix(),
		announced: make([]float64, len(sys.Tasks)),
	}
	leaders := leadersOf(sys)
	neighborSets := neighborsOf(sys)
	for p := 0; p < sys.Processors; p++ {
		led := leaders[p]
		if len(led) == 0 {
			continue // nothing to control from this processor
		}
		scope := append([]int{p}, neighborSets[p]...)
		l, err := newLocal(sys, c.f, setPoints, p, led, scope, cfg)
		if err != nil {
			return nil, err
		}
		c.locals = append(c.locals, l)
	}
	if len(c.locals) == 0 {
		return nil, fmt.Errorf("deucon: no processor leads any task")
	}
	c.errs = make([]error, len(c.locals))
	c.out = make([]float64, len(sys.Tasks))
	c.next = make([]float64, len(sys.Tasks))
	return c, nil
}

// leadersOf maps each processor to the tasks whose first subtask it hosts.
func leadersOf(sys *task.System) [][]int {
	out := make([][]int, sys.Processors)
	for j := range sys.Tasks {
		p := sys.Tasks[j].Subtasks[0].Processor
		out[p] = append(out[p], j)
	}
	return out
}

// neighborsOf maps each processor to the processors sharing a task with
// it.
func neighborsOf(sys *task.System) [][]int {
	seen := make([]map[int]bool, sys.Processors)
	for p := range seen {
		seen[p] = make(map[int]bool)
	}
	for j := range sys.Tasks {
		procs := make(map[int]bool)
		for _, st := range sys.Tasks[j].Subtasks {
			procs[st.Processor] = true
		}
		//eucon:order-independent symmetric marking; seen[a][b] is set regardless of visit order
		for a := range procs {
			//eucon:order-independent inner half of the same symmetric marking
			for b := range procs {
				if a != b {
					seen[a][b] = true
				}
			}
		}
	}
	out := make([][]int, sys.Processors)
	for p := range out {
		for q := 0; q < sys.Processors; q++ {
			if seen[p][q] {
				out[p] = append(out[p], q)
			}
		}
	}
	return out
}

// newLocal builds processor p's local MPC over its led tasks and visible
// scope.
func newLocal(sys *task.System, f *mat.Dense, setPoints []float64, p int, led, scope []int, cfg Config) (*local, error) {
	sub := mat.New(len(scope), len(led))
	for ri, proc := range scope {
		for ci, t := range led {
			sub.Set(ri, ci, f.At(proc, t))
		}
	}
	b := make([]float64, len(scope))
	for ri, proc := range scope {
		b[ri] = setPoints[proc]
	}
	rmin := make([]float64, len(led))
	rmax := make([]float64, len(led))
	for ci, t := range led {
		rmin[ci] = sys.Tasks[t].RateMin
		rmax[ci] = sys.Tasks[t].RateMax
	}
	// Track ONLY the own processor's set point: each utilization has
	// exactly one responsible controller, so local objectives never fight.
	// Neighbors still enter through the hard output constraints
	// u_neighbor ≤ B_neighbor, which keep this controller from overloading
	// them.
	weights := make([]float64, len(scope))
	weights[0] = 1
	ctrl, err := mpc.New(sub, b, rmin, rmax, mpc.Config{
		PredictionHorizon: cfg.PredictionHorizon,
		ControlHorizon:    cfg.ControlHorizon,
		TrefOverTs:        cfg.TrefOverTs,
		QWeights:          weights,
	})
	if err != nil {
		return nil, fmt.Errorf("deucon: local controller for P%d: %w", p+1, err)
	}
	// Precompute the coupling structure: for each visible processor, the
	// nonzero allocation entries of tasks led elsewhere. On a bounded-fan-out
	// workload each list stays O(chains through the neighborhood) however
	// large the system grows.
	adj := make([][]adjTerm, len(scope))
	for ri, proc := range scope {
		for j := range sys.Tasks {
			if sys.Tasks[j].Subtasks[0].Processor == p {
				continue
			}
			if v := f.At(proc, j); !mat.IsZero(v) {
				adj[ri] = append(adj[ri], adjTerm{task: j, coef: v})
			}
		}
	}
	return &local{
		proc: p, led: led, scope: scope, adj: adj, ctrl: ctrl,
		uLocal: make([]float64, len(scope)),
		rLed:   make([]float64, len(led)),
		res:    ctrl.NewStepResult(),
	}, nil
}

// Name implements sim.Controller.
func (c *Controller) Name() string { return "DEUCON" }

// SetPoints implements sim.Controller: a copy of the per-processor set
// points the local controllers steer toward.
func (c *Controller) SetPoints() []float64 { return mat.VecClone(c.setPoints) }

// Step implements sim.Controller: one decentralized control period.
// The local solves are independent — each local MPC reads only this
// period's shared measurements and last period's announcements, and
// controls a disjoint set of tasks — so they run on up to
// Config.Parallelism goroutines, mirroring the physically parallel
// processors of a real deployment. Results are merged in processor order,
// making the outcome identical for every parallelism setting.
//
// The returned rate slice aliases controller-owned memory reused by the
// next Step call; callers that keep it across periods must copy it (the
// simulator copies it into the plant state and traces immediately). With
// Parallelism 1 the whole period — per-processor solves included — runs
// allocation-free in the steady state; parallel mode allocates only the
// per-period fan-out scaffolding (worker goroutines and the job channel),
// never anything per processor.
func (c *Controller) Step(_ int, u, rates []float64) ([]float64, error) {
	if len(u) != c.sys.Processors {
		return nil, fmt.Errorf("deucon: utilization vector has length %d, want %d", len(u), c.sys.Processors)
	}
	if len(rates) != len(c.sys.Tasks) {
		return nil, fmt.Errorf("deucon: rate vector has length %d, want %d", len(rates), len(c.sys.Tasks))
	}
	c.periods++

	if workers := min(c.cfg.Parallelism, len(c.locals)); workers <= 1 {
		for i, l := range c.locals {
			c.errs[i] = c.stepLocal(l, u, rates)
		}
	} else {
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					c.errs[i] = c.stepLocal(c.locals[i], u, rates)
				}
			}()
		}
		for i := range c.locals {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}

	// Deterministic merge in local (processor) order: led task sets are
	// disjoint, counters accumulate in a fixed order, and the first failing
	// processor wins error reporting.
	copy(c.out, rates)
	for i, l := range c.locals {
		if c.errs[i] != nil {
			return nil, fmt.Errorf("deucon: local step on P%d: %w", l.proc+1, c.errs[i])
		}
		c.messages += len(l.scope) // utilization reports (own report counted uniformly)
		c.outcomes[l.res.Outcome]++
		for ci, t := range l.led {
			c.out[t] = l.res.NewRates[ci]
			c.next[t] = l.res.DeltaR[ci]
			c.messages++ // plan announcement to the processors hosting t
		}
	}
	copy(c.announced, c.next)
	return c.out, nil
}

// stepLocal runs one processor's local MPC for the current period into the
// local's reusable scratch. It reads only shared immutable period state
// (u, rates, the previous period's announcements) and writes only the
// local's own state, so distinct locals may step concurrently.
//
//eucon:noalloc
func (c *Controller) stepLocal(l *local, u, rates []float64) error {
	// Local view: own + neighbor utilizations, adjusted by the effect of
	// OTHER leaders' previously announced plans so the local model does not
	// double-react to their corrections. Only the precomputed nonzero
	// couplings are walked; structural zeros cannot move the sum.
	for ri, proc := range l.scope {
		adj := u[proc]
		for _, e := range l.adj[ri] {
			adj += e.coef * c.announced[e.task]
		}
		if adj < 0 {
			adj = 0
		}
		if adj > 1 {
			adj = 1
		}
		l.uLocal[ri] = adj
	}
	for ci, t := range l.led {
		l.rLed[ci] = rates[t]
	}
	return l.ctrl.StepTo(l.res, l.uLocal, l.rLed)
}

// Reset restores the controller to its post-New state: every local MPC's
// move memory and warm-start cache is cleared, the announced-plan exchange
// is emptied, and the message and period counters restart. A Reset
// controller drives a run bit-identically to a freshly built one, which
// lets sweep workers reuse one controller across replications.
func (c *Controller) Reset() {
	for _, l := range c.locals {
		l.ctrl.Reset()
	}
	for i := range c.announced {
		c.announced[i] = 0
	}
	c.messages = 0
	c.periods = 0
	c.outcomes = [mpc.SolveExplicitMiss + 1]int{}
}

// OutcomeCounts reports how many local solves each degradation-ladder
// rung resolved, indexed by mpc.SolveOutcome, across all periods since
// construction or Reset.
func (c *Controller) OutcomeCounts() [mpc.SolveExplicitMiss + 1]int { return c.outcomes }

// Messages reports the total number of control-plane messages exchanged so
// far (utilization reports plus plan announcements).
func (c *Controller) Messages() int { return c.messages }

// Periods reports how many control periods have run.
func (c *Controller) Periods() int { return c.periods }

// LocalControllers reports how many processors run a local controller.
func (c *Controller) LocalControllers() int { return len(c.locals) }

// MaxLocalProblemSize returns the largest local problem as (scope
// processors, led tasks) — the decentralization payoff: this stays small
// as the system grows.
func (c *Controller) MaxLocalProblemSize() (procs, tasks int) {
	for _, l := range c.locals {
		if len(l.scope) > procs {
			procs = len(l.scope)
		}
		if len(l.led) > tasks {
			tasks = len(l.led)
		}
	}
	return procs, tasks
}
