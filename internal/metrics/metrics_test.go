package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if got := StdDev([]float64{5}); got != 0 {
		t.Fatalf("StdDev(single) = %v, want 0", got)
	}
	if got := StdDev(nil); got != 0 {
		t.Fatalf("StdDev(nil) = %v, want 0", got)
	}
}

func TestStdDevNonNegativeProperty(t *testing.T) {
	f := func(s []float64) bool {
		for _, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // skip degenerate float inputs
			}
		}
		return StdDev(s) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStdDevShiftInvariantProperty(t *testing.T) {
	f := func(seed uint8) bool {
		s := make([]float64, 10)
		for i := range s {
			s[i] = float64((int(seed)*31 + i*17) % 100)
		}
		shifted := make([]float64, len(s))
		for i := range s {
			shifted[i] = s[i] + 1000
		}
		return math.Abs(StdDev(s)-StdDev(shifted)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestColumn(t *testing.T) {
	rows := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	if got := Column(rows, 1); !equal(got, []float64{2, 4, 6}) {
		t.Fatalf("Column = %v", got)
	}
}

func TestWindow(t *testing.T) {
	s := []float64{0, 1, 2, 3, 4}
	if got := Window(s, 1, 3); !equal(got, []float64{1, 2}) {
		t.Fatalf("Window(1,3) = %v", got)
	}
	if got := Window(s, -5, 99); !equal(got, s) {
		t.Fatalf("Window(clamped) = %v", got)
	}
	if got := Window(s, 3, 2); got != nil {
		t.Fatalf("Window(empty) = %v, want nil", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("Summarize = %+v", s)
	}
	if got := Summarize(nil); got != (Summary{}) {
		t.Fatalf("Summarize(nil) = %+v, want zero", got)
	}
	if s.String() == "" {
		t.Error("String is empty")
	}
}

func TestAcceptable(t *testing.T) {
	// Paper §7.1: acceptable iff |mean − B| ≤ 0.02 and σ < 0.05.
	tests := []struct {
		name string
		s    Summary
		b    float64
		want bool
	}{
		{"on target", Summary{Mean: 0.828, StdDev: 0.01}, 0.828, true},
		{"mean near threshold", Summary{Mean: 0.8479, StdDev: 0.01}, 0.828, true},
		{"mean too far", Summary{Mean: 0.86, StdDev: 0.01}, 0.828, false},
		{"too oscillatory", Summary{Mean: 0.828, StdDev: 0.06}, 0.828, false},
		{"std at threshold", Summary{Mean: 0.828, StdDev: 0.05}, 0.828, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.s.Acceptable(tc.b); got != tc.want {
				t.Fatalf("Acceptable = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestSettlingTime(t *testing.T) {
	s := []float64{0.2, 0.5, 0.7, 0.82, 0.83, 0.828, 0.829}
	if got := SettlingTime(s, 0.828, 0.01); got != 3 {
		t.Fatalf("SettlingTime = %d, want 3", got)
	}
	if got := SettlingTime([]float64{0, 0, 0}, 1, 0.1); got != -1 {
		t.Fatalf("SettlingTime(never) = %d, want -1", got)
	}
	// Excursion after settling resets the settling point.
	s2 := []float64{0.83, 0.2, 0.83, 0.83}
	if got := SettlingTime(s2, 0.828, 0.01); got != 2 {
		t.Fatalf("SettlingTime(excursion) = %d, want 2", got)
	}
}

func equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMovingAverage(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	got := MovingAverage(s, 3)
	want := []float64{1, 1.5, 2, 3, 4}
	if !equal(got, want) {
		t.Fatalf("MovingAverage = %v, want %v", got, want)
	}
	if got := MovingAverage(s, 1); !equal(got, s) {
		t.Fatalf("window 1 = %v, want copy of input", got)
	}
	cp := MovingAverage(s, 0)
	cp[0] = 99
	if s[0] != 1 {
		t.Fatal("MovingAverage returned a view, want a copy")
	}
	if got := MovingAverage(nil, 3); len(got) != 0 {
		t.Fatalf("MovingAverage(nil) = %v", got)
	}
}

func TestMovingAverageConstantSeries(t *testing.T) {
	s := []float64{7, 7, 7, 7}
	if got := MovingAverage(s, 3); !equal(got, s) {
		t.Fatalf("moving average of constant series = %v", got)
	}
}
