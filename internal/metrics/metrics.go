// Package metrics computes the time-series statistics the EUCON paper
// reports: per-window mean and standard deviation of utilization, the
// paper's acceptability criterion (§7.1: average within ±0.02 of the set
// point and standard deviation below 0.05), and settling times.
package metrics

import (
	"fmt"
	"math"
)

// AcceptableMeanError and AcceptableStdDev are the paper's thresholds for
// acceptable steady-state performance (§7.1).
const (
	AcceptableMeanError = 0.02
	AcceptableStdDev    = 0.05
)

// Column extracts series i from a per-period matrix (e.g. trace
// utilizations: rows[k][i]).
func Column(rows [][]float64, i int) []float64 {
	out := make([]float64, len(rows))
	for k, row := range rows {
		out[k] = row[i]
	}
	return out
}

// Window returns s[from:to) with bounds clamped to the series. The result
// aliases s's backing array; copy it before mutating or retaining.
func Window(s []float64, from, to int) []float64 {
	if from < 0 {
		from = 0
	}
	if to > len(s) {
		to = len(s)
	}
	if from >= to {
		return nil
	}
	return s[from:to]
}

// Mean returns the arithmetic mean of s (0 for an empty series).
func Mean(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

// StdDev returns the population standard deviation of s (0 for fewer than
// two samples).
func StdDev(s []float64) float64 {
	if len(s) < 2 {
		return 0
	}
	m := Mean(s)
	var sum float64
	for _, v := range s {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(s)))
}

// Summary bundles the statistics the paper plots per run (Figures 4, 5).
type Summary struct {
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary over s.
func Summarize(s []float64) Summary {
	if len(s) == 0 {
		return Summary{}
	}
	out := Summary{Mean: Mean(s), StdDev: StdDev(s), Min: s[0], Max: s[0]}
	for _, v := range s {
		out.Min = math.Min(out.Min, v)
		out.Max = math.Max(out.Max, v)
	}
	return out
}

// Acceptable applies the paper's acceptability criterion against set point
// b: |mean − b| ≤ 0.02 and σ < 0.05.
func (s Summary) Acceptable(b float64) bool {
	return math.Abs(s.Mean-b) <= AcceptableMeanError && s.StdDev < AcceptableStdDev
}

// String renders the summary for experiment tables.
func (s Summary) String() string {
	return fmt.Sprintf("mean=%.4f std=%.4f min=%.4f max=%.4f", s.Mean, s.StdDev, s.Min, s.Max)
}

// MovingAverage returns the trailing moving average of s with the given
// window (window ≤ 1 returns a copy). Element k averages
// s[max(0,k−window+1) .. k].
func MovingAverage(s []float64, window int) []float64 {
	out := make([]float64, len(s))
	if window <= 1 {
		copy(out, s)
		return out
	}
	var sum float64
	for k, v := range s {
		sum += v
		if k >= window {
			sum -= s[k-window]
		}
		n := k + 1
		if n > window {
			n = window
		}
		out[k] = sum / float64(n)
	}
	return out
}

// SettlingTime returns the first index k such that every subsequent sample
// stays within tol of target, or -1 when the series never settles. This is
// the "re-converges within 20Ts" measurement of Experiment II.
func SettlingTime(s []float64, target, tol float64) int {
	settled := -1
	for k, v := range s {
		if math.Abs(v-target) <= tol {
			if settled < 0 {
				settled = k
			}
		} else {
			settled = -1
		}
	}
	return settled
}
