package baseline

import (
	"fmt"

	"github.com/rtsyslab/eucon/internal/mat"
	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/task"
)

// PID is a decoupled per-processor PID utilization controller in the style
// of the earlier feedback-control scheduling work the paper builds on
// (FCS [10], FCS for distributed systems [17]). Each processor runs an
// independent loop: its utilization error drives a common rate scaling for
// the tasks whose subtasks it hosts.
//
// The paper argues this design "cannot be easily extended to end-to-end
// utilization control due to the coupling among multiple processors": a
// rate change commanded by one processor's loop perturbs every other
// processor its tasks touch. PID exists here as that comparator — it works
// on decoupled workloads and degrades as coupling grows (see the
// BenchmarkAblationPIDCoupling results).
type PID struct {
	sys       *task.System
	setPoints []float64
	kp, ki    float64
	integral  []float64
	f         *mat.Dense
}

var _ sim.Controller = (*PID)(nil)

// PIDConfig tunes the per-processor loops. Zero values select gains that
// are stable on decoupled workloads (Kp = 0.5, Ki = 0.1).
type PIDConfig struct {
	// Kp is the proportional gain applied to the utilization error.
	Kp float64
	// Ki is the integral gain.
	Ki float64
}

// NewPID builds the decoupled PID comparator. Passing nil set points
// selects the system's default (Liu–Layland) set points.
func NewPID(sys *task.System, setPoints []float64, cfg PIDConfig) (*PID, error) {
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("pid: %w", err)
	}
	if setPoints == nil {
		setPoints = sys.DefaultSetPoints()
	}
	if len(setPoints) != sys.Processors {
		return nil, fmt.Errorf("pid: %d set points for %d processors", len(setPoints), sys.Processors)
	}
	if mat.IsZero(cfg.Kp) {
		cfg.Kp = 0.5
	}
	if mat.IsZero(cfg.Ki) {
		cfg.Ki = 0.1
	}
	if cfg.Kp < 0 || cfg.Ki < 0 {
		return nil, fmt.Errorf("pid: negative gains Kp=%g Ki=%g", cfg.Kp, cfg.Ki)
	}
	return &PID{
		sys:       sys,
		setPoints: mat.VecClone(setPoints),
		kp:        cfg.Kp,
		ki:        cfg.Ki,
		integral:  make([]float64, sys.Processors),
		f:         sys.AllocationMatrix(),
	}, nil
}

// Name implements sim.Controller.
func (c *PID) Name() string { return "PID" }

// SetPoints implements sim.Controller: a copy of the per-processor set
// points the loops steer toward.
func (c *PID) SetPoints() []float64 { return mat.VecClone(c.setPoints) }

// Step implements sim.Controller. Each processor computes a
// multiplicative rate correction from its own loop; a task hosted on
// several processors receives the most conservative (smallest) correction,
// the natural decoupled-design choice and exactly where the coupling bites.
func (c *PID) Step(_ int, u, rates []float64) ([]float64, error) {
	if len(u) != c.sys.Processors {
		return nil, fmt.Errorf("pid: utilization vector has length %d, want %d", len(u), c.sys.Processors)
	}
	if len(rates) != len(c.sys.Tasks) {
		return nil, fmt.Errorf("pid: rate vector has length %d, want %d", len(rates), len(c.sys.Tasks))
	}
	// Per-processor multiplicative correction: 1 + Kp·e + Ki·∫e, with the
	// error normalized by the set point.
	scale := make([]float64, c.sys.Processors)
	for p := range scale {
		e := (c.setPoints[p] - u[p]) / c.setPoints[p]
		c.integral[p] += e
		// Anti-windup: bound the integral so saturated periods do not wind
		// the loop up.
		const windup = 5
		if c.integral[p] > windup {
			c.integral[p] = windup
		}
		if c.integral[p] < -windup {
			c.integral[p] = -windup
		}
		s := 1 + c.kp*e + c.ki*c.integral[p]
		if s < 0.1 {
			s = 0.1
		}
		if s > 2 {
			s = 2
		}
		scale[p] = s
	}
	out := make([]float64, len(rates))
	for i := range c.sys.Tasks {
		t := &c.sys.Tasks[i]
		// Most conservative correction across the processors this task
		// touches.
		s := 0.0
		first := true
		for _, st := range t.Subtasks {
			if first || scale[st.Processor] < s {
				s = scale[st.Processor]
				first = false
			}
		}
		r := rates[i] * s
		if r < t.RateMin {
			r = t.RateMin
		}
		if r > t.RateMax {
			r = t.RateMax
		}
		out[i] = r
	}
	return out, nil
}

// Reset clears the integral state.
func (c *PID) Reset() {
	for i := range c.integral {
		c.integral[i] = 0
	}
}
