package baseline

import (
	"math"
	"testing"

	"github.com/rtsyslab/eucon/internal/mat"
	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/task"
)

func simpleSystem() *task.System {
	return &task.System{
		Name:       "SIMPLE",
		Processors: 2,
		Tasks: []task.Task{
			{Name: "T1", Subtasks: []task.Subtask{{Processor: 0, EstimatedCost: 35}}, RateMin: 1.0 / 700, RateMax: 1.0 / 35, InitialRate: 1.0 / 60},
			{Name: "T2", Subtasks: []task.Subtask{{Processor: 0, EstimatedCost: 35}, {Processor: 1, EstimatedCost: 35}}, RateMin: 1.0 / 700, RateMax: 1.0 / 35, InitialRate: 1.0 / 90},
			{Name: "T3", Subtasks: []task.Subtask{{Processor: 1, EstimatedCost: 45}}, RateMin: 1.0 / 900, RateMax: 1.0 / 45, InitialRate: 1.0 / 100},
		},
	}
}

func TestAssignedRatesHitSetPoints(t *testing.T) {
	sys := simpleSystem()
	o, err := NewOpen(sys, []float64{0.828, 0.828})
	if err != nil {
		t.Fatal(err)
	}
	u := sys.AllocationMatrix().MulVec(o.AssignedRates())
	for p, v := range u {
		if math.Abs(v-0.828) > 1e-3 {
			t.Errorf("designed utilization on P%d = %v, want 0.828", p+1, v)
		}
	}
}

func TestAssignedRatesWithinBounds(t *testing.T) {
	sys := simpleSystem()
	o, err := NewOpen(sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	rmin, rmax := sys.RateBounds()
	for i, r := range o.AssignedRates() {
		if r < rmin[i]-1e-9 || r > rmax[i]+1e-9 {
			t.Errorf("rate[%d] = %v outside [%v, %v]", i, r, rmin[i], rmax[i])
		}
	}
}

func TestOpenIsConstant(t *testing.T) {
	o, err := NewOpen(simpleSystem(), nil)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := o.Step(0, []float64{0.1, 0.1}, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := o.Step(5, []float64{0.99, 0.99}, []float64{0.001, 0.001, 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecEqual(r1, r2, 0) {
		t.Fatalf("OPEN rates changed: %v vs %v", r1, r2)
	}
	if o.Name() != "OPEN" {
		t.Fatalf("Name = %q", o.Name())
	}
}

func TestExpectedUtilizationScalesLinearly(t *testing.T) {
	sys := simpleSystem()
	o, err := NewOpen(sys, []float64{0.828, 0.828})
	if err != nil {
		t.Fatal(err)
	}
	u05 := o.ExpectedUtilization(sys, 0.5)
	for p, v := range u05 {
		if math.Abs(v-0.414) > 1e-3 {
			t.Errorf("etf 0.5: P%d = %v, want 0.414", p+1, v)
		}
	}
	u2 := o.ExpectedUtilization(sys, 2)
	for p, v := range u2 {
		if v > 1+1e-12 {
			t.Errorf("etf 2: P%d = %v, want clamped at 1", p+1, v)
		}
	}
}

func TestOpenUnderSimulation(t *testing.T) {
	// With accurate estimates (etf = 1) OPEN achieves the set point; with
	// etf = 0.5 it underutilizes by half — the paper's core complaint.
	sys := simpleSystem()
	o, err := NewOpen(sys, []float64{0.828, 0.828})
	if err != nil {
		t.Fatal(err)
	}
	run := func(etf float64) []float64 {
		s, err := sim.New(sim.Config{
			System:         sys,
			SamplingPeriod: 1000,
			Periods:        30,
			Controller:     o,
			ETF:            sim.ConstantETF(etf),
		})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return tr.Utilization[len(tr.Utilization)-1]
	}
	uExact := run(1)
	for p, v := range uExact {
		if math.Abs(v-0.828) > 0.03 {
			t.Errorf("etf 1: P%d = %v, want ≈ 0.828", p+1, v)
		}
	}
	uHalf := run(0.5)
	for p, v := range uHalf {
		if math.Abs(v-0.414) > 0.03 {
			t.Errorf("etf 0.5: P%d = %v, want ≈ 0.414 (underutilization)", p+1, v)
		}
	}
}

func TestNewOpenValidation(t *testing.T) {
	if _, err := NewOpen(&task.System{Name: "bad", Processors: 1}, nil); err == nil {
		t.Error("invalid system accepted")
	}
	if _, err := NewOpen(simpleSystem(), []float64{0.5}); err == nil {
		t.Error("wrong set-point count accepted")
	}
}
