package baseline

import (
	"math"
	"testing"

	"github.com/rtsyslab/eucon/internal/metrics"
	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/task"
)

// decoupledSystem has one local task per processor — the setting the
// original FCS work assumed, where per-processor PID is sound.
func decoupledSystem() *task.System {
	return &task.System{
		Name:       "decoupled",
		Processors: 2,
		Tasks: []task.Task{
			{Name: "A", Subtasks: []task.Subtask{{Processor: 0, EstimatedCost: 20}}, RateMin: 0.0005, RateMax: 0.1, InitialRate: 0.01},
			{Name: "B", Subtasks: []task.Subtask{{Processor: 1, EstimatedCost: 30}}, RateMin: 0.0005, RateMax: 0.1, InitialRate: 0.01},
		},
	}
}

// couplingTrap is a workload where per-processor control provably fails:
// P1 hosts ONLY a stage of the shared task T1, while P2 hosts T1's other
// stage plus a local task T2. Reaching P1's set point requires raising T1
// while lowering T2 — a trade-off only a controller that models the
// coupling can make. PID's conservative per-processor rule freezes T1 as
// soon as P2 reaches its set point, stranding P1 below its own.
func couplingTrap() *task.System {
	return &task.System{
		Name:       "trap",
		Processors: 2,
		Tasks: []task.Task{
			{
				Name: "T1",
				Subtasks: []task.Subtask{
					{Processor: 0, EstimatedCost: 35},
					{Processor: 1, EstimatedCost: 35},
				},
				RateMin: 1.0 / 700, RateMax: 1.0 / 35, InitialRate: 1.0 / 200,
			},
			{
				Name:     "T2",
				Subtasks: []task.Subtask{{Processor: 1, EstimatedCost: 45}},
				RateMin:  1.0 / 9000, RateMax: 1.0 / 45, InitialRate: 1.0 / 100,
			},
		},
	}
}

func TestPIDValidation(t *testing.T) {
	if _, err := NewPID(&task.System{Name: "bad", Processors: 1}, nil, PIDConfig{}); err == nil {
		t.Error("invalid system accepted")
	}
	if _, err := NewPID(decoupledSystem(), []float64{0.5}, PIDConfig{}); err == nil {
		t.Error("wrong set-point count accepted")
	}
	if _, err := NewPID(decoupledSystem(), nil, PIDConfig{Kp: -1}); err == nil {
		t.Error("negative gain accepted")
	}
}

func TestPIDConvergesOnDecoupledWorkload(t *testing.T) {
	sys := decoupledSystem()
	ctrl, err := NewPID(sys, []float64{0.7, 0.7}, PIDConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(sim.Config{
		System:         sys,
		SamplingPeriod: 1000,
		Periods:        150,
		Controller:     ctrl,
		ETF:            sim.ConstantETF(0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 2; p++ {
		m := metrics.Mean(metrics.Window(metrics.Column(tr.Utilization, p), 75, 150))
		if math.Abs(m-0.7) > 0.03 {
			t.Errorf("P%d mean = %v, want ≈ 0.7 on a decoupled workload", p+1, m)
		}
	}
}

func TestPIDDegradesUnderCoupling(t *testing.T) {
	// On the coupling-trap workload the conservative-minimum rule leaves a
	// large steady-state error on P1 — the paper's argument for MIMO model
	// predictive control over per-processor PID.
	sys := couplingTrap()
	ctrl, err := NewPID(sys, []float64{0.828, 0.828}, PIDConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(sim.Config{
		System:         sys,
		SamplingPeriod: 1000,
		Periods:        200,
		Controller:     ctrl,
		ETF:            sim.ConstantETF(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	mP1 := metrics.Mean(metrics.Window(metrics.Column(tr.Utilization, 0), 100, 200))
	if math.Abs(mP1-0.828) < 0.05 {
		t.Errorf("PID P1 mean = %v: expected a large steady-state error on the coupling trap", mP1)
	}
	// Rates must stay within bounds regardless of tracking quality.
	rmin, rmax := sys.RateBounds()
	for k, r := range tr.Rates {
		for i := range r {
			if r[i] < rmin[i]-1e-12 || r[i] > rmax[i]+1e-12 {
				t.Fatalf("period %d: rate[%d] = %v outside bounds", k, i, r[i])
			}
		}
	}
}

func TestEUCONSolvesCouplingTrap(t *testing.T) {
	// The same workload under the unconstrained utilization target is
	// solvable: MPC raises the shared task and pushes the local task toward
	// R_min so BOTH processors reach 0.828. We verify the rate pattern
	// analytically: u1 = 35·r1 = 0.828 needs r1 ≈ 0.02366 which is within
	// T1's bounds, and then u2 = 0.828 + 45·r2 forces r2 → R_min.
	sys := couplingTrap()
	f := sys.AllocationMatrix()
	r := []float64{0.828 / 35, sys.Tasks[1].RateMin}
	u := f.MulVec(r)
	if math.Abs(u[0]-0.828) > 1e-9 {
		t.Fatalf("analytic u1 = %v", u[0])
	}
	if u[1] > 0.9 {
		t.Fatalf("analytic u2 = %v exceeds feasibility slack", u[1])
	}
}

func TestPIDAntiWindup(t *testing.T) {
	// Drive the loop into saturation (set point unreachable), then release:
	// the integral must not have wound up so far that recovery stalls.
	sys := decoupledSystem()
	ctrl, err := NewPID(sys, []float64{0.9, 0.9}, PIDConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rates := sys.InitialRates()
	// 200 periods of heavy underutilization reports (simulates saturation).
	var err2 error
	for k := 0; k < 200; k++ {
		rates, err2 = ctrl.Step(k, []float64{0.05, 0.05}, rates)
		if err2 != nil {
			t.Fatal(err2)
		}
	}
	// Now report over-target utilization; rates must start dropping within
	// a bounded number of periods.
	dropped := false
	prev := rates[0]
	for k := 0; k < 60; k++ {
		rates, err2 = ctrl.Step(200+k, []float64{1.0, 1.0}, rates)
		if err2 != nil {
			t.Fatal(err2)
		}
		if rates[0] < prev {
			dropped = true
			break
		}
		prev = rates[0]
	}
	if !dropped {
		t.Fatal("rates never decreased after saturation released: integral wind-up")
	}
}

func TestPIDResetAndName(t *testing.T) {
	ctrl, err := NewPID(decoupledSystem(), nil, PIDConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Name() != "PID" {
		t.Fatalf("Name = %q", ctrl.Name())
	}
	rates := []float64{0.01, 0.01}
	r1, err := ctrl.Step(0, []float64{0.3, 0.3}, rates)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Reset()
	r2, err := ctrl.Step(0, []float64{0.3, 0.3}, rates)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if math.Abs(r1[i]-r2[i]) > 1e-12 {
			t.Fatalf("Reset did not clear integral state: %v vs %v", r1, r2)
		}
	}
}

func TestPIDDimensionErrors(t *testing.T) {
	ctrl, err := NewPID(decoupledSystem(), nil, PIDConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Step(0, []float64{0.3}, []float64{0.01, 0.01}); err == nil {
		t.Error("short utilization accepted")
	}
	if _, err := ctrl.Step(0, []float64{0.3, 0.3}, []float64{0.01}); err == nil {
		t.Error("short rates accepted")
	}
}
