// Package baseline implements OPEN, the open-loop comparator of the EUCON
// paper (§7.1): a designer assigns fixed task rates offline from the
// estimated execution times so that B = F·r′, and never adjusts them. OPEN
// achieves the desired utilization only when the estimates are exact
// (etf = 1); it underutilizes when execution times are overestimated and
// overloads when they are underestimated — the behavior Figures 5 and 6
// document.
package baseline

import (
	"fmt"

	"github.com/rtsyslab/eucon/internal/mat"
	"github.com/rtsyslab/eucon/internal/qp"
	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/task"
)

// Open is the OPEN controller: it computes the design-time rate assignment
// once and then holds it for the whole run.
type Open struct {
	rates     []float64
	setPoints []float64
}

var _ sim.Controller = (*Open)(nil)

// NewOpen solves the designer's assignment problem: find rates r′ within
// the task rate bounds minimizing ‖F·r′ − B‖₂ (exact B = F·r′ whenever
// feasible, as the paper assumes). Passing nil set points selects the
// system's default (Liu–Layland) set points.
func NewOpen(sys *task.System, setPoints []float64) (*Open, error) {
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("open: %w", err)
	}
	if setPoints == nil {
		setPoints = sys.DefaultSetPoints()
	}
	if len(setPoints) != sys.Processors {
		return nil, fmt.Errorf("open: %d set points for %d processors", len(setPoints), sys.Processors)
	}
	f := sys.AllocationMatrix()
	rmin, rmax := sys.RateBounds()
	m := len(sys.Tasks)
	// Box constraints rmin ≤ r ≤ rmax as A·r ≤ b.
	a := mat.New(2*m, m)
	b := make([]float64, 2*m)
	for i := 0; i < m; i++ {
		a.Set(i, i, 1)
		b[i] = rmax[i]
		a.Set(m+i, i, -1)
		b[m+i] = -rmin[i]
	}
	res, err := qp.SolveLSI(f, setPoints, a, b, sys.InitialRates(), qp.Options{})
	if err != nil {
		return nil, fmt.Errorf("open: assign rates: %w", err)
	}
	return &Open{rates: res.X, setPoints: mat.VecClone(setPoints)}, nil
}

// Name implements sim.Controller.
func (*Open) Name() string { return "OPEN" }

// Reset is a no-op: OPEN carries no per-run state (the design-time rates
// are fixed). It exists so run harnesses that reset controllers between
// replications can reuse an Open without re-solving the assignment QP.
func (*Open) Reset() {}

// SetPoints implements sim.Controller: the set points the design-time
// assignment targeted (a copy).
func (o *Open) SetPoints() []float64 { return mat.VecClone(o.setPoints) }

// Step implements sim.Controller with the fixed design-time rates.
func (o *Open) Step(int, []float64, []float64) ([]float64, error) {
	out := make([]float64, len(o.rates))
	copy(out, o.rates)
	return out, nil
}

// AssignedRates returns the design-time rate vector r′.
func (o *Open) AssignedRates() []float64 {
	out := make([]float64, len(o.rates))
	copy(out, o.rates)
	return out
}

// ExpectedUtilization returns F·r′ scaled by an execution-time factor: the
// utilization OPEN is expected to produce when actual execution times are
// etf times the estimates (the analytic OPEN line in Figure 5).
func (o *Open) ExpectedUtilization(sys *task.System, etf float64) []float64 {
	u := sys.AllocationMatrix().MulVec(o.rates)
	for i := range u {
		u[i] *= etf
		if u[i] > 1 {
			u[i] = 1
		}
	}
	return u
}
