package agent

import (
	"context"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/rtsyslab/eucon/internal/core"
	"github.com/rtsyslab/eucon/internal/fault"
	"github.com/rtsyslab/eucon/internal/lane"
	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/task"
	"github.com/rtsyslab/eucon/internal/workload"
)

// dropRange drops every message index in [from, to), defeating retries
// when the range covers all attempts of one report.
type dropRange struct{ from, to uint64 }

func (d dropRange) Outcome(n uint64) (bool, time.Duration) { return n >= d.from && n < d.to, 0 }

// startFaultyCluster is startCluster with per-node fault plans and a
// degrade-mode coordinator.
func startFaultyCluster(t *testing.T, sys *task.System, ctrl sim.RateController, periods int, timeout time.Duration, plans []lane.Plan, retry lane.RetryPolicy) (*Result, error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		System:     sys,
		Controller: ctrl,
		Listener:   ln,
		Periods:    periods,
		Timeout:    timeout,
		Degrade:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	nodeErrs := make([]error, sys.Processors)
	for p := 0; p < sys.Processors; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			nodeErrs[p] = RunNode(ctx, NodeConfig{
				Processor:      p,
				System:         sys,
				Addr:           ln.Addr().String(),
				Name:           "node",
				ETF:            sim.ConstantETF(0.5),
				SamplingPeriod: workload.SamplingPeriod,
				Seed:           int64(p + 1),
				Timeout:        5 * time.Second,
				SendFaults:     plans[p],
				Retry:          retry,
			})
		}()
	}
	res, runErr := coord.Run(ctx)
	wg.Wait()
	for p, err := range nodeErrs {
		if err != nil {
			t.Errorf("node P%d: %v", p+1, err)
		}
	}
	return res, runErr
}

// TestCoordinatorDegradesAroundLostReport is the end-to-end degradation
// path: one node's period-2 report is dropped beyond its retry budget, the
// coordinator substitutes NaN and keeps the loop alive, and the EUCON
// controller's hold-last policy keeps the rate vector finite.
func TestCoordinatorDegradesAroundLostReport(t *testing.T) {
	sys := workload.Simple()
	ctrl, err := core.New(sys, nil, workload.SimpleController())
	if err != nil {
		t.Fatal(err)
	}
	retry := lane.RetryPolicy{Attempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	// Node P2's report for period 2 occupies message indices 2, 3, 4
	// (initial send plus two retries); dropping all three loses it for
	// good. P1 runs fault-free (a nil plan leaves the raw lane in place).
	plans := []lane.Plan{nil, dropRange{2, 5}}
	res, err := startFaultyCluster(t, sys, ctrl, 6, time.Second, plans, retry)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Utilization) != 6 {
		t.Fatalf("run covered %d periods, want 6 despite the lost report", len(res.Utilization))
	}
	if res.MissedReports != 1 {
		t.Errorf("MissedReports = %d, want 1", res.MissedReports)
	}
	if !math.IsNaN(res.Utilization[2][1]) {
		t.Errorf("period 2 P2 utilization = %v, want NaN marker", res.Utilization[2][1])
	}
	for k, row := range res.Utilization {
		if k != 2 {
			for p, u := range row {
				if math.IsNaN(u) {
					t.Errorf("period %d P%d unexpectedly NaN", k, p+1)
				}
			}
		}
	}
	for k, rates := range res.Rates {
		for i, r := range rates {
			if math.IsNaN(r) || r <= 0 {
				t.Errorf("period %d rate[%d] = %v; NaN leaked past the degradation policy", k, i, r)
			}
		}
	}
	held := ctrl.HeldSamples()
	if held == 0 {
		t.Error("controller held no samples; the NaN never reached hold-last")
	}
}

// TestClusterLossyTransportConverges drives the full loop through a
// probabilistic fault.TransportPlan on every node: with retries on, 5%
// per-attempt loss is almost always recovered, degrade mode absorbs the
// rest, and the closed loop still converges to the set points.
func TestClusterLossyTransportConverges(t *testing.T) {
	sys := workload.Simple()
	ctrl, err := core.New(sys, nil, workload.SimpleController())
	if err != nil {
		t.Fatal(err)
	}
	retry := lane.RetryPolicy{Attempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	plans := []lane.Plan{
		fault.TransportPlan{DropProb: 0.05, Seed: 1},
		fault.TransportPlan{DropProb: 0.05, DelayProb: 0.1, Delay: time.Millisecond, Seed: 2},
	}
	res, err := startFaultyCluster(t, sys, ctrl, 80, time.Second, plans, retry)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Utilization) != 80 {
		t.Fatalf("run covered %d periods, want 80", len(res.Utilization))
	}
	b := sys.DefaultSetPoints()
	for p := 0; p < sys.Processors; p++ {
		var sum float64
		n := 0
		for k := 40; k < 80; k++ {
			if u := res.Utilization[k][p]; !math.IsNaN(u) {
				sum += u
				n++
			}
		}
		if n == 0 {
			t.Fatalf("P%d: every tail sample missing", p+1)
		}
		if mean := sum / float64(n); math.Abs(mean-b[p]) > 0.03 {
			t.Errorf("P%d tail mean %v over a lossy transport, want ≈ %v", p+1, mean, b[p])
		}
	}
	t.Logf("lossy transport: %d reports degraded around", res.MissedReports)
}
