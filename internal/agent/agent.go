// Package agent implements the distributed runtime of the EUCON
// architecture (paper §4): a centralized controller process (Coordinator)
// connected through TCP feedback lanes to one node agent per processor,
// each hosting a utilization monitor and a rate modulator.
//
// The feedback loop runs in lockstep, mirroring the paper's sequence: at
// the end of each sampling period every node sends its measured
// utilization to the controller, the controller solves the MPC problem and
// broadcasts the new task rates, and each node's rate modulator applies
// them.
//
// Node agents in this package carry a synthetic plant — utilization is
// generated from the node's hosted subtasks, the current rates, and an
// execution-time factor with optional noise. This exercises the control
// plane end-to-end over real sockets; full-fidelity scheduling dynamics
// (preemptive RMS, release guard, queueing) live in internal/sim.
package agent

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"time"

	"github.com/rtsyslab/eucon/internal/lane"
	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/task"
)

// DefaultTimeout bounds every lane send/receive.
const DefaultTimeout = 10 * time.Second

// CoordinatorConfig configures the controller process.
//
// Deprecated: the fixed-membership Coordinator requires every processor to
// connect before the loop starts and aborts on any peer failure. New code
// should use Server (NewServer/Run), whose membership layer admits joins,
// leaves, and crashes without a controller restart.
type CoordinatorConfig struct {
	// System describes the workload (needed for task count and initial
	// rates).
	System *task.System
	// Controller computes rates each period (e.g. core.Controller).
	Controller sim.RateController
	// Listener accepts node-agent lanes. The coordinator takes ownership
	// and closes it when Run returns.
	Listener net.Listener
	// Periods is the number of feedback periods to run.
	Periods int
	// Timeout bounds each lane operation; zero selects DefaultTimeout.
	Timeout time.Duration
	// Degrade keeps the loop alive when a node's utilization report times
	// out: the missing sample is recorded as NaN (counted in
	// Result.MissedReports) and handed to the controller, whose
	// hold-last-sample policy (core.Controller) absorbs it. Without
	// Degrade a timeout aborts the run, the pre-fault-layer behavior.
	// Non-timeout lane failures abort either way.
	Degrade bool
}

// Result is the coordinator's run record, shaped like a sim.Trace.
type Result struct {
	// Utilization[k][p] is processor p's report in period k; NaN marks a
	// report that timed out under CoordinatorConfig.Degrade.
	Utilization [][]float64
	// Rates[k] is the rate vector applied for period k+1.
	Rates [][]float64
	// MissedReports counts utilization reports replaced by NaN because
	// they timed out (Degrade mode only).
	MissedReports int
}

// Coordinator runs the centralized EUCON feedback loop over TCP lanes.
//
// Deprecated: use Server, which adds membership, bounded send queues, and
// batched reports. Coordinator is kept as a shim for the fixed-fleet
// lockstep tests.
type Coordinator struct {
	cfg   CoordinatorConfig
	lanes []*lane.Conn // index = processor
}

// NewCoordinator validates the configuration.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.System == nil {
		return nil, errors.New("agent: CoordinatorConfig.System is nil")
	}
	if err := cfg.System.Validate(); err != nil {
		return nil, fmt.Errorf("agent: %w", err)
	}
	if cfg.Controller == nil {
		return nil, errors.New("agent: CoordinatorConfig.Controller is nil")
	}
	if cfg.Listener == nil {
		return nil, errors.New("agent: CoordinatorConfig.Listener is nil")
	}
	if cfg.Periods <= 0 {
		return nil, fmt.Errorf("agent: period count %d must be positive", cfg.Periods)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	return &Coordinator{cfg: cfg}, nil
}

// Run accepts one lane per processor, then drives the feedback loop for
// the configured number of periods. It always releases all connections and
// the listener before returning.
func (c *Coordinator) Run(ctx context.Context) (*Result, error) {
	defer func() {
		for _, l := range c.lanes {
			if l != nil {
				_ = l.Close()
			}
		}
		_ = c.cfg.Listener.Close()
	}()
	if err := c.accept(ctx); err != nil {
		return nil, err
	}

	n := c.cfg.System.Processors
	rates := c.cfg.System.InitialRates()
	res := &Result{
		Utilization: make([][]float64, 0, c.cfg.Periods),
		Rates:       make([][]float64, 0, c.cfg.Periods),
	}
	for k := 0; k < c.cfg.Periods; k++ {
		if err := ctx.Err(); err != nil {
			c.shutdown("context canceled")
			return res, fmt.Errorf("agent: run canceled at period %d: %w", k, err)
		}
		u := make([]float64, n)
		for p := 0; p < n; p++ {
			m, err := c.lanes[p].Receive(c.cfg.Timeout)
			// In Degrade mode a report lost in transit may surface later as
			// a stale period; drain anything older than k before judging.
			for c.cfg.Degrade && err == nil && m.Type == lane.TypeUtilizationBatch && m.Batch.First+len(m.Batch.Samples) <= k {
				m, err = c.lanes[p].Receive(c.cfg.Timeout)
			}
			if err != nil {
				if c.cfg.Degrade && isTimeout(err) {
					// Missing sample: degrade instead of aborting. The
					// controller's hold-last policy substitutes for NaN.
					u[p] = math.NaN()
					res.MissedReports++
					continue
				}
				c.shutdown("peer failure")
				return res, fmt.Errorf("agent: utilization from P%d in period %d: %w", p+1, k, err)
			}
			if m.Type != lane.TypeUtilizationBatch {
				c.shutdown("protocol error")
				return res, fmt.Errorf("agent: P%d sent %q in period %d, want utilization", p+1, m.Type, k)
			}
			if k < m.Batch.First || k >= m.Batch.First+len(m.Batch.Samples) {
				c.shutdown("protocol error")
				return res, fmt.Errorf("agent: P%d reported periods [%d,%d), want %d", p+1, m.Batch.First, m.Batch.First+len(m.Batch.Samples), k)
			}
			u[p] = m.Batch.Samples[k-m.Batch.First]
		}
		res.Utilization = append(res.Utilization, u)
		applied := make([]float64, len(rates))
		copy(applied, rates)
		res.Rates = append(res.Rates, applied)

		newRates, err := c.cfg.Controller.Step(k, u, rates)
		if err != nil {
			// Match the simulator's policy: keep rates on controller error.
			newRates = rates
		}
		rates = newRates
		out := &lane.Message{Type: lane.TypeRates, Rates: lane.Rates{Period: k, Values: rates}}
		for p := 0; p < n; p++ {
			if err := c.lanes[p].Send(out, c.cfg.Timeout); err != nil {
				c.shutdown("peer failure")
				return res, fmt.Errorf("agent: rates to P%d in period %d: %w", p+1, k, err)
			}
		}
	}
	c.shutdown("run complete")
	return res, nil
}

// accept waits for a hello from every processor, rejecting duplicates and
// out-of-range indices.
func (c *Coordinator) accept(ctx context.Context) error {
	n := c.cfg.System.Processors
	c.lanes = make([]*lane.Conn, n)
	registered := 0
	for registered < n {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("agent: accept canceled: %w", err)
		}
		if d, ok := c.cfg.Listener.(*net.TCPListener); ok {
			// Bound each Accept so context cancellation is honored.
			_ = d.SetDeadline(time.Now().Add(c.cfg.Timeout)) //eucon:wallclock-ok operational accept deadline, never feeds control output
		}
		nc, err := c.cfg.Listener.Accept()
		if err != nil {
			return fmt.Errorf("agent: accept node lane: %w", err)
		}
		l := lane.NewConn(nc)
		m, err := l.Receive(c.cfg.Timeout)
		if err != nil {
			_ = l.Close()
			return fmt.Errorf("agent: hello: %w", err)
		}
		if m.Type != lane.TypeHello {
			_ = l.Close()
			return fmt.Errorf("agent: first message was %q, want hello", m.Type)
		}
		if m.Hello.Processor < 0 || m.Hello.Processor >= n {
			_ = l.Close()
			return fmt.Errorf("agent: hello for processor %d, have %d processors", m.Hello.Processor, n)
		}
		if c.lanes[m.Hello.Processor] != nil {
			_ = l.Close()
			return fmt.Errorf("agent: duplicate hello for processor %d", m.Hello.Processor)
		}
		c.lanes[m.Hello.Processor] = l
		registered++
	}
	return nil
}

// isTimeout reports whether err is a network timeout (an expired lane
// deadline), the only failure Degrade mode absorbs.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// shutdown notifies all connected nodes, best effort.
func (c *Coordinator) shutdown(reason string) {
	m := &lane.Message{Type: lane.TypeShutdown, Shutdown: lane.Shutdown{Reason: reason}}
	for _, l := range c.lanes {
		if l != nil {
			_ = l.Send(m, time.Second)
		}
	}
}

// NodeConfig configures one node agent.
//
// Deprecated: use RunAgent with functional options (WithETF, WithJitter,
// WithRetry, ...), which adds send queues, sparse rate application, and
// rejoin support.
type NodeConfig struct {
	// Processor is this node's 0-based processor index.
	Processor int
	// System describes the workload; the node derives its hosted subtasks
	// from it.
	System *task.System
	// Addr is the coordinator's TCP address.
	Addr string
	// Name labels the node in the hello message.
	Name string
	// ETF is the execution-time factor schedule for the synthetic plant.
	ETF sim.ETFSchedule
	// SamplingPeriod converts period indices to plant time for ETF lookup
	// (time units per period).
	SamplingPeriod float64
	// Jitter adds uniform ±Jitter relative noise to the measured
	// utilization.
	Jitter float64
	// Seed drives the noise.
	Seed int64
	// Interval is the real-time duration of one sampling period; zero runs
	// the loop as fast as the lanes allow (tests).
	Interval time.Duration
	// Timeout bounds each lane operation; zero selects DefaultTimeout.
	Timeout time.Duration
	// SendFaults, when non-nil, injects transport faults (drops, delays)
	// into this node's outbound utilization reports — e.g.
	// fault.TransportPlan. A report still lost after Retry is abandoned
	// and the node stays in lockstep, relying on the coordinator's
	// Degrade mode to substitute the missing sample.
	SendFaults lane.Plan
	// Retry governs utilization-report resends over a faulty transport
	// (capped exponential backoff). The zero value selects the lane
	// package defaults.
	Retry lane.RetryPolicy
}

// RunNode connects to the coordinator and participates in the feedback
// loop until a shutdown message, a lane failure, or context cancellation.
//
// Deprecated: use RunAgent.
func RunNode(ctx context.Context, cfg NodeConfig) error {
	if cfg.System == nil {
		return errors.New("agent: NodeConfig.System is nil")
	}
	if cfg.Processor < 0 || cfg.Processor >= cfg.System.Processors {
		return fmt.Errorf("agent: processor %d out of range", cfg.Processor)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.SamplingPeriod <= 0 {
		cfg.SamplingPeriod = 1
	}
	l, err := lane.DialContext(ctx, cfg.Addr, cfg.Timeout)
	if err != nil {
		return err
	}
	defer func() { _ = l.Close() }()

	hello := &lane.Message{Type: lane.TypeHello, Hello: lane.Hello{Processor: cfg.Processor, Node: cfg.Name}}
	if err := l.Send(hello, cfg.Timeout); err != nil {
		return err
	}

	// Utilization reports go through the fault plan (when configured) and
	// the retry policy; the hello above and rate receives use the raw lane.
	var reports lane.Sender = l
	if cfg.SendFaults != nil {
		reports = lane.NewFaultConn(l, cfg.SendFaults)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	// Per-task cost hosted on this processor (the row of F for this node).
	costs := make([]float64, len(cfg.System.Tasks))
	for i := range cfg.System.Tasks {
		for _, st := range cfg.System.Tasks[i].Subtasks {
			if st.Processor == cfg.Processor {
				costs[i] += st.EstimatedCost
			}
		}
	}
	rates := cfg.System.InitialRates()
	for k := 0; ; k++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("agent: node P%d canceled: %w", cfg.Processor+1, err)
		}
		if cfg.Interval > 0 {
			select {
			case <-time.After(cfg.Interval):
			case <-ctx.Done():
				return fmt.Errorf("agent: node P%d canceled: %w", cfg.Processor+1, ctx.Err())
			}
		}
		u := c0(costs, rates)
		u *= cfg.ETF.At(float64(k) * cfg.SamplingPeriod)
		if cfg.Jitter > 0 {
			u *= 1 + cfg.Jitter*(2*rng.Float64()-1)
		}
		if u > 1 {
			u = 1
		}
		m := &lane.Message{Type: lane.TypeUtilizationBatch, Batch: lane.UtilizationBatch{Processor: cfg.Processor, First: k, Samples: []float64{u}}}
		if err := lane.SendRetry(ctx, reports, m, cfg.Timeout, cfg.Retry); err != nil {
			if !errors.Is(err, lane.ErrInjectedDrop) {
				return err
			}
			// The report was lost to an injected transport fault even after
			// retries. Stay in lockstep and keep listening: the coordinator
			// degrades around the missing sample and still broadcasts rates.
		}
		reply, err := l.Receive(cfg.Timeout)
		if err != nil {
			return err
		}
		switch reply.Type {
		case lane.TypeShutdown:
			return nil
		case lane.TypeRates:
			if err := applyRates(rates, &reply.Rates); err != nil {
				return fmt.Errorf("agent: node P%d: %w", cfg.Processor+1, err)
			}
		default: //eucon:exhaustive-default hello/utilization from the coordinator are protocol errors
			return fmt.Errorf("agent: node P%d got unexpected %q", cfg.Processor+1, reply.Type)
		}
	}
}

// c0 is the synthetic plant's estimated utilization Σ c_i·r_i.
func c0(costs, rates []float64) float64 {
	var u float64
	for i := range costs {
		u += costs[i] * rates[i]
	}
	return u
}
