package agent

import "time"

// Clock abstracts an agent's notion of time, so harnesses can run fleets
// whose nodes disagree about it. A distributed deployment never has one
// clock: cheap oscillators drift by parts per million, NTP steps time
// around, and a node rejoining after a partition may believe it is periods
// ahead of or behind the controller. The production wall clock and the
// skewed test clocks both live behind this interface, and the agent's
// free-running pacer draws its ticks from it — so clock disagreement is a
// first-class injected fault, not an untested deployment surprise.
//
// The controller side deliberately stays on the wall clock: the server is
// the fleet's time reference, and its liveness sweep and period timeout
// must measure real elapsed time regardless of how confused any agent is.
type Clock interface {
	// Now reports the clock's current reading.
	Now() time.Time
	// After fires once the clock has advanced by d (in this clock's time
	// scale — a fast-running clock fires earlier in real time).
	After(d time.Duration) <-chan time.Time
}

// WallClock is the real time.Now/time.After clock, the default.
type WallClock struct{}

// Now implements Clock.
func (WallClock) Now() time.Time {
	return time.Now() //eucon:wallclock-ok WallClock IS the production time source; sim paths inject test clocks instead
}

// After implements Clock.
func (WallClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// SkewedClock runs offset from and at a different rate than the wall
// clock: its reading at wall time t is t + Offset + Drift·(t − t₀), where
// t₀ is the construction instant. Drift is a rate error — +0.01 runs 1%
// fast, −0.01 runs 1% slow — so an agent paced by this clock genuinely
// free-runs ahead of or behind the fleet, which is exactly the condition
// the server's hold-last substitution and liveness sweep must tolerate.
type SkewedClock struct {
	offset time.Duration
	drift  float64
	epoch  time.Time
}

// NewSkewedClock builds a clock offset from the wall clock by offset and
// running at a rate of (1 + drift) wall seconds per second. Drift must be
// > −1 (a stopped or reversed clock deadlocks After); out-of-range values
// are clamped to −0.5.
func NewSkewedClock(offset time.Duration, drift float64) *SkewedClock {
	if drift <= -1 {
		drift = -0.5
	}
	return &SkewedClock{
		offset: offset,
		drift:  drift,
		epoch:  time.Now(), //eucon:wallclock-ok skew emulation is anchored to real time by design
	}
}

// Now implements Clock.
func (c *SkewedClock) Now() time.Time {
	now := time.Now() //eucon:wallclock-ok skew emulation is anchored to real time by design
	elapsed := now.Sub(c.epoch)
	return now.Add(c.offset + time.Duration(c.drift*float64(elapsed)))
}

// After implements Clock: a duration of d on this clock spans d/(1+drift)
// of real time, so a fast clock's ticks arrive early and a slow clock's
// late.
func (c *SkewedClock) After(d time.Duration) <-chan time.Time {
	return time.After(time.Duration(float64(d) / (1 + c.drift)))
}
