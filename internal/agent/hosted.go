package agent

import (
	"fmt"

	"github.com/rtsyslab/eucon/internal/lane"
	"github.com/rtsyslab/eucon/internal/task"
)

// hostedTasks lists, in task order, the indices of the tasks with at
// least one subtask on processor p. Server and node agent derive this
// independently from the shared *task.System, so the sparse rate frames
// the Server emits (lane.Rates.Tasks) always agree with the agent's
// expectation — the derivation must stay deterministic and identical on
// both sides.
func hostedTasks(sys *task.System, p int) []int32 {
	var out []int32
	for i := range sys.Tasks {
		for _, st := range sys.Tasks[i].Subtasks {
			if st.Processor == p {
				out = append(out, int32(i))
				break
			}
		}
	}
	return out
}

// hostedCosts is the synthetic plant's per-task cost on processor p (the
// row of the subtask-allocation matrix F for this node), indexed by task.
func hostedCosts(sys *task.System, p int) []float64 {
	costs := make([]float64, len(sys.Tasks))
	for i := range sys.Tasks {
		for _, st := range sys.Tasks[i].Subtasks {
			if st.Processor == p {
				costs[i] += st.EstimatedCost
			}
		}
	}
	return costs
}

// applyRates folds a rates frame into the full-length rate vector:
// sparse frames update only the listed task indices, full frames replace
// the vector.
func applyRates(rates []float64, r *lane.Rates) error {
	if r.Tasks == nil {
		if len(r.Values) != len(rates) {
			return fmt.Errorf("got %d rates, want %d", len(r.Values), len(rates))
		}
		copy(rates, r.Values)
		return nil
	}
	if len(r.Tasks) != len(r.Values) {
		return fmt.Errorf("sparse rates frame has %d tasks for %d values", len(r.Tasks), len(r.Values))
	}
	for j, t := range r.Tasks {
		if t < 0 || int(t) >= len(rates) {
			return fmt.Errorf("sparse rates frame names task %d of %d", t, len(rates))
		}
		rates[t] = r.Values[j]
	}
	return nil
}
