package agent

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/rtsyslab/eucon/internal/lane"
	"github.com/rtsyslab/eucon/internal/task"
)

// RunAgent runs one node agent against a Server: it dials addr, joins
// with a hello for the given processor, and participates in the feedback
// loop until the server says shutdown, the lane fails, or ctx is
// canceled (which returns nil — cancellation is the normal way to stop
// an agent; harnesses use it to inject crashes).
//
// The agent hosts the synthetic plant of this package: utilization is
// Σ c_i·r_i over the subtasks hosted on its processor, scaled by the ETF
// schedule and optional jitter. Outbound frames flow through a bounded
// send queue, so a stalled lane sheds stale reports instead of blocking
// the measurement loop; rate frames are applied as they arrive (sparse
// frames update only the hosted tasks).
//
// By default the agent runs in lockstep: it reports period k and waits
// for the server's period-k rates before sampling period k+1, as fast as
// the lanes allow. WithInterval(d) switches to free-running: a ticker
// paces the periods and rates apply asynchronously. WithLatencySink
// observes the end-to-end sampling-period latency (report sent → rates
// received) in lockstep mode.
func RunAgent(ctx context.Context, sys *task.System, processor int, addr string, opts ...Option) error {
	if sys == nil {
		return errors.New("agent: system is nil")
	}
	if processor < 0 || processor >= sys.Processors {
		return fmt.Errorf("agent: processor %d out of range", processor)
	}
	opt := newOptions(opts)

	conn, err := lane.DialContext(ctx, addr, opt.ioTimeout, lane.WithConnCodec(opt.codec))
	if err != nil {
		return err
	}
	defer func() { _ = conn.Close() }()

	// Outbound frames go through the bounded queue; reports additionally
	// pass the fault plan (when configured) and the retry policy. A report
	// still lost after retries is abandoned without killing the queue —
	// the server degrades around it with hold-last substitution.
	var reports lane.Sender = conn
	if opt.sendFaults != nil {
		reports = lane.NewFaultConn(conn, opt.sendFaults)
	} else if opt.peerFaults != nil {
		// The per-peer form of the same option (shared with the Server):
		// the plan keyed by this agent's processor faults its reports.
		if plan := opt.peerFaults(processor); plan != nil {
			reports = lane.NewFaultConn(conn, plan)
		}
	}
	queue := lane.NewSendQueue(func(ctx context.Context, m *lane.Message) error {
		if m.Type != lane.TypeUtilizationBatch {
			return conn.Send(m, opt.ioTimeout)
		}
		err := lane.SendRetry(ctx, reports, m, opt.ioTimeout, opt.retry)
		if errors.Is(err, lane.ErrInjectedDrop) {
			return nil
		}
		return err
	}, opt.queueDepth)
	qctx, stopQueue := context.WithCancel(ctx)
	defer stopQueue()
	queue.Start(qctx)

	if err := queue.EnqueueHello(processor, opt.nodeName); err != nil {
		return err
	}

	// The plant.
	rng := rand.New(rand.NewSource(opt.seed))
	costs := hostedCosts(sys, processor)
	rates := sys.InitialRates()
	measure := func(k int) float64 {
		u := 0.0
		for i := range costs {
			u += costs[i] * rates[i]
		}
		u *= opt.etf.At(float64(k) * opt.samplingPeriod)
		if opt.jitter > 0 {
			u *= 1 + opt.jitter*(2*rng.Float64()-1)
		}
		if u > 1 {
			u = 1
		}
		return u
	}

	// Join-ack: the first rates frame carries the hosted-task rates and
	// the period to report first.
	var m lane.Message
	if err := conn.ReceiveInto(&m, opt.ioTimeout); err != nil {
		return fmt.Errorf("agent: node P%d join ack: %w", processor+1, err)
	}
	if m.Type == lane.TypeShutdown {
		return nil
	}
	if m.Type != lane.TypeRates {
		return fmt.Errorf("agent: node P%d joined but got %s, want rates", processor+1, m.Type)
	}
	if err := applyRates(rates, &m.Rates); err != nil {
		return fmt.Errorf("agent: node P%d: %w", processor+1, err)
	}
	next := m.Rates.Period

	if opt.interval > 0 {
		return runFree(ctx, conn, queue, &opt, processor, next, measure, rates)
	}
	return runLockstep(ctx, conn, queue, &opt, processor, next, measure, rates)
}

// runLockstep reports period k, waits for the server's period-k rates,
// then advances — the paper's sequence, as fast as the lanes allow.
func runLockstep(ctx context.Context, conn *lane.Conn, queue *lane.SendQueue, opt *Options,
	processor, next int, measure func(int) float64, rates []float64) error {
	// applied tracks the newest period whose rates have been applied; under
	// a faulty transport, duplicated or reordered frames can deliver an
	// older period after a newer one, and applying it would regress the
	// plant to stale rates.
	applied := next - 1
	var m lane.Message
	for {
		if err := ctx.Err(); err != nil {
			return nil // canceled: the harness's way to crash an agent
		}
		if err := queue.EnqueueSample(processor, next, measure(next)); err != nil {
			return err
		}
		sentAt := time.Now() //eucon:wallclock-ok operational latency metric, never feeds control output
		for {
			if err := conn.ReceiveInto(&m, opt.ioTimeout); err != nil {
				if ctx.Err() != nil {
					return nil
				}
				return fmt.Errorf("agent: node P%d: %w", processor+1, err)
			}
			if m.Type == lane.TypeShutdown {
				return nil
			}
			if m.Type != lane.TypeRates {
				return fmt.Errorf("agent: node P%d got unexpected %s", processor+1, m.Type)
			}
			if m.Rates.Period < applied {
				// Stale frame (a reordered or duplicated older period):
				// ignore — the newer rates already applied must win.
				continue
			}
			if err := applyRates(rates, &m.Rates); err != nil {
				return fmt.Errorf("agent: node P%d: %w", processor+1, err)
			}
			applied = m.Rates.Period
			if m.Rates.Period >= next {
				// The period we reported (or a later one, if the server
				// stepped past us) is actuated; move on.
				if opt.latencySink != nil {
					opt.latencySink(next, time.Since(sentAt)) //eucon:wallclock-ok operational latency metric, never feeds control output
				}
				next = m.Rates.Period + 1
				break
			}
			// An older period's rates (e.g. the join-ack raced a broadcast):
			// applied above, keep waiting for ours.
		}
	}
}

// runFree paces periods with the agent's clock and applies rates as they
// arrive. The pacing clock is injectable (WithClock), so a skewed or
// drifting agent genuinely samples faster or slower than the fleet — the
// condition the server's period timeout and liveness sweep must absorb.
//
// The period index is the server's logical clock, not the agent's: every
// fresh rates frame resynchronizes the report counter to the period the
// server actuates next, exactly as in lockstep. Without that, an agent
// whose first tick lands one period out of phase stays out of phase for
// the whole run — every report it ever sends arrives stale and the
// controller steers its processor on hold-last substitutes alone. The
// agent's physical clock only paces sampling: skew and drift change how
// often it reports, never which period it believes the fleet is in
// (between frames — through a partition, say — the counter free-runs on
// the local clock and the resync snaps it back on the first frame after
// the heal).
func runFree(ctx context.Context, conn *lane.Conn, queue *lane.SendQueue, opt *Options,
	processor, next int, measure func(int) float64, rates []float64) error {
	var mu sync.Mutex // guards rates/next/sent between the pacer loop and the reader
	// applied guards against duplicated or reordered rate frames regressing
	// the plant to a stale period's rates.
	applied := next - 1
	// sentPeriod/sentAt remember the newest report so the reader can
	// measure report-sent → rates-received latency when the matching
	// period's rates land.
	sentPeriod := -1
	var sentAt time.Time
	done := make(chan error, 1)
	go func() {
		var m lane.Message
		for {
			if err := conn.ReceiveInto(&m, opt.membershipTimeout); err != nil {
				select {
				case done <- err:
				case <-ctx.Done():
				}
				return
			}
			switch m.Type {
			case lane.TypeShutdown:
				select {
				case done <- nil:
				case <-ctx.Done():
				}
				return
			case lane.TypeRates:
				mu.Lock()
				var err error
				if m.Rates.Period >= applied {
					err = applyRates(rates, &m.Rates)
					applied = m.Rates.Period
					// Rates stamped k are broadcast by the step that closed
					// period k; the server is collecting k+1 now.
					next = m.Rates.Period + 1
					if opt.latencySink != nil && sentPeriod >= 0 && m.Rates.Period >= sentPeriod {
						opt.latencySink(sentPeriod, time.Since(sentAt)) //eucon:wallclock-ok operational latency metric, never feeds control output
						sentPeriod = -1
					}
				}
				mu.Unlock()
				if err != nil {
					select {
					case done <- err:
					case <-ctx.Done():
					}
					return
				}
			case lane.TypeHello, lane.TypeUtilizationBatch:
				select {
				case done <- fmt.Errorf("agent: node P%d got unexpected %s", processor+1, m.Type):
				case <-ctx.Done():
				}
				return
			}
		}
	}()

	for {
		select {
		case <-ctx.Done():
			return nil
		case err := <-done:
			if err != nil {
				return fmt.Errorf("agent: node P%d: %w", processor+1, err)
			}
			return nil
		case <-opt.clock.After(opt.interval):
			mu.Lock()
			k := next
			u := measure(k)
			sentPeriod = k
			sentAt = time.Now() //eucon:wallclock-ok operational latency metric, never feeds control output
			next++
			mu.Unlock()
			if err := queue.EnqueueSample(processor, k, u); err != nil {
				return err
			}
		}
	}
}
