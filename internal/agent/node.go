package agent

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/rtsyslab/eucon/internal/lane"
	"github.com/rtsyslab/eucon/internal/task"
)

// RunAgent runs one node agent against a Server: it dials addr, joins
// with a hello for the given processor, and participates in the feedback
// loop until the server says shutdown, the lane fails, or ctx is
// canceled (which returns nil — cancellation is the normal way to stop
// an agent; harnesses use it to inject crashes).
//
// The agent hosts the synthetic plant of this package: utilization is
// Σ c_i·r_i over the subtasks hosted on its processor, scaled by the ETF
// schedule and optional jitter. Outbound frames flow through a bounded
// send queue, so a stalled lane sheds stale reports instead of blocking
// the measurement loop; rate frames are applied as they arrive (sparse
// frames update only the hosted tasks).
//
// By default the agent runs in lockstep: it reports period k and waits
// for the server's period-k rates before sampling period k+1, as fast as
// the lanes allow. WithInterval(d) switches to free-running: a ticker
// paces the periods and rates apply asynchronously. WithLatencySink
// observes the end-to-end sampling-period latency (report sent → rates
// received) in lockstep mode.
func RunAgent(ctx context.Context, sys *task.System, processor int, addr string, opts ...Option) error {
	if sys == nil {
		return errors.New("agent: system is nil")
	}
	if processor < 0 || processor >= sys.Processors {
		return fmt.Errorf("agent: processor %d out of range", processor)
	}
	opt := newOptions(opts)

	conn, err := lane.DialContext(ctx, addr, opt.ioTimeout, lane.WithConnCodec(opt.codec))
	if err != nil {
		return err
	}
	defer func() { _ = conn.Close() }()

	// Outbound frames go through the bounded queue; reports additionally
	// pass the fault plan (when configured) and the retry policy. A report
	// still lost after retries is abandoned without killing the queue —
	// the server degrades around it with hold-last substitution.
	var reports lane.Sender = conn
	if opt.sendFaults != nil {
		reports = lane.NewFaultConn(conn, opt.sendFaults)
	}
	queue := lane.NewSendQueue(func(ctx context.Context, m *lane.Message) error {
		if m.Type != lane.TypeUtilizationBatch {
			return conn.Send(m, opt.ioTimeout)
		}
		err := lane.SendRetry(ctx, reports, m, opt.ioTimeout, opt.retry)
		if errors.Is(err, lane.ErrInjectedDrop) {
			return nil
		}
		return err
	}, opt.queueDepth)
	qctx, stopQueue := context.WithCancel(ctx)
	defer stopQueue()
	queue.Start(qctx)

	if err := queue.EnqueueHello(processor, opt.nodeName); err != nil {
		return err
	}

	// The plant.
	rng := rand.New(rand.NewSource(opt.seed))
	costs := hostedCosts(sys, processor)
	rates := sys.InitialRates()
	measure := func(k int) float64 {
		u := 0.0
		for i := range costs {
			u += costs[i] * rates[i]
		}
		u *= opt.etf.At(float64(k) * opt.samplingPeriod)
		if opt.jitter > 0 {
			u *= 1 + opt.jitter*(2*rng.Float64()-1)
		}
		if u > 1 {
			u = 1
		}
		return u
	}

	// Join-ack: the first rates frame carries the hosted-task rates and
	// the period to report first.
	var m lane.Message
	if err := conn.ReceiveInto(&m, opt.ioTimeout); err != nil {
		return fmt.Errorf("agent: node P%d join ack: %w", processor+1, err)
	}
	if m.Type == lane.TypeShutdown {
		return nil
	}
	if m.Type != lane.TypeRates {
		return fmt.Errorf("agent: node P%d joined but got %s, want rates", processor+1, m.Type)
	}
	if err := applyRates(rates, &m.Rates); err != nil {
		return fmt.Errorf("agent: node P%d: %w", processor+1, err)
	}
	next := m.Rates.Period

	if opt.interval > 0 {
		return runFree(ctx, conn, queue, &opt, processor, next, measure, rates)
	}
	return runLockstep(ctx, conn, queue, &opt, processor, next, measure, rates)
}

// runLockstep reports period k, waits for the server's period-k rates,
// then advances — the paper's sequence, as fast as the lanes allow.
func runLockstep(ctx context.Context, conn *lane.Conn, queue *lane.SendQueue, opt *Options,
	processor, next int, measure func(int) float64, rates []float64) error {
	var m lane.Message
	for {
		if err := ctx.Err(); err != nil {
			return nil // canceled: the harness's way to crash an agent
		}
		if err := queue.EnqueueSample(processor, next, measure(next)); err != nil {
			return err
		}
		sentAt := time.Now() //eucon:wallclock-ok operational latency metric, never feeds control output
		for {
			if err := conn.ReceiveInto(&m, opt.ioTimeout); err != nil {
				if ctx.Err() != nil {
					return nil
				}
				return fmt.Errorf("agent: node P%d: %w", processor+1, err)
			}
			if m.Type == lane.TypeShutdown {
				return nil
			}
			if m.Type != lane.TypeRates {
				return fmt.Errorf("agent: node P%d got unexpected %s", processor+1, m.Type)
			}
			if err := applyRates(rates, &m.Rates); err != nil {
				return fmt.Errorf("agent: node P%d: %w", processor+1, err)
			}
			if m.Rates.Period >= next {
				// The period we reported (or a later one, if the server
				// stepped past us) is actuated; move on.
				if opt.latencySink != nil {
					opt.latencySink(next, time.Since(sentAt)) //eucon:wallclock-ok operational latency metric, never feeds control output
				}
				next = m.Rates.Period + 1
				break
			}
			// An older period's rates (e.g. the join-ack raced a broadcast):
			// applied above, keep waiting for ours.
		}
	}
}

// runFree paces periods with a ticker and applies rates as they arrive.
func runFree(ctx context.Context, conn *lane.Conn, queue *lane.SendQueue, opt *Options,
	processor, next int, measure func(int) float64, rates []float64) error {
	var mu sync.Mutex // guards rates between the ticker loop and the reader
	done := make(chan error, 1)
	go func() {
		var m lane.Message
		for {
			if err := conn.ReceiveInto(&m, opt.membershipTimeout); err != nil {
				select {
				case done <- err:
				case <-ctx.Done():
				}
				return
			}
			switch m.Type {
			case lane.TypeShutdown:
				select {
				case done <- nil:
				case <-ctx.Done():
				}
				return
			case lane.TypeRates:
				mu.Lock()
				err := applyRates(rates, &m.Rates)
				mu.Unlock()
				if err != nil {
					select {
					case done <- err:
					case <-ctx.Done():
					}
					return
				}
			case lane.TypeHello, lane.TypeUtilizationBatch:
				select {
				case done <- fmt.Errorf("agent: node P%d got unexpected %s", processor+1, m.Type):
				case <-ctx.Done():
				}
				return
			}
		}
	}()

	ticker := time.NewTicker(opt.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case err := <-done:
			if err != nil {
				return fmt.Errorf("agent: node P%d: %w", processor+1, err)
			}
			return nil
		case <-ticker.C:
			mu.Lock()
			u := measure(next)
			mu.Unlock()
			if err := queue.EnqueueSample(processor, next, u); err != nil {
				return err
			}
			next++
		}
	}
}
