package agent

import (
	"context"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/rtsyslab/eucon/internal/core"
	"github.com/rtsyslab/eucon/internal/lane"
	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/task"
	"github.com/rtsyslab/eucon/internal/workload"
)

// startCluster launches a coordinator plus one node per processor and
// returns the coordinator result.
func startCluster(t *testing.T, sys *task.System, ctrl sim.RateController, periods int, etf sim.ETFSchedule) (*Result, error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		System:     sys,
		Controller: ctrl,
		Listener:   ln,
		Periods:    periods,
		Timeout:    5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	nodeErrs := make([]error, sys.Processors)
	for p := 0; p < sys.Processors; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			nodeErrs[p] = RunNode(ctx, NodeConfig{
				Processor:      p,
				System:         sys,
				Addr:           ln.Addr().String(),
				Name:           "node",
				ETF:            etf,
				SamplingPeriod: workload.SamplingPeriod,
				Seed:           int64(p + 1),
				Timeout:        5 * time.Second,
			})
		}()
	}
	res, runErr := coord.Run(ctx)
	wg.Wait()
	for p, err := range nodeErrs {
		if err != nil {
			t.Errorf("node P%d: %v", p+1, err)
		}
	}
	return res, runErr
}

func TestClusterConvergesToSetPoints(t *testing.T) {
	sys := workload.Simple()
	ctrl, err := core.New(sys, nil, workload.SimpleController())
	if err != nil {
		t.Fatal(err)
	}
	res, err := startCluster(t, sys, ctrl, 80, sim.ConstantETF(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Utilization) != 80 {
		t.Fatalf("got %d periods, want 80", len(res.Utilization))
	}
	// Tail mean at the set point on both processors despite etf = 0.5.
	for p := 0; p < 2; p++ {
		var sum float64
		for k := 40; k < 80; k++ {
			sum += res.Utilization[k][p]
		}
		mean := sum / 40
		if math.Abs(mean-0.828) > 0.02 {
			t.Errorf("P%d tail mean over lanes = %v, want ≈ 0.828", p+1, mean)
		}
	}
}

func TestClusterMediumWithJitter(t *testing.T) {
	sys := workload.Medium()
	ctrl, err := core.New(sys, nil, workload.MediumController())
	if err != nil {
		t.Fatal(err)
	}
	res, err := startCluster(t, sys, ctrl, 60, sim.ConstantETF(1))
	if err != nil {
		t.Fatal(err)
	}
	b := sys.DefaultSetPoints()
	for p := 0; p < 4; p++ {
		var sum float64
		for k := 30; k < 60; k++ {
			sum += res.Utilization[k][p]
		}
		mean := sum / 30
		if math.Abs(mean-b[p]) > 0.03 {
			t.Errorf("P%d tail mean = %v, want ≈ %v", p+1, mean, b[p])
		}
	}
}

func TestCoordinatorValidation(t *testing.T) {
	sys := workload.Simple()
	ctrl, err := core.New(sys, nil, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	tests := []struct {
		name string
		cfg  CoordinatorConfig
	}{
		{"nil system", CoordinatorConfig{Controller: ctrl, Listener: ln, Periods: 1}},
		{"nil controller", CoordinatorConfig{System: sys, Listener: ln, Periods: 1}},
		{"nil listener", CoordinatorConfig{System: sys, Controller: ctrl, Periods: 1}},
		{"zero periods", CoordinatorConfig{System: sys, Controller: ctrl, Listener: ln}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewCoordinator(tc.cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestCoordinatorRejectsBadHello(t *testing.T) {
	sys := workload.Simple()
	ctrl, err := core.New(sys, nil, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		System: sys, Controller: ctrl, Listener: ln, Periods: 5, Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := coord.Run(context.Background())
		done <- err
	}()
	conn, err := lane.Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	// Out-of-range processor index.
	if err := conn.Send(&lane.Message{Type: lane.TypeHello, Hello: lane.Hello{Processor: 99}}, time.Second); err != nil {
		t.Fatal(err)
	}
	runErr := <-done
	if runErr == nil || !strings.Contains(runErr.Error(), "processor 99") {
		t.Fatalf("Run error = %v, want out-of-range hello rejection", runErr)
	}
}

func TestCoordinatorDetectsNodeFailure(t *testing.T) {
	sys := workload.Simple()
	ctrl, err := core.New(sys, nil, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		System: sys, Controller: ctrl, Listener: ln, Periods: 100, Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := coord.Run(context.Background())
		done <- err
	}()
	// One healthy node, one that dies after hello.
	ctx := context.Background()
	go func() {
		_ = RunNode(ctx, NodeConfig{
			Processor: 0, System: sys, Addr: ln.Addr().String(),
			ETF: sim.ConstantETF(1), Timeout: 2 * time.Second,
		})
	}()
	dying, err := lane.Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := dying.Send(&lane.Message{Type: lane.TypeHello, Hello: lane.Hello{Processor: 1}}, time.Second); err != nil {
		t.Fatal(err)
	}
	_ = dying.Close() // die before reporting any utilization

	runErr := <-done
	if runErr == nil {
		t.Fatal("coordinator did not report the dead node")
	}
}

func TestRunNodeValidation(t *testing.T) {
	ctx := context.Background()
	if err := RunNode(ctx, NodeConfig{Processor: 0}); err == nil {
		t.Error("nil system accepted")
	}
	sys := workload.Simple()
	if err := RunNode(ctx, NodeConfig{Processor: 9, System: sys}); err == nil {
		t.Error("out-of-range processor accepted")
	}
	// Unreachable coordinator.
	if err := RunNode(ctx, NodeConfig{Processor: 0, System: sys, Addr: "127.0.0.1:1", Timeout: 200 * time.Millisecond}); err == nil {
		t.Error("dial to closed port succeeded")
	}
}
