package agent

import (
	"time"

	"github.com/rtsyslab/eucon/internal/lane"
	"github.com/rtsyslab/eucon/internal/sim"
)

// DefaultMembershipTimeout evicts a member that has been silent this long.
const DefaultMembershipTimeout = 30 * time.Second

// DefaultPeriodTimeout bounds how long the controller waits for the
// current period's reports before stepping with what it has.
const DefaultPeriodTimeout = 2 * time.Second

// Options collects the tunables shared by Server and RunAgent, set
// through functional options mirroring core.NewControllerOpts. The zero
// value (normalized by newOptions) is a working configuration.
type Options struct {
	codec             lane.Codec
	queueDepth        int
	membershipTimeout time.Duration
	periods           int
	ioTimeout         time.Duration
	periodTimeout     time.Duration
	interval          time.Duration
	trace             bool

	etf            sim.ETFSchedule
	samplingPeriod float64
	jitter         float64
	seed           int64
	nodeName       string
	retry          lane.RetryPolicy
	sendFaults     lane.Plan
	latencySink    func(period int, rtt time.Duration)
	clock          Clock
	peerFaults     func(processor int) lane.Plan
}

// Option configures a Server or a node agent.
type Option func(*Options)

// newOptions applies opts over the defaults.
func newOptions(opts []Option) Options {
	o := Options{
		codec:             lane.Binary,
		queueDepth:        lane.DefaultQueueDepth,
		membershipTimeout: DefaultMembershipTimeout,
		ioTimeout:         DefaultTimeout,
		periodTimeout:     DefaultPeriodTimeout,
		samplingPeriod:    1,
		clock:             WallClock{},
	}
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	if o.retry.Seed == 0 {
		// Distinct per-agent retry seeds desynchronize backoff: a fleet
		// rejoining in unison after a healed partition must not retry in
		// unison too.
		o.retry.Seed = o.seed
	}
	return o
}

// WithCodec selects the wire codec for outgoing frames (incoming frames
// are always auto-detected, so mixed-codec fleets interoperate). The
// default is lane.Binary; lane.JSONv0 keeps the v0 JSON wire format.
func WithCodec(c lane.Codec) Option {
	return func(o *Options) {
		if c != nil {
			o.codec = c
		}
	}
}

// WithSendQueue bounds each peer's outbound send queue at depth frames
// (backpressure sheds the oldest utilization reports; rate commands are
// never dropped). Zero or negative selects lane.DefaultQueueDepth.
func WithSendQueue(depth int) Option {
	return func(o *Options) { o.queueDepth = depth }
}

// WithMembershipTimeout evicts members silent for longer than d. Zero or
// negative selects DefaultMembershipTimeout.
func WithMembershipTimeout(d time.Duration) Option {
	return func(o *Options) {
		if d > 0 {
			o.membershipTimeout = d
		} else {
			o.membershipTimeout = DefaultMembershipTimeout
		}
	}
}

// WithPeriods bounds a Server run at n sampling periods; zero or negative
// runs until the context is canceled.
func WithPeriods(n int) Option {
	return func(o *Options) { o.periods = n }
}

// WithIOTimeout bounds each lane send/receive; zero or negative selects
// DefaultTimeout.
func WithIOTimeout(d time.Duration) Option {
	return func(o *Options) {
		if d > 0 {
			o.ioTimeout = d
		} else {
			o.ioTimeout = DefaultTimeout
		}
	}
}

// WithPeriodTimeout bounds how long the Server waits for the current
// period's reports before stepping with NaN substitutes for the missing
// members; zero or negative selects DefaultPeriodTimeout.
func WithPeriodTimeout(d time.Duration) Option {
	return func(o *Options) {
		if d > 0 {
			o.periodTimeout = d
		} else {
			o.periodTimeout = DefaultPeriodTimeout
		}
	}
}

// WithInterval sets the real-time duration of one sampling period. Zero
// (the default) runs in lockstep: the Server steps as soon as every
// member has reported, and agents wait for each period's rates before
// sampling again — as fast as the lanes allow.
func WithInterval(d time.Duration) Option {
	return func(o *Options) { o.interval = d }
}

// WithTrace records the full per-period utilization and rate history in
// ServerResult (off by default: a 1000-processor farm run would retain
// megabytes of history the harness only needs in aggregate).
func WithTrace(enabled bool) Option {
	return func(o *Options) { o.trace = enabled }
}

// WithETF sets a node agent's execution-time-factor schedule for the
// synthetic plant.
func WithETF(s sim.ETFSchedule) Option {
	return func(o *Options) { o.etf = s }
}

// WithSamplingPeriod sets the plant-time units per sampling period used
// for ETF schedule lookup; zero or negative selects 1.
func WithSamplingPeriod(ts float64) Option {
	return func(o *Options) {
		if ts > 0 {
			o.samplingPeriod = ts
		} else {
			o.samplingPeriod = 1
		}
	}
}

// WithJitter adds uniform ±j relative noise to a node agent's measured
// utilization.
func WithJitter(j float64) Option {
	return func(o *Options) { o.jitter = j }
}

// WithSeed seeds a node agent's measurement noise.
func WithSeed(seed int64) Option {
	return func(o *Options) { o.seed = seed }
}

// WithNodeName labels a node agent in its hello message.
func WithNodeName(name string) Option {
	return func(o *Options) { o.nodeName = name }
}

// WithRetry sets the resend policy for a node agent's utilization
// reports over a faulty transport.
func WithRetry(p lane.RetryPolicy) Option {
	return func(o *Options) { o.retry = p }
}

// WithSendFaults injects transport faults (drops, delays — e.g.
// fault.TransportPlan) into a node agent's outbound reports. A report
// still lost after retries is abandoned; the Server substitutes NaN and
// holds the last sample.
func WithSendFaults(p lane.Plan) Option {
	return func(o *Options) { o.sendFaults = p }
}

// WithClock injects the clock pacing a free-running node agent's sampling
// periods (default: the wall clock). Skewed or drifting clocks
// (NewSkewedClock) let a harness prove the server's liveness sweep and
// hold-last substitution survive agents that disagree about time by whole
// periods. The server itself always keeps wall time — it is the fleet's
// time reference.
func WithClock(c Clock) Option {
	return func(o *Options) {
		if c != nil {
			o.clock = c
		}
	}
}

// WithTransportFaults injects per-peer transport faults into the Server's
// outbound rate lanes: plan(p) returns the fault plan for processor p's
// lane (nil for a clean lane). Dropped rate frames exercise the agents'
// stale-frame tolerance and the delta codec's resync path; duplicates and
// reorders exercise frame idempotence. Derive per-peer plans from one
// template with fault.TransportPlan.Reseed so peers' loss patterns
// decorrelate.
func WithTransportFaults(plan func(processor int) lane.Plan) Option {
	return func(o *Options) { o.peerFaults = plan }
}

// WithLatencySink streams a node agent's end-to-end sampling-period
// latencies (report sent → rates received) to fn. fn is called from the
// agent's loop goroutine and must be fast or thread-safe as the caller
// requires.
func WithLatencySink(fn func(period int, rtt time.Duration)) Option {
	return func(o *Options) { o.latencySink = fn }
}
