package agent

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/rtsyslab/eucon/internal/fault"
	"github.com/rtsyslab/eucon/internal/lane"
	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/workload"
)

// TestSkewedClockSemantics pins the clock model: Now applies offset plus
// accumulated drift, and After scales the wait so a fast clock genuinely
// ticks faster than wall time.
func TestSkewedClockSemantics(t *testing.T) {
	c := NewSkewedClock(time.Hour, 0)
	if off := time.Until(c.Now()); off < 59*time.Minute || off > 61*time.Minute { //eucon:wallclock-ok comparing the skewed clock against the wall is the point
		t.Fatalf("offset clock reads %v ahead, want ≈ 1h", off)
	}
	// A clock running 3× fast (+2.0 drift) fires After(90ms) in ≈ 30ms of
	// wall time. Bounds are loose: scheduling noise must not flake this.
	fast := NewSkewedClock(0, 2.0)
	start := time.Now() //eucon:wallclock-ok measuring real elapsed time of the scaled wait
	<-fast.After(90 * time.Millisecond)
	elapsed := time.Since(start) //eucon:wallclock-ok measuring real elapsed time of the scaled wait
	if elapsed < 10*time.Millisecond || elapsed > 75*time.Millisecond {
		t.Errorf("After(90ms) on a 3x clock took %v of wall time, want ≈ 30ms", elapsed)
	}
	// Drift at or below -1 (a clock running backwards) is clamped, not a
	// divide-by-zero or a negative wait.
	stuck := NewSkewedClock(0, -1)
	start = time.Now() //eucon:wallclock-ok measuring real elapsed time of the scaled wait
	<-stuck.After(5 * time.Millisecond)
	if time.Since(start) > 5*time.Second { //eucon:wallclock-ok measuring real elapsed time of the scaled wait
		t.Error("clamped drift still produced an unbounded wait")
	}
}

// TestAgentRetrySeedDefaultsFromAgentSeed pins the rejoin-storm defense at
// the options layer: distinct agents (distinct noise seeds) must get
// distinct retry-jitter seeds without any explicit WithRetry, so a fleet
// rejoining in the same period spreads its resends. The lane-level spread
// itself is proven in lane's rejoin-storm test.
func TestAgentRetrySeedDefaultsFromAgentSeed(t *testing.T) {
	seen := make(map[time.Duration]int)
	for p := 0; p < 64; p++ {
		o := newOptions([]Option{WithSeed(int64(p + 1))})
		if o.retry.Seed != int64(p+1) {
			t.Fatalf("agent seed %d produced retry seed %d", p+1, o.retry.Seed)
		}
		seen[o.retry.JitteredBackoff(0)]++
	}
	if len(seen) < 60 {
		t.Errorf("64 default-configured agents share %d first backoffs — rejoin storms stay synchronized", 64-len(seen))
	}
	// An explicit retry seed wins over the derived one.
	o := newOptions([]Option{WithSeed(3), WithRetry(lane.RetryPolicy{Seed: 99})})
	if o.retry.Seed != 99 {
		t.Fatalf("explicit retry seed overridden: got %d", o.retry.Seed)
	}
}

// TestServerV2CodecNegotiation drives the hello handshake over a raw lane:
// a peer whose hello arrives in binary v2 must be answered in v2 (the
// server flips that lane's outbound codec), while a v1 peer keeps v1 —
// negotiation is per lane, keyed on the hello frame's version byte.
func TestServerV2CodecNegotiation(t *testing.T) {
	sys := workload.Simple()
	srv, addr, done := startServer(t, sys, simpleController(t, sys),
		WithPeriodTimeout(100*time.Millisecond))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		res, err := srv.Run(ctx)
		done <- serverOutcome{res, err}
	}()

	for _, tc := range []struct {
		name  string
		codec lane.Codec
		proc  int
		want  byte
	}{
		{"v2-hello-gets-v2-ack", lane.BinaryV2, 0, lane.FrameVersionBinaryV2},
		{"v1-hello-gets-v1-ack", lane.Binary, 1, lane.FrameVersionBinary},
	} {
		t.Run(tc.name, func(t *testing.T) {
			conn, err := lane.Dial(addr, time.Second, lane.WithConnCodec(tc.codec))
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = conn.Close() }()
			hello := &lane.Message{Type: lane.TypeHello, Hello: lane.Hello{Processor: tc.proc, Node: tc.name}}
			if err := conn.Send(hello, time.Second); err != nil {
				t.Fatal(err)
			}
			ack, err := conn.Receive(2 * time.Second)
			if err != nil || ack.Type != lane.TypeRates {
				t.Fatalf("join ack = %+v, %v; want rates", ack, err)
			}
			if got := conn.LastFrameVersion(); got != tc.want {
				t.Fatalf("ack frame version = 0x%02x, want 0x%02x", got, tc.want)
			}
		})
	}
	cancel()
	<-done
}

// TestServerV2DeltaConvergesUnderDupAndReorder is the delta-compaction
// end-to-end check: a fully v2 fleet converges to the set points while the
// server's outbound rate lanes duplicate and reorder frames and the
// agents' reports cross a lossy plan. Stale-frame guards make duplicated
// and displaced rate frames idempotent; if delta subsetting desynchronized
// agent state, the plant would actuate wrong rates and the tail would miss
// the set points.
func TestServerV2DeltaConvergesUnderDupAndReorder(t *testing.T) {
	sys := workload.Simple()
	template := fault.TransportPlan{DupProb: 0.15, ReorderProb: 0.08, Seed: 11}
	srv, addr, done := startServer(t, sys, simpleController(t, sys),
		WithPeriods(80), WithTrace(true), WithPeriodTimeout(150*time.Millisecond),
		WithCodec(lane.BinaryV2),
		WithTransportFaults(func(p int) lane.Plan { return template.Reseed(int64(2*p + 1)) }))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		res, err := srv.Run(ctx)
		done <- serverOutcome{res, err}
	}()
	var wg sync.WaitGroup
	for p := 0; p < sys.Processors; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := RunAgent(ctx, sys, p, addr,
				WithETF(sim.ConstantETF(1)),
				WithCodec(lane.BinaryV2),
				WithSeed(int64(p+1)),
				WithSendFaults(fault.TransportPlan{DropProb: 0.05, Seed: 1}.Reseed(int64(2*p))),
				WithRetry(lane.RetryPolicy{Attempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}))
			if err != nil {
				t.Errorf("agent P%d: %v", p+1, err)
			}
		}()
	}
	out := <-done
	wg.Wait()
	if out.err != nil {
		t.Fatal(out.err)
	}
	res := out.res
	if res.Periods != 80 {
		t.Fatalf("Periods = %d, want 80", res.Periods)
	}
	if res.ControllerErrors != 0 {
		t.Fatalf("ControllerErrors = %d, want 0", res.ControllerErrors)
	}
	sp := simpleController(t, sys).SetPoints()
	for p := 0; p < sys.Processors; p++ {
		var sum float64
		n := 0
		for k := 40; k < 80; k++ {
			if u := res.Utilization[k][p]; !math.IsNaN(u) {
				sum += u
				n++
			}
		}
		if n == 0 {
			t.Fatalf("P%d: every tail sample missing", p+1)
		}
		if mean := sum / float64(n); math.Abs(mean-sp[p]) > 0.05 {
			t.Errorf("P%d tail mean %.4f under dup/reorder, want ≈ %.4f", p+1, mean, sp[p])
		}
	}
}

// TestServerMixedCodecFleetConverges runs one v2 agent, one v1 agent, and
// the v1 default on the server: per-frame auto-detection plus per-lane
// negotiation must let the codecs interleave on one fleet with no loss of
// control quality.
func TestServerMixedCodecFleetConverges(t *testing.T) {
	sys := workload.Simple()
	srv, addr, done := startServer(t, sys, simpleController(t, sys),
		WithPeriods(60), WithTrace(true), WithPeriodTimeout(5*time.Second))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		res, err := srv.Run(ctx)
		done <- serverOutcome{res, err}
	}()
	codecs := []lane.Codec{lane.BinaryV2, lane.JSONv0}
	var wg sync.WaitGroup
	for p := 0; p < sys.Processors; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := RunAgent(ctx, sys, p, addr, WithETF(sim.ConstantETF(1)), WithCodec(codecs[p%len(codecs)])); err != nil {
				t.Errorf("agent P%d: %v", p+1, err)
			}
		}()
	}
	out := <-done
	wg.Wait()
	if out.err != nil {
		t.Fatal(out.err)
	}
	res := out.res
	if res.Periods != 60 || res.Joins != sys.Processors {
		t.Fatalf("periods=%d joins=%d, want 60 and %d", res.Periods, res.Joins, sys.Processors)
	}
	sp := simpleController(t, sys).SetPoints()
	final := res.Utilization[len(res.Utilization)-1]
	for p, v := range final {
		if math.Abs(v-sp[p]) > 0.05 {
			t.Errorf("u(P%d) converged to %.4f, want %.4f ± 0.05", p+1, v, sp[p])
		}
	}
}

// TestServerToleratesSkewedFreeRunningAgents proves the liveness sweep and
// hold-last substitution survive agents whose clocks disagree with the
// server's by whole periods: one agent samples 40% fast, the other 30%
// slow, with opposite constant offsets. The run must complete its period
// budget with both members alive at the end — no eviction, no controller
// error — while phase misalignment is absorbed as missed/stale reports.
func TestServerToleratesSkewedFreeRunningAgents(t *testing.T) {
	sys := workload.Simple()
	const interval = 5 * time.Millisecond
	srv, addr, done := startServer(t, sys, simpleController(t, sys),
		WithPeriods(60), WithInterval(interval),
		WithMembershipTimeout(2*time.Second), WithPeriodTimeout(100*time.Millisecond))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		res, err := srv.Run(ctx)
		done <- serverOutcome{res, err}
	}()
	clocks := []Clock{
		NewSkewedClock(interval, 0.4),   // one period ahead, 40% fast
		NewSkewedClock(-interval, -0.3), // one period behind, 30% slow
	}
	var wg sync.WaitGroup
	for p := 0; p < sys.Processors; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := RunAgent(ctx, sys, p, addr,
				WithETF(sim.ConstantETF(1)), WithInterval(interval), WithClock(clocks[p]))
			if err != nil {
				t.Errorf("agent P%d: %v", p+1, err)
			}
		}()
	}
	out := <-done
	wg.Wait()
	if out.err != nil {
		t.Fatal(out.err)
	}
	res := out.res
	if res.Periods != 60 {
		t.Fatalf("Periods = %d, want 60", res.Periods)
	}
	if res.Joins != 2 || res.Crashes != 0 || res.LiveAtEnd != 2 {
		t.Fatalf("membership: joins=%d crashes=%d live=%d — skew must not evict or crash members", res.Joins, res.Crashes, res.LiveAtEnd)
	}
	if res.ControllerErrors != 0 {
		t.Fatalf("ControllerErrors = %d, want 0", res.ControllerErrors)
	}
	t.Logf("skewed fleet: missed=%d stale=%d (phase misalignment absorbed by hold-last)", res.MissedReports, res.StaleSamples)
}
