package agent

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rtsyslab/eucon/internal/lane"
	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/task"
)

// eventKind discriminates the reader-to-control-loop events.
//
//eucon:exhaustive
type eventKind uint8

const (
	// evJoin announces a lane that completed its hello.
	evJoin eventKind = 1 + iota
	// evReport carries a utilization batch from a member.
	evReport
	// evLeave announces a lane that ended (cleanly or by failure).
	evLeave
)

// srvEvent is one reader-to-control-loop event. The conn identifies the
// lane in every kind, so a stale event from a replaced connection can be
// told apart from the current member.
type srvEvent struct {
	kind  eventKind
	conn  *lane.Conn
	hello lane.Hello
	v2    bool                  // evJoin: the hello arrived in binary v2
	batch lane.UtilizationBatch // samples are a private copy
	err   error                 // evLeave: nil for a clean shutdown notice
}

// member is the control loop's record of one connected node agent. Only
// the control goroutine touches it.
type member struct {
	conn  *lane.Conn
	queue *lane.SendQueue
	tasks []int32 // hosted task indices, immutable once built
}

// deltaKeyframeEvery bounds how many delta-compacted rate frames a v2 lane
// sends between full frames. A lost or reordered delta can leave the agent
// holding stale rates for the tasks that frame touched; the next keyframe
// restores every hosted task, so the divergence window is at most this
// many periods.
const deltaKeyframeEvery = 16

// rateDelta compacts successive rate frames for one binary-v2 member:
// values unchanged since the previous frame handed to the transport are
// omitted (most rates repeat period to period once the fleet converges, so
// the common frame shrinks to a few bytes), with periodic keyframes and an
// explicit resync after an injected drop. Owned by the member's queue
// writer goroutine; never shared.
type rateDelta struct {
	tasks    []int32   // the member's hosted tasks, immutable, ascending
	last     []float64 // values as of the last frame handed to the transport
	haveLast bool
	sinceKey int
	resync   bool
	tbuf     []int32
	vbuf     []float64
}

func newRateDelta(tasks []int32) *rateDelta {
	return &rateDelta{
		tasks: tasks,
		last:  make([]float64, len(tasks)),
		tbuf:  make([]int32, 0, len(tasks)), // non-nil: an empty delta is a sparse frame, not a full vector
		vbuf:  make([]float64, 0, len(tasks)),
	}
}

// shrink rewrites m in place to the changed-value subset when eligible and
// returns a restore function putting the original slices back (the queue
// recycles them after the send). The frame's values are recorded
// optimistically; a send that turns out dropped must flag resync so the
// next frame is full.
func (d *rateDelta) shrink(m *lane.Message) func() {
	vals := m.Rates.Values
	if !d.haveLast || d.resync || d.sinceKey >= deltaKeyframeEvery || len(vals) != len(d.tasks) {
		copy(d.last, vals)
		d.haveLast = len(vals) == len(d.tasks)
		d.resync = false
		d.sinceKey = 0
		return func() {}
	}
	d.sinceKey++
	d.tbuf = d.tbuf[:0]
	d.vbuf = d.vbuf[:0]
	for i, t := range d.tasks {
		if vals[i] != d.last[i] { //eucon:float-exact delta keys on bit-identical repetition; any numeric change must be resent
			d.tbuf = append(d.tbuf, t)
			d.vbuf = append(d.vbuf, vals[i])
			d.last[i] = vals[i]
		}
	}
	origT, origV := m.Rates.Tasks, m.Rates.Values
	m.Rates.Tasks, m.Rates.Values = d.tbuf, d.vbuf
	return func() { m.Rates.Tasks, m.Rates.Values = origT, origV }
}

// sendFuncFor builds a member's queue SendFunc: plain sends on a clean
// lane; retry plus tolerated-drop accounting when a per-peer fault plan is
// installed; delta compaction of rate frames when the peer negotiated
// binary v2. The function runs serially on the member's queue writer
// goroutine.
func (s *Server) sendFuncFor(sender lane.Sender, faulty, v2 bool, p int, tasks []int32, injected *atomic.Uint64) lane.SendFunc {
	retry := s.opt.retry
	if retry.Seed == 0 {
		retry.Seed = int64(p) + 1
	} else {
		// Decorrelate per-peer backoff jitter from the shared policy seed.
		retry.Seed ^= (int64(p) + 1) * 0x9e3779b9
	}
	var compact *rateDelta
	if v2 {
		compact = newRateDelta(tasks)
	}
	return func(ctx context.Context, m *lane.Message) error {
		if compact != nil && m.Type == lane.TypeRates {
			restore := compact.shrink(m)
			defer restore()
		}
		if !faulty {
			return sender.Send(m, s.opt.ioTimeout)
		}
		err := lane.SendRetry(ctx, sender, m, s.opt.ioTimeout, retry)
		if errors.Is(err, lane.ErrInjectedDrop) {
			// Lost to the fault plan even after retries: tolerated. The
			// agent rides out the missed actuation on its current rates; a
			// v2 lane resynchronizes with a full frame next period.
			injected.Add(1)
			if compact != nil {
				compact.resync = true
			}
			return nil
		}
		return err
	}
}

// ServerResult aggregates a Server run.
type ServerResult struct {
	// Periods is how many sampling periods were stepped.
	Periods int
	// Utilization[k][p] and Rates[k] record the full history, only when
	// WithTrace(true) is set. A missed member-period appears as its
	// hold-last substitute — the value actually fed to the controller.
	Utilization [][]float64
	Rates       [][]float64
	// MissedReports counts member-periods stepped without a fresh report
	// (the hold-last substitute was used).
	MissedReports int
	// StaleSamples counts samples that arrived for an already-stepped
	// period and were discarded from the control input (they still
	// refresh the hold-last value).
	StaleSamples int
	// Joins, Rejoins, Leaves, and Crashes count membership transitions:
	// first-time joins, joins onto a processor slot seen before, clean
	// departures (shutdown notice), and lane failures or silence
	// evictions.
	Joins, Rejoins, Leaves, Crashes int
	// LiveAtEnd is how many members were still connected when the run
	// ended. The membership ledger balances:
	// Joins + Rejoins == Leaves + Crashes + LiveAtEnd.
	LiveAtEnd int
	// ControllerErrors counts periods where the controller's Step failed
	// and the previous rates were held instead.
	ControllerErrors int
	// FramesIn and FramesOut count protocol frames received from and
	// queued to members.
	FramesIn, FramesOut uint64
	// DroppedSamples sums the samples shed by member send queues under
	// backpressure.
	DroppedSamples uint64
	// InjectedDrops counts outbound rate frames discarded by the per-peer
	// transport fault plans (WithTransportFaults) after retries — loss the
	// protocol degraded around rather than a failure.
	InjectedDrops uint64
	// PeerQueues aggregates each processor's outbound queue counters over
	// the run, summed across rejoins of the same slot.
	PeerQueues []lane.QueueStats
}

// Server is the production EUCON controller daemon: the centralized MPC
// loop of the paper's architecture (§4) behind a membership layer, so
// node agents join, leave, crash, and rejoin without a controller
// restart.
//
// Structure: an accept goroutine admits lanes; one reader goroutine per
// lane turns frames into events; a single control goroutine owns all
// membership and control state, steps the controller each sampling
// period, and broadcasts rates through bounded per-member send queues
// (each member receives only the rates of the tasks it hosts). A member
// that misses a period is substituted by its last reported utilization —
// matching the hold-last degradation policy of the simulator — and a
// member silent past the membership timeout is evicted.
type Server struct {
	sys  *task.System
	ctrl sim.Controller
	ln   net.Listener
	opt  Options

	period  atomic.Int64
	events  chan srvEvent
	stopped chan struct{}
	wg      sync.WaitGroup
}

// NewServer validates the pieces and builds a Server listening on ln
// (ownership of ln passes to the Server; Run closes it).
func NewServer(sys *task.System, ctrl sim.Controller, ln net.Listener, opts ...Option) (*Server, error) {
	if sys == nil {
		return nil, errors.New("agent: system is nil")
	}
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("agent: %w", err)
	}
	if ctrl == nil {
		return nil, errors.New("agent: controller is nil")
	}
	if ln == nil {
		return nil, errors.New("agent: listener is nil")
	}
	return &Server{
		sys:     sys,
		ctrl:    ctrl,
		ln:      ln,
		opt:     newOptions(opts),
		events:  make(chan srvEvent, 256),
		stopped: make(chan struct{}),
	}, nil
}

// Period reports the sampling period the control loop is currently
// collecting. Safe from any goroutine; harnesses poll it to watch
// progress.
func (s *Server) Period() int { return int(s.period.Load()) }

// Run drives the daemon until the configured period count is reached or
// ctx is canceled (which is the normal termination when WithPeriods was
// not set — it returns the result without error). All lanes, queues, and
// the listener are released before returning.
func (s *Server) Run(ctx context.Context) (*ServerResult, error) {
	s.wg.Add(1)
	go s.acceptLoop(ctx)

	res, err := s.control(ctx)

	// Stop intake: close the listener, unblock every reader, and release
	// any reader parked on the events channel.
	close(s.stopped)
	_ = s.ln.Close()
	s.wg.Wait()
	return res, err
}

// acceptLoop admits lanes and spawns one reader per connection.
func (s *Server) acceptLoop(ctx context.Context) {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed (shutdown) or broken
		}
		conn := lane.NewConn(nc, lane.WithConnCodec(s.opt.codec))
		s.wg.Add(1)
		go s.serveLane(ctx, conn)
	}
}

// serveLane reads one lane: a hello first, then reports until the lane
// ends. It owns the receive side only; sends to this peer go through the
// member's queue in the control loop.
func (s *Server) serveLane(ctx context.Context, conn *lane.Conn) {
	defer s.wg.Done()
	var m lane.Message
	if err := conn.ReceiveInto(&m, s.opt.ioTimeout); err != nil || m.Type != lane.TypeHello {
		_ = conn.Close()
		return
	}
	// A hello framed in binary v2 advertises that this peer decodes v2:
	// the control loop switches the lane's outbound codec and enables
	// delta-compacted rate frames in response.
	v2 := conn.LastFrameVersion() == lane.FrameVersionBinaryV2
	if !s.post(ctx, srvEvent{kind: evJoin, conn: conn, hello: m.Hello, v2: v2}) {
		_ = conn.Close()
		return
	}
	for {
		// The read deadline doubles as the liveness sweep: a member silent
		// past the membership timeout fails this read and is evicted.
		if err := conn.ReceiveInto(&m, s.opt.membershipTimeout); err != nil {
			s.post(ctx, srvEvent{kind: evLeave, conn: conn, err: err})
			return
		}
		switch m.Type {
		case lane.TypeUtilizationBatch:
			b := m.Batch
			b.Samples = append([]float64(nil), m.Batch.Samples...)
			if !s.post(ctx, srvEvent{kind: evReport, conn: conn, batch: b}) {
				return
			}
		case lane.TypeShutdown:
			s.post(ctx, srvEvent{kind: evLeave, conn: conn})
			return
		case lane.TypeHello, lane.TypeRates:
			s.post(ctx, srvEvent{kind: evLeave, conn: conn,
				err: fmt.Errorf("agent: member sent %s", m.Type)})
			return
		}
	}
}

// post delivers an event unless the server is shutting down.
func (s *Server) post(ctx context.Context, ev srvEvent) bool {
	select {
	case s.events <- ev:
		return true
	case <-s.stopped:
		return false
	case <-ctx.Done():
		return false
	}
}

// control is the single goroutine owning membership and control state.
func (s *Server) control(ctx context.Context) (*ServerResult, error) {
	n := s.sys.Processors
	res := &ServerResult{PeerQueues: make([]lane.QueueStats, n)}
	members := make([]*member, n)
	everJoined := make([]bool, n)
	live := 0
	var injectedDrops atomic.Uint64 // written by member queue goroutines

	rates := s.sys.InitialRates()
	u := make([]float64, n)     // current period's reports
	have := make([]bool, n)     // which members reported this period
	lastU := make([]float64, n) // hold-last substitutes
	reported := 0               // count of have[p] for live members
	if sp := s.ctrl.SetPoints(); sp != nil {
		copy(lastU, sp) // a member that never reports holds its set point
	}

	// In lockstep mode the timer bounds a period; in free-running mode it
	// paces the periods.
	wait := s.opt.periodTimeout
	if s.opt.interval > 0 {
		wait = s.opt.interval
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()

	// retire folds a departing member's queue counters into the result.
	retire := func(p int, mb *member) {
		snap := mb.queue.Snapshot()
		st := &res.PeerQueues[p]
		st.Sent += snap.Sent
		st.DroppedSamples += snap.DroppedSamples
		st.Coalesced += snap.Coalesced
		st.SupersededRates += snap.SupersededRates
		res.DroppedSamples += snap.DroppedSamples
	}

	shutdownAll := func(reason string) {
		res.LiveAtEnd = live
		for p, mb := range members {
			if mb == nil {
				continue
			}
			_ = mb.queue.EnqueueShutdown(reason)
			res.FramesOut++
			mb.queue.Close()
			<-mb.queue.Done()
			retire(p, mb)
			_ = mb.conn.Close()
			members[p] = nil
		}
		res.InjectedDrops = injectedDrops.Load()
	}

	drop := func(p int, crashed bool) {
		mb := members[p]
		members[p] = nil
		if have[p] {
			have[p] = false
			reported--
		}
		live--
		if crashed {
			res.Crashes++
		} else {
			res.Leaves++
		}
		mb.queue.Close()
		retire(p, mb)
		_ = mb.conn.Close()
	}

	step := func() {
		k := int(s.period.Load())
		for p := 0; p < n; p++ {
			if have[p] {
				lastU[p] = u[p]
			} else {
				if members[p] != nil {
					res.MissedReports++
				}
				u[p] = lastU[p]
			}
		}
		if s.opt.trace {
			res.Utilization = append(res.Utilization, append([]float64(nil), u...))
			res.Rates = append(res.Rates, append([]float64(nil), rates...))
		}
		newRates, err := s.ctrl.Step(k, u, rates)
		if err == nil {
			rates = newRates
		} else {
			// Keep rates, matching the simulator's policy.
			res.ControllerErrors++
		}
		for _, mb := range members {
			if mb == nil {
				continue
			}
			if err := mb.queue.EnqueueRates(k, mb.tasks, rates); err == nil {
				res.FramesOut++
			}
		}
		res.Periods++
		s.period.Store(int64(k + 1))
		for p := range have {
			have[p] = false
		}
		reported = 0
	}

	for {
		if s.opt.periods > 0 && res.Periods >= s.opt.periods {
			shutdownAll("run complete")
			return res, nil
		}
		// Lockstep: step the moment every live member has reported.
		if s.opt.interval <= 0 && live > 0 && reported == live {
			step()
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(wait)
			continue
		}

		select {
		case <-ctx.Done():
			shutdownAll("controller stopping")
			if s.opt.periods > 0 {
				return res, fmt.Errorf("agent: server canceled at period %d: %w", s.Period(), ctx.Err())
			}
			return res, nil

		case <-timer.C:
			// Step with what we have; an empty or idle farm just waits.
			if live > 0 && (s.opt.interval > 0 || reported > 0) {
				step()
			}
			timer.Reset(wait)

		case ev := <-s.events:
			switch ev.kind {
			case evJoin:
				p := ev.hello.Processor
				if p < 0 || p >= n {
					_ = ev.conn.Close()
					continue
				}
				if members[p] != nil {
					// A reconnect raced ahead of the old lane's teardown:
					// the newest lane wins.
					drop(p, true)
				}
				mb := &member{
					conn:  ev.conn,
					tasks: hostedTasks(s.sys, p),
				}
				if ev.v2 {
					ev.conn.SetCodec(lane.BinaryV2)
				}
				var sender lane.Sender = ev.conn
				faulty := false
				if s.opt.peerFaults != nil {
					if plan := s.opt.peerFaults(p); plan != nil {
						sender = lane.NewFaultConn(ev.conn, plan)
						faulty = true
					}
				}
				mb.queue = lane.NewSendQueue(
					s.sendFuncFor(sender, faulty, ev.v2, p, mb.tasks, &injectedDrops),
					s.opt.queueDepth)
				mb.queue.Start(ctx)
				members[p] = mb
				live++
				if everJoined[p] {
					res.Rejoins++
				} else {
					everJoined[p] = true
					res.Joins++
				}
				// Join-ack: the current rates for the hosted tasks, stamped
				// with the period to report next.
				if err := mb.queue.EnqueueRates(int(s.period.Load()), mb.tasks, rates); err == nil {
					res.FramesOut++
				}

			case evReport:
				res.FramesIn++
				p := ev.batch.Processor
				if p < 0 || p >= n || members[p] == nil || members[p].conn != ev.conn {
					continue // stale lane or bogus processor
				}
				k := int(s.period.Load())
				for i, v := range ev.batch.Samples {
					q := ev.batch.First + i
					switch {
					case q == k:
						if !have[p] {
							have[p] = true
							reported++
						}
						u[p] = v
					case q < k:
						res.StaleSamples++
						lastU[p] = v // still the freshest value we have
					default:
						// A report from the future means the member's period
						// counter ran ahead (free-running drift); remember the
						// value so the hold-last substitute stays fresh.
						res.StaleSamples++
						lastU[p] = v
					}
				}

			case evLeave:
				p := -1
				for i, mb := range members {
					if mb != nil && mb.conn == ev.conn {
						p = i
						break
					}
				}
				if p < 0 {
					_ = ev.conn.Close()
					continue // already replaced or evicted
				}
				drop(p, ev.err != nil)
			}
		}
	}
}
