package agent

import (
	"context"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/rtsyslab/eucon/internal/core"
	"github.com/rtsyslab/eucon/internal/lane"
	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/task"
	"github.com/rtsyslab/eucon/internal/workload"
)

// startServer builds a Server on an ephemeral loopback listener.
func startServer(t *testing.T, sys *task.System, ctrl sim.Controller, opts ...Option) (*Server, string, chan serverOutcome) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(sys, ctrl, ln, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return srv, ln.Addr().String(), make(chan serverOutcome, 1)
}

type serverOutcome struct {
	res *ServerResult
	err error
}

func simpleController(t *testing.T, sys *task.System) sim.Controller {
	t.Helper()
	ctrl, err := core.New(sys, nil, workload.SimpleController())
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

func TestServerConvergesWithFullFleet(t *testing.T) {
	sys := workload.Simple()
	srv, addr, done := startServer(t, sys, simpleController(t, sys),
		WithPeriods(60), WithTrace(true), WithPeriodTimeout(5*time.Second))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		res, err := srv.Run(ctx)
		done <- serverOutcome{res, err}
	}()
	var wg sync.WaitGroup
	for p := 0; p < sys.Processors; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := RunAgent(ctx, sys, p, addr, WithETF(sim.ConstantETF(1))); err != nil {
				t.Errorf("agent P%d: %v", p+1, err)
			}
		}()
	}
	out := <-done
	wg.Wait()
	if out.err != nil {
		t.Fatal(out.err)
	}
	res := out.res
	if res.Periods != 60 {
		t.Fatalf("Periods = %d, want 60", res.Periods)
	}
	if res.Joins != sys.Processors || res.Crashes != 0 {
		t.Fatalf("membership: %d joins %d crashes, want %d joins 0 crashes", res.Joins, res.Crashes, sys.Processors)
	}
	// The MPC loop must steer utilization to the set points.
	sp := simpleController(t, sys).SetPoints()
	final := res.Utilization[len(res.Utilization)-1]
	for p, v := range final {
		if math.Abs(v-sp[p]) > 0.05 {
			t.Errorf("u(P%d) converged to %.4f, want %.4f ± 0.05", p+1, v, sp[p])
		}
	}
}

func TestServerMembershipCrashAndRejoinWithoutRestart(t *testing.T) {
	sys := workload.Simple()
	// Unbounded run (no WithPeriods): cancellation is the normal stop, so
	// the test choreographs crash and rejoin at its own pace while the
	// lockstep loop races underneath.
	srv, addr, done := startServer(t, sys, simpleController(t, sys),
		WithPeriodTimeout(200*time.Millisecond), WithMembershipTimeout(2*time.Second))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		res, err := srv.Run(ctx)
		done <- serverOutcome{res, err}
	}()

	// P1 runs the whole time.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := RunAgent(ctx, sys, 0, addr, WithETF(sim.ConstantETF(1))); err != nil {
			t.Errorf("agent P1: %v", err)
		}
	}()

	// P2 joins, is crashed (context cancel ≈ kill -9 for the harness),
	// and rejoins. The server must ride through without a restart.
	crashCtx, crash := context.WithCancel(ctx)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = RunAgent(crashCtx, sys, 1, addr, WithETF(sim.ConstantETF(1)))
	}()
	waitPeriod(t, srv, 5)
	crash()
	waitPeriod(t, srv, srv.Period()+5) // server keeps stepping through the crash

	// Rejoin: the latency sink's first callback proves the rejoined agent
	// completed a full report→rates cycle against the live server.
	rejoined := make(chan struct{})
	var once sync.Once
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := RunAgent(ctx, sys, 1, addr, WithETF(sim.ConstantETF(1)),
			WithLatencySink(func(int, time.Duration) { once.Do(func() { close(rejoined) }) }))
		if err != nil {
			t.Errorf("agent P2 rejoin: %v", err)
		}
	}()
	select {
	case <-rejoined:
	case <-time.After(10 * time.Second):
		t.Fatal("rejoined agent never completed a period")
	}
	waitPeriod(t, srv, srv.Period()+3)
	cancel()

	out := <-done
	wg.Wait()
	if out.err != nil {
		t.Fatal(out.err)
	}
	res := out.res
	if res.Periods < 10 {
		t.Fatalf("Periods = %d, want the loop to keep running through crash and rejoin", res.Periods)
	}
	if res.Joins != 2 || res.Rejoins < 1 {
		t.Fatalf("membership: joins=%d rejoins=%d, want 2 first-time joins and ≥1 rejoin", res.Joins, res.Rejoins)
	}
	if res.Crashes < 1 {
		t.Fatalf("Crashes = %d, want ≥1 (the killed agent)", res.Crashes)
	}
}

func TestServerCleanLeave(t *testing.T) {
	sys := workload.Simple()
	srv, addr, done := startServer(t, sys, simpleController(t, sys),
		WithPeriodTimeout(100*time.Millisecond))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		res, err := srv.Run(ctx)
		done <- serverOutcome{res, err}
	}()
	// A raw lane that joins, reports once, and leaves with a shutdown
	// notice.
	conn, err := lane.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	mustSend := func(m *lane.Message) {
		t.Helper()
		if err := conn.Send(m, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	mustSend(&lane.Message{Type: lane.TypeHello, Hello: lane.Hello{Processor: 0, Node: "brief"}})
	ack, err := conn.Receive(2 * time.Second)
	if err != nil || ack.Type != lane.TypeRates {
		t.Fatalf("join ack = %+v, %v; want rates", ack, err)
	}
	mustSend(&lane.Message{Type: lane.TypeUtilizationBatch,
		Batch: lane.UtilizationBatch{Processor: 0, First: ack.Rates.Period, Samples: []float64{0.5}}})
	mustSend(&lane.Message{Type: lane.TypeShutdown, Shutdown: lane.Shutdown{Reason: "done"}})
	_ = conn.Close()

	waitFor(t, func() bool { return srv.Period() >= 1 })
	cancel()
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.res.Leaves != 1 || out.res.Crashes != 0 {
		t.Fatalf("got %d leaves %d crashes, want a clean leave", out.res.Leaves, out.res.Crashes)
	}
}

func TestServerRejectsOutOfRangeHello(t *testing.T) {
	sys := workload.Simple()
	srv, addr, done := startServer(t, sys, simpleController(t, sys),
		WithPeriodTimeout(100*time.Millisecond))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		res, err := srv.Run(ctx)
		done <- serverOutcome{res, err}
	}()
	conn, err := lane.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(&lane.Message{Type: lane.TypeHello, Hello: lane.Hello{Processor: 99}}, time.Second); err != nil {
		t.Fatal(err)
	}
	// The server closes the lane instead of admitting the impostor.
	if _, err := conn.Receive(3 * time.Second); err == nil {
		t.Fatal("out-of-range hello was acked")
	}
	cancel()
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.res.Joins != 0 {
		t.Fatalf("Joins = %d, want 0", out.res.Joins)
	}
}

// TestServerBackpressureShedsReportsNeverRates wires a member whose lane
// is never read: the server's bounded send queue must shed that member's
// stale rate... reports are inbound here, so the backpressure under test
// is the member queue outbound: rate frames supersede in place and the
// control loop never blocks on the slow peer.
func TestServerBackpressureSlowReaderNeverBlocksControl(t *testing.T) {
	sys := workload.Simple()
	srv, addr, done := startServer(t, sys, simpleController(t, sys),
		WithPeriods(40), WithPeriodTimeout(100*time.Millisecond), WithSendQueue(4))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		res, err := srv.Run(ctx)
		done <- serverOutcome{res, err}
	}()

	// A healthy agent on P1 keeps the loop stepping.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := RunAgent(ctx, sys, 0, addr, WithETF(sim.ConstantETF(1))); err != nil {
			t.Errorf("agent P1: %v", err)
		}
	}()

	// A slow reader on P2: joins, reports every period, but never reads
	// rates off the socket. Its outbound server queue must absorb the
	// stall by superseding rate frames, never blocking the control loop.
	conn, err := lane.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if err := conn.Send(&lane.Message{Type: lane.TypeHello, Hello: lane.Hello{Processor: 1, Node: "slow"}}, time.Second); err != nil {
		t.Fatal(err)
	}
	stopReports := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		k := 0
		for {
			select {
			case <-stopReports:
				return
			case <-time.After(20 * time.Millisecond):
			}
			_ = conn.Send(&lane.Message{Type: lane.TypeUtilizationBatch,
				Batch: lane.UtilizationBatch{Processor: 1, First: k, Samples: []float64{0.4}}}, time.Second)
			k++
		}
	}()

	out := <-done
	close(stopReports)
	wg.Wait()
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.res.Periods != 40 {
		t.Fatalf("Periods = %d, want 40 — the slow reader stalled the control loop", out.res.Periods)
	}
}

func waitPeriod(t *testing.T, srv *Server, k int) {
	t.Helper()
	waitFor(t, func() bool { return srv.Period() >= k })
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second) //eucon:wallclock-ok test polling deadline
	for !cond() {
		if time.Now().After(deadline) { //eucon:wallclock-ok test polling deadline
			t.Fatal("condition not reached in 10s")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
