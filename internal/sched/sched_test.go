package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/task"
	"github.com/rtsyslab/eucon/internal/workload"
)

func TestUtilization(t *testing.T) {
	jobs := []Job{{Cost: 1, Period: 4}, {Cost: 2, Period: 8}}
	if got := Utilization(jobs); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Utilization = %v, want 0.5", got)
	}
}

func TestLiuLaylandSchedulable(t *testing.T) {
	// Two jobs at exactly the bound 0.828.
	jobs := []Job{{Cost: 0.414 * 10, Period: 10}, {Cost: 0.414 * 20, Period: 20}}
	if !LiuLaylandSchedulable(jobs) {
		t.Error("jobs at the Liu–Layland bound rejected")
	}
	over := []Job{{Cost: 5, Period: 10}, {Cost: 8, Period: 20}} // U = 0.9
	if LiuLaylandSchedulable(over) {
		t.Error("jobs above the bound accepted")
	}
}

func TestHyperbolicTighterThanLiuLayland(t *testing.T) {
	// The classic example: U = 0.9 with harmonic-ish periods passes
	// hyperbolic in some configurations LL rejects. Use U₁ = U₂ = 0.41:
	// LL bound for 2 is 0.828 < 0.82 → LL accepts; craft one LL rejects but
	// hyperbolic accepts: U₁ = 0.5, U₂ = 0.33: sum 0.83 > 0.828 (LL
	// rejects), product (1.5)(1.33) = 1.995 ≤ 2 (hyperbolic accepts).
	jobs := []Job{{Cost: 5, Period: 10}, {Cost: 6.6, Period: 20}}
	if LiuLaylandSchedulable(jobs) {
		t.Fatal("expected LL rejection at U = 0.83")
	}
	if !HyperbolicSchedulable(jobs) {
		t.Fatal("hyperbolic bound rejected Π(U+1) = 1.995")
	}
}

func TestResponseTimesTextbook(t *testing.T) {
	// Classic example: C = (1, 2, 3), T = (4, 6, 12):
	// R1 = 1; R2 = 2 + ⌈R2/4⌉·1 → 3; R3 = 3 + ⌈R/4⌉ + 2⌈R/6⌉ → iterate:
	// R = 3+1+2 = 6 → 3+2+2 = 7 → 3+2+4 = 9 → 3+3+4 = 10 → 3+3+4 = 10.
	jobs := []Job{
		{Cost: 1, Period: 4, Name: "hi"},
		{Cost: 2, Period: 6, Name: "mid"},
		{Cost: 3, Period: 12, Name: "lo"},
	}
	resp, err := ResponseTimes(jobs)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 10}
	for i := range want {
		if math.Abs(resp[i]-want[i]) > 1e-9 {
			t.Errorf("R[%d] = %v, want %v", i, resp[i], want[i])
		}
	}
	ok, err := RTASchedulable(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("textbook-schedulable set rejected")
	}
}

func TestResponseTimesUnschedulable(t *testing.T) {
	jobs := []Job{
		{Cost: 3, Period: 4},
		{Cost: 3, Period: 6},
	}
	resp, err := ResponseTimes(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(resp[1], 1) {
		t.Fatalf("R[1] = %v, want +Inf for the starving job", resp[1])
	}
	ok, err := RTASchedulable(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("overloaded set accepted")
	}
}

func TestResponseTimesValidation(t *testing.T) {
	if _, err := ResponseTimes([]Job{{Cost: 0, Period: 5}}); err == nil {
		t.Error("zero cost accepted")
	}
	if _, err := ResponseTimes([]Job{{Cost: 1, Period: 0}}); err == nil {
		t.Error("zero period accepted")
	}
}

func TestRTAImpliesBoundsProperty(t *testing.T) {
	// Liu–Layland acceptance implies hyperbolic acceptance implies RTA
	// acceptance (each test is strictly weaker than the next).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		jobs := make([]Job, n)
		for i := range jobs {
			period := 10 + rng.Float64()*990
			jobs[i] = Job{Cost: period * (0.05 + 0.3*rng.Float64()), Period: period}
		}
		rta, err := RTASchedulable(jobs)
		if err != nil {
			return false
		}
		if LiuLaylandSchedulable(jobs) && !HyperbolicSchedulable(jobs) {
			return false
		}
		if HyperbolicSchedulable(jobs) && !rta {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestProcessorJobsProjection(t *testing.T) {
	sys := workload.Simple()
	rates := sys.InitialRates()
	jobs, err := ProcessorJobs(sys, rates, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("P1 hosts %d jobs, want 2", len(jobs))
	}
	for _, j := range jobs {
		if j.Cost != 35 {
			t.Errorf("job %s cost %v, want 35", j.Name, j.Cost)
		}
	}
	if _, err := ProcessorJobs(sys, []float64{1}, 0); err == nil {
		t.Error("short rate vector accepted")
	}
	if _, err := ProcessorJobs(sys, []float64{0, 1, 1}, 0); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestSystemSchedulableAtSetPoints(t *testing.T) {
	// Rates that keep utilization at/below the Liu–Layland set point must
	// pass RTA (the paper's eq. 13 argument).
	sys := workload.Simple()
	rates := []float64{0.828 / 70, 0.828 / 70, 0.828 / 90 * 45 / 45 / 2} // u1 = u2 ≈ 0.828·...
	// Simpler: rates where each processor is at ~70%.
	rates = []float64{0.01, 0.01, 0.007}
	ok, bad, err := SystemSchedulable(sys, rates)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("moderate-rate SIMPLE rejected (processor %d)", bad+1)
	}
}

func TestSystemSchedulableDetectsOverload(t *testing.T) {
	sys := workload.Simple()
	rmin, rmax := sys.RateBounds()
	_ = rmin
	ok, bad, err := SystemSchedulable(sys, rmax) // max rates: both processors at 200%
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("max-rate SIMPLE accepted")
	}
	if bad < 0 {
		t.Fatal("no failing processor reported")
	}
}

func TestAdmit(t *testing.T) {
	sys := workload.Simple()
	rates := []float64{0.005, 0.005, 0.005} // light load
	small := task.Task{
		Name:     "new-small",
		Subtasks: []task.Subtask{{Processor: 0, EstimatedCost: 10}},
		RateMin:  0.001, RateMax: 0.01, InitialRate: 0.002,
	}
	ok, err := Admit(sys, rates, small)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("small task rejected on a lightly loaded system")
	}
	monster := task.Task{
		Name:     "new-monster",
		Subtasks: []task.Subtask{{Processor: 0, EstimatedCost: 500}},
		RateMin:  0.001, RateMax: 0.01, InitialRate: 0.005,
	}
	ok, err = Admit(sys, rates, monster)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("250% demand task admitted")
	}
	bad := task.Task{Name: "bad"}
	if _, err := Admit(sys, rates, bad); err == nil {
		t.Error("invalid candidate accepted")
	}
	outOfRange := task.Task{
		Name:     "oor",
		Subtasks: []task.Subtask{{Processor: 7, EstimatedCost: 1}},
		RateMin:  0.001, RateMax: 0.01, InitialRate: 0.005,
	}
	if _, err := Admit(sys, rates, outOfRange); err == nil {
		t.Error("candidate on missing processor accepted")
	}
}

func TestRTACrossValidatedBySimulator(t *testing.T) {
	// A workload exact RTA accepts must run without subtask misses in the
	// event-driven simulator (deterministic execution times, etf = 1) —
	// cross-validation between the analysis and the simulation substrate.
	sys := &task.System{
		Name:       "rta-x",
		Processors: 1,
		Tasks: []task.Task{
			{Name: "A", Subtasks: []task.Subtask{{Processor: 0, EstimatedCost: 10}}, RateMin: 1e-4, RateMax: 0.05, InitialRate: 1.0 / 40},
			{Name: "B", Subtasks: []task.Subtask{{Processor: 0, EstimatedCost: 20}}, RateMin: 1e-4, RateMax: 0.05, InitialRate: 1.0 / 70},
			{Name: "C", Subtasks: []task.Subtask{{Processor: 0, EstimatedCost: 30}}, RateMin: 1e-4, RateMax: 0.05, InitialRate: 1.0 / 150},
		},
	}
	ok, _, err := SystemSchedulable(sys, sys.InitialRates())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("test workload unexpectedly unschedulable; adjust parameters")
	}
	s, err := sim.New(sim.Config{System: sys, SamplingPeriod: 1000, Periods: 50})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stats.SubtaskDeadlineMisses != 0 {
		t.Fatalf("RTA-schedulable workload missed %d subtask deadlines in simulation", tr.Stats.SubtaskDeadlineMisses)
	}
}
