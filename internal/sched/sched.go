// Package sched provides fixed-priority schedulability analysis for the
// rate-monotonic processors EUCON controls: the Liu–Layland utilization
// test the paper's set points come from (eq. 13), the tighter hyperbolic
// bound, exact response-time analysis, and an admission test — the
// "admission control" adaptation mechanism the paper names as an
// alternative actuator (§3.2, §6.2).
//
// Within EUCON these analyses close the loop on the paper's central
// argument: if each processor's utilization is held at or below the
// schedulable bound of its subtasks, every subdeadline — and therefore
// every end-to-end deadline — is met.
package sched

import (
	"fmt"
	"math"
	"sort"

	"github.com/rtsyslab/eucon/internal/task"
)

// Job is one periodic job stream on a processor under RMS: an execution
// time and a period (deadline = period, the paper's subdeadline
// convention).
type Job struct {
	// Cost is the worst-case execution time.
	Cost float64
	// Period is the invocation period (and implicit deadline).
	Period float64
	// Name labels the job in diagnostics.
	Name string
}

// Utilization returns Σ C_i/T_i.
func Utilization(jobs []Job) float64 {
	var u float64
	for _, j := range jobs {
		u += j.Cost / j.Period
	}
	return u
}

// LiuLaylandSchedulable applies the classic sufficient test
// U ≤ n(2^{1/n} − 1).
func LiuLaylandSchedulable(jobs []Job) bool {
	return Utilization(jobs) <= task.LiuLaylandBound(len(jobs))+1e-12
}

// HyperbolicSchedulable applies the Bini–Buttazzo hyperbolic bound
// Π(U_i + 1) ≤ 2 — strictly tighter than Liu–Layland.
func HyperbolicSchedulable(jobs []Job) bool {
	prod := 1.0
	for _, j := range jobs {
		prod *= j.Cost/j.Period + 1
	}
	return prod <= 2+1e-12
}

// ResponseTimes computes the exact worst-case response time of every job
// under preemptive RMS via the standard fixed-point iteration
//
//	R = C_i + Σ_{j ∈ hp(i)} ⌈R/T_j⌉·C_j.
//
// Jobs need not be sorted; priority is by period (shorter = higher, ties
// by input order). A response time of +Inf marks a job whose iteration
// diverges past its period×divergence cap (unschedulable).
func ResponseTimes(jobs []Job) ([]float64, error) {
	for i, j := range jobs {
		if j.Cost <= 0 || j.Period <= 0 {
			return nil, fmt.Errorf("sched: job %d (%s) has non-positive cost %g or period %g", i, j.Name, j.Cost, j.Period)
		}
	}
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return jobs[order[a]].Period < jobs[order[b]].Period
	})
	resp := make([]float64, len(jobs))
	for rank, idx := range order {
		me := jobs[idx]
		r := me.Cost
		// Fixed point with a divergence cap at the deadline (= period): a
		// response past the deadline is a miss regardless of convergence.
		for iter := 0; iter < 1000; iter++ {
			next := me.Cost
			for h := 0; h < rank; h++ {
				hj := jobs[order[h]]
				next += math.Ceil(r/hj.Period) * hj.Cost
			}
			if next == r { //eucon:float-exact fixed-point convergence: iterates are sums of exact multiples and repeat exactly
				break
			}
			r = next
			if r > me.Period {
				r = math.Inf(1)
				break
			}
		}
		resp[idx] = r
	}
	return resp, nil
}

// RTASchedulable applies exact response-time analysis: every job's
// worst-case response time is at most its period.
func RTASchedulable(jobs []Job) (bool, error) {
	resp, err := ResponseTimes(jobs)
	if err != nil {
		return false, err
	}
	for i, r := range resp {
		if r > jobs[i].Period {
			return false, nil
		}
	}
	return true, nil
}

// ProcessorJobs projects a system at the given task rates onto one
// processor: each hosted subtask becomes a job with period 1/r and cost
// equal to its estimated execution time (subdeadline = period, the paper's
// evaluation convention).
func ProcessorJobs(sys *task.System, rates []float64, p int) ([]Job, error) {
	if len(rates) != len(sys.Tasks) {
		return nil, fmt.Errorf("sched: %d rates for %d tasks", len(rates), len(sys.Tasks))
	}
	var jobs []Job
	for i := range sys.Tasks {
		if rates[i] <= 0 {
			return nil, fmt.Errorf("sched: task %s has non-positive rate %g", sys.Tasks[i].Name, rates[i])
		}
		for j, st := range sys.Tasks[i].Subtasks {
			if st.Processor != p {
				continue
			}
			jobs = append(jobs, Job{
				Cost:   st.EstimatedCost,
				Period: 1 / rates[i],
				Name:   fmt.Sprintf("%s.%d", sys.Tasks[i].Name, j+1),
			})
		}
	}
	return jobs, nil
}

// SystemSchedulable reports whether every processor passes exact RTA at
// the given rates. When it returns false, the second result names the
// first failing processor (0-based).
func SystemSchedulable(sys *task.System, rates []float64) (bool, int, error) {
	for p := 0; p < sys.Processors; p++ {
		jobs, err := ProcessorJobs(sys, rates, p)
		if err != nil {
			return false, -1, err
		}
		ok, err := RTASchedulable(jobs)
		if err != nil {
			return false, -1, err
		}
		if !ok {
			return false, p, nil
		}
	}
	return true, -1, nil
}

// Admit is the admission-control adaptation mechanism: it reports whether
// adding candidate (at its initial rate) keeps every processor it touches
// schedulable by exact RTA, given the current system and rates. The
// candidate is not added; callers admit by appending it to the system.
func Admit(sys *task.System, rates []float64, candidate task.Task) (bool, error) {
	if err := candidate.Validate(); err != nil {
		return false, fmt.Errorf("sched: candidate: %w", err)
	}
	touched := make(map[int]bool)
	for _, st := range candidate.Subtasks {
		if st.Processor >= sys.Processors {
			return false, fmt.Errorf("sched: candidate touches processor %d of %d", st.Processor, sys.Processors)
		}
		touched[st.Processor] = true
	}
	for p := range touched {
		jobs, err := ProcessorJobs(sys, rates, p)
		if err != nil {
			return false, err
		}
		for j, st := range candidate.Subtasks {
			if st.Processor != p {
				continue
			}
			jobs = append(jobs, Job{
				Cost:   st.EstimatedCost,
				Period: 1 / candidate.InitialRate,
				Name:   fmt.Sprintf("%s.%d", candidate.Name, j+1),
			})
		}
		ok, err := RTASchedulable(jobs)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}
