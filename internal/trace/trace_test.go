package trace

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"github.com/rtsyslab/eucon/internal/sim"
)

func sampleTrace() *sim.Trace {
	return &sim.Trace{
		Controller:     "EUCON",
		SamplingPeriod: 1000,
		Utilization:    [][]float64{{0.5, 0.6}, {0.55, 0.65}},
		Rates:          [][]float64{{0.01, 0.02}, {0.011, 0.021}},
		Periods: []sim.PeriodStats{
			{Released: 10, Completed: 10},
			{Released: 12, Completed: 10, SubtaskMisses: 2},
		},
		Stats: sim.Stats{ReleasedJobs: 22, CompletedJobs: 20, SubtaskDeadlineMisses: 2},
	}
}

func TestWriteUtilizationCSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteUtilizationCSV(&sb, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want header + 2", len(rows))
	}
	if rows[0][1] != "u_p1" || rows[0][2] != "u_p2" {
		t.Fatalf("header = %v", rows[0])
	}
	if rows[1][0] != "1" || rows[1][1] != "0.500000" {
		t.Fatalf("row 1 = %v", rows[1])
	}
}

func TestWriteRatesCSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteRatesCSV(&sb, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][1] != "r_t1" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestWriteMissRatioCSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteMissRatioCSV(&sb, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[2][3] != "0.200000" {
		t.Fatalf("miss ratio cell = %q, want 0.200000", rows[2][3])
	}
}

func TestWriteJSON(t *testing.T) {
	var sb strings.Builder
	if err := WriteJSON(&sb, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["controller"] != "EUCON" {
		t.Fatalf("controller = %v", decoded["controller"])
	}
	if decoded["sampling_period"].(float64) != 1000 {
		t.Fatalf("sampling_period = %v", decoded["sampling_period"])
	}
}

func TestEmptyTrace(t *testing.T) {
	empty := &sim.Trace{Controller: "NONE"}
	var sb strings.Builder
	if err := WriteUtilizationCSV(&sb, empty); err != nil {
		t.Fatal(err)
	}
	if err := WriteRatesCSV(&sb, empty); err != nil {
		t.Fatal(err)
	}
	if err := WriteMissRatioCSV(&sb, empty); err != nil {
		t.Fatal(err)
	}
}
