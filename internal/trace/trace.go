// Package trace exports simulation traces in machine-readable formats so
// paper figures can be regenerated with external plotting tools
// (gnuplot, matplotlib), and computes comparisons between runs.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"github.com/rtsyslab/eucon/internal/sim"
)

// WriteUtilizationCSV writes one row per sampling period:
// period, u(P1), …, u(Pn).
func WriteUtilizationCSV(w io.Writer, tr *sim.Trace) error {
	cw := csv.NewWriter(w)
	if len(tr.Utilization) == 0 {
		cw.Flush()
		return cw.Error()
	}
	header := []string{"period"}
	for p := range tr.Utilization[0] {
		header = append(header, fmt.Sprintf("u_p%d", p+1))
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for k, u := range tr.Utilization {
		row := make([]string, 0, len(u)+1)
		row = append(row, strconv.Itoa(k+1))
		for _, v := range u {
			row = append(row, strconv.FormatFloat(v, 'f', 6, 64))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write row %d: %w", k, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteRatesCSV writes one row per sampling period:
// period, r(T1), …, r(Tm).
func WriteRatesCSV(w io.Writer, tr *sim.Trace) error {
	cw := csv.NewWriter(w)
	if len(tr.Rates) == 0 {
		cw.Flush()
		return cw.Error()
	}
	header := []string{"period"}
	for i := range tr.Rates[0] {
		header = append(header, fmt.Sprintf("r_t%d", i+1))
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for k, r := range tr.Rates {
		row := make([]string, 0, len(r)+1)
		row = append(row, strconv.Itoa(k+1))
		for _, v := range r {
			row = append(row, strconv.FormatFloat(v, 'g', 8, 64))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write row %d: %w", k, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMissRatioCSV writes one row per sampling period:
// period, completed, misses, miss_ratio.
func WriteMissRatioCSV(w io.Writer, tr *sim.Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"period", "completed", "misses", "miss_ratio"}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for k, ps := range tr.Periods {
		row := []string{
			strconv.Itoa(k + 1),
			strconv.Itoa(ps.Completed),
			strconv.Itoa(ps.SubtaskMisses),
			strconv.FormatFloat(ps.MissRatio(), 'f', 6, 64),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write row %d: %w", k, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON serializes the whole trace as a single JSON document.
func WriteJSON(w io.Writer, tr *sim.Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(exportTrace{
		Controller:     tr.Controller,
		SamplingPeriod: tr.SamplingPeriod,
		Utilization:    tr.Utilization,
		Rates:          tr.Rates,
		Stats:          tr.Stats,
	}); err != nil {
		return fmt.Errorf("trace: encode JSON: %w", err)
	}
	return nil
}

// exportTrace pins the JSON field names independent of the sim package's
// Go identifiers.
type exportTrace struct {
	Controller     string      `json:"controller"`
	SamplingPeriod float64     `json:"sampling_period"`
	Utilization    [][]float64 `json:"utilization"`
	Rates          [][]float64 `json:"rates"`
	Stats          sim.Stats   `json:"stats"`
}
