// Package core implements EUCON — End-to-end Utilization CONtrol — the
// primary contribution of the paper. EUCON closes a MIMO feedback loop
// around a distributed real-time system: at the end of every sampling
// period it collects the utilization of all processors, solves a
// constrained model-predictive optimization built from the system's subtask
// allocation matrix, and commands new task rates that drive every
// processor's utilization to its set point despite unknown execution times.
package core

import (
	"fmt"

	"github.com/rtsyslab/eucon/internal/mat"
	"github.com/rtsyslab/eucon/internal/mpc"
	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/stability"
	"github.com/rtsyslab/eucon/internal/task"
)

// Config tunes the EUCON controller. The zero value selects the paper's
// SIMPLE controller parameters (Table 2): P = 2, M = 1, Tref/Ts = 4.
type Config struct {
	// PredictionHorizon is P; 0 selects 2.
	PredictionHorizon int
	// ControlHorizon is M; 0 selects 1.
	ControlHorizon int
	// TrefOverTs is the reference time constant in sampling periods; 0
	// selects 4.
	TrefOverTs float64
	// Weights are the per-processor tracking weights w_i; nil means all 1.
	Weights []float64
	// RateMoveWeights are the per-task control-penalty weights; nil means
	// all 1.
	RateMoveWeights []float64
	// DisableOutputConstraints removes the hard u ≤ B constraints (for
	// ablation studies).
	DisableOutputConstraints bool
	// MeasurementFilter, in (0, 1], low-pass filters the utilization
	// measurements with an EWMA before the MPC sees them:
	// û(k) = α·u(k) + (1−α)·û(k−1). Zero disables filtering. Filtering
	// counters the sampling-window quantization noise of busy-time
	// monitors; without it, noise plus the asymmetric response of the hard
	// u ≤ B constraints biases the achieved mean slightly below the set
	// point. (The paper does not describe its monitor's smoothing; this is
	// our documented addition — see EXPERIMENTS.md.)
	MeasurementFilter float64
}

func (c Config) withDefaults() Config {
	if c.PredictionHorizon == 0 {
		c.PredictionHorizon = 2
	}
	if c.ControlHorizon == 0 {
		c.ControlHorizon = 1
	}
	if mat.IsZero(c.TrefOverTs) {
		c.TrefOverTs = 4
	}
	return c
}

// Controller is the EUCON rate controller. It implements
// sim.RateController and is driven once per sampling period. It is not
// safe for concurrent use.
type Controller struct {
	sys      *task.System
	mpc      *mpc.Controller
	cfg      Config
	f        *mat.Dense
	b        []float64
	filtered []float64 // EWMA state when MeasurementFilter > 0
	relaxed  int
	steps    int
}

var _ sim.RateController = (*Controller)(nil)

// New builds an EUCON controller for the given system and utilization set
// points (one per processor). Passing nil set points selects the paper's
// defaults: the Liu–Layland schedulable bound of each processor's subtask
// count (eq. 13), which makes utilization control enforce all subdeadlines.
func New(sys *task.System, setPoints []float64, cfg Config) (*Controller, error) {
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("eucon: %w", err)
	}
	if setPoints == nil {
		setPoints = sys.DefaultSetPoints()
	}
	if len(setPoints) != sys.Processors {
		return nil, fmt.Errorf("eucon: %d set points for %d processors", len(setPoints), sys.Processors)
	}
	for p, b := range setPoints {
		if b <= 0 || b > 1 {
			return nil, fmt.Errorf("eucon: set point %g for processor %d outside (0, 1]", b, p)
		}
	}
	cfg = cfg.withDefaults()
	if cfg.MeasurementFilter < 0 || cfg.MeasurementFilter > 1 {
		return nil, fmt.Errorf("eucon: measurement filter %g outside [0, 1]", cfg.MeasurementFilter)
	}
	f := sys.AllocationMatrix()
	rmin, rmax := sys.RateBounds()
	m, err := mpc.New(f, setPoints, rmin, rmax, mpc.Config{
		PredictionHorizon:        cfg.PredictionHorizon,
		ControlHorizon:           cfg.ControlHorizon,
		TrefOverTs:               cfg.TrefOverTs,
		QWeights:                 cfg.Weights,
		RWeights:                 cfg.RateMoveWeights,
		DisableOutputConstraints: cfg.DisableOutputConstraints,
	})
	if err != nil {
		return nil, fmt.Errorf("eucon: %w", err)
	}
	return &Controller{sys: sys, mpc: m, cfg: cfg, f: f, b: mat.VecClone(setPoints)}, nil
}

// Name implements sim.RateController.
func (c *Controller) Name() string { return "EUCON" }

// Rates implements sim.RateController: one feedback-loop invocation.
func (c *Controller) Rates(_ int, u, rates []float64) ([]float64, error) {
	if a := c.cfg.MeasurementFilter; a > 0 && a < 1 {
		if c.filtered == nil {
			c.filtered = append([]float64(nil), u...)
		} else if len(c.filtered) == len(u) {
			for i := range u {
				c.filtered[i] = a*u[i] + (1-a)*c.filtered[i]
			}
		}
		u = c.filtered
	}
	res, err := c.mpc.Step(u, rates)
	if err != nil {
		return nil, fmt.Errorf("eucon: %w", err)
	}
	c.steps++
	if res.OutputConstraintsRelaxed {
		c.relaxed++
	}
	return res.NewRates, nil
}

// SetPoints returns the current utilization set points.
func (c *Controller) SetPoints() []float64 { return c.mpc.SetPoints() }

// UpdateSetPoints changes the set points online (overload protection:
// paper §3.3).
func (c *Controller) UpdateSetPoints(b []float64) error {
	if err := c.mpc.UpdateSetPoints(b); err != nil {
		return fmt.Errorf("eucon: %w", err)
	}
	copy(c.b, b)
	return nil
}

// Reset restores the controller to its post-New state between runs: the
// MPC's move memory, warm-start cache, and measurement-filter state are
// cleared and the step counters restart. A Reset controller drives a run
// bit-identically to a freshly built one, which lets sweep workers reuse
// one controller across replications.
func (c *Controller) Reset() {
	c.mpc.Reset()
	c.filtered = nil
	c.relaxed = 0
	c.steps = 0
}

// RelaxedPeriods reports how many sampling periods required dropping the
// hard utilization constraints due to infeasibility (severe overload).
func (c *Controller) RelaxedPeriods() int { return c.relaxed }

// Steps reports how many control invocations have run.
func (c *Controller) Steps() int { return c.steps }

// Gains exposes the unconstrained feedback gain matrices for stability
// analysis (paper §6.2).
func (c *Controller) Gains() (ke, kd *mat.Dense, err error) { return c.mpc.Gains() }

// CriticalGain computes the critical uniform utilization gain of the
// closed loop by bisection over [lo, hi]: the execution-time factor beyond
// which the system is predicted to lose stability.
func (c *Controller) CriticalGain(lo, hi float64) (float64, error) {
	ke, kd, err := c.mpc.Gains()
	if err != nil {
		return 0, fmt.Errorf("eucon: %w", err)
	}
	g, err := stability.CriticalGain(c.f, ke, kd, lo, hi, 1e-4)
	if err != nil {
		return 0, fmt.Errorf("eucon: %w", err)
	}
	return g, nil
}

// StableAt reports whether the closed loop is predicted stable when every
// processor's utilization gain equals g (i.e. all execution times are g
// times their estimates).
func (c *Controller) StableAt(g float64) (bool, error) {
	ke, kd, err := c.mpc.Gains()
	if err != nil {
		return false, fmt.Errorf("eucon: %w", err)
	}
	stable, err := stability.IsStable(c.f, ke, kd, mat.Constant(c.sys.Processors, g), 0)
	if err != nil {
		return false, fmt.Errorf("eucon: %w", err)
	}
	return stable, nil
}
