// Package core implements EUCON — End-to-end Utilization CONtrol — the
// primary contribution of the paper. EUCON closes a MIMO feedback loop
// around a distributed real-time system: at the end of every sampling
// period it collects the utilization of all processors, solves a
// constrained model-predictive optimization built from the system's subtask
// allocation matrix, and commands new task rates that drive every
// processor's utilization to its set point despite unknown execution times.
package core

import (
	"fmt"
	"math"

	"github.com/rtsyslab/eucon/internal/empc"
	"github.com/rtsyslab/eucon/internal/mat"
	"github.com/rtsyslab/eucon/internal/mpc"
	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/stability"
	"github.com/rtsyslab/eucon/internal/task"
)

// Config tunes the EUCON controller. The zero value selects the paper's
// SIMPLE controller parameters (Table 2): P = 2, M = 1, Tref/Ts = 4.
type Config struct {
	// PredictionHorizon is P; 0 selects 2.
	PredictionHorizon int
	// ControlHorizon is M; 0 selects 1.
	ControlHorizon int
	// TrefOverTs is the reference time constant in sampling periods; 0
	// selects 4.
	TrefOverTs float64
	// Weights are the per-processor tracking weights w_i; nil means all 1.
	Weights []float64
	// RateMoveWeights are the per-task control-penalty weights; nil means
	// all 1.
	RateMoveWeights []float64
	// DisableOutputConstraints removes the hard u ≤ B constraints (for
	// ablation studies).
	DisableOutputConstraints bool
	// MeasurementFilter, in (0, 1], low-pass filters the utilization
	// measurements with an EWMA before the MPC sees them:
	// û(k) = α·u(k) + (1−α)·û(k−1). Zero disables filtering. Filtering
	// counters the sampling-window quantization noise of busy-time
	// monitors; without it, noise plus the asymmetric response of the hard
	// u ≤ B constraints biases the achieved mean slightly below the set
	// point. (The paper does not describe its monitor's smoothing; this is
	// our documented addition — see EXPERIMENTS.md.)
	MeasurementFilter float64
	// StalenessBound tunes the hold-last-sample degradation policy: a
	// missing utilization sample (NaN, from a lost feedback message) is
	// substituted with the most recent usable measurement as long as that
	// measurement is at most StalenessBound sampling periods old. Once any
	// missing sample is staler than the bound, the controller skips
	// actuation for the period (holding current rates) rather than steer
	// the whole system on fiction. 0 selects 4.
	StalenessBound int
	// Explicit compiles the MPC's parametric QP into an offline
	// piecewise-affine law at construction (see internal/empc). Control
	// steps whose query lands in the law's bit-exact region skip the
	// iterative solve entirely — rates are bit-identical either way, so
	// traces and digests do not change; only the per-step cost does. Steps
	// off the precomputed map fall back to the iterative solver and are
	// counted through ExplicitCounts.
	Explicit bool
	// ExplicitMaxRegions caps the offline region enumeration; 0 selects
	// the empc default.
	ExplicitMaxRegions int
	// RateMin and RateMax override the per-task actuator rate bounds the
	// system declares; nil keeps the system's bounds. Overrides must have
	// one entry per task.
	RateMin, RateMax []float64
}

func (c Config) withDefaults() Config {
	if c.PredictionHorizon == 0 {
		c.PredictionHorizon = 2
	}
	if c.ControlHorizon == 0 {
		c.ControlHorizon = 1
	}
	if mat.IsZero(c.TrefOverTs) {
		c.TrefOverTs = 4
	}
	if c.StalenessBound == 0 {
		c.StalenessBound = 4
	}
	return c
}

// Controller is the EUCON rate controller. It implements
// sim.RateController and is driven once per sampling period. It is not
// safe for concurrent use.
type Controller struct {
	sys      *task.System
	mpc      *mpc.Controller
	cfg      Config
	f        *mat.Dense
	b        []float64
	filtered []float64 // EWMA state when MeasurementFilter > 0
	relaxed  int
	steps    int

	// Hold-last-sample degradation state (see Config.StalenessBound):
	// lastGood[p] is processor p's most recent usable measurement,
	// sampleAge[p] how many periods ago it was taken (-1: never), and uBuf
	// the substituted vector handed to the filter and MPC.
	lastGood  []float64
	sampleAge []int
	uBuf      []float64

	degHeld      int  // samples substituted in the last Step call
	degSkipped   bool // last Step call skipped actuation
	heldTotal    int
	skippedTotal int

	// explicitReport is the offline-compile report when Config.Explicit
	// was set; nil otherwise.
	explicitReport *empc.Report

	// keBuf and kdBuf back the allocation-free gain queries of
	// CriticalGain and StableAt (mpc.GainsTo), built on first use.
	keBuf, kdBuf *mat.Dense
}

var (
	_ sim.Controller          = (*Controller)(nil)
	_ sim.DegradationReporter = (*Controller)(nil)
	_ sim.ContainmentReporter = (*Controller)(nil)
	_ sim.ExplicitReporter    = (*Controller)(nil)
)

// New builds an EUCON controller for the given system and utilization set
// points (one per processor). Passing nil set points selects the paper's
// defaults: the Liu–Layland schedulable bound of each processor's subtask
// count (eq. 13), which makes utilization control enforce all subdeadlines.
func New(sys *task.System, setPoints []float64, cfg Config) (*Controller, error) {
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("eucon: %w", err)
	}
	if setPoints == nil {
		setPoints = sys.DefaultSetPoints()
	}
	if len(setPoints) != sys.Processors {
		return nil, fmt.Errorf("eucon: %d set points for %d processors", len(setPoints), sys.Processors)
	}
	for p, b := range setPoints {
		if b <= 0 || b > 1 {
			return nil, fmt.Errorf("eucon: set point %g for processor %d outside (0, 1]", b, p)
		}
	}
	cfg = cfg.withDefaults()
	if cfg.MeasurementFilter < 0 || cfg.MeasurementFilter > 1 {
		return nil, fmt.Errorf("eucon: measurement filter %g outside [0, 1]", cfg.MeasurementFilter)
	}
	if cfg.StalenessBound < 0 {
		return nil, fmt.Errorf("eucon: staleness bound %d must be >= 0", cfg.StalenessBound)
	}
	f := sys.AllocationMatrix()
	rmin, rmax := sys.RateBounds()
	if cfg.RateMin != nil {
		if len(cfg.RateMin) != len(rmin) {
			return nil, fmt.Errorf("eucon: RateMin has %d entries for %d tasks", len(cfg.RateMin), len(rmin))
		}
		rmin = mat.VecClone(cfg.RateMin)
	}
	if cfg.RateMax != nil {
		if len(cfg.RateMax) != len(rmax) {
			return nil, fmt.Errorf("eucon: RateMax has %d entries for %d tasks", len(cfg.RateMax), len(rmax))
		}
		rmax = mat.VecClone(cfg.RateMax)
	}
	m, err := mpc.New(f, setPoints, rmin, rmax, mpc.Config{
		PredictionHorizon:        cfg.PredictionHorizon,
		ControlHorizon:           cfg.ControlHorizon,
		TrefOverTs:               cfg.TrefOverTs,
		QWeights:                 cfg.Weights,
		RWeights:                 cfg.RateMoveWeights,
		DisableOutputConstraints: cfg.DisableOutputConstraints,
	})
	if err != nil {
		return nil, fmt.Errorf("eucon: %w", err)
	}
	c := &Controller{sys: sys, mpc: m, cfg: cfg, f: f, b: mat.VecClone(setPoints)}
	if cfg.Explicit {
		rep, err := m.CompileExplicit(empc.Options{MaxRegions: cfg.ExplicitMaxRegions})
		if err != nil {
			return nil, fmt.Errorf("eucon: %w", err)
		}
		c.explicitReport = rep
	}
	return c, nil
}

// Name implements sim.Controller.
func (c *Controller) Name() string { return "EUCON" }

// Step implements sim.Controller: one feedback-loop invocation.
// Missing measurements (NaN entries in u, e.g. from feedback faults — see
// internal/fault) engage the hold-last-sample policy before the EWMA
// filter and MPC ever see the vector; when every substitute would be
// staler than Config.StalenessBound, the call degrades to skip-and-
// saturate: the returned slice aliases the rates argument, signalling
// "keep actuation unchanged" without copying.
func (c *Controller) Step(_ int, u, rates []float64) ([]float64, error) {
	u, ok := c.degradeFeedback(u)
	if !ok {
		// Skip-and-saturate: no trustworthy utilization picture exists, so
		// holding the applied rates is the safest actuation. The MPC's move
		// memory reconciles itself against the achieved (zero) move on the
		// next step, so no windup accumulates here.
		return rates, nil
	}
	if a := c.cfg.MeasurementFilter; a > 0 && a < 1 {
		if c.filtered == nil {
			c.filtered = append([]float64(nil), u...)
		} else if len(c.filtered) == len(u) {
			for i := range u {
				c.filtered[i] = a*u[i] + (1-a)*c.filtered[i]
			}
		}
		u = c.filtered
	}
	res, err := c.mpc.Step(u, rates)
	if err != nil {
		return nil, fmt.Errorf("eucon: %w", err)
	}
	c.steps++
	if res.OutputConstraintsRelaxed {
		c.relaxed++
	}
	return res.NewRates, nil
}

// Rates is the pre-interface name of Step.
//
// Deprecated: use Step.
func (c *Controller) Rates(k int, u, rates []float64) ([]float64, error) {
	return c.Step(k, u, rates)
}

// degradeFeedback applies the hold-last-sample policy to the measurement
// vector. It returns the vector to control on and true, or nil and false
// when the period must be skipped because a missing sample has no
// substitute within the staleness bound. Vectors without NaN entries pass
// through untouched, so fault-free runs are bit-identical with or without
// the policy.
func (c *Controller) degradeFeedback(u []float64) ([]float64, bool) {
	c.degHeld = 0
	c.degSkipped = false
	if c.lastGood == nil {
		c.lastGood = make([]float64, len(u))
		c.sampleAge = make([]int, len(u))
		for p := range c.sampleAge {
			c.sampleAge[p] = -1
		}
		c.uBuf = make([]float64, len(u))
	}
	missing := false
	skip := false
	for p, v := range u {
		if !math.IsNaN(v) {
			c.lastGood[p] = v
			c.sampleAge[p] = 0
			c.uBuf[p] = v
			continue
		}
		missing = true
		if c.sampleAge[p] >= 0 {
			c.sampleAge[p]++
		}
		switch age := c.sampleAge[p]; {
		case age < 0:
			// Never measured: assume the processor sits on its set point,
			// which contributes zero tracking error and so steers nothing.
			c.uBuf[p] = c.b[p]
			c.degHeld++
		case age <= c.cfg.StalenessBound:
			c.uBuf[p] = c.lastGood[p]
			c.degHeld++
		default:
			skip = true
		}
	}
	if !missing {
		return u, true
	}
	c.heldTotal += c.degHeld
	if skip {
		c.degSkipped = true
		c.skippedTotal++
		return nil, false
	}
	return c.uBuf, true
}

// LastDegradation implements sim.DegradationReporter: how many samples the
// last Step call substituted via hold-last-sample and whether it skipped
// actuation entirely.
func (c *Controller) LastDegradation() (int, bool) { return c.degHeld, c.degSkipped }

// HeldSamples reports the cumulative number of samples substituted through
// hold-last-sample since construction or Reset.
func (c *Controller) HeldSamples() int { return c.heldTotal }

// SkippedPeriods reports how many control invocations were skipped because
// missing feedback exceeded the staleness bound.
func (c *Controller) SkippedPeriods() int { return c.skippedTotal }

// AntiWindupSyncs reports how many per-task MPC move-memory entries had to
// be reconciled against the achieved rate move because actuation diverged
// from the command (see internal/mpc).
func (c *Controller) AntiWindupSyncs() int { return c.mpc.AntiWindupSyncs() }

// ContainmentCounts implements sim.ContainmentReporter: how many control
// steps since construction or Reset were resolved below the MPC's nominal
// solve paths (best-iterate acceptances, Tikhonov-regularized re-solves,
// and held periods — see the mpc degradation ladder).
func (c *Controller) ContainmentCounts() (bestIterate, regularized, held int) {
	return c.mpc.ContainmentCounts()
}

// LastOutcome reports which rung of the MPC degradation ladder produced
// the most recent control move.
func (c *Controller) LastOutcome() mpc.SolveOutcome { return c.mpc.LastOutcome() }

// SetPoints returns the current utilization set points.
func (c *Controller) SetPoints() []float64 { return c.mpc.SetPoints() }

// UpdateSetPoints changes the set points online (overload protection:
// paper §3.3). When the controller runs with an explicit law and the set
// points actually change, the law is recompiled for the new set points —
// the piecewise-affine offsets bake them in — so the fast path survives
// overload-protection transitions. Recompilation is an offline-scale cost
// (tens of milliseconds) paid only on genuine set-point changes.
func (c *Controller) UpdateSetPoints(b []float64) error {
	if err := c.mpc.UpdateSetPoints(b); err != nil {
		return fmt.Errorf("eucon: %w", err)
	}
	copy(c.b, b)
	if c.cfg.Explicit && c.mpc.ExplicitLaw() == nil {
		rep, err := c.mpc.CompileExplicit(empc.Options{MaxRegions: c.cfg.ExplicitMaxRegions})
		if err != nil {
			return fmt.Errorf("eucon: recompile explicit law: %w", err)
		}
		c.explicitReport = rep
	}
	return nil
}

// ExplicitCounts implements sim.ExplicitReporter: explicit fast-path hits
// and fallback misses since construction or Reset. Both are zero when the
// controller runs without Config.Explicit.
func (c *Controller) ExplicitCounts() (hits, misses int) { return c.mpc.ExplicitCounts() }

// ExplicitReport returns the offline-compile report of the explicit law
// (region count, exploration stats, build digest), or nil when the
// controller runs without Config.Explicit.
func (c *Controller) ExplicitReport() *empc.Report { return c.explicitReport }

// Reset restores the controller to its post-New state between runs: the
// MPC's move memory, warm-start cache, and measurement-filter state are
// cleared and the step counters restart. A Reset controller drives a run
// bit-identically to a freshly built one, which lets sweep workers reuse
// one controller across replications.
func (c *Controller) Reset() {
	c.mpc.Reset()
	c.filtered = nil
	c.relaxed = 0
	c.steps = 0
	for p := range c.sampleAge {
		c.sampleAge[p] = -1
	}
	c.degHeld = 0
	c.degSkipped = false
	c.heldTotal = 0
	c.skippedTotal = 0
}

// RelaxedPeriods reports how many sampling periods required dropping the
// hard utilization constraints due to infeasibility (severe overload).
func (c *Controller) RelaxedPeriods() int { return c.relaxed }

// Steps reports how many control invocations have run.
func (c *Controller) Steps() int { return c.steps }

// Gains exposes the unconstrained feedback gain matrices for stability
// analysis (paper §6.2).
func (c *Controller) Gains() (ke, kd *mat.Dense, err error) { return c.mpc.Gains() }

// gains computes the unconstrained gain matrices into controller-owned
// buffers via the allocation-free mpc.GainsTo, so repeated stability
// queries re-solve against the cached factorization instead of rebuilding
// everything.
func (c *Controller) gains() (ke, kd *mat.Dense, err error) {
	if c.keBuf == nil {
		m, n := len(c.sys.Tasks), c.sys.Processors
		c.keBuf = mat.New(m, n)
		c.kdBuf = mat.New(m, m)
	}
	if err := c.mpc.GainsTo(c.keBuf, c.kdBuf); err != nil {
		return nil, nil, err
	}
	return c.keBuf, c.kdBuf, nil
}

// CriticalGain computes the critical uniform utilization gain of the
// closed loop by bisection over [lo, hi]: the execution-time factor beyond
// which the system is predicted to lose stability.
func (c *Controller) CriticalGain(lo, hi float64) (float64, error) {
	ke, kd, err := c.gains()
	if err != nil {
		return 0, fmt.Errorf("eucon: %w", err)
	}
	g, err := stability.CriticalGain(c.f, ke, kd, lo, hi, 1e-4)
	if err != nil {
		return 0, fmt.Errorf("eucon: %w", err)
	}
	return g, nil
}

// StableAt reports whether the closed loop is predicted stable when every
// processor's utilization gain equals g (i.e. all execution times are g
// times their estimates).
func (c *Controller) StableAt(g float64) (bool, error) {
	ke, kd, err := c.gains()
	if err != nil {
		return false, fmt.Errorf("eucon: %w", err)
	}
	stable, err := stability.IsStable(c.f, ke, kd, mat.Constant(c.sys.Processors, g), 0)
	if err != nil {
		return false, fmt.Errorf("eucon: %w", err)
	}
	return stable, nil
}

// Structured reports whether the MPC solver's cached Hessian factorization
// uses the banded structure-exploiting backend, and its half bandwidth (0
// when dense).
func (c *Controller) Structured() (banded bool, bandwidth int) { return c.mpc.Structured() }
