package core

import (
	"math"
	"testing"

	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/task"
)

func simpleSystem() *task.System {
	return &task.System{
		Name:       "SIMPLE",
		Processors: 2,
		Tasks: []task.Task{
			{Name: "T1", Subtasks: []task.Subtask{{Processor: 0, EstimatedCost: 35}}, RateMin: 1.0 / 700, RateMax: 1.0 / 35, InitialRate: 1.0 / 60},
			{Name: "T2", Subtasks: []task.Subtask{{Processor: 0, EstimatedCost: 35}, {Processor: 1, EstimatedCost: 35}}, RateMin: 1.0 / 700, RateMax: 1.0 / 35, InitialRate: 1.0 / 90},
			{Name: "T3", Subtasks: []task.Subtask{{Processor: 1, EstimatedCost: 45}}, RateMin: 1.0 / 900, RateMax: 1.0 / 45, InitialRate: 1.0 / 100},
		},
	}
}

func TestNewDefaults(t *testing.T) {
	c, err := New(simpleSystem(), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b := c.SetPoints()
	for p, v := range b {
		if math.Abs(v-0.8284) > 5e-4 {
			t.Errorf("default set point for P%d = %v, want Liu–Layland 0.828", p+1, v)
		}
	}
}

func TestNewValidation(t *testing.T) {
	sys := simpleSystem()
	if _, err := New(&task.System{Name: "bad", Processors: 1}, nil, Config{}); err == nil {
		t.Error("invalid system accepted")
	}
	if _, err := New(sys, []float64{0.5}, Config{}); err == nil {
		t.Error("wrong set-point count accepted")
	}
	if _, err := New(sys, []float64{0.5, 1.5}, Config{}); err == nil {
		t.Error("set point above 1 accepted")
	}
	if _, err := New(sys, []float64{0, 0.5}, Config{}); err == nil {
		t.Error("zero set point accepted")
	}
	if _, err := New(sys, nil, Config{PredictionHorizon: 1, ControlHorizon: 4}); err == nil {
		t.Error("M > P accepted")
	}
}

func TestEUCONDrivesSimulatorToSetPoint(t *testing.T) {
	sys := simpleSystem()
	c, err := New(sys, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(sim.Config{
		System:         sys,
		SamplingPeriod: 1000,
		Periods:        100,
		Controller:     c,
		ETF:            sim.ConstantETF(0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Average over the tail must sit at the set point (Figure 3a behavior).
	var sum0, sum1 float64
	tail := tr.Utilization[60:]
	for _, u := range tail {
		sum0 += u[0]
		sum1 += u[1]
	}
	m0, m1 := sum0/float64(len(tail)), sum1/float64(len(tail))
	if math.Abs(m0-0.828) > 0.02 {
		t.Errorf("P1 tail mean = %v, want ≈ 0.828", m0)
	}
	if math.Abs(m1-0.828) > 0.02 {
		t.Errorf("P2 tail mean = %v, want ≈ 0.828", m1)
	}
	if c.Steps() != 100 {
		t.Errorf("Steps = %d, want 100", c.Steps())
	}
}

func TestRatesRespectsBounds(t *testing.T) {
	sys := simpleSystem()
	c, err := New(sys, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rates := sys.InitialRates()
	rmin, rmax := sys.RateBounds()
	u := []float64{0.99, 0.99}
	for k := 0; k < 50; k++ {
		var err error
		rates, err = c.Step(k, u, rates)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rates {
			if rates[i] < rmin[i]-1e-12 || rates[i] > rmax[i]+1e-12 {
				t.Fatalf("step %d: rate[%d] = %v outside [%v, %v]", k, i, rates[i], rmin[i], rmax[i])
			}
		}
	}
}

func TestRelaxedPeriodsCountsOverload(t *testing.T) {
	sys := simpleSystem()
	c, err := New(sys, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rmin, _ := sys.RateBounds()
	// Rates pinned at minimum, yet massive overload: infeasible constraints.
	if _, err := c.Step(0, []float64{1, 1}, rmin); err != nil {
		t.Fatal(err)
	}
	if c.RelaxedPeriods() != 1 {
		t.Fatalf("RelaxedPeriods = %d, want 1", c.RelaxedPeriods())
	}
}

func TestUpdateSetPointsOnline(t *testing.T) {
	c, err := New(simpleSystem(), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.UpdateSetPoints([]float64{0.5, 0.6}); err != nil {
		t.Fatal(err)
	}
	got := c.SetPoints()
	if math.Abs(got[0]-0.5) > 1e-12 || math.Abs(got[1]-0.6) > 1e-12 {
		t.Fatalf("SetPoints = %v after update", got)
	}
	if err := c.UpdateSetPoints([]float64{0.5}); err == nil {
		t.Error("short set-point vector accepted")
	}
}

func TestCriticalGainSimple(t *testing.T) {
	c, err := New(simpleSystem(), []float64{0.828, 0.828}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.CriticalGain(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 5.95 analytic, 6.5–7 empirical.
	if g < 5.5 || g > 7 {
		t.Fatalf("critical gain = %v, want within [5.5, 7]", g)
	}
	stable, err := c.StableAt(1)
	if err != nil {
		t.Fatal(err)
	}
	if !stable {
		t.Error("StableAt(1) = false")
	}
	unstable, err := c.StableAt(8)
	if err != nil {
		t.Fatal(err)
	}
	if unstable {
		t.Error("StableAt(8) = true")
	}
}

func TestConfigDefaults(t *testing.T) {
	got := Config{}.withDefaults()
	if got.PredictionHorizon != 2 || got.ControlHorizon != 1 || got.TrefOverTs != 4 {
		t.Fatalf("withDefaults = %+v, want paper Table 2 SIMPLE values", got)
	}
	custom := Config{PredictionHorizon: 4, ControlHorizon: 2, TrefOverTs: 8}.withDefaults()
	if custom.PredictionHorizon != 4 || custom.ControlHorizon != 2 || custom.TrefOverTs != 8 {
		t.Fatalf("withDefaults clobbered explicit values: %+v", custom)
	}
}

func TestName(t *testing.T) {
	c, err := New(simpleSystem(), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "EUCON" {
		t.Fatalf("Name = %q", c.Name())
	}
}

func TestMeasurementFilterValidation(t *testing.T) {
	if _, err := New(simpleSystem(), nil, Config{MeasurementFilter: 1.5}); err == nil {
		t.Error("filter above 1 accepted")
	}
	if _, err := New(simpleSystem(), nil, Config{MeasurementFilter: -0.1}); err == nil {
		t.Error("negative filter accepted")
	}
}

func TestMeasurementFilterSmoothsNoise(t *testing.T) {
	// Feed measurements alternating symmetrically around the set point with
	// fixed rates: the filtered controller's commanded rate changes must be
	// smaller, because the EWMA converges to the (on-target) mean while the
	// unfiltered controller chases every sample.
	variation := func(alpha float64) float64 {
		c, err := New(simpleSystem(), nil, Config{MeasurementFilter: alpha})
		if err != nil {
			t.Fatal(err)
		}
		rates := simpleSystem().InitialRates()
		var total float64
		for k := 5; k < 40; k++ { // skip the filter's warm-up
			u := []float64{0.778, 0.778}
			if k%2 == 1 {
				u = []float64{0.878, 0.878}
			}
			next, err := c.Step(k, u, rates)
			if err != nil {
				t.Fatal(err)
			}
			for i := range next {
				d := next[i] - rates[i]
				if d < 0 {
					d = -d
				}
				if k >= 10 {
					total += d
				}
			}
		}
		return total
	}
	unfiltered := variation(0)
	filtered := variation(0.3)
	if filtered >= unfiltered {
		t.Fatalf("filtered rate variation %v >= unfiltered %v", filtered, unfiltered)
	}
}

func TestResetClearsFilter(t *testing.T) {
	c, err := New(simpleSystem(), nil, Config{MeasurementFilter: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	rates := simpleSystem().InitialRates()
	r1, err := c.Step(0, []float64{0.5, 0.5}, rates)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(1, []float64{0.9, 0.9}, r1); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	r2, err := c.Step(0, []float64{0.5, 0.5}, rates)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if math.Abs(r1[i]-r2[i]) > 1e-12 {
			t.Fatalf("Reset did not clear filter state: %v vs %v", r1, r2)
		}
	}
}

// TestRatesSteadyStateAllocs guards the hot-path optimization: after
// warm-up, one control period must stay near-allocation-free (the C stack,
// its factorization, the constraint matrices, and all solver scratch are
// cached on the controller; only the small result slices escape).
func TestRatesSteadyStateAllocs(t *testing.T) {
	c, err := New(simpleSystem(), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	u := []float64{0.5, 0.6}
	rates := simpleSystem().InitialRates()
	for i := 0; i < 10; i++ { // warm the solver's active-set memory
		if _, err := c.Step(i, u, rates); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := c.Step(0, u, rates); err != nil {
			t.Fatal(err)
		}
	})
	// The seed implementation allocated ~94 per step on SIMPLE; the cached
	// controller needs only the per-step result slices. Allow headroom for
	// an occasional active-set excursion.
	if allocs > 18 {
		t.Errorf("steady-state Rates allocates %.0f objects/op, want <= 18", allocs)
	}
}

// TestDegradationHoldLast exercises the hold-last-sample policy: NaN
// samples within the staleness bound are substituted with the last usable
// measurement and control proceeds; degradation is reported per call.
func TestDegradationHoldLast(t *testing.T) {
	c, err := New(simpleSystem(), nil, Config{StalenessBound: 2})
	if err != nil {
		t.Fatal(err)
	}
	rates := []float64{1.0 / 60, 1.0 / 90, 1.0 / 100}
	good := []float64{0.5, 0.6}
	out, err := c.Step(0, good, rates)
	if err != nil {
		t.Fatal(err)
	}
	if h, s := c.LastDegradation(); h != 0 || s {
		t.Errorf("clean sample reported degradation (%d, %v)", h, s)
	}
	rates = out

	// Drop P1's sample: held within the bound, control still runs.
	lossy := []float64{math.NaN(), 0.6}
	out2, err := c.Step(1, lossy, rates)
	if err != nil {
		t.Fatal(err)
	}
	if h, s := c.LastDegradation(); h != 1 || s {
		t.Errorf("one missing sample: LastDegradation = (%d, %v), want (1, false)", h, s)
	}
	for i := range out2 {
		if math.IsNaN(out2[i]) {
			t.Fatalf("NaN leaked into commanded rates: %v", out2)
		}
	}
	if c.HeldSamples() != 1 {
		t.Errorf("HeldSamples = %d, want 1", c.HeldSamples())
	}

	// Substituting must behave as if the last good sample repeated: the
	// command equals that of a controller fed 0.5 explicitly.
	ref, err := New(simpleSystem(), nil, Config{StalenessBound: 2})
	if err != nil {
		t.Fatal(err)
	}
	rref := []float64{1.0 / 60, 1.0 / 90, 1.0 / 100}
	refOut, err := ref.Step(0, good, rref)
	if err != nil {
		t.Fatal(err)
	}
	refOut2, err := ref.Step(1, good, refOut)
	if err != nil {
		t.Fatal(err)
	}
	_ = refOut2
	for i := range out2 {
		if math.Abs(out2[i]-refOut2[i]) > 1e-15 {
			t.Errorf("task %d: hold-last command %g differs from replayed-sample command %g", i, out2[i], refOut2[i])
		}
	}
}

// TestDegradationSkipAndSaturate starves the controller of one processor's
// feedback past the staleness bound: it must stop actuating (returning the
// current rates unchanged) instead of steering on stale data, and recover
// once feedback returns.
func TestDegradationSkipAndSaturate(t *testing.T) {
	c, err := New(simpleSystem(), nil, Config{StalenessBound: 2})
	if err != nil {
		t.Fatal(err)
	}
	rates := []float64{1.0 / 60, 1.0 / 90, 1.0 / 100}
	if _, err := c.Step(0, []float64{0.5, 0.6}, rates); err != nil {
		t.Fatal(err)
	}
	lossy := []float64{math.NaN(), 0.6}
	skips := 0
	for k := 1; k <= 5; k++ {
		out, err := c.Step(k, lossy, rates)
		if err != nil {
			t.Fatal(err)
		}
		if _, skipped := c.LastDegradation(); skipped {
			skips++
			for i := range out {
				if out[i] != rates[i] {
					t.Fatalf("period %d: skip-and-saturate changed rates", k)
				}
			}
		}
	}
	// Ages 1 and 2 are within bound 2; ages 3..5 exceed it.
	if skips != 3 {
		t.Errorf("skipped %d periods, want 3", skips)
	}
	if c.SkippedPeriods() != 3 {
		t.Errorf("SkippedPeriods = %d, want 3", c.SkippedPeriods())
	}
	// Fresh feedback ends the degradation immediately.
	if _, err := c.Step(6, []float64{0.5, 0.6}, rates); err != nil {
		t.Fatal(err)
	}
	if h, s := c.LastDegradation(); h != 0 || s {
		t.Errorf("after recovery: LastDegradation = (%d, %v), want (0, false)", h, s)
	}

	// Reset clears every degradation counter.
	c.Reset()
	if c.HeldSamples() != 0 || c.SkippedPeriods() != 0 {
		t.Error("Reset kept degradation totals")
	}
}

// TestDegradationNeverMeasured drops a processor's feedback from the very
// first period: with no last-good sample the controller assumes the set
// point (zero tracking error) instead of skipping forever or crashing.
func TestDegradationNeverMeasured(t *testing.T) {
	c, err := New(simpleSystem(), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rates := []float64{1.0 / 60, 1.0 / 90, 1.0 / 100}
	out, err := c.Step(0, []float64{math.NaN(), math.NaN()}, rates)
	if err != nil {
		t.Fatal(err)
	}
	if h, s := c.LastDegradation(); h != 2 || s {
		t.Errorf("LastDegradation = (%d, %v), want (2, false)", h, s)
	}
	for i := range out {
		if math.IsNaN(out[i]) {
			t.Fatalf("NaN leaked into rates: %v", out)
		}
	}
}
