// Package task defines the flexible end-to-end task model of the EUCON
// paper (§3.1): a system of m periodic end-to-end tasks, each a chain of
// subtasks allocated to n processors, with adjustable invocation rates.
//
// Time throughout the project is measured in abstract "time units" exactly
// as in the paper's evaluation; rates are in invocations per time unit.
package task

import (
	"errors"
	"fmt"
	"math"

	"github.com/rtsyslab/eucon/internal/mat"
)

// Subtask is one stage of an end-to-end task, pinned to a processor.
type Subtask struct {
	// Processor is the index (0-based) of the processor executing this
	// subtask.
	Processor int
	// EstimatedCost is the design-time execution-time estimate c_ij in time
	// units. Actual execution times at run time may differ arbitrarily.
	EstimatedCost float64
}

// Task is a periodic end-to-end task: a chain of subtasks under precedence
// constraints, all sharing the task's invocation rate. The rate may be
// adjusted at run time within [RateMin, RateMax].
type Task struct {
	// Name identifies the task in traces and logs (e.g. "T1").
	Name string
	// Subtasks is the precedence chain; Subtasks[j] cannot start an
	// invocation before Subtasks[j-1] finishes it.
	Subtasks []Subtask
	// RateMin and RateMax bound the admissible invocation rate
	// (invocations per time unit).
	RateMin, RateMax float64
	// InitialRate is the rate r_i(0) before the controller acts.
	InitialRate float64
}

// Validate checks the task for internal consistency.
func (t *Task) Validate() error {
	if t.Name == "" {
		return errors.New("task: empty name")
	}
	if len(t.Subtasks) == 0 {
		return fmt.Errorf("task %s: no subtasks", t.Name)
	}
	for j, st := range t.Subtasks {
		if st.Processor < 0 {
			return fmt.Errorf("task %s subtask %d: negative processor index", t.Name, j)
		}
		if st.EstimatedCost <= 0 {
			return fmt.Errorf("task %s subtask %d: estimated cost %g must be positive", t.Name, j, st.EstimatedCost)
		}
	}
	if t.RateMin <= 0 || t.RateMax <= 0 {
		return fmt.Errorf("task %s: rate bounds must be positive, got [%g, %g]", t.Name, t.RateMin, t.RateMax)
	}
	if t.RateMin > t.RateMax {
		return fmt.Errorf("task %s: RateMin %g > RateMax %g", t.Name, t.RateMin, t.RateMax)
	}
	if t.InitialRate < t.RateMin || t.InitialRate > t.RateMax {
		return fmt.Errorf("task %s: initial rate %g outside [%g, %g]", t.Name, t.InitialRate, t.RateMin, t.RateMax)
	}
	return nil
}

// EndToEndDeadline returns the task's relative end-to-end deadline for a
// given rate, using the paper's evaluation convention d_i = n_i / r_i
// (each subtask gets one period as its subdeadline).
func (t *Task) EndToEndDeadline(rate float64) float64 {
	return float64(len(t.Subtasks)) / rate
}

// System is a complete workload: a set of end-to-end tasks over a fixed
// number of processors.
type System struct {
	// Name identifies the configuration (e.g. "SIMPLE", "MEDIUM").
	Name string
	// Tasks is the task set; task i corresponds to rate input r_i.
	Tasks []Task
	// Processors is the processor count n.
	Processors int
}

// Validate checks the whole system: every task valid, every subtask mapped
// to an existing processor, and every processor hosting at least one
// subtask.
func (s *System) Validate() error {
	if s.Processors <= 0 {
		return fmt.Errorf("system %s: processor count %d must be positive", s.Name, s.Processors)
	}
	if len(s.Tasks) == 0 {
		return fmt.Errorf("system %s: no tasks", s.Name)
	}
	used := make([]bool, s.Processors)
	seen := make(map[string]bool, len(s.Tasks))
	for i := range s.Tasks {
		t := &s.Tasks[i]
		if err := t.Validate(); err != nil {
			return fmt.Errorf("system %s: %w", s.Name, err)
		}
		if seen[t.Name] {
			return fmt.Errorf("system %s: duplicate task name %q", s.Name, t.Name)
		}
		seen[t.Name] = true
		for j, st := range t.Subtasks {
			if st.Processor >= s.Processors {
				return fmt.Errorf("system %s: task %s subtask %d on processor %d, only %d processors", s.Name, t.Name, j, st.Processor, s.Processors)
			}
			used[st.Processor] = true
		}
	}
	for p, ok := range used {
		if !ok {
			return fmt.Errorf("system %s: processor %d hosts no subtasks", s.Name, p)
		}
	}
	return nil
}

// AllocationMatrix returns the n×m subtask allocation matrix F of the paper
// (§5): F[i][j] is the sum of estimated costs of task j's subtasks on
// processor i (zero when task j has no subtask there). F maps rate changes
// to estimated utilization changes: Δb = F·Δr.
func (s *System) AllocationMatrix() *mat.Dense {
	f := mat.New(s.Processors, len(s.Tasks))
	for j := range s.Tasks {
		for _, st := range s.Tasks[j].Subtasks {
			f.Set(st.Processor, j, f.At(st.Processor, j)+st.EstimatedCost)
		}
	}
	return f
}

// SubtaskCount returns the number of subtasks hosted on processor p.
func (s *System) SubtaskCount(p int) int {
	count := 0
	for i := range s.Tasks {
		for _, st := range s.Tasks[i].Subtasks {
			if st.Processor == p {
				count++
			}
		}
	}
	return count
}

// TotalSubtasks returns the number of subtasks across all tasks.
func (s *System) TotalSubtasks() int {
	total := 0
	for i := range s.Tasks {
		total += len(s.Tasks[i].Subtasks)
	}
	return total
}

// InitialRates returns the vector r(0).
func (s *System) InitialRates() []float64 {
	r := make([]float64, len(s.Tasks))
	for i := range s.Tasks {
		r[i] = s.Tasks[i].InitialRate
	}
	return r
}

// RateBounds returns the vectors R_min and R_max.
func (s *System) RateBounds() (rmin, rmax []float64) {
	rmin = make([]float64, len(s.Tasks))
	rmax = make([]float64, len(s.Tasks))
	for i := range s.Tasks {
		rmin[i] = s.Tasks[i].RateMin
		rmax[i] = s.Tasks[i].RateMax
	}
	return rmin, rmax
}

// EstimatedUtilization returns F·r: the utilization of each processor
// predicted from the design-time cost estimates at the given rates.
func (s *System) EstimatedUtilization(rates []float64) []float64 {
	return s.AllocationMatrix().MulVec(rates)
}

// LiuLaylandBound returns the RMS schedulable utilization bound
// m·(2^{1/m} − 1) for m tasks on one processor (Liu & Layland 1973). Zero
// tasks yield a bound of 1 (an idle processor trivially meets deadlines).
func LiuLaylandBound(m int) float64 {
	if m <= 0 {
		return 1
	}
	return float64(m) * (math.Pow(2, 1/float64(m)) - 1)
}

// DefaultSetPoints returns the utilization set point for every processor
// following the paper's evaluation setup (eq. 13): the Liu–Layland bound of
// the number of subtasks hosted on each processor.
func (s *System) DefaultSetPoints() []float64 {
	b := make([]float64, s.Processors)
	for p := range b {
		b[p] = LiuLaylandBound(s.SubtaskCount(p))
	}
	return b
}
