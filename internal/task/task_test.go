package task

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/rtsyslab/eucon/internal/mat"
)

// paperExample is the 3-task/2-processor example from paper §5.
func paperExample() *System {
	return &System{
		Name:       "example",
		Processors: 2,
		Tasks: []Task{
			{Name: "T1", Subtasks: []Subtask{{Processor: 0, EstimatedCost: 11}}, RateMin: 0.001, RateMax: 0.03, InitialRate: 0.01},
			{Name: "T2", Subtasks: []Subtask{{Processor: 0, EstimatedCost: 21}, {Processor: 1, EstimatedCost: 22}}, RateMin: 0.001, RateMax: 0.03, InitialRate: 0.01},
			{Name: "T3", Subtasks: []Subtask{{Processor: 1, EstimatedCost: 31}}, RateMin: 0.001, RateMax: 0.03, InitialRate: 0.01},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := paperExample().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	base := func() *System { return paperExample() }
	tests := []struct {
		name    string
		mutate  func(*System)
		wantSub string
	}{
		{"no processors", func(s *System) { s.Processors = 0 }, "processor count"},
		{"no tasks", func(s *System) { s.Tasks = nil }, "no tasks"},
		{"empty task name", func(s *System) { s.Tasks[0].Name = "" }, "empty name"},
		{"duplicate task name", func(s *System) { s.Tasks[1].Name = "T1" }, "duplicate"},
		{"no subtasks", func(s *System) { s.Tasks[0].Subtasks = nil }, "no subtasks"},
		{"negative processor", func(s *System) { s.Tasks[0].Subtasks[0].Processor = -1 }, "negative processor"},
		{"processor out of range", func(s *System) { s.Tasks[0].Subtasks[0].Processor = 9 }, "only 2 processors"},
		{"zero cost", func(s *System) { s.Tasks[0].Subtasks[0].EstimatedCost = 0 }, "must be positive"},
		{"zero rate min", func(s *System) { s.Tasks[0].RateMin = 0 }, "rate bounds"},
		{"inverted bounds", func(s *System) { s.Tasks[0].RateMin = 1; s.Tasks[0].RateMax = 0.5; s.Tasks[0].InitialRate = 0.7 }, "RateMin"},
		{"initial rate out of range", func(s *System) { s.Tasks[0].InitialRate = 99 }, "initial rate"},
		{
			"idle processor",
			func(s *System) {
				s.Tasks[1].Subtasks[1].Processor = 0
				s.Tasks[2].Subtasks[0].Processor = 0
			},
			"hosts no subtasks",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mutate(s)
			err := s.Validate()
			if err == nil {
				t.Fatal("Validate() = nil, want error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("Validate() = %q, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestAllocationMatrixPaperExample(t *testing.T) {
	// Paper §5: F = [[c11, c21, 0], [0, c22, c31]].
	f := paperExample().AllocationMatrix()
	want := mat.MustFromRows([][]float64{{11, 21, 0}, {0, 22, 31}})
	if !f.Equal(want, 0) {
		t.Fatalf("F = %v, want %v", f, want)
	}
}

func TestAllocationMatrixAccumulatesSameProcessor(t *testing.T) {
	// Two subtasks of the same task on the same processor add their costs.
	s := &System{
		Name:       "loop",
		Processors: 2,
		Tasks: []Task{
			{
				Name: "T1",
				Subtasks: []Subtask{
					{Processor: 0, EstimatedCost: 5},
					{Processor: 1, EstimatedCost: 7},
					{Processor: 0, EstimatedCost: 3},
				},
				RateMin: 0.001, RateMax: 1, InitialRate: 0.01,
			},
		},
	}
	f := s.AllocationMatrix()
	want := mat.MustFromRows([][]float64{{8}, {7}})
	if !f.Equal(want, 0) {
		t.Fatalf("F = %v, want %v", f, want)
	}
}

func TestEstimatedUtilization(t *testing.T) {
	s := paperExample()
	u := s.EstimatedUtilization([]float64{0.01, 0.01, 0.01})
	want := []float64{0.32, 0.53}
	if !mat.VecEqual(u, want, 1e-12) {
		t.Fatalf("EstimatedUtilization = %v, want %v", u, want)
	}
}

func TestSubtaskCount(t *testing.T) {
	s := paperExample()
	if got := s.SubtaskCount(0); got != 2 {
		t.Errorf("SubtaskCount(0) = %d, want 2", got)
	}
	if got := s.SubtaskCount(1); got != 2 {
		t.Errorf("SubtaskCount(1) = %d, want 2", got)
	}
	if got := s.TotalSubtasks(); got != 4 {
		t.Errorf("TotalSubtasks = %d, want 4", got)
	}
}

func TestInitialRatesAndBounds(t *testing.T) {
	s := paperExample()
	if got := s.InitialRates(); !mat.VecEqual(got, []float64{0.01, 0.01, 0.01}, 0) {
		t.Errorf("InitialRates = %v", got)
	}
	rmin, rmax := s.RateBounds()
	if !mat.VecEqual(rmin, []float64{0.001, 0.001, 0.001}, 0) || !mat.VecEqual(rmax, []float64{0.03, 0.03, 0.03}, 0) {
		t.Errorf("RateBounds = %v, %v", rmin, rmax)
	}
}

func TestLiuLaylandBound(t *testing.T) {
	tests := []struct {
		m    int
		want float64
	}{
		{0, 1},
		{1, 1},
		{2, 0.8284},
		{7, 0.7286}, // the paper reports B₁ = 0.729 for MEDIUM's P1
	}
	for _, tc := range tests {
		if got := LiuLaylandBound(tc.m); math.Abs(got-tc.want) > 5e-4 {
			t.Errorf("LiuLaylandBound(%d) = %v, want %v", tc.m, got, tc.want)
		}
	}
}

func TestLiuLaylandBoundMonotoneDecreasing(t *testing.T) {
	f := func(m uint8) bool {
		k := int(m%30) + 1
		return LiuLaylandBound(k+1) <= LiuLaylandBound(k)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLiuLaylandBoundLimit(t *testing.T) {
	// As m → ∞ the bound approaches ln 2 ≈ 0.693.
	if got := LiuLaylandBound(100000); math.Abs(got-math.Ln2) > 1e-4 {
		t.Fatalf("LiuLaylandBound(1e5) = %v, want ≈ ln2", got)
	}
}

func TestDefaultSetPoints(t *testing.T) {
	// Two subtasks per processor in the paper example: B = 0.828 on both
	// (the SIMPLE set point in §7.2).
	b := paperExample().DefaultSetPoints()
	for p, v := range b {
		if math.Abs(v-0.8284) > 5e-4 {
			t.Errorf("set point for P%d = %v, want 0.828", p+1, v)
		}
	}
}

func TestEndToEndDeadline(t *testing.T) {
	s := paperExample()
	// T2 has 2 subtasks: deadline at rate 0.01 is 200.
	if got := s.Tasks[1].EndToEndDeadline(0.01); math.Abs(got-200) > 1e-12 {
		t.Fatalf("EndToEndDeadline = %v, want 200", got)
	}
}
