package empc

import (
	"math"
	"testing"

	"github.com/rtsyslab/eucon/internal/mat"
)

// clampProblem is the smallest parametric QP with a known explicit
// solution: min (z − θ)² subject to −1 ≤ z ≤ 1 over θ ∈ [−2, 2]. Its
// explicit law is z*(θ) = clamp(θ, −1, 1) with three critical regions:
// the interior θ ∈ (−1, 1) and one saturated region per bound.
func clampProblem() *Problem {
	return &Problem{
		C:       mat.MustFromRows([][]float64{{1}}),
		A:       mat.MustFromRows([][]float64{{1}, {-1}}),
		D:       mat.MustFromRows([][]float64{{1}}),
		D0:      []float64{0},
		S:       mat.New(2, 1),
		S0:      []float64{1, 1},
		ThetaLo: []float64{-2},
		ThetaHi: []float64{2},
	}
}

func TestCompileClampLaw(t *testing.T) {
	law, rep, err := Compile(clampProblem(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if law.Regions() != 3 {
		t.Fatalf("got %d regions, want 3 (interior + two saturated)", law.Regions())
	}
	if rep.Regions != 3 || rep.Truncated {
		t.Fatalf("report %+v inconsistent with law", rep)
	}
	if law.InteriorIndex() < 0 {
		t.Fatal("interior region missing")
	}
	if law.NumTheta() != 1 || law.GainRows() != 1 {
		t.Fatalf("law dims nTheta=%d gainRows=%d, want 1/1", law.NumTheta(), law.GainRows())
	}
	hint := law.InteriorIndex()
	for _, theta := range []float64{-1.9, -1.2, -0.7, -0.25, 0, 0.3, 0.99, 1.3, 1.99} {
		z, idx, ok := law.Evaluate([]float64{theta}, hint)
		if !ok {
			t.Fatalf("θ=%g fell off the map", theta)
		}
		hint = idx
		want := math.Max(-1, math.Min(1, theta))
		if math.Abs(z[0]-want) > 1e-6 {
			t.Fatalf("z*(%g) = %g, want %g", theta, z[0], want)
		}
	}
	// The saturated regions carry the binding constraint in their active set.
	_, idx, ok := law.Evaluate([]float64{1.5}, -1)
	if !ok || idx == law.InteriorIndex() {
		t.Fatalf("θ=1.5 located region %d (ok=%v), want a saturated one", idx, ok)
	}
	as := law.ActiveSet(idx)
	if len(as) != 1 || as[0] != 0 {
		t.Fatalf("active set at θ=1.5 is %v, want [0]", as)
	}
	// Regions are global optimality conditions, not clipped to the domain
	// box (the box only bounds enumeration): beyond the domain the
	// saturated law still applies and still evaluates to the clamp.
	z, idx2, ok := law.Evaluate([]float64{3}, law.InteriorIndex())
	if !ok || idx2 != idx || math.Abs(z[0]-1) > 1e-6 {
		t.Fatalf("Evaluate(3) = (%v, %d, %v), want (≈1, %d, true)", z, idx2, ok, idx)
	}
}

func TestCompileDigestIndependentOfWorkers(t *testing.T) {
	var digests []string
	var regions []int
	for _, w := range []int{1, 2, 7} {
		law, rep, err := Compile(clampProblem(), Options{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		digests = append(digests, law.Digest())
		regions = append(regions, law.Regions())
		if rep.Workers != w {
			t.Fatalf("report workers %d, want %d", rep.Workers, w)
		}
	}
	for i := 1; i < len(digests); i++ {
		if digests[i] != digests[0] || regions[i] != regions[0] {
			t.Fatalf("compile not deterministic across worker counts: %v / %v", digests, regions)
		}
	}
}

func TestCompileTruncation(t *testing.T) {
	law, rep, err := Compile(clampProblem(), Options{MaxRegions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Fatal("expected truncated report at MaxRegions=1")
	}
	if law.Regions() != 1 || law.InteriorIndex() != 0 {
		t.Fatalf("truncated law has %d regions (interior %d), want just the interior", law.Regions(), law.InteriorIndex())
	}
	// Points in the never-enumerated saturated regions are truthfully
	// off-map rather than misattributed to the interior.
	if got := law.Locate([]float64{1.5}, 0); got >= 0 {
		t.Fatalf("Locate(1.5) = %d on a truncated map, want off-map", got)
	}
}

func TestCompileRejectsBadProblem(t *testing.T) {
	p := clampProblem()
	p.S0 = []float64{1}
	if _, _, err := Compile(p, Options{}); err == nil {
		t.Fatal("expected dimension error")
	}
	if _, _, err := Compile(&Problem{}, Options{}); err == nil {
		t.Fatal("expected nil-matrix error")
	}
}
