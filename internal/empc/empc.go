// Package empc compiles an explicit model-predictive control law: the
// offline enumeration of the critical regions of a parametric
// inequality-constrained least-squares problem
//
//	minimize  ‖C·z − d(θ)‖²   subject to  A·z ≤ b(θ)
//
// whose right-hand sides are affine in a parameter vector θ,
//
//	d(θ) = D·θ + d₀,   b(θ) = S·θ + s₀.
//
// For EUCON, θ stacks the measured utilizations, the applied task rates,
// and the previous control move — everything the controller's per-period
// solve depends on — so the optimal move z*(θ) is a piecewise-affine
// function of θ ("The explicit linear quadratic regulator for constrained
// systems", Bemporad et al.; see PAPERS.md for the parallel-enumeration
// variant this compiler follows). Each critical region is the polyhedron
// of parameters sharing one optimal active set W:
//
//	z(θ) = z_u(θ) − H⁻¹·A_Wᵀ·λ(θ),   λ(θ) = M⁻¹·(A_W·z_u(θ) − b_W(θ))
//
// with H = 2(CᵀC + εI), z_u(θ) = −H⁻¹·f(θ), f(θ) = −2Cᵀd(θ), and
// M = A_W·H⁻¹·A_Wᵀ; the region is cut out by the inactive-constraint
// inequalities A_i·z(θ) ≤ b_i(θ) and the dual-feasibility inequalities
// λ(θ) ≥ 0. Enumeration walks the active-set graph breadth-first from the
// interior region (W = ∅), flipping one facet at a time, with each
// frontier level fanned out across a worker pool; the resulting region
// table is independent of the worker count and carries a deterministic
// build digest so CI can prove two compiles agreed bit for bit.
//
// The compiled Law is a flat, cache-friendly point-location structure:
// one []float64 for all halfspace rows, one for all gain rows, located by
// sequential scan with a caller-held warm-start hint. Runtime exactness is
// split by design: for the interior region the runtime (internal/mpc)
// re-derives the move through qp.LSI.SolveInteriorTo, which is bit-identical
// to the iterative solver; the stored affine gains of every region are
// accurate to solver tolerance (~1e-9) and serve point location, analysis,
// and the equivalence property tests.
package empc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/rtsyslab/eucon/internal/mat"
)

// hessianRidge mirrors the qp package's least-squares regularization so the
// region algebra uses the same Hessian the online solver factors.
const hessianRidge = 1e-8

// interiorSlack shrinks region halfspaces during the emptiness test so only
// full-dimensional regions (within the parameter domain) are kept; regions
// that exist only as lower-dimensional facets are unreachable by the
// runtime's tolerance-padded point location anyway.
const interiorSlack = 1e-7

// Problem describes the parametric program to compile. All matrices are
// captured by reference and must not be mutated while Compile runs.
type Problem struct {
	// C is the least-squares stack (ℓ×nz): the cost is ‖C·z − d(θ)‖².
	C *mat.Dense
	// A holds the constraint rows (mc×nz): A·z ≤ b(θ).
	A *mat.Dense
	// D and D0 give the affine cost target d(θ) = D·θ + D0 (D is ℓ×nθ).
	D  *mat.Dense
	D0 []float64
	// S and S0 give the affine constraint bound b(θ) = S·θ + S0 (S is mc×nθ).
	S  *mat.Dense
	S0 []float64
	// ThetaLo and ThetaHi bound the admissible parameter box; regions with
	// no interior inside the box are pruned.
	ThetaLo, ThetaHi []float64
	// GainRows is how many leading rows of z(θ) each region stores (the
	// controller only applies the first control move); 0 stores all nz.
	GainRows int
}

func (p *Problem) validate() (nz, mc, nl, nTheta int, err error) {
	if p.C == nil || p.A == nil || p.D == nil || p.S == nil {
		return 0, 0, 0, 0, errors.New("empc: problem matrices must all be non-nil")
	}
	nl, nz = p.C.Dims()
	mcRows, acols := p.A.Dims()
	if acols != nz {
		return 0, 0, 0, 0, fmt.Errorf("empc: A has %d columns, want %d", acols, nz)
	}
	dRows, nTheta := p.D.Dims()
	if dRows != nl {
		return 0, 0, 0, 0, fmt.Errorf("empc: D has %d rows, want %d", dRows, nl)
	}
	if sr, sc := p.S.Dims(); sr != mcRows || sc != nTheta {
		return 0, 0, 0, 0, fmt.Errorf("empc: S is %dx%d, want %dx%d", sr, sc, mcRows, nTheta)
	}
	if len(p.D0) != nl || len(p.S0) != mcRows {
		return 0, 0, 0, 0, fmt.Errorf("empc: offset lengths %d/%d, want %d/%d", len(p.D0), len(p.S0), nl, mcRows)
	}
	if len(p.ThetaLo) != nTheta || len(p.ThetaHi) != nTheta {
		return 0, 0, 0, 0, fmt.Errorf("empc: domain box lengths %d/%d, want %d", len(p.ThetaLo), len(p.ThetaHi), nTheta)
	}
	for t := range p.ThetaLo {
		if p.ThetaLo[t] > p.ThetaHi[t] {
			return 0, 0, 0, 0, fmt.Errorf("empc: domain box lo[%d] = %g > hi[%d] = %g", t, p.ThetaLo[t], t, p.ThetaHi[t])
		}
	}
	if p.GainRows < 0 || p.GainRows > nz {
		return 0, 0, 0, 0, fmt.Errorf("empc: GainRows %d outside [0, %d]", p.GainRows, nz)
	}
	return nz, mcRows, nl, nTheta, nil
}

// Options tunes the offline compile. The zero value selects the defaults.
type Options struct {
	// MaxRegions caps how many critical regions are enumerated; the walk
	// stops enqueueing new active sets beyond the cap and the Report marks
	// the law truncated. 0 selects 64 — enough to cover the operating
	// envelope of the paper workloads while keeping compile time bounded.
	MaxRegions int
	// Workers sizes the region-exploration pool; 0 selects GOMAXPROCS. The
	// compiled law and its digest are identical for every worker count.
	Workers int
	// Tol is the numerical tolerance for degenerate-row detection; 0
	// selects 1e-9 (the qp solver default).
	Tol float64
}

func (o Options) withDefaults() Options {
	if o.MaxRegions <= 0 {
		o.MaxRegions = 64
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	return o
}

// Report summarizes one offline compile for logs and CI trend records.
type Report struct {
	// Regions is how many critical regions the law stores.
	Regions int
	// Explored is how many candidate active sets were expanded (stored
	// regions plus degenerate and empty candidates).
	Explored int
	// Truncated reports that the MaxRegions cap stopped the enumeration
	// before the active-set graph was exhausted.
	Truncated bool
	// Digest is the law's deterministic build digest (FNV-64a, hex).
	Digest string
	// Workers is the pool size the compile ran with.
	Workers int
}

// region indexes one critical region's rows inside the Law's flat arrays.
type region struct {
	hsOff, hsRows  int // halfspace rows: nTheta+1 floats each (coeffs, rhs)
	gainOff        int // gainRows×(nTheta+1) floats (gain row, offset)
	actOff, actLen int
}

// Law is a compiled piecewise-affine control law: the flat region table
// plus point location. It is immutable after Compile and safe for
// concurrent readers.
type Law struct {
	nTheta   int
	gainRows int
	regions  []region
	hs       []float64 // all halfspace rows, normalized to unit ∞-norm
	gains    []float64
	active   []int
	interior int // index of the W = ∅ region, -1 if pruned
	digest   uint64
}

// locateTol pads point location so a query on a shared facet resolves to
// whichever adjacent region is scanned first instead of falling off the map.
const locateTol = 1e-9

// Regions reports how many critical regions the law stores.
func (l *Law) Regions() int { return len(l.regions) }

// NumTheta reports the parameter dimension.
func (l *Law) NumTheta() int { return l.nTheta }

// GainRows reports how many leading decision-vector rows each region's
// stored gain produces.
func (l *Law) GainRows() int { return l.gainRows }

// InteriorIndex reports the index of the empty-active-set region — the
// region where no constraint binds and the law coincides with the
// unconstrained least-squares solution — or -1 if it was pruned.
//
//eucon:noalloc
func (l *Law) InteriorIndex() int { return l.interior }

// Digest reports the deterministic build digest as a 16-hex-digit string:
// FNV-64a over the region count, active sets, halfspace rows, and gain
// rows in enumeration order. Equal digests prove two compiles produced
// bit-identical laws regardless of worker count.
func (l *Law) Digest() string { return fmt.Sprintf("%016x", l.digest) }

// ActiveSet reports region idx's optimal active set. The returned slice
// aliases the law's internal storage and must not be modified.
func (l *Law) ActiveSet(idx int) []int {
	r := l.regions[idx]
	return l.active[r.actOff : r.actOff+r.actLen : r.actOff+r.actLen]
}

// Contains reports whether theta satisfies every halfspace of region idx
// (with the locate tolerance).
//
//eucon:noalloc
func (l *Law) Contains(idx int, theta []float64) bool {
	r := l.regions[idx]
	row := l.hs[r.hsOff:]
	stride := l.nTheta + 1
	for i := 0; i < r.hsRows; i++ {
		w := row[i*stride : i*stride+l.nTheta]
		var dot float64
		for t, c := range w {
			dot += c * theta[t]
		}
		if dot > row[i*stride+l.nTheta]+locateTol {
			return false
		}
	}
	return true
}

// Locate returns the index of a region containing theta, scanning
// sequentially from the warm-start hint (the region the previous query
// resolved to), or -1 when theta falls off the compiled map. Facet points
// may resolve to either adjacent region.
//
//eucon:noalloc
func (l *Law) Locate(theta []float64, hint int) int {
	if hint >= 0 && hint < len(l.regions) && l.Contains(hint, theta) {
		return hint
	}
	for i := range l.regions {
		if i != hint && l.Contains(i, theta) {
			return i
		}
	}
	return -1
}

// EvaluateInto writes region idx's affine control law K·θ + k₀ into dst
// (length GainRows). The result approximates the iterative solver's
// optimal move to solver tolerance; the runtime's bit-exact path for the
// interior region lives in qp.LSI.SolveInteriorTo.
//
//eucon:noalloc
func (l *Law) EvaluateInto(dst, theta []float64, idx int) {
	r := l.regions[idx]
	stride := l.nTheta + 1
	for i := 0; i < l.gainRows; i++ {
		row := l.gains[r.gainOff+i*stride : r.gainOff+(i+1)*stride]
		s := row[l.nTheta]
		for t := 0; t < l.nTheta; t++ {
			s += row[t] * theta[t]
		}
		dst[i] = s
	}
}

// Evaluate locates theta and evaluates its region's law, returning the
// move, the region index, and whether theta was on the map. It allocates;
// hot paths should hold a dst and use Locate + EvaluateInto.
func (l *Law) Evaluate(theta []float64, hint int) ([]float64, int, bool) {
	idx := l.Locate(theta, hint)
	if idx < 0 {
		return nil, -1, false
	}
	dst := make([]float64, l.gainRows)
	l.EvaluateInto(dst, theta, idx)
	return dst, idx, true
}

// regionData is one explored candidate's full description, produced by a
// pool worker and merged sequentially.
type regionData struct {
	active    []int
	hs        []float64 // normalized halfspace rows, (nTheta+1) floats each
	gains     []float64 // gainRows×(nTheta+1)
	neighbors [][]int   // candidate active sets one facet flip away
}

// compiler carries the shared immutable problem data of one Compile call.
type compiler struct {
	p      *Problem
	opts   Options
	nz, mc int
	nl     int
	nTheta int
	gRows  int
	h      *mat.Dense
	hchol  *mat.Cholesky
	ct     *mat.Dense
}

// Compile enumerates the critical regions of p and returns the law plus a
// compile report. The enumeration fans each breadth-first frontier level
// out across a worker pool; the result is deterministic for any worker
// count.
func Compile(p *Problem, opts Options) (*Law, *Report, error) {
	nz, mc, nl, nTheta, err := p.validate()
	if err != nil {
		return nil, nil, err
	}
	opts = opts.withDefaults()
	gRows := p.GainRows
	if gRows == 0 {
		gRows = nz
	}
	// H = 2(CᵀC + εI), the same Hessian qp.NewLSI factors for the online
	// solve, so region gains agree with the iterative optimizer.
	ct := p.C.T()
	h := ct.Mul(p.C).Scale(2)
	scale := math.Max(1, h.MaxAbs())
	for i := 0; i < nz; i++ {
		h.Set(i, i, h.At(i, i)+hessianRidge*scale)
	}
	hchol, err := mat.FactorCholesky(h)
	if err != nil {
		return nil, nil, fmt.Errorf("empc: factor Hessian: %w", err)
	}
	c := &compiler{p: p, opts: opts, nz: nz, mc: mc, nl: nl, nTheta: nTheta, gRows: gRows, h: h, hchol: hchol, ct: ct}

	law := &Law{nTheta: nTheta, gainRows: gRows, interior: -1}
	visited := map[string]bool{activeKey(nil): true}
	frontier := [][]int{nil}
	explored := 0
	truncated := false
	enqueued := 1
	for len(frontier) > 0 {
		results := make([]*regionData, len(frontier))
		fanOut(opts.Workers, len(frontier), func(i int) {
			results[i] = c.explore(frontier[i])
		})
		var next [][]int
		for _, rd := range results {
			explored++
			if rd == nil {
				continue // degenerate active set or empty region
			}
			law.appendRegion(rd, nTheta, gRows)
			for _, nb := range rd.neighbors {
				k := activeKey(nb)
				if visited[k] {
					continue
				}
				if enqueued >= opts.MaxRegions {
					truncated = true
					continue
				}
				visited[k] = true
				enqueued++
				next = append(next, nb)
			}
		}
		frontier = next
	}
	law.digest = law.computeDigest()
	rep := &Report{
		Regions:   len(law.regions),
		Explored:  explored,
		Truncated: truncated,
		Digest:    law.Digest(),
		Workers:   opts.Workers,
	}
	if len(law.regions) == 0 {
		return nil, rep, errors.New("empc: no nonempty critical region inside the parameter domain")
	}
	return law, rep, nil
}

// appendRegion merges one explored region into the flat law arrays.
func (l *Law) appendRegion(rd *regionData, nTheta, gRows int) {
	stride := nTheta + 1
	r := region{
		hsOff:   len(l.hs),
		hsRows:  len(rd.hs) / stride,
		gainOff: len(l.gains),
		actOff:  len(l.active),
		actLen:  len(rd.active),
	}
	l.hs = append(l.hs, rd.hs...)
	l.gains = append(l.gains, rd.gains...)
	l.active = append(l.active, rd.active...)
	if len(rd.active) == 0 {
		l.interior = len(l.regions)
	}
	l.regions = append(l.regions, r)
}

// computeDigest hashes the law's structure and coefficients.
func (l *Law) computeDigest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wu := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wu(uint64(l.nTheta))
	wu(uint64(l.gainRows))
	wu(uint64(len(l.regions)))
	for _, r := range l.regions {
		wu(uint64(r.actLen))
		for _, a := range l.active[r.actOff : r.actOff+r.actLen] {
			wu(uint64(a))
		}
		wu(uint64(r.hsRows))
		stride := l.nTheta + 1
		for _, v := range l.hs[r.hsOff : r.hsOff+r.hsRows*stride] {
			wu(math.Float64bits(v))
		}
		for _, v := range l.gains[r.gainOff : r.gainOff+l.gainRows*stride] {
			wu(math.Float64bits(v))
		}
	}
	return h.Sum64()
}

// activeKey canonicalizes an active set for the visited map.
func activeKey(w []int) string {
	if len(w) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, v := range w {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(v))
	}
	return sb.String()
}

// fanOut runs fn(0..n-1) across a bounded worker pool, the same fan-out
// idiom as the experiments sweep pool. fn must be safe for concurrent
// invocation on distinct indices.
func fanOut(workers, n int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// explore computes the affine law and halfspace description of the critical
// region with active set w, or nil when the active set is degenerate or its
// region has no interior inside the parameter domain.
func (c *compiler) explore(w []int) *regionData {
	k := len(w)
	nz, nTheta := c.nz, c.nTheta
	// hat_j = H⁻¹·a_wjᵀ and the Schur complement M = A_W·H⁻¹·A_Wᵀ.
	hat := make([][]float64, k)
	var mfac *mat.LU
	if k > 0 {
		m := mat.New(k, k)
		for j, wj := range w {
			hat[j] = make([]float64, nz)
			if err := c.hchol.SolveVecTo(hat[j], c.p.A.RowView(wj)); err != nil {
				return nil
			}
		}
		for i, wi := range w {
			ai := c.p.A.RowView(wi)
			for j := 0; j < k; j++ {
				m.Set(i, j, mat.Dot(ai, hat[j]))
			}
		}
		var err error
		mfac, err = mat.FactorLU(m)
		if err != nil {
			return nil // linearly dependent active set
		}
	}
	// Build the affine maps z(θ) = G·θ + g0 and λ(θ) = L·θ + l0 by
	// evaluating at θ = 0 and each basis vector.
	evalAt := func(basis int) (z, lambda []float64) {
		d := make([]float64, c.nl)
		copy(d, c.p.D0)
		b := make([]float64, c.mc)
		copy(b, c.p.S0)
		if basis >= 0 {
			for i := 0; i < c.nl; i++ {
				d[i] += c.p.D.At(i, basis)
			}
			for i := 0; i < c.mc; i++ {
				b[i] += c.p.S.At(i, basis)
			}
		}
		f := make([]float64, nz)
		c.ct.MulVecTo(f, d)
		for i := range f {
			f[i] *= -2
		}
		zu := make([]float64, nz)
		if err := c.hchol.SolveVecTo(zu, f); err != nil {
			return nil, nil
		}
		for i := range zu {
			zu[i] = -zu[i]
		}
		if k == 0 {
			return zu, nil
		}
		rhs := make([]float64, k)
		for i, wi := range w {
			rhs[i] = mat.Dot(c.p.A.RowView(wi), zu) - b[wi]
		}
		lambda, err := mfac.SolveVec(rhs)
		if err != nil {
			return nil, nil
		}
		z = zu
		for j := 0; j < k; j++ {
			for i := 0; i < nz; i++ {
				z[i] -= lambda[j] * hat[j][i]
			}
		}
		return z, lambda
	}
	g0, l0 := evalAt(-1)
	if g0 == nil {
		return nil
	}
	gCols := make([][]float64, nTheta)
	lCols := make([][]float64, nTheta)
	for t := 0; t < nTheta; t++ {
		zt, lt := evalAt(t)
		if zt == nil {
			return nil
		}
		gCols[t] = make([]float64, nz)
		for i := range zt {
			gCols[t][i] = zt[i] - g0[i]
		}
		if k > 0 {
			lCols[t] = make([]float64, k)
			for i := range lt {
				lCols[t][i] = lt[i] - l0[i]
			}
		}
	}
	rd := &regionData{active: append([]int(nil), w...)}
	stride := nTheta + 1
	inW := make([]bool, c.mc)
	for _, wi := range w {
		inW[wi] = true
	}
	// Primal-feasibility halfspaces of the inactive rows:
	// (A_i·G − S_i)·θ ≤ s0_i − A_i·g0.
	addRow := func(row []float64, rhs float64, neighbor []int) bool {
		nrm := mat.NormInf(row)
		if nrm <= c.opts.Tol {
			// Vacuous (0 ≤ rhs) or infeasible (0 ≤ rhs < 0) row.
			return rhs >= -c.opts.Tol
		}
		for t := range row {
			row[t] /= nrm
		}
		rd.hs = append(rd.hs, row...)
		rd.hs = append(rd.hs, rhs/nrm)
		if neighbor != nil {
			rd.neighbors = append(rd.neighbors, neighbor)
		}
		return true
	}
	for i := 0; i < c.mc; i++ {
		if inW[i] {
			continue
		}
		ai := c.p.A.RowView(i)
		row := make([]float64, nTheta)
		for t := 0; t < nTheta; t++ {
			var dot float64
			for j := 0; j < nz; j++ {
				dot += ai[j] * gCols[t][j]
			}
			row[t] = dot - c.p.S.At(i, t)
		}
		rhs := c.p.S0[i] - mat.Dot(ai, g0)
		var nb []int
		if k < nz {
			nb = neighborAdd(w, i)
		}
		if !addRow(row, rhs, nb) {
			return nil
		}
	}
	// Dual-feasibility halfspaces of the active rows: −λ_r(θ) ≤ l0_r.
	for r := 0; r < k; r++ {
		row := make([]float64, nTheta)
		for t := 0; t < nTheta; t++ {
			row[t] = -lCols[t][r]
		}
		if !addRow(row, l0[r], neighborDrop(w, r)) {
			return nil
		}
	}
	if !c.hasInterior(rd) {
		return nil
	}
	// Store the leading gain rows (first control move) with offsets.
	rd.gains = make([]float64, 0, c.gRows*stride)
	for i := 0; i < c.gRows; i++ {
		for t := 0; t < nTheta; t++ {
			rd.gains = append(rd.gains, gCols[t][i])
		}
		rd.gains = append(rd.gains, g0[i])
	}
	return rd
}

// neighborAdd returns w ∪ {i}, sorted.
func neighborAdd(w []int, i int) []int {
	nb := append(append([]int(nil), w...), i)
	sort.Ints(nb)
	return nb
}

// neighborDrop returns w with position r removed.
func neighborDrop(w []int, r int) []int {
	nb := make([]int, 0, len(w)-1)
	nb = append(nb, w[:r]...)
	nb = append(nb, w[r+1:]...)
	return nb
}

// hasInterior reports whether the region's halfspaces, shrunk by the
// interior slack, admit a point inside the parameter domain box.
//
// The test is an Agmon–Motzkin–Schoenberg relaxation: alternate between
// clamping the candidate into the domain box (an exact projection) and an
// over-relaxed projection onto the most-violated shrunk halfspace. It is
// deterministic (sequential arithmetic, no randomness, no shared state),
// so compiles are reproducible for every worker count. It is also only a
// pruning heuristic, not a correctness gate: keeping an empty region is
// harmless (its contradictory halfspaces never contain a query), and
// dropping a thin-but-real region just shrinks the precomputed map — the
// runtime point location reports a truthful miss there and the iterative
// solver produces the move. A full phase-1 QP per candidate region was
// measured ~50 ms on degenerate facet sets and dominated the compile;
// this test is a few microseconds.
func (c *compiler) hasInterior(rd *regionData) bool {
	nTheta := c.nTheta
	stride := nTheta + 1
	nhs := len(rd.hs) / stride
	lo, hi := c.p.ThetaLo, c.p.ThetaHi
	x := make([]float64, nTheta)
	for t := 0; t < nTheta; t++ {
		x[t] = 0.5 * (lo[t] + hi[t])
	}
	// Over-relaxation in (1, 2) accelerates convergence for feasible
	// systems; infeasible ones oscillate until the sweep cap rejects them.
	const relax = 1.5
	const maxSweeps = 1000
	for sweep := 0; sweep < maxSweeps; sweep++ {
		for t := 0; t < nTheta; t++ {
			x[t] = math.Max(lo[t], math.Min(hi[t], x[t]))
		}
		worst, wi := 0.0, -1
		for i := 0; i < nhs; i++ {
			row := rd.hs[i*stride : i*stride+nTheta]
			v := interiorSlack - rd.hs[i*stride+nTheta]
			for t, g := range row {
				v += g * x[t]
			}
			if v > worst {
				worst, wi = v, i
			}
		}
		if wi < 0 {
			return true // inside the box and strictly inside every halfspace
		}
		row := rd.hs[wi*stride : wi*stride+nTheta]
		var normSq float64
		for _, g := range row {
			normSq += g * g
		}
		// Rows are normalized to unit ∞-norm at addRow, so normSq ≥ 1.
		step := relax * worst / normSq
		for t, g := range row {
			x[t] -= step * g
		}
	}
	return false
}
