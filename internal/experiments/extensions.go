package experiments

import (
	"context"
	"fmt"
	"io"

	"github.com/rtsyslab/eucon/internal/core"
	"github.com/rtsyslab/eucon/internal/deucon"
	"github.com/rtsyslab/eucon/internal/metrics"
	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/stability"
	"github.com/rtsyslab/eucon/internal/workload"
)

// Extension experiments beyond the paper's artifacts. IDs are prefixed
// "ext-"; they appear in cmd/euconsim alongside the paper reproductions.

// Extensions returns the experiments that go beyond the paper.
func Extensions() []Experiment {
	return []Experiment{
		{
			ID:    "ext-deucon",
			Title: "Extension: decentralized control (DEUCON) under the Experiment II workload",
			Run:   runExtDeucon,
		},
		{
			ID:    "ext-missratio",
			Title: "Extension: per-period deadline miss ratios, EUCON vs OPEN, Experiment II workload",
			Run:   runExtMissRatio,
		},
		{
			ID:    "ext-stability-medium",
			Title: "Extension: critical gain of the MEDIUM closed loop (P=4, M=2)",
			Run:   runExtStabilityMedium,
		},
	}
}

// RunMediumDynamicDeucon runs the Experiment II schedule under the
// decentralized controller. It returns the controller alongside the trace
// so callers can inspect its message counters.
func RunMediumDynamicDeucon(periods int, seed int64) (*sim.Trace, *deucon.Controller, error) {
	spec := Spec{Workload: WorkloadMedium, Controller: KindDEUCON, Periods: periods, Seed: seed}.normalized()
	sys, wp, err := spec.workload()
	if err != nil {
		return nil, nil, err
	}
	ctrl, err := deucon.New(sys, nil, deucon.Config{})
	if err != nil {
		return nil, nil, err
	}
	tr, err := runWith(context.Background(), spec, sys, wp, ctrl, DynamicETF(), seed)
	if err != nil {
		return nil, nil, err
	}
	return tr, ctrl, nil
}

func runExtDeucon(_ context.Context, w io.Writer) error {
	tr, ctrl, err := RunMediumDynamicDeucon(DefaultPeriods, DefaultSeed)
	if err != nil {
		return err
	}
	printTrace(w, tr)
	fmt.Fprintf(w, "# local controllers: %d, control-plane messages: %d\n", ctrl.LocalControllers(), ctrl.Messages())
	b := workload.Medium().DefaultSetPoints()
	for p := 0; p < len(b); p++ {
		m := metrics.Mean(metrics.Window(metrics.Column(tr.Utilization, p), 160, 200))
		fmt.Fprintf(w, "# P%d mean in [160,200)Ts: %.4f (set point %.4f)\n", p+1, m, b[p])
	}
	return nil
}

func runExtMissRatio(ctx context.Context, w io.Writer) error {
	fmt.Fprintln(w, "period\tmiss_ratio_eucon\tmiss_ratio_open")
	trE, err := Run(ctx, Spec{Workload: WorkloadMedium, ETF: DynamicETF(), Seed: DefaultSeed})
	if err != nil {
		return err
	}
	trO, err := Run(ctx, Spec{Workload: WorkloadMedium, Controller: KindOPEN, ETF: DynamicETF(), Seed: DefaultSeed})
	if err != nil {
		return err
	}
	for k := range trE.Periods {
		fmt.Fprintf(w, "%d\t%.4f\t%.4f\n", k+1, trE.Periods[k].MissRatio(), trO.Periods[k].MissRatio())
	}
	fmt.Fprintf(w, "# aggregate subtask misses: EUCON %d/%d, OPEN %d/%d\n",
		trE.Stats.SubtaskDeadlineMisses, trE.Stats.CompletedJobs,
		trO.Stats.SubtaskDeadlineMisses, trO.Stats.CompletedJobs)
	return nil
}

func runExtStabilityMedium(_ context.Context, w io.Writer) error {
	sys := workload.Medium()
	ctrl, err := core.New(sys, nil, workload.MediumController())
	if err != nil {
		return err
	}
	ke, kd, err := ctrl.Gains()
	if err != nil {
		return err
	}
	g, err := stability.CriticalGain(sys.AllocationMatrix(), ke, kd, 1, 20, 1e-3)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "MEDIUM critical uniform gain g* = %.4f (P=4, M=2, Tref/Ts=4)\n", g)
	fmt.Fprintln(w, "longer horizons widen the stability region relative to SIMPLE's ~6.5,")
	fmt.Fprintln(w, "matching the paper's rationale for Table 2's MEDIUM parameters")
	return nil
}
