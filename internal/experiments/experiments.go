// Package experiments regenerates every table and figure of the EUCON
// paper's evaluation (§7). Each experiment has a data function (used by
// tests and benchmarks) and a printing wrapper used by cmd/euconsim. The
// experiment IDs follow the paper: table1, table2, stability, fig3a,
// fig3b, fig4, fig5, fig6, fig7, fig8.
package experiments

import (
	"context"
	"fmt"
	"io"

	"github.com/rtsyslab/eucon/internal/baseline"
	"github.com/rtsyslab/eucon/internal/core"
	"github.com/rtsyslab/eucon/internal/deucon"
	"github.com/rtsyslab/eucon/internal/metrics"
	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/task"
	"github.com/rtsyslab/eucon/internal/workload"
)

// ControllerKind selects the rate controller for a run.
//
//eucon:exhaustive
type ControllerKind int

// Controller kinds.
const (
	KindEUCON ControllerKind = iota + 1
	KindOPEN
	KindNone
	KindDEUCON
	KindPID
)

// controllerEntry is one row of the controller registry: the kind's
// display name and its builder. The cfg argument carries the spec's MPC
// parameters; kinds that are not MPC-based ignore it.
type controllerEntry struct {
	name  string
	build func(sys *task.System, cfg core.Config) (sim.Controller, error)
}

// controllerRegistry maps every ControllerKind to its builder. Adding a
// controller to the experiment API is one constant plus one entry here —
// no type switches anywhere else.
var controllerRegistry = map[ControllerKind]controllerEntry{
	KindEUCON: {"EUCON", func(sys *task.System, cfg core.Config) (sim.Controller, error) {
		c, err := core.New(sys, nil, cfg)
		if err != nil {
			return nil, err
		}
		return c, nil
	}},
	KindOPEN: {"OPEN", func(sys *task.System, _ core.Config) (sim.Controller, error) {
		c, err := baseline.NewOpen(sys, nil)
		if err != nil {
			return nil, err
		}
		return c, nil
	}},
	KindNone: {"NONE", func(*task.System, core.Config) (sim.Controller, error) {
		return nil, nil
	}},
	KindDEUCON: {"DEUCON", func(sys *task.System, _ core.Config) (sim.Controller, error) {
		c, err := deucon.New(sys, nil, deucon.Config{})
		if err != nil {
			return nil, err
		}
		return c, nil
	}},
	KindPID: {"PID", func(sys *task.System, _ core.Config) (sim.Controller, error) {
		c, err := baseline.NewPID(sys, nil, baseline.PIDConfig{})
		if err != nil {
			return nil, err
		}
		return c, nil
	}},
}

// String implements fmt.Stringer.
func (k ControllerKind) String() string {
	if e, ok := controllerRegistry[k]; ok {
		return e.name
	}
	return fmt.Sprintf("ControllerKind(%d)", int(k))
}

// Defaults shared by all experiments (paper §7.1–7.2).
const (
	// DefaultPeriods is the run length in sampling periods (the paper's
	// figures span 300 Ts).
	DefaultPeriods = 300
	// WindowStart and WindowEnd delimit the measurement window for the
	// sweep figures: 100Ts–300Ts, excluding the transient.
	WindowStart = 100
	WindowEnd   = 300
	// DefaultSeed keeps runs reproducible.
	DefaultSeed = 1
)

func newController(kind ControllerKind, sys *task.System, cfg core.Config) (sim.Controller, error) {
	e, ok := controllerRegistry[kind]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown controller kind %d", int(kind))
	}
	return e.build(sys, cfg)
}

// RunSimple simulates the SIMPLE workload under EUCON with a constant
// execution-time factor (Figure 3 runs). SIMPLE uses deterministic
// execution times, as in the paper. It is a thin wrapper over Run.
func RunSimple(etf float64, periods int, seed int64) (*sim.Trace, error) {
	return Run(context.Background(), Spec{
		Workload: WorkloadSimple,
		ETF:      sim.ConstantETF(etf),
		Periods:  periods,
		Seed:     seed,
	})
}

// RunMediumSteady simulates the MEDIUM workload with a constant
// execution-time factor under the chosen controller (Figure 5 runs).
// MEDIUM uses uniform-random execution times. It is a thin wrapper over
// Run.
func RunMediumSteady(kind ControllerKind, etf float64, periods int, seed int64) (*sim.Trace, error) {
	return Run(context.Background(), Spec{
		Workload:   WorkloadMedium,
		Controller: kind,
		ETF:        sim.ConstantETF(etf),
		Periods:    periods,
		Seed:       seed,
	})
}

// DynamicETF is the Experiment II schedule: etf = 0.5 initially, 0.9 from
// 100Ts (an 80% execution-time increase), 0.33 from 200Ts (a 67%
// decrease).
func DynamicETF() sim.ETFSchedule {
	sched, err := sim.StepETF(
		sim.ETFStep{At: 0, Factor: 0.5},
		sim.ETFStep{At: 100 * workload.SamplingPeriod, Factor: 0.9},
		sim.ETFStep{At: 200 * workload.SamplingPeriod, Factor: 0.33},
	)
	if err != nil {
		// The schedule is a compile-time constant; failure is a programming
		// error.
		panic(err)
	}
	return sched
}

// RunMediumDynamic simulates MEDIUM under the Experiment II execution-time
// steps (Figures 6–8). It is a thin wrapper over Run.
func RunMediumDynamic(kind ControllerKind, periods int, seed int64) (*sim.Trace, error) {
	return Run(context.Background(), Spec{
		Workload:   WorkloadMedium,
		Controller: kind,
		ETF:        DynamicETF(),
		Periods:    periods,
		Seed:       seed,
	})
}

// SweepPoint is one x-value of Figures 4 and 5: steady-state utilization
// statistics of processor P1 at a given execution-time factor.
type SweepPoint struct {
	ETF float64
	// P1 summarizes the measured utilization of P1 over the window
	// 100Ts–300Ts.
	P1 metrics.Summary
	// SetPoint is the P1 utilization set point.
	SetPoint float64
	// Acceptable applies the paper's criterion (±0.02 mean, <0.05 σ).
	Acceptable bool
	// OpenExpected is the analytic OPEN utilization etf·B (Figure 5 only;
	// zero for SIMPLE sweeps).
	OpenExpected float64
	// Robust is the worst case across the point's replications of each
	// run's robustness metrics (settling time, overshoot, time-in-spec).
	// Note the TimeInSpec slice makes SweepPoint non-comparable; compare
	// points with reflect.DeepEqual or field-wise.
	Robust Robustness
}

// SweepSimple produces the Figure 4 series: SIMPLE under EUCON across
// execution-time factors. It is a thin wrapper over SweepParallel.
func SweepSimple(etfs []float64, seed int64) ([]SweepPoint, error) {
	return SweepParallel(context.Background(), Spec{Workload: WorkloadSimple, Seed: seed}, etfs)
}

// SweepMedium produces the Figure 5 series: MEDIUM under EUCON across
// execution-time factors, with the analytic OPEN expectation alongside. It
// is a thin wrapper over SweepParallel.
func SweepMedium(etfs []float64, seed int64) ([]SweepPoint, error) {
	return SweepParallel(context.Background(), Spec{Workload: WorkloadMedium, Seed: seed}, etfs)
}

// SimpleCriticalGain reproduces the paper's §6.2 stability example: the
// critical uniform utilization gain of the SIMPLE closed loop.
func SimpleCriticalGain() (float64, error) {
	ctrl, err := core.New(workload.Simple(), nil, workload.SimpleController())
	if err != nil {
		return 0, err
	}
	return ctrl.CriticalGain(1, 12)
}

// Fig4ETFs is the paper's Figure 4 x-axis: etf from 0.2 to 10.
func Fig4ETFs() []float64 {
	return []float64{0.2, 0.5, 1, 2, 3, 4, 5, 6, 6.5, 7, 8, 9, 10}
}

// Fig5ETFs is the paper's Figure 5 x-axis: etf from 0.1 to 6.
func Fig5ETFs() []float64 {
	return []float64{0.1, 0.2, 0.5, 1, 2, 3, 4, 5, 6}
}

// TraceForExperiment returns the simulation trace behind a
// trace-producing experiment ID (fig3a, fig3b, fig6, fig7, fig8,
// ext-deucon), for CSV export by cmd/euconsim.
func TraceForExperiment(id string) (*sim.Trace, error) {
	switch id {
	case "fig3a":
		return RunSimple(0.5, DefaultPeriods, DefaultSeed)
	case "fig3b":
		return RunSimple(7, DefaultPeriods, DefaultSeed)
	case "fig6":
		return RunMediumDynamic(KindOPEN, DefaultPeriods, DefaultSeed)
	case "fig7", "fig8":
		return RunMediumDynamic(KindEUCON, DefaultPeriods, DefaultSeed)
	case "ext-deucon":
		tr, _, err := RunMediumDynamicDeucon(DefaultPeriods, DefaultSeed)
		return tr, err
	default:
		return nil, fmt.Errorf("experiments: %q does not produce a single trace", id)
	}
}

// printTrace writes a per-period utilization table.
func printTrace(w io.Writer, tr *sim.Trace) {
	fmt.Fprintf(w, "# controller=%s Ts=%g\n", tr.Controller, tr.SamplingPeriod)
	fmt.Fprint(w, "period")
	for p := 0; p < len(tr.Utilization[0]); p++ {
		fmt.Fprintf(w, "\tu(P%d)", p+1)
	}
	fmt.Fprintln(w)
	for k, u := range tr.Utilization {
		fmt.Fprintf(w, "%d", k+1)
		for _, v := range u {
			fmt.Fprintf(w, "\t%.4f", v)
		}
		fmt.Fprintln(w)
	}
}
