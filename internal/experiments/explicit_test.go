package experiments

import (
	"context"
	"reflect"
	"testing"
)

// TestExplicitRunBitIdentical pins the explicit-MPC contract at the
// experiment layer: the same Spec with Explicit on and off produces
// bit-identical traces — the compiled law only ever answers with the exact
// interior solution and hands everything else back to the iterative solver
// — while the Stats record that the fast path actually ran.
func TestExplicitRunBitIdentical(t *testing.T) {
	for _, wl := range []WorkloadKind{WorkloadSimple, WorkloadMedium} {
		base := Spec{Workload: wl, Periods: 120, Seed: DefaultSeed}
		ref, err := Run(context.Background(), base)
		if err != nil {
			t.Fatalf("%v: %v", wl, err)
		}
		exp := base
		exp.Explicit = true
		got, err := Run(context.Background(), exp)
		if err != nil {
			t.Fatalf("%v explicit: %v", wl, err)
		}
		if !reflect.DeepEqual(got.Utilization, ref.Utilization) {
			t.Errorf("%v: explicit utilization series differs from iterative", wl)
		}
		if !reflect.DeepEqual(got.Rates, ref.Rates) {
			t.Errorf("%v: explicit rate series differs from iterative", wl)
		}
		if ref.Stats.ExplicitHits != 0 || ref.Stats.ExplicitMisses != 0 {
			t.Errorf("%v: iterative run recorded explicit lookups (%d/%d)",
				wl, ref.Stats.ExplicitHits, ref.Stats.ExplicitMisses)
		}
		if total := got.Stats.ExplicitHits + got.Stats.ExplicitMisses; total != exp.Periods {
			t.Errorf("%v: explicit lookups %d (hits %d + misses %d), want one per period = %d",
				wl, total, got.Stats.ExplicitHits, got.Stats.ExplicitMisses, exp.Periods)
		}
		t.Logf("%v: explicit hits=%d misses=%d", wl, got.Stats.ExplicitHits, got.Stats.ExplicitMisses)
	}
}

// TestExplicitIgnoredByNonMPCKinds pins that Spec.Explicit is a no-op for
// controller kinds without an MPC core instead of an error.
func TestExplicitIgnoredByNonMPCKinds(t *testing.T) {
	for _, kind := range []ControllerKind{KindOPEN, KindNone, KindDEUCON, KindPID} {
		if _, err := Run(context.Background(), Spec{
			Workload: WorkloadSimple, Controller: kind, Periods: 10, Explicit: true,
		}); err != nil {
			t.Errorf("%v with Explicit: %v", kind, err)
		}
	}
}

// TestExplicitSweepGoldenDigests is the acceptance criterion for the
// explicit control law: the Figure 4 and Figure 5 sweep digests with
// Explicit on must equal the goldens committed long before the explicit
// compiler existed.
func TestExplicitSweepGoldenDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("full paper-scale sweeps; skipped in -short")
	}
	golden := []struct {
		name     string
		workload WorkloadKind
		etfs     []float64
		digest   string
	}{
		{"fig4", WorkloadSimple, Fig4ETFs(), "e2698528494c2681"},
		{"fig5", WorkloadMedium, Fig5ETFs(), "441584561a9f7e35"},
	}
	for _, g := range golden {
		pts, err := SweepParallel(context.Background(), Spec{
			Workload: g.workload,
			Seed:     DefaultSeed,
			Explicit: true,
		}, g.etfs)
		if err != nil {
			t.Fatalf("%s: %v", g.name, err)
		}
		if d := sweepDigest(pts); d != g.digest {
			t.Errorf("%s explicit digest %s, want golden %s", g.name, d, g.digest)
		}
	}
}
