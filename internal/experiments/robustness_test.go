package experiments

import (
	"testing"

	"github.com/rtsyslab/eucon/internal/sim"
)

// syntheticTrace builds a one-processor trace from a utilization series.
func syntheticTrace(u []float64) *sim.Trace {
	rows := make([][]float64, len(u))
	for k, v := range u {
		rows[k] = []float64{v}
	}
	return &sim.Trace{Utilization: rows}
}

func TestTraceRobustness(t *testing.T) {
	// Constant series at the set point: settles immediately, fully in
	// spec, no overshoot.
	flat := make([]float64, 20)
	for k := range flat {
		flat[k] = 0.8
	}
	r := TraceRobustness(syntheticTrace(flat), []float64{0.8}, 10, 20)
	if r.SettlingTime != 0 || r.MaxOvershoot != 0 || r.TimeInSpec[0] != 1 {
		t.Errorf("flat series robustness = %+v, want settle 0, overshoot 0, in-spec 1", r)
	}

	// A step that recovers: out of spec early, overshoot recorded inside
	// the window, settles at the recovery.
	step := make([]float64, 20)
	for k := range step {
		switch {
		case k < 12:
			step[k] = 0.8
		case k < 14:
			step[k] = 0.95
		default:
			step[k] = 0.8
		}
	}
	r = TraceRobustness(syntheticTrace(step), []float64{0.8}, 10, 20)
	if r.SettlingTime <= 0 {
		t.Errorf("step series settling = %d, want > 0", r.SettlingTime)
	}
	if r.MaxOvershoot < 0.149 || r.MaxOvershoot > 0.151 {
		t.Errorf("step series overshoot = %g, want 0.15", r.MaxOvershoot)
	}
	if r.TimeInSpec[0] != 0.8 { // 2 of 10 window periods out of spec
		t.Errorf("step series in-spec = %g, want 0.8", r.TimeInSpec[0])
	}

	// A diverging series never settles.
	div := make([]float64, 20)
	for k := range div {
		div[k] = 0.8 + 0.05*float64(k)
	}
	r = TraceRobustness(syntheticTrace(div), []float64{0.8}, 10, 20)
	if r.SettlingTime != -1 {
		t.Errorf("diverging series settling = %d, want -1", r.SettlingTime)
	}

	// Window clamping past the trace end.
	r = TraceRobustness(syntheticTrace(flat), []float64{0.8}, 10, 300)
	if r.TimeInSpec[0] != 1 {
		t.Errorf("clamped window in-spec = %g, want 1", r.TimeInSpec[0])
	}
}

func TestWorseRobustness(t *testing.T) {
	a := Robustness{SettlingTime: 5, MaxOvershoot: 0.1, TimeInSpec: []float64{1, 0.9}}
	b := Robustness{SettlingTime: 12, MaxOvershoot: 0.05, TimeInSpec: []float64{0.8, 0.95}}
	got := worseRobustness(a, b)
	if got.SettlingTime != 12 || got.MaxOvershoot != 0.1 {
		t.Errorf("pooled = %+v, want settle 12, overshoot 0.1", got)
	}
	if got.TimeInSpec[0] != 0.8 || got.TimeInSpec[1] != 0.9 {
		t.Errorf("pooled in-spec = %v, want [0.8 0.9]", got.TimeInSpec)
	}
	never := Robustness{SettlingTime: -1, TimeInSpec: []float64{1, 1}}
	if got = worseRobustness(got, never); got.SettlingTime != -1 {
		t.Errorf("never-settling replication pooled to %d, want -1", got.SettlingTime)
	}
}
