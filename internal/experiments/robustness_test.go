package experiments

import (
	"math"
	"testing"

	"github.com/rtsyslab/eucon/internal/sim"
)

// syntheticTrace builds a one-processor trace from a utilization series.
func syntheticTrace(u []float64) *sim.Trace {
	rows := make([][]float64, len(u))
	for k, v := range u {
		rows[k] = []float64{v}
	}
	return &sim.Trace{Utilization: rows}
}

func TestTraceRobustness(t *testing.T) {
	// Constant series at the set point: settles immediately, fully in
	// spec, no overshoot.
	flat := make([]float64, 20)
	for k := range flat {
		flat[k] = 0.8
	}
	r := TraceRobustness(syntheticTrace(flat), []float64{0.8}, 10, 20)
	if r.SettlingTime != 0 || r.MaxOvershoot != 0 || r.TimeInSpec[0] != 1 {
		t.Errorf("flat series robustness = %+v, want settle 0, overshoot 0, in-spec 1", r)
	}

	// A step that recovers: out of spec early, overshoot recorded inside
	// the window, settles at the recovery.
	step := make([]float64, 20)
	for k := range step {
		switch {
		case k < 12:
			step[k] = 0.8
		case k < 14:
			step[k] = 0.95
		default:
			step[k] = 0.8
		}
	}
	r = TraceRobustness(syntheticTrace(step), []float64{0.8}, 10, 20)
	if r.SettlingTime <= 0 {
		t.Errorf("step series settling = %d, want > 0", r.SettlingTime)
	}
	if r.MaxOvershoot < 0.149 || r.MaxOvershoot > 0.151 {
		t.Errorf("step series overshoot = %g, want 0.15", r.MaxOvershoot)
	}
	if r.TimeInSpec[0] != 0.8 { // 2 of 10 window periods out of spec
		t.Errorf("step series in-spec = %g, want 0.8", r.TimeInSpec[0])
	}

	// A diverging series never settles.
	div := make([]float64, 20)
	for k := range div {
		div[k] = 0.8 + 0.05*float64(k)
	}
	r = TraceRobustness(syntheticTrace(div), []float64{0.8}, 10, 20)
	if r.SettlingTime != -1 {
		t.Errorf("diverging series settling = %d, want -1", r.SettlingTime)
	}

	// Window clamping past the trace end.
	r = TraceRobustness(syntheticTrace(flat), []float64{0.8}, 10, 300)
	if r.TimeInSpec[0] != 1 {
		t.Errorf("clamped window in-spec = %g, want 1", r.TimeInSpec[0])
	}
}

// TestTraceRobustnessNaNSamples is the regression test for NaN poisoning:
// non-finite utilization samples (the coordinator's Degrade mode) must be
// counted as maximally out of spec — NaN-absorbing comparisons used to drop
// them silently, reporting a calm overshoot for a broken run.
func TestTraceRobustnessNaNSamples(t *testing.T) {
	u := make([]float64, 20)
	for k := range u {
		u[k] = 0.8
	}
	u[12] = math.NaN()
	u[15] = math.Inf(1)
	r := TraceRobustness(syntheticTrace(u), []float64{0.8}, 10, 20)
	if r.TimeInSpec[0] != 0.8 { // 2 of 10 window periods are non-finite
		t.Errorf("NaN series in-spec = %g, want 0.8", r.TimeInSpec[0])
	}
	if math.IsNaN(r.MaxOvershoot) {
		t.Error("MaxOvershoot is NaN; non-finite samples must not poison the metric")
	}
	if want := 1 - 0.8; math.Abs(r.MaxOvershoot-want) > 1e-12 {
		t.Errorf("NaN series overshoot = %g, want full-scale %g", r.MaxOvershoot, want)
	}
	// A NaN in the smoothed tail means the run never provably settles.
	tail := make([]float64, 20)
	for k := range tail {
		tail[k] = 0.8
	}
	tail[19] = math.NaN()
	if r = TraceRobustness(syntheticTrace(tail), []float64{0.8}, 10, 20); r.SettlingTime != -1 {
		t.Errorf("trailing-NaN settling = %d, want -1", r.SettlingTime)
	}
}

// TestWorseRobustnessNaN pins that pooling replications treats NaN fields
// as worst case instead of dropping them in NaN-absorbing comparisons.
func TestWorseRobustnessNaN(t *testing.T) {
	a := Robustness{SettlingTime: 5, MaxOvershoot: 0.1, TimeInSpec: []float64{0.9}}
	b := Robustness{SettlingTime: 7, MaxOvershoot: math.NaN(), TimeInSpec: []float64{math.NaN()}}
	got := worseRobustness(a, b)
	if got.MaxOvershoot != 1 {
		t.Errorf("NaN overshoot pooled to %g, want full-scale 1", got.MaxOvershoot)
	}
	if got.TimeInSpec[0] != 0 {
		t.Errorf("NaN in-spec pooled to %g, want 0", got.TimeInSpec[0])
	}
	got = worseRobustness(Robustness{MaxOvershoot: math.NaN(), TimeInSpec: []float64{math.NaN()}},
		Robustness{MaxOvershoot: 0.2, TimeInSpec: []float64{0.7}})
	if got.MaxOvershoot != 1 || got.TimeInSpec[0] != 0 {
		t.Errorf("NaN first replication pooled to %+v, want overshoot 1, in-spec 0", got)
	}
}

func TestWorseRobustness(t *testing.T) {
	a := Robustness{SettlingTime: 5, MaxOvershoot: 0.1, TimeInSpec: []float64{1, 0.9}}
	b := Robustness{SettlingTime: 12, MaxOvershoot: 0.05, TimeInSpec: []float64{0.8, 0.95}}
	got := worseRobustness(a, b)
	if got.SettlingTime != 12 || got.MaxOvershoot != 0.1 {
		t.Errorf("pooled = %+v, want settle 12, overshoot 0.1", got)
	}
	if got.TimeInSpec[0] != 0.8 || got.TimeInSpec[1] != 0.9 {
		t.Errorf("pooled in-spec = %v, want [0.8 0.9]", got.TimeInSpec)
	}
	never := Robustness{SettlingTime: -1, TimeInSpec: []float64{1, 1}}
	if got = worseRobustness(got, never); got.SettlingTime != -1 {
		t.Errorf("never-settling replication pooled to %d, want -1", got.SettlingTime)
	}
}
