package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"github.com/rtsyslab/eucon/internal/metrics"
	"github.com/rtsyslab/eucon/internal/workload"
)

func TestFig3aConvergence(t *testing.T) {
	// Figure 3(a): etf = 0.5 — both processors converge to B = 0.828.
	tr, err := RunSimple(0.5, 150, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 2; p++ {
		s := metrics.Summarize(metrics.Window(metrics.Column(tr.Utilization, p), 75, 150))
		if math.Abs(s.Mean-0.828) > metrics.AcceptableMeanError {
			t.Errorf("P%d mean = %v, want ≈ 0.828", p+1, s.Mean)
		}
		if s.StdDev >= metrics.AcceptableStdDev {
			t.Errorf("P%d std = %v, want < 0.05", p+1, s.StdDev)
		}
	}
}

func TestFig3aStartsUnderutilized(t *testing.T) {
	// Initial rates from Table 1 with etf 0.5 leave both processors far
	// below the set point; EUCON must raise utilization, never lower it
	// below the start.
	tr, err := RunSimple(0.5, 60, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if u0 := tr.Utilization[0][0]; u0 > 0.5 {
		t.Errorf("initial P1 utilization %v, want < 0.5 (underutilized start)", u0)
	}
	last := tr.Utilization[len(tr.Utilization)-1][0]
	if last < 0.75 {
		t.Errorf("P1 utilization after 60 Ts = %v, want raised toward 0.828", last)
	}
}

func TestFig3bInstability(t *testing.T) {
	// Figure 3(b): etf = 7 exceeds the stability bound — utilization
	// oscillates and performance is unacceptable.
	tr, err := RunSimple(7, 200, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	s := metrics.Summarize(metrics.Window(metrics.Column(tr.Utilization, 0), 100, 200))
	if s.Acceptable(0.828) {
		t.Fatalf("etf = 7 reported acceptable (%v); paper shows instability", s)
	}
	if s.StdDev < metrics.AcceptableStdDev {
		t.Fatalf("etf = 7 std = %v, want strong oscillation", s.StdDev)
	}
}

func TestFig4AcceptableRange(t *testing.T) {
	// Paper: acceptable up to etf = 3, oscillatory for 4–6, unstable past
	// ~6.5. Our oscillation threshold lands slightly earlier (between 2 and
	// 3); see EXPERIMENTS.md.
	pts, err := SweepSimple([]float64{0.5, 1, 2}, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if !p.Acceptable {
			t.Errorf("etf = %v: %v not acceptable; paper says acceptable for etf ≤ 3", p.ETF, p.P1)
		}
	}
	unstable, err := SweepSimple([]float64{8}, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if unstable[0].Acceptable {
		t.Errorf("etf = 8 acceptable (%v); paper shows instability beyond 6.5", unstable[0].P1)
	}
	if unstable[0].P1.StdDev <= pts[2].P1.StdDev {
		t.Errorf("oscillation did not grow with etf: std(8) = %v ≤ std(2) = %v",
			unstable[0].P1.StdDev, pts[2].P1.StdDev)
	}
}

func TestFig4ActuatorSaturationAtLowETF(t *testing.T) {
	// At etf = 0.2, Table 1's own rate maxima cap P1's utilization at
	// 0.2·(35/35 + 35/35) = 0.4 < B: EUCON must pin rates at R_max. (The
	// paper's claim of set-point tracking at etf = 0.2 is inconsistent with
	// its Table 1 bounds; see EXPERIMENTS.md.)
	pts, err := SweepSimple([]float64{0.2}, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pts[0].P1.Mean-0.4) > 0.02 {
		t.Errorf("etf = 0.2: mean = %v, want ≈ 0.4 (rates saturated at R_max)", pts[0].P1.Mean)
	}
}

func TestFig5MediumTracksSetPointWhereOpenFails(t *testing.T) {
	pts, err := SweepMedium([]float64{0.1, 0.5, 1}, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		// EUCON holds the set point 0.729.
		if math.Abs(p.P1.Mean-p.SetPoint) > 0.025 {
			t.Errorf("etf = %v: EUCON mean %v, want ≈ %v", p.ETF, p.P1.Mean, p.SetPoint)
		}
		// OPEN scales linearly with etf.
		wantOpen := math.Min(1, p.ETF*p.SetPoint)
		if math.Abs(p.OpenExpected-wantOpen) > 1e-3 {
			t.Errorf("etf = %v: OPEN expected %v, want %v", p.ETF, p.OpenExpected, wantOpen)
		}
	}
	// The paper's headline: at etf = 0.1 OPEN yields 0.073 while EUCON
	// holds ≈ 0.729.
	if pts[0].OpenExpected > 0.08 {
		t.Errorf("OPEN at etf 0.1 = %v, want ≈ 0.073", pts[0].OpenExpected)
	}
}

func TestFig6OpenFluctuatesWithLoad(t *testing.T) {
	tr, err := RunMediumDynamic(KindOPEN, DefaultPeriods, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	u1 := metrics.Column(tr.Utilization, 0)
	b := workload.Medium().DefaultSetPoints()[0]
	seg1 := metrics.Mean(metrics.Window(u1, 50, 100))  // etf 0.5
	seg2 := metrics.Mean(metrics.Window(u1, 150, 200)) // etf 0.9
	seg3 := metrics.Mean(metrics.Window(u1, 250, 300)) // etf 0.33
	if math.Abs(seg1-0.5*b) > 0.05 {
		t.Errorf("OPEN at etf 0.5: mean %v, want ≈ %v", seg1, 0.5*b)
	}
	if math.Abs(seg2-0.9*b) > 0.05 {
		t.Errorf("OPEN at etf 0.9: mean %v, want ≈ %v", seg2, 0.9*b)
	}
	if math.Abs(seg3-0.33*b) > 0.05 {
		t.Errorf("OPEN at etf 0.33: mean %v, want ≈ %v", seg3, 0.33*b)
	}
	if !(seg2 > seg1 && seg1 > seg3) {
		t.Errorf("OPEN utilization does not track load: %v, %v, %v", seg1, seg2, seg3)
	}
}

func TestFig7EuconReconverges(t *testing.T) {
	tr, err := RunMediumDynamic(KindEUCON, DefaultPeriods, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	b := workload.Medium().DefaultSetPoints()
	for p := 0; p < 4; p++ {
		u := metrics.Column(tr.Utilization, p)
		// Each etf segment's tail must sit at the set point again.
		for _, win := range [][2]int{{60, 100}, {160, 200}, {260, 300}} {
			m := metrics.Mean(metrics.Window(u, win[0], win[1]))
			if math.Abs(m-b[p]) > 0.03 {
				t.Errorf("P%d window %v: mean %v, want ≈ %v", p+1, win, m, b[p])
			}
		}
		// Re-convergence after the +80% step within ~30 Ts (paper: ~20 Ts).
		// A 5-period moving average suppresses per-period jitter so the
		// settling measurement reflects the trajectory, not noise.
		seg := metrics.MovingAverage(metrics.Window(u, 100, 200), 5)
		st := metrics.SettlingTime(seg, b[p], 0.05)
		if st < 0 || st > 30 {
			t.Errorf("P%d settling after step = %d Ts, want ≤ 30", p+1, st)
		}
	}
}

func TestFig8RatesCompensateExecutionTimes(t *testing.T) {
	tr, err := RunMediumDynamic(KindEUCON, DefaultPeriods, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Average rate across tasks in each settled segment: rates must drop
	// when execution times rise at 100Ts and rise when they fall at 200Ts.
	avgRate := func(from, to int) float64 {
		var sum float64
		n := 0
		for k := from; k < to; k++ {
			for _, r := range tr.Rates[k] {
				sum += r
				n++
			}
		}
		return sum / float64(n)
	}
	r1 := avgRate(60, 100)  // etf 0.5
	r2 := avgRate(160, 200) // etf 0.9
	r3 := avgRate(260, 300) // etf 0.33
	if !(r2 < r1) {
		t.Errorf("rates did not decrease after +80%% execution times: %v → %v", r1, r2)
	}
	if !(r3 > r2) {
		t.Errorf("rates did not increase after −67%% execution times: %v → %v", r2, r3)
	}
}

func TestSimpleCriticalGainValue(t *testing.T) {
	g, err := SimpleCriticalGain()
	if err != nil {
		t.Fatal(err)
	}
	if g < 5.5 || g > 7 {
		t.Fatalf("critical gain = %v, want within [5.5, 7] (paper: 5.95 analytic, 6.5–7 empirical)", g)
	}
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 13 {
		t.Fatalf("registry has %d experiments, want 13 (2 tables + stability + 7 figures + 3 extensions)", len(all))
	}
	seen := make(map[string]bool, len(all))
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %q", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := Lookup("fig4"); !ok {
		t.Error("Lookup(fig4) failed")
	}
	if _, ok := Lookup("ext-deucon"); !ok {
		t.Error("Lookup(ext-deucon) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup(nope) succeeded")
	}
	ids := IDs()
	if len(ids) != 13 {
		t.Fatalf("IDs() returned %d entries", len(ids))
	}
}

func TestTableExperimentsOutput(t *testing.T) {
	var sb strings.Builder
	e, _ := Lookup("table1")
	if err := e.Run(context.Background(), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"T11", "T21", "T22", "T31", "35", "45", "700", "900"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	e, _ = Lookup("table2")
	if err := e.Run(context.Background(), &sb); err != nil {
		t.Fatal(err)
	}
	out = sb.String()
	for _, want := range []string{"SIMPLE", "MEDIUM", "1000"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 output missing %q:\n%s", want, out)
		}
	}
}

func TestStabilityExperimentOutput(t *testing.T) {
	var sb strings.Builder
	e, _ := Lookup("stability")
	if err := e.Run(context.Background(), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "critical uniform gain") {
		t.Fatalf("stability output: %s", sb.String())
	}
}

func TestControllerKindString(t *testing.T) {
	if KindEUCON.String() != "EUCON" || KindOPEN.String() != "OPEN" || KindNone.String() != "NONE" {
		t.Error("ControllerKind.String mismatch")
	}
	if got := ControllerKind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind String = %q", got)
	}
}

func TestDynamicETFSchedule(t *testing.T) {
	sched := DynamicETF()
	tests := []struct {
		t    float64
		want float64
	}{
		{0, 0.5},
		{50 * workload.SamplingPeriod, 0.5},
		{100 * workload.SamplingPeriod, 0.9},
		{150 * workload.SamplingPeriod, 0.9},
		{250 * workload.SamplingPeriod, 0.33},
	}
	for _, tc := range tests {
		if got := sched.At(tc.t); got != tc.want {
			t.Errorf("etf(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestExtDeuconConverges(t *testing.T) {
	tr, ctrl, err := RunMediumDynamicDeucon(200, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	b := workload.Medium().DefaultSetPoints()
	for p := 0; p < 4; p++ {
		m := metrics.Mean(metrics.Window(metrics.Column(tr.Utilization, p), 160, 200))
		if math.Abs(m-b[p]) > 0.06 {
			t.Errorf("DEUCON P%d post-step mean = %v, want ≈ %v", p+1, m, b[p])
		}
	}
	if ctrl.LocalControllers() != 4 {
		t.Errorf("local controllers = %d, want 4", ctrl.LocalControllers())
	}
}

func TestExtMissRatioEuconBeatsOpenUnderOverload(t *testing.T) {
	// With execution times 1.5× the estimates, OPEN's fixed rates push
	// every processor past the schedulable bound (≈1.1 demand) and miss
	// deadlines persistently; EUCON regulates back to the Liu–Layland set
	// points and recovers. (Note Experiment II itself never exceeds
	// etf = 0.9, so OPEN does not miss there — the contrast needs an
	// underestimated workload.)
	trE, err := RunMediumSteady(KindEUCON, 1.5, 150, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	trO, err := RunMediumSteady(KindOPEN, 1.5, 150, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	missE, missO := 0, 0
	for k := 75; k < 150; k++ {
		missE += trE.Periods[k].SubtaskMisses
		missO += trO.Periods[k].SubtaskMisses
	}
	if missO == 0 {
		t.Fatal("OPEN missed no deadlines at etf = 1.5; overload not realized")
	}
	if missE >= missO {
		t.Errorf("EUCON missed %d vs OPEN %d in steady overload; want fewer", missE, missO)
	}
}

func TestAllExperimentsProduceOutput(t *testing.T) {
	// End-to-end: every registered experiment (paper artifacts and
	// extensions) must run and emit data. This regenerates the full
	// evaluation, so it is skipped in -short mode.
	if testing.Short() {
		t.Skip("full experiment regeneration skipped in -short mode")
	}
	for _, e := range All() {
		t.Run(e.ID, func(t *testing.T) {
			var sb strings.Builder
			if err := e.Run(context.Background(), &sb); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if sb.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestTraceForExperiment(t *testing.T) {
	tr, err := TraceForExperiment("fig3a")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Utilization) != DefaultPeriods {
		t.Fatalf("fig3a trace has %d periods", len(tr.Utilization))
	}
	if _, err := TraceForExperiment("table1"); err == nil {
		t.Fatal("non-trace experiment accepted")
	}
}
