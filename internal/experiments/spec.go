package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"github.com/rtsyslab/eucon/internal/baseline"
	"github.com/rtsyslab/eucon/internal/core"
	"github.com/rtsyslab/eucon/internal/metrics"
	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/task"
	"github.com/rtsyslab/eucon/internal/workload"
)

// WorkloadKind selects one of the paper's workload configurations.
type WorkloadKind int

// Workload kinds.
const (
	// WorkloadSimple is the paper's SIMPLE system (Table 1): deterministic
	// execution times, P=2/M=1 controller.
	WorkloadSimple WorkloadKind = iota + 1
	// WorkloadMedium is the paper's MEDIUM system: uniform-random execution
	// times, P=4/M=2 controller.
	WorkloadMedium
)

// String implements fmt.Stringer.
func (k WorkloadKind) String() string {
	switch k {
	case WorkloadSimple:
		return "SIMPLE"
	case WorkloadMedium:
		return "MEDIUM"
	default:
		return fmt.Sprintf("WorkloadKind(%d)", int(k))
	}
}

// Spec describes one experiment run or sweep in the unified API. The zero
// values of optional fields select the paper defaults, so
//
//	Run(ctx, Spec{Workload: WorkloadSimple})
//
// reproduces a Figure 3 style run under EUCON at etf = 1.
type Spec struct {
	// Workload selects the system and its controller parameters (Table 2).
	// Required. Execution-time jitter is a property of the workload, as in
	// the paper: SIMPLE is deterministic, MEDIUM draws uniform-random
	// execution times.
	Workload WorkloadKind
	// Controller selects the rate controller. Zero selects KindEUCON.
	Controller ControllerKind
	// ETF is the execution-time factor schedule for Run (zero: etf = 1).
	// Sweeps ignore it: each sweep point installs its own constant factor.
	ETF sim.ETFSchedule
	// Periods is the run length in sampling periods. Zero selects
	// DefaultPeriods (300, the span of the paper's figures).
	Periods int
	// Seed drives all randomness. Replication r of a sweep point uses
	// Seed + r, so runs are reproducible and replications independent.
	Seed int64
	// Replications is the number of independently seeded runs per sweep
	// point; their measurement windows are pooled into the point's summary.
	// Zero selects 1 (the paper's single-run sweeps). Run ignores it.
	Replications int
	// Parallelism caps the worker count of SweepParallel. Zero selects
	// GOMAXPROCS. Run and Sweep ignore it.
	Parallelism int
}

// normalized returns a copy with defaults applied.
func (s Spec) normalized() Spec {
	if s.Controller == 0 {
		s.Controller = KindEUCON
	}
	if s.Periods == 0 {
		s.Periods = DefaultPeriods
	}
	if s.Replications <= 0 {
		s.Replications = 1
	}
	if s.Parallelism <= 0 {
		s.Parallelism = runtime.GOMAXPROCS(0)
	}
	return s
}

// workload materializes the system, controller parameters, and jitter for
// the spec's workload kind.
func (s Spec) workload() (*task.System, workloadParams, error) {
	switch s.Workload {
	case WorkloadSimple:
		return workload.Simple(), workloadParams{cfg: workload.SimpleController(), jitter: 0}, nil
	case WorkloadMedium:
		return workload.Medium(), workloadParams{cfg: workload.MediumController(), jitter: workload.MediumJitter}, nil
	default:
		return nil, workloadParams{}, fmt.Errorf("experiments: unknown workload kind %d", int(s.Workload))
	}
}

type workloadParams struct {
	cfg    core.Config
	jitter float64
}

// Run executes one simulation described by spec and returns its trace. The
// context is checked at every sampling boundary.
func Run(ctx context.Context, spec Spec) (*sim.Trace, error) {
	spec = spec.normalized()
	sys, wp, err := spec.workload()
	if err != nil {
		return nil, err
	}
	ctrl, err := newController(spec.Controller, sys, wp.cfg)
	if err != nil {
		return nil, err
	}
	return runWith(ctx, spec, sys, wp, ctrl, spec.ETF, spec.Seed)
}

// runWith runs one simulation with an already-built controller; sweeps and
// the DEUCON extension share it so every entry point drives the simulator
// identically.
func runWith(ctx context.Context, spec Spec, sys *task.System, wp workloadParams, ctrl sim.RateController, etf sim.ETFSchedule, seed int64) (*sim.Trace, error) {
	s, err := sim.New(sim.Config{
		System:         sys,
		SamplingPeriod: workload.SamplingPeriod,
		Periods:        spec.Periods,
		Controller:     ctrl,
		ETF:            etf,
		Jitter:         wp.jitter,
		Seed:           seed,
	})
	if err != nil {
		return nil, err
	}
	return s.RunContext(ctx)
}

// Sweep runs spec once per execution-time factor, serially in the caller's
// goroutine, and summarizes P1's steady-state utilization per point — the
// Figure 4/5 series. Results are identical to SweepParallel with any
// worker count.
func Sweep(ctx context.Context, spec Spec, etfs []float64) ([]SweepPoint, error) {
	spec = spec.normalized()
	sw, err := newSweep(spec, etfs)
	if err != nil {
		return nil, err
	}
	for job := 0; job < sw.jobs(); job++ {
		if err := sw.run(ctx, job); err != nil {
			return nil, err
		}
	}
	return sw.points()
}

// SweepParallel is Sweep fanned across a worker pool: the (etf,
// replication) grid is distributed over min(Parallelism, jobs) workers.
// Every job is an independently seeded simulation, and results are indexed
// by grid position rather than completion order, so the returned series is
// bit-identical to Sweep's regardless of worker count or scheduling. The
// first failure (or context cancellation) stops the remaining work.
func SweepParallel(ctx context.Context, spec Spec, etfs []float64) ([]SweepPoint, error) {
	spec = spec.normalized()
	sw, err := newSweep(spec, etfs)
	if err != nil {
		return nil, err
	}
	n := sw.jobs()
	workers := spec.Parallelism
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for job := 0; job < n; job++ {
			if err := sw.run(ctx, job); err != nil {
				return nil, err
			}
		}
		return sw.points()
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	jobs := make(chan int)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobs {
				if err := sw.run(ctx, job); err != nil {
					errOnce.Do(func() {
						firstErr = err
						cancel() // stop the other workers promptly
					})
					return
				}
			}
		}()
	}
feed:
	for job := 0; job < n; job++ {
		select {
		case jobs <- job:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("experiments: sweep canceled: %w", err)
	}
	return sw.points()
}

// sweep holds the shared state of one sweep: the job grid and the
// position-indexed windows. run may be called concurrently for distinct
// job indices.
type sweep struct {
	spec Spec
	sys  *task.System
	wp   workloadParams
	etfs []float64
	open *baseline.Open // analytic comparator, MEDIUM only

	// windows[etfIdx*Replications + rep] is that run's P1 measurement
	// window; jobs write disjoint slots, so no locking is needed.
	windows [][]float64
}

func newSweep(spec Spec, etfs []float64) (*sweep, error) {
	sys, wp, err := spec.workload()
	if err != nil {
		return nil, err
	}
	sw := &sweep{
		spec:    spec,
		sys:     sys,
		wp:      wp,
		etfs:    etfs,
		windows: make([][]float64, len(etfs)*spec.Replications),
	}
	if spec.Workload == WorkloadMedium {
		if sw.open, err = baseline.NewOpen(sys, nil); err != nil {
			return nil, err
		}
	}
	return sw, nil
}

func (s *sweep) jobs() int { return len(s.etfs) * s.spec.Replications }

// run executes grid position job and stores its measurement window.
func (s *sweep) run(ctx context.Context, job int) error {
	etfIdx, rep := job/s.spec.Replications, job%s.spec.Replications
	etf := s.etfs[etfIdx]
	// Each worker needs its own controller: the MPC caches solver state
	// across sampling periods and is not safe for concurrent use.
	ctrl, err := newController(s.spec.Controller, s.sys, s.wp.cfg)
	if err != nil {
		return err
	}
	tr, err := runWith(ctx, s.spec, s.sys, s.wp, ctrl, sim.ConstantETF(etf), s.spec.Seed+int64(rep))
	if err != nil {
		return fmt.Errorf("sweep %s etf=%g rep=%d: %w", s.spec.Workload, etf, rep, err)
	}
	s.windows[job] = metrics.Window(metrics.Column(tr.Utilization, 0), WindowStart, WindowEnd)
	return nil
}

// points aggregates the stored windows into the ordered SweepPoint series,
// pooling replications per execution-time factor.
func (s *sweep) points() ([]SweepPoint, error) {
	b := s.sys.DefaultSetPoints()[0]
	points := make([]SweepPoint, 0, len(s.etfs))
	for i, etf := range s.etfs {
		var pooled []float64
		for rep := 0; rep < s.spec.Replications; rep++ {
			w := s.windows[i*s.spec.Replications+rep]
			if w == nil {
				return nil, fmt.Errorf("experiments: sweep point etf=%g rep=%d missing", etf, rep)
			}
			pooled = append(pooled, w...)
		}
		sum := metrics.Summarize(pooled)
		p := SweepPoint{
			ETF:        etf,
			P1:         sum,
			SetPoint:   b,
			Acceptable: sum.Acceptable(b),
		}
		if s.open != nil {
			p.OpenExpected = s.open.ExpectedUtilization(s.sys, etf)[0]
		}
		points = append(points, p)
	}
	return points, nil
}
