package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"github.com/rtsyslab/eucon/internal/baseline"
	"github.com/rtsyslab/eucon/internal/core"
	"github.com/rtsyslab/eucon/internal/fault"
	"github.com/rtsyslab/eucon/internal/metrics"
	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/task"
	"github.com/rtsyslab/eucon/internal/workload"
)

// WorkloadKind selects one of the paper's workload configurations.
//
//eucon:exhaustive
type WorkloadKind int

// Workload kinds.
const (
	// WorkloadSimple is the paper's SIMPLE system (Table 1): deterministic
	// execution times, P=2/M=1 controller.
	WorkloadSimple WorkloadKind = iota + 1
	// WorkloadMedium is the paper's MEDIUM system: uniform-random execution
	// times, P=4/M=2 controller.
	WorkloadMedium
	// WorkloadLarge128 is this reproduction's LARGE-128 scaling system: 128
	// processors in a line, 640 tasks with bounded chain fan-out so the
	// allocation matrix is block-banded (see workload.Large).
	WorkloadLarge128
	// WorkloadLarge1024 is LARGE-1024: 1024 processors, 5120 tasks, same
	// banded structure at a scale where dense centralized control is
	// infeasible.
	WorkloadLarge1024
)

// String implements fmt.Stringer.
func (k WorkloadKind) String() string {
	switch k {
	case WorkloadSimple:
		return "SIMPLE"
	case WorkloadMedium:
		return "MEDIUM"
	case WorkloadLarge128:
		return "LARGE-128"
	case WorkloadLarge1024:
		return "LARGE-1024"
	default:
		return fmt.Sprintf("WorkloadKind(%d)", int(k))
	}
}

// Spec describes one experiment run or sweep in the unified API. The zero
// values of optional fields select the paper defaults, so
//
//	Run(ctx, Spec{Workload: WorkloadSimple})
//
// reproduces a Figure 3 style run under EUCON at etf = 1.
type Spec struct {
	// Workload selects the system and its controller parameters (Table 2).
	// Required. Execution-time jitter is a property of the workload, as in
	// the paper: SIMPLE is deterministic, MEDIUM draws uniform-random
	// execution times.
	Workload WorkloadKind
	// Controller selects the rate controller. Zero selects KindEUCON.
	Controller ControllerKind
	// ETF is the execution-time factor schedule for Run (zero: etf = 1).
	// Sweeps ignore it: each sweep point installs its own constant factor.
	ETF sim.ETFSchedule
	// Periods is the run length in sampling periods. Zero selects
	// DefaultPeriods (300, the span of the paper's figures).
	Periods int
	// Seed drives all randomness. Replication r of a sweep point uses
	// Seed + r, so runs are reproducible and replications independent.
	Seed int64
	// Replications is the number of independently seeded runs per sweep
	// point; their measurement windows are pooled into the point's summary.
	// Zero selects 1 (the paper's single-run sweeps). Run ignores it.
	Replications int
	// Parallelism caps the worker count of SweepParallel. Zero selects
	// GOMAXPROCS. Run and Sweep ignore it.
	Parallelism int
	// Faults is the deterministic fault scenario injected into every run
	// (see package fault; named scenarios come from fault.Lookup). Empty
	// means no faults and leaves the simulator on its bit-identical
	// no-fault fast path. Sweeps inject the same scenario into every
	// (etf, replication) job; each job re-resolves probabilistic faults
	// from its own run seed, so replications see independent patterns.
	Faults []fault.Spec
	// Explicit runs the MPC controller with an offline-compiled explicit
	// law (see core.Config.Explicit). The fast path is bit-identical to
	// the iterative solve, so every trace, sweep series, and digest is
	// unchanged; only Stats.ExplicitHits/ExplicitMisses and the per-step
	// cost differ. Ignored by non-MPC controller kinds.
	Explicit bool
	// System overrides the paper workload with a custom task system; with
	// it set, Workload may be left zero. EUCON controllers for custom
	// systems are built with the paper's SIMPLE parameters — supply Custom
	// for different tuning.
	System *task.System
	// Custom supplies a pre-built controller, overriding Controller (and
	// the Explicit flag). Run uses it directly; sweeps reject it, because
	// one instance cannot be replicated across sweep workers.
	Custom sim.Controller
	// SamplingPeriod overrides the sampling period in time units; zero
	// selects the paper's (workload.SamplingPeriod).
	SamplingPeriod float64
	// Jitter sets the execution-time jitter for a custom System; paper
	// workloads keep their canonical jitter (SIMPLE 0, MEDIUM 0.15) and
	// ignore it.
	Jitter float64
	// MaxBacklog bounds each subtask's job backlog, shedding releases
	// beyond it; zero selects the simulator default.
	MaxBacklog int
}

// normalized returns a copy with defaults applied.
func (s Spec) normalized() Spec {
	if s.Controller == 0 {
		s.Controller = KindEUCON
	}
	if s.Periods == 0 {
		s.Periods = DefaultPeriods
	}
	if s.Replications <= 0 {
		s.Replications = 1
	}
	if s.Parallelism <= 0 {
		s.Parallelism = runtime.GOMAXPROCS(0)
	}
	return s
}

// workload materializes the system, controller parameters, and jitter for
// the spec's workload kind (or custom System).
func (s Spec) workload() (*task.System, workloadParams, error) {
	var sys *task.System
	var wp workloadParams
	switch {
	case s.System != nil:
		sys, wp = s.System, workloadParams{cfg: workload.SimpleController(), jitter: s.Jitter}
	case s.Workload == WorkloadSimple:
		sys, wp = workload.Simple(), workloadParams{cfg: workload.SimpleController(), jitter: 0}
	case s.Workload == WorkloadMedium:
		sys, wp = workload.Medium(), workloadParams{cfg: workload.MediumController(), jitter: workload.MediumJitter}
	case s.Workload == WorkloadLarge128:
		sys, wp = workload.Large128(), workloadParams{cfg: workload.LargeController(), jitter: 0}
	case s.Workload == WorkloadLarge1024:
		sys, wp = workload.Large1024(), workloadParams{cfg: workload.LargeController(), jitter: 0}
	default:
		return nil, workloadParams{}, fmt.Errorf("experiments: unknown workload kind %d", int(s.Workload))
	}
	wp.cfg.Explicit = s.Explicit
	return sys, wp, nil
}

type workloadParams struct {
	cfg    core.Config
	jitter float64
}

// Run executes one simulation described by spec and returns its trace. The
// context is checked at every sampling boundary.
func Run(ctx context.Context, spec Spec) (*sim.Trace, error) {
	spec = spec.normalized()
	sys, wp, err := spec.workload()
	if err != nil {
		return nil, err
	}
	ctrl := spec.Custom
	if ctrl == nil {
		if ctrl, err = newController(spec.Controller, sys, wp.cfg); err != nil {
			return nil, err
		}
	}
	return runWith(ctx, spec, sys, wp, ctrl, spec.ETF, spec.Seed)
}

// simConfig is the one place a Spec turns into a simulator configuration,
// so every entry point — single runs, serial sweeps, parallel sweep
// workers — drives the simulator identically.
func simConfig(spec Spec, sys *task.System, wp workloadParams, ctrl sim.Controller, etf sim.ETFSchedule, seed int64) sim.Config {
	sp := spec.SamplingPeriod
	if sp <= 0 {
		sp = workload.SamplingPeriod
	}
	return sim.Config{
		System:         sys,
		SamplingPeriod: sp,
		Periods:        spec.Periods,
		Controller:     ctrl,
		ETF:            etf,
		Jitter:         wp.jitter,
		Seed:           seed,
		Faults:         spec.Faults,
		MaxBacklog:     spec.MaxBacklog,
	}
}

// runWith runs one simulation with an already-built controller; single
// runs and the DEUCON extension share it.
func runWith(ctx context.Context, spec Spec, sys *task.System, wp workloadParams, ctrl sim.Controller, etf sim.ETFSchedule, seed int64) (*sim.Trace, error) {
	s, err := sim.New(simConfig(spec, sys, wp, ctrl, etf, seed))
	if err != nil {
		return nil, err
	}
	return s.RunContext(ctx)
}

// Sweep runs spec once per execution-time factor, serially in the caller's
// goroutine, and summarizes P1's steady-state utilization per point — the
// Figure 4/5 series. Results are identical to SweepParallel with any
// worker count.
func Sweep(ctx context.Context, spec Spec, etfs []float64) ([]SweepPoint, error) {
	spec = spec.normalized()
	sw, err := newSweep(spec, etfs)
	if err != nil {
		return nil, err
	}
	w := sw.newWorker()
	for job := 0; job < sw.jobs(); job++ {
		if err := w.run(ctx, job); err != nil {
			return nil, err
		}
	}
	return sw.points()
}

// SweepParallel is Sweep fanned across a worker pool: the (etf,
// replication) grid is distributed over min(Parallelism, jobs) workers.
// Every job is an independently seeded simulation, and results are indexed
// by grid position rather than completion order, so the returned series is
// bit-identical to Sweep's regardless of worker count or scheduling. The
// first failure (or context cancellation) stops the remaining work.
func SweepParallel(ctx context.Context, spec Spec, etfs []float64) ([]SweepPoint, error) {
	spec = spec.normalized()
	sw, err := newSweep(spec, etfs)
	if err != nil {
		return nil, err
	}
	n := sw.jobs()
	workers := spec.Parallelism
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		w := sw.newWorker()
		for job := 0; job < n; job++ {
			if err := w.run(ctx, job); err != nil {
				return nil, err
			}
		}
		return sw.points()
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	jobs := make(chan int)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each goroutine owns one worker: its simulator, controller,
			// and object pools are confined to this goroutine for the whole
			// sweep, so recycled events and jobs never cross goroutines.
			sww := sw.newWorker()
			for job := range jobs {
				if err := sww.run(ctx, job); err != nil {
					errOnce.Do(func() {
						firstErr = err
						cancel() // stop the other workers promptly
					})
					return
				}
			}
		}()
	}
feed:
	for job := 0; job < n; job++ {
		select {
		case jobs <- job:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("experiments: sweep canceled: %w", err)
	}
	return sw.points()
}

// sweep holds the shared state of one sweep: the job grid and the
// position-indexed windows. run may be called concurrently for distinct
// job indices.
type sweep struct {
	spec Spec
	sys  *task.System
	wp   workloadParams
	etfs []float64
	open *baseline.Open // analytic comparator, MEDIUM only

	// setPoints are the per-processor utilization set points, shared by
	// every job's robustness measurement.
	setPoints []float64

	// windows[etfIdx*Replications + rep] is that run's P1 measurement
	// window; robust mirrors its indexing with the run's robustness
	// metrics. Jobs write disjoint slots, so no locking is needed.
	windows [][]float64
	robust  []Robustness
}

func newSweep(spec Spec, etfs []float64) (*sweep, error) {
	if spec.Custom != nil {
		return nil, fmt.Errorf("experiments: Custom controllers are not supported in sweeps (one instance cannot serve multiple workers); use Run")
	}
	sys, wp, err := spec.workload()
	if err != nil {
		return nil, err
	}
	sw := &sweep{
		spec:      spec,
		sys:       sys,
		wp:        wp,
		etfs:      etfs,
		setPoints: sys.DefaultSetPoints(),
		windows:   make([][]float64, len(etfs)*spec.Replications),
		robust:    make([]Robustness, len(etfs)*spec.Replications),
	}
	if spec.Workload == WorkloadMedium {
		if sw.open, err = baseline.NewOpen(sys, nil); err != nil {
			return nil, err
		}
	}
	return sw, nil
}

func (s *sweep) jobs() int { return len(s.etfs) * s.spec.Replications }

// sweepWorker executes sweep jobs sequentially on one goroutine, keeping
// one simulator and one controller alive across all of them. The simulator
// is Reset between jobs (recycling its event/job pools and trace buffers)
// and the controller is Reset when it supports it, so a replication costs
// no steady-state allocations instead of a full rebuild. Both resets
// restore exact post-construction state, keeping results bit-identical to
// fresh per-job construction — the determinism tests pin this.
type sweepWorker struct {
	sw   *sweep
	sim  *sim.Simulator
	ctrl sim.Controller
	// built records that ctrl was constructed (it may legitimately be nil
	// for KindNone, so nil alone cannot mean "not yet built").
	built bool
}

func (s *sweep) newWorker() *sweepWorker { return &sweepWorker{sw: s} }

// controller returns a controller in post-construction state: the reused
// one (Reset is part of the Controller interface), built on first use.
func (w *sweepWorker) controller() (sim.Controller, error) {
	if w.built {
		if w.ctrl == nil { // KindNone: nothing to reset or rebuild
			return nil, nil
		}
		w.ctrl.Reset()
		return w.ctrl, nil
	}
	ctrl, err := newController(w.sw.spec.Controller, w.sw.sys, w.sw.wp.cfg)
	if err != nil {
		return nil, err
	}
	w.ctrl, w.built = ctrl, true
	return ctrl, nil
}

// run executes grid position job and stores its measurement window.
func (w *sweepWorker) run(ctx context.Context, job int) error {
	s := w.sw
	etfIdx, rep := job/s.spec.Replications, job%s.spec.Replications
	etf := s.etfs[etfIdx]
	ctrl, err := w.controller()
	if err != nil {
		return err
	}
	cfg := simConfig(s.spec, s.sys, s.wp, ctrl, sim.ConstantETF(etf), s.spec.Seed+int64(rep))
	if w.sim == nil {
		w.sim, err = sim.New(cfg)
	} else {
		err = w.sim.Reset(cfg)
	}
	if err != nil {
		return fmt.Errorf("sweep %s etf=%g rep=%d: %w", s.spec.Workload, etf, rep, err)
	}
	tr, err := w.sim.RunContext(ctx)
	if err != nil {
		return fmt.Errorf("sweep %s etf=%g rep=%d: %w", s.spec.Workload, etf, rep, err)
	}
	// Column copies out of the trace, so the window survives the next
	// Reset of this worker's simulator.
	s.windows[job] = metrics.Window(metrics.Column(tr.Utilization, 0), WindowStart, WindowEnd)
	s.robust[job] = TraceRobustness(tr, s.setPoints, WindowStart, WindowEnd)
	return nil
}

// points aggregates the stored windows into the ordered SweepPoint series,
// pooling replications per execution-time factor.
func (s *sweep) points() ([]SweepPoint, error) {
	b := s.setPoints[0]
	points := make([]SweepPoint, 0, len(s.etfs))
	for i, etf := range s.etfs {
		var pooled []float64
		var rb Robustness
		for rep := 0; rep < s.spec.Replications; rep++ {
			w := s.windows[i*s.spec.Replications+rep]
			if w == nil {
				return nil, fmt.Errorf("experiments: sweep point etf=%g rep=%d missing", etf, rep)
			}
			pooled = append(pooled, w...)
			r := s.robust[i*s.spec.Replications+rep]
			if rep == 0 {
				// Private copy: worseRobustness mutates its first argument.
				rb = Robustness{
					SettlingTime: r.SettlingTime,
					MaxOvershoot: r.MaxOvershoot,
					TimeInSpec:   append([]float64(nil), r.TimeInSpec...),
				}
			} else {
				rb = worseRobustness(rb, r)
			}
		}
		sum := metrics.Summarize(pooled)
		p := SweepPoint{
			ETF:        etf,
			P1:         sum,
			SetPoint:   b,
			Acceptable: sum.Acceptable(b),
			Robust:     rb,
		}
		if s.open != nil {
			p.OpenExpected = s.open.ExpectedUtilization(s.sys, etf)[0]
		}
		points = append(points, p)
	}
	return points, nil
}
