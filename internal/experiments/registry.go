package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"github.com/rtsyslab/eucon/internal/metrics"
	"github.com/rtsyslab/eucon/internal/sim"
	"github.com/rtsyslab/eucon/internal/workload"
)

// Experiment is a runnable reproduction of one table or figure.
type Experiment struct {
	// ID is the paper artifact identifier (e.g. "fig4").
	ID string
	// Title describes what the paper artifact shows.
	Title string
	// Run regenerates the artifact, writing its data to w. Cancellation of
	// ctx aborts in-flight simulations at the next sampling boundary.
	Run func(ctx context.Context, w io.Writer) error
}

// All returns every experiment: the paper artifacts in paper order,
// followed by the extensions.
func All() []Experiment {
	return append(paperExperiments(), Extensions()...)
}

func paperExperiments() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table 1: SIMPLE task parameters", Run: runTable1},
		{ID: "table2", Title: "Table 2: controller parameters", Run: runTable2},
		{ID: "stability", Title: "Section 6.2: SIMPLE stability bound (paper: 5.95 analytic, 6.5-7 empirical)", Run: runStability},
		{ID: "fig3a", Title: "Figure 3(a): SIMPLE utilization, etf = 0.5", Run: runFig3a},
		{ID: "fig3b", Title: "Figure 3(b): SIMPLE utilization, etf = 7 (unstable)", Run: runFig3b},
		{ID: "fig4", Title: "Figure 4: SIMPLE mean/std of u(P1) vs execution-time factor", Run: runFig4},
		{ID: "fig5", Title: "Figure 5: MEDIUM mean/std of u(P1) vs execution-time factor, with OPEN", Run: runFig5},
		{ID: "fig6", Title: "Figure 6: MEDIUM under OPEN with execution-time steps", Run: runFig6},
		{ID: "fig7", Title: "Figure 7: MEDIUM under EUCON with execution-time steps", Run: runFig7},
		{ID: "fig8", Title: "Figure 8: task rates under EUCON with execution-time steps", Run: runFig8},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns the sorted experiment identifiers.
func IDs() []string {
	all := All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return ids
}

func runTable1(_ context.Context, w io.Writer) error {
	sys := workload.Simple()
	fmt.Fprintln(w, "Tij\tProc\tcij\t1/Rmax\t1/Rmin\t1/r(0)")
	for i := range sys.Tasks {
		t := &sys.Tasks[i]
		for j, st := range t.Subtasks {
			fmt.Fprintf(w, "T%d%d\tP%d\t%.0f\t%.0f\t%.0f\t%.0f\n",
				i+1, j+1, st.Processor+1, st.EstimatedCost, 1/t.RateMax, 1/t.RateMin, 1/t.InitialRate)
		}
	}
	return nil
}

func runTable2(_ context.Context, w io.Writer) error {
	fmt.Fprintln(w, "System\tP\tM\tTref/Ts\tTs")
	s := workload.SimpleController()
	m := workload.MediumController()
	fmt.Fprintf(w, "SIMPLE\t%d\t%d\t%g\t%g\n", s.PredictionHorizon, s.ControlHorizon, s.TrefOverTs, workload.SamplingPeriod)
	fmt.Fprintf(w, "MEDIUM\t%d\t%d\t%g\t%g\n", m.PredictionHorizon, m.ControlHorizon, m.TrefOverTs, workload.SamplingPeriod)
	return nil
}

func runStability(_ context.Context, w io.Writer) error {
	g, err := SimpleCriticalGain()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "SIMPLE critical uniform gain g* = %.4f\n", g)
	fmt.Fprintf(w, "paper: 5.95 (hand analysis); empirical boundary in paper Figure 4: 6.5-7\n")
	return nil
}

func runFig3a(ctx context.Context, w io.Writer) error {
	tr, err := Run(ctx, Spec{Workload: WorkloadSimple, ETF: sim.ConstantETF(0.5), Seed: DefaultSeed})
	if err != nil {
		return err
	}
	printTrace(w, tr)
	return nil
}

func runFig3b(ctx context.Context, w io.Writer) error {
	tr, err := Run(ctx, Spec{Workload: WorkloadSimple, ETF: sim.ConstantETF(7), Seed: DefaultSeed})
	if err != nil {
		return err
	}
	printTrace(w, tr)
	return nil
}

func printSweep(w io.Writer, points []SweepPoint, withOpen bool) {
	fmt.Fprint(w, "etf\tmean(u1)\tstd(u1)\tset_point\tacceptable")
	if withOpen {
		fmt.Fprint(w, "\topen_expected")
	}
	fmt.Fprintln(w)
	for _, p := range points {
		fmt.Fprintf(w, "%.2f\t%.4f\t%.4f\t%.4f\t%v", p.ETF, p.P1.Mean, p.P1.StdDev, p.SetPoint, p.Acceptable)
		if withOpen {
			fmt.Fprintf(w, "\t%.4f", p.OpenExpected)
		}
		fmt.Fprintln(w)
	}
}

func runFig4(ctx context.Context, w io.Writer) error {
	points, err := SweepParallel(ctx, Spec{Workload: WorkloadSimple, Seed: DefaultSeed}, Fig4ETFs())
	if err != nil {
		return err
	}
	printSweep(w, points, false)
	return nil
}

func runFig5(ctx context.Context, w io.Writer) error {
	points, err := SweepParallel(ctx, Spec{Workload: WorkloadMedium, Seed: DefaultSeed}, Fig5ETFs())
	if err != nil {
		return err
	}
	printSweep(w, points, true)
	return nil
}

func runFig6(ctx context.Context, w io.Writer) error {
	tr, err := Run(ctx, Spec{Workload: WorkloadMedium, Controller: KindOPEN, ETF: DynamicETF(), Seed: DefaultSeed})
	if err != nil {
		return err
	}
	printTrace(w, tr)
	return nil
}

func runFig7(ctx context.Context, w io.Writer) error {
	tr, err := Run(ctx, Spec{Workload: WorkloadMedium, ETF: DynamicETF(), Seed: DefaultSeed})
	if err != nil {
		return err
	}
	printTrace(w, tr)
	// Report re-convergence after each step, the paper's ~20Ts claim
	// (measured on a 5-period moving average to suppress jitter).
	b := workload.Medium().DefaultSetPoints()
	for p := 0; p < len(b); p++ {
		series := metrics.Column(tr.Utilization, p)
		seg := metrics.MovingAverage(metrics.Window(series, 100, 200), 5)
		st := metrics.SettlingTime(seg, b[p], 0.05)
		fmt.Fprintf(w, "# P%d settling after +80%% step: %d Ts\n", p+1, st)
	}
	return nil
}

func runFig8(ctx context.Context, w io.Writer) error {
	tr, err := Run(ctx, Spec{Workload: WorkloadMedium, ETF: DynamicETF(), Seed: DefaultSeed})
	if err != nil {
		return err
	}
	fmt.Fprint(w, "period")
	for i := 0; i < len(tr.Rates[0]); i++ {
		fmt.Fprintf(w, "\tr(T%d)", i+1)
	}
	fmt.Fprintln(w)
	for k, r := range tr.Rates {
		fmt.Fprintf(w, "%d", k+1)
		for _, v := range r {
			fmt.Fprintf(w, "\t%.6f", v)
		}
		fmt.Fprintln(w)
	}
	return nil
}
