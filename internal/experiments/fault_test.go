package experiments

import (
	"context"
	"fmt"
	"hash/fnv"
	"testing"

	"github.com/rtsyslab/eucon/internal/fault"
	"github.com/rtsyslab/eucon/internal/metrics"
)

// sweepDigest replicates cmd/euconsim's -sweep-digest hash bit-for-bit:
// an FNV-64a over the full-precision point series. The format must not
// change, or the committed golden digests (and scripts/check.sh) break.
func sweepDigest(pts []SweepPoint) string {
	h := fnv.New64a()
	for _, p := range pts {
		fmt.Fprintf(h, "%.17g %.17g %.17g %.17g %v %.17g\n",
			p.ETF, p.P1.Mean, p.P1.StdDev, p.SetPoint, p.Acceptable, p.OpenExpected)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func mustScenario(t *testing.T, name string) []fault.Spec {
	t.Helper()
	sc, ok := fault.Lookup(name)
	if !ok {
		t.Fatalf("fault scenario %q not registered", name)
	}
	return sc.Specs
}

// faultedSweepSpec drives the faulted determinism matrix: the jittered
// MEDIUM workload with the combined kitchen-sink scenario, replications,
// and simulator/controller reuse all in play at once.
func faultedSweepSpec(t *testing.T, parallelism int) Spec {
	return Spec{
		Workload:     WorkloadMedium,
		Periods:      120,
		Seed:         DefaultSeed,
		Replications: 2,
		Parallelism:  parallelism,
		Faults:       mustScenario(t, "kitchen-sink"),
	}
}

// TestFaultedSweepDeterministic extends the determinism matrix to faulted
// runs: an identical Spec (including its Faults) must produce bit-identical
// series — and digests — for the serial engine and 1, 2, and 8 workers,
// with Reset-reusing workers replaying the same pre-resolved fault
// schedules every time.
func TestFaultedSweepDeterministic(t *testing.T) {
	etfs := []float64{0.5, 1}
	ref, err := Sweep(context.Background(), faultedSweepSpec(t, 0), etfs)
	if err != nil {
		t.Fatal(err)
	}
	refDigest := sweepDigest(ref)
	for _, workers := range []int{1, 2, 8} {
		got, err := SweepParallel(context.Background(), faultedSweepSpec(t, workers), etfs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ref {
			if !samePoint(got[i], ref[i]) {
				t.Errorf("workers=%d point %d: %+v, want bit-identical %+v", workers, i, got[i], ref[i])
			}
		}
		if d := sweepDigest(got); d != refDigest {
			t.Errorf("workers=%d digest %s, want %s", workers, d, refDigest)
		}
	}
	// The scenario must actually bite: a clean sweep over the same grid
	// cannot produce the same digest.
	clean := faultedSweepSpec(t, 0)
	clean.Faults = nil
	cleanPts, err := Sweep(context.Background(), clean, etfs)
	if err != nil {
		t.Fatal(err)
	}
	if sweepDigest(cleanPts) == refDigest {
		t.Error("faulted sweep digest equals the clean sweep digest; faults did not affect the run")
	}
}

// TestNoFaultSweepGoldenDigests pins the no-fault science: with Faults
// empty, the Figure 4 and Figure 5 sweep digests must match the goldens
// committed before the fault layer existed, proving the fault hooks are
// invisible when disabled.
func TestNoFaultSweepGoldenDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("full paper-scale sweeps; skipped in -short")
	}
	golden := []struct {
		name     string
		workload WorkloadKind
		etfs     []float64
		digest   string
	}{
		{"fig4", WorkloadSimple, Fig4ETFs(), "e2698528494c2681"},
		{"fig5", WorkloadMedium, Fig5ETFs(), "441584561a9f7e35"},
	}
	for _, g := range golden {
		pts, err := SweepParallel(context.Background(), Spec{
			Workload: g.workload,
			Seed:     DefaultSeed,
			Faults:   nil,
		}, g.etfs)
		if err != nil {
			t.Fatalf("%s: %v", g.name, err)
		}
		if d := sweepDigest(pts); d != g.digest {
			t.Errorf("%s digest %s, want golden %s", g.name, d, g.digest)
		}
	}
}

// TestCrashRecoveryReconvergence is the proc2-crash-recover acceptance run:
// processor P2 of SIMPLE is down for periods [100, 140); its monitor must
// report saturation throughout the outage, and the closed loop must pull
// every processor back into the ±InSpecTol band within a bounded number of
// periods after recovery.
func TestCrashRecoveryReconvergence(t *testing.T) {
	tr, err := Run(context.Background(), Spec{
		Workload: WorkloadSimple,
		Periods:  DefaultPeriods,
		Seed:     DefaultSeed,
		Faults:   mustScenario(t, "proc2-crash-recover"),
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, _, err := Spec{Workload: WorkloadSimple}.workload()
	if err != nil {
		t.Fatal(err)
	}
	setPoints := sys.DefaultSetPoints()

	// During the outage the crashed processor's monitor reports u = 1 and
	// the trace records the down processor.
	for k := 100; k < 140; k++ {
		if u := tr.Utilization[k][1]; u != 1 {
			t.Fatalf("period %d: crashed P2 reports u=%g, want saturated 1", k, u)
		}
		if tr.Periods[k].ProcsDown == 0 {
			t.Fatalf("period %d: ProcsDown not recorded during outage", k)
		}
	}
	if tr.Stats.CrashShedJobs == 0 {
		t.Error("no jobs shed during a 40-period outage")
	}

	// After recovery every processor must re-converge: the smoothed
	// utilization enters and stays in the ±InSpecTol band.
	worst := -1
	for p, sp := range setPoints {
		tail := metrics.Column(tr.Utilization, p)[140:]
		st := metrics.SettlingTime(metrics.MovingAverage(tail, settleSmooth), sp, InSpecTol)
		if st < 0 {
			t.Fatalf("P%d never re-converged after the crash window", p+1)
		}
		if st > worst {
			worst = st
		}
	}
	t.Logf("crash recovery: worst settling %d periods after recovery", worst)
	if worst > 60 {
		t.Errorf("re-convergence took %d periods after recovery, want <= 60", worst)
	}

	// The post-recovery steady state is healthy: full time-in-spec over the
	// last 100 periods and bounded overshoot.
	rb := TraceRobustness(tr, setPoints, 200, 300)
	for p, f := range rb.TimeInSpec {
		if f < 0.95 {
			t.Errorf("P%d time-in-spec %.3f over periods [200,300), want >= 0.95", p+1, f)
		}
	}
	t.Logf("crash recovery: tail robustness %+v", rb)
}

// TestSpecFaultsValidation checks that invalid fault specs surface as
// errors from every entry point rather than being silently ignored.
func TestSpecFaultsValidation(t *testing.T) {
	bad := []fault.Spec{{Kind: fault.ProcCrash, Proc: 99}}
	if _, err := Run(context.Background(), Spec{Workload: WorkloadSimple, Periods: 10, Faults: bad}); err == nil {
		t.Error("Run accepted an out-of-range crash target")
	}
	if _, err := SweepParallel(context.Background(), Spec{Workload: WorkloadSimple, Periods: 10, Faults: bad}, []float64{1}); err == nil {
		t.Error("SweepParallel accepted an out-of-range crash target")
	}
	if _, err := Sweep(context.Background(), Spec{Workload: WorkloadSimple, Periods: 10, Faults: bad}, []float64{1}); err == nil {
		t.Error("Sweep accepted an out-of-range crash target")
	}
}

// TestFaultedRunDegradationVisible checks the trace surfaces the
// degradation telemetry end to end: a lossy feedback path makes the
// controller hold samples, and the per-period counters record both the
// faults and the policy that absorbed them.
func TestFaultedRunDegradationVisible(t *testing.T) {
	tr, err := Run(context.Background(), Spec{
		Workload: WorkloadSimple,
		Periods:  80,
		Seed:     DefaultSeed,
		Faults: []fault.Spec{
			{Kind: fault.FeedbackDrop, Proc: fault.All, Magnitude: 0.3, Seed: 7},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	missing, held := 0, 0
	for _, ps := range tr.Periods {
		missing += ps.FeedbackMissing
		held += ps.HeldSamples
	}
	if missing == 0 {
		t.Fatal("30% feedback loss over 80 periods produced no missing samples")
	}
	if held == 0 {
		t.Error("controller held no samples despite missing feedback")
	}
}

// TestCrashDuringFeedbackDropCompound drives the compound storm the
// containment pipeline exists for: a processor crash in the middle of a
// lossy-feedback window, so the controller is flying partially blind while
// the plant saturates. The run must complete with zero controller errors
// and zero runtime-guard firings (containment holds one layer down), and
// once both faults clear the loop must re-converge within a bounded number
// of periods.
func TestCrashDuringFeedbackDropCompound(t *testing.T) {
	tr, err := Run(context.Background(), Spec{
		Workload: WorkloadSimple,
		Periods:  DefaultPeriods,
		Seed:     DefaultSeed,
		Faults: []fault.Spec{
			{Kind: fault.FeedbackDrop, Proc: fault.All, Start: 80, Stop: 160, Magnitude: 0.3, Seed: 7},
			{Kind: fault.ProcCrash, Proc: 1, Start: 100, Stop: 140},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Utilization); got != DefaultPeriods {
		t.Fatalf("run truncated: %d of %d periods", got, DefaultPeriods)
	}

	// Invariant guards must stay silent: any firing is a contained
	// controller bug escaping the layers below.
	st := tr.Stats
	if st.GuardRateFirings != 0 || st.GuardUtilFirings != 0 || st.GuardPoolFirings != 0 {
		t.Fatalf("runtime guards fired (rate=%d util=%d pool=%d) under the compound fault",
			st.GuardRateFirings, st.GuardUtilFirings, st.GuardPoolFirings)
	}
	if st.ControllerErrors != 0 {
		t.Fatalf("controller returned errors in %d periods", st.ControllerErrors)
	}

	// The degradation machinery, not luck, carried the run: the lossy
	// window must show both the fault and the hold-last-sample policy.
	missing, held := 0, 0
	for _, ps := range tr.Periods {
		missing += ps.FeedbackMissing
		held += ps.HeldSamples
	}
	if missing == 0 || held == 0 {
		t.Fatalf("compound fault left no degradation trail (missing=%d held=%d)", missing, held)
	}
	if tr.Stats.CrashShedJobs == 0 {
		t.Error("no jobs shed during the 40-period outage")
	}

	// Re-convergence bound: after both windows close at period 160, every
	// processor settles back into the ±InSpecTol band within 60 periods.
	sys, _, err := Spec{Workload: WorkloadSimple}.workload()
	if err != nil {
		t.Fatal(err)
	}
	for p, sp := range sys.DefaultSetPoints() {
		tail := metrics.Column(tr.Utilization, p)[160:]
		st := metrics.SettlingTime(metrics.MovingAverage(tail, settleSmooth), sp, InSpecTol)
		if st < 0 {
			t.Fatalf("P%d never re-converged after the compound fault", p+1)
		}
		if st > 60 {
			t.Errorf("P%d re-convergence took %d periods after recovery, want <= 60", p+1, st)
		}
	}
}
