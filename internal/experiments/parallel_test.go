package experiments

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/rtsyslab/eucon/internal/metrics"
	"github.com/rtsyslab/eucon/internal/sim"
)

// samePoint compares SweepPoints bit-exactly. SweepPoint is non-comparable
// (Robust.TimeInSpec is a slice), so the determinism tests use DeepEqual,
// which compares float64 fields by their exact values.
func samePoint(a, b SweepPoint) bool { return reflect.DeepEqual(a, b) }

// sweepTestSpec keeps the determinism matrix cheap: SIMPLE closed loop,
// short runs, two replications per point.
func sweepTestSpec(parallelism int) Spec {
	return Spec{
		Workload:     WorkloadSimple,
		Periods:      120,
		Seed:         DefaultSeed,
		Replications: 2,
		Parallelism:  parallelism,
	}
}

// TestSweepParallelDeterministic is the tentpole determinism guarantee:
// SweepParallel must return bit-identical series for 1, 2, and 8 workers,
// and agree bit-exactly with the serial Sweep.
func TestSweepParallelDeterministic(t *testing.T) {
	etfs := []float64{0.5, 1, 2}
	ref, err := Sweep(context.Background(), sweepTestSpec(0), etfs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != len(etfs) {
		t.Fatalf("series has %d points, want %d", len(ref), len(etfs))
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := SweepParallel(context.Background(), sweepTestSpec(workers), etfs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ref {
			if !samePoint(got[i], ref[i]) {
				t.Errorf("workers=%d point %d: %+v, want bit-identical %+v", workers, i, got[i], ref[i])
			}
		}
	}
}

// TestSweepReplicationsPoolWindows checks that replications change the
// summary (more samples pooled) but stay deterministic.
func TestSweepReplicationsPoolWindows(t *testing.T) {
	spec := sweepTestSpec(2)
	one := spec
	one.Replications = 1
	etfs := []float64{1}
	single, err := SweepParallel(context.Background(), one, etfs)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := SweepParallel(context.Background(), spec, etfs)
	if err != nil {
		t.Fatal(err)
	}
	again, err := SweepParallel(context.Background(), spec, etfs)
	if err != nil {
		t.Fatal(err)
	}
	if !samePoint(pooled[0], again[0]) {
		t.Errorf("replicated sweep not deterministic: %+v vs %+v", pooled[0], again[0])
	}
	// SIMPLE is deterministic given a seed, but replications use distinct
	// seeds only for jittered workloads; the pooled mean must still be a
	// valid utilization.
	if pooled[0].P1.Mean <= 0 || pooled[0].P1.Mean > 1 {
		t.Errorf("pooled mean %v out of range", pooled[0].P1.Mean)
	}
	if single[0].SetPoint != pooled[0].SetPoint {
		t.Errorf("set point changed with replications: %v vs %v", single[0].SetPoint, pooled[0].SetPoint)
	}
}

// TestSweepPooledDeterministicMedium extends the determinism matrix to the
// pooled worker path on the jittered workload: MEDIUM with replications
// exercises simulator Reset (rng reseeding, pool recycling) and EUCON
// controller Reset on every worker, and must stay bit-identical across
// 1, 2, and 8 workers and to the serial engine.
func TestSweepPooledDeterministicMedium(t *testing.T) {
	spec := Spec{
		Workload:     WorkloadMedium,
		Periods:      110,
		Seed:         DefaultSeed,
		Replications: 2,
	}
	etfs := []float64{0.5, 1}
	ref, err := Sweep(context.Background(), spec, etfs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		sp := spec
		sp.Parallelism = workers
		got, err := SweepParallel(context.Background(), sp, etfs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ref {
			if !samePoint(got[i], ref[i]) {
				t.Errorf("workers=%d point %d: %+v, want bit-identical %+v", workers, i, got[i], ref[i])
			}
		}
	}
	// Cross-check the first point against fresh construction: Run builds a
	// new controller and simulator per call, so this pins the pooled
	// Reset-reusing engine to the non-pooled path bit-exactly.
	var pooled []float64
	for rep := 0; rep < spec.Replications; rep++ {
		tr, err := Run(context.Background(), Spec{
			Workload: WorkloadMedium,
			Periods:  spec.Periods,
			ETF:      sim.ConstantETF(etfs[0]),
			Seed:     spec.Seed + int64(rep),
		})
		if err != nil {
			t.Fatal(err)
		}
		pooled = append(pooled, metrics.Window(metrics.Column(tr.Utilization, 0), WindowStart, WindowEnd)...)
	}
	if sum := metrics.Summarize(pooled); sum != ref[0].P1 {
		t.Errorf("fresh-construction summary %+v != pooled sweep point %+v", sum, ref[0].P1)
	}
}

// TestSweepPooledDeterministicDeucon covers the remaining shipped
// controller's Reset path: a reused DEUCON controller (local MPC state and
// the announced-plan exchange cleared between jobs) must reproduce the
// serial series bit-exactly.
func TestSweepPooledDeterministicDeucon(t *testing.T) {
	spec := Spec{
		Workload:   WorkloadMedium,
		Controller: KindDEUCON,
		Periods:    110, // the measurement window opens at 100 Ts
		Seed:       DefaultSeed,
	}
	etfs := []float64{0.5, 1}
	ref, err := Sweep(context.Background(), spec, etfs)
	if err != nil {
		t.Fatal(err)
	}
	sp := spec
	sp.Parallelism = 2
	got, err := SweepParallel(context.Background(), sp, etfs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if !samePoint(got[i], ref[i]) {
			t.Errorf("point %d: %+v, want bit-identical %+v", i, got[i], ref[i])
		}
	}
}

// TestSweepParallelCanceled verifies a canceled context aborts the sweep
// with context.Canceled surfaced.
func TestSweepParallelCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SweepParallel(ctx, sweepTestSpec(4), Fig4ETFs()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := Sweep(ctx, sweepTestSpec(0), Fig4ETFs()); !errors.Is(err, context.Canceled) {
		t.Fatalf("serial err = %v, want context.Canceled", err)
	}
}

// TestRunCanceled verifies the unified Run surfaces cancellation from the
// simulator's sampling-boundary checks.
func TestRunCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Spec{Workload: WorkloadSimple}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunSpecDefaults checks the zero-value defaults of Spec and the
// workload validation.
func TestRunSpecDefaults(t *testing.T) {
	tr, err := Run(context.Background(), Spec{Workload: WorkloadSimple, Periods: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Controller; got != "EUCON" {
		t.Errorf("default controller = %q, want EUCON", got)
	}
	if len(tr.Utilization) != 10 {
		t.Errorf("trace has %d periods, want 10", len(tr.Utilization))
	}
	if _, err := Run(context.Background(), Spec{}); err == nil {
		t.Error("missing workload accepted")
	}
	if _, err := SweepParallel(context.Background(), Spec{}, []float64{1}); err == nil {
		t.Error("sweep with missing workload accepted")
	}
}

// TestSweepMatchesLegacyWrappers pins the wrappers to the unified engine:
// SweepSimple must equal SweepParallel over the same grid.
func TestSweepMatchesLegacyWrappers(t *testing.T) {
	etfs := []float64{0.5, 2}
	legacy, err := SweepSimple(etfs, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	unified, err := SweepParallel(context.Background(), Spec{Workload: WorkloadSimple, Seed: DefaultSeed}, etfs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range legacy {
		if !samePoint(legacy[i], unified[i]) {
			t.Errorf("point %d: legacy %+v != unified %+v", i, legacy[i], unified[i])
		}
	}
}

// TestWorkloadKindString covers the Stringer.
func TestWorkloadKindString(t *testing.T) {
	if WorkloadSimple.String() != "SIMPLE" || WorkloadMedium.String() != "MEDIUM" {
		t.Error("WorkloadKind.String mismatch")
	}
	if got := WorkloadKind(42).String(); got != "WorkloadKind(42)" {
		t.Errorf("unknown kind String = %q", got)
	}
	if KindDEUCON.String() != "DEUCON" {
		t.Errorf("KindDEUCON String = %q", KindDEUCON.String())
	}
}
