package experiments

import (
	"math"

	"github.com/rtsyslab/eucon/internal/metrics"
	"github.com/rtsyslab/eucon/internal/sim"
)

// InSpecTol is the robustness tolerance band: a processor is "in spec" at
// period k when its utilization is within ±InSpecTol of its set point. It
// matches the settling tolerance of the paper's Experiment II analysis.
const InSpecTol = 0.05

// settleSmooth is the moving-average window applied before measuring
// settling time, matching the Figure 7 analysis: raw per-period utilization
// carries sampling noise that would otherwise reset the settling clock.
const settleSmooth = 5

// Robustness summarizes how well a run tolerated its fault scenario (or,
// with no faults, its transient): how long convergence took, how far
// utilization overshot, and how much of the steady-state window each
// processor actually spent in spec.
type Robustness struct {
	// SettlingTime is the first period index after which the smoothed
	// utilization of every processor stays within InSpecTol of its set
	// point for the rest of the run, or -1 when some processor never
	// settles. Measured over the whole run, so fault-induced excursions
	// (and the recovery from them) push it out.
	SettlingTime int
	// MaxOvershoot is the largest excursion above any processor's set
	// point inside the measurement window (0 when utilization never
	// exceeds a set point there).
	MaxOvershoot float64
	// TimeInSpec is, per processor, the fraction of measurement-window
	// periods whose utilization is within InSpecTol of the set point.
	TimeInSpec []float64
}

// TraceRobustness measures tr against the per-processor set points:
// settling time over the whole run, overshoot and time-in-spec over the
// window [from, to) (clamped to the trace length, as in metrics.Window).
func TraceRobustness(tr *sim.Trace, setPoints []float64, from, to int) Robustness {
	if to > len(tr.Utilization) {
		to = len(tr.Utilization)
	}
	if from < 0 {
		from = 0
	}
	if from > to {
		from = to
	}
	r := Robustness{TimeInSpec: make([]float64, len(setPoints))}
	for p, b := range setPoints {
		col := metrics.Column(tr.Utilization, p)
		st := metrics.SettlingTime(metrics.MovingAverage(col, settleSmooth), b, InSpecTol)
		if st < 0 || r.SettlingTime < 0 {
			r.SettlingTime = -1
		} else if st > r.SettlingTime {
			r.SettlingTime = st
		}
		in := 0
		for k := from; k < to; k++ {
			v := col[k]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				// Degraded feedback (the coordinator's Degrade mode) can
				// leave non-finite samples in a trace. They are maximally
				// out of spec: never in the in-spec count, and a
				// full-scale excursion for the overshoot — an ordinary max
				// comparison silently drops NaN (every comparison is
				// false), which made a broken run look calm.
				if ov := 1 - b; ov > r.MaxOvershoot {
					r.MaxOvershoot = ov
				}
				continue
			}
			d := v - b
			if d > r.MaxOvershoot {
				r.MaxOvershoot = d
			}
			if d <= InSpecTol && d >= -InSpecTol {
				in++
			}
		}
		if to > from {
			r.TimeInSpec[p] = float64(in) / float64(to-from)
		}
	}
	return r
}

// worseRobustness pools two replications into their worst case: the later
// settling time (never settling dominates), the larger overshoot, and the
// smaller per-processor in-spec fraction. a's TimeInSpec is mutated and
// returned, so callers pass a private copy. NaN fields — possible only for
// Robustness values built outside TraceRobustness, which sanitizes its
// inputs — count as worst case (full-scale overshoot, zero time in spec)
// instead of being dropped by NaN-absorbing comparisons.
func worseRobustness(a, b Robustness) Robustness {
	if a.SettlingTime < 0 || b.SettlingTime < 0 {
		a.SettlingTime = -1
	} else if b.SettlingTime > a.SettlingTime {
		a.SettlingTime = b.SettlingTime
	}
	if math.IsNaN(a.MaxOvershoot) {
		a.MaxOvershoot = 1
	}
	ov := b.MaxOvershoot
	if math.IsNaN(ov) {
		ov = 1
	}
	if ov > a.MaxOvershoot {
		a.MaxOvershoot = ov
	}
	for p := range a.TimeInSpec {
		if math.IsNaN(a.TimeInSpec[p]) {
			a.TimeInSpec[p] = 0
		}
		if p < len(b.TimeInSpec) {
			if bv := b.TimeInSpec[p]; math.IsNaN(bv) {
				a.TimeInSpec[p] = 0
			} else if bv < a.TimeInSpec[p] {
				a.TimeInSpec[p] = bv
			}
		}
	}
	return a
}
