// Package mat implements the dense linear algebra kernel used throughout the
// EUCON reproduction: real matrices and vectors, LU / Cholesky / QR
// factorizations, linear least squares, and eigenvalue computation for the
// small systems that arise in model predictive utilization control.
//
// The package replaces the MATLAB runtime the original paper relied on. It
// is deliberately dense-only and allocation-explicit: the matrices in this
// domain are tiny (tens of rows), so clarity and numerical robustness are
// preferred over asymptotic cleverness.
package mat

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Dense is a dense, row-major real matrix.
//
// The zero value is an empty (0×0) matrix. All operations that return a new
// matrix allocate; in-place variants are documented as such.
type Dense struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

// New returns a zero-filled r×c matrix.
// It panics if r or c is negative; a zero dimension yields an empty matrix.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic("mat: negative dimension")
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewFromRows builds a matrix from row slices. All rows must have equal
// length. The data is copied.
func NewFromRows(rows [][]float64) (*Dense, error) {
	r := len(rows)
	if r == 0 {
		return New(0, 0), nil
	}
	c := len(rows[0])
	m := New(r, c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("mat: ragged rows: row 0 has %d columns, row %d has %d", c, i, len(row))
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// MustFromRows is NewFromRows that panics on ragged input. It is intended
// for literal matrices in tests and examples.
func MustFromRows(rows [][]float64) *Dense {
	m, err := NewFromRows(rows)
	if err != nil {
		panic(err)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d []float64) *Dense {
	m := New(len(d), len(d))
	for i, v := range d {
		m.Set(i, i, v)
	}
	return m
}

// Dims returns the row and column counts.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
//
//eucon:noalloc
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
//
//eucon:noalloc
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
//
//eucon:noalloc
func (m *Dense) At(i, j int) float64 {
	m.checkIndex(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	m.data[i*m.cols+j] = v
}

//eucon:noalloc
func (m *Dense) checkIndex(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of bounds for %dx%d matrix", i, j, m.rows, m.cols)) //eucon:alloc-ok panic path only; the hot path never formats
	}
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of bounds for %dx%d matrix", i, m.rows, m.cols))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RowView returns row i as a slice aliasing the matrix storage: no copy is
// made, and writes through the slice mutate the matrix. Intended for
// read-mostly hot loops (dot products against constraint rows); use Row
// when the caller may outlive or mutate independently of m.
//
//eucon:noalloc
func (m *Dense) RowView(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of bounds for %dx%d matrix", i, m.rows, m.cols)) //eucon:alloc-ok panic path only; the hot path never formats
	}
	return m.data[i*m.cols : (i+1)*m.cols : (i+1)*m.cols]
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: column %d out of bounds for %dx%d matrix", j, m.rows, m.cols))
	}
	out := make([]float64, m.rows)
	for i := range out {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i. len(v) must equal the column count.
func (m *Dense) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("mat: SetRow length %d != %d columns", len(v), m.cols))
	}
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of bounds", i))
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], v)
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Add returns m + b. Dimensions must match.
func (m *Dense) Add(b *Dense) *Dense {
	m.checkSameDims(b, "Add")
	out := m.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out
}

// Sub returns m − b. Dimensions must match.
func (m *Dense) Sub(b *Dense) *Dense {
	m.checkSameDims(b, "Sub")
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= b.data[i]
	}
	return out
}

func (m *Dense) checkSameDims(b *Dense, op string) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mat: %s dimension mismatch: %dx%d vs %dx%d", op, m.rows, m.cols, b.rows, b.cols))
	}
}

// Scale returns s·m.
func (m *Dense) Scale(s float64) *Dense {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// Mul returns the matrix product m·b. m's column count must equal b's row
// count.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch: %dx%d · %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := New(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		oi := out.data[i*out.cols : (i+1)*out.cols]
		for k, mv := range mi {
			if IsZero(mv) {
				continue
			}
			bk := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range bk {
				oi[j] += mv * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·v. len(v) must equal the
// column count.
func (m *Dense) MulVec(v []float64) []float64 {
	if m.cols != len(v) {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch: %dx%d · %d-vector", m.rows, m.cols, len(v)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, mv := range mi {
			s += mv * v[j]
		}
		out[i] = s
	}
	return out
}

// MulVecTo computes the matrix-vector product m·v into dst, which must
// have length equal to the row count. It performs no allocation; dst may
// not alias v.
//
//eucon:noalloc
func (m *Dense) MulVecTo(dst, v []float64) {
	if m.cols != len(v) {
		panic(fmt.Sprintf("mat: MulVecTo dimension mismatch: %dx%d · %d-vector", m.rows, m.cols, len(v))) //eucon:alloc-ok panic path only; the hot path never formats
	}
	if len(dst) != m.rows {
		panic(fmt.Sprintf("mat: MulVecTo destination length %d, want %d", len(dst), m.rows)) //eucon:alloc-ok panic path only; the hot path never formats
	}
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, mv := range mi {
			s += mv * v[j]
		}
		dst[i] = s
	}
}

// Slice returns a copy of the submatrix with rows [r0,r1) and columns
// [c0,c1).
func (m *Dense) Slice(r0, r1, c0, c1 int) *Dense {
	if r0 < 0 || r1 > m.rows || c0 < 0 || c1 > m.cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("mat: Slice [%d:%d, %d:%d] out of bounds for %dx%d matrix", r0, r1, c0, c1, m.rows, m.cols))
	}
	out := New(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.data[(i-r0)*out.cols:(i-r0+1)*out.cols], m.data[i*m.cols+c0:i*m.cols+c1])
	}
	return out
}

// StackV vertically stacks matrices with equal column counts.
func StackV(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		return New(0, 0)
	}
	cols := ms[0].cols
	rows := 0
	for _, m := range ms {
		if m.cols != cols {
			panic(fmt.Sprintf("mat: StackV column mismatch: %d vs %d", cols, m.cols))
		}
		rows += m.rows
	}
	out := New(rows, cols)
	at := 0
	for _, m := range ms {
		copy(out.data[at:at+len(m.data)], m.data)
		at += len(m.data)
	}
	return out
}

// StackH horizontally stacks matrices with equal row counts.
func StackH(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		return New(0, 0)
	}
	rows := ms[0].rows
	cols := 0
	for _, m := range ms {
		if m.rows != rows {
			panic(fmt.Sprintf("mat: StackH row mismatch: %d vs %d", rows, m.rows))
		}
		cols += m.cols
	}
	out := New(rows, cols)
	for i := 0; i < rows; i++ {
		at := i * cols
		for _, m := range ms {
			copy(out.data[at:at+m.cols], m.data[i*m.cols:(i+1)*m.cols])
			at += m.cols
		}
	}
	return out
}

// MaxAbs returns the largest absolute element value, or 0 for an empty
// matrix.
func (m *Dense) MaxAbs() float64 {
	var max float64
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Dense) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Equal reports whether m and b have the same shape and all elements within
// tol of each other.
func (m *Dense) Equal(b *Dense, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i := range m.data {
		if math.Abs(m.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var sb strings.Builder
	sb.WriteString(strconv.Itoa(m.rows))
	sb.WriteByte('x')
	sb.WriteString(strconv.Itoa(m.cols))
	sb.WriteString(" [")
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			sb.WriteString("; ")
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(strconv.FormatFloat(m.data[i*m.cols+j], 'g', 6, 64))
		}
	}
	sb.WriteByte(']')
	return sb.String()
}
