package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters a
// (numerically) singular matrix.
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// LU holds an LU factorization with partial pivoting: P·A = L·U.
type LU struct {
	lu    *Dense // packed L (unit lower) and U (upper)
	pivot []int  // row permutation
	sign  int    // permutation parity: +1 or −1
}

// FactorLU computes the LU factorization of the square matrix a with partial
// pivoting. It returns ErrSingular when a pivot underflows working
// precision.
func FactorLU(a *Dense) (*LU, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("mat: FactorLU requires a square matrix, got %dx%d", a.rows, a.cols)
	}
	lu := a.Clone()
	pivot := make([]int, n)
	sign := 1
	for i := range pivot {
		pivot[i] = i
	}
	for k := 0; k < n; k++ {
		// Find pivot row.
		p, max := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > max {
				p, max = i, v
			}
		}
		if max < 1e-300 {
			return nil, fmt.Errorf("factor LU at column %d: %w", k, ErrSingular)
		}
		if p != k {
			swapRows(lu, p, k)
			pivot[p], pivot[k] = pivot[k], pivot[p]
			sign = -sign
		}
		pkk := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pkk
			lu.Set(i, k, m)
			if IsZero(m) {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Set(i, j, lu.At(i, j)-m*lu.At(k, j))
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, sign: sign}, nil
}

func swapRows(m *Dense, i, j int) {
	ri := m.data[i*m.cols : (i+1)*m.cols]
	rj := m.data[j*m.cols : (j+1)*m.cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// SolveVec solves A·x = b for a single right-hand side.
func (f *LU) SolveVec(b []float64) ([]float64, error) {
	n := f.lu.rows
	if len(b) != n {
		return nil, fmt.Errorf("mat: LU solve length mismatch: %d vs %d", len(b), n)
	}
	x := make([]float64, n)
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.pivot[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		var s float64
		for j := 0; j < i; j++ {
			s += f.lu.At(i, j) * x[j]
		}
		x[i] -= s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += f.lu.At(i, j) * x[j]
		}
		d := f.lu.At(i, i)
		if math.Abs(d) < 1e-300 {
			return nil, ErrSingular
		}
		x[i] = (x[i] - s) / d
	}
	return x, nil
}

// Solve solves A·X = B for a matrix right-hand side.
func (f *LU) Solve(b *Dense) (*Dense, error) {
	n := f.lu.rows
	if b.rows != n {
		return nil, fmt.Errorf("mat: LU solve row mismatch: %d vs %d", b.rows, n)
	}
	out := New(n, b.cols)
	for j := 0; j < b.cols; j++ {
		col, err := f.SolveVec(b.Col(j))
		if err != nil {
			return nil, err
		}
		for i, v := range col {
			out.Set(i, j, v)
		}
	}
	return out, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveVec solves A·x = b directly (factor + solve).
func SolveVec(a *Dense, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b)
}

// Inverse returns A⁻¹, or ErrSingular.
func Inverse(a *Dense) (*Dense, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(Identity(a.rows))
}

// Det returns the determinant of a square matrix (0 when singular).
func Det(a *Dense) float64 {
	f, err := FactorLU(a)
	if err != nil {
		return 0
	}
	return f.Det()
}
