package mat

import (
	"fmt"
	"math"
)

// EigenvaluesQR computes the eigenvalues of a real square matrix with the
// implicitly-shifted Hessenberg QR iteration (Wilkinson shifts, real
// arithmetic, 2×2 trailing-block deflation). It is slower to write but far
// more robust than the characteristic-polynomial route for matrices beyond
// a few tens of rows, and is used by the stability analysis for large
// decentralized systems.
func EigenvaluesQR(a *Dense) ([]complex128, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("mat: EigenvaluesQR requires a square matrix, got %dx%d", a.rows, a.cols)
	}
	if n == 0 {
		return nil, nil
	}
	h := hessenberg(a)
	eigs := make([]complex128, 0, n)

	// Work on the active trailing block h[0:hi+1, 0:hi+1].
	hi := n - 1
	const maxIter = 100
	for hi >= 0 {
		iter := 0
		for {
			// Find the largest l ≤ hi such that the subdiagonal entry
			// h[l][l-1] is negligible, splitting the active block.
			l := hi
			for l > 0 {
				s := math.Abs(h.At(l-1, l-1)) + math.Abs(h.At(l, l))
				if IsZero(s) {
					s = 1
				}
				if math.Abs(h.At(l, l-1)) <= 1e-14*s {
					h.Set(l, l-1, 0)
					break
				}
				l--
			}
			if l == hi {
				// 1×1 block deflates.
				eigs = append(eigs, complex(h.At(hi, hi), 0))
				hi--
				break
			}
			if l == hi-1 {
				// 2×2 block deflates: solve its quadratic exactly.
				e1, e2 := eig2x2(h.At(hi-1, hi-1), h.At(hi-1, hi), h.At(hi, hi-1), h.At(hi, hi))
				eigs = append(eigs, e1, e2)
				hi -= 2
				break
			}
			if iter++; iter > maxIter {
				return nil, fmt.Errorf("mat: QR iteration failed to converge on a %dx%d block", hi-l+1, hi-l+1)
			}
			// Francis implicit double-shift step, with exceptional shifts
			// every 10 iterations to break symmetric cycling.
			s := h.At(hi-1, hi-1) + h.At(hi, hi)
			t := h.At(hi-1, hi-1)*h.At(hi, hi) - h.At(hi-1, hi)*h.At(hi, hi-1)
			if iter%10 == 0 {
				x := math.Abs(h.At(hi, hi-1)) + math.Abs(h.At(hi-1, hi-2))
				s = 2 * x * 0.75
				t = -0.4375 * x * x
			}
			francisStep(h, l, hi, s, t)
		}
	}
	return eigs, nil
}

// hessenberg reduces a to upper Hessenberg form by Householder similarity
// transforms, returning a fresh matrix.
func hessenberg(a *Dense) *Dense {
	h := a.Clone()
	n := h.rows
	for k := 0; k < n-2; k++ {
		// Householder vector annihilating h[k+2:, k].
		var norm float64
		for i := k + 1; i < n; i++ {
			norm = math.Hypot(norm, h.At(i, k))
		}
		if IsZero(norm) {
			continue
		}
		if h.At(k+1, k) < 0 {
			norm = -norm
		}
		v := make([]float64, n)
		v[k+1] = h.At(k+1, k) + norm
		for i := k + 2; i < n; i++ {
			v[i] = h.At(i, k)
		}
		beta := 0.0
		for i := k + 1; i < n; i++ {
			beta += v[i] * v[i]
		}
		if IsZero(beta) {
			continue
		}
		// H = I − 2vvᵀ/β applied on both sides: h ← H·h·H.
		for j := 0; j < n; j++ { // h ← H·h
			var s float64
			for i := k + 1; i < n; i++ {
				s += v[i] * h.At(i, j)
			}
			s = 2 * s / beta
			for i := k + 1; i < n; i++ {
				h.Set(i, j, h.At(i, j)-s*v[i])
			}
		}
		for i := 0; i < n; i++ { // h ← h·H
			var s float64
			for j := k + 1; j < n; j++ {
				s += h.At(i, j) * v[j]
			}
			s = 2 * s / beta
			for j := k + 1; j < n; j++ {
				h.Set(i, j, h.At(i, j)-s*v[j])
			}
		}
	}
	// Zero the area below the first subdiagonal exactly.
	for i := 2; i < n; i++ {
		for j := 0; j < i-1; j++ {
			h.Set(i, j, 0)
		}
	}
	return h
}

// eig2x2 returns the two eigenvalues of [[a, b], [c, d]].
func eig2x2(a, b, c, d float64) (complex128, complex128) {
	tr := a + d
	det := a*d - b*c
	disc := tr*tr/4 - det
	if disc >= 0 {
		r := math.Sqrt(disc)
		return complex(tr/2+r, 0), complex(tr/2-r, 0)
	}
	im := math.Sqrt(-disc)
	return complex(tr/2, im), complex(tr/2, -im)
}

// francisStep performs one implicit double-shift QR sweep (bulge chasing)
// on the active Hessenberg block h[l:hi+1, l:hi+1], where s and t are the
// sum and product of the two shifts. Reflectors are applied across the
// full matrix so the transform is an exact similarity; entries known to be
// zero simply stay zero.
func francisStep(h *Dense, l, hi int, s, t float64) {
	n := h.rows
	// First column of (H² − sH + tI) restricted to the block.
	x := h.At(l, l)*h.At(l, l) + h.At(l, l+1)*h.At(l+1, l) - s*h.At(l, l) + t
	y := h.At(l+1, l) * (h.At(l, l) + h.At(l+1, l+1) - s)
	z := h.At(l+2, l+1) * h.At(l+1, l)
	for k := l; k <= hi-2; k++ {
		applyReflector3(h, k, min(k+2, hi), x, y, z, n)
		if k < hi-2 {
			x = h.At(k+1, k)
			y = h.At(k+2, k)
			z = 0
			if k+3 <= hi {
				z = h.At(k+3, k)
			}
		}
	}
	// Final 2-element reflector on rows (hi-1, hi).
	x = h.At(hi-1, hi-2)
	y = h.At(hi, hi-2)
	applyReflector2(h, hi-1, x, y, n)
	// Clean sub-Hessenberg round-off in the active block.
	for i := l + 2; i <= hi; i++ {
		for j := l; j < i-1; j++ {
			h.Set(i, j, 0)
		}
	}
}

// applyReflector3 applies the Householder reflector that maps (x, y, z) to
// (±‖·‖, 0, 0) as a similarity transform on rows/columns r0..r0+2 (the
// third row capped at rcap for the block tail).
func applyReflector3(h *Dense, r0, rcap int, x, y, z float64, n int) {
	rows := []int{r0, r0 + 1}
	v := []float64{x, y}
	if r0+2 <= rcap {
		rows = append(rows, r0+2)
		v = append(v, z)
	}
	norm := 0.0
	for _, vi := range v {
		norm = math.Hypot(norm, vi)
	}
	if IsZero(norm) {
		return
	}
	if v[0] < 0 {
		norm = -norm
	}
	v[0] += norm
	var beta float64
	for _, vi := range v {
		beta += vi * vi
	}
	if IsZero(beta) {
		return
	}
	// Left: rows ← (I − 2vvᵀ/β)·rows.
	for j := 0; j < n; j++ {
		var dot float64
		for i, r := range rows {
			dot += v[i] * h.At(r, j)
		}
		dot = 2 * dot / beta
		for i, r := range rows {
			h.Set(r, j, h.At(r, j)-dot*v[i])
		}
	}
	// Right: columns ← columns·(I − 2vvᵀ/β).
	for i := 0; i < n; i++ {
		var dot float64
		for k, r := range rows {
			dot += h.At(i, r) * v[k]
		}
		dot = 2 * dot / beta
		for k, r := range rows {
			h.Set(i, r, h.At(i, r)-dot*v[k])
		}
	}
}

// applyReflector2 is the two-row specialization of applyReflector3.
func applyReflector2(h *Dense, r0 int, x, y float64, n int) {
	norm := math.Hypot(x, y)
	if IsZero(norm) {
		return
	}
	if x < 0 {
		norm = -norm
	}
	v0, v1 := x+norm, y
	beta := v0*v0 + v1*v1
	if IsZero(beta) {
		return
	}
	for j := 0; j < n; j++ {
		dot := 2 * (v0*h.At(r0, j) + v1*h.At(r0+1, j)) / beta
		h.Set(r0, j, h.At(r0, j)-dot*v0)
		h.Set(r0+1, j, h.At(r0+1, j)-dot*v1)
	}
	for i := 0; i < n; i++ {
		dot := 2 * (h.At(i, r0)*v0 + h.At(i, r0+1)*v1) / beta
		h.Set(i, r0, h.At(i, r0)-dot*v0)
		h.Set(i, r0+1, h.At(i, r0+1)-dot*v1)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
