package mat

import "math"

// EqTol reports whether a and b are within tol of each other. It is the
// tolerance comparison the floatsafety analyzer steers code toward when a
// raw ==/!= between floats would hide rounding error.
func EqTol(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// IsZero reports whether x is exactly zero. It exists to centralize the
// exact-zero structural guards of the linear-algebra kernels (singularity
// checks, zero-column skips) in one audited place: these guards gate
// divisions and must be exact, not tolerant, to preserve bit-identical
// results across runs.
//
//eucon:float-exact exact-zero guard by design
//eucon:noalloc
func IsZero(x float64) bool {
	return x == 0
}
