package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by FactorCholesky when the input is not
// symmetric positive definite to working precision.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Cholesky holds a lower-triangular Cholesky factor: A = L·Lᵀ. The upper
// factor Lᵀ is materialized once at factorization time so both triangular
// solves in SolveVecTo stream rows contiguously instead of striding down a
// column.
type Cholesky struct {
	l  *Dense
	lt *Dense
}

// FactorCholesky computes the Cholesky factorization of a symmetric positive
// definite matrix. Only the lower triangle of a is read.
func FactorCholesky(a *Dense) (*Cholesky, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("mat: FactorCholesky requires a square matrix, got %dx%d", a.rows, a.cols)
	}
	l := New(n, n)
	for j := 0; j < n; j++ {
		var d float64
		for k := 0; k < j; k++ {
			d += l.At(j, k) * l.At(j, k)
		}
		d = a.At(j, j) - d
		if d <= 0 {
			return nil, fmt.Errorf("factor Cholesky at column %d: %w", j, ErrNotPositiveDefinite)
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			var s float64
			for k := 0; k < j; k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, (a.At(i, j)-s)/ljj)
		}
	}
	return &Cholesky{l: l, lt: l.T()}, nil
}

// SolveVec solves A·x = b using the factorization.
func (c *Cholesky) SolveVec(b []float64) ([]float64, error) {
	x := make([]float64, len(b))
	if err := c.SolveVecTo(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveVecTo solves A·x = b into dst without allocating. dst and b may
// alias.
//
//eucon:noalloc
func (c *Cholesky) SolveVecTo(dst, b []float64) error {
	n := c.l.rows
	if len(b) != n {
		return fmt.Errorf("mat: Cholesky solve length mismatch: %d vs %d", len(b), n) //eucon:alloc-ok error path only; the hot path never formats
	}
	if len(dst) != n {
		return fmt.Errorf("mat: Cholesky solve destination length mismatch: %d vs %d", len(dst), n) //eucon:alloc-ok error path only; the hot path never formats
	}
	copy(dst, b)
	// Indexing l.data directly keeps the two triangular solves free of
	// per-element bounds-checked accessor calls; the arithmetic and its
	// order are unchanged, so solutions stay bit-identical.
	ld := c.l.data
	// L·y = b, overwriting dst with y.
	for i := 0; i < n; i++ {
		row := ld[i*n : i*n+i]
		s := dst[i]
		for j, v := range row {
			s -= v * dst[j]
		}
		dst[i] = s / ld[i*n+i]
	}
	// Lᵀ·x = y, overwriting dst with x. Row i only reads dst[j] for j > i,
	// which already hold final x values; the cached transpose makes row i
	// of Lᵀ contiguous.
	ltd := c.lt.data
	for i := n - 1; i >= 0; i-- {
		row := ltd[i*n+i+1 : (i+1)*n]
		s := dst[i]
		for j, v := range row {
			s -= v * dst[i+1+j]
		}
		dst[i] = s / ld[i*n+i]
	}
	return nil
}

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Dense { return c.l.Clone() }
