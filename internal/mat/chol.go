package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by FactorCholesky when the input is not
// symmetric positive definite to working precision.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Cholesky holds a lower-triangular Cholesky factor: A = L·Lᵀ.
type Cholesky struct {
	l *Dense
}

// FactorCholesky computes the Cholesky factorization of a symmetric positive
// definite matrix. Only the lower triangle of a is read.
func FactorCholesky(a *Dense) (*Cholesky, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("mat: FactorCholesky requires a square matrix, got %dx%d", a.rows, a.cols)
	}
	l := New(n, n)
	for j := 0; j < n; j++ {
		var d float64
		for k := 0; k < j; k++ {
			d += l.At(j, k) * l.At(j, k)
		}
		d = a.At(j, j) - d
		if d <= 0 {
			return nil, fmt.Errorf("factor Cholesky at column %d: %w", j, ErrNotPositiveDefinite)
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			var s float64
			for k := 0; k < j; k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, (a.At(i, j)-s)/ljj)
		}
	}
	return &Cholesky{l: l}, nil
}

// SolveVec solves A·x = b using the factorization.
func (c *Cholesky) SolveVec(b []float64) ([]float64, error) {
	x := make([]float64, len(b))
	if err := c.SolveVecTo(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveVecTo solves A·x = b into dst without allocating. dst and b may
// alias.
func (c *Cholesky) SolveVecTo(dst, b []float64) error {
	n := c.l.rows
	if len(b) != n {
		return fmt.Errorf("mat: Cholesky solve length mismatch: %d vs %d", len(b), n)
	}
	if len(dst) != n {
		return fmt.Errorf("mat: Cholesky solve destination length mismatch: %d vs %d", len(dst), n)
	}
	copy(dst, b)
	// L·y = b, overwriting dst with y.
	for i := 0; i < n; i++ {
		s := dst[i]
		for j := 0; j < i; j++ {
			s -= c.l.At(i, j) * dst[j]
		}
		dst[i] = s / c.l.At(i, i)
	}
	// Lᵀ·x = y, overwriting dst with x. Row i only reads dst[j] for j > i,
	// which already hold final x values.
	for i := n - 1; i >= 0; i-- {
		s := dst[i]
		for j := i + 1; j < n; j++ {
			s -= c.l.At(j, i) * dst[j]
		}
		dst[i] = s / c.l.At(i, i)
	}
	return nil
}

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Dense { return c.l.Clone() }
