package mat

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
)

// Eigenvalue computation for small real matrices.
//
// The stability analysis in EUCON (paper §6.2) requires the eigenvalues of
// the closed-loop state matrix, which for the systems of interest is small
// (state dimension = processors + tasks, typically < 40). We compute the
// characteristic polynomial with the Faddeev–LeVerrier recurrence and find
// its roots with the Durand–Kerner simultaneous iteration. This is
// numerically adequate for small, well-scaled matrices and keeps the
// implementation self-contained; it is not intended for large n.

// CharPoly returns the coefficients of the characteristic polynomial
// det(λI − A) = λⁿ + c[1]·λⁿ⁻¹ + … + c[n], as [1, c1, …, cn].
func CharPoly(a *Dense) ([]float64, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("mat: CharPoly requires a square matrix, got %dx%d", a.rows, a.cols)
	}
	coeffs := make([]float64, n+1)
	coeffs[0] = 1
	m := New(n, n) // M_0 = 0
	for k := 1; k <= n; k++ {
		// M_k = A·M_{k−1} + c_{k−1}·I
		m = a.Mul(m)
		for i := 0; i < n; i++ {
			m.Set(i, i, m.At(i, i)+coeffs[k-1])
		}
		// c_k = −trace(A·M_k)/k
		am := a.Mul(m)
		var tr float64
		for i := 0; i < n; i++ {
			tr += am.At(i, i)
		}
		coeffs[k] = -tr / float64(k)
	}
	return coeffs, nil
}

// PolyRoots returns all (complex) roots of the real polynomial with
// coefficients coeffs = [a0, a1, …, an] representing
// a0·xⁿ + a1·xⁿ⁻¹ + … + an, using Durand–Kerner iteration. Leading zero
// coefficients are stripped. An empty or constant polynomial yields no
// roots.
func PolyRoots(coeffs []float64) []complex128 {
	// Strip leading zeros.
	for len(coeffs) > 0 && IsZero(coeffs[0]) {
		coeffs = coeffs[1:]
	}
	n := len(coeffs) - 1
	if n < 1 {
		return nil
	}
	// Normalize to a monic polynomial in complex arithmetic.
	c := make([]complex128, n+1)
	lead := coeffs[0]
	for i, v := range coeffs {
		c[i] = complex(v/lead, 0)
	}
	eval := func(x complex128) complex128 {
		r := c[0]
		for _, ci := range c[1:] {
			r = r*x + ci
		}
		return r
	}
	// Initial guesses on a circle of radius based on the Cauchy bound, with
	// an irrational angle offset so no guess starts on the real axis.
	radius := 0.0
	for _, v := range coeffs[1:] {
		radius = math.Max(radius, math.Abs(v/lead))
	}
	radius = math.Max(1, 1+radius)
	roots := make([]complex128, n)
	for i := range roots {
		theta := 2*math.Pi*float64(i)/float64(n) + 0.4
		roots[i] = cmplx.Rect(radius*0.8, theta)
	}
	const (
		maxIter = 500
		tol     = 1e-12
	)
	for iter := 0; iter < maxIter; iter++ {
		var maxDelta float64
		for i := range roots {
			num := eval(roots[i])
			den := complex(1, 0)
			for j := range roots {
				if j != i {
					den *= roots[i] - roots[j]
				}
			}
			if den == 0 {
				// Perturb coincident estimates and continue.
				roots[i] += complex(1e-8, 1e-8)
				continue
			}
			delta := num / den
			roots[i] -= delta
			if d := cmplx.Abs(delta); d > maxDelta {
				maxDelta = d
			}
		}
		if maxDelta < tol {
			break
		}
	}
	// Snap conjugate-pair noise: tiny imaginary parts on effectively real
	// roots are zeroed for caller convenience.
	for i, r := range roots {
		if math.Abs(imag(r)) < 1e-9*(1+math.Abs(real(r))) {
			roots[i] = complex(real(r), 0)
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		if real(roots[i]) != real(roots[j]) { //eucon:float-exact total-order tie-break for a stable sort
			return real(roots[i]) < real(roots[j])
		}
		return imag(roots[i]) < imag(roots[j])
	})
	return roots
}

// Eigenvalues returns the eigenvalues of a small square real matrix as
// complex numbers (conjugate pairs for complex eigenvalues).
func Eigenvalues(a *Dense) ([]complex128, error) {
	coeffs, err := CharPoly(a)
	if err != nil {
		return nil, err
	}
	return PolyRoots(coeffs), nil
}

// SpectralRadius returns max|λᵢ| over the eigenvalues of a. Small matrices
// use the characteristic-polynomial route; larger ones the Hessenberg QR
// iteration, which stays accurate where polynomial root finding degrades.
func SpectralRadius(a *Dense) (float64, error) {
	eig := Eigenvalues
	if a.rows > 10 {
		eig = EigenvaluesQR
	}
	eigs, err := eig(a)
	if err != nil {
		return 0, err
	}
	var rho float64
	for _, e := range eigs {
		if m := cmplx.Abs(e); m > rho {
			rho = m
		}
	}
	return rho, nil
}
