package mat

import "math"

// OrthonormalRange returns an orthonormal basis for the column space of a,
// as the columns of an a.Rows()×r matrix with r = rank(a), computed by
// modified Gram–Schmidt with column pivoting by residual norm. Columns with
// residual norm below tol·‖a‖ are treated as dependent. A nil result means
// the matrix is (numerically) zero.
func OrthonormalRange(a *Dense, tol float64) *Dense {
	if tol <= 0 {
		tol = 1e-10
	}
	m, n := a.Dims()
	scale := a.MaxAbs()
	if IsZero(scale) {
		return nil
	}
	cols := make([][]float64, 0, n)
	for j := 0; j < n; j++ {
		cols = append(cols, a.Col(j))
	}
	basis := make([][]float64, 0, n)
	for len(basis) < m {
		// Pick the remaining column with the largest residual norm.
		best, bestNorm := -1, 0.0
		for i, c := range cols {
			if c == nil {
				continue
			}
			if nn := Norm2(c); nn > bestNorm {
				best, bestNorm = i, nn
			}
		}
		if best < 0 || bestNorm <= tol*scale*math.Sqrt(float64(m)) {
			break
		}
		q := VecScale(1/bestNorm, cols[best])
		cols[best] = nil
		basis = append(basis, q)
		// Orthogonalize the remaining columns against q.
		for i, c := range cols {
			if c == nil {
				continue
			}
			d := Dot(q, c)
			cols[i] = VecSub(c, VecScale(d, q))
		}
	}
	if len(basis) == 0 {
		return nil
	}
	out := New(m, len(basis))
	for j, q := range basis {
		for i, v := range q {
			out.Set(i, j, v)
		}
	}
	return out
}
