package mat

import (
	"fmt"
	"math"
	"sort"
)

// This file is the structure-exploiting SPD layer: a reverse Cuthill–McKee
// fill-reducing ordering over the exact-zero pattern of a symmetric matrix,
// a banded Cholesky factorization that costs O(n·bw²) instead of the dense
// O(n³), and an SPDFactor dispatcher that picks the cheapest backend while
// keeping a zero-allocation SolveVecTo steady-state path.
//
// Everything here is deterministic: the adjacency structure is derived from
// exact zeros (sums of products of structural zeros are exactly zero in
// IEEE-754, so the pattern is a pure function of the workload, never of
// roundoff), RCM breaks every tie by (degree, index), and the banded
// factorization visits entries in a fixed order. Equal inputs therefore
// produce bit-identical factors and solutions on every run and at every
// worker count.

// spdDenseCutoff is the size below which FactorSPD always uses the dense
// backend. Small systems (SIMPLE, MEDIUM) gain nothing from banding, and
// keeping them on the exact dense path means the structured layer cannot
// move their golden digests by construction.
const spdDenseCutoff = 64

// SPDFactor is a factorization of a symmetric positive-definite matrix
// behind a single concrete type: exactly one of dense/band is non-nil.
// A concrete struct (rather than an interface) keeps every SolveVecTo
// call statically dispatched, so the noalloc analyzer can verify the
// steady-state path end to end.
type SPDFactor struct {
	dense *Cholesky
	band  *BandCholesky
}

// IsBanded reports whether the structured (banded, permuted) backend was
// selected.
func (f *SPDFactor) IsBanded() bool { return f.band != nil }

// Bandwidth returns the half bandwidth of the banded backend, or 0 for
// dense.
func (f *SPDFactor) Bandwidth() int {
	if f.band == nil {
		return 0
	}
	return f.band.bw
}

// SolveVecTo solves A·x = b into dst without allocating. dst and b may
// alias.
//
//eucon:noalloc
func (f *SPDFactor) SolveVecTo(dst, b []float64) error {
	if f.band != nil {
		return f.band.SolveVecTo(dst, b)
	}
	return f.dense.SolveVecTo(dst, b)
}

// SolveVec solves A·x = b using the factorization.
func (f *SPDFactor) SolveVec(b []float64) ([]float64, error) {
	x := make([]float64, len(b))
	if err := f.SolveVecTo(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// FactorSPDDense factors a through the dense backend unconditionally.
func FactorSPDDense(a *Dense) (*SPDFactor, error) {
	c, err := FactorCholesky(a)
	if err != nil {
		return nil, err
	}
	return &SPDFactor{dense: c}, nil
}

// FactorSPD factors a symmetric positive-definite matrix, detecting and
// exploiting band structure. Matrices below spdDenseCutoff, matrices whose
// RCM-permuted bandwidth is too wide to pay for itself, and matrices the
// banded kernel cannot factor numerically all fall back to the exact dense
// path, so FactorSPD never does worse than FactorCholesky.
func FactorSPD(a *Dense) (*SPDFactor, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("mat: FactorSPD requires a square matrix, got %dx%d", a.rows, a.cols)
	}
	if n < spdDenseCutoff {
		return FactorSPDDense(a)
	}
	perm := RCM(a)
	bw := permutedBandwidth(a, perm)
	// Banded factorization costs ~n·bw²; dense costs ~n³/3. The break-even
	// with permutation bookkeeping sits near bw ≈ n/3; beyond that the
	// dense kernel's tight loops win.
	if bw*3 >= n {
		return FactorSPDDense(a)
	}
	bc, err := factorBandCholesky(a, perm, bw)
	if err != nil {
		// Numerical trouble in the banded kernel (e.g. an input that is SPD
		// only marginally): the dense path is the arbiter.
		return FactorSPDDense(a)
	}
	return &SPDFactor{band: bc}, nil
}

// RCM computes a reverse Cuthill–McKee ordering of the exact-zero adjacency
// structure of a symmetric matrix. The returned perm maps new index →
// original index. Ties are always broken by (degree, original index), and
// disconnected components are visited in ascending order of their minimum-
// degree seed, so the ordering is a pure function of the sparsity pattern.
func RCM(a *Dense) []int {
	n := a.rows
	adj := make([][]int, n)
	deg := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j != i && !IsZero(a.At(i, j)) {
				adj[i] = append(adj[i], j)
			}
		}
		deg[i] = len(adj[i])
	}
	for i := range adj {
		neigh := adj[i]
		sort.Slice(neigh, func(x, y int) bool {
			if deg[neigh[x]] != deg[neigh[y]] {
				return deg[neigh[x]] < deg[neigh[y]]
			}
			return neigh[x] < neigh[y]
		})
	}
	order := make([]int, 0, n)
	visited := make([]bool, n)
	for {
		// Seed the next component with its minimum-degree unvisited node
		// (lowest index on ties).
		seed := -1
		for i := 0; i < n; i++ {
			if !visited[i] && (seed < 0 || deg[i] < deg[seed]) {
				seed = i
			}
		}
		if seed < 0 {
			break
		}
		visited[seed] = true
		head := len(order)
		order = append(order, seed)
		for head < len(order) {
			v := order[head]
			head++
			for _, w := range adj[v] {
				if !visited[w] {
					visited[w] = true
					order = append(order, w)
				}
			}
		}
	}
	// Reverse: RCM is Cuthill–McKee reversed, which shrinks the profile.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// permutedBandwidth returns the half bandwidth of P·A·Pᵀ for the ordering
// perm (new index → original index).
func permutedBandwidth(a *Dense, perm []int) int {
	n := a.rows
	iperm := make([]int, n)
	for k, orig := range perm {
		iperm[orig] = k
	}
	bw := 0
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			if !IsZero(a.At(i, j)) {
				d := iperm[i] - iperm[j]
				if d < 0 {
					d = -d
				}
				if d > bw {
					bw = d
				}
			}
		}
	}
	return bw
}

// BandCholesky is a Cholesky factorization of the symmetrically permuted
// matrix P·A·Pᵀ restricted to a band of half width bw: row i of L is stored
// at l[i*(bw+1) : (i+1)*(bw+1)], with L[i][j] at offset j-i+bw for
// j ∈ [i-bw, i]. Factorization costs O(n·bw²) and each solve O(n·bw).
type BandCholesky struct {
	n, bw int
	l     []float64
	perm  []int // new index → original index
	iperm []int // original index → new index
	y     []float64
	z     []float64
}

// factorBandCholesky factors P·A·Pᵀ in band storage. The caller guarantees
// that the permuted matrix has half bandwidth ≤ bw; entries outside the
// band are structural zeros and never touched.
func factorBandCholesky(a *Dense, perm []int, bw int) (*BandCholesky, error) {
	n := a.rows
	iperm := make([]int, n)
	for k, orig := range perm {
		iperm[orig] = k
	}
	w := bw + 1
	l := make([]float64, n*w)
	for i := 0; i < n; i++ {
		lo := i - bw
		if lo < 0 {
			lo = 0
		}
		for j := lo; j <= i; j++ {
			s := a.At(perm[i], perm[j])
			klo := lo
			if j-bw > klo {
				klo = j - bw
			}
			for k := klo; k < j; k++ {
				s -= l[i*w+(k-i+bw)] * l[j*w+(k-j+bw)]
			}
			if j == i {
				if s <= 0 {
					return nil, fmt.Errorf("factor banded Cholesky at row %d: %w", i, ErrNotPositiveDefinite)
				}
				l[i*w+bw] = math.Sqrt(s)
			} else {
				l[i*w+(j-i+bw)] = s / l[j*w+bw]
			}
		}
	}
	return &BandCholesky{
		n: n, bw: bw, l: l,
		perm: perm, iperm: iperm,
		y: make([]float64, n), z: make([]float64, n),
	}, nil
}

// SolveVecTo solves A·x = b into dst without allocating. dst and b may
// alias: b is fully read into internal scratch before dst is written.
//
//eucon:noalloc
func (c *BandCholesky) SolveVecTo(dst, b []float64) error {
	n, bw := c.n, c.bw
	if len(b) != n {
		return fmt.Errorf("mat: banded Cholesky solve length mismatch: %d vs %d", len(b), n) //eucon:alloc-ok error path only; the hot path never formats
	}
	if len(dst) != n {
		return fmt.Errorf("mat: banded Cholesky solve destination length mismatch: %d vs %d", len(dst), n) //eucon:alloc-ok error path only; the hot path never formats
	}
	w := bw + 1
	y, z, l := c.y, c.z, c.l
	// Forward solve L·y = P·b.
	for i := 0; i < n; i++ {
		s := b[c.perm[i]]
		lo := i - bw
		if lo < 0 {
			lo = 0
		}
		row := l[i*w+(lo-i+bw) : i*w+bw]
		for k, v := range row {
			s -= v * y[lo+k]
		}
		y[i] = s / l[i*w+bw]
	}
	// Backward solve Lᵀ·z = y: column i of L is the set of L[k][i] for
	// k ∈ (i, i+bw].
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		hi := i + bw
		if hi > n-1 {
			hi = n - 1
		}
		for k := i + 1; k <= hi; k++ {
			s -= l[k*w+(i-k+bw)] * z[k]
		}
		z[i] = s / l[i*w+bw]
	}
	// Un-permute: x = Pᵀ·z.
	for i := 0; i < n; i++ {
		dst[c.perm[i]] = z[i]
	}
	return nil
}
