package mat

import (
	"fmt"
	"math"
)

// Vector helpers. Vectors are plain []float64 throughout the project; these
// free functions keep call sites terse without introducing a wrapper type.

// VecAdd returns a + b element-wise.
func VecAdd(a, b []float64) []float64 {
	checkVecLen(a, b, "VecAdd")
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// VecSub returns a − b element-wise.
func VecSub(a, b []float64) []float64 {
	checkVecLen(a, b, "VecSub")
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// VecScale returns s·a.
func VecScale(s float64, a []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = s * a[i]
	}
	return out
}

// Dot returns the inner product of a and b.
//
//eucon:noalloc
func Dot(a, b []float64) float64 {
	checkVecLen(a, b, "Dot")
	b = b[:len(a)] // lets the compiler drop the b[i] bounds check
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of a.
func Norm2(a []float64) float64 {
	return math.Sqrt(Dot(a, a))
}

// NormInf returns the max-abs norm of a.
//
//eucon:noalloc
func NormInf(a []float64) float64 {
	var max float64
	for _, v := range a {
		if x := math.Abs(v); x > max {
			max = x
		}
	}
	return max
}

// VecClone returns a copy of a.
func VecClone(a []float64) []float64 {
	out := make([]float64, len(a))
	copy(out, a)
	return out
}

// Constant returns an n-vector with every element set to v.
func Constant(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// VecEqual reports whether a and b have equal length and all elements within
// tol.
func VecEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

// ColVec returns a as an n×1 matrix (copying the data).
func ColVec(a []float64) *Dense {
	m := New(len(a), 1)
	copy(m.data, a)
	return m
}

//eucon:noalloc
func checkVecLen(a, b []float64, op string) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: %s length mismatch: %d vs %d", op, len(a), len(b))) //eucon:alloc-ok panic path only; the hot path never formats
	}
}
