package mat

import (
	"math"
	"math/rand"
	"testing"
)

// randomBandedSPD builds an SPD matrix whose natural-order half bandwidth
// is at most 2·bw, then hides the structure behind a random symmetric
// permutation so FactorSPD must rediscover it.
func randomBandedSPD(rng *rand.Rand, n, bw int, scramble bool) *Dense {
	b := New(n, n)
	for i := 0; i < n; i++ {
		for j := i - bw; j <= i; j++ {
			if j >= 0 {
				b.Set(i, j, rng.NormFloat64())
			}
		}
		b.Set(i, i, b.At(i, i)+4) // diagonal dominance keeps B·Bᵀ well conditioned
	}
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += b.At(i, k) * b.At(j, k)
			}
			a.Set(i, j, s)
		}
	}
	if !scramble {
		return a
	}
	p := rng.Perm(n)
	sc := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sc.Set(p[i], p[j], a.At(i, j))
		}
	}
	return sc
}

// TestFactorSPDMatchesDense is the dense↔sparse equivalence property test:
// on randomized scrambled block-banded SPD systems the structured solve
// must agree with the dense Cholesky solve to 1e-9.
func TestFactorSPDMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 64 + rng.Intn(80)
		bw := 2 + rng.Intn(5)
		a := randomBandedSPD(rng, n, bw, true)
		sf, err := FactorSPD(a)
		if err != nil {
			t.Fatalf("trial %d: FactorSPD: %v", trial, err)
		}
		if !sf.IsBanded() {
			t.Fatalf("trial %d: FactorSPD picked dense for an n=%d bw≤%d system", trial, n, 2*bw)
		}
		df, err := FactorCholesky(a)
		if err != nil {
			t.Fatalf("trial %d: FactorCholesky: %v", trial, err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xs, err := sf.SolveVec(b)
		if err != nil {
			t.Fatalf("trial %d: structured solve: %v", trial, err)
		}
		xd, err := df.SolveVec(b)
		if err != nil {
			t.Fatalf("trial %d: dense solve: %v", trial, err)
		}
		for i := range xs {
			if math.Abs(xs[i]-xd[i]) > 1e-9*(1+math.Abs(xd[i])) {
				t.Fatalf("trial %d: x[%d] structured %v dense %v", trial, i, xs[i], xd[i])
			}
		}
		// The solve must actually invert A, not just agree with another solver.
		ax := a.MulVec(xs)
		for i := range ax {
			if math.Abs(ax[i]-b[i]) > 1e-6*(1+math.Abs(b[i])) {
				t.Fatalf("trial %d: (A·x)[%d] = %v, want %v", trial, i, ax[i], b[i])
			}
		}
	}
}

// TestFactorSPDDeterministic: same input, bit-identical solutions — the
// structured path has no ordering freedom left.
func TestFactorSPDDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomBandedSPD(rng, 96, 3, true)
	b := make([]float64, 96)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	f1, err := FactorSPD(a)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := FactorSPD(a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	x1, _ := f1.SolveVec(b)
	x2, _ := f2.SolveVec(b)
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("x[%d] differs across factorizations: %v vs %v", i, x1[i], x2[i])
		}
	}
}

// TestFactorSPDSmallIsDense: below the cutoff FactorSPD must be the exact
// dense path, bit for bit — this is what keeps the SIMPLE/MEDIUM goldens
// untouched by construction.
func TestFactorSPDSmallIsDense(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomBandedSPD(rng, 24, 2, false)
	f, err := FactorSPD(a)
	if err != nil {
		t.Fatal(err)
	}
	if f.IsBanded() {
		t.Fatal("FactorSPD picked the banded backend below the dense cutoff")
	}
	d, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 24)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	xf, _ := f.SolveVec(b)
	xd, _ := d.SolveVec(b)
	for i := range xf {
		if xf[i] != xd[i] {
			t.Fatalf("x[%d]: SPDFactor %v dense %v — must be bit-identical", i, xf[i], xd[i])
		}
	}
}

// TestFactorSPDDenseFallbackOnWideBand: a fully dense SPD matrix must fall
// back to the dense backend rather than a bandwidth-n "band".
func TestFactorSPDDenseFallbackOnWideBand(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 80
	a := randomBandedSPD(rng, n, n-1, false)
	f, err := FactorSPD(a)
	if err != nil {
		t.Fatal(err)
	}
	if f.IsBanded() {
		t.Fatalf("FactorSPD picked banded (bw=%d) for a dense matrix", f.Bandwidth())
	}
}

// TestBandSolveAliasing: dst and b may alias.
func TestBandSolveAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomBandedSPD(rng, 70, 2, true)
	f, err := FactorSPD(a)
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsBanded() {
		t.Fatal("expected banded backend")
	}
	b := make([]float64, 70)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want, err := f.SolveVec(b)
	if err != nil {
		t.Fatal(err)
	}
	got := append([]float64(nil), b...)
	if err := f.SolveVecTo(got, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("aliased solve diverges at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestRCMIsPermutation: RCM must return a permutation of [0, n) for any
// symmetric pattern, including disconnected ones.
func TestRCMIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 50
	a := New(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	// Two disconnected banded components plus isolated vertices.
	for i := 1; i < 20; i++ {
		a.Set(i, i-1, rng.NormFloat64())
		a.Set(i-1, i, a.At(i, i-1))
	}
	for i := 26; i < 40; i++ {
		a.Set(i, i-1, rng.NormFloat64())
		a.Set(i-1, i, a.At(i, i-1))
	}
	perm := RCM(a)
	if len(perm) != n {
		t.Fatalf("len(perm) = %d, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			t.Fatalf("perm is not a permutation: %v", perm)
		}
		seen[p] = true
	}
}

// TestRCMRecoversScrambledBand: the whole point — a scrambled banded matrix
// must come back to a narrow bandwidth.
func TestRCMRecoversScrambledBand(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	n, bw := 100, 2
	a := randomBandedSPD(rng, n, bw, true)
	perm := RCM(a)
	got := permutedBandwidth(a, perm)
	if got > 4*bw {
		t.Fatalf("RCM bandwidth = %d on a scrambled 2·bw=%d-band matrix", got, 2*bw)
	}
}
