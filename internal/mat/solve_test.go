package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolveKnown(t *testing.T) {
	a := MustFromRows([][]float64{{2, 1}, {1, 3}})
	x, err := SolveVec(a, []float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 3, x + 3y = 5 → x = 4/5, y = 7/5.
	if !VecEqual(x, []float64{0.8, 1.4}, 1e-12) {
		t.Fatalf("SolveVec = %v, want [0.8 1.4]", x)
	}
}

func TestLUSolveSingular(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveVec(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("SolveVec on singular matrix: err = %v, want ErrSingular", err)
	}
}

func TestLUSolveResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := randomDense(rng, n, n)
		// Make diagonally dominant to guarantee nonsingularity.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := SolveVec(a, b)
		if err != nil {
			return false
		}
		return VecEqual(got, want, 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLUDet(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}, {3, 4}})
	if got := Det(a); !almostEqual(got, -2, 1e-12) {
		t.Fatalf("Det = %v, want -2", got)
	}
	if got := Det(MustFromRows([][]float64{{1, 2}, {2, 4}})); got != 0 {
		t.Fatalf("Det(singular) = %v, want 0", got)
	}
}

func TestInverse(t *testing.T) {
	a := MustFromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Mul(inv); !got.Equal(Identity(2), 1e-12) {
		t.Fatalf("A·A⁻¹ = %v, want I", got)
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := FactorLU(New(2, 3)); err == nil {
		t.Fatal("FactorLU on non-square matrix returned nil error")
	}
}

func TestCholeskySolve(t *testing.T) {
	// SPD matrix.
	a := MustFromRows([][]float64{{4, 2}, {2, 3}})
	f, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	l := f.L()
	if got := l.Mul(l.T()); !got.Equal(a, 1e-12) {
		t.Fatalf("L·Lᵀ = %v, want %v", got, a)
	}
	x, err := f.SolveVec([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.MulVec(x); !VecEqual(got, []float64{1, 2}, 1e-12) {
		t.Fatalf("A·x = %v, want [1 2]", got)
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}, {2, 1}}) // indefinite
	if _, err := FactorCholesky(a); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("FactorCholesky(indefinite): err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestCholeskyRandomSPDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		b := randomDense(rng, n, n)
		spd := b.T().Mul(b).Add(Identity(n).Scale(0.5)) // BᵀB + ½I is SPD
		fac, err := FactorCholesky(spd)
		if err != nil {
			return false
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		got, err := fac.SolveVec(spd.MulVec(want))
		if err != nil {
			return false
		}
		return VecEqual(got, want, 1e-7)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Square nonsingular system: least squares must equal the exact solution.
	a := MustFromRows([][]float64{{2, 0}, {0, 3}})
	x, err := LeastSquares(a, []float64{4, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual(x, []float64{2, 3}, 1e-12) {
		t.Fatalf("LeastSquares = %v, want [2 3]", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = a + b·t to points (0,1), (1,2), (2,3): exact line a=1, b=1.
	a := MustFromRows([][]float64{{1, 0}, {1, 1}, {1, 2}})
	x, err := LeastSquares(a, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual(x, []float64{1, 1}, 1e-12) {
		t.Fatalf("LeastSquares = %v, want [1 1]", x)
	}
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	// The residual of a least-squares solution is orthogonal to range(A).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 4 + rng.Intn(8)
		n := 2 + rng.Intn(3)
		a := randomDense(rng, m, n)
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			return false
		}
		res := VecSub(a.MulVec(x), b)
		return NormInf(a.T().MulVec(res)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLeastSquaresUnderdeterminedRejected(t *testing.T) {
	if _, err := LeastSquares(New(2, 3), []float64{1, 2}); err == nil {
		t.Fatal("LeastSquares with rows < cols returned nil error")
	}
}

func TestQRRankDeficient(t *testing.T) {
	a := MustFromRows([][]float64{{1, 1}, {1, 1}, {1, 1}})
	if _, err := LeastSquares(a, []float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Fatalf("LeastSquares(rank-deficient): err = %v, want ErrSingular", err)
	}
}

func TestCharPolyKnown(t *testing.T) {
	// A = [[2,0],[0,3]] → λ² − 5λ + 6.
	a := Diag([]float64{2, 3})
	c, err := CharPoly(a)
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual(c, []float64{1, -5, 6}, 1e-10) {
		t.Fatalf("CharPoly = %v, want [1 -5 6]", c)
	}
}

func TestEigenvaluesDiagonal(t *testing.T) {
	eigs, err := Eigenvalues(Diag([]float64{1, 4, 9}))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 4, 9}
	if len(eigs) != 3 {
		t.Fatalf("got %d eigenvalues, want 3", len(eigs))
	}
	for i, e := range eigs {
		if !almostEqual(real(e), want[i], 1e-8) || math.Abs(imag(e)) > 1e-8 {
			t.Errorf("eig[%d] = %v, want %v", i, e, want[i])
		}
	}
}

func TestEigenvaluesComplexPair(t *testing.T) {
	// Rotation-like matrix [[0,-1],[1,0]] has eigenvalues ±i.
	a := MustFromRows([][]float64{{0, -1}, {1, 0}})
	eigs, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(eigs) != 2 {
		t.Fatalf("got %d eigenvalues, want 2", len(eigs))
	}
	for _, e := range eigs {
		if !almostEqual(real(e), 0, 1e-8) || !almostEqual(math.Abs(imag(e)), 1, 1e-8) {
			t.Errorf("eigenvalue %v, want ±i", e)
		}
	}
}

func TestSpectralRadius(t *testing.T) {
	a := MustFromRows([][]float64{{0.5, 0.2}, {0, -0.9}})
	rho, err := SpectralRadius(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(rho, 0.9, 1e-8) {
		t.Fatalf("SpectralRadius = %v, want 0.9", rho)
	}
}

func TestSpectralRadiusSimilarityInvariant(t *testing.T) {
	// ρ(P·A·P⁻¹) == ρ(A).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		a := randomDense(rng, n, n)
		p := randomDense(rng, n, n)
		for i := 0; i < n; i++ {
			p.Set(i, i, p.At(i, i)+float64(n)+1)
		}
		pinv, err := Inverse(p)
		if err != nil {
			return true // skip ill-conditioned draws
		}
		r1, err1 := SpectralRadius(a)
		r2, err2 := SpectralRadius(p.Mul(a).Mul(pinv))
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(r1-r2) < 1e-5*(1+r1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPolyRootsQuadratic(t *testing.T) {
	// x² − 3x + 2 = (x−1)(x−2).
	roots := PolyRoots([]float64{1, -3, 2})
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2", len(roots))
	}
	if !almostEqual(real(roots[0]), 1, 1e-9) || !almostEqual(real(roots[1]), 2, 1e-9) {
		t.Fatalf("roots = %v, want [1 2]", roots)
	}
}

func TestPolyRootsDegenerate(t *testing.T) {
	if r := PolyRoots(nil); r != nil {
		t.Errorf("PolyRoots(nil) = %v, want nil", r)
	}
	if r := PolyRoots([]float64{5}); r != nil {
		t.Errorf("PolyRoots(constant) = %v, want nil", r)
	}
	if r := PolyRoots([]float64{0, 0, 1, -2}); len(r) != 1 || !almostEqual(real(r[0]), 2, 1e-9) {
		t.Errorf("PolyRoots with leading zeros = %v, want [2]", r)
	}
}

func TestVecHelpers(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := VecAdd(a, b); !VecEqual(got, []float64{5, 7, 9}, 0) {
		t.Errorf("VecAdd = %v", got)
	}
	if got := VecSub(b, a); !VecEqual(got, []float64{3, 3, 3}, 0) {
		t.Errorf("VecSub = %v", got)
	}
	if got := VecScale(2, a); !VecEqual(got, []float64{2, 4, 6}, 0) {
		t.Errorf("VecScale = %v", got)
	}
	if got := Dot(a, b); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Norm2([]float64{3, 4}); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := NormInf([]float64{-7, 2}); got != 7 {
		t.Errorf("NormInf = %v, want 7", got)
	}
	if got := Constant(3, 2.5); !VecEqual(got, []float64{2.5, 2.5, 2.5}, 0) {
		t.Errorf("Constant = %v", got)
	}
	c := VecClone(a)
	c[0] = 99
	if a[0] != 1 {
		t.Error("VecClone did not copy")
	}
	cv := ColVec([]float64{1, 2})
	if r, cc := cv.Dims(); r != 2 || cc != 1 {
		t.Errorf("ColVec dims = (%d,%d), want (2,1)", r, cc)
	}
}
