package mat

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// eigSetsMatch greedily pairs each eigenvalue in a with its closest match
// in b — tolerant of conjugate pairs sorting differently across solvers.
func eigSetsMatch(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	used := make([]bool, len(b))
	for _, ea := range a {
		best, bestD := -1, 0.0
		for j, eb := range b {
			if used[j] {
				continue
			}
			if d := cmplx.Abs(ea - eb); best < 0 || d < bestD {
				best, bestD = j, d
			}
		}
		if best < 0 || bestD > tol*(1+cmplx.Abs(ea)) {
			return false
		}
		used[best] = true
	}
	return true
}

func sortEigs(e []complex128) {
	sort.Slice(e, func(i, j int) bool {
		if real(e[i]) != real(e[j]) {
			return real(e[i]) < real(e[j])
		}
		return imag(e[i]) < imag(e[j])
	})
}

func TestEigenvaluesQRDiagonal(t *testing.T) {
	eigs, err := EigenvaluesQR(Diag([]float64{3, -1, 7}))
	if err != nil {
		t.Fatal(err)
	}
	sortEigs(eigs)
	want := []float64{-1, 3, 7}
	for i, e := range eigs {
		if math.Abs(real(e)-want[i]) > 1e-10 || math.Abs(imag(e)) > 1e-10 {
			t.Errorf("eig[%d] = %v, want %v", i, e, want[i])
		}
	}
}

func TestEigenvaluesQRComplexPair(t *testing.T) {
	a := MustFromRows([][]float64{{0, -2}, {2, 0}}) // ±2i
	eigs, err := EigenvaluesQR(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range eigs {
		if math.Abs(real(e)) > 1e-10 || math.Abs(math.Abs(imag(e))-2) > 1e-10 {
			t.Errorf("eigenvalue %v, want ±2i", e)
		}
	}
}

func TestEigenvaluesQRNonSquare(t *testing.T) {
	if _, err := EigenvaluesQR(New(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestEigenvaluesQREmpty(t *testing.T) {
	eigs, err := EigenvaluesQR(New(0, 0))
	if err != nil || len(eigs) != 0 {
		t.Fatalf("empty matrix: eigs=%v err=%v", eigs, err)
	}
}

func TestEigenvaluesQRMatchesCharPolySmall(t *testing.T) {
	// Both eigensolvers must agree on small random matrices.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		a := randomDense(rng, n, n)
		qr, err := EigenvaluesQR(a)
		if err != nil {
			return false
		}
		cp, err := Eigenvalues(a)
		if err != nil {
			return false
		}
		return eigSetsMatch(qr, cp, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEigenvaluesQRTraceAndDetInvariants(t *testing.T) {
	// Σλ = trace(A) and Πλ = det(A) for random matrices, including sizes
	// where the characteristic-polynomial route would be fragile.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		a := randomDense(rng, n, n)
		eigs, err := EigenvaluesQR(a)
		if err != nil {
			return false
		}
		if len(eigs) != n {
			return false
		}
		var sum complex128
		prod := complex(1, 0)
		for _, e := range eigs {
			sum += e
			prod *= e
		}
		var tr float64
		for i := 0; i < n; i++ {
			tr += a.At(i, i)
		}
		if math.Abs(real(sum)-tr) > 1e-6*(1+math.Abs(tr)) || math.Abs(imag(sum)) > 1e-6 {
			return false
		}
		det := Det(a)
		scale := math.Max(1, math.Abs(det))
		return cmplx.Abs(prod-complex(det, 0)) < 1e-5*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEigenvaluesQRDefectiveMatrix(t *testing.T) {
	// Jordan block: defective but the eigenvalues are still 2, 2.
	a := MustFromRows([][]float64{{2, 1}, {0, 2}})
	eigs, err := EigenvaluesQR(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range eigs {
		if cmplx.Abs(e-2) > 1e-7 {
			t.Errorf("eigenvalue %v, want 2", e)
		}
	}
}

func TestHessenbergPreservesEigenvalues(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomDense(rng, 6, 6)
	h := hessenberg(a)
	// Hessenberg structure.
	for i := 2; i < 6; i++ {
		for j := 0; j < i-1; j++ {
			if h.At(i, j) != 0 {
				t.Fatalf("h[%d][%d] = %v, want 0", i, j, h.At(i, j))
			}
		}
	}
	// Same characteristic polynomial (similarity transform).
	ca, err := CharPoly(a)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := CharPoly(h)
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual(ca, ch, 1e-7) {
		t.Fatalf("char polys differ:\n%v\n%v", ca, ch)
	}
}
