package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomDense(rng *rand.Rand, r, c int) *Dense {
	m := New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func TestNewZeroFilled(t *testing.T) {
	m := New(3, 4)
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("Dims() = (%d,%d), want (3,4)", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Errorf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestNewFromRowsRagged(t *testing.T) {
	if _, err := NewFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("NewFromRows with ragged rows returned nil error")
	}
}

func TestNewFromRowsCopies(t *testing.T) {
	row := []float64{1, 2}
	m := MustFromRows([][]float64{row})
	row[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("NewFromRows did not copy input data")
	}
}

func TestSetAt(t *testing.T) {
	m := New(2, 2)
	m.Set(1, 0, 7.5)
	if m.At(1, 0) != 7.5 {
		t.Fatalf("At(1,0) = %v, want 7.5", m.At(1, 0))
	}
}

func TestAtOutOfBoundsPanics(t *testing.T) {
	m := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At(2,0) did not panic")
		}
	}()
	m.At(2, 0)
}

func TestIdentity(t *testing.T) {
	m := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Errorf("Identity(3).At(%d,%d) = %v, want %v", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestDiag(t *testing.T) {
	m := Diag([]float64{2, 3})
	want := MustFromRows([][]float64{{2, 0}, {0, 3}})
	if !m.Equal(want, 0) {
		t.Fatalf("Diag = %v, want %v", m, want)
	}
}

func TestMul(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}, {3, 4}})
	b := MustFromRows([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := MustFromRows([][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want, 1e-12) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulVec(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.MulVec([]float64{1, 0, -1})
	if !VecEqual(got, []float64{-2, -2}, 1e-12) {
		t.Fatalf("MulVec = %v, want [-2 -2]", got)
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mul with mismatched dims did not panic")
		}
	}()
	New(2, 3).Mul(New(2, 3))
}

func TestTranspose(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.T()
	want := MustFromRows([][]float64{{1, 4}, {2, 5}, {3, 6}})
	if !got.Equal(want, 0) {
		t.Fatalf("T() = %v, want %v", got, want)
	}
}

func TestTransposeProperty(t *testing.T) {
	// (A·B)ᵀ == Bᵀ·Aᵀ for random matrices.
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomDense(r, 2+rng.Intn(5), 2+rng.Intn(5))
		b := randomDense(r, a.Cols(), 2+rng.Intn(5))
		lhs := a.Mul(b).T()
		rhs := b.T().Mul(a.T())
		return lhs.Equal(rhs, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubScale(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}, {3, 4}})
	b := MustFromRows([][]float64{{4, 3}, {2, 1}})
	if got, want := a.Add(b), MustFromRows([][]float64{{5, 5}, {5, 5}}); !got.Equal(want, 0) {
		t.Errorf("Add = %v, want %v", got, want)
	}
	if got, want := a.Sub(b), MustFromRows([][]float64{{-3, -1}, {1, 3}}); !got.Equal(want, 0) {
		t.Errorf("Sub = %v, want %v", got, want)
	}
	if got, want := a.Scale(2), MustFromRows([][]float64{{2, 4}, {6, 8}}); !got.Equal(want, 0) {
		t.Errorf("Scale = %v, want %v", got, want)
	}
}

func TestRowColCopies(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}, {3, 4}})
	r := a.Row(0)
	r[0] = 99
	if a.At(0, 0) != 1 {
		t.Error("Row returned a view, want a copy")
	}
	c := a.Col(1)
	c[0] = 99
	if a.At(0, 1) != 2 {
		t.Error("Col returned a view, want a copy")
	}
	if !VecEqual(a.Col(1), []float64{2, 4}, 0) {
		t.Errorf("Col(1) = %v, want [2 4]", a.Col(1))
	}
}

func TestSetRow(t *testing.T) {
	a := New(2, 3)
	a.SetRow(1, []float64{7, 8, 9})
	if !VecEqual(a.Row(1), []float64{7, 8, 9}, 0) {
		t.Fatalf("Row(1) = %v after SetRow", a.Row(1))
	}
}

func TestSlice(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	got := a.Slice(1, 3, 0, 2)
	want := MustFromRows([][]float64{{4, 5}, {7, 8}})
	if !got.Equal(want, 0) {
		t.Fatalf("Slice = %v, want %v", got, want)
	}
}

func TestStackV(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}})
	b := MustFromRows([][]float64{{3, 4}, {5, 6}})
	got := StackV(a, b)
	want := MustFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if !got.Equal(want, 0) {
		t.Fatalf("StackV = %v, want %v", got, want)
	}
}

func TestStackH(t *testing.T) {
	a := MustFromRows([][]float64{{1}, {2}})
	b := MustFromRows([][]float64{{3, 4}, {5, 6}})
	got := StackH(a, b)
	want := MustFromRows([][]float64{{1, 3, 4}, {2, 5, 6}})
	if !got.Equal(want, 0) {
		t.Fatalf("StackH = %v, want %v", got, want)
	}
}

func TestNorms(t *testing.T) {
	a := MustFromRows([][]float64{{3, -4}})
	if got := a.FrobeniusNorm(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("FrobeniusNorm = %v, want 5", got)
	}
	if got := a.MaxAbs(); got != 4 {
		t.Errorf("MaxAbs = %v, want 4", got)
	}
}

func TestString(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}, {3, 4}})
	if got := a.String(); got != "2x2 [1 2; 3 4]" {
		t.Fatalf("String() = %q", got)
	}
}
