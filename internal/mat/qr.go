package mat

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization of an m×n matrix with m ≥ n:
// A = Q·R with Q orthogonal (stored implicitly as Householder vectors) and R
// upper triangular. Storage follows the LINPACK convention: the strict upper
// triangle of qr holds R, each column k at and below the diagonal holds the
// Householder vector v_k, and rdiag holds R's diagonal.
type QR struct {
	qr    *Dense
	rdiag []float64
}

// FactorQR computes the QR factorization of a. It requires rows ≥ cols.
func FactorQR(a *Dense) (*QR, error) {
	m, n := a.Dims()
	if m < n {
		return nil, fmt.Errorf("mat: FactorQR requires rows >= cols, got %dx%d", m, n)
	}
	qr := a.Clone()
	rdiag := make([]float64, n)
	for k := 0; k < n; k++ {
		var norm float64
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, qr.At(i, k))
		}
		if IsZero(norm) {
			rdiag[k] = 0
			continue
		}
		if qr.At(k, k) < 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/norm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
		rdiag[k] = -norm
	}
	return &QR{qr: qr, rdiag: rdiag}, nil
}

// SolveLeastSquares returns argmin‖Ax − b‖₂ via the factorization. It
// returns ErrSingular when R is rank-deficient to working precision.
func (f *QR) SolveLeastSquares(b []float64) ([]float64, error) {
	m, n := f.qr.Dims()
	if len(b) != m {
		return nil, fmt.Errorf("mat: QR solve length mismatch: %d vs %d", len(b), m)
	}
	x := make([]float64, n)
	if err := f.SolveLeastSquaresTo(x, make([]float64, m), b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveLeastSquaresTo computes argmin‖Ax − b‖₂ into x (length cols) using
// scratch (length rows) for the Qᵀ·b product: the allocation-free variant
// of SolveLeastSquares for analysis loops that re-solve against one
// factorization. The arithmetic is identical to SolveLeastSquares, so both
// produce bit-identical solutions.
//
//eucon:noalloc
func (f *QR) SolveLeastSquaresTo(x, scratch, b []float64) error {
	m, n := f.qr.Rows(), f.qr.Cols()
	if len(b) != m || len(scratch) != m {
		return fmt.Errorf("mat: QR solve length mismatch: %d/%d vs %d", len(b), len(scratch), m) //eucon:alloc-ok error path
	}
	if len(x) != n {
		return fmt.Errorf("mat: QR solution length mismatch: %d vs %d", len(x), n) //eucon:alloc-ok error path
	}
	y := scratch
	copy(y, b)
	// Apply Qᵀ to b by applying each Householder reflector in order.
	for k := 0; k < n; k++ {
		vk := f.qr.At(k, k)
		if IsZero(f.rdiag[k]) || IsZero(vk) {
			continue
		}
		var s float64
		for i := k; i < m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / vk
		for i := k; i < m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back-substitute R·x = y[:n].
	scale := f.maxRDiag()
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		d := f.rdiag[i]
		if math.Abs(d) < 1e-13*scale || IsZero(d) {
			return fmt.Errorf("least-squares back-substitution at column %d: %w", i, ErrSingular) //eucon:alloc-ok error path
		}
		x[i] = s / d
	}
	return nil
}

//eucon:noalloc
func (f *QR) maxRDiag() float64 {
	max := 1.0
	for _, v := range f.rdiag {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// LeastSquares solves argmin‖Ax − b‖₂ directly (factor + solve).
func LeastSquares(a *Dense, b []float64) ([]float64, error) {
	f, err := FactorQR(a)
	if err != nil {
		return nil, err
	}
	return f.SolveLeastSquares(b)
}
