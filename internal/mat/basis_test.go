package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOrthonormalRangeFullRank(t *testing.T) {
	a := MustFromRows([][]float64{{1, 0}, {0, 2}, {0, 0}})
	q := OrthonormalRange(a, 0)
	if q == nil || q.Cols() != 2 {
		t.Fatalf("OrthonormalRange returned %v, want 2 columns", q)
	}
	// Columns orthonormal.
	if got := q.T().Mul(q); !got.Equal(Identity(2), 1e-10) {
		t.Fatalf("QᵀQ = %v, want I", got)
	}
}

func TestOrthonormalRangeRankDeficient(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}, {2, 4}}) // rank 1
	q := OrthonormalRange(a, 0)
	if q == nil || q.Cols() != 1 {
		t.Fatalf("rank-1 matrix produced %v columns", q)
	}
}

func TestOrthonormalRangeZero(t *testing.T) {
	if q := OrthonormalRange(New(3, 2), 0); q != nil {
		t.Fatalf("zero matrix produced basis %v, want nil", q)
	}
}

func TestOrthonormalRangeSpansColumns(t *testing.T) {
	// Every original column must be reproducible from the basis:
	// ‖(I − QQᵀ)·a_j‖ ≈ 0.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(5)
		n := 1 + rng.Intn(5)
		a := randomDense(rng, m, n)
		q := OrthonormalRange(a, 0)
		if q == nil {
			return false
		}
		proj := q.Mul(q.T())
		for j := 0; j < n; j++ {
			col := a.Col(j)
			res := VecSub(col, proj.MulVec(col))
			if Norm2(res) > 1e-8*(1+Norm2(col)) {
				return false
			}
		}
		// Orthonormality.
		r := q.Cols()
		return q.T().Mul(q).Equal(Identity(r), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOrthonormalRangeNearDependentColumns(t *testing.T) {
	a := MustFromRows([][]float64{{1, 1 + 1e-13}, {1, 1}})
	q := OrthonormalRange(a, 1e-10)
	if q == nil || q.Cols() != 1 {
		cols := -1
		if q != nil {
			cols = q.Cols()
		}
		t.Fatalf("near-dependent columns produced %d basis vectors, want 1", cols)
	}
	_ = math.Pi
}
