// Package mpc implements the model predictive controller at the heart of
// EUCON (paper §6.1): receding-horizon control of the linear
// difference-equation model
//
//	u(k) = u(k−1) + F·Δr(k−1)
//
// minimizing the cost function (7) — tracking error against an exponential
// reference trajectory plus a control-change penalty — subject to output
// constraints u ≤ B and actuator box constraints R_min ≤ r ≤ R_max. The
// constrained optimization is transformed to an inequality-constrained
// least-squares problem and solved by internal/qp, mirroring the paper's
// use of MATLAB's lsqlin.
package mpc

import (
	"errors"
	"fmt"
	"math"

	"github.com/rtsyslab/eucon/internal/empc"
	"github.com/rtsyslab/eucon/internal/mat"
	"github.com/rtsyslab/eucon/internal/qp"
)

// Config holds the controller tuning parameters (paper Table 2).
type Config struct {
	// PredictionHorizon is P: how many sampling periods ahead outputs are
	// predicted.
	PredictionHorizon int
	// ControlHorizon is M ≤ P: how many future control moves are decision
	// variables; moves beyond M are zero.
	ControlHorizon int
	// TrefOverTs is the reference-trajectory time constant divided by the
	// sampling period (Tref/Ts in eq. 8). Larger values give slower, smoother
	// convergence.
	TrefOverTs float64
	// QWeights are per-output tracking weights w_i (eq. 7); nil means all 1.
	QWeights []float64
	// RWeights are per-input control-penalty weights; nil means all 1.
	RWeights []float64
	// DisableOutputConstraints drops the hard u(k+i|k) ≤ B constraints,
	// leaving only the actuator box. Used for ablation studies.
	DisableOutputConstraints bool
	// Solver tunes the underlying QP solver.
	Solver qp.Options
}

func (c Config) validate(n, m int) error {
	if c.PredictionHorizon < 1 {
		return fmt.Errorf("mpc: prediction horizon %d must be >= 1", c.PredictionHorizon)
	}
	if c.ControlHorizon < 1 || c.ControlHorizon > c.PredictionHorizon {
		return fmt.Errorf("mpc: control horizon %d must be in [1, %d]", c.ControlHorizon, c.PredictionHorizon)
	}
	if c.TrefOverTs <= 0 {
		return errors.New("mpc: TrefOverTs must be positive")
	}
	if c.QWeights != nil && len(c.QWeights) != n {
		return fmt.Errorf("mpc: QWeights has length %d, want %d", len(c.QWeights), n)
	}
	if c.RWeights != nil && len(c.RWeights) != m {
		return fmt.Errorf("mpc: RWeights has length %d, want %d", len(c.RWeights), m)
	}
	for _, w := range c.QWeights {
		if w < 0 {
			return errors.New("mpc: QWeights must be non-negative")
		}
	}
	for _, w := range c.RWeights {
		if w < 0 {
			return errors.New("mpc: RWeights must be non-negative")
		}
	}
	return nil
}

// Controller is a MIMO receding-horizon controller for the EUCON plant
// model. It is not safe for concurrent use.
//
// Everything that does not depend on the measurements is computed once at
// construction and cached: the least-squares stack C (and, inside the LSI
// solver, its Hessian CᵀC with Cholesky factorization) and both constraint
// matrices. Step only refreshes the right-hand sides, so the steady-state
// control path performs no matrix assembly and near-zero allocation.
type Controller struct {
	f         *mat.Dense // n×m allocation matrix
	setPoints []float64  // B, length n
	rmin      []float64  // length m
	rmax      []float64  // length m
	cfg       Config
	n, m      int

	sqrtQ []float64 // √QWeights
	sqrtR []float64 // √RWeights
	lam   []float64 // λ_i = 1 − e^{−i/(Tref/Ts)} for i = 1..P

	prevDelta []float64 // Δr(k−1), for the control penalty

	// Anti-windup state: lastRates remembers the rates argument of the
	// previous Step (the rates the plant actually applied), so the move
	// memory can be reconciled with the achieved move when an actuator
	// fault keeps a command from taking effect (see Step).
	lastRates   []float64
	haveLast    bool
	windupSyncs int

	// Cached problem structure (constant across sampling periods).
	cmat  *mat.Dense // least-squares stack C; only d changes per period
	lsi   *qp.LSI    // caches CᵀC + Cholesky, scratch, warm-start set
	aFull *mat.Dense // rate box + output constraints (output part empty when disabled)
	aBox  *mat.Dense // rate box only (the relaxation fallback)

	// Tikhonov fallback solver: the stack [C; √λ·I] against the rate box,
	// used when the nominal solve fails numerically (see Step's degradation
	// ladder). Built once at construction; nil only if its Hessian cannot
	// be factored, in which case the ladder skips straight to holding.
	lsiReg *qp.LSI

	// Containment counters (cleared by Reset): how many Steps were
	// resolved by each below-nominal rung of the degradation ladder.
	bestIterates int
	regularized  int
	heldSteps    int
	lastOutcome  SolveOutcome

	// Per-period scratch (right-hand sides and starting point).
	dbuf        []float64
	dregBuf     []float64 // dbuf extended with the Tikhonov zero targets
	bFull, bBox []float64
	z0          []float64
	fastX       []float64 // StepTo interior fast-path solution scratch
	prevRelaxed bool      // which constraint variant the warm-start set refers to

	// Explicit-MPC state (nil law: iterative solver only). The law is the
	// offline-compiled piecewise-affine map of internal/empc; lastRegion is
	// the point-location warm-start hint. The exp* buffers back the reused
	// StepResult of the zero-allocation explicit path.
	law            *empc.Law
	lastRegion     int
	explicitHits   int
	explicitMisses int
	lastExplicit   SolveOutcome // SolveExplicit, SolveExplicitMiss, or SolveOK (no law)
	theta          []float64
	expX           []float64
	expRes         StepResult

	// GainsTo scratch: the QR factorization of the least-squares stack is
	// constant after construction, so it is computed once on first use and
	// cached with the basis-response buffers.
	gainFac *mat.QR
	gainD   []float64 // basis right-hand side, cmat rows
	gainY   []float64 // Qᵀ·d scratch, cmat rows
	gainZ   []float64 // basis solution, cmat cols
}

// SolveOutcome classifies how a Step obtained its control move — which
// rung of the numerical-failure degradation ladder produced the applied
// rates. The ladder never lets a solver failure escape as an error or a
// non-finite rate: each rung is strictly more conservative than the one
// above it, and the bottom rung (holding the applied rates) is always
// available.
//
//eucon:exhaustive
type SolveOutcome int

const (
	// SolveOK: the constrained solve converged with the full constraint
	// set.
	SolveOK SolveOutcome = iota
	// SolveRelaxed: the hard output constraints were infeasible (severe
	// overload) and were dropped for the period; the tracking term still
	// steers utilization toward the set points.
	SolveRelaxed
	// SolveBestIterate: the solver hit its iteration cap, but the best
	// iterate is feasible, finite, and nearly stationary (KKT residual
	// within bestIterateResidualBound), so it was applied as-is.
	SolveBestIterate
	// SolveRegularized: the solve failed outright (singular system, or an
	// iteration-capped iterate too far from stationary) and a
	// Tikhonov-regularized re-solve against the always-feasible rate box
	// produced the move instead.
	SolveRegularized
	// SolveHeld: every rung above failed; the controller held the
	// last-applied rates (Δr = 0). The move memory reconciles itself
	// through the anti-windup resync on the next Step, so no windup
	// accumulates while holding.
	SolveHeld
	// SolveExplicit: the offline-compiled explicit law resolved the move —
	// the query landed in the interior critical region and the bit-exact
	// fast path (qp.LSI.SolveInteriorTo) produced rates identical to what
	// the iterative solver would have returned. Not a degradation.
	SolveExplicit
	// SolveExplicitMiss: an explicit law is attached but the query fell off
	// its bit-exact map (a constrained critical region, off-map parameters,
	// or a boundary-numerics disagreement); the iterative solver and its
	// degradation ladder produced the move. Reported through
	// ExplicitCounts and LastExplicitOutcome — a Step's Outcome always
	// carries the ladder rung that actually produced the rates.
	SolveExplicitMiss
)

// String implements fmt.Stringer.
func (o SolveOutcome) String() string {
	switch o {
	case SolveOK:
		return "ok"
	case SolveRelaxed:
		return "relaxed"
	case SolveBestIterate:
		return "best-iterate"
	case SolveRegularized:
		return "regularized"
	case SolveHeld:
		return "held"
	case SolveExplicit:
		return "explicit"
	case SolveExplicitMiss:
		return "explicit-miss"
	default:
		return fmt.Sprintf("SolveOutcome(%d)", int(o))
	}
}

// Degraded reports whether the outcome came from a containment rung below
// the normal solve paths (best-iterate, regularized, or held). An explicit
// hit is a nominal solve; an explicit miss is classified by the ladder rung
// that actually produced the move, not by the miss itself.
func (o SolveOutcome) Degraded() bool {
	switch o {
	case SolveBestIterate, SolveRegularized, SolveHeld:
		return true
	case SolveOK, SolveRelaxed, SolveExplicit, SolveExplicitMiss:
		return false
	}
	return false
}

// bestIterateResidualBound is the acceptance threshold for an
// iteration-capped solve: the best iterate is applied when its scaled KKT
// step norm (qp.Result.Stationarity) is at most this bound. The receding
// horizon re-solves every period, so a near-stationary move is safe to
// apply; anything farther off falls through to the regularized re-solve.
const bestIterateResidualBound = 1e-2

// tikhonovWeightFrac sizes the Tikhonov term of the fallback solver
// relative to the least-squares stack: √λ = tikhonovWeightFrac·max(1, ‖C‖max),
// i.e. λ caps the Hessian condition number near 1/tikhonovWeightFrac² while
// biasing the move toward Δr = 0 (the safest direction when the nominal
// problem is numerically sick).
const tikhonovWeightFrac = 0.1

// StepResult reports one control computation.
type StepResult struct {
	// DeltaR is the applied control input Δr(k) (first move of the optimal
	// trajectory).
	DeltaR []float64
	// NewRates is r(k−1) + Δr(k), clipped to the rate bounds.
	NewRates []float64
	// PredictedUtil is the model's one-step utilization prediction
	// u(k) + F·Δr(k).
	PredictedUtil []float64
	// OutputConstraintsRelaxed reports that the utilization constraints had
	// to be dropped this period because no rate vector could satisfy them
	// (severe overload); the tracking term still steers u toward B.
	OutputConstraintsRelaxed bool
	// SolverIterations counts active-set iterations used.
	SolverIterations int
	// Outcome reports which rung of the degradation ladder produced
	// NewRates (see SolveOutcome). NewRates is finite and within the rate
	// box for every outcome.
	Outcome SolveOutcome
}

// New builds a controller for the allocation matrix f (n processors × m
// tasks), utilization set points, and per-task rate bounds.
func New(f *mat.Dense, setPoints, rmin, rmax []float64, cfg Config) (*Controller, error) {
	n, m := f.Dims()
	if n == 0 || m == 0 {
		return nil, fmt.Errorf("mpc: empty allocation matrix %dx%d", n, m)
	}
	if len(setPoints) != n {
		return nil, fmt.Errorf("mpc: setPoints has length %d, want %d", len(setPoints), n)
	}
	if len(rmin) != m || len(rmax) != m {
		return nil, fmt.Errorf("mpc: rate bounds have lengths %d/%d, want %d", len(rmin), len(rmax), m)
	}
	for i := range rmin {
		if rmin[i] > rmax[i] {
			return nil, fmt.Errorf("mpc: rmin[%d] = %g > rmax[%d] = %g", i, rmin[i], i, rmax[i])
		}
	}
	if err := cfg.validate(n, m); err != nil {
		return nil, err
	}
	c := &Controller{
		f:         f.Clone(),
		setPoints: mat.VecClone(setPoints),
		rmin:      mat.VecClone(rmin),
		rmax:      mat.VecClone(rmax),
		cfg:       cfg,
		n:         n,
		m:         m,
		prevDelta: make([]float64, m),
		lastRates: make([]float64, m),
	}
	c.sqrtQ = mat.Constant(n, 1)
	if cfg.QWeights != nil {
		for i, w := range cfg.QWeights {
			c.sqrtQ[i] = math.Sqrt(w)
		}
	}
	c.sqrtR = mat.Constant(m, 1)
	if cfg.RWeights != nil {
		for i, w := range cfg.RWeights {
			c.sqrtR[i] = math.Sqrt(w)
		}
	}
	c.lam = make([]float64, cfg.PredictionHorizon+1)
	for i := 1; i <= cfg.PredictionHorizon; i++ {
		c.lam[i] = 1 - math.Exp(-float64(i)/cfg.TrefOverTs)
	}
	// Hoist every measurement-independent part of the optimization out of
	// the per-period path.
	c.cmat = c.buildLeastSquaresMatrix()
	lsi, err := qp.NewLSI(c.cmat, cfg.Solver)
	if err != nil {
		return nil, fmt.Errorf("mpc: prepare least-squares solver: %w", err)
	}
	c.lsi = lsi
	c.aFull = c.buildConstraintMatrix(true)
	c.aBox = c.buildConstraintMatrix(false)
	c.dbuf = make([]float64, c.cmat.Rows())
	c.bFull = make([]float64, c.aFull.Rows())
	c.bBox = make([]float64, c.aBox.Rows())
	c.z0 = make([]float64, m*cfg.ControlHorizon)
	c.fastX = make([]float64, m*cfg.ControlHorizon)

	// Tikhonov fallback: min ‖C·z − d‖² + λ‖z‖² as the augmented stack
	// [C; √λ·I] with zero targets on the new rows. λ is sized from C so the
	// fallback Hessian is well conditioned even when CᵀC is numerically
	// singular; a factorization failure here (pathological weights) just
	// removes the rung — the ladder then degrades from a failed nominal
	// solve directly to holding rates.
	nz := m * cfg.ControlHorizon
	sqrtLam := tikhonovWeightFrac * math.Max(1, c.cmat.MaxAbs())
	creg := mat.New(c.cmat.Rows()+nz, nz)
	for i := 0; i < c.cmat.Rows(); i++ {
		for j := 0; j < nz; j++ {
			creg.Set(i, j, c.cmat.At(i, j))
		}
	}
	for j := 0; j < nz; j++ {
		creg.Set(c.cmat.Rows()+j, j, sqrtLam)
	}
	if reg, err := qp.NewLSI(creg, cfg.Solver); err == nil {
		c.lsiReg = reg
		c.dregBuf = make([]float64, creg.Rows())
	}
	return c, nil
}

// SetPoints returns a copy of the current utilization set points.
func (c *Controller) SetPoints() []float64 { return mat.VecClone(c.setPoints) }

// AppendSetPoints appends the current utilization set points to dst and
// returns the extended slice, which aliases dst's backing array when its
// capacity suffices — the zero-allocation variant of SetPoints for hot
// paths that reuse one buffer across control steps.
//
//eucon:noalloc
func (c *Controller) AppendSetPoints(dst []float64) []float64 {
	return append(dst, c.setPoints...) //eucon:alloc-ok grows only when the caller under-provisions capacity
}

// UpdateSetPoints changes the utilization set points online (paper §3.3,
// overload protection: set points can be lowered in anticipation of load).
//
// The explicit law bakes the set points into its affine offsets, so
// changing them detaches any attached law; the controller reverts to the
// iterative solver until CompileExplicit or AttachExplicit is called
// again.
func (c *Controller) UpdateSetPoints(b []float64) error {
	if len(b) != c.n {
		return fmt.Errorf("mpc: set points have length %d, want %d", len(b), c.n)
	}
	if c.law != nil {
		for i := range b {
			if b[i] != c.setPoints[i] { //eucon:float-exact the law is valid exactly when the baked-in set points are bit-identical to the new ones
				c.law = nil
				c.lastExplicit = SolveOK
				break
			}
		}
	}
	copy(c.setPoints, b)
	return nil
}

// Reset clears the controller's memory of the previous control move and
// the solver's warm-start state.
func (c *Controller) Reset() {
	for i := range c.prevDelta {
		c.prevDelta[i] = 0
	}
	for i := range c.lastRates {
		c.lastRates[i] = 0
	}
	c.haveLast = false
	c.windupSyncs = 0
	c.lsi.ResetWarmStart()
	if c.lsiReg != nil {
		c.lsiReg.ResetWarmStart()
	}
	c.prevRelaxed = false
	c.bestIterates = 0
	c.regularized = 0
	c.heldSteps = 0
	c.lastOutcome = SolveOK
	c.explicitHits = 0
	c.explicitMisses = 0
	c.lastExplicit = SolveOK
	if c.law != nil {
		c.lastRegion = c.law.InteriorIndex()
	}
}

// ContainmentCounts reports how many Steps since construction or Reset
// were resolved by each below-nominal rung of the degradation ladder.
func (c *Controller) ContainmentCounts() (bestIterate, regularized, held int) {
	return c.bestIterates, c.regularized, c.heldSteps
}

// LastOutcome reports the degradation-ladder rung of the most recent Step.
func (c *Controller) LastOutcome() SolveOutcome { return c.lastOutcome }

// AntiWindupSyncs reports how many per-task move-memory entries had to be
// reconciled because the achieved rate move diverged from the commanded
// one (actuator faults, external clamping).
func (c *Controller) AntiWindupSyncs() int { return c.windupSyncs }

// ExplicitCounts reports how many Steps since construction or Reset were
// resolved by the explicit fast path (hits) versus fell back to the
// iterative solver while a law was attached (misses). Both are zero when
// no law has ever been attached.
func (c *Controller) ExplicitCounts() (hits, misses int) {
	return c.explicitHits, c.explicitMisses
}

// LastExplicitOutcome reports the explicit-law disposition of the most
// recent Step: SolveExplicit (hit), SolveExplicitMiss (fell back), or
// SolveOK when no law is attached.
func (c *Controller) LastExplicitOutcome() SolveOutcome { return c.lastExplicit }

// ExplicitLaw returns the attached explicit law, or nil when the
// controller runs the iterative solver only.
func (c *Controller) ExplicitLaw() *empc.Law { return c.law }

// Step computes the control input for the next sampling period from the
// measured utilizations u(k) and the currently applied rates r(k−1).
//
// Step contains every numerical failure of the underlying QP solve through
// a staged degradation ladder (see SolveOutcome) and never lets one escape:
// the returned error is non-nil only for caller bugs (wrong vector
// lengths), and NewRates is always finite and inside the rate box. A
// non-finite measurement vector short-circuits to the hold rung — steering
// the plant on NaN would poison the move memory.
func (c *Controller) Step(u, rates []float64) (*StepResult, error) {
	if err := c.pre(u, rates); err != nil {
		return nil, err
	}
	return c.stepSolve(u, rates), nil
}

// pre validates the input vectors and runs the anti-windup resync shared
// by Step and StepTo. It must run exactly once per sampling period, before
// any solve path reads c.prevDelta.
//
// Anti-windup: reconcile the move memory with the move the plant actually
// achieved, rates(k−1) → rates(k). When actuation is healthy the achieved
// move is bit-identical to the commanded Δr(k−1) (both are the same
// subtraction of the same floats), so this is a no-op; when an actuator
// fault dropped, delayed, or clamped the command, the control penalty
// would otherwise keep referencing a move that never happened and the
// internal model would drift while the actuator is stuck.
//
//eucon:noalloc
func (c *Controller) pre(u, rates []float64) error {
	if len(u) != c.n {
		return fmt.Errorf("mpc: utilization vector has length %d, want %d", len(u), c.n) //eucon:alloc-ok error path only; the hot path never formats
	}
	if len(rates) != c.m {
		return fmt.Errorf("mpc: rate vector has length %d, want %d", len(rates), c.m) //eucon:alloc-ok error path only; the hot path never formats
	}
	if c.haveLast {
		for i := 0; i < c.m; i++ {
			achieved := rates[i] - c.lastRates[i]
			if achieved != c.prevDelta[i] { //eucon:float-exact healthy actuation reproduces the exact commanded bits; any difference is a real divergence
				c.windupSyncs++
			}
			c.prevDelta[i] = achieved
		}
	}
	copy(c.lastRates, rates)
	c.haveLast = true
	return nil
}

// stepSolve is everything in Step after validation and anti-windup: the
// explicit fast path, the iterative solve, and the degradation ladder. It
// never fails — every numerical outcome maps to a ladder rung.
func (c *Controller) stepSolve(u, rates []float64) *StepResult {
	for _, v := range u {
		if !finite(v) {
			// A NaN/Inf measurement reached the solver layer (the EUCON
			// controller's hold-last policy normally substitutes upstream):
			// no trustworthy solve is possible, so hold the applied rates.
			return c.holdStep(u, rates)
		}
	}
	c.fillLeastSquaresRHS(u, c.dbuf)
	c.fillConstraintRHS(u, rates, true, c.bFull)

	// Explicit fast path: when an offline-compiled law is attached and the
	// query lands in its bit-exact region, the move is resolved without the
	// iterative active-set solve. A miss falls through to the iterative
	// path below, which reuses the right-hand sides already filled above.
	if c.law != nil {
		if res, ok := c.stepExplicit(u, rates); ok {
			return res
		}
		c.explicitMisses++
		c.lastExplicit = SolveExplicitMiss
	}

	// Pick a feasible starting point analytically instead of relying on the
	// solver's generic (and expensive) phase-1. Δr = 0 is feasible unless a
	// processor is over its set point; in that case "all rates to R_min" is
	// the most aggressive recovery available — F is non-negative, so if even
	// that violates the output constraints, the constraint set is infeasible
	// and the hard utilization constraints must be relaxed for this period.
	relaxed := false
	a, b := c.aFull, c.bFull
	z0 := c.z0
	for j := range z0 {
		z0[j] = 0
	}
	if maxViolation(a, b, z0) > 1e-9 {
		for j := 0; j < c.m; j++ {
			z0[j] = c.rmin[j] - rates[j]
		}
		if maxViolation(a, b, z0) > 1e-9 && !c.cfg.DisableOutputConstraints {
			relaxed = true
			a, b = c.aBox, c.bBox
			c.fillConstraintRHS(u, rates, false, b)
			for j := range z0 {
				z0[j] = 0
			}
		}
	}
	// The warm-start set indexes constraint rows, so it is only meaningful
	// while the constraint variant is unchanged.
	if relaxed != c.prevRelaxed {
		c.lsi.ResetWarmStart()
	}
	res, err := c.lsi.Solve(c.dbuf, a, b, z0)
	if err != nil && errors.Is(err, qp.ErrInfeasible) && !relaxed && !c.cfg.DisableOutputConstraints {
		// Belt and braces: fall back to the always-feasible rate box.
		relaxed = true
		a, b = c.aBox, c.bBox
		c.fillConstraintRHS(u, rates, false, b)
		for j := range z0 {
			z0[j] = 0
		}
		c.lsi.ResetWarmStart()
		res, err = c.lsi.Solve(c.dbuf, a, b, z0)
	}
	c.prevRelaxed = relaxed
	outcome := SolveOK
	if relaxed {
		outcome = SolveRelaxed
	}
	if err != nil {
		// Degradation ladder, rung by rung. Rung 1: an iteration-capped
		// solve still carries its best iterate, which is feasible by
		// construction (the active-set method never leaves the feasible
		// region); accept it when it is finite and nearly stationary.
		accepted := false
		if errors.Is(err, qp.ErrMaxIterations) && res != nil &&
			res.Stationarity <= bestIterateResidualBound && finiteVec(res.X) {
			outcome = SolveBestIterate
			c.bestIterates++
			accepted = true
		}
		// Rung 2: Tikhonov-regularized re-solve against the always-feasible
		// rate box, biasing the move toward Δr = 0.
		if !accepted && c.lsiReg != nil {
			copy(c.dregBuf, c.dbuf)
			for i := len(c.dbuf); i < len(c.dregBuf); i++ {
				c.dregBuf[i] = 0
			}
			c.fillConstraintRHS(u, rates, false, c.bBox)
			for j := range z0 {
				z0[j] = 0
			}
			regRes, regErr := c.lsiReg.Solve(c.dregBuf, c.aBox, c.bBox, z0)
			usable := regRes != nil && finiteVec(regRes.X) &&
				(regErr == nil || (errors.Is(regErr, qp.ErrMaxIterations) && regRes.Stationarity <= bestIterateResidualBound))
			if usable {
				res = regRes
				outcome = SolveRegularized
				c.regularized++
				accepted = true
				// The nominal solver's remembered active set describes a
				// solve that failed; start the next period clean.
				c.lsi.ResetWarmStart()
				c.prevRelaxed = false
			}
		}
		// Rung 3: hold the applied rates.
		if !accepted {
			return c.holdStep(u, rates)
		}
	}

	delta := mat.VecClone(res.X[:c.m])
	if !finiteVec(delta) {
		// Belt and braces: a converged solve can still carry non-finite
		// values if the inputs were poisoned. Holding is the only safe move.
		return c.holdStep(u, rates)
	}
	newRates := make([]float64, c.m)
	for i := range newRates {
		nr := rates[i] + delta[i]
		// Guard against solver tolerance drift outside the box.
		nr = math.Max(c.rmin[i], math.Min(c.rmax[i], nr))
		newRates[i] = nr
		delta[i] = nr - rates[i]
	}
	copy(c.prevDelta, delta)
	c.lastOutcome = outcome
	return &StepResult{
		DeltaR:                   delta,
		NewRates:                 newRates,
		PredictedUtil:            mat.VecAdd(u, c.f.MulVec(delta)),
		OutputConstraintsRelaxed: relaxed || outcome == SolveRegularized,
		SolverIterations:         res.Iterations,
		Outcome:                  outcome,
	}
}

// NewStepResult allocates a StepResult whose slices are sized for this
// controller, for use as the reusable destination of StepTo.
func (c *Controller) NewStepResult() *StepResult {
	return &StepResult{
		DeltaR:        make([]float64, c.m),
		NewRates:      make([]float64, c.m),
		PredictedUtil: make([]float64, c.n),
	}
}

// StepTo is Step writing into a caller-owned, reusable StepResult
// (allocate it once with NewStepResult). In the steady state — strictly
// feasible measurements, no rate bound or output constraint active, no
// explicit law attached — the move resolves through the zero-allocation
// interior fast path, which reproduces Step's arithmetic bit for bit (the
// qp.LSI.SolveInteriorTo guards are exactly the conditions under which the
// iterative solve completes in one unblocked Newton step from Δr = 0).
// Off the fast path, StepTo delegates to the full solve-plus-ladder and
// copies the result, so outputs are always identical to Step's; only the
// allocation profile differs. out's slices are overwritten, never retained.
//
//eucon:noalloc
func (c *Controller) StepTo(out *StepResult, u, rates []float64) error {
	if err := c.pre(u, rates); err != nil {
		return err
	}
	if c.stepInteriorTo(out, u, rates) {
		return nil
	}
	res := c.stepSolve(u, rates) //eucon:alloc-ok off the steady-state fast path the full degradation ladder allocates its result
	copyStepResultInto(out, res)
	return nil
}

// stepInteriorTo attempts the interior fast path for StepTo. It reports
// false (receiver untouched beyond scratch, right-hand sides refilled by
// the caller's fallback) whenever any Step behavior other than the plain
// unconstrained-interior solve could apply: non-finite measurements, an
// attached explicit law (its hit/miss bookkeeping belongs to stepSolve),
// or an undersized destination.
//
//eucon:noalloc
func (c *Controller) stepInteriorTo(out *StepResult, u, rates []float64) bool {
	if c.law != nil {
		return false
	}
	if cap(out.DeltaR) < c.m || cap(out.NewRates) < c.m || cap(out.PredictedUtil) < c.n {
		return false
	}
	for _, v := range u {
		if !finite(v) {
			return false
		}
	}
	c.fillLeastSquaresRHS(u, c.dbuf)
	c.fillConstraintRHS(u, rates, true, c.bFull)
	iters, ok := c.lsi.SolveInteriorTo(c.fastX, c.dbuf, c.aFull, c.bFull)
	if !ok {
		return false
	}
	delta := out.DeltaR[:c.m]
	newRates := out.NewRates[:c.m]
	pred := out.PredictedUtil[:c.n]
	copy(delta, c.fastX[:c.m])
	if !finiteVec(delta) {
		return false
	}
	for i := range newRates {
		nr := rates[i] + delta[i]
		// Guard against solver tolerance drift outside the box.
		nr = math.Max(c.rmin[i], math.Min(c.rmax[i], nr))
		newRates[i] = nr
		delta[i] = nr - rates[i]
	}
	copy(c.prevDelta, delta)
	c.f.MulVecTo(pred, delta)
	for i := range pred {
		pred[i] = u[i] + pred[i]
	}
	// State the full path would leave behind: a non-relaxed converged solve
	// with an empty active set (SolveInteriorTo already cleared the
	// warm-start set, matching Solve's empty Result.Active).
	c.prevRelaxed = false
	c.lastOutcome = SolveOK
	out.DeltaR = delta
	out.NewRates = newRates
	out.PredictedUtil = pred
	out.OutputConstraintsRelaxed = false
	out.SolverIterations = iters
	out.Outcome = SolveOK
	return true
}

// copyStepResultInto copies res into out, reusing out's slice capacity.
func copyStepResultInto(out, res *StepResult) {
	out.DeltaR = append(out.DeltaR[:0], res.DeltaR...)
	out.NewRates = append(out.NewRates[:0], res.NewRates...)
	out.PredictedUtil = append(out.PredictedUtil[:0], res.PredictedUtil...)
	out.OutputConstraintsRelaxed = res.OutputConstraintsRelaxed
	out.SolverIterations = res.SolverIterations
	out.Outcome = res.Outcome
}

// holdStep is the bottom rung of the degradation ladder: command Δr = 0,
// keeping the last-applied rates (clipped to the box so even an
// out-of-range caller vector cannot escape). The zeroed move memory is
// reconciled against the achieved move by the anti-windup resync at the
// next Step, exactly as for an actuator fault, so holding accumulates no
// windup.
func (c *Controller) holdStep(u, rates []float64) *StepResult {
	c.heldSteps++
	c.lastOutcome = SolveHeld
	delta := make([]float64, c.m)
	newRates := make([]float64, c.m)
	for i := range newRates {
		nr := rates[i]
		if !finite(nr) {
			// Never emit non-finite rates, whatever the caller handed us:
			// fall back to the most conservative end of the box.
			nr = c.rmin[i]
		}
		nr = math.Max(c.rmin[i], math.Min(c.rmax[i], nr))
		newRates[i] = nr
		delta[i] = 0
	}
	for i := range c.prevDelta {
		c.prevDelta[i] = 0
	}
	// The remembered active set belongs to a solve that never completed;
	// clear it so the next period starts from a clean working set.
	c.lsi.ResetWarmStart()
	c.prevRelaxed = false
	return &StepResult{
		DeltaR:                   delta,
		NewRates:                 newRates,
		PredictedUtil:            mat.VecAdd(u, c.f.MulVec(delta)),
		OutputConstraintsRelaxed: false,
		SolverIterations:         0,
		Outcome:                  SolveHeld,
	}
}

// stepExplicit attempts the explicit-law fast path: locate the critical
// region of θ = (u, r(k−1), Δr(k−1)) with a last-region warm start, then
// resolve the move through the bit-exact interior solve. It requires
// c.dbuf and c.bFull to hold the current right-hand sides (Step fills
// them before both paths). ok reports a hit; on a miss the caller falls
// through to the iterative solver on the same buffers.
//
// Only the interior (empty-active-set) region is evaluated here: for it,
// qp.LSI.SolveInteriorTo reproduces the iterative solver's arithmetic
// bit-for-bit, so simulation digests are unchanged. Constrained regions
// carry tolerance-accurate stored gains (Law.EvaluateInto) — sufficient
// for analysis but not for digest fidelity — so they report a miss and
// delegate to the ladder (DESIGN.md §10).
//
// The returned StepResult and its slices are owned by the controller and
// reused by the next explicit hit; callers must copy what they keep (the
// simulator already does).
//
//eucon:noalloc
func (c *Controller) stepExplicit(u, rates []float64) (*StepResult, bool) {
	th := c.theta
	copy(th[:c.n], u)
	copy(th[c.n:c.n+c.m], rates)
	copy(th[c.n+c.m:], c.prevDelta)
	interior := c.law.InteriorIndex()
	if c.lastRegion != interior {
		// Geometric point location, warm-started from the previous region.
		// When the hint already is the interior region the halfspace scan is
		// skipped entirely: SolveInteriorTo's feasibility guards are the
		// exact membership test and strictly subsume the stored halfspaces.
		idx := c.law.Locate(th, c.lastRegion)
		if idx >= 0 {
			c.lastRegion = idx
		}
		if idx != interior {
			return nil, false
		}
	}
	iters, ok := c.lsi.SolveInteriorTo(c.expX, c.dbuf, c.aFull, c.bFull)
	if !ok {
		// The exact guards disagreed with the geometric hint (boundary
		// numerics): refresh the hint truthfully, then fall back.
		c.lastRegion = c.law.Locate(th, c.lastRegion)
		return nil, false
	}
	res := &c.expRes
	delta, newRates, pred := res.DeltaR, res.NewRates, res.PredictedUtil
	copy(delta, c.expX[:c.m])
	if !finiteVec(delta) {
		return nil, false
	}
	for i := range newRates {
		nr := rates[i] + delta[i]
		nr = math.Max(c.rmin[i], math.Min(c.rmax[i], nr))
		newRates[i] = nr
		delta[i] = nr - rates[i]
	}
	copy(c.prevDelta, delta)
	c.f.MulVecTo(pred, delta)
	for i := range pred {
		pred[i] = u[i] + pred[i]
	}
	c.prevRelaxed = false
	c.lastRegion = interior
	c.lastOutcome = SolveExplicit
	c.lastExplicit = SolveExplicit
	c.explicitHits++
	res.OutputConstraintsRelaxed = false
	res.SolverIterations = iters
	res.Outcome = SolveExplicit
	return res, true
}

// explicitUtilMax bounds the utilization coordinates of the explicit
// parameter domain. Monitors report busy fractions in [0, 1]; headroom to
// 2 keeps transient overshoot and fault-injected overload on the map.
const explicitUtilMax = 2.0

// BuildExplicitProblem describes the controller's per-period QP as a
// parametric program over θ = (u, r(k−1), Δr(k−1)) for the offline
// explicit-MPC compiler. The affine maps d(θ) = D·θ + D0 and
// b(θ) = S·θ + S0 mirror fillLeastSquaresRHS and fillConstraintRHS row
// for row; the domain box spans [0, explicitUtilMax] per utilization, the
// actuator box per rate, and the widest admissible move per Δr(k−1).
//
// The current set points are baked into D0 and S0: a law compiled from
// this problem is invalidated by UpdateSetPoints.
func (c *Controller) BuildExplicitProblem() *empc.Problem {
	p, mh := c.cfg.PredictionHorizon, c.cfg.ControlHorizon
	nTheta := c.n + 2*c.m
	ell := c.cmat.Rows()
	dm := mat.New(ell, nTheta)
	d0 := make([]float64, ell)
	// Tracking rows: d = √q_r·λ_i·(B_r − u_r).
	for i := 1; i <= p; i++ {
		rowBase := (i - 1) * c.n
		for r := 0; r < c.n; r++ {
			dm.Set(rowBase+r, r, -c.sqrtQ[r]*c.lam[i])
			d0[rowBase+r] = c.sqrtQ[r] * c.lam[i] * c.setPoints[r]
		}
	}
	// First control-penalty block: d = √R_j·Δr_j(k−1); later blocks zero.
	base := c.n * p
	for j := 0; j < c.m; j++ {
		dm.Set(base+j, c.n+c.m+j, c.sqrtR[j])
	}
	mc := c.aFull.Rows()
	sm := mat.New(mc, nTheta)
	s0 := make([]float64, mc)
	// Rate box rows: b_up = Rmax_j − r_j, b_lo = r_j − Rmin_j.
	for i := 0; i < mh; i++ {
		for j := 0; j < c.m; j++ {
			up := 2 * (i*c.m + j)
			sm.Set(up, c.n+j, -1)
			s0[up] = c.rmax[j]
			sm.Set(up+1, c.n+j, 1)
			s0[up+1] = -c.rmin[j]
		}
	}
	// Output rows: b = B_r − u_r.
	if !c.cfg.DisableOutputConstraints {
		obase := 2 * c.m * mh
		for i := 1; i <= p; i++ {
			for r := 0; r < c.n; r++ {
				sm.Set(obase+(i-1)*c.n+r, r, -1)
				s0[obase+(i-1)*c.n+r] = c.setPoints[r]
			}
		}
	}
	lo := make([]float64, nTheta)
	hi := make([]float64, nTheta)
	for r := 0; r < c.n; r++ {
		lo[r], hi[r] = 0, explicitUtilMax
	}
	for j := 0; j < c.m; j++ {
		lo[c.n+j], hi[c.n+j] = c.rmin[j], c.rmax[j]
		span := c.rmax[j] - c.rmin[j]
		lo[c.n+c.m+j], hi[c.n+c.m+j] = -span, span
	}
	return &empc.Problem{
		C: c.cmat.Clone(), A: c.aFull.Clone(),
		D: dm, D0: d0, S: sm, S0: s0,
		ThetaLo: lo, ThetaHi: hi,
		GainRows: c.m,
	}
}

// CompileExplicit compiles the controller's parametric program into a
// piecewise-affine law offline and attaches it, returning the compile
// report. The compile fans region exploration across opts.Workers
// goroutines; the resulting law and its digest are identical for every
// worker count.
func (c *Controller) CompileExplicit(opts empc.Options) (*empc.Report, error) {
	law, rep, err := empc.Compile(c.BuildExplicitProblem(), opts)
	if err != nil {
		return nil, fmt.Errorf("mpc: compile explicit law: %w", err)
	}
	if err := c.AttachExplicit(law); err != nil {
		return nil, err
	}
	return rep, nil
}

// AttachExplicit installs an offline-compiled explicit law; nil detaches.
// The law must have been compiled from this controller's
// BuildExplicitProblem (same dimensions and an interior region). The
// fast-path buffers are allocated here so Step performs no allocation on
// explicit hits.
func (c *Controller) AttachExplicit(law *empc.Law) error {
	if law == nil {
		c.law = nil
		c.lastExplicit = SolveOK
		return nil
	}
	if got, want := law.NumTheta(), c.n+2*c.m; got != want {
		return fmt.Errorf("mpc: explicit law parameter dimension %d, want %d", got, want)
	}
	if got := law.GainRows(); got != c.m {
		return fmt.Errorf("mpc: explicit law gain rows %d, want %d", got, c.m)
	}
	if law.InteriorIndex() < 0 {
		return errors.New("mpc: explicit law has no interior region")
	}
	c.law = law
	c.lastRegion = law.InteriorIndex()
	c.lastExplicit = SolveOK
	if c.theta == nil {
		c.theta = make([]float64, c.n+2*c.m)
		c.expX = make([]float64, c.m*c.cfg.ControlHorizon)
		c.expRes = StepResult{
			DeltaR:        make([]float64, c.m),
			NewRates:      make([]float64, c.m),
			PredictedUtil: make([]float64, c.n),
		}
	}
	return nil
}

// finite reports whether v is neither NaN nor infinite.
//
//eucon:noalloc
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// finiteVec reports whether every element of v is finite.
//
//eucon:noalloc
func finiteVec(v []float64) bool {
	for _, x := range v {
		if !finite(x) {
			return false
		}
	}
	return true
}

// maxViolation returns the largest constraint violation of A·z ≤ b at z.
func maxViolation(a *mat.Dense, b, z []float64) float64 {
	var v float64
	for i := 0; i < a.Rows(); i++ {
		if d := mat.Dot(a.RowView(i), z) - b[i]; d > v {
			v = d
		}
	}
	return v
}

// buildLeastSquaresMatrix assembles the constant stack C such that the MPC
// cost (7) equals ‖C·z − d‖² for the stacked move vector
// z = [Δr(k|k); …; Δr(k+M−1|k)]. C depends only on F, the weights, and the
// horizons, so it is built once at construction; the measurement-dependent
// d is refreshed per period by fillLeastSquaresRHS.
func (c *Controller) buildLeastSquaresMatrix() *mat.Dense {
	p, mh := c.cfg.PredictionHorizon, c.cfg.ControlHorizon
	nz := c.m * mh
	rows := c.n*p + c.m*mh
	cm := mat.New(rows, nz)

	// Tracking blocks: √Q·F·S_i·z ≈ √Q·(ref(k+i|k) − u(k)) where S_i sums
	// the first min(i, M) moves.
	for i := 1; i <= p; i++ {
		rowBase := (i - 1) * c.n
		blocks := i
		if blocks > mh {
			blocks = mh
		}
		for r := 0; r < c.n; r++ {
			for blk := 0; blk < blocks; blk++ {
				for j := 0; j < c.m; j++ {
					cm.Set(rowBase+r, blk*c.m+j, c.sqrtQ[r]*c.f.At(r, j))
				}
			}
		}
	}
	// Control-change penalty blocks: √R·(z_i − z_{i−1}), with z_{−1} the
	// previously applied Δr(k−1).
	base := c.n * p
	for i := 0; i < mh; i++ {
		for j := 0; j < c.m; j++ {
			row := base + i*c.m + j
			cm.Set(row, i*c.m+j, c.sqrtR[j])
			if i > 0 {
				cm.Set(row, (i-1)*c.m+j, -c.sqrtR[j])
			}
		}
	}
	return cm
}

// fillLeastSquaresRHS refreshes d for the current measurements: the
// tracking targets ref − u = λ_i·(B − u) and the previous move in the
// control-penalty rows.
//
//eucon:noalloc
func (c *Controller) fillLeastSquaresRHS(u, d []float64) {
	p, mh := c.cfg.PredictionHorizon, c.cfg.ControlHorizon
	for i := 1; i <= p; i++ {
		rowBase := (i - 1) * c.n
		for r := 0; r < c.n; r++ {
			d[rowBase+r] = c.sqrtQ[r] * c.lam[i] * (c.setPoints[r] - u[r])
		}
	}
	base := c.n * p
	for i := 0; i < mh; i++ {
		for j := 0; j < c.m; j++ {
			row := base + i*c.m + j
			if i == 0 {
				d[row] = c.sqrtR[j] * c.prevDelta[j]
			} else {
				d[row] = 0
			}
		}
	}
}

// buildConstraintMatrix assembles the constant A of A·z ≤ b: cumulative
// rate box constraints for every move, plus (when withOutput and not
// disabled) the predicted-utilization constraint rows u(k+i|k) ≤ B for
// i = 1..P. Only b depends on the measurements; fillConstraintRHS
// refreshes it per period.
func (c *Controller) buildConstraintMatrix(withOutput bool) *mat.Dense {
	p, mh := c.cfg.PredictionHorizon, c.cfg.ControlHorizon
	nz := c.m * mh
	rows := 2 * c.m * mh
	outputRows := 0
	if withOutput && !c.cfg.DisableOutputConstraints {
		outputRows = c.n * p
	}
	a := mat.New(rows+outputRows, nz)

	// Rate box: for each horizon step i, r(k−1) + Σ_{j≤i} Δr_j ∈ [Rmin, Rmax].
	for i := 0; i < mh; i++ {
		for j := 0; j < c.m; j++ {
			up := 2 * (i*c.m + j)
			lo := up + 1
			for blk := 0; blk <= i; blk++ {
				a.Set(up, blk*c.m+j, 1)
				a.Set(lo, blk*c.m+j, -1)
			}
		}
	}
	if outputRows > 0 {
		base := rows
		for i := 1; i <= p; i++ {
			blocks := i
			if blocks > mh {
				blocks = mh
			}
			for r := 0; r < c.n; r++ {
				row := base + (i-1)*c.n + r
				for blk := 0; blk < blocks; blk++ {
					for j := 0; j < c.m; j++ {
						a.Set(row, blk*c.m+j, c.f.At(r, j))
					}
				}
			}
		}
	}
	return a
}

// fillConstraintRHS refreshes b for the current measurements and applied
// rates. withOutput must match the matrix the b slice belongs to.
//
//eucon:noalloc
func (c *Controller) fillConstraintRHS(u, rates []float64, withOutput bool, b []float64) {
	p, mh := c.cfg.PredictionHorizon, c.cfg.ControlHorizon
	for i := 0; i < mh; i++ {
		for j := 0; j < c.m; j++ {
			up := 2 * (i*c.m + j)
			b[up] = c.rmax[j] - rates[j]
			b[up+1] = rates[j] - c.rmin[j]
		}
	}
	if withOutput && !c.cfg.DisableOutputConstraints {
		base := 2 * c.m * mh
		for i := 1; i <= p; i++ {
			for r := 0; r < c.n; r++ {
				b[base+(i-1)*c.n+r] = c.setPoints[r] - u[r]
			}
		}
	}
}

// Gains returns the unconstrained feedback gain matrices (K_e, K_d) of the
// controller: when no constraint is active, the applied move is
//
//	Δr(k) = K_e·(B − u(k)) + K_d·Δr(k−1).
//
// These matrices drive the closed-loop stability analysis of paper §6.2.
func (c *Controller) Gains() (ke, kd *mat.Dense, err error) {
	ke = mat.New(c.m, c.n)
	kd = mat.New(c.m, c.m)
	if err := c.GainsTo(ke, kd); err != nil {
		return nil, nil, err
	}
	return ke, kd, nil
}

// GainsTo computes the unconstrained feedback gain matrices into the
// caller-provided ke (m×n) and kd (m×m): the allocation-free variant of
// Gains for callers that evaluate the gains repeatedly (stability
// bisection sweeps). The QR factorization of the least-squares stack is
// constant after construction, so the first call computes and caches it;
// subsequent calls only write the caller's matrices. Results are
// bit-identical to Gains.
func (c *Controller) GainsTo(ke, kd *mat.Dense) error {
	if r, cc := ke.Dims(); r != c.m || cc != c.n {
		return fmt.Errorf("mpc: ke is %dx%d, want %dx%d", r, cc, c.m, c.n)
	}
	if r, cc := kd.Dims(); r != c.m || cc != c.m {
		return fmt.Errorf("mpc: kd is %dx%d, want %dx%d", r, cc, c.m, c.m)
	}
	// The least-squares stack is C·z = d with d linear in e = B − u(k) and
	// in Δr(k−1). Solve for each basis vector of e and of Δr(k−1).
	if c.gainFac == nil {
		fac, err := mat.FactorQR(c.cmat)
		if err != nil {
			return fmt.Errorf("mpc: factor gain system: %w", err)
		}
		c.gainFac = fac
		c.gainD = make([]float64, c.cmat.Rows())
		c.gainY = make([]float64, c.cmat.Rows())
		c.gainZ = make([]float64, c.cmat.Cols())
	}
	p := c.cfg.PredictionHorizon
	d, z := c.gainD, c.gainZ
	// Basis responses for e.
	for col := 0; col < c.n; col++ {
		for i := range d {
			d[i] = 0
		}
		for i := 1; i <= p; i++ {
			d[(i-1)*c.n+col] = c.sqrtQ[col] * c.lam[i]
		}
		if err := c.gainFac.SolveLeastSquaresTo(z, c.gainY, d); err != nil {
			return fmt.Errorf("mpc: gain solve (e basis %d): %w", col, err)
		}
		for r := 0; r < c.m; r++ {
			ke.Set(r, col, z[r])
		}
	}
	// Basis responses for Δr(k−1).
	base := c.n * p
	for col := 0; col < c.m; col++ {
		for i := range d {
			d[i] = 0
		}
		d[base+col] = c.sqrtR[col]
		if err := c.gainFac.SolveLeastSquaresTo(z, c.gainY, d); err != nil {
			return fmt.Errorf("mpc: gain solve (Δr basis %d): %w", col, err)
		}
		for r := 0; r < c.m; r++ {
			kd.Set(r, col, z[r])
		}
	}
	return nil
}

// Structured reports whether the nominal solver's cached Hessian
// factorization uses the banded (structure-exploiting) backend, and its
// half bandwidth (0 when dense). Small or unstructured problems report
// false; the LARGE workloads' block-banded allocation matrices report
// true.
func (c *Controller) Structured() (banded bool, bandwidth int) { return c.lsi.Structured() }
