package mpc

import (
	"math"
	"testing"

	"github.com/rtsyslab/eucon/internal/mat"
)

// simpleF is the allocation matrix of the paper's SIMPLE workload
// (Table 1): F = [[35, 35, 0], [0, 35, 45]].
func simpleF() *mat.Dense {
	return mat.MustFromRows([][]float64{{35, 35, 0}, {0, 35, 45}})
}

func simpleController(t *testing.T, cfg Config) *Controller {
	t.Helper()
	b := []float64{0.828, 0.828}
	rmin := []float64{1.0 / 700, 1.0 / 700, 1.0 / 900}
	rmax := []float64{1.0 / 35, 1.0 / 35, 1.0 / 45}
	c, err := New(simpleF(), b, rmin, rmax, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func defaultSimpleConfig() Config {
	return Config{PredictionHorizon: 2, ControlHorizon: 1, TrefOverTs: 4}
}

func TestNewValidation(t *testing.T) {
	f := simpleF()
	b := []float64{0.8, 0.8}
	rmin := []float64{0.001, 0.001, 0.001}
	rmax := []float64{0.03, 0.03, 0.03}
	good := defaultSimpleConfig()

	tests := []struct {
		name string
		run  func() error
	}{
		{"empty F", func() error { _, err := New(mat.New(0, 0), nil, nil, nil, good); return err }},
		{"bad set points", func() error { _, err := New(f, []float64{0.8}, rmin, rmax, good); return err }},
		{"bad rmin len", func() error { _, err := New(f, b, []float64{1}, rmax, good); return err }},
		{"inverted bounds", func() error {
			_, err := New(f, b, []float64{0.05, 0.001, 0.001}, rmax, good)
			return err
		}},
		{"P < 1", func() error {
			cfg := good
			cfg.PredictionHorizon = 0
			_, err := New(f, b, rmin, rmax, cfg)
			return err
		}},
		{"M > P", func() error {
			cfg := good
			cfg.ControlHorizon = 5
			_, err := New(f, b, rmin, rmax, cfg)
			return err
		}},
		{"Tref <= 0", func() error {
			cfg := good
			cfg.TrefOverTs = 0
			_, err := New(f, b, rmin, rmax, cfg)
			return err
		}},
		{"bad Q len", func() error {
			cfg := good
			cfg.QWeights = []float64{1}
			_, err := New(f, b, rmin, rmax, cfg)
			return err
		}},
		{"negative Q", func() error {
			cfg := good
			cfg.QWeights = []float64{1, -1}
			_, err := New(f, b, rmin, rmax, cfg)
			return err
		}},
		{"bad R len", func() error {
			cfg := good
			cfg.RWeights = []float64{1}
			_, err := New(f, b, rmin, rmax, cfg)
			return err
		}},
		{"negative R", func() error {
			cfg := good
			cfg.RWeights = []float64{1, 1, -2}
			_, err := New(f, b, rmin, rmax, cfg)
			return err
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.run() == nil {
				t.Fatal("want error, got nil")
			}
		})
	}
}

func TestStepDimensionErrors(t *testing.T) {
	c := simpleController(t, defaultSimpleConfig())
	if _, err := c.Step([]float64{0.5}, []float64{0.01, 0.01, 0.01}); err == nil {
		t.Error("short utilization vector accepted")
	}
	if _, err := c.Step([]float64{0.5, 0.5}, []float64{0.01}); err == nil {
		t.Error("short rate vector accepted")
	}
}

// stepPlant advances the "real" plant u(k+1) = u(k) + G·F·Δr(k).
func stepPlant(u []float64, f *mat.Dense, g []float64, delta []float64) []float64 {
	du := f.MulVec(delta)
	out := mat.VecClone(u)
	for i := range out {
		out[i] += g[i] * du[i]
	}
	return out
}

func runClosedLoop(t *testing.T, c *Controller, f *mat.Dense, g []float64, u0, r0 []float64, steps int) (u, rates []float64) {
	t.Helper()
	u = mat.VecClone(u0)
	rates = mat.VecClone(r0)
	for k := 0; k < steps; k++ {
		res, err := c.Step(u, rates)
		if err != nil {
			t.Fatalf("step %d: %v", k, err)
		}
		rates = res.NewRates
		u = stepPlant(u, f, g, res.DeltaR)
	}
	return u, rates
}

func TestConvergesToSetPointNominalGain(t *testing.T) {
	c := simpleController(t, defaultSimpleConfig())
	f := simpleF()
	u0 := f.MulVec([]float64{1.0 / 60, 1.0 / 90, 1.0 / 100}) // initial rates from Table 1
	u, rates := runClosedLoop(t, c, f, []float64{1, 1}, u0, []float64{1.0 / 60, 1.0 / 90, 1.0 / 100}, 60)
	for i, v := range u {
		if math.Abs(v-0.828) > 0.01 {
			t.Errorf("u[%d] = %v after 60 steps, want ≈ 0.828", i, v)
		}
	}
	rmin := []float64{1.0 / 700, 1.0 / 700, 1.0 / 900}
	rmax := []float64{1.0 / 35, 1.0 / 35, 1.0 / 45}
	for i, r := range rates {
		if r < rmin[i]-1e-12 || r > rmax[i]+1e-12 {
			t.Errorf("rate[%d] = %v outside [%v, %v]", i, r, rmin[i], rmax[i])
		}
	}
}

func TestConvergesWithUnderestimatedGain(t *testing.T) {
	// Actual execution times half the estimate (etf = 0.5, Figure 3a).
	c := simpleController(t, defaultSimpleConfig())
	f := simpleF()
	g := []float64{0.5, 0.5}
	u0 := mat.VecScale(0.5, f.MulVec([]float64{1.0 / 60, 1.0 / 90, 1.0 / 100}))
	u, _ := runClosedLoop(t, c, f, g, u0, []float64{1.0 / 60, 1.0 / 90, 1.0 / 100}, 100)
	for i, v := range u {
		if math.Abs(v-0.828) > 0.01 {
			t.Errorf("u[%d] = %v, want ≈ 0.828 (etf = 0.5)", i, v)
		}
	}
}

func TestConvergesWithOverestimatedGain(t *testing.T) {
	// Actual execution times twice the estimate (etf = 2, inside the
	// stability region g < 5.95).
	c := simpleController(t, defaultSimpleConfig())
	f := simpleF()
	g := []float64{2, 2}
	r0 := []float64{1.0 / 300, 1.0 / 300, 1.0 / 400}
	u0 := mat.VecScale(2, f.MulVec(r0))
	u, _ := runClosedLoop(t, c, f, g, u0, r0, 150)
	for i, v := range u {
		if math.Abs(v-0.828) > 0.02 {
			t.Errorf("u[%d] = %v, want ≈ 0.828 (etf = 2)", i, v)
		}
	}
}

func TestUtilizationNeverExceedsSetPointOnModel(t *testing.T) {
	// With nominal gain the output constraint u(k+i|k) ≤ B must hold on the
	// plant trajectory itself.
	c := simpleController(t, defaultSimpleConfig())
	f := simpleF()
	u := f.MulVec([]float64{1.0 / 60, 1.0 / 90, 1.0 / 100})
	rates := []float64{1.0 / 60, 1.0 / 90, 1.0 / 100}
	for k := 0; k < 80; k++ {
		res, err := c.Step(u, rates)
		if err != nil {
			t.Fatalf("step %d: %v", k, err)
		}
		rates = res.NewRates
		u = stepPlant(u, f, []float64{1, 1}, res.DeltaR)
		for i, v := range u {
			if v > 0.828+1e-6 {
				t.Fatalf("step %d: u[%d] = %v exceeds set point", k, i, v)
			}
		}
	}
}

func TestRatesSaturateWhenSetPointUnreachable(t *testing.T) {
	// Set points of 5.0 cannot be reached even at R_max: rates must pin to
	// R_max without error.
	b := []float64{5, 5}
	rmin := []float64{1.0 / 700, 1.0 / 700, 1.0 / 900}
	rmax := []float64{1.0 / 35, 1.0 / 35, 1.0 / 45}
	c, err := New(simpleF(), b, rmin, rmax, defaultSimpleConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := simpleF()
	r0 := []float64{1.0 / 60, 1.0 / 90, 1.0 / 100}
	_, rates := runClosedLoop(t, c, f, []float64{1, 1}, f.MulVec(r0), r0, 120)
	for i, r := range rates {
		if math.Abs(r-rmax[i]) > 1e-9 {
			t.Errorf("rate[%d] = %v, want pinned at R_max = %v", i, r, rmax[i])
		}
	}
}

func TestOverloadRelaxesOutputConstraints(t *testing.T) {
	// Overloaded start: u far above B while rates are already at R_min makes
	// the output constraints infeasible; the controller must fall back
	// rather than fail, and must not push rates further down than R_min.
	c := simpleController(t, defaultSimpleConfig())
	rmin := []float64{1.0 / 700, 1.0 / 700, 1.0 / 900}
	res, err := c.Step([]float64{1.0, 1.0}, rmin)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutputConstraintsRelaxed {
		t.Error("OutputConstraintsRelaxed = false, want true under infeasible overload")
	}
	for i, r := range res.NewRates {
		if r < rmin[i]-1e-12 {
			t.Errorf("NewRates[%d] = %v below R_min", i, r)
		}
	}
}

func TestOverloadRecovery(t *testing.T) {
	// Start overloaded with room to decrease rates: the controller should
	// drive utilization back down to the set point.
	c := simpleController(t, defaultSimpleConfig())
	f := simpleF()
	r0 := []float64{1.0 / 40, 1.0 / 40, 1.0 / 50}
	g := []float64{1.5, 1.5}
	u0 := mat.VecScale(1.5, f.MulVec(r0)) // well above 0.828
	u, _ := runClosedLoop(t, c, f, g, u0, r0, 100)
	for i, v := range u {
		if math.Abs(v-0.828) > 0.02 {
			t.Errorf("u[%d] = %v, want ≈ 0.828 after overload recovery", i, v)
		}
	}
}

func TestGainsMatchUnconstrainedStep(t *testing.T) {
	// In the interior of the feasible region, Step must equal the linear
	// feedback law Δr = K_e·(B − u) + K_d·Δr(k−1).
	c := simpleController(t, defaultSimpleConfig())
	ke, kd, err := c.Gains()
	if err != nil {
		t.Fatal(err)
	}
	u := []float64{0.70, 0.75}
	rates := []float64{1.0 / 100, 1.0 / 100, 1.0 / 100}
	res, err := c.Step(u, rates)
	if err != nil {
		t.Fatal(err)
	}
	want := ke.MulVec(mat.VecSub([]float64{0.828, 0.828}, u)) // prevDelta = 0
	_ = kd
	if !mat.VecEqual(res.DeltaR, want, 1e-5) {
		t.Fatalf("Step Δr = %v, gains predict %v", res.DeltaR, want)
	}
}

func TestGainsIncludePreviousMove(t *testing.T) {
	c := simpleController(t, defaultSimpleConfig())
	ke, kd, err := c.Gains()
	if err != nil {
		t.Fatal(err)
	}
	u := []float64{0.70, 0.75}
	rates := []float64{1.0 / 100, 1.0 / 100, 1.0 / 100}
	res1, err := c.Step(u, rates)
	if err != nil {
		t.Fatal(err)
	}
	u2 := []float64{0.72, 0.76}
	res2, err := c.Step(u2, res1.NewRates)
	if err != nil {
		t.Fatal(err)
	}
	want := mat.VecAdd(
		ke.MulVec(mat.VecSub([]float64{0.828, 0.828}, u2)),
		kd.MulVec(res1.DeltaR),
	)
	if !mat.VecEqual(res2.DeltaR, want, 1e-5) {
		t.Fatalf("second Step Δr = %v, gains predict %v", res2.DeltaR, want)
	}
}

func TestResetClearsPreviousMove(t *testing.T) {
	c := simpleController(t, defaultSimpleConfig())
	u := []float64{0.7, 0.7}
	rates := []float64{1.0 / 100, 1.0 / 100, 1.0 / 100}
	res1, err := c.Step(u, rates)
	if err != nil {
		t.Fatal(err)
	}
	c.Reset()
	res2, err := c.Step(u, rates)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecEqual(res1.DeltaR, res2.DeltaR, 1e-12) {
		t.Fatalf("after Reset, Δr = %v, want same as fresh %v", res2.DeltaR, res1.DeltaR)
	}
}

func TestUpdateSetPoints(t *testing.T) {
	c := simpleController(t, defaultSimpleConfig())
	if err := c.UpdateSetPoints([]float64{0.5}); err == nil {
		t.Error("short set-point vector accepted")
	}
	if err := c.UpdateSetPoints([]float64{0.5, 0.6}); err != nil {
		t.Fatal(err)
	}
	got := c.SetPoints()
	if !mat.VecEqual(got, []float64{0.5, 0.6}, 0) {
		t.Fatalf("SetPoints = %v, want [0.5 0.6]", got)
	}
	// Convergence to the new set points.
	f := simpleF()
	r0 := []float64{1.0 / 60, 1.0 / 90, 1.0 / 100}
	u, _ := runClosedLoop(t, c, f, []float64{1, 1}, f.MulVec(r0), r0, 80)
	if math.Abs(u[0]-0.5) > 0.01 || math.Abs(u[1]-0.6) > 0.01 {
		t.Fatalf("u = %v, want ≈ [0.5 0.6] after set-point change", u)
	}
}

func TestLongerHorizonsStillConverge(t *testing.T) {
	// The MEDIUM controller uses P = 4, M = 2 (Table 2).
	cfg := Config{PredictionHorizon: 4, ControlHorizon: 2, TrefOverTs: 4}
	c := simpleController(t, cfg)
	f := simpleF()
	r0 := []float64{1.0 / 60, 1.0 / 90, 1.0 / 100}
	u, _ := runClosedLoop(t, c, f, []float64{1, 1}, f.MulVec(r0), r0, 80)
	for i, v := range u {
		if math.Abs(v-0.828) > 0.01 {
			t.Errorf("u[%d] = %v with P=4/M=2, want ≈ 0.828", i, v)
		}
	}
}

func TestDisableOutputConstraints(t *testing.T) {
	cfg := defaultSimpleConfig()
	cfg.DisableOutputConstraints = true
	c := simpleController(t, cfg)
	f := simpleF()
	r0 := []float64{1.0 / 60, 1.0 / 90, 1.0 / 100}
	u, _ := runClosedLoop(t, c, f, []float64{1, 1}, f.MulVec(r0), r0, 80)
	for i, v := range u {
		if math.Abs(v-0.828) > 0.01 {
			t.Errorf("u[%d] = %v without output constraints, want ≈ 0.828", i, v)
		}
	}
}

func TestQWeightsShiftPriority(t *testing.T) {
	// With weights strongly favoring P1 and a coupled infeasibility, the
	// controller should track P1 more tightly than P2. Build contention by
	// bounding task rates so both set points cannot be met exactly; output
	// constraints are disabled so the weighted trade-off is observable
	// (otherwise the hard u₂ ≤ B₂ cap dominates).
	f := mat.MustFromRows([][]float64{{50, 50, 0}, {0, 50, 50}})
	b := []float64{0.9, 0.3} // conflicting demands through shared task 2
	rmin := []float64{1e-4, 1e-4, 1e-4}
	rmax := []float64{0.004, 0.02, 0.02}
	cfg := Config{
		PredictionHorizon: 2, ControlHorizon: 1, TrefOverTs: 4,
		QWeights:                 []float64{100, 1},
		DisableOutputConstraints: true,
	}
	c, err := New(f, b, rmin, rmax, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rates := []float64{1e-3, 1e-3, 1e-3}
	u := f.MulVec(rates)
	for k := 0; k < 120; k++ {
		res, err := c.Step(u, rates)
		if err != nil {
			t.Fatalf("step %d: %v", k, err)
		}
		rates = res.NewRates
		u = stepPlant(u, f, []float64{1, 1}, res.DeltaR)
	}
	if math.Abs(u[0]-0.9) > 0.02 {
		t.Errorf("heavily weighted P1 at %v, want ≈ 0.9", u[0])
	}
}

// TestAntiWindupHealthyNoSync pins the bit-identity claim behind the
// always-on anti-windup: feeding each Step the exact rates the previous
// Step commanded must never count a sync or change the control sequence.
func TestAntiWindupHealthyNoSync(t *testing.T) {
	c := simpleController(t, defaultSimpleConfig())
	rates := []float64{1.0 / 350, 1.0 / 350, 1.0 / 450}
	u := []float64{0.5, 0.6}
	for k := 0; k < 20; k++ {
		res, err := c.Step(u, rates)
		if err != nil {
			t.Fatal(err)
		}
		rates = res.NewRates
	}
	if got := c.AntiWindupSyncs(); got != 0 {
		t.Errorf("healthy actuation counted %d anti-windup syncs, want 0", got)
	}
}

// TestAntiWindupReconcilesStuckActuator drives the controller with an
// actuator that never applies any command (rates frozen): the move memory
// must be reconciled to the achieved zero move each period instead of
// accumulating the fictitious commanded moves.
func TestAntiWindupReconcilesStuckActuator(t *testing.T) {
	c := simpleController(t, defaultSimpleConfig())
	frozen := []float64{1.0 / 350, 1.0 / 350, 1.0 / 450}
	u := []float64{0.5, 0.6} // below set points: the MPC wants rate increases
	var lastCmd []float64
	for k := 0; k < 5; k++ {
		res, err := c.Step(u, frozen)
		if err != nil {
			t.Fatal(err)
		}
		lastCmd = res.NewRates
	}
	if c.AntiWindupSyncs() == 0 {
		t.Fatal("stuck actuator produced no anti-windup syncs")
	}
	moved := false
	for i := range lastCmd {
		if math.Abs(lastCmd[i]-frozen[i]) > 1e-12 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("controller stopped commanding changes; windup test is vacuous")
	}
	// With the plant frozen, reconciliation pins the pre-step move memory
	// at zero, so every period solves the same problem: the command must be
	// periodic, not a ratcheting accumulation.
	res1, err := c.Step(u, frozen)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := c.Step(u, frozen)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res1.NewRates {
		if math.Abs(res1.NewRates[i]-res2.NewRates[i]) > 1e-12 {
			t.Errorf("task %d: command drifts under a stuck actuator (%.12g vs %.12g)",
				i, res1.NewRates[i], res2.NewRates[i])
		}
	}
	// Reset clears the anti-windup state.
	c.Reset()
	if c.AntiWindupSyncs() != 0 || c.haveLast {
		t.Error("Reset did not clear anti-windup state")
	}
}

// TestStepToMatchesStepBitwise drives two identical controllers through
// the same closed-loop-ish sequence — steady-state interior steps,
// overload periods that relax constraints, saturating moves, and a NaN
// measurement — and requires StepTo to reproduce Step bit for bit: same
// results, same outcomes, same internal counters. The interior fast path
// must be undetectable from the outputs.
func TestStepToMatchesStepBitwise(t *testing.T) {
	cs := simpleController(t, defaultSimpleConfig())
	ct := simpleController(t, defaultSimpleConfig())
	out := ct.NewStepResult()
	rates := []float64{1.0 / 400, 1.0 / 400, 1.0 / 500}
	ratesTo := append([]float64(nil), rates...)
	seq := [][]float64{
		{0.5, 0.6}, {0.7, 0.75}, {0.80, 0.81}, {0.82, 0.825}, // approach: interior
		{1.3, 1.2}, {1.1, 1.05}, // overload: relaxed / saturated
		{math.NaN(), 0.5},                                       // poisoned: hold rung
		{0.6, 0.6}, {0.8, 0.8}, {0.825, 0.826}, {0.8279, 0.828}, // recovery into steady state
	}
	sawInterior := false
	for k, u := range seq {
		res, err := cs.Step(u, rates)
		if err != nil {
			t.Fatalf("period %d: Step: %v", k, err)
		}
		if err := ct.StepTo(out, u, ratesTo); err != nil {
			t.Fatalf("period %d: StepTo: %v", k, err)
		}
		if out.Outcome != res.Outcome || out.OutputConstraintsRelaxed != res.OutputConstraintsRelaxed ||
			out.SolverIterations != res.SolverIterations {
			t.Fatalf("period %d: StepTo outcome (%v,%v,%d) != Step (%v,%v,%d)", k,
				out.Outcome, out.OutputConstraintsRelaxed, out.SolverIterations,
				res.Outcome, res.OutputConstraintsRelaxed, res.SolverIterations)
		}
		for i := range res.NewRates {
			if out.NewRates[i] != res.NewRates[i] || out.DeltaR[i] != res.DeltaR[i] {
				t.Fatalf("period %d task %d: StepTo rate %v Δ %v, Step rate %v Δ %v (must be bit-identical)",
					k, i, out.NewRates[i], out.DeltaR[i], res.NewRates[i], res.DeltaR[i])
			}
		}
		for i := range res.PredictedUtil {
			if math.Float64bits(out.PredictedUtil[i]) != math.Float64bits(res.PredictedUtil[i]) {
				t.Fatalf("period %d proc %d: predicted util %v vs %v", k, i, out.PredictedUtil[i], res.PredictedUtil[i])
			}
		}
		if out.SolverIterations == 1 && out.Outcome == SolveOK {
			sawInterior = true
		}
		copy(rates, res.NewRates)
		copy(ratesTo, out.NewRates)
	}
	if !sawInterior {
		t.Error("sequence never exercised the interior fast path; the bit-identity claim went untested")
	}
	sb, sr, sh := cs.ContainmentCounts()
	tb, tr, th := ct.ContainmentCounts()
	if sb != tb || sr != tr || sh != th {
		t.Errorf("containment counters diverge: Step (%d,%d,%d) StepTo (%d,%d,%d)", sb, sr, sh, tb, tr, th)
	}
	if cs.AntiWindupSyncs() != ct.AntiWindupSyncs() {
		t.Errorf("anti-windup syncs diverge: %d vs %d", cs.AntiWindupSyncs(), ct.AntiWindupSyncs())
	}
}

// TestStepToDimensionErrors: StepTo validates like Step.
func TestStepToDimensionErrors(t *testing.T) {
	c := simpleController(t, defaultSimpleConfig())
	out := c.NewStepResult()
	if err := c.StepTo(out, []float64{0.5}, []float64{0.01, 0.01, 0.01}); err == nil {
		t.Error("short utilization accepted")
	}
	if err := c.StepTo(out, []float64{0.5, 0.5}, []float64{0.01}); err == nil {
		t.Error("short rates accepted")
	}
}
