package mpc

import (
	"math"
	"math/rand"
	"testing"

	"github.com/rtsyslab/eucon/internal/empc"
	"github.com/rtsyslab/eucon/internal/mat"
)

// TestExplicitMatchesIterativeBitwise drives two identical controllers —
// one with an attached explicit law, one without — through the same
// closed-loop trajectory with seeded disturbances and requires the rates
// to agree bit for bit at every step. This is the property that keeps the
// fig4/fig5 sweep digests unchanged under -explicit.
func TestExplicitMatchesIterativeBitwise(t *testing.T) {
	cfg := defaultSimpleConfig()
	iter := simpleController(t, cfg)
	exp := simpleController(t, cfg)
	rep, err := exp.CompileExplicit(empc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regions < 1 {
		t.Fatalf("compile produced %d regions", rep.Regions)
	}
	t.Logf("explicit law: %d regions (explored %d, truncated %v), digest %s",
		rep.Regions, rep.Explored, rep.Truncated, exp.ExplicitLaw().Digest())

	rng := rand.New(rand.NewSource(7))
	f := simpleF()
	u := []float64{0.4, 0.5}
	rates := mat.VecClone(iter.rmin)
	for i := range rates {
		rates[i] *= 4
	}
	ratesIter := mat.VecClone(rates)
	for k := 0; k < 400; k++ {
		ri, err := iter.Step(u, ratesIter)
		if err != nil {
			t.Fatal(err)
		}
		re, err := exp.Step(u, rates)
		if err != nil {
			t.Fatal(err)
		}
		for j := range ri.NewRates {
			if math.Float64bits(ri.NewRates[j]) != math.Float64bits(re.NewRates[j]) {
				t.Fatalf("step %d rate %d: iterative %v vs explicit %v (explicit outcome %v)",
					k, j, ri.NewRates[j], re.NewRates[j], re.Outcome)
			}
			if math.Float64bits(ri.DeltaR[j]) != math.Float64bits(re.DeltaR[j]) {
				t.Fatalf("step %d delta %d: %v vs %v", k, j, ri.DeltaR[j], re.DeltaR[j])
			}
		}
		for j := range ri.PredictedUtil {
			if math.Float64bits(ri.PredictedUtil[j]) != math.Float64bits(re.PredictedUtil[j]) {
				t.Fatalf("step %d predicted util %d: %v vs %v", k, j, ri.PredictedUtil[j], re.PredictedUtil[j])
			}
		}
		// Evolve the shared plant and disturb it; every ~60 steps slam the
		// utilization up so saturated (miss) stretches are exercised too.
		copy(rates, re.NewRates)
		copy(ratesIter, ri.NewRates)
		du := f.MulVec(re.DeltaR)
		for j := range u {
			u[j] += du[j] + 0.02*(rng.Float64()-0.5)
			if k%60 == 59 {
				u[j] = 1.2 + 0.3*rng.Float64()
			}
			u[j] = math.Max(0.05, math.Min(1.8, u[j]))
		}
	}
	hits, misses := exp.ExplicitCounts()
	t.Logf("explicit hits %d, misses %d", hits, misses)
	if hits == 0 {
		t.Fatal("explicit fast path never hit")
	}
	if misses == 0 {
		t.Fatal("trajectory never exercised the fallback path")
	}
}

// TestExplicitFallbackOnOverload pins the miss accounting: a measurement
// far above the set points makes z0 = 0 infeasible, the query leaves the
// interior region, and the iterative ladder must produce the move while
// the miss counters stay truthful.
func TestExplicitFallbackOnOverload(t *testing.T) {
	cfg := defaultSimpleConfig()
	c := simpleController(t, cfg)
	if _, err := c.CompileExplicit(empc.Options{}); err != nil {
		t.Fatal(err)
	}
	rates := mat.VecClone(c.rmax)
	res, err := c.Step([]float64{1.5, 1.6}, rates)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome == SolveExplicit {
		t.Fatalf("overload step reported outcome %v, want an iterative rung", res.Outcome)
	}
	if got := c.LastExplicitOutcome(); got != SolveExplicitMiss {
		t.Fatalf("LastExplicitOutcome = %v, want SolveExplicitMiss", got)
	}
	hits, misses := c.ExplicitCounts()
	if hits != 0 || misses != 1 {
		t.Fatalf("counts = (%d, %d), want (0, 1)", hits, misses)
	}
	// Recovery: once utilization is back under the set points the fast
	// path resumes.
	if _, err := c.Step([]float64{0.3, 0.3}, res.NewRates); err != nil {
		t.Fatal(err)
	}
	if got := c.LastExplicitOutcome(); got != SolveExplicit {
		t.Fatalf("post-recovery LastExplicitOutcome = %v, want SolveExplicit", got)
	}
	c.Reset()
	hits, misses = c.ExplicitCounts()
	if hits != 0 || misses != 0 {
		t.Fatalf("Reset kept counts (%d, %d)", hits, misses)
	}
}

// TestExplicitLawPropertyRandomTheta samples random parameter vectors and
// checks the stored piecewise-affine law (any region, not just the
// bit-exact interior) against the iterative solver to 1e-9.
func TestExplicitLawPropertyRandomTheta(t *testing.T) {
	cfg := defaultSimpleConfig()
	c := simpleController(t, cfg)
	if _, err := c.CompileExplicit(empc.Options{}); err != nil {
		t.Fatal(err)
	}
	law := c.ExplicitLaw()
	rng := rand.New(rand.NewSource(42))
	theta := make([]float64, c.n+2*c.m)
	deltaLaw := make([]float64, c.m)
	located, nonInterior := 0, 0
	for trial := 0; trial < 300; trial++ {
		u := make([]float64, c.n)
		for r := range u {
			u[r] = rng.Float64() * c.setPoints[r] * 1.15
		}
		rates := make([]float64, c.m)
		prev := make([]float64, c.m)
		for j := range rates {
			rates[j] = c.rmin[j] + rng.Float64()*(c.rmax[j]-c.rmin[j])
			span := c.rmax[j] - c.rmin[j]
			prev[j] = (rng.Float64()*2 - 1) * span * 0.5
		}
		copy(theta[:c.n], u)
		copy(theta[c.n:c.n+c.m], rates)
		copy(theta[c.n+c.m:], prev)
		idx := law.Locate(theta, -1)
		if idx < 0 {
			continue
		}
		located++
		if idx != law.InteriorIndex() {
			nonInterior++
		}
		law.EvaluateInto(deltaLaw, theta, idx)

		probe := simpleController(t, cfg)
		copy(probe.prevDelta, prev)
		res, err := probe.Step(u, rates)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != SolveOK {
			// The ladder took a different problem (relaxed or degraded);
			// the law's region description no longer applies.
			continue
		}
		for j := 0; j < c.m; j++ {
			nr := rates[j] + deltaLaw[j]
			nr = math.Max(c.rmin[j], math.Min(c.rmax[j], nr))
			if math.Abs(nr-res.NewRates[j]) > 1e-9 {
				t.Fatalf("trial %d (region %d) rate %d: law %v vs iterative %v",
					trial, idx, j, nr, res.NewRates[j])
			}
		}
	}
	t.Logf("located %d/300 samples, %d in non-interior regions", located, nonInterior)
	if located < 100 {
		t.Fatalf("only %d samples located — domain sampling is off", located)
	}
	if nonInterior == 0 {
		t.Fatal("no sample exercised a constrained region")
	}
}
