package mpc

import (
	"testing"
	"time"

	"github.com/rtsyslab/eucon/internal/empc"
	"github.com/rtsyslab/eucon/internal/mat"
)

// mediumController mirrors workload.Medium()'s allocation structure
// (12 tasks × 4 processors, P=4, M=2) without importing the workload
// package, which would invert the dependency order.
func mediumController(t *testing.T) *Controller {
	t.Helper()
	f := mat.MustFromRows([][]float64{
		{30, 0, 20, 35, 45, 0, 25, 20, 40, 0, 0, 0},
		{25, 40, 0, 25, 0, 25, 0, 35, 0, 45, 0, 0},
		{20, 0, 25, 0, 30, 35, 0, 30, 0, 0, 50, 0},
		{0, 30, 35, 30, 0, 30, 50, 0, 0, 0, 0, 35},
	})
	b := []float64{0.828, 0.828, 0.828, 0.828}
	rmin := make([]float64, 12)
	rmax := make([]float64, 12)
	for i := range rmin {
		rmin[i], rmax[i] = 1.0/4000, 1.0/25
	}
	c, err := New(f, b, rmin, rmax, Config{PredictionHorizon: 4, ControlHorizon: 2, TrefOverTs: 4})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestExplicitCompileReproducibleDigest is the determinism contract the
// check.sh gate enforces: two independent compiles of the same problem —
// at different worker counts — must produce bit-identical laws, proven by
// equal digests.
func TestExplicitCompileReproducibleDigest(t *testing.T) {
	c := mediumController(t)
	start := time.Now()
	law1, rep1, err := empc.Compile(c.BuildExplicitProblem(), empc.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	once := time.Since(start)
	law2, rep2, err := empc.Compile(c.BuildExplicitProblem(), empc.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if law1.Digest() != law2.Digest() {
		t.Fatalf("digest differs across compiles: %s vs %s", law1.Digest(), law2.Digest())
	}
	if law1.Regions() != law2.Regions() || rep1.Regions != rep2.Regions {
		t.Fatalf("region count differs: %d vs %d", law1.Regions(), law2.Regions())
	}
	t.Logf("medium compile: %v, %d regions (explored %d, truncated %v), digest %s",
		once, rep1.Regions, rep1.Explored, rep1.Truncated, law1.Digest())
	if once > 5*time.Second {
		t.Fatalf("offline compile took %v — the startup budget is a few hundred ms", once)
	}
}

// TestAttachExplicitValidation pins the dimension checks guarding against
// attaching a law compiled for a different controller.
func TestAttachExplicitValidation(t *testing.T) {
	med := mediumController(t)
	simple := simpleController(t, defaultSimpleConfig())
	law, _, err := empc.Compile(simple.BuildExplicitProblem(), empc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := med.AttachExplicit(law); err == nil {
		t.Fatal("attaching a SIMPLE law to the MEDIUM controller must fail")
	}
	if err := simple.AttachExplicit(law); err != nil {
		t.Fatal(err)
	}
	if simple.ExplicitLaw() != law {
		t.Fatal("law not attached")
	}
	if err := simple.AttachExplicit(nil); err != nil {
		t.Fatal(err)
	}
	if simple.ExplicitLaw() != nil {
		t.Fatal("nil attach must detach")
	}
}

// TestUpdateSetPointsDetachesLaw: the law bakes the set points into its
// affine offsets, so changing them must drop it.
func TestUpdateSetPointsDetachesLaw(t *testing.T) {
	c := simpleController(t, defaultSimpleConfig())
	if _, err := c.CompileExplicit(empc.Options{}); err != nil {
		t.Fatal(err)
	}
	// Same values: the law stays valid.
	if err := c.UpdateSetPoints([]float64{0.828, 0.828}); err != nil {
		t.Fatal(err)
	}
	if c.ExplicitLaw() == nil {
		t.Fatal("identical set points must not detach the law")
	}
	if err := c.UpdateSetPoints([]float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	if c.ExplicitLaw() != nil {
		t.Fatal("changed set points must detach the law")
	}
}
