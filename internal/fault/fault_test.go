package fault

import (
	"math"
	"strings"
	"testing"
)

func testShape() Shape {
	return Shape{
		Procs:          2,
		Tasks:          2,
		SubsPerTask:    []int{2, 1},
		Periods:        20,
		SamplingPeriod: 1000,
	}
}

func TestSpecValidation(t *testing.T) {
	shape := testShape()
	bad := []struct {
		name string
		spec Spec
	}{
		{"negative start", Spec{Kind: ExecStep, Magnitude: 2, Start: -1}},
		{"empty window", Spec{Kind: ExecStep, Magnitude: 2, Start: 5, Stop: 5}},
		{"zero exec factor", Spec{Kind: ExecStep, Magnitude: 0}},
		{"ramp without stop", Spec{Kind: ExecRamp, Magnitude: 2}},
		{"proc out of range", Spec{Kind: ProcCrash, Proc: 2}},
		{"task out of range", Spec{Kind: ActuatorDrop, Task: 7, Magnitude: 0.5}},
		{"sub without task", Spec{Kind: ExecStep, Task: All, Sub: 1, Magnitude: 2}},
		{"sub out of range", Spec{Kind: ExecStep, Task: 1, Sub: 1, Magnitude: 2}},
		{"drop prob > 1", Spec{Kind: FeedbackDrop, Magnitude: 1.5}},
		{"drop prob zero", Spec{Kind: ActuatorDrop, Magnitude: 0}},
		{"delay zero", Spec{Kind: FeedbackDelay}},
		{"negative clamp", Spec{Kind: ActuatorClamp, Magnitude: -0.1}},
		{"unknown kind", Spec{Kind: Kind(99)}},
	}
	for _, c := range bad {
		var e Engine
		if err := e.Compile([]Spec{c.spec}, shape, 1); err == nil {
			t.Errorf("%s: Compile accepted invalid spec %v", c.name, c.spec)
		}
	}

	good := []Spec{
		{Kind: ExecStep, Proc: All, Task: All, Sub: All, Magnitude: 2},
		{Kind: ExecRamp, Task: 0, Sub: 1, Start: 2, Stop: 8, Magnitude: 3},
		{Kind: FeedbackDrop, Proc: 1, Magnitude: 1},
		{Kind: FeedbackDelay, Proc: All, Delay: 3},
		{Kind: FeedbackQuantize, Proc: 0, Magnitude: 0.05},
		{Kind: ActuatorDrop, Task: All, Magnitude: 0.2},
		{Kind: ActuatorDelay, Task: 1, Delay: 1},
		{Kind: ActuatorClamp, Task: 0, Magnitude: 0},
		{Kind: ProcCrash, Proc: All, Start: 3, Stop: 5},
	}
	var e Engine
	if err := e.Compile(good, shape, 1); err != nil {
		t.Fatalf("Compile rejected valid scenario: %v", err)
	}
	if !e.Enabled() {
		t.Fatal("engine not enabled after compiling a non-empty scenario")
	}
	if got := len(e.Injectors()); got != len(good) {
		t.Fatalf("Injectors() = %d, want %d", got, len(good))
	}
	for i, inj := range e.Injectors() {
		if inj.Kind() != good[i].Kind || inj.Spec() != good[i] {
			t.Errorf("injector %d = %v, want spec %v", i, inj.Spec(), good[i])
		}
	}
}

func TestIdleEngine(t *testing.T) {
	var e Engine
	if err := e.Compile(nil, Shape{}, 1); err != nil {
		t.Fatalf("Compile(nil) = %v", err)
	}
	if e.Enabled() {
		t.Fatal("empty scenario must leave the engine disabled")
	}
	var nilEngine *Engine
	if nilEngine.Enabled() {
		t.Fatal("nil engine must report disabled")
	}
	if c := e.Feedback(3, 0); c.Src != 3 || c.Quant != 0 {
		t.Errorf("idle Feedback = %+v, want fresh sample", c)
	}
	if c := e.Command(3, 0); c.Drop || c.Delay != 0 || c.Clamp >= 0 {
		t.Errorf("idle Command = %+v, want pass-through", c)
	}
	if e.Down(0, 5000) || e.DownPeriod(3, 0) {
		t.Error("idle engine reports a processor down")
	}
	if f := e.ExecFactor(0, 0, 0, 5000); f != 1 {
		t.Errorf("idle ExecFactor = %g, want 1", f)
	}
}

func TestCompileDeterminismAndReuse(t *testing.T) {
	shape := testShape()
	specs := []Spec{
		{Kind: FeedbackDrop, Proc: All, Magnitude: 0.5, Seed: 7},
		{Kind: ActuatorDrop, Task: All, Magnitude: 0.5, Seed: 9},
	}
	snapshot := func(e *Engine) string {
		var b strings.Builder
		for k := 0; k < shape.Periods; k++ {
			for p := 0; p < shape.Procs; p++ {
				c := e.Feedback(k, p)
				b.WriteString(itoa(c.Src))
				b.WriteByte(' ')
			}
			for i := 0; i < shape.Tasks; i++ {
				if e.Command(k, i).Drop {
					b.WriteByte('D')
				} else {
					b.WriteByte('.')
				}
			}
			b.WriteByte('\n')
		}
		return b.String()
	}

	var a, b Engine
	if err := a.Compile(specs, shape, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Compile(specs, shape, 1); err != nil {
		t.Fatal(err)
	}
	first := snapshot(&a)
	if first != snapshot(&b) {
		t.Fatal("two fresh engines disagree on the same scenario")
	}

	// Re-compiling the same engine with a different scenario and then the
	// original one must reproduce the original tables exactly.
	if err := a.Compile([]Spec{{Kind: FeedbackDrop, Proc: 0, Magnitude: 1}}, shape, 99); err != nil {
		t.Fatal(err)
	}
	if err := a.Compile(specs, shape, 1); err != nil {
		t.Fatal(err)
	}
	if snapshot(&a) != first {
		t.Fatal("engine reuse changed the compiled scenario")
	}

	// A different run seed must yield a different drop pattern (independent
	// replications), while the scenario stays valid.
	if err := b.Compile(specs, shape, 2); err != nil {
		t.Fatal(err)
	}
	if snapshot(&b) == first {
		t.Fatal("run seed does not influence probabilistic injectors")
	}
}

func itoa(v int) string {
	if v < 0 {
		return "-"
	}
	const digits = "0123456789"
	if v < 10 {
		return digits[v : v+1]
	}
	return itoa(v/10) + digits[v%10:v%10+1]
}

func TestFeedbackComposition(t *testing.T) {
	shape := testShape()
	var e Engine
	specs := []Spec{
		{Kind: FeedbackDrop, Proc: 0, Magnitude: 1, Start: 5, Stop: 10},
		{Kind: FeedbackDelay, Proc: All, Delay: 2},
		{Kind: FeedbackQuantize, Proc: 1, Magnitude: 0.05, Start: 3},
	}
	if err := e.Compile(specs, shape, 1); err != nil {
		t.Fatal(err)
	}
	// Drop (probability 1) wins over the later delay on proc 0 in [5, 10).
	if c := e.Feedback(7, 0); c.Src != -1 {
		t.Errorf("Feedback(7,0).Src = %d, want dropped", c.Src)
	}
	// Outside the drop window the delay applies.
	if c := e.Feedback(12, 0); c.Src != 10 {
		t.Errorf("Feedback(12,0).Src = %d, want 10", c.Src)
	}
	// A delay pointing before the first sample is a miss.
	if c := e.Feedback(1, 1); c.Src != -1 {
		t.Errorf("Feedback(1,1).Src = %d, want -1 (nothing measured yet)", c.Src)
	}
	// Quantization composes with delay on proc 1 from period 3 on.
	if c := e.Feedback(6, 1); c.Src != 4 || c.Quant != 0.05 {
		t.Errorf("Feedback(6,1) = %+v, want delayed and quantized", c)
	}
	// Proc 1 before period 3 is delayed but not quantized.
	if c := e.Feedback(2, 1); c.Src != 0 || c.Quant != 0 {
		t.Errorf("Feedback(2,1) = %+v, want {0 0}", c)
	}
}

func TestActuatorCells(t *testing.T) {
	shape := testShape()
	var e Engine
	specs := []Spec{
		{Kind: ActuatorDelay, Task: 0, Delay: 3, Start: 2, Stop: 8},
		{Kind: ActuatorClamp, Task: 1, Magnitude: 0, Start: 4},
		{Kind: ActuatorDrop, Task: 0, Magnitude: 1, Start: 6, Stop: 7},
	}
	if err := e.Compile(specs, shape, 1); err != nil {
		t.Fatal(err)
	}
	if c := e.Command(3, 0); c.Delay != 3 || c.Drop {
		t.Errorf("Command(3,0) = %+v, want delay 3", c)
	}
	if c := e.Command(6, 0); !c.Drop {
		t.Errorf("Command(6,0) = %+v, want dropped", c)
	}
	if c := e.Command(5, 1); c.Clamp != 0 {
		t.Errorf("Command(5,1) = %+v, want clamp 0 (stuck)", c)
	}
	if c := e.Command(3, 1); c.Clamp >= 0 {
		t.Errorf("Command(3,1) = %+v, want unbounded", c)
	}
}

func TestExecFactor(t *testing.T) {
	shape := testShape()
	ts := shape.SamplingPeriod
	var e Engine
	specs := []Spec{
		{Kind: ExecStep, Proc: 0, Task: All, Sub: All, Start: 2, Stop: 4, Magnitude: 2},
		{Kind: ExecRamp, Proc: All, Task: 1, Sub: All, Start: 10, Stop: 20, Magnitude: 3},
	}
	if err := e.Compile(specs, shape, 1); err != nil {
		t.Fatal(err)
	}
	if f := e.ExecFactor(0, 0, 0, 1.5*ts); f != 1 {
		t.Errorf("before window: factor %g, want 1", f)
	}
	if f := e.ExecFactor(0, 0, 0, 2*ts); f != 2 {
		t.Errorf("at window start: factor %g, want 2", f)
	}
	if f := e.ExecFactor(0, 0, 0, 4*ts); f != 1 {
		t.Errorf("at window stop: factor %g, want 1 (half-open)", f)
	}
	if f := e.ExecFactor(1, 0, 0, 3*ts); f != 1 {
		t.Errorf("other processor: factor %g, want 1", f)
	}
	// Ramp: halfway through it the factor is 1 + (3-1)*0.5 = 2.
	if f := e.ExecFactor(1, 1, 0, 15*ts); math.Abs(f-2) > 1e-12 {
		t.Errorf("ramp midpoint: factor %g, want 2", f)
	}
	// Overlap (proc 0, task 1, period ~10..): windows compose multiplicatively.
	if err := e.Compile([]Spec{
		{Kind: ExecStep, Proc: All, Task: All, Sub: All, Magnitude: 2},
		{Kind: ExecStep, Proc: All, Task: All, Sub: All, Magnitude: 3},
	}, shape, 1); err != nil {
		t.Fatal(err)
	}
	if f := e.ExecFactor(0, 0, 0, ts); f != 6 {
		t.Errorf("overlapping steps: factor %g, want 6", f)
	}
}

func TestCrashWindows(t *testing.T) {
	shape := testShape()
	ts := shape.SamplingPeriod
	var e Engine
	if err := e.Compile([]Spec{{Kind: ProcCrash, Proc: 1, Start: 3.5, Stop: 6}}, shape, 1); err != nil {
		t.Fatal(err)
	}
	if e.Down(0, 4*ts) {
		t.Error("processor 0 reported down; crash targets processor 1")
	}
	if !e.Down(1, 3.5*ts) || !e.Down(1, 5.9*ts) {
		t.Error("processor 1 not down inside its crash window")
	}
	if e.Down(1, 3.4*ts) || e.Down(1, 6*ts) {
		t.Error("processor 1 down outside its half-open crash window")
	}
	// Period 3 is partially covered ([3.5, 4)), periods 4..5 fully, period 6
	// not at all.
	for k, want := range map[int]bool{2: false, 3: true, 4: true, 5: true, 6: false} {
		if got := e.DownPeriod(k, 1); got != want {
			t.Errorf("DownPeriod(%d, 1) = %v, want %v", k, got, want)
		}
	}
	// Stop <= 0 extends to the end of the run.
	if err := e.Compile([]Spec{{Kind: ProcCrash, Proc: 0, Start: 10}}, shape, 1); err != nil {
		t.Fatal(err)
	}
	if !e.Down(0, float64(shape.Periods)*ts-1) || !e.DownPeriod(shape.Periods-1, 0) {
		t.Error("open-ended crash does not reach the end of the run")
	}
}

func TestRegistry(t *testing.T) {
	shape := Shape{
		Procs:          4,
		Tasks:          6,
		SubsPerTask:    []int{2, 2, 2, 2, 2, 2},
		Periods:        300,
		SamplingPeriod: 1000,
	}
	names := map[string]bool{}
	for _, sc := range Scenarios() {
		if sc.Name == "" || sc.Title == "" || len(sc.Specs) == 0 {
			t.Errorf("scenario %+v incomplete", sc)
		}
		if names[sc.Name] {
			t.Errorf("duplicate scenario name %s", sc.Name)
		}
		names[sc.Name] = true
		var e Engine
		if err := e.Compile(sc.Specs, shape, 1); err != nil {
			t.Errorf("scenario %s does not compile: %v", sc.Name, err)
		}
		if got, ok := Lookup(sc.Name); !ok || got.Name != sc.Name {
			t.Errorf("Lookup(%s) failed", sc.Name)
		}
	}
	if len(Names()) != len(names) {
		t.Errorf("Names() returned %d entries, want %d", len(Names()), len(names))
	}

	specs, err := Parse("exec-burst-2x, proc2-crash-recover")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Kind != ExecStep || specs[1].Kind != ProcCrash {
		t.Errorf("Parse combined list = %v", specs)
	}
	if _, err := Parse("no-such-scenario"); err == nil {
		t.Error("Parse accepted an unknown scenario name")
	}
	if specs, err := Parse(""); err != nil || specs != nil {
		t.Errorf("Parse(\"\") = %v, %v; want nil, nil", specs, err)
	}
}

func TestFormat(t *testing.T) {
	if got := Format(nil); got != "none" {
		t.Errorf("Format(nil) = %q", got)
	}
	specs := []Spec{
		{Kind: ProcCrash, Proc: 1, Start: 100, Stop: 140},
		{Kind: FeedbackDrop, Proc: All, Magnitude: 0.1, Seed: 11},
	}
	got := Format(specs)
	if !strings.Contains(got, "proc-crash") || !strings.Contains(got, "feedback-drop") || !strings.Contains(got, "; ") {
		t.Errorf("Format = %q", got)
	}
	if got != Format(specs) {
		t.Error("Format is not stable")
	}
}
