package fault

import "time"

// TransportPlan is a deterministic, stateless transport fault plan for the
// feedback lanes: the fate of message n is a pure hash of (Seed, n), so the
// loss pattern is reproducible regardless of goroutine scheduling or how
// many times the plan is consulted. It satisfies the lane package's Plan
// interface.
type TransportPlan struct {
	// DropProb is the probability a message is discarded before reaching
	// the wire.
	DropProb float64
	// DelayProb is the probability a non-dropped message is held for
	// Delay before sending.
	DelayProb float64
	// Delay is the injected transmission delay.
	Delay time.Duration
	// Seed selects the loss pattern; identical seeds reproduce identical
	// patterns.
	Seed int64
}

// Outcome returns the fate of send number n (0-based).
func (p TransportPlan) Outcome(n uint64) (drop bool, delay time.Duration) {
	if p.DropProb > 0 && unit(p.Seed, n, 0xd1342543de82ef95) < p.DropProb {
		return true, 0
	}
	if p.DelayProb > 0 && p.Delay > 0 && unit(p.Seed, n, 0xaf251af3b0f025b5) < p.DelayProb {
		return false, p.Delay
	}
	return false, 0
}

// unit hashes (seed, n, salt) through a splitmix64-style finalizer to a
// uniform float64 in [0, 1).
func unit(seed int64, n, salt uint64) float64 {
	z := uint64(seed) + n*0x9e3779b97f4a7c15 + salt
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}
