package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// TransportPlan is a deterministic, stateless transport fault plan for the
// feedback lanes: the fate of message n is a pure hash of (Seed, n), so the
// loss pattern is reproducible regardless of goroutine scheduling or how
// many times the plan is consulted. It satisfies the lane package's Plan
// interface (drop/delay) and its ExtendedPlan interface (duplicate and
// reorder as well).
type TransportPlan struct {
	// DropProb is the probability a message is discarded before reaching
	// the wire.
	DropProb float64
	// DelayProb is the probability a non-dropped message is held for
	// Delay before sending.
	DelayProb float64
	// Delay is the injected transmission delay.
	Delay time.Duration
	// DupProb is the probability a delivered message is sent twice
	// back-to-back (the protocol's frames carry absolute state, so a
	// duplicate must be harmless — that is exactly what this fault
	// proves).
	DupProb float64
	// ReorderProb is the probability a delivered message is held back and
	// put on the wire after the next send on the same lane.
	ReorderProb float64
	// Seed selects the loss pattern; identical seeds reproduce identical
	// patterns.
	Seed int64
}

// Outcome returns the drop/delay fate of send number n (0-based).
func (p TransportPlan) Outcome(n uint64) (drop bool, delay time.Duration) {
	drop, delay, _, _ = p.FateOf(n)
	return drop, delay
}

// FateOf returns the complete fate of send number n (0-based): drop wins
// over everything; a delivered message may additionally be delayed,
// duplicated, or reordered behind the next send.
func (p TransportPlan) FateOf(n uint64) (drop bool, delay time.Duration, duplicate, reorder bool) {
	if p.DropProb > 0 && unit(p.Seed, n, 0xd1342543de82ef95) < p.DropProb {
		return true, 0, false, false
	}
	if p.DelayProb > 0 && p.Delay > 0 && unit(p.Seed, n, 0xaf251af3b0f025b5) < p.DelayProb {
		delay = p.Delay
	}
	if p.DupProb > 0 && unit(p.Seed, n, 0x2545f4914f6cdd1d) < p.DupProb {
		duplicate = true
	}
	if p.ReorderProb > 0 && unit(p.Seed, n, 0x9fb21c651e98df25) < p.ReorderProb {
		reorder = true
	}
	return false, delay, duplicate, reorder
}

// Reseed returns a copy of the plan whose pattern is decorrelated from the
// original by salt: per-peer and per-direction plans derived from one
// template must not drop the same message indices in lockstep, or "5% loss"
// becomes "5% of periods lose every frame in the fleet at once".
func (p TransportPlan) Reseed(salt int64) TransportPlan {
	z := uint64(p.Seed) ^ (uint64(salt)+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	p.Seed = int64(z)
	return p
}

// Zero reports whether the plan injects nothing (every field at its zero
// value except possibly the seed).
func (p TransportPlan) Zero() bool {
	return p.DropProb <= 0 && (p.DelayProb <= 0 || p.Delay <= 0) && p.DupProb <= 0 && p.ReorderProb <= 0
}

// ParseTransportPlan parses the compact comma-separated spec the command
// lines share, e.g.
//
//	drop=0.05,delayprob=0.3,delay=20ms,dup=0.01,reorder=0.01,seed=7
//
// Unknown keys are errors; omitted keys stay zero. An empty spec is the
// zero (fault-free) plan.
func ParseTransportPlan(spec string) (TransportPlan, error) {
	var p TransportPlan
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return p, fmt.Errorf("fault: transport spec field %q is not key=value", field)
		}
		var err error
		switch key {
		case "drop":
			p.DropProb, err = parseProb(val)
		case "delayprob":
			p.DelayProb, err = parseProb(val)
		case "delay":
			p.Delay, err = time.ParseDuration(val)
		case "dup":
			p.DupProb, err = parseProb(val)
		case "reorder":
			p.ReorderProb, err = parseProb(val)
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
		default:
			return p, fmt.Errorf("fault: unknown transport spec key %q (want drop, delayprob, delay, dup, reorder, or seed)", key)
		}
		if err != nil {
			return p, fmt.Errorf("fault: transport spec %s=%q: %w", key, val, err)
		}
	}
	return p, nil
}

// parseProb parses a probability in [0, 1].
func parseProb(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if v < 0 || v > 1 {
		return 0, fmt.Errorf("probability %g outside [0, 1]", v)
	}
	return v, nil
}

// unit hashes (seed, n, salt) through a splitmix64-style finalizer to a
// uniform float64 in [0, 1).
func unit(seed int64, n, salt uint64) float64 {
	z := uint64(seed) + n*0x9e3779b97f4a7c15 + salt
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}
