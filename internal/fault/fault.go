// Package fault is the deterministic fault-injection layer of the EUCON
// reproduction. It perturbs the three segments of the utilization control
// loop — the plant (execution times, processor availability), the feedback
// path (utilization samples), and the actuation path (rate commands) — from
// pure-data Specs, so every fault scenario is serializable, hashable into a
// sweep digest, and reproducible from flags alone.
//
// Determinism is the package's core contract: every injector is a function
// of (Spec, run seed, sampling-period index or simulated time) with all
// randomness drawn from a private rand.Rand seeded at compile time, never
// from the global source. Probabilistic decisions (sample drops, command
// drops) are pre-resolved per sampling period before the run starts, so the
// outcome is independent of event order, worker count, and simulator reuse
// — the sweep-digest tests pin this bit-exactly.
package fault

import (
	"fmt"
	"strings"
)

// Kind selects the injector a Spec configures.
//
//eucon:exhaustive
type Kind int

// Injector kinds. The Exec kinds perturb the plant, the Feedback kinds the
// monitor-to-controller path, the Actuator kinds the controller-to-rate-
// modulator path, and ProcCrash the processor itself.
const (
	// ExecStep multiplies actual execution times by Magnitude while active
	// (a burst is a step with a short window).
	ExecStep Kind = iota + 1
	// ExecRamp ramps the execution-time factor linearly from 1 at Start to
	// Magnitude at Stop.
	ExecRamp
	// FeedbackDrop drops each targeted utilization sample with probability
	// Magnitude (pre-resolved per period from the injector's seed).
	FeedbackDrop
	// FeedbackDelay delivers each targeted sample Delay sampling periods
	// late: the controller sees the measurement from period k−Delay.
	FeedbackDelay
	// FeedbackQuantize rounds each targeted sample to the nearest multiple
	// of Magnitude before the controller sees it.
	FeedbackQuantize
	// ActuatorDrop discards each targeted task's rate command with
	// probability Magnitude; the task keeps its previous rate.
	ActuatorDrop
	// ActuatorDelay applies each targeted task's rate command Delay periods
	// late.
	ActuatorDelay
	// ActuatorClamp limits each targeted task's per-period rate change to
	// ±Magnitude (0 freezes the rate: a stuck rate modulator).
	ActuatorClamp
	// ProcCrash takes the targeted processor down while active: it admits
	// no jobs and its utilization monitor reports u = 1 (saturated), the
	// overload/crash-recovery model.
	ProcCrash
)

// All targets every processor, task, or subtask (Spec.Proc/Task/Sub).
const All = -1

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case ExecStep:
		return "exec-step"
	case ExecRamp:
		return "exec-ramp"
	case FeedbackDrop:
		return "feedback-drop"
	case FeedbackDelay:
		return "feedback-delay"
	case FeedbackQuantize:
		return "feedback-quantize"
	case ActuatorDrop:
		return "actuator-drop"
	case ActuatorDelay:
		return "actuator-delay"
	case ActuatorClamp:
		return "actuator-clamp"
	case ProcCrash:
		return "proc-crash"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec is the pure-data description of one fault injector: kind, target,
// active window, magnitude, and seed. A []Spec fully determines a fault
// scenario; the zero value of each targeting field selects index 0, and
// All (-1) selects every index.
type Spec struct {
	// Kind selects the injector.
	Kind Kind
	// Proc targets a processor (Feedback*, ProcCrash, and optionally the
	// Exec kinds); All targets every processor.
	Proc int
	// Task targets a task (Actuator* and optionally the Exec kinds); All
	// targets every task.
	Task int
	// Sub targets a subtask within Task (Exec kinds only); All targets
	// every subtask. A non-All Sub requires a non-All Task.
	Sub int
	// Start and Stop delimit the active window in sampling periods
	// (fractional values are honored by the time-driven Exec and ProcCrash
	// kinds). Stop <= 0 means "until the end of the run".
	Start, Stop float64
	// Magnitude parameterizes the injector: execution-time factor (Exec*),
	// drop probability in (0, 1] (FeedbackDrop, ActuatorDrop),
	// quantization step (FeedbackQuantize), or rate-move bound
	// (ActuatorClamp, where 0 means stuck).
	Magnitude float64
	// Delay is the lag in sampling periods (FeedbackDelay, ActuatorDelay).
	Delay int
	// Seed drives the injector's private random source (probabilistic
	// kinds). It is mixed with the run seed, so replications with distinct
	// run seeds draw independent fault patterns while identical
	// (Spec, run seed) pairs reproduce bit-identically.
	Seed int64
}

// String renders the spec in a compact canonical form, stable across runs,
// suitable for hashing into scenario digests.
func (s Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s{proc=%d task=%d sub=%d window=[%g,%g) mag=%g delay=%d seed=%d}",
		s.Kind, s.Proc, s.Task, s.Sub, s.Start, s.Stop, s.Magnitude, s.Delay, s.Seed)
	return b.String()
}

// check validates the spec against a system shape. It is called by
// Engine.Compile with the spec's position for error context.
func (s Spec) check(i int, shape Shape) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("fault: spec %d (%s): %s", i, s.Kind, fmt.Sprintf(format, args...))
	}
	if s.Start < 0 {
		return fail("start %g must be >= 0", s.Start)
	}
	if s.Stop > 0 && s.Stop <= s.Start {
		return fail("window [%g, %g) is empty", s.Start, s.Stop)
	}
	checkProc := func() error {
		if s.Proc != All && (s.Proc < 0 || s.Proc >= shape.Procs) {
			return fail("processor %d out of range [0, %d)", s.Proc, shape.Procs)
		}
		return nil
	}
	checkTask := func() error {
		if s.Task != All && (s.Task < 0 || s.Task >= shape.Tasks) {
			return fail("task %d out of range [0, %d)", s.Task, shape.Tasks)
		}
		return nil
	}
	switch s.Kind {
	case ExecStep, ExecRamp:
		if s.Magnitude <= 0 {
			return fail("execution-time factor %g must be positive", s.Magnitude)
		}
		if s.Kind == ExecRamp && s.Stop <= 0 {
			return fail("a ramp needs an explicit stop period")
		}
		if err := checkProc(); err != nil {
			return err
		}
		if err := checkTask(); err != nil {
			return err
		}
		if s.Sub != All {
			if s.Task == All {
				return fail("subtask targeting requires an explicit task")
			}
			if s.Sub < 0 || s.Sub >= shape.SubsPerTask[s.Task] {
				return fail("subtask %d out of range [0, %d) for task %d", s.Sub, shape.SubsPerTask[s.Task], s.Task)
			}
		}
	case FeedbackDrop, FeedbackQuantize:
		if s.Magnitude <= 0 || s.Magnitude > 1 {
			return fail("magnitude %g must be in (0, 1]", s.Magnitude)
		}
		return checkProc()
	case FeedbackDelay:
		if s.Delay < 1 {
			return fail("delay %d must be >= 1 period", s.Delay)
		}
		return checkProc()
	case ActuatorDrop:
		if s.Magnitude <= 0 || s.Magnitude > 1 {
			return fail("magnitude %g must be in (0, 1]", s.Magnitude)
		}
		return checkTask()
	case ActuatorDelay:
		if s.Delay < 1 {
			return fail("delay %d must be >= 1 period", s.Delay)
		}
		return checkTask()
	case ActuatorClamp:
		if s.Magnitude < 0 {
			return fail("rate-move bound %g must be >= 0", s.Magnitude)
		}
		return checkTask()
	case ProcCrash:
		return checkProc()
	default:
		return fail("unknown kind %d", int(s.Kind))
	}
	return nil
}

// Format renders a scenario (a []Spec) as one semicolon-separated line —
// the canonical serialization hashed into sweep digests.
func Format(specs []Spec) string {
	if len(specs) == 0 {
		return "none"
	}
	parts := make([]string, len(specs))
	for i, s := range specs {
		parts[i] = s.String()
	}
	return strings.Join(parts, "; ")
}
