package fault

import "math"

// Shape describes the dimensions an Engine compiles against: the system
// topology, the run length, and the sampling period that converts between
// period indices and simulated time.
type Shape struct {
	Procs int
	Tasks int
	// SubsPerTask holds the subtask count of each task (len == Tasks).
	SubsPerTask []int
	// Periods is the run length in sampling periods.
	Periods int
	// SamplingPeriod is the length of one sampling period in time units.
	SamplingPeriod float64
}

func (s Shape) check() error {
	switch {
	case s.Procs <= 0:
		return errShape("procs")
	case s.Tasks <= 0 || len(s.SubsPerTask) != s.Tasks:
		return errShape("tasks")
	case s.Periods <= 0:
		return errShape("periods")
	case s.SamplingPeriod <= 0:
		return errShape("sampling period")
	}
	return nil
}

func errShape(what string) error {
	return fmtError("fault: invalid shape: bad " + what)
}

type fmtError string

func (e fmtError) Error() string { return string(e) }

// FeedbackCell is the pre-resolved fate of one (period, processor)
// utilization sample on its way to the controller. Src is the sampling
// period whose measurement is actually delivered: Src == k means the fresh
// sample, Src < k a delayed one, and Src < 0 a dropped one. Quant > 0
// additionally rounds the delivered value to the nearest multiple.
type FeedbackCell struct {
	Src   int
	Quant float64
}

// CommandCell is the pre-resolved fate of one (period, task) rate command
// on its way to the rate modulator. Drop discards the command (the task
// keeps its previous rate), Delay > 0 applies the command issued Delay
// periods ago instead, and Clamp >= 0 bounds the per-period rate change
// (Clamp == 0 is a stuck modulator); Clamp < 0 leaves it unbounded.
type CommandCell struct {
	Drop  bool
	Delay int
	Clamp float64
}

// execWindow is one compiled execution-time perturbation, in absolute time.
type execWindow struct {
	proc, task, sub int // All (-1) wildcards
	start, stop     float64
	mag             float64
	ramp            bool
}

// crashWindow is one compiled processor outage, in absolute time.
type crashWindow struct {
	proc        int // All (-1) wildcards
	start, stop float64
}

// Engine compiles a fault scenario ([]Spec) against a Shape into flat,
// pre-resolved schedules and answers the simulator's hot-path queries from
// them without allocating. All probabilistic outcomes are fixed at Compile
// time, so queries are pure table lookups whose results cannot depend on
// event order, worker count, or engine reuse.
//
// The zero value is a valid idle engine; Compile with an empty scenario
// keeps it idle and performs no allocation, preserving the simulator's
// 0-alloc no-fault steady state across Reset reuse.
type Engine struct {
	enabled bool
	shape   Shape

	// feedback and cmds are period-major flat tables
	// (k*Procs+p and k*Tasks+i); down mirrors feedback's layout.
	feedback []FeedbackCell
	cmds     []CommandCell
	down     []bool

	execs   []execWindow
	crashes []crashWindow

	injectors []Injector
}

// Compile resolves specs into the engine's schedules. runSeed is mixed into
// each probabilistic injector's seed so replications with distinct run
// seeds draw independent fault patterns. An empty scenario disables the
// engine without touching (or allocating) any table. Compile is safe to
// call repeatedly on the same engine: tables are grown once and reused.
func (e *Engine) Compile(specs []Spec, shape Shape, runSeed int64) error {
	e.enabled = false
	if len(specs) == 0 {
		return nil
	}
	if err := shape.check(); err != nil {
		return err
	}
	for i, sp := range specs {
		if err := sp.check(i, shape); err != nil {
			return err
		}
	}
	e.shape = shape
	e.resetTables()
	e.injectors = e.injectors[:0]
	for i, sp := range specs {
		inj := newInjector(sp, mixSeed(runSeed, int64(i), sp.Seed))
		inj.apply(e)
		e.injectors = append(e.injectors, inj)
	}
	e.enabled = true
	return nil
}

// Injectors exposes the compiled injectors of the current scenario, in
// spec order, for introspection and reporting. The returned slice aliases
// engine-owned memory and is invalidated by the next Compile.
func (e *Engine) Injectors() []Injector { return e.injectors }

// resetTables sizes the schedules to the current shape and restores the
// identity scenario (fresh samples, unmodified commands, all processors
// up), reusing prior capacity.
func (e *Engine) resetTables() {
	nf := e.shape.Periods * e.shape.Procs
	nc := e.shape.Periods * e.shape.Tasks
	e.feedback = growFeedback(e.feedback, nf)
	e.cmds = growCommands(e.cmds, nc)
	e.down = growBools(e.down, nf)
	for k := 0; k < e.shape.Periods; k++ {
		row := k * e.shape.Procs
		for p := 0; p < e.shape.Procs; p++ {
			e.feedback[row+p] = FeedbackCell{Src: k}
			e.down[row+p] = false
		}
		crow := k * e.shape.Tasks
		for i := 0; i < e.shape.Tasks; i++ {
			e.cmds[crow+i] = CommandCell{Clamp: -1}
		}
	}
	e.execs = e.execs[:0]
	e.crashes = e.crashes[:0]
}

// Enabled reports whether a non-empty scenario is compiled. The simulator
// guards every fault query behind it so the no-fault hot path stays a
// single branch.
//
//eucon:noalloc
func (e *Engine) Enabled() bool { return e != nil && e.enabled }

// Feedback returns the fate of processor p's sample at period k.
//
//eucon:noalloc
func (e *Engine) Feedback(k, p int) FeedbackCell {
	if !e.enabled || k < 0 || k >= e.shape.Periods || p < 0 || p >= e.shape.Procs {
		return FeedbackCell{Src: k}
	}
	return e.feedback[k*e.shape.Procs+p]
}

// Command returns the fate of task i's rate command at period k.
//
//eucon:noalloc
func (e *Engine) Command(k, i int) CommandCell {
	if !e.enabled || k < 0 || k >= e.shape.Periods || i < 0 || i >= e.shape.Tasks {
		return CommandCell{Clamp: -1}
	}
	return e.cmds[k*e.shape.Tasks+i]
}

// DownPeriod reports whether processor p is down at any point during
// sampling period k; the utilization monitor reports u = 1 for such
// periods.
//
//eucon:noalloc
func (e *Engine) DownPeriod(k, p int) bool {
	if !e.enabled || k < 0 || k >= e.shape.Periods || p < 0 || p >= e.shape.Procs {
		return false
	}
	return e.down[k*e.shape.Procs+p]
}

// Down reports whether processor p is crashed at time t; a down processor
// admits no job releases.
//
//eucon:noalloc
func (e *Engine) Down(p int, t float64) bool {
	if !e.enabled {
		return false
	}
	for i := range e.crashes {
		w := &e.crashes[i]
		if w.proc >= 0 && w.proc != p {
			continue
		}
		if t >= w.start && t < w.stop {
			return true
		}
	}
	return false
}

// ExecFactor returns the execution-time multiplier for subtask sub of task
// task running on processor proc at time t. Overlapping windows compose
// multiplicatively; with no active window the factor is exactly 1.
//
//eucon:noalloc
func (e *Engine) ExecFactor(proc, task, sub int, t float64) float64 {
	if !e.enabled {
		return 1
	}
	f := 1.0
	for i := range e.execs {
		w := &e.execs[i]
		if w.proc >= 0 && w.proc != proc {
			continue
		}
		if w.task >= 0 && w.task != task {
			continue
		}
		if w.sub >= 0 && w.sub != sub {
			continue
		}
		if t < w.start || t >= w.stop {
			continue
		}
		if w.ramp {
			f *= 1 + (w.mag-1)*(t-w.start)/(w.stop-w.start)
		} else {
			f *= w.mag
		}
	}
	return f
}

// stopOr converts a Spec stop (periods, <= 0 meaning end of run) to
// absolute time, bounded by the run length.
func (e *Engine) stopOr(stop float64) float64 {
	end := float64(e.shape.Periods) * e.shape.SamplingPeriod
	if stop <= 0 {
		return end
	}
	return math.Min(stop*e.shape.SamplingPeriod, end)
}

// activePeriod reports whether period k lies inside the spec window
// [start, stop) expressed in periods.
func activePeriod(k int, start, stop float64) bool {
	if float64(k) < start {
		return false
	}
	return stop <= 0 || float64(k) < stop
}

// overlapsPeriod reports whether the window [start, stop) in period units
// overlaps sampling period k, i.e. the span [k, k+1).
func overlapsPeriod(k int, start, stop float64) bool {
	if start >= float64(k+1) {
		return false
	}
	return stop <= 0 || stop > float64(k)
}

// mixSeed derives an injector's private seed from the run seed, the spec's
// position in the scenario, and its own seed, using a splitmix64-style
// finalizer so adjacent inputs land far apart.
func mixSeed(runSeed, index, specSeed int64) int64 {
	z := uint64(runSeed)*0x9e3779b97f4a7c15 + uint64(index)*0xbf58476d1ce4e5b9 + uint64(specSeed)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

func growFeedback(buf []FeedbackCell, n int) []FeedbackCell {
	if cap(buf) < n {
		return make([]FeedbackCell, n)
	}
	return buf[:n]
}

func growCommands(buf []CommandCell, n int) []CommandCell {
	if cap(buf) < n {
		return make([]CommandCell, n)
	}
	return buf[:n]
}

func growBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}
