package fault

import (
	"fmt"
	"sort"
	"strings"
)

// Scenario is a named, reusable fault scenario — the fault-side analogue of
// the experiment registry in internal/experiments.
type Scenario struct {
	// Name is the identifier used on the euconsim command line.
	Name string
	// Title describes what the scenario perturbs.
	Title string
	// Specs is the scenario's injector list, applied in order.
	Specs []Spec
}

// Scenarios returns the scenario catalog in presentation order: plant
// faults, feedback faults, actuator faults, crashes, then combinations.
// Windows are expressed in sampling periods against the standard 300-period
// experiment runs, with faults landing inside the [100, 300) measurement
// window so robustness metrics see them.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:  "exec-burst-2x",
			Title: "execution times double on every processor for periods [100, 200)",
			Specs: []Spec{{Kind: ExecStep, Proc: All, Task: All, Sub: All, Start: 100, Stop: 200, Magnitude: 2}},
		},
		{
			Name:  "exec-ramp-3x",
			Title: "execution times ramp to 3x over periods [100, 250) on every processor",
			Specs: []Spec{{Kind: ExecRamp, Proc: All, Task: All, Sub: All, Start: 100, Stop: 250, Magnitude: 3}},
		},
		{
			Name:  "feedback-loss-10pct",
			Title: "each utilization sample is lost with probability 0.1 for the whole run",
			Specs: []Spec{{Kind: FeedbackDrop, Proc: All, Magnitude: 0.1, Seed: 11}},
		},
		{
			Name:  "feedback-delay-2",
			Title: "every utilization sample reaches the controller 2 sampling periods late",
			Specs: []Spec{{Kind: FeedbackDelay, Proc: All, Delay: 2}},
		},
		{
			Name:  "feedback-quantize-5pct",
			Title: "utilization samples are quantized to steps of 0.05 before the controller",
			Specs: []Spec{{Kind: FeedbackQuantize, Proc: All, Magnitude: 0.05}},
		},
		{
			Name:  "actuator-drop-20pct",
			Title: "each rate command is dropped with probability 0.2 for the whole run",
			Specs: []Spec{{Kind: ActuatorDrop, Task: All, Magnitude: 0.2, Seed: 13}},
		},
		{
			Name:  "actuator-stuck-t1",
			Title: "task T1's rate modulator is stuck (rate frozen) for periods [120, 180)",
			Specs: []Spec{{Kind: ActuatorClamp, Task: 0, Start: 120, Stop: 180, Magnitude: 0}},
		},
		{
			Name:  "proc2-crash-recover",
			Title: "processor P2 crashes for periods [100, 140): no admissions, monitor pegged at u=1",
			Specs: []Spec{{Kind: ProcCrash, Proc: 1, Start: 100, Stop: 140}},
		},
		{
			Name:  "kitchen-sink",
			Title: "exec burst + lossy delayed feedback + dropped commands at once",
			Specs: []Spec{
				{Kind: ExecStep, Proc: All, Task: All, Sub: All, Start: 100, Stop: 200, Magnitude: 1.5},
				{Kind: FeedbackDrop, Proc: All, Magnitude: 0.05, Seed: 17},
				{Kind: FeedbackDelay, Proc: All, Delay: 1, Start: 150, Stop: 250},
				{Kind: ActuatorDrop, Task: All, Magnitude: 0.1, Seed: 19},
			},
		},
	}
}

// Lookup finds a scenario by name.
func Lookup(name string) (Scenario, bool) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// Names returns the sorted scenario names.
func Names() []string {
	all := Scenarios()
	names := make([]string, len(all))
	for i, sc := range all {
		names[i] = sc.Name
	}
	sort.Strings(names)
	return names
}

// Parse resolves a comma-separated list of scenario names into one combined
// injector list, concatenated in the order given.
func Parse(list string) ([]Spec, error) {
	var specs []Spec
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		sc, ok := Lookup(name)
		if !ok {
			return nil, fmt.Errorf("fault: unknown scenario %q (known: %s)", name, strings.Join(Names(), ", "))
		}
		specs = append(specs, sc.Specs...)
	}
	return specs, nil
}
