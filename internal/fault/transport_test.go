package fault

import (
	"testing"
	"time"
)

func TestTransportPlanDeterministicAndCalibrated(t *testing.T) {
	p := TransportPlan{DropProb: 0.2, DelayProb: 0.1, Delay: 5 * time.Millisecond, Seed: 42}
	const n = 20000
	drops, delays := 0, 0
	for i := uint64(0); i < n; i++ {
		d1, dl1 := p.Outcome(i)
		d2, dl2 := p.Outcome(i)
		if d1 != d2 || dl1 != dl2 {
			t.Fatalf("message %d: outcome not stable across calls", i)
		}
		if d1 {
			drops++
			if dl1 != 0 {
				t.Fatalf("message %d: dropped with nonzero delay", i)
			}
		} else if dl1 > 0 {
			if dl1 != p.Delay {
				t.Fatalf("message %d: delay %v, want %v", i, dl1, p.Delay)
			}
			delays++
		}
	}
	if f := float64(drops) / n; f < 0.18 || f > 0.22 {
		t.Errorf("drop fraction %.3f, want ≈ 0.2", f)
	}
	if f := float64(delays) / n; f < 0.06 || f > 0.11 {
		t.Errorf("delay fraction %.3f, want ≈ 0.1·(1−0.2) = 0.08", f)
	}

	// Distinct seeds give distinct patterns.
	q := p
	q.Seed = 43
	same := 0
	for i := uint64(0); i < 1000; i++ {
		a, _ := p.Outcome(i)
		b, _ := q.Outcome(i)
		if a == b {
			same++
		}
	}
	if same == 1000 {
		t.Error("seeds 42 and 43 produced identical drop patterns")
	}
}

func TestTransportPlanZeroIsTransparent(t *testing.T) {
	var p TransportPlan
	for i := uint64(0); i < 100; i++ {
		if drop, delay := p.Outcome(i); drop || delay != 0 {
			t.Fatalf("zero plan perturbed message %d", i)
		}
	}
	always := TransportPlan{DropProb: 1, Seed: 9}
	for i := uint64(0); i < 100; i++ {
		if drop, _ := always.Outcome(i); !drop {
			t.Fatalf("DropProb 1 passed message %d", i)
		}
	}
}
