package fault

import (
	"testing"
	"time"
)

func TestTransportPlanDeterministicAndCalibrated(t *testing.T) {
	p := TransportPlan{DropProb: 0.2, DelayProb: 0.1, Delay: 5 * time.Millisecond, Seed: 42}
	const n = 20000
	drops, delays := 0, 0
	for i := uint64(0); i < n; i++ {
		d1, dl1 := p.Outcome(i)
		d2, dl2 := p.Outcome(i)
		if d1 != d2 || dl1 != dl2 {
			t.Fatalf("message %d: outcome not stable across calls", i)
		}
		if d1 {
			drops++
			if dl1 != 0 {
				t.Fatalf("message %d: dropped with nonzero delay", i)
			}
		} else if dl1 > 0 {
			if dl1 != p.Delay {
				t.Fatalf("message %d: delay %v, want %v", i, dl1, p.Delay)
			}
			delays++
		}
	}
	if f := float64(drops) / n; f < 0.18 || f > 0.22 {
		t.Errorf("drop fraction %.3f, want ≈ 0.2", f)
	}
	if f := float64(delays) / n; f < 0.06 || f > 0.11 {
		t.Errorf("delay fraction %.3f, want ≈ 0.1·(1−0.2) = 0.08", f)
	}

	// Distinct seeds give distinct patterns.
	q := p
	q.Seed = 43
	same := 0
	for i := uint64(0); i < 1000; i++ {
		a, _ := p.Outcome(i)
		b, _ := q.Outcome(i)
		if a == b {
			same++
		}
	}
	if same == 1000 {
		t.Error("seeds 42 and 43 produced identical drop patterns")
	}
}

func TestTransportPlanFateOfCalibrated(t *testing.T) {
	p := TransportPlan{DropProb: 0.1, DupProb: 0.05, ReorderProb: 0.05, Seed: 7}
	const n = 20000
	drops, dups, reorders := 0, 0, 0
	for i := uint64(0); i < n; i++ {
		drop, delay, dup, reorder := p.FateOf(i)
		if drop {
			drops++
			if delay != 0 || dup || reorder {
				t.Fatalf("message %d: drop combined with another fate", i)
			}
			continue
		}
		if dup {
			dups++
		}
		if reorder {
			reorders++
		}
	}
	if f := float64(drops) / n; f < 0.08 || f > 0.12 {
		t.Errorf("drop fraction %.3f, want ≈ 0.1", f)
	}
	if f := float64(dups) / n; f < 0.03 || f > 0.07 {
		t.Errorf("dup fraction %.3f, want ≈ 0.05·0.9", f)
	}
	if f := float64(reorders) / n; f < 0.03 || f > 0.07 {
		t.Errorf("reorder fraction %.3f, want ≈ 0.05·0.9", f)
	}
}

func TestTransportPlanReseedDecorrelates(t *testing.T) {
	p := TransportPlan{DropProb: 0.5, Seed: 42}
	a, b := p.Reseed(1), p.Reseed(2)
	if a.Seed == p.Seed || b.Seed == p.Seed || a.Seed == b.Seed {
		t.Fatalf("Reseed produced colliding seeds: %d, %d, %d", p.Seed, a.Seed, b.Seed)
	}
	// Same salt must reproduce the same derived plan (per-peer plans are
	// rebuilt on rejoin and must match the pre-crash pattern).
	if again := p.Reseed(1); again.Seed != a.Seed {
		t.Fatalf("Reseed(1) not deterministic: %d vs %d", a.Seed, again.Seed)
	}
	sameAB, sameAP := 0, 0
	for i := uint64(0); i < 1000; i++ {
		da, _ := a.Outcome(i)
		db, _ := b.Outcome(i)
		dp, _ := p.Outcome(i)
		if da == db {
			sameAB++
		}
		if da == dp {
			sameAP++
		}
	}
	if sameAB > 650 || sameAP > 650 {
		t.Errorf("reseeded plans track the template (%d/%d of 1000 agree) — peers would lose frames in lockstep", sameAB, sameAP)
	}
}

func TestParseTransportPlan(t *testing.T) {
	p, err := ParseTransportPlan("drop=0.05,delayprob=0.3,delay=20ms,dup=0.01,reorder=0.02,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	want := TransportPlan{DropProb: 0.05, DelayProb: 0.3, Delay: 20 * time.Millisecond, DupProb: 0.01, ReorderProb: 0.02, Seed: 7}
	if p != want {
		t.Fatalf("parsed %+v, want %+v", p, want)
	}
	if p, err := ParseTransportPlan("  "); err != nil || !p.Zero() {
		t.Fatalf("blank spec = %+v, %v; want zero plan", p, err)
	}
	for _, bad := range []string{"drop", "drop=1.5", "loss=0.1", "delay=fast", "seed=x", "drop=-0.1"} {
		if _, err := ParseTransportPlan(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

func TestTransportPlanZeroIsTransparent(t *testing.T) {
	var p TransportPlan
	for i := uint64(0); i < 100; i++ {
		if drop, delay := p.Outcome(i); drop || delay != 0 {
			t.Fatalf("zero plan perturbed message %d", i)
		}
	}
	always := TransportPlan{DropProb: 1, Seed: 9}
	for i := uint64(0); i < 100; i++ {
		if drop, _ := always.Outcome(i); !drop {
			t.Fatalf("DropProb 1 passed message %d", i)
		}
	}
}
