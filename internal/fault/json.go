package fault

import (
	"encoding/json"
	"fmt"
)

// JSON serialization for fault scenarios. A []Spec round-trips through a
// compact JSON array whose kind field uses the canonical Kind strings, so
// chaos reproducers are runnable verbatim:
//
//	euconsim -faults '[{"kind":"proc-crash","proc":1,"start":100,"stop":140}]'
//
// Field defaults mirror the Spec zero values (target index 0, window
// [0, end), magnitude 0), and All (-1) is written literally.

// specJSON is the wire form of Spec.
type specJSON struct {
	Kind      string  `json:"kind"`
	Proc      int     `json:"proc,omitempty"`
	Task      int     `json:"task,omitempty"`
	Sub       int     `json:"sub,omitempty"`
	Start     float64 `json:"start,omitempty"`
	Stop      float64 `json:"stop,omitempty"`
	Magnitude float64 `json:"magnitude,omitempty"`
	Delay     int     `json:"delay,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
}

// kindFromString is the inverse of Kind.String.
func kindFromString(s string) (Kind, error) {
	for k := ExecStep; k <= ProcCrash; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("fault: unknown kind %q", s)
}

// MarshalJSON implements json.Marshaler with the canonical kind string.
func (s Spec) MarshalJSON() ([]byte, error) {
	return json.Marshal(specJSON{
		Kind:      s.Kind.String(),
		Proc:      s.Proc,
		Task:      s.Task,
		Sub:       s.Sub,
		Start:     s.Start,
		Stop:      s.Stop,
		Magnitude: s.Magnitude,
		Delay:     s.Delay,
		Seed:      s.Seed,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Spec) UnmarshalJSON(data []byte) error {
	var w specJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("fault: %w", err)
	}
	k, err := kindFromString(w.Kind)
	if err != nil {
		return err
	}
	*s = Spec{
		Kind:      k,
		Proc:      w.Proc,
		Task:      w.Task,
		Sub:       w.Sub,
		Start:     w.Start,
		Stop:      w.Stop,
		Magnitude: w.Magnitude,
		Delay:     w.Delay,
		Seed:      w.Seed,
	}
	return nil
}

// MarshalSpecs renders a scenario as a JSON array — the format euconsim
// -faults accepts and the chaos shrinker emits as a reproducer.
func MarshalSpecs(specs []Spec) ([]byte, error) {
	if specs == nil {
		specs = []Spec{}
	}
	return json.Marshal(specs)
}

// UnmarshalSpecs parses a JSON scenario array. Validation against a system
// shape still happens at Engine.Compile, exactly as for specs built in Go.
func UnmarshalSpecs(data []byte) ([]Spec, error) {
	var specs []Spec
	if err := json.Unmarshal(data, &specs); err != nil {
		return nil, fmt.Errorf("fault: parse scenario JSON: %w", err)
	}
	return specs, nil
}
