package fault

import (
	"fmt"
	"math/rand"
)

// Injector is the common interface of all fault injectors. Each injector
// is a small type compiled from one Spec; probabilistic injectors carry a
// private rand.Rand seeded from (run seed, scenario position, Spec.Seed)
// and never touch the global math/rand source. Injectors write their whole
// effect into the engine's schedules up front, driven off sampling-period
// indices and simulated time, so the run itself only reads tables.
type Injector interface {
	// Kind identifies the injector.
	Kind() Kind
	// Spec returns the pure-data description the injector was compiled
	// from.
	Spec() Spec

	// apply pre-resolves the injector's effect into the engine schedules.
	apply(e *Engine)
}

// newInjector compiles one spec (already validated) into its injector.
// seed is the fully mixed per-injector seed; deterministic kinds ignore it.
func newInjector(sp Spec, seed int64) Injector {
	switch sp.Kind {
	case ExecStep, ExecRamp:
		return &execInjector{spec: sp}
	case FeedbackDrop, FeedbackDelay, FeedbackQuantize:
		return &feedbackInjector{spec: sp, rng: rand.New(rand.NewSource(seed))}
	case ActuatorDrop, ActuatorDelay, ActuatorClamp:
		return &actuatorInjector{spec: sp, rng: rand.New(rand.NewSource(seed))}
	case ProcCrash:
		return &crashInjector{spec: sp}
	default: //eucon:exhaustive-default spec.check rejects unknown kinds before compilation
		panic(fmt.Sprintf("fault: newInjector on unvalidated kind %v", sp.Kind))
	}
}

// execInjector perturbs actual execution times: a step (burst) multiplies
// them by Magnitude inside the window, a ramp grows the factor linearly
// from 1 at Start to Magnitude at Stop. It generalizes the global ETF knob
// to per-processor, per-task, or per-subtask granularity.
type execInjector struct{ spec Spec }

func (in *execInjector) Kind() Kind { return in.spec.Kind }
func (in *execInjector) Spec() Spec { return in.spec }

func (in *execInjector) apply(e *Engine) {
	ts := e.shape.SamplingPeriod
	e.execs = append(e.execs, execWindow{
		proc:  in.spec.Proc,
		task:  in.spec.Task,
		sub:   in.spec.Sub,
		start: in.spec.Start * ts,
		stop:  e.stopOr(in.spec.Stop),
		mag:   in.spec.Magnitude,
		ramp:  in.spec.Kind == ExecRamp,
	})
}

// feedbackInjector corrupts the monitor-to-controller path. Drops are
// pre-resolved per (period, processor) in ascending order from the private
// rng; delays rewrite the delivered source period; quantization records
// the rounding step. Later injectors compose sequentially, with drops
// winning over delays.
type feedbackInjector struct {
	spec Spec
	rng  *rand.Rand
}

func (in *feedbackInjector) Kind() Kind { return in.spec.Kind }
func (in *feedbackInjector) Spec() Spec { return in.spec }

func (in *feedbackInjector) apply(e *Engine) {
	for k := 0; k < e.shape.Periods; k++ {
		if !activePeriod(k, in.spec.Start, in.spec.Stop) {
			continue
		}
		row := k * e.shape.Procs
		for p := 0; p < e.shape.Procs; p++ {
			if in.spec.Proc != All && in.spec.Proc != p {
				continue
			}
			cell := &e.feedback[row+p]
			switch in.spec.Kind {
			case FeedbackDrop:
				// Draw unconditionally so the pattern over periods is a
				// pure function of the injector seed, independent of what
				// earlier injectors did to the cell.
				if in.rng.Float64() < in.spec.Magnitude {
					cell.Src = -1
				}
			case FeedbackDelay:
				if cell.Src >= 0 { // a drop wins over a delay
					src := k - in.spec.Delay
					if src < 0 {
						src = -1 // nothing was ever measured that early
					}
					cell.Src = src
				}
			case FeedbackQuantize:
				cell.Quant = in.spec.Magnitude
			default: //eucon:exhaustive-default newInjector routes only the Feedback kinds here
			}
		}
	}
}

// actuatorInjector corrupts the controller-to-rate-modulator path. Drops
// are pre-resolved per (period, task); delays make period k apply the
// command issued Delay periods earlier; clamps bound the per-period rate
// move (a 0 bound is a stuck modulator).
type actuatorInjector struct {
	spec Spec
	rng  *rand.Rand
}

func (in *actuatorInjector) Kind() Kind { return in.spec.Kind }
func (in *actuatorInjector) Spec() Spec { return in.spec }

func (in *actuatorInjector) apply(e *Engine) {
	for k := 0; k < e.shape.Periods; k++ {
		if !activePeriod(k, in.spec.Start, in.spec.Stop) {
			continue
		}
		row := k * e.shape.Tasks
		for i := 0; i < e.shape.Tasks; i++ {
			if in.spec.Task != All && in.spec.Task != i {
				continue
			}
			cell := &e.cmds[row+i]
			switch in.spec.Kind {
			case ActuatorDrop:
				if in.rng.Float64() < in.spec.Magnitude {
					cell.Drop = true
				}
			case ActuatorDelay:
				cell.Delay = in.spec.Delay
			case ActuatorClamp:
				cell.Clamp = in.spec.Magnitude
			default: //eucon:exhaustive-default newInjector routes only the Actuator kinds here
			}
		}
	}
}

// crashInjector takes a processor down for the window: job releases on it
// are shed and its monitor reports u = 1 for every overlapped sampling
// period, modeling overload/crash followed by recovery.
type crashInjector struct{ spec Spec }

func (in *crashInjector) Kind() Kind { return in.spec.Kind }
func (in *crashInjector) Spec() Spec { return in.spec }

func (in *crashInjector) apply(e *Engine) {
	ts := e.shape.SamplingPeriod
	e.crashes = append(e.crashes, crashWindow{
		proc:  in.spec.Proc,
		start: in.spec.Start * ts,
		stop:  e.stopOr(in.spec.Stop),
	})
	for k := 0; k < e.shape.Periods; k++ {
		if !overlapsPeriod(k, in.spec.Start, in.spec.Stop) {
			continue
		}
		row := k * e.shape.Procs
		for p := 0; p < e.shape.Procs; p++ {
			if in.spec.Proc == All || in.spec.Proc == p {
				e.down[row+p] = true
			}
		}
	}
}
