package fault

import (
	"reflect"
	"strings"
	"testing"
)

// TestSpecsJSONRoundTrip pins that every Kind and every field survives the
// wire format, including All (-1) targets — the contract chaos reproducers
// depend on.
func TestSpecsJSONRoundTrip(t *testing.T) {
	specs := []Spec{
		{Kind: ExecStep, Proc: All, Task: All, Sub: All, Magnitude: 1.3},
		{Kind: ExecRamp, Proc: 1, Task: All, Sub: All, Start: 100, Stop: 180, Magnitude: 2.0},
		{Kind: FeedbackDrop, Proc: All, Start: 40, Stop: 120, Magnitude: 0.25, Seed: 9},
		{Kind: FeedbackDelay, Proc: 0, Start: 50, Stop: 90, Delay: 2},
		{Kind: FeedbackQuantize, Proc: 1, Start: 10, Stop: 60, Magnitude: 0.05},
		{Kind: ActuatorDrop, Task: All, Start: 30, Stop: 70, Magnitude: 0.1, Seed: 4},
		{Kind: ActuatorDelay, Task: 2, Start: 20, Stop: 80, Delay: 3},
		{Kind: ActuatorClamp, Task: 0, Start: 15, Stop: 45, Magnitude: 0.002},
		{Kind: ProcCrash, Proc: 1, Start: 100, Stop: 140},
	}
	js, err := MarshalSpecs(specs)
	if err != nil {
		t.Fatalf("MarshalSpecs: %v", err)
	}
	back, err := UnmarshalSpecs(js)
	if err != nil {
		t.Fatalf("UnmarshalSpecs(%s): %v", js, err)
	}
	if !reflect.DeepEqual(back, specs) {
		t.Fatalf("round trip diverged:\n  in:  %v\n  out: %v\n  json: %s", specs, back, js)
	}
}

// TestSpecsJSONKindStrings pins the wire kind names to the canonical Kind
// strings, so hand-written -faults arguments match the docs.
func TestSpecsJSONKindStrings(t *testing.T) {
	js, err := MarshalSpecs([]Spec{{Kind: ProcCrash, Proc: 1, Start: 100, Stop: 140}})
	if err != nil {
		t.Fatalf("MarshalSpecs: %v", err)
	}
	want := `[{"kind":"proc-crash","proc":1,"start":100,"stop":140}]`
	if string(js) != want {
		t.Fatalf("wire form = %s, want %s", js, want)
	}
}

// TestSpecsJSONErrors pins that unknown kinds and malformed JSON are
// rejected with fault-prefixed errors rather than producing zero specs.
func TestSpecsJSONErrors(t *testing.T) {
	if _, err := UnmarshalSpecs([]byte(`[{"kind":"warp-core-breach"}]`)); err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Fatalf("unknown kind not rejected: %v", err)
	}
	if _, err := UnmarshalSpecs([]byte(`{"kind":"proc-crash"}`)); err == nil {
		t.Fatal("non-array scenario JSON not rejected")
	}
	if _, err := UnmarshalSpecs([]byte(`[`)); err == nil {
		t.Fatal("truncated JSON not rejected")
	}
}

// TestMarshalSpecsEmpty pins that a nil scenario marshals to an empty
// array, not JSON null.
func TestMarshalSpecsEmpty(t *testing.T) {
	js, err := MarshalSpecs(nil)
	if err != nil {
		t.Fatalf("MarshalSpecs(nil): %v", err)
	}
	if string(js) != "[]" {
		t.Fatalf("MarshalSpecs(nil) = %s, want []", js)
	}
}
