package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// runExhaustive enforces closed-enum coverage: every switch, tagless
// switch, or if/else-if chain that dispatches over the constants of a
// //eucon:exhaustive type must either cover every declared constant or
// carry an //eucon:exhaustive-default annotation on its default clause or
// final else. The enum universe is collected module-wide (program.enums),
// so adding a degradation rung in internal/mpc fails lint at every
// unannotated partial switch in the tree, not just in the defining
// package. Switches with non-constant case expressions are out of scope,
// and an if-chain must contain at least two comparisons before it counts
// as a dispatch.
func runExhaustive(p *pass) {
	elseIf := make(map[*ast.IfStmt]bool)
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				if n.Tag != nil {
					checkTaggedSwitch(p, n)
				} else {
					checkTaglessSwitch(p, n)
				}
			case *ast.IfStmt:
				if !elseIf[n] {
					checkIfChain(p, n, elseIf)
				}
			}
			return true
		})
	}
}

// checkTaggedSwitch checks `switch x { case C: ... }` coverage.
func checkTaggedSwitch(p *pass, sw *ast.SwitchStmt) {
	enum := p.prog.enumOf(p.pkg.Info.TypeOf(sw.Tag))
	if enum == nil {
		return
	}
	covered := make([]bool, len(enum.values))
	hasDefault, defaultOK := false, false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			return
		}
		if cc.List == nil {
			hasDefault = true
			defaultOK = p.dirs.lineHas(cc.Pos(), dirExhaustiveDefault)
			continue
		}
		for _, e := range cc.List {
			tv, ok := p.pkg.Info.Types[e]
			if !ok || tv.Value == nil {
				return // non-constant case: out of scope
			}
			markCovered(enum, tv.Value, covered)
		}
	}
	reportMissing(p, sw.Pos(), "switch", "default", enum, covered, hasDefault, defaultOK)
}

// checkTaglessSwitch treats `switch { case x == C: ... }` as an if-chain.
func checkTaglessSwitch(p *pass, sw *ast.SwitchStmt) {
	var enum *enumInfo
	var covered []bool
	subject, terms := "", 0
	hasDefault, defaultOK := false, false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			return
		}
		if cc.List == nil {
			hasDefault = true
			defaultOK = p.dirs.lineHas(cc.Pos(), dirExhaustiveDefault)
			continue
		}
		for _, e := range cc.List {
			subj, vals, ok := eqTerms(p, e)
			if !ok {
				return
			}
			if enum == nil {
				enum = p.prog.enumOf(vals[0].typ)
				if enum == nil {
					return
				}
				subject = subj
				covered = make([]bool, len(enum.values))
			} else if subj != subject {
				return
			}
			for _, v := range vals {
				if p.prog.enumOf(v.typ) != enum {
					return
				}
				markCovered(enum, v.val, covered)
				terms++
			}
		}
	}
	if terms < 2 {
		return
	}
	reportMissing(p, sw.Pos(), "if-chain", "default", enum, covered, hasDefault, defaultOK)
}

// checkIfChain checks `if x == A { } else if x == B || x == C { } else { }`
// coverage. Else-if links are marked in elseIf so the outer walk does not
// re-analyze chain tails as fresh chains.
func checkIfChain(p *pass, ifs *ast.IfStmt, elseIf map[*ast.IfStmt]bool) {
	var enum *enumInfo
	var covered []bool
	subject, terms := "", 0
	hasElse, elseOK := false, false
	cur := ifs
	for {
		if cur.Init != nil {
			return
		}
		subj, vals, ok := eqTerms(p, cur.Cond)
		if !ok {
			return
		}
		if enum == nil {
			enum = p.prog.enumOf(vals[0].typ)
			if enum == nil {
				return
			}
			subject = subj
			covered = make([]bool, len(enum.values))
		} else if subj != subject {
			return
		}
		for _, v := range vals {
			if p.prog.enumOf(v.typ) != enum {
				return
			}
			markCovered(enum, v.val, covered)
			terms++
		}
		if next, ok := cur.Else.(*ast.IfStmt); ok {
			elseIf[next] = true
			cur = next
			continue
		}
		if blk, ok := cur.Else.(*ast.BlockStmt); ok {
			hasElse = true
			elseOK = p.dirs.lineHas(blk.Pos(), dirExhaustiveDefault)
		}
		break
	}
	if terms < 2 {
		return // a single guard is a condition, not a dispatch
	}
	reportMissing(p, ifs.Pos(), "if-chain", "else", enum, covered, hasElse, elseOK)
}

// reportMissing emits the exhaustiveness finding if constants are
// uncovered and the fall-through (if any) is unannotated.
func reportMissing(p *pass, pos token.Pos, form, fallthroughName string, enum *enumInfo, covered []bool, hasDefault, defaultOK bool) {
	if hasDefault && defaultOK {
		return
	}
	var missing []string
	for i, c := range covered {
		if !c {
			missing = append(missing, enum.values[i].names[0])
		}
	}
	if len(missing) == 0 {
		return
	}
	tname := types.TypeString(enum.tn.Type(), types.RelativeTo(p.pkg.Types))
	if hasDefault {
		p.reportf(pos, "%s over //eucon:exhaustive %s silently drops %s into an unannotated %s; add the cases or annotate the %s //eucon:exhaustive-default",
			form, tname, strings.Join(missing, ", "), fallthroughName, fallthroughName)
		return
	}
	p.reportf(pos, "%s over //eucon:exhaustive %s does not handle %s; add the cases or an //eucon:exhaustive-default %s",
		form, tname, strings.Join(missing, ", "), fallthroughName)
}

// markCovered marks every enum value equal to v as covered (aliased
// constants share one slot).
func markCovered(enum *enumInfo, v constant.Value, covered []bool) {
	for i := range enum.values {
		if enum.values[i].val.Kind() == v.Kind() && constant.Compare(enum.values[i].val, token.EQL, v) {
			covered[i] = true
		}
	}
}

// eqTerm is one `subject == constant` comparison.
type eqTerm struct {
	val constant.Value
	typ types.Type
}

// eqTerms decomposes a condition into `x == C` comparisons joined by ||:
// the subject's printed form, the constants compared against, and whether
// the whole condition has that shape.
func eqTerms(p *pass, cond ast.Expr) (string, []eqTerm, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return "", nil, false
	}
	switch be.Op {
	case token.LOR:
		ls, lt, ok := eqTerms(p, be.X)
		if !ok {
			return "", nil, false
		}
		rs, rt, ok := eqTerms(p, be.Y)
		if !ok || rs != ls {
			return "", nil, false
		}
		return ls, append(lt, rt...), true
	case token.EQL:
		x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
		xv := p.pkg.Info.Types[x]
		yv := p.pkg.Info.Types[y]
		switch {
		case xv.Value == nil && yv.Value != nil:
			return types.ExprString(x), []eqTerm{{yv.Value, p.pkg.Info.TypeOf(x)}}, true
		case yv.Value == nil && xv.Value != nil:
			return types.ExprString(y), []eqTerm{{xv.Value, p.pkg.Info.TypeOf(y)}}, true
		}
	}
	return "", nil, false
}
