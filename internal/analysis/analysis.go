// Package analysis implements euconlint: a stdlib-only static-analysis
// suite (go/ast + go/parser + go/token + go/types, no golang.org/x/tools)
// that enforces the repository's simulator invariants at analysis time
// instead of test time:
//
//   - determinism: no map-order iteration, wall-clock reads, or global
//     rand in simulation/controller packages (replayable runs are the
//     foundation of the sweep-digest reproducibility gate);
//   - noalloc: functions annotated //eucon:noalloc — the steady-state
//     event-loop handlers, heap operations, and pool recycle paths — must
//     be provably free of allocating constructs;
//   - floatsafety: no raw ==/!= between floating-point operands outside
//     tests and designated exact-comparison helpers;
//   - pooldiscipline: no use of a pooled event/job after it has been
//     recycled to its free list;
//   - aliasing: exported functions returning slices that alias
//     receiver/parameter-owned backing arrays must say so in their doc
//     comment;
//   - exhaustive: every switch or if-chain over a //eucon:exhaustive enum
//     (SolveOutcome, fault.Kind, qp.Status, the experiment kinds) must
//     cover all declared constants or carry //eucon:exhaustive-default;
//   - concurrency: goroutine lifetime (every go statement joinable via
//     WaitGroup or cancellable via a context.Context from the spawner's
//     signature), no locks copied by value, Lock/Unlock balance on every
//     linear path, and channel send-after-close / unguarded-blocking-send
//     heuristics.
//
// Since v2 the suite is interprocedural: a module-wide program index
// (program.go) built on the Loader cache resolves function declarations,
// interface implementors, and enum universes across packages, so the
// noalloc analyzer proves annotated hot paths allocation-free through the
// whole call graph (including dynamic dispatch, via class-hierarchy
// analysis over the load set) instead of stopping at the first
// unannotated callee, and the committed noalloc manifest
// (noalloc_manifest.golden) makes deleting any annotation a finding.
//
// Every analyzer consumes the same parsed, type-checked Package produced
// once by the Loader, reports file:line diagnostics, and supports a
// narrowly scoped annotation escape (see the //eucon: directives in
// directives.go) so intentional exceptions are visible in the code they
// exempt.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and documentation.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string

	run func(p *pass)
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		{
			Name: "determinism",
			Doc:  "no map-order iteration, time.Now, or global math/rand in simulation and controller packages",
			run:  runDeterminism,
		},
		{
			Name: "noalloc",
			Doc:  "//eucon:noalloc functions must be transitively allocation-free through the call graph (interface dispatch resolved over the load set); annotations must match the committed manifest",
			run:  runNoalloc,
		},
		{
			Name: "floatsafety",
			Doc:  "no ==/!= between floating-point operands outside tests and //eucon:float-exact helpers",
			run:  runFloatSafety,
		},
		{
			Name: "pooldiscipline",
			Doc:  "no use of a pooled event/job after it is recycled via putEvent/putJob",
			run:  runPoolDiscipline,
		},
		{
			Name: "aliasing",
			Doc:  "exported functions returning receiver/parameter-backed slices must document the aliasing",
			run:  runAliasing,
		},
		{
			Name: "exhaustive",
			Doc:  "switches and if-chains over //eucon:exhaustive enums must cover every constant or carry //eucon:exhaustive-default",
			run:  runExhaustive,
		},
		{
			Name: "concurrency",
			Doc:  "goroutines need a WaitGroup join or context cancellation, locks must not be copied and must be released on every path, channel sends must not follow a close or block past cancellation",
			run:  runConcurrency,
		},
	}
}

// pass carries the per-package state handed to one analyzer run.
type pass struct {
	pkg      *Package
	dirs     *directives
	analyzer *Analyzer

	// prog is the module-wide index shared by every pass of one run: the
	// function-declaration and interface-implementor maps behind the
	// interprocedural noalloc proof, and the //eucon:exhaustive enum
	// registry.
	prog *program

	out *[]Diagnostic
}

// reportf records a diagnostic at pos.
func (p *pass) reportf(pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, Diagnostic{
		Pos:      p.pkg.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Options tunes one analysis run.
type Options struct {
	// WithoutNoalloc suppresses the //eucon:noalloc annotation on the
	// named functions (types.Func FullName form), simulating its deletion.
	// The chain-deletion test uses this to prove that removing any
	// annotation on a benchmark-gated chain produces a finding.
	WithoutNoalloc []string
	// Analyzers restricts the run to the named analyzers; empty means all.
	Analyzers []string
}

// Run executes every analyzer over every package and returns the combined
// diagnostics in a total order (file, line, column, analyzer, message).
// Packages must come from one Loader so type objects are shared and the
// interprocedural indexes are sound.
func Run(pkgs []*Package) []Diagnostic {
	return RunWithOptions(pkgs, Options{})
}

// RunWithOptions is Run with per-run tuning.
func RunWithOptions(pkgs []*Package, opts Options) []Diagnostic {
	var out []Diagnostic
	prog := newProgram(pkgs, opts)
	analyzers := Analyzers()
	if len(opts.Analyzers) > 0 {
		want := make(map[string]bool, len(opts.Analyzers))
		for _, name := range opts.Analyzers {
			want[name] = true
		}
		kept := analyzers[:0]
		for _, a := range analyzers {
			if want[a.Name] {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}
	for _, pkg := range pkgs {
		dirs := pkg.directives()
		for _, a := range analyzers {
			a.run(&pass{
				pkg:      pkg,
				dirs:     dirs,
				analyzer: a,
				prog:     prog,
				out:      &out,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}

// inScope reports whether a module-relative package path is one of (or
// below) the listed package paths.
func inScope(rel string, scope []string) bool {
	for _, s := range scope {
		if rel == s || strings.HasPrefix(rel, s+"/") {
			return true
		}
	}
	return false
}

// calleeObject resolves the object a call expression invokes: a
// *types.Func for static function and method calls, a *types.Builtin for
// builtins, a *types.TypeName (via Uses) for conversions to named types,
// or nil for calls through function values.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		// Package-qualified identifier (pkg.Func or pkg.Type).
		return info.Uses[fun.Sel]
	}
	return nil
}

// isConversion reports whether the call expression is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// isFloat reports whether t's underlying type is a floating-point basic
// type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
