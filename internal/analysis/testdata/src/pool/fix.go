// Package fixpool is a lint fixture for the pooldiscipline analyzer. It
// defines its own pool shaped like the simulator's free lists (putEvent /
// putJob methods) and is loaded under a synthetic internal/sim path so the
// scoped analyzer fires. Uses after a recycle must be flagged; reassignment,
// terminated branches, and //eucon:pool-ok lines must stay silent.
package fixpool

type event struct{ at float64 }

type job struct{ id int }

type pool struct {
	events []*event
	jobs   []*job
}

func (p *pool) putEvent(e *event) { p.events = append(p.events, e) }

func (p *pool) putJob(j *job) { p.jobs = append(p.jobs, j) }

func (p *pool) newEvent() *event { return &event{} }

func useAfterFree(p *pool, e *event) float64 {
	p.putEvent(e)
	return e.at // want "pooldiscipline: e is used after being recycled via putEvent"
}

func useJobAfterFree(p *pool, j *job) int {
	p.putJob(j)
	return j.id // want "pooldiscipline: j is used after being recycled via putJob"
}

func branchLeak(p *pool, e *event, cond bool) float64 {
	if cond {
		p.putEvent(e)
	}
	return e.at // want "pooldiscipline: e is used after being recycled via putEvent"
}

func earlyReturn(p *pool, e *event, cond bool) float64 {
	if cond {
		p.putEvent(e)
		return 0
	}
	return e.at
}

func reassigned(p *pool, e *event) float64 { // ok: reassignment clears the recycled flag
	p.putEvent(e)
	e = p.newEvent()
	return e.at
}

func blessed(p *pool, e *event) float64 {
	p.putEvent(e)
	return e.at //eucon:pool-ok fixture: reading a field the pool never clears
}

var _ = useAfterFree
var _ = useJobAfterFree
var _ = branchLeak
var _ = earlyReturn
var _ = reassigned
var _ = blessed
