// Package fixconcurrency is a lint fixture for the concurrency analyzer:
// unjoined goroutines, copied locks, unbalanced lock paths, and undisciplined
// channel sends carry want comments; joined/cancellable goroutines, pointer
// receivers, defer-discharged locks, select-guarded sends, and annotated
// escapes must stay silent.
package fixconcurrency

import (
	"context"
	"sync"
)

func work() {}

// ---- goroutine lifetime ----

func leaks() {
	go work() // want "concurrency: goroutine has no join or cancellation.*leaks.*"
}

func joined() { // ok: the closure defers wg.Done
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func runner(wg *sync.WaitGroup) { defer wg.Done(); work() }

func passesWaitGroup() { // ok: the WaitGroup travels with the call
	var wg sync.WaitGroup
	wg.Add(1)
	go runner(&wg)
	wg.Wait()
}

func cancellable(ctx context.Context) { // ok: the spawned work references the spawner's context
	go func() {
		<-ctx.Done()
	}()
}

func annotatedGoroutine() {
	go work() //eucon:goroutine-ok fixture: process-lifetime worker
}

// ---- lock values ----

type guarded struct {
	mu sync.Mutex
	n  int
}

func copiesLock(g guarded) int { // want "concurrency: parameter g is passed by value and contains sync.Mutex; use a pointer so the lock state is shared"
	return g.n
}

func (g guarded) badRecv() int { // want "concurrency: receiver g is passed by value and contains sync.Mutex; use a pointer so the lock state is shared"
	return g.n
}

func (g *guarded) goodRecv() int { // ok: a pointer receiver shares the lock state
	return g.n
}

func snapshot(g guarded) int { //eucon:lock-ok fixture: deliberate value snapshot, never locked
	return g.n
}

// ---- lock flow ----

type store struct {
	mu   sync.Mutex
	data map[string]int
}

func (s *store) returnsLocked(k string) int {
	s.mu.Lock()
	if v, ok := s.data[k]; ok {
		return v // want "concurrency: return while holding s.mu .locked at concurrency/fix.go:\d+.; unlock on every path, use defer, or annotate //eucon:lock-ok"
	}
	s.mu.Unlock()
	return 0
}

func (s *store) balanced(k string) int { // ok: the defer discharges the lock on every path
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.data[k]
}

func (s *store) fallsOff(k string) {
	s.mu.Lock() // want "concurrency: s.mu locked here is still held when fallsOff ends; add the missing unlock, use defer, or annotate //eucon:lock-ok"
	s.data[k] = 1
}

func (s *store) lockForCaller() {
	s.mu.Lock() //eucon:lock-ok fixture: ownership transfers to the caller, which must unlock
}

type rwstore struct {
	mu   sync.RWMutex
	data map[string]int
}

func (s *rwstore) readLocked(k string) int {
	s.mu.RLock()
	if k == "" {
		return -1 // want "concurrency: return while holding s.mu .read lock. .locked at concurrency/fix.go:\d+.; unlock on every path, use defer, or annotate //eucon:lock-ok"
	}
	v := s.data[k]
	s.mu.RUnlock()
	return v
}

func (s *rwstore) readBalanced(k string) int { // ok: RLock discharged by a deferred RUnlock
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data[k]
}

// ---- channel discipline ----

func sendOnClosed(ch chan int) {
	close(ch)
	ch <- 1 // want "concurrency: send on closed channel ch .closed at concurrency/fix.go:\d+.; sends after close panic"
}

func unboundedSend(ctx context.Context, ch chan int) {
	ch <- 1 // want "concurrency: blocking send on ch in a function that takes a context.Context; guard it with select.*"
}

func guardedSend(ctx context.Context, ch chan int) { // ok: the select guards the send against cancellation
	select {
	case ch <- 1:
	case <-ctx.Done():
	}
}

func plainSend(ch chan int) { // ok: no context in the signature, no cancellation obligation
	ch <- 1
}

func annotatedSend(ctx context.Context, ch chan int) {
	ch <- 1 //eucon:send-ok fixture: the channel is buffered by contract
}

// ---- bounded-queue wake (lane.SendQueue's kick pattern) ----

// boundedQueue mirrors the shape of lane.SendQueue: enqueues wake the
// writer with a non-blocking select/default send, the writer drains under
// a ctx-guarded select. Both sides must stay silent.
type boundedQueue struct {
	mu   sync.Mutex
	kick chan struct{}
}

func (q *boundedQueue) wake(ctx context.Context) { // ok: default makes the kick non-blocking, so no cancellation obligation
	select {
	case q.kick <- struct{}{}:
	default:
	}
}

func (q *boundedQueue) drain(ctx context.Context) { // ok: the blocking receive is select-guarded by ctx.Done
	for {
		select {
		case <-q.kick:
		case <-ctx.Done():
			return
		}
	}
}
