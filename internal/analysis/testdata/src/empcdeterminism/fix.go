// Package fixempc pins the determinism scope extension to internal/empc
// (and, by the same scope list, internal/lane and internal/agent): the
// offline explicit-MPC compiler's region tables are committed as build
// digests, so wall-clock reads are findings unless annotated as
// operational. Loaded under a synthetic internal/empc path.
package fixempc

import "time"

func stamps() int64 {
	return time.Now().UnixNano() // want "determinism: time.Now couples simulation results to the wall clock.*//eucon:wallclock-ok"
}

func operational() time.Time { // ok: an annotated operational read stays silent
	return time.Now() //eucon:wallclock-ok fixture: operational read outside any digest
}

func pure(a, b float64) float64 { // ok: pure arithmetic is what the compiler should be made of
	return a*b + 1
}
