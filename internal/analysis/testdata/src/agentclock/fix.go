// Package fixclock pins the determinism scope over the membership layer's
// time discipline: agent and server code paces itself through the
// injectable Clock, so a bare time.Now in internal/agent is a finding
// unless annotated //eucon:wallclock-ok (the WallClock implementation and
// operational metrics are the annotated sites). Loaded under a synthetic
// internal/agent path.
package fixclock

import "time"

// livenessDeadline is the bug this fixture guards against: computing a
// membership deadline from the wall clock directly instead of the injected
// clock, which breaks skewed-clock harnesses and replay.
func livenessDeadline(timeout time.Duration) time.Time {
	return time.Now().Add(timeout) // want "determinism: time.Now couples simulation results to the wall clock.*//eucon:wallclock-ok"
}

// wallClock mirrors the production WallClock: the one place a raw read is
// the point, carrying the annotation.
type wallClock struct{}

func (wallClock) now() time.Time { // ok: the production time source itself is the annotated site
	return time.Now() //eucon:wallclock-ok fixture: WallClock IS the wall clock
}

// paced is the approved shape: time arrives through an injected clock
// value, never read ambiently.
func paced(now time.Time, interval time.Duration) time.Time { // ok: injected time keeps the path deterministic
	return now.Add(interval)
}
