// Package fixchaos is a lint fixture for the chaos package's determinism
// contract: the harness promises a campaign is a pure function of its
// seed, so a scenario generator touching the global math/rand source or
// the wall clock would make reported reproducers unreplayable. The package
// is loaded under a synthetic internal/chaos path so the scoped
// determinism analyzer fires.
package fixchaos

import (
	"math/rand"
	"time"
)

// clause is a stand-in for a generated fault clause.
type clause struct {
	kind  int
	start float64
}

// badGenerate seeds nothing: two runs of the same campaign would report
// different scenarios.
func badGenerate(n int) []clause {
	out := make([]clause, n)
	for i := range out {
		out[i].kind = rand.Intn(9)         // want "determinism: global math/rand draws from the shared unseeded source"
		out[i].start = rand.Float64() * 80 // want "determinism: global math/rand draws from the shared unseeded source"
	}
	return out
}

// badStamp couples a scenario to the wall clock.
func badStamp() int64 {
	return time.Now().UnixNano() // want "determinism: time.Now couples simulation results to the wall clock"
}

// goodGenerate uses an explicitly seeded source, as the real generator's
// splitmix64 state does.
func goodGenerate(seed int64, n int) []clause {
	rng := rand.New(rand.NewSource(seed))
	out := make([]clause, n)
	for i := range out {
		out[i].kind = rng.Intn(9)
		out[i].start = rng.Float64() * 80
	}
	return out
}
