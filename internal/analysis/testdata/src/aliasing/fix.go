// Package fixalias is a lint fixture for the aliasing analyzer: exported
// functions returning receiver- or parameter-backed slices must be flagged
// unless their doc comment documents the aliasing; fresh copies must stay
// silent.
package fixalias

// Buffer owns a series.
type Buffer struct {
	data []float64
}

// Data returns the raw series.
func (b *Buffer) Data() []float64 {
	return b.data // want "aliasing: exported Data returns a slice aliasing receiver-owned memory"
}

// Head returns the first n elements.
func Head(s []float64, n int) []float64 {
	return s[:n] // want "aliasing: exported Head returns a slice aliasing parameter-owned memory"
}

// View returns s[from:to). The result aliases s's backing array; copy it
// before mutating or retaining.
func View(s []float64, from, to int) []float64 { // ok: the doc comment documents the aliasing
	return s[from:to]
}

// Clone returns a fresh copy of s.
func Clone(s []float64) []float64 {
	out := make([]float64, len(s))
	copy(out, s)
	return out
}
