// Package fixexhaustive is a lint fixture for the exhaustive analyzer:
// partial switches and if-chains over a //eucon:exhaustive enum carry want
// comments; full coverage, alias coverage, annotated defaults, unregistered
// types, and single guards must stay silent.
package fixexhaustive

// Outcome is the fixture's closed enum.
//
//eucon:exhaustive
type Outcome int

const (
	OutOK Outcome = iota
	OutRelaxed
	OutHeld
	// OutHeldAlias shares OutHeld's value; aliases count as one case.
	OutHeldAlias = OutHeld
)

// Unregistered carries no //eucon:exhaustive contract.
type Unregistered int

const (
	UnA Unregistered = iota
	UnB
)

func full(o Outcome) int { // ok: every constant covered
	switch o {
	case OutOK:
		return 0
	case OutRelaxed:
		return 1
	case OutHeld:
		return 2
	}
	return -1
}

func missing(o Outcome) int {
	switch o { // want "exhaustive: switch over //eucon:exhaustive Outcome does not handle OutHeld; add the cases or an //eucon:exhaustive-default default"
	case OutOK:
		return 0
	case OutRelaxed:
		return 1
	}
	return -1
}

func silentDefault(o Outcome) int {
	switch o { // want "exhaustive: switch over //eucon:exhaustive Outcome silently drops OutHeld, OutRelaxed into an unannotated default; add the cases or annotate the default //eucon:exhaustive-default"
	case OutOK:
		return 0
	default:
		return -1
	}
}

func annotatedDefault(o Outcome) int { // ok: the default absorbs future outcomes deliberately
	switch o {
	case OutOK:
		return 0
	default: //eucon:exhaustive-default fixture: unknown outcomes degrade safely
		return -1
	}
}

func aliasCovers(o Outcome) int { // ok: OutHeldAlias fills the OutHeld slot
	switch o {
	case OutOK, OutRelaxed:
		return 0
	case OutHeldAlias:
		return 2
	}
	return -1
}

func chainMissing(o Outcome) int {
	if o == OutOK { // want "exhaustive: if-chain over //eucon:exhaustive Outcome does not handle OutHeld; add the cases or an //eucon:exhaustive-default else"
		return 0
	} else if o == OutRelaxed {
		return 1
	}
	return -1
}

func chainFull(o Outcome) int { // ok: the chain covers every constant via an || join
	if o == OutOK {
		return 0
	} else if o == OutRelaxed || o == OutHeld {
		return 1
	}
	return -1
}

func chainAnnotated(o Outcome) int { // ok: the final else is annotated
	if o == OutOK {
		return 0
	} else if o == OutRelaxed {
		return 1
	} else { //eucon:exhaustive-default fixture: held is the catch-all rung
		return -1
	}
}

func taglessMissing(o Outcome) int {
	switch { // want "exhaustive: if-chain over //eucon:exhaustive Outcome does not handle OutRelaxed; add the cases or an //eucon:exhaustive-default default"
	case o == OutOK:
		return 0
	case o == OutHeld:
		return 2
	}
	return -1
}

func unregistered(u Unregistered) int { // ok: Unregistered has no exhaustiveness contract
	switch u {
	case UnA:
		return 0
	}
	return -1
}

func singleGuard(o Outcome) int { // ok: one comparison is a condition, not a dispatch
	if o == OutOK {
		return 0
	}
	return -1
}
