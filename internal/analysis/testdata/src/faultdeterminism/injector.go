// Package fixinjector is a lint fixture for the fault package's
// determinism contract: an injector that draws from the global math/rand
// source (or the wall clock) would make fault patterns differ between
// runs, breaking the bit-identical sweep-digest guarantee. The package is
// loaded under a synthetic internal/fault path so the scoped determinism
// analyzer fires.
package fixinjector

import (
	"math/rand"
	"time"
)

// spec is a stand-in for fault.Spec.
type spec struct {
	Magnitude float64
	Seed      int64
}

// badInjector resolves drop decisions from the shared unseeded source: two
// compilations of the same scenario would disagree.
type badInjector struct {
	sp spec
}

func (in *badInjector) resolve(periods int) []bool {
	drops := make([]bool, periods)
	for k := range drops {
		drops[k] = rand.Float64() < in.sp.Magnitude // want "determinism: global math/rand draws from the shared unseeded source"
	}
	return drops
}

// badSeed derives an injector seed from the wall clock, so identical Specs
// produce different fault patterns on every run.
func badSeed() int64 {
	return time.Now().UnixNano() // want "determinism: time.Now couples simulation results to the wall clock"
}

// goodInjector is the allowlisted form the real package uses: a private
// rand.Rand seeded from the spec at compile time.
type goodInjector struct {
	sp  spec
	rng *rand.Rand
}

func newGoodInjector(sp spec) *goodInjector {
	return &goodInjector{sp: sp, rng: rand.New(rand.NewSource(sp.Seed))}
}

func (in *goodInjector) resolve(periods int) []bool {
	drops := make([]bool, periods)
	for k := range drops {
		drops[k] = in.rng.Float64() < in.sp.Magnitude
	}
	return drops
}

var _ = (&badInjector{}).resolve
var _ = badSeed
var _ = newGoodInjector
var _ = (&goodInjector{}).resolve
