// Package fixfloat is a lint fixture for the floatsafety analyzer: raw
// float ==/!= must be flagged; //eucon:float-exact functions and lines,
// integer comparisons, and constant folds must stay silent.
package fixfloat

func rawEq(a, b float64) bool {
	return a == b // want "floatsafety: == between float64 operands is exact"
}

func rawNeq(a, b float64) bool {
	return a != b // want "floatsafety: != between float64 operands is exact"
}

// exactFunc is the function-level annotation true negative.
//
//eucon:float-exact change detection on copied values
func exactFunc(a, b float64) bool {
	return a == b
}

func exactLine(a float64) bool {
	return a == 0 //eucon:float-exact exact-zero guard
}

func intEq(a, b int) bool { // ok: integer comparison is exact by nature
	return a == b
}

func constFold() bool {
	return 1.5 == 2.5
}

var _ = rawEq
var _ = rawNeq
var _ = exactFunc
var _ = exactLine
var _ = intEq
var _ = constFold
