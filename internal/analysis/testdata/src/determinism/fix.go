// Package fixdeterminism is a lint fixture: each construct the determinism
// analyzer must flag carries a want comment, and each allowlisted form must
// stay silent. The package is loaded under a synthetic internal/sim path so
// the scoped analyzer fires.
package fixdeterminism

import (
	"math/rand"
	"time"
)

func sumRates(m map[int]float64) float64 {
	var total float64
	for _, v := range m { // want "determinism: range over map map\[int\]float64 iterates in randomized order"
		total += v
	}
	return total
}

// sumRatesAllowed is the function-level allowlist true negative.
//
//eucon:order-independent summation is commutative
func sumRatesAllowed(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}

func countAllowed(m map[int]bool) int {
	n := 0
	//eucon:order-independent counting is commutative
	for range m {
		n++
	}
	return n
}

func wallClock() time.Time {
	return time.Now() // want "determinism: time.Now couples simulation results to the wall clock"
}

func globalRand() float64 {
	return rand.Float64() // want "determinism: global math/rand draws from the shared unseeded source"
}

func seededRand(seed int64) float64 { // ok: explicitly seeded sources are how Config.Seed works
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

var _ = sumRates
var _ = sumRatesAllowed
var _ = countAllowed
var _ = wallClock
var _ = globalRand
var _ = seededRand
