// Package fixneighbor is a lint fixture for the structured-solver scope:
// the determinism analyzer must flag a map-range over neighbor sets (the
// natural but order-randomized way to build adjacency for the localized
// controller and the fill-reducing ordering), and must stay silent for the
// sorted-slice form the real code uses. The package is loaded under a
// synthetic internal/mat path so the scoped analyzer fires.
package fixneighbor

import "sort"

// buildAdjacency is the flagged anti-pattern: neighbor sets held as maps
// and ranged directly, so the adjacency list order — and with it the
// fill-reducing permutation and every digest downstream — would vary from
// run to run.
func buildAdjacency(neighbors map[int]map[int]bool) [][]int {
	adj := make([][]int, len(neighbors))
	for p, set := range neighbors { // want "determinism: range over map map\[int\]map\[int\]bool iterates in randomized order"
		for q := range set { // want "determinism: range over map map\[int\]bool iterates in randomized order"
			adj[p] = append(adj[p], q)
		}
	}
	return adj
}

// buildAdjacencySorted is the true negative: the same construction with
// the iteration order pinned by sorting, as the real neighbor-scope code
// does.
func buildAdjacencySorted(neighbors map[int]map[int]bool) [][]int {
	adj := make([][]int, len(neighbors))
	for p := 0; p < len(neighbors); p++ {
		var qs []int
		//eucon:order-independent keys are collected then sorted
		for q := range neighbors[p] {
			qs = append(qs, q)
		}
		sort.Ints(qs)
		adj[p] = qs
	}
	return adj
}

var _ = buildAdjacency
var _ = buildAdjacencySorted
