// Package fixnoalloc is a lint fixture for the v2 interprocedural noalloc
// analyzer: allocating constructs and unprovable call chains inside
// //eucon:noalloc functions carry want comments; transitively clean
// chains, value-store composite literals, pure call cycles, resolved
// interface dispatch, and consumed //eucon:alloc-ok escapes must stay
// silent. Stale escapes are flagged at the escape itself (want-above).
package fixnoalloc

import (
	"fmt"
	"math"
)

type point struct{ x, y int }

//eucon:noalloc
func leaf(x int) int { return x + 1 }

//eucon:noalloc
func sink(v any) { _ = v }

// ---- direct allocating constructs ----

//eucon:noalloc
func appends(buf []int, n int) []int {
	return append(buf, n) // want "noalloc: //eucon:noalloc function appends: append may grow and allocate"
}

//eucon:noalloc
func makes(n int) {
	s := make([]int, n) // want "noalloc: .*make allocates"
	_ = s
}

//eucon:noalloc
func news() {
	p := new(int) // want "noalloc: .*new allocates"
	_ = p
}

//eucon:noalloc
func closure(n int) {
	f := func() int { return n } // want "noalloc: .*closure allocates"
	_ = f
}

//eucon:noalloc
func concat(a, b string) string {
	return a + b // want "noalloc: .*string concatenation allocates"
}

// ---- boxing ----

//eucon:noalloc
func boxReturn(n int) any {
	return n // want "noalloc: .*returning concrete int as interface .* allocates"
}

//eucon:noalloc
func boxAssign(n int) {
	var i any
	i = n // want "noalloc: .*assigning concrete int to interface .* allocates"
	_ = i
}

//eucon:noalloc
func boxArg(n int) {
	sink(n) // want "noalloc: .*passing concrete int as interface .* allocates"
}

// ---- composite literals: stores vs allocations ----

//eucon:noalloc
func storesStruct(n int) point { // ok: struct literals stored or returned by value are plain stores
	p := point{x: n}
	p = point{x: n, y: n}
	var q = point{y: n}
	_ = q
	return point{x: p.x}
}

//eucon:noalloc
func storesNestedArray(n int) [2]point { // ok: sub-literals of a stored array are part of the same store
	a := [2]point{{x: n}, {y: n}}
	return a
}

//eucon:noalloc
func sliceLit(n int) {
	s := []int{n} // want "noalloc: .*composite literal may allocate"
	_ = s
}

//eucon:noalloc
func addressedLit(n int) *point {
	return &point{x: n} // want "noalloc: .*composite literal may allocate"
}

func takesPoint(p point) int { return p.x }

//eucon:noalloc
func argLit(n int) int {
	return takesPoint(point{x: n}) // want "noalloc: .*composite literal may allocate"
}

// ---- transitive proof through unannotated callees ----

func cleanLeafHelper() int { return 42 }

func cleanMidHelper() int { return cleanLeafHelper() + 1 }

//eucon:noalloc
func callsProvablyClean() int { // ok: the proof descends through two unannotated levels
	return cleanMidHelper()
}

func allocLeafHelper(n int) []int { return make([]int, n) }

func allocMidHelper(n int) []int { return allocLeafHelper(n) }

//eucon:noalloc
func callsAllocChain(n int) {
	_ = allocMidHelper(n) // want "noalloc: .*calls .*allocMidHelper, which is not provably allocation-free: via .*allocLeafHelper .noalloc/fix.go:\d+.: make allocates at noalloc/fix.go:\d+"
}

//eucon:noalloc
func callsOutside(x int) string {
	return fmt.Sprintf("%d", x) // want "noalloc: .*calls fmt.Sprintf, which is not provably allocation-free: it is outside the analyzed source"
}

//eucon:noalloc
func callsFuncValue(f func() int) int {
	return f() // want "noalloc: .*dynamic call through a function value cannot be verified allocation-free"
}

// ---- recursion: coinductive cycle proofs ----

func pingHelper(n int) int {
	if n <= 0 {
		return 0
	}
	return pongHelper(n - 1)
}

func pongHelper(n int) int {
	if n <= 0 {
		return 1
	}
	return pingHelper(n - 1)
}

//eucon:noalloc
func callsPureCycle(n int) int { // ok: a pure mutual-recursion cycle proves clean coinductively
	return pingHelper(n)
}

func badPingHelper(n int) []int {
	if n <= 0 {
		return nil
	}
	return badPongHelper(n - 1)
}

func badPongHelper(n int) []int {
	if n <= 0 {
		return make([]int, 1)
	}
	return badPingHelper(n - 1)
}

//eucon:noalloc
func callsAllocCycle(n int) {
	_ = badPingHelper(n) // want "noalloc: .*calls .*badPingHelper, which is not provably allocation-free: via .*badPongHelper .noalloc/fix.go:\d+.: make allocates at noalloc/fix.go:\d+"
}

// ---- interface dispatch (class-hierarchy analysis) ----

type stepper interface{ step() int }

type allocStepper struct{}

func (allocStepper) step() int { s := make([]int, 8); return len(s) }

type cleanStepper struct{ n int }

func (c cleanStepper) step() int { return c.n }

//eucon:noalloc
func dispatchStep(s stepper) int {
	return s.step() // want "noalloc: .*dynamic call of step may dispatch to .*allocStepper.*step, which is not provably allocation-free: make allocates at noalloc/fix.go:\d+"
}

type resetter interface{ reset() }

type cleanResetter struct{ n int }

func (c *cleanResetter) reset() { c.n = 0 }

//eucon:noalloc
func dispatchReset(r resetter) { // ok: the only implementor in the load set is provably clean
	r.reset()
}

type vanisher interface{ vanish() }

//eucon:noalloc
func dispatchVanish(v vanisher) {
	v.vanish() // want "noalloc: .*dynamic call of interface method vanish has no implementors in the analyzed source and cannot be verified allocation-free"
}

// ---- allowed forms ----

//eucon:noalloc
func callsAnnotated(x int) int { // ok: annotated-to-annotated calls are trusted contracts
	return leaf(x)
}

//eucon:noalloc
func usesMath(x float64) float64 { // ok: the pure math package is on the safe-callee list
	return math.Sqrt(x)
}

//eucon:noalloc
func safeBuiltins(s []int) int { // ok: len and cap never allocate
	return len(s) + cap(s)
}

// ---- escapes: consumed, stale, and contract-less ----

//eucon:noalloc
func exempted(buf []int) []int { // ok: the escape is consumed by the append finding it suppresses
	return append(buf, 1) //eucon:alloc-ok fixture: caller pre-sizes the buffer
}

//eucon:noalloc
func staleEscape(x int) int {
	y := x + 1 //eucon:alloc-ok fixture: nothing on this line allocates anymore
	// want-above "noalloc: stale //eucon:alloc-ok: the escape suppresses nothing .*; remove it"
	return y
}

func contractlessEscape(n int) []int {
	return make([]int, n) //eucon:alloc-ok fixture: no //eucon:noalloc contract owns this escape
	// want-above "noalloc: stale //eucon:alloc-ok: the escape suppresses nothing .*; remove it"
}
