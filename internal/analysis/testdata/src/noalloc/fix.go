// Package fixnoalloc is a lint fixture for the noalloc analyzer: every
// allocating construct inside a //eucon:noalloc function carries a want
// comment; annotated-to-annotated calls, safe builtins, math, and
// //eucon:alloc-ok lines must stay silent.
package fixnoalloc

import "math"

type point struct{ x, y int }

func helper() int { return 0 }

//eucon:noalloc
func leaf(x int) int { return x + 1 }

//eucon:noalloc
func sink(v any) { _ = v }

//eucon:noalloc
func appends(buf []int, n int) []int {
	return append(buf, n) // want "noalloc: //eucon:noalloc function appends: append may grow and allocate"
}

//eucon:noalloc
func makes(n int) {
	s := make([]int, n) // want "noalloc: .*make allocates"
	_ = s
}

//eucon:noalloc
func news() {
	p := new(int) // want "noalloc: .*new allocates"
	_ = p
}

//eucon:noalloc
func composite(n int) {
	v := point{x: n} // want "noalloc: .*composite literal may allocate"
	_ = v
}

//eucon:noalloc
func closure(n int) {
	f := func() int { return n } // want "noalloc: .*closure allocates"
	_ = f
}

//eucon:noalloc
func concat(a, b string) string {
	return a + b // want "noalloc: .*string concatenation allocates"
}

//eucon:noalloc
func boxReturn(n int) any {
	return n // want "noalloc: .*returning concrete int as interface .* allocates"
}

//eucon:noalloc
func boxAssign(n int) {
	var i any
	i = n // want "noalloc: .*assigning concrete int to interface .* allocates"
	_ = i
}

//eucon:noalloc
func boxArg(n int) {
	sink(n) // want "noalloc: .*passing concrete int as interface .* allocates"
}

//eucon:noalloc
func callsUnannotated() int {
	return helper() // want "noalloc: .*calls .*helper, which is not annotated //eucon:noalloc"
}

//eucon:noalloc
func callsAnnotated(x int) int {
	return leaf(x)
}

//eucon:noalloc
func usesMath(x float64) float64 {
	return math.Sqrt(x)
}

//eucon:noalloc
func safeBuiltins(s []int) int {
	return len(s) + cap(s)
}

//eucon:noalloc
func exempted(buf []int) []int {
	return append(buf, 1) //eucon:alloc-ok fixture: caller pre-sizes the buffer
}

var _ = appends
var _ = makes
var _ = news
var _ = composite
var _ = closure
var _ = concat
var _ = boxReturn
var _ = boxAssign
var _ = boxArg
var _ = callsUnannotated
var _ = callsAnnotated
var _ = usesMath
var _ = safeBuiltins
var _ = exempted
