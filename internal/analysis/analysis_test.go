package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtures maps each testdata/src fixture directory to the synthetic import
// path it is loaded under. Scoped analyzers (determinism, pooldiscipline)
// key off the module-relative path, so their fixtures mount under
// internal/sim.
var fixtures = map[string]string{
	"determinism":      "internal/sim/fixdeterminism",
	"neighborscope":    "internal/mat/fixneighbor",
	"faultdeterminism": "internal/fault/fixinjector",
	"chaosdeterminism": "internal/chaos/fixchaos",
	"noalloc":          "fixnoalloc",
	"floatsafety":      "fixfloat",
	"pool":             "internal/sim/fixpool",
	"aliasing":         "fixalias",
}

var wantRe = regexp.MustCompile(`^// want "(.*)"$`)

// wantComment is one golden diagnostic expectation parsed from a fixture.
type wantComment struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// TestFixtures loads every fixture package, runs the full suite on it, and
// matches the diagnostics against the fixture's want comments: every want
// must be produced on its line, and nothing else may be reported.
func TestFixtures(t *testing.T) {
	loader := newTestLoader(t)
	for dir, rel := range fixtures {
		t.Run(dir, func(t *testing.T) {
			pkg, err := loader.LoadDir(filepath.Join("testdata", "src", dir), loader.ModulePath+"/"+rel)
			if err != nil {
				t.Fatalf("load fixture: %v", err)
			}
			wants := parseWants(t, pkg)
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no want comments", dir)
			}
			for _, d := range Run([]*Package{pkg}) {
				if !consumeWant(wants, d) {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: want %q, got no matching diagnostic", w.file, w.line, w.re)
				}
			}
		})
	}
}

// TestExitsNonzeroSemantics pins the contract the driver exposes: a fixture
// package must yield diagnostics (euconlint exits 1 on it) and the count
// must cover every analyzer at least once across the suite.
func TestExitsNonzeroSemantics(t *testing.T) {
	loader := newTestLoader(t)
	seen := make(map[string]int)
	for dir, rel := range fixtures {
		pkg, err := loader.LoadDir(filepath.Join("testdata", "src", dir), loader.ModulePath+"/"+rel)
		if err != nil {
			t.Fatalf("load fixture %s: %v", dir, err)
		}
		diags := Run([]*Package{pkg})
		if len(diags) == 0 {
			t.Errorf("fixture %s: no diagnostics; euconlint would exit 0 on it", dir)
		}
		for _, d := range diags {
			seen[d.Analyzer]++
		}
	}
	for _, a := range Analyzers() {
		if seen[a.Name] == 0 {
			t.Errorf("analyzer %s produced no diagnostic on any fixture", a.Name)
		}
	}
}

// TestRealTreeClean is the self-application gate: the suite must report
// nothing on the repository itself, so `euconlint ./...` exits 0 and
// scripts/check.sh can hard-fail on any regression.
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	loader := newTestLoader(t)
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; module walk is broken", len(pkgs))
	}
	for _, d := range Run(pkgs) {
		t.Errorf("real tree not clean: %s", d)
	}
}

// newTestLoader builds a Loader rooted at the repository (two levels above
// internal/analysis).
func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	loader, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("new loader: %v", err)
	}
	return loader
}

// parseWants extracts the // want "..." expectations from a fixture.
func parseWants(t *testing.T, pkg *Package) []*wantComment {
	t.Helper()
	var wants []*wantComment
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "// want") {
						t.Fatalf("malformed want comment: %s", c.Text)
					}
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Slash)
				wants = append(wants, &wantComment{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

// consumeWant marks the first unhit want matching the diagnostic's file,
// line, and "analyzer: message" text.
func consumeWant(wants []*wantComment, d Diagnostic) bool {
	text := fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
	for _, w := range wants {
		if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(text) {
			w.hit = true
			return true
		}
	}
	return false
}

// TestDirectiveName pins the directive grammar: no space after //, name up
// to the first space, justification ignored.
func TestDirectiveName(t *testing.T) {
	cases := []struct {
		text string
		name string
		ok   bool
	}{
		{"//eucon:noalloc", "noalloc", true},
		{"//eucon:alloc-ok amortized growth", "alloc-ok", true},
		{"// eucon:noalloc", "", false},
		{"//eucon:", "", false},
		{"// plain comment", "", false},
	}
	for _, c := range cases {
		name, ok := directiveName(c.text)
		if name != c.name || ok != c.ok {
			t.Errorf("directiveName(%q) = %q, %v; want %q, %v", c.text, name, ok, c.name, c.ok)
		}
	}
}

// TestAnalyzersHaveDocs keeps the -list output and usage screen meaningful.
func TestAnalyzersHaveDocs(t *testing.T) {
	names := make(map[string]bool)
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || a.run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %s", a.Name)
		}
		names[a.Name] = true
	}
	if len(names) != 5 {
		t.Errorf("expected 5 analyzers, got %d", len(names))
	}
}
