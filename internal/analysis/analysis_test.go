package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// fixtures maps each testdata/src fixture directory to the synthetic import
// path it is loaded under. Scoped analyzers (determinism, pooldiscipline)
// key off the module-relative path, so their fixtures mount under
// internal/sim (or internal/empc for the determinism-scope extension).
var fixtures = map[string]string{
	"determinism":      "internal/sim/fixdeterminism",
	"neighborscope":    "internal/mat/fixneighbor",
	"faultdeterminism": "internal/fault/fixinjector",
	"chaosdeterminism": "internal/chaos/fixchaos",
	"empcdeterminism":  "internal/empc/fixempc",
	"agentclock":       "internal/agent/fixclock",
	"noalloc":          "fixnoalloc",
	"floatsafety":      "fixfloat",
	"pool":             "internal/sim/fixpool",
	"aliasing":         "fixalias",
	"exhaustive":       "fixexhaustive",
	"concurrency":      "fixconcurrency",
}

// want expects a diagnostic on the comment's own line; want-above expects
// it on the previous line (for diagnostics anchored at a comment, like the
// stale //eucon:alloc-ok check, where a same-line want cannot be written).
var (
	wantRe      = regexp.MustCompile(`^// want "(.*)"$`)
	wantAboveRe = regexp.MustCompile(`^// want-above "(.*)"$`)
)

// wantComment is one golden diagnostic expectation parsed from a fixture.
type wantComment struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// TestFixtures loads every fixture package, runs the full suite on it, and
// matches the diagnostics against the fixture's want comments: every want
// must be produced on its line, and nothing else may be reported.
func TestFixtures(t *testing.T) {
	loader := newTestLoader(t)
	for dir, rel := range fixtures {
		t.Run(dir, func(t *testing.T) {
			pkg, err := loader.LoadDir(filepath.Join("testdata", "src", dir), loader.ModulePath+"/"+rel)
			if err != nil {
				t.Fatalf("load fixture: %v", err)
			}
			wants := parseWants(t, pkg)
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no want comments", dir)
			}
			for _, d := range Run([]*Package{pkg}) {
				if !consumeWant(wants, d) {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: want %q, got no matching diagnostic", w.file, w.line, w.re)
				}
			}
		})
	}
}

// TestExitsNonzeroSemantics pins the contract the driver exposes: a fixture
// package must yield diagnostics (euconlint exits 1 on it) and the count
// must cover every analyzer at least once across the suite.
func TestExitsNonzeroSemantics(t *testing.T) {
	loader := newTestLoader(t)
	seen := make(map[string]int)
	for dir, rel := range fixtures {
		pkg, err := loader.LoadDir(filepath.Join("testdata", "src", dir), loader.ModulePath+"/"+rel)
		if err != nil {
			t.Fatalf("load fixture %s: %v", dir, err)
		}
		diags := Run([]*Package{pkg})
		if len(diags) == 0 {
			t.Errorf("fixture %s: no diagnostics; euconlint would exit 0 on it", dir)
		}
		for _, d := range diags {
			seen[d.Analyzer]++
		}
	}
	for _, a := range Analyzers() {
		if seen[a.Name] == 0 {
			t.Errorf("analyzer %s produced no diagnostic on any fixture", a.Name)
		}
	}
}

// TestRealTreeClean is the self-application gate: the suite must report
// nothing on the repository itself, so `euconlint ./...` exits 0 and
// scripts/check.sh can hard-fail on any regression.
func TestRealTreeClean(t *testing.T) {
	pkgs := loadModule(t)
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; module walk is broken", len(pkgs))
	}
	for _, d := range Run(pkgs) {
		t.Errorf("real tree not clean: %s", d)
	}
}

// The full-module load set is shared by every whole-tree test in this
// file: loading and type-checking 30+ packages from source takes seconds,
// and Run never mutates the packages it analyzes.
var (
	moduleOnce sync.Once
	modulePkgs []*Package
	moduleErr  error
)

// loadModule returns the memoized full-module load set, skipping in -short
// mode.
func loadModule(t *testing.T) []*Package {
	t.Helper()
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	moduleOnce.Do(func() {
		loader, err := NewLoader(filepath.Join("..", ".."))
		if err != nil {
			moduleErr = err
			return
		}
		modulePkgs, moduleErr = loader.LoadAll()
	})
	if moduleErr != nil {
		t.Fatalf("load module: %v", moduleErr)
	}
	return modulePkgs
}

// TestLoadAllCoversCmd pins that the full-module walk analyzes the command
// packages too, so `euconlint ./...` (and check.sh) covers cmd/ and the
// interprocedural indexes see every implementor in the repository.
func TestLoadAllCoversCmd(t *testing.T) {
	pkgs := loadModule(t)
	got := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		got[p.Rel] = true
	}
	for _, want := range []string{"cmd/euconlint", "cmd/euconsim", "internal/sim", "internal/analysis"} {
		if !got[want] {
			t.Errorf("LoadAll did not load %s", want)
		}
	}
}

// TestNoallocManifestFresh is the freshness gate for the committed noalloc
// manifest: the embedded golden must match what the live tree generates.
func TestNoallocManifestFresh(t *testing.T) {
	pkgs := loadModule(t)
	if got := WriteManifest(pkgs); got != noallocManifestData {
		t.Errorf("noalloc_manifest.golden is stale; regenerate with: go run ./cmd/euconlint -write-noalloc-manifest")
	}
}

// TestChainDeletionProducesFinding suppresses each //eucon:noalloc
// annotation on the benchmark-gated chains in turn and asserts the suite
// reports the loss: no single annotation on the steady-state or DEUCON
// hot path can be deleted without failing lint.
func TestChainDeletionProducesFinding(t *testing.T) {
	pkgs := loadModule(t)
	members := ChainFunctions(pkgs)
	if len(members) < 10 {
		t.Fatalf("chain walk found only %d annotated functions: %v", len(members), members)
	}
	for _, root := range []string{".handleRelease", ".handleCompletion", ".handleSampling", ".stepLocal"} {
		found := false
		for _, m := range members {
			if strings.HasSuffix(m, root) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("chain members do not include a %s root: %v", root, members)
		}
	}
	for _, name := range members {
		diags := RunWithOptions(pkgs, Options{WithoutNoalloc: []string{name}, Analyzers: []string{"noalloc"}})
		if len(diags) == 0 {
			t.Errorf("deleting //eucon:noalloc on %s produced no finding", name)
		}
	}
}

// TestDiagnosticOrderDeterministic pins the total diagnostic order behind
// the text and -json outputs: the same diagnostics in the same order
// regardless of package order, and sorted by (file, line, col, analyzer,
// message).
func TestDiagnosticOrderDeterministic(t *testing.T) {
	loader := newTestLoader(t)
	a, err := loader.LoadDir(filepath.Join("testdata", "src", "noalloc"), loader.ModulePath+"/fixnoalloc")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	b, err := loader.LoadDir(filepath.Join("testdata", "src", "concurrency"), loader.ModulePath+"/fixconcurrency")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	render := func(diags []Diagnostic) []string {
		out := make([]string, len(diags))
		for i, d := range diags {
			out[i] = d.String()
		}
		return out
	}
	fwd := Run([]*Package{a, b})
	rev := render(Run([]*Package{b, a}))
	if len(fwd) == 0 {
		t.Fatal("fixture run produced no diagnostics")
	}
	if strings.Join(render(fwd), "\n") != strings.Join(rev, "\n") {
		t.Errorf("diagnostic order depends on package order:\n%v\nvs\n%v", render(fwd), rev)
	}
	inOrder := sort.SliceIsSorted(fwd, func(i, j int) bool {
		a, b := fwd[i], fwd[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	if !inOrder {
		t.Errorf("diagnostics not in (file, line, col, analyzer, message) order:\n%s", strings.Join(render(fwd), "\n"))
	}
}

// analyzerFixtures maps each analyzer to the fixture directories that
// exercise it, for the coverage meta-test.
var analyzerFixtures = map[string][]string{
	"determinism":    {"determinism", "neighborscope", "faultdeterminism", "chaosdeterminism", "empcdeterminism", "agentclock"},
	"noalloc":        {"noalloc"},
	"floatsafety":    {"floatsafety"},
	"pooldiscipline": {"pool"},
	"aliasing":       {"aliasing"},
	"exhaustive":     {"exhaustive"},
	"concurrency":    {"concurrency"},
}

var okRe = regexp.MustCompile(`^// ok:`)

// TestAnalyzerFixtureCoverage is the meta-test behind the fixture suite:
// every analyzer must have at least one positive fixture line (a produced
// diagnostic) and at least one annotated negative (a line marked // ok:
// that stays silent), so both directions of each rule are pinned.
func TestAnalyzerFixtureCoverage(t *testing.T) {
	loader := newTestLoader(t)
	for _, a := range Analyzers() {
		dirs, ok := analyzerFixtures[a.Name]
		if !ok {
			t.Errorf("analyzer %s has no fixture mapping in analyzerFixtures", a.Name)
			continue
		}
		diagCount, okCount := 0, 0
		for _, dir := range dirs {
			pkg, err := loader.LoadDir(filepath.Join("testdata", "src", dir), loader.ModulePath+"/"+fixtures[dir])
			if err != nil {
				t.Fatalf("load fixture %s: %v", dir, err)
			}
			okLines := make(map[string]bool)
			for _, f := range pkg.Files {
				for _, cg := range f.Comments {
					for _, c := range cg.List {
						if okRe.MatchString(c.Text) {
							pos := pkg.Fset.Position(c.Slash)
							okLines[lineKey(pos.Filename, pos.Line)] = true
							okCount++
						}
					}
				}
			}
			for _, d := range RunWithOptions([]*Package{pkg}, Options{Analyzers: []string{a.Name}}) {
				diagCount++
				if okLines[lineKey(d.Pos.Filename, d.Pos.Line)] {
					t.Errorf("%s: diagnostic on a // ok: line: %s", a.Name, d)
				}
			}
		}
		if diagCount == 0 {
			t.Errorf("analyzer %s has no positive fixture diagnostic", a.Name)
		}
		if okCount == 0 {
			t.Errorf("analyzer %s has no // ok: annotated-negative fixture line", a.Name)
		}
	}
}

// newTestLoader builds a Loader rooted at the repository (two levels above
// internal/analysis).
func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	loader, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("new loader: %v", err)
	}
	return loader
}

// parseWants extracts the // want "..." expectations from a fixture.
func parseWants(t *testing.T, pkg *Package) []*wantComment {
	t.Helper()
	var wants []*wantComment
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				above := false
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					if m = wantAboveRe.FindStringSubmatch(c.Text); m != nil {
						above = true
					} else if strings.Contains(c.Text, "// want") {
						t.Fatalf("malformed want comment: %s", c.Text)
					} else {
						continue
					}
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Slash)
				line := pos.Line
				if above {
					line--
				}
				wants = append(wants, &wantComment{file: pos.Filename, line: line, re: re})
			}
		}
	}
	return wants
}

// consumeWant marks the first unhit want matching the diagnostic's file,
// line, and "analyzer: message" text.
func consumeWant(wants []*wantComment, d Diagnostic) bool {
	text := fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
	for _, w := range wants {
		if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(text) {
			w.hit = true
			return true
		}
	}
	return false
}

// TestDirectiveName pins the directive grammar: no space after //, name up
// to the first space, justification ignored.
func TestDirectiveName(t *testing.T) {
	cases := []struct {
		text string
		name string
		ok   bool
	}{
		{"//eucon:noalloc", "noalloc", true},
		{"//eucon:alloc-ok amortized growth", "alloc-ok", true},
		{"// eucon:noalloc", "", false},
		{"//eucon:", "", false},
		{"// plain comment", "", false},
	}
	for _, c := range cases {
		name, ok := directiveName(c.text)
		if name != c.name || ok != c.ok {
			t.Errorf("directiveName(%q) = %q, %v; want %q, %v", c.text, name, ok, c.name, c.ok)
		}
	}
}

// TestAnalyzersHaveDocs keeps the -list output and usage screen meaningful.
func TestAnalyzersHaveDocs(t *testing.T) {
	names := make(map[string]bool)
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || a.run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %s", a.Name)
		}
		names[a.Name] = true
	}
	if len(names) != 7 {
		t.Errorf("expected 7 analyzers, got %d", len(names))
	}
}
