package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// program is the module-wide index built once per Run and shared by every
// pass: the function-declaration index the interprocedural noalloc proof
// walks, the interface-implementor index that resolves dynamic dispatch
// over the concrete types in the load set (class-hierarchy analysis), and
// the //eucon:exhaustive enum registry. It is what turns the per-function
// syntactic checks of euconlint v1 into cross-package dataflow analyses.
type program struct {
	pkgs []*Package

	// decls maps every function and method object declared in the load set
	// to its declaration site, so a proof can descend into callee bodies
	// across package boundaries.
	decls map[*types.Func]declSite

	// annotated is the //eucon:noalloc contract set (minus any test
	// suppressions from Options.WithoutNoalloc).
	annotated map[*types.Func]bool

	// enums maps each //eucon:exhaustive-annotated named type to its
	// declared constants.
	enums map[*types.TypeName]*enumInfo

	// proofs memoizes the transitive allocation-freedom proof per function:
	// nil while a proof is in flight (recursion among allocation-free
	// functions is resolved coinductively — an allocation must appear as a
	// construct somewhere, so a pure cycle proves clean).
	proofs map[*types.Func]*proof

	// implementors memoizes interface-method resolution: the concrete
	// methods an interface method's dynamic dispatch can reach.
	implementors map[*types.Func][]*types.Func

	suppressed map[string]bool
}

// declSite locates one function declaration.
type declSite struct {
	decl *ast.FuncDecl
	pkg  *Package
}

// enumInfo is the declared-constant universe of one exhaustive enum.
type enumInfo struct {
	tn *types.TypeName
	// values holds the distinct constant values, each with every name
	// declared for it (aliases of one value count as one case).
	values []enumValue
}

// enumValue is one distinct constant value of an enum.
type enumValue struct {
	val   constant.Value
	names []string
}

// newProgram indexes the load set.
func newProgram(pkgs []*Package, opts Options) *program {
	prog := &program{
		pkgs:         pkgs,
		decls:        make(map[*types.Func]declSite),
		annotated:    make(map[*types.Func]bool),
		enums:        make(map[*types.TypeName]*enumInfo),
		proofs:       make(map[*types.Func]*proof),
		implementors: make(map[*types.Func][]*types.Func),
		suppressed:   make(map[string]bool),
	}
	for _, name := range opts.WithoutNoalloc {
		prog.suppressed[name] = true
	}
	for _, pkg := range pkgs {
		dirs := pkg.directives()
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					fn, ok := pkg.Info.Defs[d.Name].(*types.Func)
					if !ok {
						continue
					}
					prog.decls[fn] = declSite{decl: d, pkg: pkg}
					if dirs.funcHas(d, dirNoalloc) && !prog.suppressed[fn.FullName()] {
						prog.annotated[fn] = true
					}
				case *ast.GenDecl:
					if d.Tok == token.TYPE {
						prog.indexEnums(pkg, d)
					}
				}
			}
		}
	}
	return prog
}

// indexEnums registers every //eucon:exhaustive type of one type
// declaration, collecting its declared constants from the defining
// package's scope.
func (prog *program) indexEnums(pkg *Package, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		if !commentGroupHas(d.Doc, dirExhaustive) &&
			!commentGroupHas(ts.Doc, dirExhaustive) &&
			!commentGroupHas(ts.Comment, dirExhaustive) {
			continue
		}
		tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
		if !ok {
			continue
		}
		info := &enumInfo{tn: tn}
		scope := pkg.Types.Scope()
		names := scope.Names() // already sorted
		for _, name := range names {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok || !types.Identical(c.Type(), tn.Type()) {
				continue
			}
			found := false
			for i := range info.values {
				if constant.Compare(info.values[i].val, token.EQL, c.Val()) {
					info.values[i].names = append(info.values[i].names, name)
					found = true
					break
				}
			}
			if !found {
				info.values = append(info.values, enumValue{val: c.Val(), names: []string{name}})
			}
		}
		if len(info.values) >= 2 {
			prog.enums[tn] = info
		}
	}
}

// commentGroupHas reports whether a comment group carries the directive.
func commentGroupHas(cg *ast.CommentGroup, name string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if got, ok := directiveName(c.Text); ok && got == name {
			return true
		}
	}
	return false
}

// enumOf returns the exhaustive-enum registration for a type, resolving
// through aliases to the named type.
func (prog *program) enumOf(t types.Type) *enumInfo {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return nil
	}
	return prog.enums[named.Obj()]
}

// interfaceTargets resolves the concrete methods a call through interface
// method m can dispatch to: for every non-interface named type in the load
// set whose value or pointer method set implements m's interface, the
// corresponding declared method. This is class-hierarchy analysis over the
// analyzed packages; the resolution is only as complete as the load set,
// which is why scripts/check.sh lints ./... rather than single packages.
func (prog *program) interfaceTargets(m *types.Func) []*types.Func {
	if targets, ok := prog.implementors[m]; ok {
		return targets
	}
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var targets []*types.Func
	seen := make(map[*types.Func]bool)
	for _, pkg := range prog.pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if types.IsInterface(t) {
				continue
			}
			if !types.Implements(t, iface) && !types.Implements(types.NewPointer(t), iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, m.Pkg(), m.Name())
			fn, ok := obj.(*types.Func)
			if !ok || fn == m || seen[fn] {
				continue
			}
			seen[fn] = true
			targets = append(targets, fn)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].FullName() < targets[j].FullName() })
	prog.implementors[m] = targets
	return targets
}

// proof is the memoized outcome of one function's transitive
// allocation-freedom check.
type proof struct {
	ok bool
	// issue describes the first obstacle: an allocating construct in the
	// function, or an unprovable callee further down the chain.
	issue string
	// provisional marks a positive result that leaned on an in-flight
	// cycle assumption; it is returned but not memoized, so the proof is
	// re-derived once the cycle has resolved.
	provisional bool
}

// isAnnotated reports whether fn carries the //eucon:noalloc contract.
func (prog *program) isAnnotated(fn *types.Func) bool {
	return prog.annotated[fn]
}

// prove establishes (or refutes) that fn is transitively allocation-free.
// Annotated functions are trusted here — their own bodies are checked
// against the contract by runNoalloc, with escapes honored — so the proof
// recursion only descends into unannotated code, where //eucon:alloc-ok
// escapes have no owning contract and are therefore NOT honored: an
// unannotated function must be plainly allocation-free, or gain the
// annotation to own its escapes.
func (prog *program) prove(fn *types.Func) *proof {
	if prog.isAnnotated(fn) || noallocSafeCallee(fn) {
		return &proof{ok: true}
	}
	if pr, ok := prog.proofs[fn]; ok {
		if pr == nil {
			// In-flight: a recursion among allocation-free functions is
			// clean unless some construct on the cycle says otherwise, and
			// the cycle member containing that construct fails on its own
			// body walk. The caller marks its result provisional.
			return &proof{ok: true, provisional: true}
		}
		return pr
	}
	site, ok := prog.decls[fn]
	if !ok {
		pr := &proof{issue: "it is outside the analyzed source"}
		prog.proofs[fn] = pr
		return pr
	}
	if site.decl.Body == nil {
		pr := &proof{issue: "it has no Go body (assembly or external linkage)"}
		prog.proofs[fn] = pr
		return pr
	}
	prog.proofs[fn] = nil // mark in-flight
	w := &noallocWalker{
		prog:      prog,
		pkg:       site.pkg,
		decl:      site.decl,
		storeLits: collectStoreLits(site.pkg.Info, site.decl.Body),
	}
	ast.Inspect(site.decl.Body, w.visit)
	if w.firstIssue != "" {
		pr := &proof{issue: w.firstIssue}
		prog.proofs[fn] = pr
		return pr
	}
	pr := &proof{ok: true, provisional: w.sawInflight}
	if pr.provisional {
		// The positive result assumed an in-flight cycle member resolves
		// clean; drop the marker so a later query re-derives it against
		// the settled cycle instead of trusting a possibly-wrong memo.
		delete(prog.proofs, fn)
	} else {
		prog.proofs[fn] = pr
	}
	return pr
}

// shortPos renders a position module-relative for diagnostic messages.
func shortPos(pkg *Package, pos token.Pos) string {
	p := pkg.Fset.Position(pos)
	name := p.Filename
	// Trim to the path below the package directory's parent so messages
	// stay readable regardless of where the module is checked out.
	if rel, err := filepath.Rel(filepath.Dir(pkg.Dir), name); err == nil && !strings.HasPrefix(rel, "..") {
		name = rel
	} else {
		name = filepath.Base(name)
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}
