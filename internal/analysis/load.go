package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is the parsed, type-checked form of one Go package: the shared
// artifact every analyzer consumes. A Package is produced once per import
// path by a Loader and cached, so the AST is parsed exactly once no matter
// how many analyzers (or importers) touch it.
type Package struct {
	// Fset is the loader-wide file set; diagnostics resolve through it.
	Fset *token.FileSet
	// Dir is the package directory on disk.
	Dir string
	// Path is the full import path.
	Path string
	// Rel is the module-relative package path ("" for the module root,
	// "internal/sim", ...). Analyzer scoping keys off Rel, so fixture
	// packages can be loaded under synthetic paths to exercise scoped
	// analyzers.
	Rel string
	// Files are the parsed non-test source files, in file-name order.
	Files []*ast.File
	// Types and Info hold the go/types results for Files.
	Types *types.Package
	Info  *types.Info

	dirsOnce sync.Once
	dirs     *directives
}

// directives returns the package's //eucon: comment index, built on first
// use.
func (p *Package) directives() *directives {
	p.dirsOnce.Do(func() { p.dirs = newDirectives(p.Fset, p.Files) })
	return p.dirs
}

// Loader parses and type-checks packages of one module with a shared
// FileSet and package cache. Module-internal imports are resolved from
// source inside the module tree; standard-library imports fall back to
// go/importer's source mode (go/build does not know modules, so the
// custom resolution is what lets euconlint run without golang.org/x/tools
// or export data).
type Loader struct {
	// Fset is shared by every parsed file.
	Fset *token.FileSet
	// ModuleRoot is the absolute directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod.
	ModulePath string

	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader builds a loader for the module rooted at moduleRoot.
func NewLoader(moduleRoot string) (*Loader, error) {
	root, err := filepath.Abs(moduleRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The source importer type-checks the standard library from GOROOT
	// source. With cgo disabled it selects the pure-Go variants of packages
	// like net, which is all type checking needs.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer unavailable")
	}
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		std:        std,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: read module file: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			path := strings.TrimSpace(rest)
			if path != "" {
				return strings.Trim(path, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// Import implements types.Importer: module-internal paths load from the
// module tree, everything else is delegated to the stdlib source importer.
// This is what wires the analyzed packages and their dependencies into one
// consistent type universe.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		p, err := l.load(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)), path, rel)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, l.ModuleRoot, 0)
}

// LoadDir parses and type-checks the single package in dir under the given
// import path. The path may be synthetic (fixture packages use paths under
// the scoped internal/ namespace to exercise scoped analyzers).
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	rel := importPath
	if r, ok := strings.CutPrefix(importPath, l.ModulePath+"/"); ok {
		rel = r
	} else if importPath == l.ModulePath {
		rel = ""
	}
	return l.load(dir, importPath, rel)
}

// LoadAll loads every package of the module (skipping testdata, vendored,
// hidden, and underscore-prefixed directories), sorted by package path.
func (l *Loader) LoadAll() ([]*Package, error) {
	return l.LoadTree(l.ModuleRoot)
}

// LoadTree loads every package under dir, which must be inside the module.
func (l *Loader) LoadTree(dir string) ([]*Package, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := goSourceFiles(path)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleRoot, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if rel == "." {
			rel = ""
		}
		importPath := l.ModulePath
		if rel != "" {
			importPath += "/" + rel
		}
		p, err := l.load(path, importPath, rel)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// goSourceFiles lists the non-test Go files of dir in name order.
func goSourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		files = append(files, name)
	}
	sort.Strings(files)
	return files, nil
}

// load parses and type-checks one package, memoized by import path.
func (l *Loader) load(dir, importPath, rel string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	names, err := goSourceFiles(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", importPath, err)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go source files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", importPath, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", importPath, err)
	}
	p := &Package{
		Fset:  l.Fset,
		Dir:   dir,
		Path:  importPath,
		Rel:   rel,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[importPath] = p
	return p, nil
}
