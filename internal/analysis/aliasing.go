package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// runAliasing flags exported functions and methods that return a slice
// whose backing array is owned by the receiver or a parameter — e.g. a
// trace accessor handing out the simulator's internal buffer — without a
// doc comment saying so. Callers who append to or retain such a slice
// corrupt state they do not own; the contract must be visible at the API
// boundary ("... aliases the simulator-owned backing array; copy before
// retaining" or similar wording containing "alias"). Returning a fresh
// copy, a composite literal, or an append result is fine.
func runAliasing(p *pass) {
	for _, f := range p.pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if fd.Recv != nil && !exportedRecv(fd.Recv) {
				continue
			}
			if !returnsSlice(p, fd) || docMentionsAlias(fd) {
				continue
			}
			owned := ownedVars(p, fd)
			if len(owned) == 0 {
				continue
			}
			checkReturns(p, fd, owned)
		}
	}
}

// exportedRecv reports whether a method's receiver base type is exported.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return true
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// returnsSlice reports whether any result of fd has slice type.
func returnsSlice(p *pass, fd *ast.FuncDecl) bool {
	fn, ok := p.pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	results := fn.Type().(*types.Signature).Results()
	for i := 0; i < results.Len(); i++ {
		if _, ok := results.At(i).Type().Underlying().(*types.Slice); ok {
			return true
		}
	}
	return false
}

// docMentionsAlias reports whether the function documents its aliasing
// ("aliases", "aliasing", ...).
func docMentionsAlias(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	return strings.Contains(strings.ToLower(fd.Doc.Text()), "alias")
}

// ownedVars collects the receiver and parameter variables of fd: the
// objects whose backing arrays the caller does not own.
func ownedVars(p *pass, fd *ast.FuncDecl) map[*types.Var]bool {
	owned := make(map[*types.Var]bool)
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if v, ok := p.pkg.Info.Defs[name].(*types.Var); ok {
					owned[v] = true
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return owned
}

// checkReturns flags every returned slice expression rooted in an owned
// variable. Nested function literals are skipped: their returns belong to
// the literal, not to fd.
func checkReturns(p *pass, fd *ast.FuncDecl, owned map[*types.Var]bool) {
	fn := p.pkg.Info.Defs[fd.Name].(*types.Func)
	results := fn.Type().(*types.Signature).Results()
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != results.Len() {
			return true
		}
		for i, r := range ret.Results {
			if _, ok := results.At(i).Type().Underlying().(*types.Slice); !ok {
				continue
			}
			if rt := p.pkg.Info.TypeOf(r); rt == nil {
				continue
			} else if _, ok := rt.Underlying().(*types.Slice); !ok {
				continue
			}
			root := rootVar(p, r)
			if root == nil || !owned[root] {
				continue
			}
			p.reportf(r.Pos(),
				"exported %s returns a slice aliasing %s-owned memory; document the aliasing (doc comment mentioning \"aliases\") or return a copy",
				fd.Name.Name, ownerKind(fd, root))
		}
		return true
	})
}

// ownerKind names the kind of owned variable for the diagnostic.
func ownerKind(fd *ast.FuncDecl, v *types.Var) string {
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			for _, name := range field.Names {
				if name.Name == v.Name() {
					return "receiver"
				}
			}
		}
	}
	return "parameter"
}

// rootVar unwraps slicing, indexing, field selection, and dereference down
// to the identifier whose storage the expression views, or nil if the
// expression creates fresh backing (append, make, composite literal,
// conversions, calls).
func rootVar(p *pass, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if v, ok := p.pkg.Info.Uses[x].(*types.Var); ok {
				return v
			}
			return nil
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			sel, ok := p.pkg.Info.Selections[x]
			if !ok || sel.Kind() != types.FieldVal {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}
