package analysis

import (
	"go/ast"
	"go/token"
)

// runFloatSafety flags == and != between floating-point operands. Raw
// float equality is almost always a rounding bug in control and linear
// algebra code; comparisons should go through a tolerance helper
// (mat.EqTol) or an exact-zero guard (mat.IsZero). Intentionally exact
// comparisons — tie-breaks in total orders, change detection on values that
// are only ever copied, exact-zero structural guards — are exempted by
// annotating the enclosing function's doc comment or the comparison's line
// with //eucon:float-exact. Test files are not loaded by the driver, so
// they are exempt by construction. Comparisons where both operands are
// constants fold at compile time and are ignored.
func runFloatSafety(p *pass) {
	info := p.pkg.Info
	for _, f := range p.pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			funcExact := p.dirs.funcHas(fd, dirFloatExact)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				xt, yt := info.Types[be.X], info.Types[be.Y]
				if xt.Type == nil || yt.Type == nil || !isFloat(xt.Type) || !isFloat(yt.Type) {
					return true
				}
				if xt.Value != nil && yt.Value != nil {
					return true // constant-folded
				}
				if funcExact || p.dirs.lineHas(be.Pos(), dirFloatExact) {
					return true
				}
				p.reportf(be.Pos(),
					"%s between float64 operands is exact; use mat.EqTol/mat.IsZero or annotate //eucon:float-exact with a justification",
					be.Op)
				return true
			})
		}
	}
}
