package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The //eucon: comment directives recognized by the suite. A directive is
// a line comment whose text starts exactly with "eucon:" (no space after
// //, matching Go's convention for machine-readable directives such as
// //go:noinline); the directive name runs to the first space, and anything
// after it is a free-form justification that good style should include.
//
//   - //eucon:noalloc — on a function's doc comment: the function is part
//     of the allocation-free steady state and is checked by the noalloc
//     analyzer; calls between annotated functions are allowed.
//   - //eucon:alloc-ok — on (or directly above) a statement inside a
//     noalloc function: the statement is exempt, because it is a cold
//     path, amortized pool growth, or a provably non-allocating form the
//     syntactic checker cannot prove.
//   - //eucon:order-independent — on (or above) a range-over-map
//     statement, or on a function's doc comment: the loop body is
//     commutative, so iteration order cannot affect results.
//   - //eucon:float-exact — on a function's doc comment or on a comparison
//     line: the ==/!= is intentionally exact (total-order tie-breaks,
//     change detection, exact-zero guards).
//   - //eucon:pool-ok — on a line that touches a pooled object after its
//     recycle call: the use is intentional and safe.
//   - //eucon:exhaustive — on a type declaration: every switch or if-chain
//     over the type's constants must cover all of them or carry an
//     annotated default (exhaustiveness analyzer).
//   - //eucon:exhaustive-default — on a default clause or final else: the
//     fall-through intentionally absorbs unlisted constants (a protocol
//     error path, a forward-compatibility guard).
//   - //eucon:wallclock-ok — on a time.Now line in a determinism-scoped
//     package: the read is operational (I/O deadlines, log stamps), not
//     simulation state.
//   - //eucon:goroutine-ok — on a go statement: the goroutine's lifetime
//     is managed by something the analyzer cannot see (process-lifetime
//     daemon, listener closed elsewhere).
//   - //eucon:lock-ok — on a Lock line or a return: the lock intentionally
//     outlives the function (ownership transfer to the caller).
//   - //eucon:send-ok — on a channel send in a context-taking function:
//     the send provably cannot block the cancellation path.
const (
	dirNoalloc           = "noalloc"
	dirAllocOK           = "alloc-ok"
	dirOrderIndependent  = "order-independent"
	dirFloatExact        = "float-exact"
	dirPoolOK            = "pool-ok"
	dirExhaustive        = "exhaustive"
	dirExhaustiveDefault = "exhaustive-default"
	dirWallclockOK       = "wallclock-ok"
	dirGoroutineOK       = "goroutine-ok"
	dirLockOK            = "lock-ok"
	dirSendOK            = "send-ok"
)

// directives indexes the //eucon: comments of one package by file and
// line, so analyzers can ask "is this statement (or the line above it)
// annotated?" in O(1).
type directives struct {
	fset *token.FileSet
	// lines maps filename -> line -> directive names present on that line.
	lines map[string]map[int][]string
	// occ records every occurrence position per directive name, in source
	// order, so analyzers can audit directives themselves (the stale
	// //eucon:alloc-ok check).
	occ map[string][]token.Pos
}

// newDirectives scans every comment of the files for //eucon: directives.
func newDirectives(fset *token.FileSet, files []*ast.File) *directives {
	d := &directives{
		fset:  fset,
		lines: make(map[string]map[int][]string),
		occ:   make(map[string][]token.Pos),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := directiveName(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Slash)
				byLine := d.lines[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					d.lines[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], name)
				d.occ[name] = append(d.occ[name], c.Slash)
			}
		}
	}
	return d
}

// occurrences returns every position of the named directive in the
// package, in source order.
func (d *directives) occurrences(name string) []token.Pos {
	return d.occ[name]
}

// directiveKeys returns the "file:line" keys of the named directive
// occurrences that exempt pos: the same line or the line directly above.
// Analyzers use the keys to record which escapes actually suppressed a
// finding.
func (d *directives) directiveKeys(pos token.Pos, name string) []string {
	p := d.fset.Position(pos)
	byLine := d.lines[p.Filename]
	if byLine == nil {
		return nil
	}
	var keys []string
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, got := range byLine[line] {
			if got == name {
				keys = append(keys, lineKey(p.Filename, line))
				break
			}
		}
	}
	return keys
}

// lineKey builds the "file:line" map key used for escape consumption.
func lineKey(filename string, line int) string {
	return fmt.Sprintf("%s:%d", filename, line)
}

// directiveName extracts the directive name from a comment's raw text.
func directiveName(text string) (string, bool) {
	rest, ok := strings.CutPrefix(text, "//eucon:")
	if !ok {
		return "", false
	}
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest, rest != ""
}

// funcHas reports whether the function's doc comment carries the named
// directive.
func (d *directives) funcHas(fd *ast.FuncDecl, name string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if got, ok := directiveName(c.Text); ok && got == name {
			return true
		}
	}
	return false
}

// lineHas reports whether the named directive appears on pos's line (a
// trailing comment) or on the line directly above it (a standalone
// comment).
func (d *directives) lineHas(pos token.Pos, name string) bool {
	p := d.fset.Position(pos)
	byLine := d.lines[p.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, got := range byLine[line] {
			if got == name {
				return true
			}
		}
	}
	return false
}
