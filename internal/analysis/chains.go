package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// chainRoots pins the entry points of the benchmark-gated allocation-free
// hot paths: the simulator's steady-state event handlers (measured by
// BenchmarkSimulatorSteadyState at 0 allocs/op) and the localized DEUCON
// per-processor step (BenchmarkDeuconLocalStepLarge128). The noalloc
// analyzer requires each root to exist and carry //eucon:noalloc; the
// interprocedural proof then covers everything the roots reach, so the
// runtime allocation gates in scripts/check.sh have a static counterpart.
var chainRoots = []struct {
	pkgRel string
	fn     string // manifest-style name (Recv.Func)
	bench  string
}{
	{"internal/sim", "Simulator.handleRelease", "BenchmarkSimulatorSteadyState"},
	{"internal/sim", "Simulator.handleCompletion", "BenchmarkSimulatorSteadyState"},
	{"internal/sim", "Simulator.handleSampling", "BenchmarkSimulatorSteadyState"},
	{"internal/deucon", "Controller.stepLocal", "BenchmarkDeuconLocalStepLarge128"},
}

// checkChainRoots verifies the declared chain roots of the analyzed
// package exist and are annotated. A rename or annotation deletion on a
// root is a finding even before any proof runs.
func checkChainRoots(p *pass) {
	if strings.Contains(p.pkg.Dir, "testdata") {
		return
	}
	for _, root := range chainRoots {
		if root.pkgRel != p.pkg.Rel {
			continue
		}
		var decl *ast.FuncDecl
		for _, f := range p.pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && manifestFuncName(fd) == root.fn {
					decl = fd
				}
			}
		}
		if decl == nil {
			p.reportf(p.pkg.Files[0].Package,
				"allocation-guarded chain root %s (measured by %s) was not found in %s; update chainRoots in internal/analysis/chains.go if it moved",
				root.fn, root.bench, p.pkg.Rel)
			continue
		}
		fn, ok := p.pkg.Info.Defs[decl.Name].(*types.Func)
		if !ok || !p.prog.isAnnotated(fn) {
			p.reportf(decl.Name.Pos(),
				"allocation-guarded chain root %s (measured by %s) must be annotated //eucon:noalloc",
				root.fn, root.bench)
		}
	}
}

// ChainFunctions returns the FullNames of every //eucon:noalloc function
// reachable from the chain roots through static calls and resolved
// interface dispatch: the annotation set that guards the steady-state
// benchmarks. Exported for the deletion-detection test, which suppresses
// each member in turn and asserts the suite reports the loss.
func ChainFunctions(pkgs []*Package) []string {
	prog := newProgram(pkgs, Options{})
	byName := make(map[string]*types.Func)
	for fn, site := range prog.decls {
		if strings.Contains(site.pkg.Dir, "testdata") {
			continue
		}
		byName[site.pkg.Rel+" "+manifestFuncName(site.decl)] = fn
	}
	seen := make(map[*types.Func]bool)
	var queue []*types.Func
	add := func(fn *types.Func) {
		if fn != nil && prog.isAnnotated(fn) && !seen[fn] {
			seen[fn] = true
			queue = append(queue, fn)
		}
	}
	for _, root := range chainRoots {
		add(byName[root.pkgRel+" "+root.fn])
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		site := prog.decls[fn]
		if site.decl.Body == nil {
			continue
		}
		ast.Inspect(site.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, ok := calleeObject(site.pkg.Info, call).(*types.Func)
			if !ok {
				return true
			}
			if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil && isInterface(sig.Recv().Type()) {
				for _, t := range prog.interfaceTargets(callee) {
					add(t)
				}
				return true
			}
			add(callee)
			return true
		})
	}
	names := make([]string, 0, len(seen))
	for fn := range seen {
		names = append(names, fn.FullName())
	}
	sort.Strings(names)
	return names
}
