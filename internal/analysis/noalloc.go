package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// noallocSafeBuiltins are builtins that never heap-allocate.
var noallocSafeBuiltins = map[string]bool{
	"len": true, "cap": true, "copy": true, "clear": true,
	"min": true, "max": true, "delete": true,
	"real": true, "imag": true, "complex": true,
}

// runNoalloc checks every //eucon:noalloc-annotated function: the
// steady-state event-loop handlers, flat-heap operations, and pool recycle
// paths whose allocation-freedom the runtime gate
// (BenchmarkSimulatorSteadyState at 0 allocs/op) measures and this
// analyzer proves. Inside an annotated function the following are
// diagnosed unless the line carries //eucon:alloc-ok:
//
//   - append, make, and new;
//   - composite literals of slice/map type, addressed composite literals,
//     and closures (struct/array literals stored or returned by value are
//     plain stores and allowed);
//   - string concatenation;
//   - conversions of concrete values to interface types (boxing),
//     explicit or implicit (call arguments, assignments, returns);
//   - calls to functions that cannot be transitively proven
//     allocation-free: the proof engine descends through unannotated
//     module callees (which must be plainly allocation-free — their
//     //eucon:alloc-ok escapes have no owning contract and are not
//     honored) and resolves interface dispatch over every concrete
//     implementor in the load set; only callees outside the analyzed
//     source, dynamic function values, and genuinely allocating chains
//     remain findings.
//
// The pass also reports stale //eucon:alloc-ok escapes (lines where the
// escape no longer suppresses anything), drift between the annotations
// and the committed noalloc manifest, and missing or unannotated
// benchmark-gated chain roots (chains.go).
func runNoalloc(p *pass) {
	consumed := make(map[string]bool)
	for _, f := range p.pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok || !p.prog.isAnnotated(fn) {
				continue
			}
			w := &noallocWalker{
				prog:         p.prog,
				pkg:          p.pkg,
				decl:         fd,
				honorEscapes: true,
				pass:         p,
				consumed:     consumed,
				storeLits:    collectStoreLits(p.pkg.Info, fd.Body),
			}
			ast.Inspect(fd.Body, w.visit)
		}
	}
	reportStaleEscapes(p, consumed)
	checkManifest(p)
	checkChainRoots(p)
}

// reportStaleEscapes flags every //eucon:alloc-ok in the package that
// suppressed nothing: either the construct it once covered is now allowed
// (a demoted escape) or the escape sits outside any //eucon:noalloc
// function, where it has no owning contract.
func reportStaleEscapes(p *pass, consumed map[string]bool) {
	for _, pos := range p.dirs.occurrences(dirAllocOK) {
		pp := p.pkg.Fset.Position(pos)
		if consumed[lineKey(pp.Filename, pp.Line)] {
			continue
		}
		p.reportf(pos, "stale //eucon:alloc-ok: the escape suppresses nothing (escapes are honored only inside //eucon:noalloc functions, and only on lines with an allocating construct); remove it")
	}
}

// noallocWalker carries the per-function state of one noalloc body walk.
// It runs in two modes: the annotated-contract mode (honorEscapes=true)
// reports diagnostics through the pass and honors //eucon:alloc-ok lines,
// recording which escapes fired; the proof-engine mode collects the first
// obstacle into firstIssue for program.prove, with escapes ignored.
type noallocWalker struct {
	prog *program
	pkg  *Package
	decl *ast.FuncDecl

	honorEscapes bool
	pass         *pass
	consumed     map[string]bool

	// storeLits are the composite literals of struct/array type in plain
	// value-store position (assignment RHS, var initializer, return
	// value), which compile to stores, not allocations.
	storeLits map[*ast.CompositeLit]bool

	firstIssue    string
	firstIssuePos token.Pos
	// sawInflight marks that the proof leaned on an in-flight (cycle)
	// assumption, so a positive result must not be memoized yet.
	sawInflight bool
}

// issue records one finding: reported (minus escapes) in annotated mode,
// collected with its position appended in engine mode.
func (w *noallocWalker) issue(pos token.Pos, format string, args ...any) {
	if w.honorEscapes {
		if keys := w.pass.dirs.directiveKeys(pos, dirAllocOK); len(keys) > 0 {
			for _, k := range keys {
				w.consumed[k] = true
			}
			return
		}
		w.pass.reportf(pos, "//eucon:noalloc function %s: "+format,
			append([]any{w.decl.Name.Name}, args...)...)
		return
	}
	if w.firstIssue == "" {
		w.firstIssue = fmt.Sprintf(format, args...) + " at " + shortPos(w.pkg, pos)
		w.firstIssuePos = pos
	}
}

// callIssue records a call-chain finding whose message already carries
// positions (a failed callee proof), so engine mode must not append one.
func (w *noallocWalker) callIssue(pos token.Pos, annotated, engine string) {
	if w.honorEscapes {
		w.issue(pos, "%s", annotated)
		return
	}
	if w.firstIssue == "" {
		w.firstIssue = engine
		w.firstIssuePos = pos
	}
}

func (w *noallocWalker) visit(n ast.Node) bool {
	info := w.pkg.Info
	switch n := n.(type) {
	case *ast.CompositeLit:
		if w.storeLits[n] {
			return true
		}
		w.issue(n.Pos(), "composite literal may allocate")
	case *ast.FuncLit:
		w.issue(n.Pos(), "closure allocates")
		return false // the closure body is not part of the checked function
	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if t := info.TypeOf(n); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					w.issue(n.Pos(), "string concatenation allocates")
				}
			}
		}
	case *ast.AssignStmt:
		if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
			if t := info.TypeOf(n.Lhs[0]); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					w.issue(n.Pos(), "string concatenation allocates")
				}
			}
		}
		w.checkAssignBoxing(n)
	case *ast.ValueSpec:
		w.checkSpecBoxing(n)
	case *ast.ReturnStmt:
		w.checkReturnBoxing(n)
	case *ast.CallExpr:
		w.checkCall(n)
	}
	return true
}

// collectStoreLits finds the composite literals that are plain value
// stores: a struct or array literal whose value lands directly in an
// assignment, var initializer, or return value compiles to field stores
// on the destination, not a heap allocation. Sub-literals of struct or
// array type inside such a literal are part of the same store. Slice and
// map literals, addressed literals (&T{}), and literals in any other
// position (call arguments, index expressions) still allocate or are
// conservatively treated as if they may.
func collectStoreLits(info *types.Info, body *ast.BlockStmt) map[*ast.CompositeLit]bool {
	lits := make(map[*ast.CompositeLit]bool)
	var markValue func(e ast.Expr)
	markValue = func(e ast.Expr) {
		cl, ok := ast.Unparen(e).(*ast.CompositeLit)
		if !ok {
			return
		}
		t := info.TypeOf(cl)
		if t == nil {
			return
		}
		switch t.Underlying().(type) {
		case *types.Struct, *types.Array:
			lits[cl] = true
			for _, el := range cl.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					markValue(kv.Value)
				} else {
					markValue(el)
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
				for _, rhs := range n.Rhs {
					markValue(rhs)
				}
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				markValue(v)
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				markValue(r)
			}
		}
		return true
	})
	return lits
}

// checkCall classifies one call inside a checked function.
func (w *noallocWalker) checkCall(call *ast.CallExpr) {
	info := w.pkg.Info
	if isConversion(info, call) {
		// Conversions are free unless they box into an interface.
		if t := info.TypeOf(call.Fun); t != nil && isInterface(t) && len(call.Args) == 1 {
			if at := info.TypeOf(call.Args[0]); isBoxedBy(at, t) {
				w.issue(call.Pos(), "conversion of concrete %s to interface %s allocates",
					typeStr(w.pkg, at), typeStr(w.pkg, t))
			}
		}
		return
	}
	switch obj := calleeObject(info, call).(type) {
	case *types.Builtin:
		switch obj.Name() {
		case "append":
			w.issue(call.Pos(), "append may grow and allocate")
		case "make":
			w.issue(call.Pos(), "make allocates")
		case "new":
			w.issue(call.Pos(), "new allocates")
		default:
			if !noallocSafeBuiltins[obj.Name()] {
				w.issue(call.Pos(), "builtin %s may allocate", obj.Name())
			}
		}
		return
	case *types.Func:
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil && isInterface(sig.Recv().Type()) {
			w.checkInterfaceCall(call, obj)
			return
		}
		pr := w.prog.prove(obj)
		if !pr.ok {
			w.callIssue(call.Pos(),
				fmt.Sprintf("calls %s, which is not provably allocation-free: %s", obj.FullName(), pr.issue),
				fmt.Sprintf("via %s (%s): %s", obj.FullName(), shortPos(w.pkg, call.Pos()), pr.issue))
			return
		}
		if pr.provisional {
			w.sawInflight = true
		}
		w.checkArgBoxing(call)
		return
	default:
		// A *types.Var (function-typed variable, field, or parameter) or an
		// unresolvable callee: nothing to descend into.
		w.issue(call.Pos(), "dynamic call through a function value cannot be verified allocation-free")
	}
}

// checkInterfaceCall resolves a dynamic dispatch through interface method
// m over every concrete implementor in the load set (class-hierarchy
// analysis): the call is allocation-free iff every possible target is.
func (w *noallocWalker) checkInterfaceCall(call *ast.CallExpr, m *types.Func) {
	targets := w.prog.interfaceTargets(m)
	if len(targets) == 0 {
		w.issue(call.Pos(), "dynamic call of interface method %s has no implementors in the analyzed source and cannot be verified allocation-free", m.Name())
		return
	}
	for _, t := range targets {
		pr := w.prog.prove(t)
		if !pr.ok {
			w.callIssue(call.Pos(),
				fmt.Sprintf("dynamic call of %s may dispatch to %s, which is not provably allocation-free: %s", m.Name(), t.FullName(), pr.issue),
				fmt.Sprintf("via dynamic %s -> %s (%s): %s", m.Name(), t.FullName(), shortPos(w.pkg, call.Pos()), pr.issue))
			return
		}
		if pr.provisional {
			w.sawInflight = true
		}
	}
	w.checkArgBoxing(call)
}

// checkArgBoxing flags concrete arguments passed to interface-typed
// parameters of an otherwise-allowed call.
func (w *noallocWalker) checkArgBoxing(call *ast.CallExpr) {
	info := w.pkg.Info
	ft := info.TypeOf(call.Fun)
	if ft == nil {
		return
	}
	sig, ok := ft.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type() // []T passed whole
			} else if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !isInterface(pt) {
			continue
		}
		if at := info.TypeOf(arg); isBoxedBy(at, pt) {
			w.issue(arg.Pos(), "passing concrete %s as interface %s allocates",
				typeStr(w.pkg, at), typeStr(w.pkg, pt))
		}
	}
}

// checkAssignBoxing flags assignments that box a concrete value into an
// interface-typed destination.
func (w *noallocWalker) checkAssignBoxing(n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	info := w.pkg.Info
	for i, lhs := range n.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		lt := info.TypeOf(lhs)
		if lt == nil || !isInterface(lt) {
			continue
		}
		if rt := info.TypeOf(n.Rhs[i]); isBoxedBy(rt, lt) {
			w.issue(n.Rhs[i].Pos(), "assigning concrete %s to interface %s allocates",
				typeStr(w.pkg, rt), typeStr(w.pkg, lt))
		}
	}
}

// checkSpecBoxing flags var declarations with an interface type and
// concrete initializers.
func (w *noallocWalker) checkSpecBoxing(n *ast.ValueSpec) {
	if n.Type == nil {
		return
	}
	info := w.pkg.Info
	lt := info.TypeOf(n.Type)
	if lt == nil || !isInterface(lt) {
		return
	}
	for _, v := range n.Values {
		if rt := info.TypeOf(v); isBoxedBy(rt, lt) {
			w.issue(v.Pos(), "assigning concrete %s to interface %s allocates",
				typeStr(w.pkg, rt), typeStr(w.pkg, lt))
		}
	}
}

// checkReturnBoxing flags returns of concrete values from interface-typed
// results.
func (w *noallocWalker) checkReturnBoxing(n *ast.ReturnStmt) {
	obj, ok := w.pkg.Info.Defs[w.decl.Name].(*types.Func)
	if !ok {
		return
	}
	results := obj.Type().(*types.Signature).Results()
	if results.Len() != len(n.Results) {
		return
	}
	for i, r := range n.Results {
		rt := results.At(i).Type()
		if !isInterface(rt) {
			continue
		}
		if at := w.pkg.Info.TypeOf(r); isBoxedBy(at, rt) {
			w.issue(r.Pos(), "returning concrete %s as interface %s allocates",
				typeStr(w.pkg, at), typeStr(w.pkg, rt))
		}
	}
}

// noallocSafeCallee allows selected standard-library callees that are
// known not to allocate: the pure math package and methods on explicitly
// seeded math/rand generators (the simulator's jitter draws).
func noallocSafeCallee(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "math":
		return true
	case "math/rand", "math/rand/v2":
		sig, ok := fn.Type().(*types.Signature)
		return ok && sig.Recv() != nil
	}
	return false
}

// isInterface reports whether t is an interface type (including any).
func isInterface(t types.Type) bool {
	return t != nil && types.IsInterface(t)
}

// isBoxedBy reports whether storing a value of type 'from' into a
// destination of interface type requires boxing: a concrete, non-nil
// source.
func isBoxedBy(from, to types.Type) bool {
	if from == nil || !isInterface(to) || isInterface(from) {
		return false
	}
	if b, ok := from.(*types.Basic); ok && (b.Kind() == types.UntypedNil || b.Kind() == types.Invalid) {
		return false
	}
	return true
}

// typeStr renders a type relative to the analyzed package.
func typeStr(pkg *Package, t types.Type) string {
	if t == nil {
		return "<unknown>"
	}
	return types.TypeString(t, types.RelativeTo(pkg.Types))
}
