package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// noallocSafeBuiltins are builtins that never heap-allocate.
var noallocSafeBuiltins = map[string]bool{
	"len": true, "cap": true, "copy": true, "clear": true,
	"min": true, "max": true, "delete": true,
	"real": true, "imag": true, "complex": true,
}

// runNoalloc checks every //eucon:noalloc-annotated function: the
// steady-state event-loop handlers, flat-heap operations, and pool recycle
// paths whose allocation-freedom the runtime gate
// (BenchmarkSimulatorSteadyState at 0 allocs/op) measures and this
// analyzer proves construct-by-construct. Inside an annotated function the
// following are diagnosed unless the line carries //eucon:alloc-ok:
//
//   - append, make, and new;
//   - composite literals and closures;
//   - string concatenation;
//   - conversions of concrete values to interface types (boxing),
//     explicit or implicit (call arguments, assignments, returns);
//   - calls to functions that are not themselves annotated, excepting
//     non-allocating builtins, math, and methods on math/rand sources;
//   - dynamic calls (interface methods, function values), which cannot be
//     verified statically.
func runNoalloc(p *pass) {
	for _, f := range p.pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !p.dirs.funcHas(fd, dirNoalloc) {
				continue
			}
			w := &noallocWalker{pass: p, decl: fd}
			ast.Inspect(fd.Body, w.visit)
		}
	}
}

// noallocWalker carries the per-function state of one noalloc check.
type noallocWalker struct {
	pass *pass
	decl *ast.FuncDecl
}

// report emits a finding unless the line is exempted via //eucon:alloc-ok.
func (w *noallocWalker) report(pos token.Pos, format string, args ...any) {
	if w.pass.dirs.lineHas(pos, dirAllocOK) {
		return
	}
	w.pass.reportf(pos, "%s: "+format,
		append([]any{"//eucon:noalloc function " + w.decl.Name.Name}, args...)...)
}

func (w *noallocWalker) visit(n ast.Node) bool {
	info := w.pass.pkg.Info
	switch n := n.(type) {
	case *ast.CompositeLit:
		w.report(n.Pos(), "composite literal may allocate")
	case *ast.FuncLit:
		w.report(n.Pos(), "closure allocates")
		return false // the closure body is not part of the annotated function
	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if t := info.TypeOf(n); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					w.report(n.Pos(), "string concatenation allocates")
				}
			}
		}
	case *ast.AssignStmt:
		if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
			if t := info.TypeOf(n.Lhs[0]); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					w.report(n.Pos(), "string concatenation allocates")
				}
			}
		}
		w.checkAssignBoxing(n)
	case *ast.ValueSpec:
		w.checkSpecBoxing(n)
	case *ast.ReturnStmt:
		w.checkReturnBoxing(n)
	case *ast.CallExpr:
		w.checkCall(n)
	}
	return true
}

// checkCall classifies one call inside a noalloc function.
func (w *noallocWalker) checkCall(call *ast.CallExpr) {
	info := w.pass.pkg.Info
	if isConversion(info, call) {
		// Conversions are free unless they box into an interface.
		if t := info.TypeOf(call.Fun); t != nil && isInterface(t) && len(call.Args) == 1 {
			if at := info.TypeOf(call.Args[0]); isBoxedBy(at, t) {
				w.report(call.Pos(), "conversion of concrete %s to interface %s allocates",
					typeStr(w.pass, at), typeStr(w.pass, t))
			}
		}
		return
	}
	switch obj := calleeObject(info, call).(type) {
	case *types.Builtin:
		switch obj.Name() {
		case "append":
			w.report(call.Pos(), "append may grow and allocate")
		case "make":
			w.report(call.Pos(), "make allocates")
		case "new":
			w.report(call.Pos(), "new allocates")
		default:
			if !noallocSafeBuiltins[obj.Name()] {
				w.report(call.Pos(), "builtin %s may allocate", obj.Name())
			}
		}
		return
	case *types.Func:
		if w.pass.noallocFuncs[obj] || noallocSafeCallee(obj) {
			w.checkArgBoxing(call)
			return
		}
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil && isInterface(sig.Recv().Type()) {
			w.report(call.Pos(), "dynamic call of interface method %s cannot be verified allocation-free", obj.Name())
			return
		}
		w.report(call.Pos(), "calls %s, which is not annotated //eucon:noalloc", obj.FullName())
		return
	case nil:
		w.report(call.Pos(), "dynamic call through a function value cannot be verified allocation-free")
		return
	}
	w.checkArgBoxing(call)
}

// checkArgBoxing flags concrete arguments passed to interface-typed
// parameters of an otherwise-allowed call.
func (w *noallocWalker) checkArgBoxing(call *ast.CallExpr) {
	info := w.pass.pkg.Info
	ft := info.TypeOf(call.Fun)
	if ft == nil {
		return
	}
	sig, ok := ft.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type() // []T passed whole
			} else if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !isInterface(pt) {
			continue
		}
		if at := info.TypeOf(arg); isBoxedBy(at, pt) {
			w.report(arg.Pos(), "passing concrete %s as interface %s allocates",
				typeStr(w.pass, at), typeStr(w.pass, pt))
		}
	}
}

// checkAssignBoxing flags assignments that box a concrete value into an
// interface-typed destination.
func (w *noallocWalker) checkAssignBoxing(n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	info := w.pass.pkg.Info
	for i, lhs := range n.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		lt := info.TypeOf(lhs)
		if lt == nil || !isInterface(lt) {
			continue
		}
		if rt := info.TypeOf(n.Rhs[i]); isBoxedBy(rt, lt) {
			w.report(n.Rhs[i].Pos(), "assigning concrete %s to interface %s allocates",
				typeStr(w.pass, rt), typeStr(w.pass, lt))
		}
	}
}

// checkSpecBoxing flags var declarations with an interface type and
// concrete initializers.
func (w *noallocWalker) checkSpecBoxing(n *ast.ValueSpec) {
	if n.Type == nil {
		return
	}
	info := w.pass.pkg.Info
	lt := info.TypeOf(n.Type)
	if lt == nil || !isInterface(lt) {
		return
	}
	for _, v := range n.Values {
		if rt := info.TypeOf(v); isBoxedBy(rt, lt) {
			w.report(v.Pos(), "assigning concrete %s to interface %s allocates",
				typeStr(w.pass, rt), typeStr(w.pass, lt))
		}
	}
}

// checkReturnBoxing flags returns of concrete values from interface-typed
// results.
func (w *noallocWalker) checkReturnBoxing(n *ast.ReturnStmt) {
	obj, ok := w.pass.pkg.Info.Defs[w.decl.Name].(*types.Func)
	if !ok {
		return
	}
	results := obj.Type().(*types.Signature).Results()
	if results.Len() != len(n.Results) {
		return
	}
	for i, r := range n.Results {
		rt := results.At(i).Type()
		if !isInterface(rt) {
			continue
		}
		if at := w.pass.pkg.Info.TypeOf(r); isBoxedBy(at, rt) {
			w.report(r.Pos(), "returning concrete %s as interface %s allocates",
				typeStr(w.pass, at), typeStr(w.pass, rt))
		}
	}
}

// noallocSafeCallee allows selected standard-library callees that are
// known not to allocate: the pure math package and methods on explicitly
// seeded math/rand generators (the simulator's jitter draws).
func noallocSafeCallee(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "math":
		return true
	case "math/rand", "math/rand/v2":
		sig, ok := fn.Type().(*types.Signature)
		return ok && sig.Recv() != nil
	}
	return false
}

// isInterface reports whether t is an interface type (including any).
func isInterface(t types.Type) bool {
	return t != nil && types.IsInterface(t)
}

// isBoxedBy reports whether storing a value of type 'from' into a
// destination of interface type requires boxing: a concrete, non-nil
// source.
func isBoxedBy(from, to types.Type) bool {
	if from == nil || !isInterface(to) || isInterface(from) {
		return false
	}
	if b, ok := from.(*types.Basic); ok && (b.Kind() == types.UntypedNil || b.Kind() == types.Invalid) {
		return false
	}
	return true
}

// typeStr renders a type relative to the analyzed package.
func typeStr(p *pass, t types.Type) string {
	if t == nil {
		return "<unknown>"
	}
	return types.TypeString(t, types.RelativeTo(p.pkg.Types))
}
