package analysis

import (
	_ "embed"
	"go/ast"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// The noalloc manifest is the committed registry of every //eucon:noalloc
// annotation in the module, one "pkg Recv.Func" line per annotation. The
// noalloc analyzer diffs each analyzed package against it, so deleting an
// annotation anywhere — including a mid-chain function whose removal would
// not otherwise change any proof — is a lint finding, not silent erosion
// of the allocation-free contract. Regenerate after intentionally adding
// or removing an annotation:
//
//	go run ./cmd/euconlint -write-noalloc-manifest
//
//go:embed noalloc_manifest.golden
var noallocManifestData string

// manifest returns the parsed registry: module-relative package path ("."
// for the root) to sorted annotated function names.
var manifest = sync.OnceValue(func() map[string][]string {
	m := make(map[string][]string)
	for _, line := range strings.Split(noallocManifestData, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		pkg, name, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		m[pkg] = append(m[pkg], name)
	}
	return m
})

// manifestKey is a package's key in the manifest.
func manifestKey(pkg *Package) string {
	if pkg.Rel == "" {
		return "."
	}
	return pkg.Rel
}

// manifestFuncName renders a declaration's manifest name: Recv.Name for
// methods (stars and type parameters stripped), the bare name otherwise.
func manifestFuncName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return recvTypeName(fd.Recv.List[0].Type) + "." + fd.Name.Name
}

// recvTypeName extracts the defined type name from a receiver type expr.
func recvTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.ParenExpr:
		return recvTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return recvTypeName(e.X)
	case *ast.IndexListExpr:
		return recvTypeName(e.X)
	}
	return "?"
}

// WriteManifest renders the noalloc manifest for a load set (normally the
// full module). Exported for euconlint -write-noalloc-manifest and the
// manifest freshness test.
func WriteManifest(pkgs []*Package) string {
	var lines []string
	for _, pkg := range pkgs {
		if strings.Contains(pkg.Dir, "testdata") {
			continue
		}
		dirs := pkg.directives()
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !dirs.funcHas(fd, dirNoalloc) {
					continue
				}
				lines = append(lines, manifestKey(pkg)+" "+manifestFuncName(fd))
			}
		}
	}
	sort.Strings(lines)
	const header = "# noalloc manifest: every //eucon:noalloc annotation in the module,\n" +
		"# one \"pkg Recv.Func\" line each. The noalloc analyzer reports any drift,\n" +
		"# so deleting an annotation fails lint until the deletion is made explicit\n" +
		"# here. Regenerate: go run ./cmd/euconlint -write-noalloc-manifest\n"
	return header + strings.Join(lines, "\n") + "\n"
}

// checkManifest diffs one package's live annotations against the
// committed manifest. Fixture packages (under testdata) are exempt; the
// manifest covers the real tree only.
func checkManifest(p *pass) {
	if strings.Contains(p.pkg.Dir, "testdata") {
		return
	}
	listed := manifest()[manifestKey(p.pkg)]
	want := make(map[string]bool, len(listed))
	for _, name := range listed {
		want[name] = true
	}
	got := make(map[string]bool)
	declPos := make(map[string]ast.Node)
	for _, f := range p.pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			name := manifestFuncName(fd)
			if _, exists := declPos[name]; !exists {
				declPos[name] = fd.Name
			}
			fn, ok := p.pkg.Info.Defs[fd.Name].(*types.Func)
			if ok && p.prog.isAnnotated(fn) {
				got[name] = true
			}
		}
	}
	for _, name := range sortedKeys(want) {
		if got[name] {
			continue
		}
		pos := p.pkg.Files[0].Package
		if n, ok := declPos[name]; ok {
			pos = n.Pos()
		}
		p.reportf(pos, "%s lost its //eucon:noalloc annotation but is still listed in the noalloc manifest; restore the annotation or regenerate internal/analysis/noalloc_manifest.golden (go run ./cmd/euconlint -write-noalloc-manifest)", name)
	}
	for _, name := range sortedKeys(got) {
		if want[name] {
			continue
		}
		p.reportf(declPos[name].Pos(), "//eucon:noalloc %s is not in the noalloc manifest; regenerate internal/analysis/noalloc_manifest.golden (go run ./cmd/euconlint -write-noalloc-manifest)", name)
	}
}

// sortedKeys returns a map's keys in sorted order.
func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
