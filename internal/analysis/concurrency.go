package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"maps"
	"sort"
	"strings"
)

// runConcurrency enforces the worker-fabric disciplines the goroutine-
// heavy layers (lane, agent, deucon, empc, experiments, chaos) must keep
// as the distributed runtime grows:
//
//   - goroutine lifetime: every go statement must be joinable or
//     cancellable — the spawned closure defers wg.Done(), the call carries
//     a *sync.WaitGroup, or the spawned work references a context.Context
//     that arrived through the spawning function's signature; otherwise
//     the goroutine can outlive its spawner unobserved
//     (//eucon:goroutine-ok escapes the rule with a justification);
//   - lock values: receivers and parameters passed by value must not
//     contain sync.Mutex/RWMutex/WaitGroup/Once/Cond — the copy splits
//     the lock state;
//   - lock flow: a Lock/RLock must be discharged by an Unlock/RUnlock or
//     a defer on every linear path; returning or falling off the end
//     while holding is a finding (//eucon:lock-ok marks intentional
//     ownership transfer);
//   - channel discipline: a send on a channel already closed on the same
//     path is a finding, and a bare (non-select) send in a function that
//     takes a context.Context is a finding — the send would block past
//     cancellation (//eucon:send-ok escapes provably non-blocking sends).
//
// The flow rules are linear-path heuristics over the statement tree (with
// branch bodies analyzed against cloned state), not a full CFG; function
// literal bodies are only examined by the go-statement rule.
func runConcurrency(p *pass) {
	for _, f := range p.pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockValues(p, fd)
			checkGoStmts(p, fd)
			fc := &flowChecker{pass: p, hasCtx: hasCtxParam(p, fd)}
			state := newFlowState()
			if !fc.block(fd.Body.List, state) {
				fc.finish(fd, state)
			}
		}
	}
}

// ---- goroutine lifetime ----

// checkGoStmts applies the join-or-cancel rule to every go statement in
// the function, including those inside nested function literals (the
// enclosing signature used for the context rule is the declared one).
func checkGoStmts(p *pass, fd *ast.FuncDecl) {
	ctxParam := hasCtxParam(p, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if p.dirs.lineHas(gs.Pos(), dirGoroutineOK) || goStmtJoined(p, gs, ctxParam) {
			return true
		}
		p.reportf(gs.Pos(), "goroutine has no join or cancellation: defer wg.Done() in the body, pass the *sync.WaitGroup along, thread a context.Context from %s's signature, or annotate //eucon:goroutine-ok with the lifetime argument", fd.Name.Name)
		return true
	})
}

// goStmtJoined reports whether the go statement satisfies the lifetime
// rule.
func goStmtJoined(p *pass, gs *ast.GoStmt, ctxParam bool) bool {
	// WaitGroup discipline: the spawned closure defers wg.Done(), or the
	// call hands the WaitGroup to the spawned function.
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok && hasDeferDone(p, lit.Body) {
		return true
	}
	for _, arg := range gs.Call.Args {
		if isWaitGroupPtr(p.pkg.Info.TypeOf(arg)) {
			return true
		}
	}
	// Context discipline: the spawned work references a context.Context
	// and the spawner received one, so cancellation reaches the goroutine.
	if ctxParam {
		refs := false
		ast.Inspect(gs.Call, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && isContextType(p.pkg.Info.TypeOf(id)) {
				refs = true
			}
			return !refs
		})
		if refs {
			return true
		}
	}
	return false
}

// hasDeferDone reports whether the block defers (*sync.WaitGroup).Done.
func hasDeferDone(p *pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return !found
		}
		if fn, ok := calleeObject(p.pkg.Info, ds.Call).(*types.Func); ok &&
			fn.FullName() == "(*sync.WaitGroup).Done" {
			found = true
		}
		return !found
	})
	return found
}

// hasCtxParam reports whether the function's signature includes a
// context.Context parameter.
func hasCtxParam(p *pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if isContextType(p.pkg.Info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return isNamedType(t, "context", "Context")
}

// isWaitGroupPtr reports whether t is *sync.WaitGroup.
func isWaitGroupPtr(t types.Type) bool {
	ptr, ok := types.Unalias(t).(*types.Pointer)
	return ok && isNamedType(ptr.Elem(), "sync", "WaitGroup")
}

// isNamedType reports whether t is the named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// ---- lock values ----

// checkLockValues flags by-value receivers and parameters whose type
// contains a sync primitive: the copy forks the lock state.
func checkLockValues(p *pass, fd *ast.FuncDecl) {
	check := func(field *ast.Field, what string) {
		t := p.pkg.Info.TypeOf(field.Type)
		if t == nil {
			return
		}
		lock := containsLock(t, nil)
		if lock == "" || p.dirs.lineHas(field.Pos(), dirLockOK) {
			return
		}
		name := "_"
		if len(field.Names) > 0 {
			name = field.Names[0].Name
		}
		p.reportf(field.Pos(), "%s %s is passed by value and contains %s; use a pointer so the lock state is shared", what, name, lock)
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			check(field, "receiver")
		}
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			check(field, "parameter")
		}
	}
}

// containsLock reports the first sync primitive embedded by value in t
// ("" if none). Pointers stop the walk: a pointed-to lock is shared, not
// copied.
func containsLock(t types.Type, seen map[*types.Named]bool) string {
	switch t := types.Unalias(t).(type) {
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond":
				return "sync." + obj.Name()
			}
		}
		if seen == nil {
			seen = make(map[*types.Named]bool)
		}
		if seen[t] {
			return ""
		}
		seen[t] = true
		return containsLock(t.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if l := containsLock(t.Field(i).Type(), seen); l != "" {
				return l
			}
		}
	case *types.Array:
		return containsLock(t.Elem(), seen)
	}
	return ""
}

// ---- lock flow and channel discipline ----

// flowState is the linear-path state: held locks (keyed by the receiver's
// printed expression, "#r" suffix for read locks) and channels closed on
// this path, each mapped to the position that created the obligation.
type flowState struct {
	locks  map[string]token.Pos
	closed map[string]token.Pos
}

func newFlowState() *flowState {
	return &flowState{locks: make(map[string]token.Pos), closed: make(map[string]token.Pos)}
}

func (s *flowState) clone() *flowState {
	return &flowState{locks: maps.Clone(s.locks), closed: maps.Clone(s.closed)}
}

// flowChecker runs the lock-flow and channel rules over one function.
type flowChecker struct {
	pass   *pass
	hasCtx bool
}

// block walks a statement list, mutating state along the linear path and
// analyzing branch bodies against clones. It returns true when the path
// definitely terminated (return or panic), so callers skip the
// fall-off-the-end check.
func (fc *flowChecker) block(stmts []ast.Stmt, state *flowState) bool {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if fc.call(call, state) {
					return true // panic
				}
			}
		case *ast.AssignStmt:
			for _, r := range s.Rhs {
				if call, ok := r.(*ast.CallExpr); ok {
					fc.call(call, state)
				}
			}
		case *ast.DeferStmt:
			fc.deferCall(s.Call, state)
		case *ast.SendStmt:
			fc.send(s, state, false)
		case *ast.ReturnStmt:
			fc.checkExit(s.Pos(), state, "return")
			return true
		case *ast.BranchStmt:
			return false // break/continue/goto end this linear path
		case *ast.IfStmt:
			fc.block(s.Body.List, state.clone())
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				fc.block(e.List, state.clone())
			case *ast.IfStmt:
				fc.block([]ast.Stmt{e}, state.clone())
			}
		case *ast.BlockStmt:
			if fc.block(s.List, state) {
				return true
			}
		case *ast.ForStmt:
			fc.block(s.Body.List, state.clone())
		case *ast.RangeStmt:
			fc.block(s.Body.List, state.clone())
		case *ast.SwitchStmt:
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					fc.block(cc.Body, state.clone())
				}
			}
		case *ast.TypeSwitchStmt:
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					fc.block(cc.Body, state.clone())
				}
			}
		case *ast.SelectStmt:
			for _, cl := range s.Body.List {
				cc, ok := cl.(*ast.CommClause)
				if !ok {
					continue
				}
				if send, ok := cc.Comm.(*ast.SendStmt); ok {
					fc.send(send, state, true)
				}
				fc.block(cc.Body, state.clone())
			}
		case *ast.LabeledStmt:
			if fc.block([]ast.Stmt{s.Stmt}, state) {
				return true
			}
		}
	}
	return false
}

// call interprets one call on the linear path: lock/unlock transitions,
// close() tracking, and panic termination.
func (fc *flowChecker) call(call *ast.CallExpr, state *flowState) (terminates bool) {
	if b, ok := calleeObject(fc.pass.pkg.Info, call).(*types.Builtin); ok {
		switch b.Name() {
		case "panic":
			return true
		case "close":
			if len(call.Args) == 1 {
				state.closed[types.ExprString(call.Args[0])] = call.Pos()
			}
		}
		return false
	}
	key, op := lockMethodKey(fc.pass.pkg.Info, call)
	switch op {
	case "lock":
		state.locks[key] = call.Pos()
	case "unlock":
		delete(state.locks, key)
	}
	return false
}

// deferCall discharges lock obligations released by a defer: a direct
// deferred Unlock, or unlocks inside a deferred closure.
func (fc *flowChecker) deferCall(call *ast.CallExpr, state *flowState) {
	if key, op := lockMethodKey(fc.pass.pkg.Info, call); op == "unlock" {
		delete(state.locks, key)
		return
	}
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.CallExpr); ok {
			if key, op := lockMethodKey(fc.pass.pkg.Info, inner); op == "unlock" {
				delete(state.locks, key)
			}
		}
		return true
	})
}

// send applies the channel rules to one send statement. Selected sends
// (inside a select comm clause) are exempt from the blocking rule but
// still checked against closes.
func (fc *flowChecker) send(s *ast.SendStmt, state *flowState, selected bool) {
	key := types.ExprString(s.Chan)
	if pos, ok := state.closed[key]; ok && !fc.pass.dirs.lineHas(s.Pos(), dirSendOK) {
		fc.pass.reportf(s.Pos(), "send on closed channel %s (closed at %s); sends after close panic", key, fc.shortPos(pos))
	}
	if !selected && fc.hasCtx && !fc.pass.dirs.lineHas(s.Pos(), dirSendOK) {
		fc.pass.reportf(s.Pos(), "blocking send on %s in a function that takes a context.Context; guard it with select { case %s <- ...: case <-ctx.Done(): } or annotate //eucon:send-ok", key, key)
	}
}

// checkExit reports locks still held when the path exits at pos.
func (fc *flowChecker) checkExit(pos token.Pos, state *flowState, how string) {
	if len(state.locks) == 0 || fc.pass.dirs.lineHas(pos, dirLockOK) {
		return
	}
	keys := make([]string, 0, len(state.locks))
	for key := range state.locks {
		if fc.pass.dirs.lineHas(state.locks[key], dirLockOK) {
			continue
		}
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		fc.pass.reportf(pos, "%s while holding %s (locked at %s); unlock on every path, use defer, or annotate //eucon:lock-ok",
			how, displayLock(key), fc.shortPos(state.locks[key]))
	}
}

// finish reports locks still held when control falls off the end of the
// function, anchored at the Lock site so the finding names the culprit.
func (fc *flowChecker) finish(fd *ast.FuncDecl, state *flowState) {
	if len(state.locks) == 0 {
		return
	}
	keys := make([]string, 0, len(state.locks))
	for key := range state.locks {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		pos := state.locks[key]
		if fc.pass.dirs.lineHas(pos, dirLockOK) {
			continue
		}
		fc.pass.reportf(pos, "%s locked here is still held when %s ends; add the missing unlock, use defer, or annotate //eucon:lock-ok",
			displayLock(key), fd.Name.Name)
	}
}

// shortPos renders a position module-relative for inline mentions.
func (fc *flowChecker) shortPos(pos token.Pos) string {
	return shortPos(fc.pass.pkg, pos)
}

// displayLock renders a lock key for messages.
func displayLock(key string) string {
	if rest, ok := strings.CutSuffix(key, "#r"); ok {
		return rest + " (read lock)"
	}
	return key
}

// lockMethodKey classifies a call as a lock or unlock on a sync mutex,
// returning the state key (receiver expression, "#r" for the read side)
// and the operation ("lock", "unlock", or "").
func lockMethodKey(info *types.Info, call *ast.CallExpr) (string, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := calleeObject(info, call).(*types.Func)
	if !ok {
		return "", ""
	}
	recv := types.ExprString(sel.X)
	switch fn.FullName() {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock":
		return recv, "lock"
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock":
		return recv, "unlock"
	case "(*sync.RWMutex).RLock":
		return recv + "#r", "lock"
	case "(*sync.RWMutex).RUnlock":
		return recv + "#r", "unlock"
	}
	return "", ""
}
