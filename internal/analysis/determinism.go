package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// determinismScope lists the module-relative packages whose code must be a
// deterministic function of its configuration: the simulator, every
// controller, and the experiment engine that hashes their outputs into
// golden sweep digests.
var determinismScope = []string{
	"internal/sim",
	"internal/core",
	"internal/deucon",
	"internal/mpc",
	"internal/experiments",
	"internal/fault",
	"internal/chaos",
	// The structured linear-algebra layer: a fill-reducing ordering or
	// factorization that depends on map iteration order would silently
	// de-synchronize every digest built on it.
	"internal/mat",
	"internal/qp",
	// Named workloads (LARGE-128/LARGE-1024) are committed as golden
	// digests, so their generation must be a pure function of the seed.
	"internal/workload",
	// The explicit-MPC offline compiler: its region tables are committed
	// as build digests, so compilation must be a pure function of the
	// problem.
	"internal/empc",
	// The distributed runtime layers: protocol framing and the
	// coordinator/agent loops must replay identically given the same
	// message trace. Operational wall-clock reads (I/O deadlines) carry
	// //eucon:wallclock-ok.
	"internal/lane",
	"internal/agent",
}

// runDeterminism flags the three classic determinism leaks in the scoped
// packages:
//
//   - ranging over a map (iteration order is randomized per run) unless
//     the statement or its enclosing function is annotated
//     //eucon:order-independent, which asserts the loop body is
//     commutative or the keys are consumed order-insensitively;
//   - time.Now, which couples results to the wall clock;
//   - package-level math/rand functions, which draw from the shared
//     globally-seeded source (rand.New/rand.NewSource with an explicit
//     seed remain allowed — that is how Config.Seed works).
func runDeterminism(p *pass) {
	if !inScope(p.pkg.Rel, determinismScope) {
		return
	}
	for _, f := range p.pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			funcAllowed := p.dirs.funcHas(fd, dirOrderIndependent)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := p.pkg.Info.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if funcAllowed || p.dirs.lineHas(rs.Pos(), dirOrderIndependent) {
					return true
				}
				p.reportf(rs.Pos(),
					"range over map %s iterates in randomized order; sort the keys first or annotate //eucon:order-independent with a justification",
					types.TypeString(t, types.RelativeTo(p.pkg.Types)))
				return true
			})
		}
	}
	// Banned identifiers are found through the use map so references that
	// never syntactically look like calls (method values, var initializers)
	// are caught too. Positions are collected and sorted because map
	// iteration order is, fittingly, nondeterministic.
	type finding struct {
		id  *ast.Ident
		msg string
	}
	var found []finding
	for id, obj := range p.pkg.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		switch fn.Pkg().Path() {
		case "time":
			if fn.Name() == "Now" && !p.dirs.lineHas(id.Pos(), dirWallclockOK) {
				found = append(found, finding{id,
					"time.Now couples simulation results to the wall clock; derive time from the simulated clock or configuration, or annotate an operational read //eucon:wallclock-ok"})
			}
		case "math/rand", "math/rand/v2":
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				continue // methods on an explicitly seeded *rand.Rand are fine
			}
			if fn.Name() == "New" || fn.Name() == "NewSource" {
				continue // constructing an explicitly seeded source
			}
			found = append(found, finding{id,
				"global math/rand draws from the shared unseeded source; use a *rand.Rand seeded from Config.Seed"})
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].id.Pos() < found[j].id.Pos() })
	for _, f := range found {
		p.reportf(f.id.Pos(), "%s", f.msg)
	}
}
