package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// poolFreeMethods are the simulator's free-list recycle entry points. A
// call s.putEvent(e) / s.putJob(j) transfers ownership of its first
// argument back to the pool; the pooled object may be zeroed and handed to
// another caller at any point afterwards.
var poolFreeMethods = map[string]bool{
	"putEvent": true,
	"putJob":   true,
}

// freeSite records where a pooled variable was recycled.
type freeSite struct {
	method string
	pos    token.Pos
}

// runPoolDiscipline flags use-after-free on the simulator's pooled events
// and jobs: a variable read after being passed to putEvent/putJob in the
// same function, tracked flow-sensitively through the statement list.
// Reassigning the variable (e = s.newEvent(...)) clears the freed state;
// conditional frees followed by an early return do not poison the fallthrough
// path. An intentional post-recycle touch can be exempted per line with
// //eucon:pool-ok. Scope: internal/sim only — the pools live there.
func runPoolDiscipline(p *pass) {
	if !inScope(p.pkg.Rel, []string{"internal/sim"}) {
		return
	}
	for _, f := range p.pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &poolWalker{pass: p}
			w.block(fd.Body.List, make(map[*types.Var]freeSite))
		}
	}
}

// poolWalker tracks, per statement list, which pooled variables have been
// recycled.
type poolWalker struct {
	pass *pass
}

// block analyzes one statement list against (and mutating) freed.
func (w *poolWalker) block(stmts []ast.Stmt, freed map[*types.Var]freeSite) {
	for _, stmt := range stmts {
		w.stmt(stmt, freed)
	}
}

// stmt checks one statement for uses of freed variables, then applies its
// free/reassign effects to the freed set.
func (w *poolWalker) stmt(stmt ast.Stmt, freed map[*types.Var]freeSite) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		w.block(s.List, freed)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, freed)
		}
		w.checkUses(s.Cond, freed)
		thenFreed := cloneFreed(freed)
		w.block(s.Body.List, thenFreed)
		elseFreed := cloneFreed(freed)
		if s.Else != nil {
			w.stmt(s.Else, elseFreed)
		}
		// A free inside a branch reaches the code after the if only when the
		// branch can fall through; a branch ending in return/panic/break keeps
		// its frees to itself.
		if !terminates(s.Body.List) {
			mergeFreed(freed, thenFreed)
		}
		if s.Else == nil || !stmtTerminates(s.Else) {
			mergeFreed(freed, elseFreed)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, freed)
		}
		if s.Cond != nil {
			w.checkUses(s.Cond, freed)
		}
		body := cloneFreed(freed)
		w.block(s.Body.List, body)
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
	case *ast.RangeStmt:
		w.checkUses(s.X, freed)
		body := cloneFreed(freed)
		for _, e := range [2]ast.Expr{s.Key, s.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if v := w.identVar(id); v != nil {
					delete(body, v)
				}
			}
		}
		w.block(s.Body.List, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, freed)
		}
		if s.Tag != nil {
			w.checkUses(s.Tag, freed)
		}
		w.caseBodies(s.Body, freed)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, freed)
		}
		w.checkUses(s.Assign, freed)
		w.caseBodies(s.Body, freed)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.checkUses(rhs, freed)
		}
		for _, lhs := range s.Lhs {
			if _, ok := lhs.(*ast.Ident); !ok {
				// Writing through a freed pointer (e.next = ...) is a use.
				w.checkUses(lhs, freed)
			}
		}
		w.applyFrees(s, freed)
		// A plain-identifier assignment gives the variable a fresh value, so
		// its freed state is cleared after the statement's own reads.
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if v := w.identVar(id); v != nil {
					delete(freed, v)
				}
			}
		}
	case *ast.ExprStmt:
		w.checkUses(s.X, freed)
		w.applyFrees(s, freed)
	case *ast.DeferStmt:
		// Deferred frees run at function exit; uses inside are checked, but
		// the free effect never reaches subsequent statements.
		w.checkUses(s.Call, freed)
	case *ast.GoStmt:
		w.checkUses(s.Call, freed)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.checkUses(r, freed)
		}
	case *ast.IncDecStmt:
		w.checkUses(s.X, freed)
	case *ast.SendStmt:
		w.checkUses(s.Chan, freed)
		w.checkUses(s.Value, freed)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, freed)
	case *ast.DeclStmt:
		w.checkUses(s, freed)
	}
}

// caseBodies analyzes each case clause of a switch body with an isolated
// copy of freed; frees inside a case do not propagate past the switch
// (every simulator switch-case either returns or fully consumes its
// object, and joining would require path-sensitive merging).
func (w *poolWalker) caseBodies(body *ast.BlockStmt, freed map[*types.Var]freeSite) {
	for _, cs := range body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			w.checkUses(e, freed)
		}
		w.block(cc.Body, cloneFreed(freed))
	}
}

// checkUses reports every identifier inside n that resolves to a freed
// variable, unless the line is exempted with //eucon:pool-ok.
func (w *poolWalker) checkUses(n ast.Node, freed map[*types.Var]freeSite) {
	if n == nil || len(freed) == 0 {
		return
	}
	ast.Inspect(n, func(child ast.Node) bool {
		id, ok := child.(*ast.Ident)
		if !ok {
			return true
		}
		v := w.identVar(id)
		if v == nil {
			return true
		}
		site, isFreed := freed[v]
		if !isFreed {
			return true
		}
		if w.pass.dirs.lineHas(id.Pos(), dirPoolOK) {
			return true
		}
		w.pass.reportf(id.Pos(),
			"%s is used after being recycled via %s (line %d); the pool may already have reused it",
			id.Name, site.method, w.pass.pkg.Fset.Position(site.pos).Line)
		return true
	})
}

// applyFrees records pooled variables recycled by any putEvent/putJob call
// inside the statement.
func (w *poolWalker) applyFrees(stmt ast.Stmt, freed map[*types.Var]freeSite) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !poolFreeMethods[sel.Sel.Name] || len(call.Args) == 0 {
			return true
		}
		id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			return true
		}
		if v := w.identVar(id); v != nil {
			freed[v] = freeSite{method: sel.Sel.Name, pos: call.Pos()}
		}
		return true
	})
}

// identVar resolves an identifier to the local/parameter variable it
// names, or nil.
func (w *poolWalker) identVar(id *ast.Ident) *types.Var {
	obj := w.pass.pkg.Info.Uses[id]
	if obj == nil {
		obj = w.pass.pkg.Info.Defs[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

// cloneFreed copies a freed set for branch-local analysis.
func cloneFreed(m map[*types.Var]freeSite) map[*types.Var]freeSite {
	c := make(map[*types.Var]freeSite, len(m))
	for k, v := range m { //eucon:order-independent map copy
		c[k] = v
	}
	return c
}

// mergeFreed folds branch-local frees into the outer set.
func mergeFreed(dst, src map[*types.Var]freeSite) {
	for k, v := range src { //eucon:order-independent map merge
		dst[k] = v
	}
}

// terminates reports whether a statement list always transfers control
// away (return, branch, or panic as its final statement).
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	return stmtTerminates(stmts[len(stmts)-1])
}

// stmtTerminates reports whether a single statement always transfers
// control away.
func stmtTerminates(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	case *ast.BlockStmt:
		return terminates(s.List)
	}
	return false
}
